(* Constellation-scale flow-lifecycle manager (ROADMAP item 1).

   A [Workload] schedule is partitioned into a fixed number of shards by
   origin city (all flows sourced at one city share that city's uplink,
   and nothing else couples flows), so every shard is an independent
   simulation: its own engine, rng, trace recorder and invariant
   checker.  Shards run as [Runner] jobs; because the shard count is
   fixed and each job resets the domain-local id counters, the per-shard
   trace digests — and hence the combined digest — are bit-identical for
   [--jobs 1] and [--jobs N].

   Per origin city the shard lazily builds shared infrastructure: a
   ground gateway and an attachment-satellite node, both running LEOTP
   Midnodes, joined by the city's uplink (the shared bottleneck).  Per
   flow it leases a slot — producer node, consumer node, an access link
   into the gateway and a "space" link aggregating the rest of the
   Path_service route — from a per-city free list, reconfiguring the
   recycled links to the flow's current route instead of rebuilding the
   topology.  Completed flows retire after a grace period: sessions
   stop, midnode soft state for the flow is dropped (traced, so the
   invariant ledger stays balanced), per-flow routes are unwired and the
   slot returns to the pool.  A retired slot's packets all go back to
   the packet pool; [shard_stats.pool_live_delta] proves it. *)

module Engine = Leotp_sim.Engine
module Node = Leotp_net.Node
module Link = Leotp_net.Link
module Packet = Leotp_net.Packet
module Pool = Leotp_net.Packet_pool
module Topology = Leotp_net.Topology
module Trace = Leotp_net.Trace
module Bandwidth = Leotp_net.Bandwidth
module Flow_metrics = Leotp_net.Flow_metrics
module Cities = Leotp_constellation.Cities
module Walker = Leotp_constellation.Walker
module Path_service = Leotp_constellation.Path_service
module Geo = Leotp_constellation.Geo
module Rng = Leotp_util.Rng

let mbps = Leotp_util.Units.mbps_to_bytes_per_sec

type spec = {
  workload : Workload.spec;
  shards : int;
  config : Leotp.Config.t;
  tcp_cc : Leotp_tcp.Cc.algo;
  route_epoch : float;
  uplink_mbps : float;
  access_mbps : float;
  space_mbps : float;
  gsl_plr : float;
  isl_plr : float;
  retire_grace : float;
  drain : float;
  batch : int;
}

let default =
  {
    workload = Workload.default;
    shards = 8;
    config = Leotp.Config.default;
    tcp_cc = Leotp_tcp.Cc.Cubic;
    route_epoch = 30.0;
    uplink_mbps = 100.0;
    access_mbps = 400.0;
    space_mbps = 100.0;
    gsl_plr = 0.003;
    isl_plr = 0.001;
    retire_grace = 2.0;
    drain = 120.0;
    batch = 4096;
  }

type shard_stats = {
  shard : int;
  flows_offered : int;
  flows_started : int;
  flows_completed : int;
  flows_skipped : int;
  bytes_delivered : int;
  packets : int;
  events : int;
  slices : int;
  flow_sim_seconds : float;
  sim_end : float;
  route_queries : int;
  route_computes : int;
  pool_live_delta : int;
  pit_pending_end : int;
  peak_active : int;
  digest : string;
  reports : Invariants.report list;
}

type stats = {
  flows_offered : int;
  flows_started : int;
  flows_completed : int;
  flows_skipped : int;
  bytes_delivered : int;
  packets : int;
  events : int;
  flow_sim_seconds : float;
  sim_seconds : float;
  route_queries : int;
  route_computes : int;
  pool_live_delta : int;
  pit_pending_end : int;
  peak_active : int;
  digest : string;
  shards : shard_stats list;
  invariants_ok : bool;
}

(* ---------------------------------------------------------------- *)

type slot = {
  producer_node : Node.t;
  consumer_node : Node.t;
  access : Topology.duplex;  (* producer <-> gateway *)
  space : Topology.duplex;  (* sky <-> consumer *)
}

type site = {
  gateway : Node.t;
  sky : Node.t;
  uplink : Topology.duplex;  (* gateway <-> sky: the city's shared GSL *)
  gw_mid : Leotp.Midnode.t;
  sky_mid : Leotp.Midnode.t;
  mutable free_slots : slot list;
  mutable next_slot : int;
}

type active = {
  arrival : Workload.arrival;
  flow : int;
  slot : slot;
  site_origin : int;
  session :
    [ `Leotp of Leotp.Session.t | `Tcp of Leotp_tcp.Session.t ];
  started : float;
  mutable retired : bool;
}

type shard_state = {
  spec : spec;
  shard : int;
  engine : Engine.t;
  rng : Rng.t;
  memo : Path_service.Memo.t;
  sites : site option array;  (* indexed by origin city *)
  flows : (int, active) Hashtbl.t;
  mutable links : Link.t list;  (* reverse creation order *)
  mutable started : int;
  mutable completed : int;
  mutable skipped : int;
  mutable bytes_delivered : int;
  mutable flow_sim_seconds : float;
  mutable peak_active : int;
  mutable slices : int;
}

let access_delay = 0.0005

let metrics_of = function
  | `Leotp s -> s.Leotp.Session.metrics
  | `Tcp s -> s.Leotp_tcp.Session.metrics

(* Everything past the origin's own GSL, folded into one link: the
   remaining propagation delay and the compound loss of the ISL hops
   plus the consumer-side down-GSL. *)
let space_params spec route ~uplink_delay =
  let total = Path_service.total_delay route in
  let delay = Float.max 0.0005 (total -. uplink_delay) in
  let isls =
    List.length
      (List.filter (fun h -> h.Path_service.kind = Path_service.Isl) route)
  in
  let p_ok =
    ((1.0 -. spec.isl_plr) ** float_of_int isls) *. (1.0 -. spec.gsl_plr)
  in
  (delay, 1.0 -. p_ok)

let get_site st ~origin ~route =
  match st.sites.(origin) with
  | Some site -> site
  | None ->
    let uplink_delay =
      match route with
      | h :: _ -> Geo.propagation_delay h.Path_service.distance
      | [] -> 0.01
    in
    let name = Printf.sprintf "o%02d" origin in
    let gateway = Node.create ~name:(name ^ ".gw") in
    let sky = Node.create ~name:(name ^ ".sky") in
    let uplink =
      Topology.connect st.engine ~rng:st.rng gateway sky
        (Topology.hop
           ~bandwidth:(Bandwidth.Constant (mbps st.spec.uplink_mbps))
           ~delay:uplink_delay ~plr:st.spec.gsl_plr ())
    in
    st.links <- uplink.Topology.rev :: uplink.Topology.fwd :: st.links;
    let gw_mid =
      Leotp.Midnode.create st.engine ~config:st.spec.config ~node:gateway ()
    in
    let sky_mid =
      Leotp.Midnode.create st.engine ~config:st.spec.config ~node:sky ()
    in
    let site =
      { gateway; sky; uplink; gw_mid; sky_mid; free_slots = []; next_slot = 0 }
    in
    st.sites.(origin) <- Some site;
    site

let get_slot st ~origin site =
  match site.free_slots with
  | slot :: rest ->
    site.free_slots <- rest;
    slot
  | [] ->
    let name = Printf.sprintf "o%02d.s%03d" origin site.next_slot in
    site.next_slot <- site.next_slot + 1;
    let producer_node = Node.create ~name:(name ^ ".p") in
    let consumer_node = Node.create ~name:(name ^ ".c") in
    let access =
      Topology.connect st.engine ~rng:st.rng producer_node site.gateway
        (Topology.hop
           ~bandwidth:(Bandwidth.Constant (mbps st.spec.access_mbps))
           ~delay:access_delay ())
    in
    let space =
      Topology.connect st.engine ~rng:st.rng site.sky consumer_node
        (Topology.hop
           ~bandwidth:(Bandwidth.Constant (mbps st.spec.space_mbps))
           ~delay:0.01 ())
    in
    st.links <-
      space.Topology.rev :: space.Topology.fwd :: access.Topology.rev
      :: access.Topology.fwd :: st.links;
    { producer_node; consumer_node; access; space }

let retire st flow =
  match Hashtbl.find_opt st.flows flow with
  | None -> ()
  | Some fl when fl.retired -> ()
  | Some fl ->
    fl.retired <- true;
    (match fl.session with
    | `Leotp s ->
      Leotp.Session.stop s;
      Leotp.Producer.stop s.Leotp.Session.producer
    | `Tcp s -> Leotp_tcp.Session.stop s);
    (match st.sites.(fl.site_origin) with
    | None -> ()
    | Some site ->
      Leotp.Midnode.retire_flow site.gw_mid ~flow;
      Leotp.Midnode.retire_flow site.sky_mid ~flow;
      let cid = Node.id fl.slot.consumer_node
      and pid = Node.id fl.slot.producer_node in
      Node.remove_route site.gateway ~dst:cid;
      Node.remove_route site.gateway ~dst:pid;
      Node.remove_route site.sky ~dst:cid;
      Node.remove_route site.sky ~dst:pid;
      (* Queued stragglers die now; in-flight ones die (and return to
         the pool) when their epoch-stale delivery events fire. *)
      Link.flush fl.slot.access.Topology.fwd;
      Link.flush fl.slot.access.Topology.rev;
      Link.flush fl.slot.space.Topology.fwd;
      Link.flush fl.slot.space.Topology.rev;
      site.free_slots <- fl.slot :: site.free_slots);
    st.flow_sim_seconds <-
      st.flow_sim_seconds +. (Engine.now st.engine -. fl.started);
    st.bytes_delivered <-
      st.bytes_delivered + Flow_metrics.app_bytes (metrics_of fl.session);
    Hashtbl.remove st.flows flow

let admit st (a : Workload.arrival) =
  let now = Engine.now st.engine in
  match
    Path_service.Memo.route st.memo
      ~src:Cities.all.(a.origin)
      ~dst:Cities.all.(a.city)
      ~isls:true ~time:now
  with
  | None -> st.skipped <- st.skipped + 1
  | Some route ->
    let site = get_site st ~origin:a.origin ~route in
    let slot = get_slot st ~origin:a.origin site in
    let uplink_delay = Link.delay site.uplink.Topology.fwd in
    let delay, plr = space_params st.spec route ~uplink_delay in
    Link.set_delay slot.space.Topology.fwd delay;
    Link.set_delay slot.space.Topology.rev delay;
    Link.set_plr slot.space.Topology.fwd plr;
    Link.set_plr slot.space.Topology.rev plr;
    let cid = Node.id slot.consumer_node
    and pid = Node.id slot.producer_node in
    Node.add_route slot.producer_node ~dst:cid slot.access.Topology.fwd;
    Node.add_route slot.consumer_node ~dst:pid slot.space.Topology.rev;
    Node.add_route site.gateway ~dst:cid site.uplink.Topology.fwd;
    Node.add_route site.gateway ~dst:pid slot.access.Topology.rev;
    Node.add_route site.sky ~dst:cid slot.space.Topology.fwd;
    Node.add_route site.sky ~dst:pid site.uplink.Topology.rev;
    let flow = a.seq + 1 in
    let on_complete () =
      st.completed <- st.completed + 1;
      ignore
        (Engine.schedule st.engine ~after:st.spec.retire_grace (fun () ->
             retire st flow))
    in
    let session =
      match a.protocol with
      | Workload.Leotp ->
        let s =
          Leotp.Session.attach st.engine ~config:st.spec.config
            ~consumer_node:slot.consumer_node ~producer_node:slot.producer_node
            ~midnodes:[ site.gw_mid; site.sky_mid ] ~flow
            ~total_bytes:a.bytes ~on_complete ()
        in
        Leotp.Session.start s;
        `Leotp s
      | Workload.Tcp ->
        let s =
          Leotp_tcp.Session.connect st.engine ~src_node:slot.producer_node
            ~dst_node:slot.consumer_node ~flow ~cc:st.spec.tcp_cc
            ~source:(Leotp_tcp.Sender.Fixed a.bytes) ~on_complete ()
        in
        Leotp_tcp.Session.start s;
        `Tcp s
    in
    Hashtbl.replace st.flows flow
      {
        arrival = a;
        flow;
        slot;
        site_origin = a.origin;
        session;
        started = now;
        retired = false;
      };
    st.started <- st.started + 1;
    st.peak_active <- max st.peak_active (Hashtbl.length st.flows)

let pump st ~until =
  let continue = ref true in
  while !continue do
    st.slices <- st.slices + 1;
    match Engine.run_slice ~max_events:st.spec.batch st.engine ~until with
    | `Events -> ()
    | `Until | `Quiescent -> continue := false
  done

let active_flows st =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) st.flows [])

let run_shard spec ~shard ~arrivals () =
  Packet.reset_ids ();
  Node.reset_ids ();
  let pool_live0 = Pool.live_count () in
  let packets0 = Packet.created_on_domain () in
  let engine = Engine.create () in
  let rng =
    Rng.substream
      (Rng.create ~seed:spec.workload.Workload.seed)
      (Printf.sprintf "fleet-shard-%02d" shard)
  in
  let st =
    {
      spec;
      shard;
      engine;
      rng;
      memo =
        Path_service.Memo.create ~epoch:spec.route_epoch
          (Walker.create Walker.starlink);
      sites = Array.make Cities.count None;
      flows = Hashtbl.create 64;
      links = [];
      started = 0;
      completed = 0;
      skipped = 0;
      bytes_delivered = 0;
      flow_sim_seconds = 0.0;
      peak_active = 0;
      slices = 0;
    }
  in
  let recorder = Trace.create ~capacity:1 ~digesting:true () in
  let checker = Invariants.create () in
  Trace.add_sink recorder (Invariants.sink checker);
  let reports = ref [] in
  let pit_end = ref 0 in
  Trace.with_recorder recorder
    ~clock:(fun () -> Engine.now engine)
    (fun () ->
      List.iter
        (fun (a : Workload.arrival) ->
          pump st ~until:a.Workload.at;
          admit st a)
        arrivals;
      pump st ~until:(spec.workload.Workload.horizon +. spec.drain);
      (* Stragglers: stop and retire whatever is still running, then
         flush every link and let the epoch-stale deliveries drain so
         all pooled packets come home. *)
      List.iter (retire st) (active_flows st);
      List.iter Link.flush (List.rev st.links);
      pump st ~until:(Engine.now engine +. spec.retire_grace +. 1.0);
      let now = Engine.now engine in
      Array.iter
        (function
          | None -> ()
          | Some site ->
            Leotp.Midnode.sweep_pit site.gw_mid ~now;
            Leotp.Midnode.sweep_pit site.sky_mid ~now;
            pit_end :=
              !pit_end
              + Leotp.Midnode.pit_pending site.gw_mid
              + Leotp.Midnode.pit_pending site.sky_mid)
        st.sites;
      List.iter Link.trace_final (List.rev st.links);
      reports := Invariants.finalize ~now checker;
      if
        Atomic.get Invariants.self_check
        && not (Invariants.all_ok !reports)
      then
        raise
          (Invariants.Violation
             (Printf.sprintf "fleet shard %d: invariant violation\n%s" shard
                (Invariants.to_string !reports))));
  Runner.note_sim_seconds (Engine.now engine);
  {
    shard;
    flows_offered = List.length arrivals;
    flows_started = st.started;
    flows_completed = st.completed;
    flows_skipped = st.skipped;
    bytes_delivered = st.bytes_delivered;
    packets = Packet.created_on_domain () - packets0;
    events = Engine.events_processed engine;
    slices = st.slices;
    flow_sim_seconds = st.flow_sim_seconds;
    sim_end = Engine.now engine;
    route_queries = Path_service.Memo.queries st.memo;
    route_computes = Path_service.Memo.computes st.memo;
    pool_live_delta = Pool.live_count () - pool_live0;
    pit_pending_end = !pit_end;
    peak_active = st.peak_active;
    digest = Trace.digest recorder;
    reports = !reports;
  }

(* FNV-1a over the concatenated shard digests (in shard order): one
   stable headline digest for the whole fleet run. *)
let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let run spec =
  let arrivals = Workload.generate spec.workload in
  let shards = max 1 spec.shards in
  let parts = Array.make shards [] in
  List.iter
    (fun (a : Workload.arrival) ->
      let s = a.Workload.origin mod shards in
      parts.(s) <- a :: parts.(s))
    arrivals;
  let parts = Array.map List.rev parts in
  let results =
    Runner.map
      (List.init shards (fun s -> run_shard spec ~shard:s ~arrivals:parts.(s)))
  in
  let sum (f : shard_stats -> int) =
    List.fold_left (fun acc r -> acc + f r) 0 results
  in
  let sumf (f : shard_stats -> float) =
    List.fold_left (fun acc r -> acc +. f r) 0.0 results
  in
  {
    flows_offered = List.length arrivals;
    flows_started = sum (fun r -> r.flows_started);
    flows_completed = sum (fun r -> r.flows_completed);
    flows_skipped = sum (fun r -> r.flows_skipped);
    bytes_delivered = sum (fun r -> r.bytes_delivered);
    packets = sum (fun r -> r.packets);
    events = sum (fun r -> r.events);
    flow_sim_seconds = sumf (fun r -> r.flow_sim_seconds);
    sim_seconds = sumf (fun r -> r.sim_end);
    route_queries = sum (fun r -> r.route_queries);
    route_computes = sum (fun r -> r.route_computes);
    pool_live_delta = sum (fun r -> r.pool_live_delta);
    pit_pending_end = sum (fun r -> r.pit_pending_end);
    peak_active = sum (fun r -> r.peak_active);
    digest =
      fnv64
        (String.concat ","
           (List.map (fun (r : shard_stats) -> r.digest) results));
    shards = results;
    invariants_ok =
      List.for_all
        (fun (r : shard_stats) -> Invariants.all_ok r.reports)
        results;
  }
