(* Open-loop user-population workload (ROADMAP item 1).

   Each consumer city generates flow arrivals as a non-homogeneous
   Poisson process: a base per-city rate modulated by a diurnal curve
   whose mean over a day is exactly 1, realized by thinning against the
   peak rate.  Each arrival requests one content item drawn from a Zipf
   popularity law over a fixed catalog; the item determines the origin
   (producer) city, and the flow size is lognormal, clipped to a bounded
   range.  Everything derives from named [Rng] substreams of one seed,
   so the merged schedule is a pure function of the spec. *)

module Rng = Leotp_util.Rng
module Cities = Leotp_constellation.Cities

type protocol = Leotp | Tcp

type spec = {
  seed : int;
  cities : int;
  origins : int;
  catalog : int;
  zipf_s : float;
  rate_per_city : float;
  diurnal_amplitude : float;
  day : float;
  horizon : float;
  median_bytes : int;
  size_sigma : float;
  min_bytes : int;
  max_bytes : int;
  tcp_share : float;
}

let default =
  {
    seed = 1;
    cities = 24;
    origins = 8;
    catalog = 1000;
    zipf_s = 1.0;
    rate_per_city = 0.5;
    diurnal_amplitude = 0.4;
    (* A compressed day: diurnal variation shows up inside sim horizons
       of minutes instead of requiring 86400 simulated seconds. *)
    day = 240.0;
    horizon = 60.0;
    median_bytes = 100_000;
    size_sigma = 0.8;
    min_bytes = 10_000;
    max_bytes = 1_000_000;
    tcp_share = 0.25;
  }

type arrival = {
  seq : int;
  at : float;
  city : int;
  content : int;
  origin : int;
  bytes : int;
  protocol : protocol;
}

(* Zipf(s) over ranks 0..n-1 via an inverse-CDF table: weight of rank r
   is (r+1)^-s.  One table per spec, O(log n) per sample. *)
module Zipf = struct
  type t = { cdf : float array }

  let create ~n ~s =
    assert (n > 0);
    let cdf = Array.make n 0.0 in
    let total = ref 0.0 in
    for r = 0 to n - 1 do
      total := !total +. (float_of_int (r + 1) ** -.s);
      cdf.(r) <- !total
    done;
    let norm = !total in
    for r = 0 to n - 1 do
      cdf.(r) <- cdf.(r) /. norm
    done;
    { cdf }

  let sample t rng =
    let u = Rng.float rng 1.0 in
    (* First rank whose cumulative weight exceeds u. *)
    let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo
end

(* Rate multiplier at time [t]: 1 + a sin(2pi (t/day - 1/4)) — trough at
   t = 0, peak half a day later, mean exactly 1 over any whole day. *)
let diurnal_factor spec t =
  1.0
  +. spec.diurnal_amplitude
     *. sin (2.0 *. Float.pi *. ((t /. spec.day) -. 0.25))

let expected_flows spec =
  (* Exact for a flat curve or a whole number of days; the sine term
     otherwise contributes at most a*day/(2 pi) flows per city. *)
  spec.rate_per_city *. float_of_int spec.cities *. spec.horizon

let origin_of_content spec content = content mod spec.origins

let validate spec =
  if spec.cities < 1 || spec.cities > Cities.count then
    invalid_arg "Workload: cities out of range";
  if spec.origins < 1 || spec.origins > Cities.count then
    invalid_arg "Workload: origins out of range";
  if spec.catalog < 1 then invalid_arg "Workload: empty catalog";
  if spec.rate_per_city <= 0.0 then invalid_arg "Workload: rate must be > 0";
  if spec.diurnal_amplitude < 0.0 || spec.diurnal_amplitude >= 1.0 then
    invalid_arg "Workload: diurnal amplitude must be in [0, 1)";
  if spec.day <= 0.0 || spec.horizon <= 0.0 then
    invalid_arg "Workload: day and horizon must be > 0";
  if spec.min_bytes < 1 || spec.max_bytes < spec.min_bytes then
    invalid_arg "Workload: byte bounds out of order";
  if spec.tcp_share < 0.0 || spec.tcp_share > 1.0 then
    invalid_arg "Workload: tcp_share out of range"

let sample_bytes spec rng =
  let b =
    float_of_int spec.median_bytes
    *. exp (Rng.gaussian rng ~mu:0.0 ~sigma:spec.size_sigma)
  in
  let b = int_of_float (Float.round b) in
  max spec.min_bytes (min spec.max_bytes b)

(* One city's arrivals by thinning: candidate points arrive at the peak
   rate; each survives with probability rate(t)/peak.  The surviving
   points form the non-homogeneous process exactly. *)
let city_arrivals spec zipf ~root ~city =
  let rng = Rng.substream root (Printf.sprintf "city-%03d" city) in
  let peak = spec.rate_per_city *. (1.0 +. spec.diurnal_amplitude) in
  let rec go t acc =
    let t = t +. Rng.exponential rng ~mean:(1.0 /. peak) in
    if t >= spec.horizon then List.rev acc
    else begin
      let keep =
        Rng.bernoulli rng (spec.rate_per_city *. diurnal_factor spec t /. peak)
      in
      let acc =
        if not keep then acc
        else begin
          let content = Zipf.sample zipf rng in
          let bytes = sample_bytes spec rng in
          let protocol = if Rng.bernoulli rng spec.tcp_share then Tcp else Leotp in
          {
            seq = 0;
            at = t;
            city;
            content;
            origin = origin_of_content spec content;
            bytes;
            protocol;
          }
          :: acc
        end
      in
      go t acc
    end
  in
  go 0.0 []

let generate spec =
  validate spec;
  let root = Rng.substream (Rng.create ~seed:spec.seed) "workload" in
  let zipf = Zipf.create ~n:spec.catalog ~s:spec.zipf_s in
  let per_city =
    List.init spec.cities (fun city -> city_arrivals spec zipf ~root ~city)
  in
  let merged =
    List.sort
      (fun a b ->
        match Float.compare a.at b.at with
        | 0 -> Int.compare a.city b.city
        | c -> c)
      (List.concat per_city)
  in
  List.mapi (fun seq a -> { a with seq }) merged

let scale_to spec ~flows =
  let cities = max 1 spec.cities in
  {
    spec with
    cities;
    rate_per_city = float_of_int flows /. (float_of_int cities *. spec.horizon);
  }
