(** Constellation-scale flow-lifecycle manager (ROADMAP item 1).

    Runs a {!Workload} schedule — thousands of concurrent LEOTP/TCP
    flows — over {!Leotp_constellation.Path_service}-derived routes.
    The schedule is partitioned into a {e fixed} number of shards by
    origin city (flows only couple through their origin's shared
    uplink), each shard an independent engine/trace/invariant-checker
    job under {!Runner.map}: per-shard digests, and the combined digest,
    are bit-identical for [--jobs 1] vs [--jobs N].

    Per origin city the shard keeps a gateway + attachment-satellite
    pair running shared Midnodes (many-flow PIT and cache pressure)
    joined by the city's uplink; per flow it leases a pooled slot of
    endpoint nodes and links, reconfigured to the flow's current route.
    Completed flows retire after a grace period, returning their slot —
    and every pooled packet — to the free lists. *)

type spec = {
  workload : Workload.spec;
  shards : int;  (** fixed partition count — independent of [--jobs] *)
  config : Leotp.Config.t;
  tcp_cc : Leotp_tcp.Cc.algo;
  route_epoch : float;  (** Path_service memo quantum, seconds *)
  uplink_mbps : float;  (** shared per-origin-city GSL bandwidth *)
  access_mbps : float;  (** producer access link *)
  space_mbps : float;  (** per-flow folded ISL+down-GSL link *)
  gsl_plr : float;
  isl_plr : float;
  retire_grace : float;  (** completion -> slot reclaim delay, seconds *)
  drain : float;  (** extra sim time after the last arrival *)
  batch : int;  (** engine events per {!Leotp_sim.Engine.run_slice} *)
}

val default : spec

type shard_stats = {
  shard : int;
  flows_offered : int;
  flows_started : int;
  flows_completed : int;
  flows_skipped : int;  (** no route at admission time *)
  bytes_delivered : int;
  packets : int;  (** packet records created in this shard *)
  events : int;  (** engine events fired *)
  slices : int;  (** run_slice batches *)
  flow_sim_seconds : float;  (** sum over flows of active sim time *)
  sim_end : float;
  route_queries : int;
  route_computes : int;  (** Dijkstra runs after memoization *)
  pool_live_delta : int;  (** 0 iff no pooled packet leaked *)
  pit_pending_end : int;  (** 0 iff retirement emptied the PITs *)
  peak_active : int;
  digest : string;  (** FNV-1a trace digest of this shard *)
  reports : Invariants.report list;
}

type stats = {
  flows_offered : int;
  flows_started : int;
  flows_completed : int;
  flows_skipped : int;
  bytes_delivered : int;
  packets : int;
  events : int;
  flow_sim_seconds : float;
  sim_seconds : float;
  route_queries : int;
  route_computes : int;
  pool_live_delta : int;
  pit_pending_end : int;
  peak_active : int;  (** summed over shards *)
  digest : string;  (** FNV-1a over the shard digests, in shard order *)
  shards : shard_stats list;
  invariants_ok : bool;
}

val run : spec -> stats
(** Generate the workload, partition by origin, run every shard via
    {!Runner.map} (parallel per [Runner.set_jobs]) and aggregate.
    Raises {!Invariants.Violation} from a shard when
    [Invariants.self_check] is set and an invariant fails. *)

val run_shard :
  spec -> shard:int -> arrivals:Workload.arrival list -> unit -> shard_stats
(** One shard as a bare thunk (exposed for tests). *)
