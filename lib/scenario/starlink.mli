(** Emulated-Starlink experiments (paper §V-C).

    Environment per the paper: Starlink core constellation routes
    recomputed over time (HYPATIA-style, here Dijkstra over the Walker
    shell); GSL uplink is the 10 Mbps bottleneck with a handover "V"
    curve and +/-0.5 Mbps random bias; other hops 20 Mbps; PLR 1% on
    GSLs and 0.1% on ISLs; hop delays are distance over the speed of
    light and change with the orbits (link switching drops in-flight
    packets). *)

val gsl_plr : float
val isl_plr : float

val other_bw : float
(** Mbps on non-bottleneck (downlink / ISL) hops. *)

val uplink_mean_bw : float
(** Mbps, mean of the bottleneck GSL uplink; shared with the
    trace-driven generator ({!Pathtrace}). *)

type pair_result = {
  summary : Common.summary;
  mean_hops : float;
  min_propagation : float;  (** seconds, best route over the run *)
  switches : int;
}

val run_pair :
  ?quick:bool ->
  ?seed:int ->
  src:string ->
  dst:string ->
  isls:bool ->
  Common.protocol ->
  pair_result
(** One bulk flow from [src] (Producer) to [dst] (Consumer). *)

val fig16 : ?quick:bool -> unit -> (string * pair_result) list
(** Beijing-Shanghai without ISLs: LEOTP vs BBR / PCC / Hybla; prints
    OWD and throughput CDuFs. *)

val fig17 : ?quick:bool -> unit -> (string * pair_result) list
(** Beijing-New York with ISLs. *)

val fig18 : ?quick:bool -> unit -> (string * string * float * float) list
(** (pair, protocol, mean OWD s, throughput Mbps) for Beijing-Hong Kong /
    Paris / New York, including 25% Midnode coverage. *)

val table2 : ?quick:bool -> unit -> (string * string * float * float) list
(** Ablation A/B/C/D on the three city pairs: (pair, config, throughput
    Mbps, mean OWD ms). *)
