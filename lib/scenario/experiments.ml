module Cc = Leotp_tcp.Cc
module Stats = Leotp_util.Stats
module Bandwidth = Leotp_net.Bandwidth

let mbps = Leotp_util.Units.mbps_to_bytes_per_sec
let leotp_default = Common.Leotp Leotp.Config.default

(* Every sweep below is expressed as a batch of independent jobs handed
   to [Runner] (grid = protocol x parameter cross product, map = a flat
   list).  Each job builds its own engine/rng/topology inside
   [Common.run_chain], so results are identical at any --jobs level;
   printing happens only after the batch completes. *)

(* ------------------------------------------------------------------ *)
(* Fig 2: TCP throughput collapse vs hop count (0.5% loss per hop).     *)

let fig02 ?(quick = false) () =
  Report.header "Fig 2: TCP throughput vs hop count (20 Mbps, 10 ms hopRTT, 0.5%/hop)";
  let duration = if quick then 15.0 else 60.0 in
  let hop_counts = if quick then [ 1; 5; 10 ] else [ 1; 2; 4; 6; 8; 10 ] in
  let algos = [ Cc.Cubic; Cc.Hybla; Cc.Bbr; Cc.Pcc ] in
  let results =
    Runner.grid algos hop_counts (fun cc n ->
        let s =
          Common.run_chain ~duration
            ~hops:
              (Common.uniform_hops ~n
                 (Common.link ~plr:0.005 ~bw:20.0 ~delay:0.005 ()))
            (Common.Tcp cc)
        in
        s.Common.goodput_mbps)
    |> List.map (fun (cc, rows) -> (Cc.algo_name cc, rows))
  in
  List.iter
    (fun (name, rows) ->
      Report.row "  %-10s" name;
      List.iter (fun (n, t) -> Report.row "  %2d hops: %5.2f" n t) rows;
      Report.newline ())
    results;
  results

(* ------------------------------------------------------------------ *)
(* Fig 3: theoretical OWD distributions (10 hops, 0.5%, 10 ms).        *)

let fig03 () =
  Report.header "Fig 3: theoretical per-packet OWD, e2e vs hop-by-hop retransmission";
  let p = 0.005 and hops = 10 and d = 0.01 in
  let stats_of dist =
    let q pct = Leotp_theory.Retrans.Owd_dist.percentile dist pct in
    [
      ("mean", Leotp_theory.Retrans.Owd_dist.mean dist);
      ("p50", q 50.0);
      ("p90", q 90.0);
      ("p99", q 99.0);
      ("p99.999", q 99.999);
    ]
  in
  let e2e = Leotp_theory.Retrans.Owd_dist.e2e ~p ~hops ~d in
  let hbh = Leotp_theory.Retrans.Owd_dist.hbh ~p ~hops ~d in
  let results = [ ("end-to-end", stats_of e2e); ("hop-by-hop", stats_of hbh) ] in
  List.iter
    (fun (name, stats) ->
      Report.row "  %-12s" name;
      List.iter (fun (k, v) -> Report.row "  %s=%5.0fms" k (Report.ms v)) stats;
      Report.newline ())
    results;
  results

(* ------------------------------------------------------------------ *)
(* Fig 4: Split TCP vs TCP trade-off (10 hops, 20 Mbps, 0.5%/hop).      *)

let fig04 ?(quick = false) () =
  Report.header "Fig 4: throughput-OWD trade-off, Split TCP vs TCP (10 hops, 0.5%/hop)";
  let duration = if quick then 15.0 else 60.0 in
  let hops =
    Common.uniform_hops ~n:10 (Common.link ~plr:0.005 ~bw:20.0 ~delay:0.005 ())
  in
  let algos = [ Cc.Cubic; Cc.Hybla; Cc.Bbr; Cc.Pcc ] in
  let protos =
    List.concat_map
      (fun cc -> [ Common.Tcp cc; Common.Split_tcp cc ])
      algos
  in
  let results =
    Runner.map
      (List.map
         (fun proto () ->
           let s = Common.run_chain ~duration ~hops proto in
           (s.Common.protocol, (s.Common.goodput_mbps, Stats.mean s.Common.owd)))
         protos)
  in
  List.iter
    (fun (name, (tput, owd)) ->
      Report.row "  %-16s tput=%5.2f Mbps  mean OWD=%6.1f ms\n" name tput
        (Report.ms owd))
    results;
  results

(* ------------------------------------------------------------------ *)
(* Fig 5: queuing delay and congestion loss vs propagation delay under  *)
(* a fluctuating bottleneck (10 +/- 1 Mbps square wave, 2 s period).    *)

let fig05 ?(quick = false) () =
  Report.header
    "Fig 5: queuing delay / congestion loss vs propagation delay (fluctuating bottleneck)";
  let duration = if quick then 15.0 else 60.0 in
  let delays = if quick then [ 0.02; 0.1 ] else [ 0.02; 0.04; 0.06; 0.08; 0.1 ] in
  let algos = [ Cc.Cubic; Cc.Hybla; Cc.Bbr ] in
  let results =
    Runner.grid algos delays (fun cc prop ->
        (* 5 hops; hop 2 is the fluctuating bottleneck. *)
        let hop_delay = prop /. 5.0 in
        let hops =
          Common.uniform_hops ~n:5 (Common.link ~bw:20.0 ~delay:hop_delay ())
        in
        let s =
          Common.run_chain ~duration ~hops
            ~bandwidth_schedule:
              [ (2, Bandwidth.square_mbps ~mean:10.0 ~amplitude:1.0 ~period:2.0) ]
            (Common.Tcp cc)
        in
        (Stats.mean s.Common.queuing_delay, s.Common.congestion_drops))
    |> List.map (fun (cc, rows) ->
           ( Cc.algo_name cc,
             List.map (fun (p, (q, drops)) -> (p, q, drops)) rows ))
  in
  List.iter
    (fun (name, rows) ->
      Report.row "  %-8s" name;
      List.iter
        (fun (p, q, drops) ->
          Report.row "  %3.0fms: q=%5.1fms loss=%d" (Report.ms p) (Report.ms q) drops)
        rows;
      Report.newline ())
    results;
  results

(* ------------------------------------------------------------------ *)
(* Fig 10: OWD of retransmitted packets (5 hops, 20 Mbps, 20 ms hopRTT) *)

let fig10 ?(quick = false) () =
  Report.header "Fig 10: OWD of retransmitted packets, LEOTP vs BBR (5 hops)";
  let duration = if quick then 20.0 else 80.0 in
  let plrs = if quick then [ 0.01 ] else [ 0.005; 0.01; 0.02 ] in
  let protos = [ leotp_default; Common.Tcp Cc.Bbr ] in
  let results =
    Runner.grid protos plrs (fun proto plr ->
        let s =
          Common.run_chain ~duration
            ~hops:
              (Common.uniform_hops ~n:5
                 (Common.link ~plr ~bw:20.0 ~delay:0.01 ()))
            proto
        in
        let r = s.Common.retx_owd in
        if Stats.is_empty r then (Float.nan, Float.nan)
        else (Stats.mean r, Stats.percentile r 99.0))
    |> List.map (fun (proto, rows) ->
           ( Common.protocol_name proto,
             List.map (fun (plr, (mean, p99)) -> (plr, mean, p99)) rows ))
  in
  List.iter
    (fun (name, rows) ->
      Report.row "  %-8s" name;
      List.iter
        (fun (plr, mean, p99) ->
          Report.row "  plr=%.3f: mean=%5.1fms p99=%5.1fms" plr
            (Report.ms mean) (Report.ms p99))
        rows;
      Report.newline ())
    results;
  results

(* ------------------------------------------------------------------ *)
(* Fig 11: origin traffic for a fixed file vs loss rate.                *)

let fig11 ?(quick = false) () =
  let file = Leotp_util.Units.mb_to_bytes_int (if quick then 5 else 100) in
  Report.header
    (Printf.sprintf "Fig 11: origin traffic for a %d MB file vs per-hop loss"
       (Leotp_util.Units.bytes_to_mb_int file));
  let plrs = if quick then [ 0.0; 0.01 ] else [ 0.0; 0.005; 0.01; 0.015; 0.02 ] in
  let protos = [ leotp_default; Common.Tcp Cc.Bbr ] in
  let results =
    Runner.grid protos plrs (fun proto plr ->
        let s =
          Common.run_chain ~bytes:file ~duration:2000.0
            ~hops:
              (Common.uniform_hops ~n:5
                 (Common.link ~plr ~bw:20.0 ~delay:0.01 ()))
            proto
        in
        Leotp_util.Units.bytes_to_mb (float_of_int s.Common.wire_bytes))
    |> List.map (fun (proto, rows) -> (Common.protocol_name proto, rows))
  in
  List.iter
    (fun (name, rows) ->
      Report.row "  %-8s" name;
      List.iter (fun (plr, mb) -> Report.row "  plr=%.3f: %.1f MB" plr mb) rows;
      Report.newline ())
    results;
  results

(* ------------------------------------------------------------------ *)
(* Fig 12: throughput vs per-hop PLR (5 hops).                          *)

let fig12 ?(quick = false) () =
  Report.header "Fig 12: throughput vs per-hop loss rate (5 hops, 20 Mbps)";
  let duration = if quick then 15.0 else 60.0 in
  let plrs = if quick then [ 0.0; 0.01 ] else [ 0.0; 0.001; 0.0025; 0.005; 0.01 ] in
  let protos =
    leotp_default
    :: List.map (fun cc -> Common.Tcp cc)
         [ Cc.Cubic; Cc.Hybla; Cc.Westwood; Cc.Vegas; Cc.Bbr; Cc.Pcc ]
  in
  let results =
    Runner.grid protos plrs (fun proto plr ->
        let s =
          Common.run_chain ~duration
            ~hops:
              (Common.uniform_hops ~n:5
                 (Common.link ~plr ~bw:20.0 ~delay:0.01 ()))
            proto
        in
        s.Common.goodput_mbps)
    |> List.map (fun (proto, rows) -> (Common.protocol_name proto, rows))
  in
  List.iter
    (fun (name, rows) ->
      Report.row "  %-10s" name;
      List.iter (fun (plr, t) -> Report.row "  %.2f%%: %5.2f" (plr *. 100.0) t) rows;
      Report.newline ())
    results;
  results

(* ------------------------------------------------------------------ *)
(* Fig 13: throughput vs path-switching interval.                      *)

let fig13 ?(quick = false) () =
  Report.header "Fig 13: throughput vs path switching interval (80/90 ms RTT alternation)";
  let duration = if quick then 20.0 else 80.0 in
  let intervals = if quick then [ 1.0; 8.0 ] else [ 1.0; 2.0; 4.0; 8.0; 16.0 ] in
  let protos =
    [
      leotp_default;
      Common.Tcp Cc.Bbr;
      Common.Tcp Cc.Pcc;
      Common.Tcp Cc.Cubic;
      Common.Tcp Cc.Vegas;
    ]
  in
  (* 4 hops at 20 Mbps; alternating total one-way delay 40 ms <-> 45 ms
     (RTT 80 <-> 90 ms); each switch flushes in-flight packets. *)
  let run proto interval =
    Leotp_net.Packet.reset_ids ();
    Leotp_net.Node.reset_ids ();
    let engine = Leotp_sim.Engine.create () in
    let rng = Leotp_util.Rng.create ~seed:42 in
    let hop d =
      {
        Leotp_net.Dynamic_path.delay = d;
        bandwidth = Bandwidth.Constant (mbps 20.0);
        plr = 0.0;
      }
    in
    let snapshot d = Array.make 4 (hop d) in
    let dp =
      Leotp_net.Dynamic_path.create engine ~rng ~max_hops:4
        ~initial:(snapshot 0.01) ()
    in
    let rec schedule i =
      let time = interval *. float_of_int i in
      if time < duration then begin
        let d = if i mod 2 = 0 then 0.01 else 0.01125 in
        ignore
          (Leotp_sim.Engine.schedule_at engine ~time (fun () ->
               Leotp_net.Dynamic_path.apply dp (snapshot d)));
        schedule (i + 1)
      end
    in
    schedule 1;
    let chain = Leotp_net.Dynamic_path.chain dp in
    let links =
      Array.fold_right
        (fun (d : Leotp_net.Topology.duplex) acc ->
          d.Leotp_net.Topology.fwd :: d.Leotp_net.Topology.rev :: acc)
        chain.Leotp_net.Topology.hops []
    in
    let midnodes = ref [] in
    let metrics =
      Common.observed ~engine ~links
        ~sweep:(fun ~now ->
          List.iter (fun m -> Leotp.Midnode.sweep_pit m ~now) !midnodes)
        ~label:(Printf.sprintf "fig13:%s" (Common.protocol_name proto))
      @@ fun () ->
      let metrics =
        match proto with
        | Common.Tcp cc ->
          let n = Array.length chain.Leotp_net.Topology.nodes - 1 in
          let session =
            Leotp_tcp.Session.connect engine
              ~src_node:chain.Leotp_net.Topology.nodes.(0)
              ~dst_node:chain.Leotp_net.Topology.nodes.(n)
              ~flow:1 ~cc ~source:Leotp_tcp.Sender.Unlimited ()
          in
          Leotp_tcp.Session.start session;
          session.Leotp_tcp.Session.metrics
        | Common.Leotp cfg ->
          let session =
            Leotp.Session.over_chain engine ~config:cfg ~chain ~flow:1 ()
          in
          midnodes := session.Leotp.Session.midnodes;
          Leotp.Session.start session;
          session.Leotp.Session.metrics
        | _ -> invalid_arg "fig13"
      in
      Leotp_sim.Engine.run ~until:duration engine;
      metrics
    in
    Runner.note_sim_seconds (Leotp_sim.Engine.now engine);
    Leotp_util.Units.bytes_per_sec_to_mbps
      (Leotp_util.Timeseries.window_sum
         (Leotp_net.Flow_metrics.delivery metrics)
         ~lo:10.0 ~hi:duration
      /. (duration -. 10.0))
  in
  let results =
    Runner.grid protos intervals run
    |> List.map (fun (proto, rows) -> (Common.protocol_name proto, rows))
  in
  List.iter
    (fun (name, rows) ->
      Report.row "  %-8s" name;
      List.iter (fun (i, t) -> Report.row "  %4.0fs: %5.2f" i t) rows;
      Report.newline ())
    results;
  results

(* ------------------------------------------------------------------ *)
(* Fig 14: throughput-delay trade-off under bandwidth fluctuation.     *)

let fig14 ?(quick = false) () =
  Report.header
    "Fig 14: throughput-OWD trade-off under a fluctuating bottleneck (10 hops)";
  let duration = if quick then 20.0 else 80.0 in
  let hops =
    Common.uniform_hops ~n:10 (Common.link ~bw:20.0 ~delay:0.01 ())
  in
  let schedule =
    [ (1, Bandwidth.square_mbps ~mean:10.0 ~amplitude:1.0 ~period:2.0) ]
  in
  let bl_targets = if quick then [ 20_000; 80_000 ] else [ 10_000; 20_000; 40_000; 80_000; 160_000 ] in
  let runs =
    List.map
      (fun bl ->
        ( Printf.sprintf "leotp-bl%dk" (bl / 1000),
          Common.Leotp { Leotp.Config.default with Leotp.Config.bl_target = bl } ))
      bl_targets
    @ [
        ( "leotp-e2e(D)",
          Common.Leotp
            (Leotp.Config.with_ablation Leotp.Config.No_midnodes
               Leotp.Config.default) );
      ]
    @ List.map
        (fun cc -> (Cc.algo_name cc, Common.Tcp cc))
        [ Cc.Cubic; Cc.Hybla; Cc.Bbr; Cc.Pcc ]
  in
  let results =
    Runner.map
      (List.map
         (fun (label, proto) () ->
           let s =
             Common.run_chain ~duration ~hops ~bandwidth_schedule:schedule proto
           in
           (label, (s.Common.goodput_mbps, Stats.mean s.Common.queuing_delay)))
         runs)
  in
  List.iter
    (fun (name, (tput, q)) ->
      Report.row "  %-14s tput=%5.2f Mbps  queuing=%6.1f ms\n" name tput
        (Report.ms q))
    results;
  results

(* ------------------------------------------------------------------ *)
(* Fig 15: intra-protocol fairness.                                    *)

let fig15 ?(quick = false) () =
  Report.header "Fig 15: fairness of 3 staggered flows sharing a 5 Mbps bottleneck";
  let duration = if quick then 90.0 else 600.0 in
  let starts = if quick then [ 0.0; 25.0; 50.0 ] else [ 0.0; 200.0; 400.0 ] in
  let measure label proto access_delays =
    let summaries, _series =
      Common.run_flows_dumbbell ~duration ~access_delays
        ~bottleneck:(Common.link ~bw:5.0 ~delay:0.015 ())
        ~access:(Common.link ~bw:100.0 ~delay:0.0075 ())
        ~starts proto
    in
    (* Fair-share window: all three flows active. *)
    let lo = List.nth starts 2 +. 20.0 and hi = duration in
    let rates =
      List.map
        (fun s ->
          Leotp_util.Units.bytes_per_sec_to_mbps
            (Leotp_util.Timeseries.window_sum s.Common.delivery ~lo ~hi
            /. (hi -. lo)))
        summaries
    in
    (label, Stats.jain_index rates, rates)
  in
  let same = [ 0.0075; 0.0075; 0.0075 ] in
  (* One-way floors 45/60/75 ms -> RTTs 90/120/150 ms. *)
  let diff = [ 0.015; 0.0225; 0.03 ] in
  let results =
    Runner.map
      [
        (fun () -> measure "leotp same-RTT" leotp_default same);
        (fun () -> measure "bbr   same-RTT" (Common.Tcp Cc.Bbr) same);
        (fun () -> measure "leotp diff-RTT" leotp_default diff);
        (fun () -> measure "bbr   diff-RTT" (Common.Tcp Cc.Bbr) diff);
      ]
  in
  List.iter
    (fun (label, jain, rates) ->
      Report.row "  %-16s jain=%.3f  rates=[%s] Mbps\n" label jain
        (String.concat "; " (List.map (Printf.sprintf "%.2f") rates)))
    results;
  results
