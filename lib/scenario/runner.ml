(* Experiment job runner.

   Every figure/table expresses its sweep as a list of independent thunks
   (each builds its own engine, rng and topology); [map] executes them
   either inline (jobs = 1, the default — exactly the historical
   sequential behaviour) or on a shared Domain_pool.  Results always come
   back in submission order, and jobs reset domain-local id counters at
   their start, so output is bit-identical whatever the parallelism.

   The runner also aggregates per-job perf counters (simulated seconds,
   allocation) for the bench harness's BENCH_*.json records. *)

type counters = {
  jobs_run : int;
  sim_seconds : float;
  alloc_bytes : float;
      (** bytes allocated while running jobs, summed across worker domains *)
}

(* This module *is* the process-wide job-runner singleton: the mutex,
   the pool handle and the perf counters exist once per process by
   design, all access is serialized through [protected], and jobs reset
   their domain-local state on entry — so the shared state here cannot
   leak into job results (verified by the parallel-determinism test). *)
[@@@leotp.allow "no-global-mutable-state"]

let lock = Mutex.create ()
let jobs_setting = ref 1
let pool : Leotp_util.Domain_pool.t option ref = ref None
let c_jobs = ref 0
let c_sim = ref 0.0
let c_alloc = ref 0.0

let protected f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let jobs () = !jobs_setting

let set_jobs n =
  if n < 1 then invalid_arg "Runner.set_jobs: need n >= 1";
  let old =
    protected (fun () ->
        if n = !jobs_setting then None
        else begin
          let old = !pool in
          pool := None;
          jobs_setting := n;
          old
        end)
  in
  Option.iter Leotp_util.Domain_pool.shutdown old

let reset_counters () =
  protected (fun () ->
      c_jobs := 0;
      c_sim := 0.0;
      c_alloc := 0.0)

let counters () =
  protected (fun () ->
      { jobs_run = !c_jobs; sim_seconds = !c_sim; alloc_bytes = !c_alloc })

let note_sim_seconds s =
  if s > 0.0 then protected (fun () -> c_sim := !c_sim +. s)

(* [Gc.allocated_bytes] is domain-local, and each job runs entirely on
   one domain, so the delta is exact even under --jobs N. *)
let instrumented f () =
  let a0 = Gc.allocated_bytes () in
  let r = f () in
  let a1 = Gc.allocated_bytes () in
  protected (fun () ->
      incr c_jobs;
      c_alloc := !c_alloc +. (a1 -. a0));
  r

let get_pool n =
  protected (fun () ->
      match !pool with
      | Some p -> p
      | None ->
        let p = Leotp_util.Domain_pool.create ~size:n in
        pool := Some p;
        p)

let map thunks =
  match !jobs_setting with
  | 1 -> List.map (fun f -> instrumented f ()) thunks
  | n ->
    let p = get_pool n in
    Leotp_util.Domain_pool.map p (fun f -> instrumented f ()) thunks

let grid rows cols f =
  let cells =
    List.concat_map (fun r -> List.map (fun c -> (r, c)) cols) rows
  in
  let outs = map (List.map (fun (r, c) () -> f r c) cells) in
  (* Jobs were submitted row-major, so results regroup by chunks of
     [List.length cols]. *)
  let rec take n xs =
    if n = 0 then ([], xs)
    else
      match xs with
      | x :: tl ->
        let a, b = take (n - 1) tl in
        (x :: a, b)
      | [] -> assert false
  in
  let rec chunk outs = function
    | [] -> []
    | r :: rest ->
      let row_out, outs = take (List.length cols) outs in
      (r, List.combine cols row_out) :: chunk outs rest
  in
  chunk outs rows
