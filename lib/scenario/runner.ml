(* Experiment job runner.

   Every figure/table expresses its sweep as a list of independent thunks
   (each builds its own engine, rng and topology); [map] executes them
   either inline (jobs = 1, the default — exactly the historical
   sequential behaviour) or on a shared Domain_pool.  Results always come
   back in submission order, and jobs reset domain-local id counters at
   their start, so output is bit-identical whatever the parallelism.

   The runner also aggregates per-job perf counters (simulated seconds,
   allocation) for the bench harness's BENCH_*.json records.

   This module *is* the process-wide job-runner singleton, but all of
   its shared state lives in Guarded / Atomic_counter cells, so every
   cross-domain access is a critical section or an atomic op by
   construction — verified by `leotp_lint.exe --race`, not by a blanket
   allow. *)

module Guarded = Leotp_util.Guarded
module Atomic_counter = Leotp_util.Atomic_counter

type counters = {
  jobs_run : int;
  sim_seconds : float;
  alloc_bytes : float;
      (** bytes allocated while running jobs, summed across worker domains *)
  packets : int;
      (** packets created while running jobs, summed across worker domains *)
}

type pool_state = {
  mutable jobs : int;
  mutable pool : Leotp_util.Domain_pool.t option;
}

let state = Guarded.create { jobs = 1; pool = None }
let c_jobs = Atomic_counter.create ()
let c_sim = Atomic_counter.Sum.create ()
let c_alloc = Atomic_counter.Sum.create ()
let c_packets = Atomic_counter.create ()

let jobs () = Guarded.with_ state (fun s -> s.jobs)

let set_jobs n =
  if n < 1 then invalid_arg "Runner.set_jobs: need n >= 1";
  let old =
    Guarded.with_ state (fun s ->
        if n = s.jobs then None
        else begin
          let old = s.pool in
          s.pool <- None;
          s.jobs <- n;
          old
        end)
  in
  Option.iter Leotp_util.Domain_pool.shutdown old

let reset_counters () =
  Atomic_counter.reset c_jobs;
  Atomic_counter.Sum.reset c_sim;
  Atomic_counter.Sum.reset c_alloc;
  Atomic_counter.reset c_packets

let counters () =
  {
    jobs_run = Atomic_counter.get c_jobs;
    sim_seconds = Atomic_counter.Sum.get c_sim;
    alloc_bytes = Atomic_counter.Sum.get c_alloc;
    packets = Atomic_counter.get c_packets;
  }

let note_sim_seconds s = if s > 0.0 then Atomic_counter.Sum.add c_sim s

(* [Gc.allocated_bytes] and the packet-creation count are domain-local,
   and each job runs entirely on one domain, so the deltas are exact
   even under --jobs N — which is what lets the per-packet allocation
   metric gate on the same number whatever the parallelism. *)
let instrumented f () =
  let a0 = Gc.allocated_bytes () in
  let p0 = Leotp_net.Packet.created_on_domain () in
  let r = f () in
  let a1 = Gc.allocated_bytes () in
  let p1 = Leotp_net.Packet.created_on_domain () in
  Atomic_counter.incr c_jobs;
  Atomic_counter.Sum.add c_alloc (a1 -. a0);
  Atomic_counter.add c_packets (p1 - p0);
  r

let get_pool n =
  Guarded.with_ state (fun s ->
      match s.pool with
      | Some p -> p
      | None ->
        let p = Leotp_util.Domain_pool.create ~size:n in
        s.pool <- Some p;
        p)

let map thunks =
  match jobs () with
  | 1 -> List.map (fun f -> instrumented f ()) thunks
  | n ->
    let p = get_pool n in
    Leotp_util.Domain_pool.map p (fun f -> instrumented f ()) thunks

let grid rows cols f =
  let cells =
    List.concat_map (fun r -> List.map (fun c -> (r, c)) cols) rows
  in
  let outs = map (List.map (fun (r, c) () -> f r c) cells) in
  (* Jobs were submitted row-major, so results regroup by chunks of
     [List.length cols]. *)
  let rec take n xs =
    if n = 0 then ([], xs)
    else
      match xs with
      | x :: tl ->
        let a, b = take (n - 1) tl in
        (x :: a, b)
      | [] -> assert false
  in
  let rec chunk outs = function
    | [] -> []
    | r :: rest ->
      let row_out, outs = take (List.length cols) outs in
      (r, List.combine cols row_out) :: chunk outs rest
  in
  chunk outs rows
