(** Seeded scenario fuzzer for the protocol oracle.

    Generates random chain topologies, loss rates, fault schedules and
    concurrency levels (a third of the cases interleave 2-8 flows
    through a shared dumbbell bottleneck), runs each under LEOTP and
    every TCP congestion-control variant with the differential oracle
    ({!Leotp_check.Oracle}) and the scenario invariant checker attached,
    and shrinks failing cases to a minimal replayable spec.

    Deterministic in the root seed; case x protocol cells run through
    {!Runner.map}, so [Runner.set_jobs] parallelizes a sweep without
    changing its outcome. *)

type spec = {
  seed : int;  (** simulation seed for this case *)
  hops : int;
  flows : int;
      (** 1 = one flow over a chain; >1 = that many concurrent flows
          sharing a dumbbell bottleneck (staggered 1 s apart).  Replay
          specs without a [flows=] field parse as 1. *)
  bw_mbps : float;  (** per-hop bandwidth *)
  delay : float;  (** per-hop one-way delay, seconds *)
  plr : float;
  bytes : int;  (** transfer size *)
  duration : float;  (** wall cap; fixed transfers may finish earlier *)
  faults : Leotp_sim.Fault.schedule;
}

type failure = {
  protocol : string;  (** "leotp" or a CC name *)
  spec : spec;  (** shrunk spec (equals [original] when shrinking is off) *)
  original : spec;
  problems : string list;  (** oracle divergences + invariant failures *)
  shrink_runs : int;  (** simulations spent shrinking *)
}

type outcome = {
  cases : int;
  runs : int;  (** simulations in the main sweep (cases x protocols) *)
  oracle_acks : int;  (** ACK events checked across the sweep *)
  failures : failure list;
}

val gen : seed:int -> int -> spec list
(** [gen ~seed n] is the deterministic case list for a sweep. *)

val run : ?shrinking:bool -> seed:int -> cases:int -> unit -> outcome
(** Full sweep; shrinking (on by default) is sequential and only runs
    for failing cells. *)

val replay_to_string : protocol:string -> spec -> string
(** One-line replay spec, [|]-separated [key=value] fields; floats use
    ["%.17g"] so the round-trip is exact. *)

val replay_of_string : string -> (string * spec, string) result

val replay : string -> (string * spec * string list, string) result
(** Parse a replay spec and re-run it, returning the problems found
    (empty = the case no longer fails). *)
