module Engine = Leotp_sim.Engine
module Dynamic_path = Leotp_net.Dynamic_path
module Path_trace = Leotp_net.Path_trace
module Path_service = Leotp_constellation.Path_service
module Walker = Leotp_constellation.Walker
module Cities = Leotp_constellation.Cities
module Geo = Leotp_constellation.Geo
module Rng = Leotp_util.Rng
module Stats = Leotp_util.Stats

type spec = {
  src : string;
  dst : string;
  isls : bool;
  horizon : float;  (** seconds of orbital time *)
  step : float;  (** trace sample step, seconds *)
  route_epoch : float;  (** routing recompute quantum (Memo epoch) *)
  seed : int;
}

let default =
  {
    src = "Beijing";
    dst = "New York";
    isls = true;
    horizon = 3600.0;
    step = 1.0;
    route_epoch = 5.0;
    seed = 42;
  }

(* ------------------------------------------------------------------ *)
(* Generator: drive the Walker constellation over [horizon], sampling
   the route every [step] seconds (Dijkstra runs once per [route_epoch]
   via the Memo), and emit the per-hop timeline.  Bandwidth policy
   matches the parametric Starlink scenario — the Producer uplink is the
   ~10 Mbps bottleneck with the handover "V" dip and per-second bias,
   other hops 20 Mbps, per-kind loss — but here the samples are baked
   into the trace, so a replay needs no RNG agreement with the
   generator. *)

let generate spec =
  let w = Walker.create Walker.starlink in
  let src = Cities.find_exn spec.src and dst = Cities.find_exn spec.dst in
  let samples =
    Path_service.snapshots_with_gaps ~epoch:spec.route_epoch w ~src ~dst
      ~isls:spec.isls ~t_end:spec.horizon ~step:spec.step
  in
  (* Handover flags: the route signature changed vs the last seen route
     (so reacquisition after an outage counts as a handover too). *)
  let flagged =
    let rec go prev acc = function
      | [] -> List.rev acc
      | (t, `No_route) :: rest -> go prev ((t, `No_route, false) :: acc) rest
      | (t, `Route hops) :: rest ->
        let sig_ = Path_service.signature hops in
        let same = Option.equal (List.equal Float.equal) prev (Some sig_) in
        let ho = (not same) && Option.is_some prev in
        go (Some sig_) ((t, `Route hops, ho) :: acc) rest
    in
    go None [] samples
  in
  let handovers =
    List.filter_map (fun (t, _, ho) -> if ho then Some t else None) flagged
  in
  let rng = Rng.substream (Rng.create ~seed:spec.seed) "uplink-bias" in
  let bias =
    Array.init
      (int_of_float spec.horizon + 2)
      (fun _ -> Rng.uniform rng (-0.5) 0.5)
  in
  (* Same shape as Starlink.uplink_trace: a "V" dip of up to 3 Mbps
     within +/-2 s of each handover, +/-0.5 Mbps bias per second. *)
  let uplink_mbps t =
    let v_dip =
      List.fold_left
        (fun acc h ->
          let x = Float.abs (t -. h) in
          if x < 2.0 then Float.max acc (3.0 *. (1.0 -. (x /. 2.0))) else acc)
        0.0 handovers
    in
    Float.max 1.0 (Starlink.uplink_mean_bw -. v_dip +. bias.(int_of_float t))
  in
  let records =
    List.map
      (fun (t, entry, ho) ->
        match entry with
        | `No_route -> { Path_trace.time = t; event = Path_trace.No_route }
        | `Route hops ->
          let mapped =
            List.mapi
              (fun i (h : Path_service.hop) ->
                let delay = Geo.propagation_delay h.Path_service.distance in
                let bw_mbps, plr =
                  match h.Path_service.kind with
                  | Path_service.Gsl when i = 0 ->
                    (* Producer ground station uplink: the bottleneck. *)
                    (uplink_mbps t, Starlink.gsl_plr)
                  | Path_service.Gsl -> (Starlink.other_bw, Starlink.gsl_plr)
                  | Path_service.Isl -> (Starlink.other_bw, Starlink.isl_plr)
                in
                let kind =
                  match h.Path_service.kind with
                  | Path_service.Gsl -> Path_trace.Gsl
                  | Path_service.Isl -> Path_trace.Isl
                in
                { Path_trace.delay; bw_mbps; plr; kind })
              hops
          in
          (* Routes are Producer side first; trace hops are stored in the
             Dynamic_path orientation (Consumer side first). *)
          {
            Path_trace.time = t;
            event =
              Path_trace.Route
                {
                  hops = Array.of_list (List.rev mapped);
                  handover = ho;
                };
          })
      flagged
  in
  {
    Path_trace.meta =
      {
        Path_trace.seed = spec.seed;
        src = spec.src;
        dst = spec.dst;
        isls = spec.isls;
        step = spec.step;
        horizon = spec.horizon;
      };
    records;
  }

(* ------------------------------------------------------------------ *)
(* Replay: one bulk flow over a Dynamic_path fed by the trace. *)

type run_result = {
  summary : Common.summary;
  switches : int;
  handovers : int;
  outages : int;  (** outage interval count *)
  outage_fraction : float;
  mean_hops : float;
  digest : string;  (** packet-trace digest: the determinism witness *)
}

let run ?seed ?(interp = Dynamic_path.Hold_last) ?duration
    ?(protocol = Common.Leotp Leotp.Config.default) ?(label = "pathtrace")
    (trace : Path_trace.t) =
  if Path_trace.route_count trace = 0 then
    invalid_arg "Pathtrace.run: trace has no route records";
  Leotp_net.Packet.reset_ids ();
  Leotp_net.Node.reset_ids ();
  let meta = trace.Path_trace.meta in
  let seed =
    match seed with Some s -> s | None -> meta.Path_trace.seed
  in
  let duration =
    match duration with Some d -> d | None -> meta.Path_trace.horizon
  in
  let warmup = Float.min 15.0 (0.15 *. duration) in
  let engine = Engine.create () in
  let rng = Rng.create ~seed in
  let max_hops = min 24 (Path_trace.max_hop_count trace) in
  let initial =
    match
      List.find_map
        (fun (r : Path_trace.record) ->
          match r.Path_trace.event with
          | Path_trace.Route { hops; _ } -> Some hops
          | Path_trace.No_route -> None)
        trace.Path_trace.records
    with
    | Some hops -> Dynamic_path.snapshot_of_hops ~max_hops hops
    | None -> assert false
  in
  let dp = Dynamic_path.create engine ~rng ~max_hops ~initial () in
  Dynamic_path.schedule_trace ~interp dp trace;
  let chain = Dynamic_path.chain dp in
  let links =
    Array.fold_left
      (fun acc (d : Leotp_net.Topology.duplex) ->
        d.Leotp_net.Topology.fwd :: d.Leotp_net.Topology.rev :: acc)
      []
      chain.Leotp_net.Topology.hops
  in
  let recorder = Leotp_net.Trace.create ~capacity:1 () in
  let n = Array.length chain.Leotp_net.Topology.nodes - 1 in
  let metrics =
    Common.observed ~engine ~links ~trace:recorder ~label (fun () ->
        let metrics =
          match protocol with
          | Common.Tcp cc ->
            (* Data flows producer (node n) -> consumer (node 0), the
               LEOTP orientation, so the same bottleneck applies. *)
            let session =
              Leotp_tcp.Session.connect engine
                ~src_node:chain.Leotp_net.Topology.nodes.(n)
                ~dst_node:chain.Leotp_net.Topology.nodes.(0)
                ~flow:1 ~cc ~source:Leotp_tcp.Sender.Unlimited ()
            in
            Leotp_tcp.Session.start session;
            session.Leotp_tcp.Session.metrics
          | Common.Leotp cfg ->
            let session =
              Leotp.Session.over_chain engine ~config:cfg ~chain ~flow:1 ()
            in
            Leotp.Session.start session;
            session.Leotp.Session.metrics
          | Common.Leotp_partial (cfg, coverage) ->
            let session =
              Leotp.Session.over_chain engine ~config:cfg ~chain ~flow:1
                ~coverage
                ~coverage_rng:(Rng.substream rng "coverage")
                ()
            in
            Leotp.Session.start session;
            session.Leotp.Session.metrics
          | Common.Split_tcp _ ->
            invalid_arg "Pathtrace.run: split tcp not used here"
        in
        Engine.run ~until:duration engine;
        metrics)
  in
  Runner.note_sim_seconds (Engine.now engine);
  let summary =
    Common.summarize
      ~protocol:(Common.protocol_name protocol)
      ~metrics
      ~floor:(Path_trace.min_total_delay trace)
      ~warmup ~duration ()
  in
  {
    summary;
    switches = Dynamic_path.switch_count dp;
    handovers = Path_trace.handover_count trace;
    outages = List.length (Path_trace.outage_intervals trace);
    outage_fraction = Path_trace.outage_fraction trace;
    mean_hops = Path_trace.mean_hop_count trace;
    digest = Leotp_net.Trace.digest recorder;
  }

(* ------------------------------------------------------------------ *)
(* Long-horizon experiment family: ISL long haul (hundreds of
   handovers), a bent-pipe outage storm, and a polar vs equatorial
   comparison.  Cells are independent and run under Runner.map, so the
   results — including digests — are bit-identical for any --jobs N. *)

type cell = { label : string; spec : spec }

let family ~quick =
  if quick then
    [
      { label = "bj-ny-isl"; spec = { default with horizon = 120.0 } };
      {
        label = "hk-tokyo-bent";
        spec =
          {
            default with
            src = "Hong Kong";
            dst = "Tokyo";
            isls = false;
            horizon = 180.0;
            route_epoch = 1.0;
          };
      };
    ]
  else
    [
      { label = "bj-ny-isl"; spec = default };
      {
        label = "hk-tokyo-bent";
        spec =
          {
            default with
            src = "Hong Kong";
            dst = "Tokyo";
            isls = false;
            route_epoch = 1.0;
          };
      };
      {
        label = "polar-spb-moscow";
        spec =
          {
            default with
            src = "Saint Petersburg";
            dst = "Moscow";
            horizon = 1800.0;
          };
      };
      {
        label = "equator-sgp-nairobi";
        spec =
          {
            default with
            src = "Singapore";
            dst = "Nairobi";
            horizon = 1800.0;
          };
      };
    ]

let experiment ?(quick = false) () =
  Report.header
    "Path trace: long-horizon trace-driven dynamic paths (gen -> replay)";
  let results =
    Runner.map
      (List.map
         (fun c () ->
           let tr = generate c.spec in
           (c, run ~label:c.label tr))
         (family ~quick))
  in
  List.iter
    (fun (c, r) ->
      Report.row
        "  %-20s %5.0fs %s  hops~%4.1f  handovers %4d  outages %3d \
         (%4.1f%%)  switches %4d\n"
        c.label c.spec.horizon
        (if c.spec.isls then "isl " else "bent")
        r.mean_hops r.handovers r.outages
        (100.0 *. r.outage_fraction)
        r.switches;
      Report.row
        "  %-20s tput=%5.2f Mbps  owd(avg)=%6.1fms  p99=%6.1fms  digest %s\n"
        "" r.summary.Common.goodput_mbps
        (Report.ms (Stats.mean r.summary.Common.owd))
        (Report.ms (Stats.percentile r.summary.Common.owd 99.0))
        r.digest)
    results;
  results
