module Engine = Leotp_sim.Engine
module Fault = Leotp_sim.Fault
module Bandwidth = Leotp_net.Bandwidth
module Topology = Leotp_net.Topology
module Node = Leotp_net.Node
module Link = Leotp_net.Link
module Trace = Leotp_net.Trace
module Flow_metrics = Leotp_net.Flow_metrics
module Stats = Leotp_util.Stats

let mbps = Leotp_util.Units.mbps_to_bytes_per_sec

type protocol =
  | Tcp of Leotp_tcp.Cc.algo
  | Split_tcp of Leotp_tcp.Cc.algo
  | Leotp of Leotp.Config.t
  | Leotp_partial of Leotp.Config.t * float

let protocol_name = function
  | Tcp cc -> Leotp_tcp.Cc.algo_name cc
  | Split_tcp cc -> "split-" ^ Leotp_tcp.Cc.algo_name cc
  | Leotp cfg -> (
    match cfg.Leotp.Config.ablation with
    | Leotp.Config.Full -> "leotp"
    | Leotp.Config.No_cache -> "leotp-B(no-cache)"
    | Leotp.Config.E2e_cc -> "leotp-C(e2e-cc)"
    | Leotp.Config.No_midnodes -> "leotp-D(e2e)")
  | Leotp_partial (_, cov) -> Printf.sprintf "leotp-%.0f%%cov" (cov *. 100.0)

type link_params = {
  bandwidth_mbps : float;
  delay : float;
  plr : float;
  buffer_bytes : int;
}

let link ?(plr = 0.0) ?(buffer_bytes = 256 * 1024) ~bw ~delay () =
  { bandwidth_mbps = bw; delay; plr; buffer_bytes }

type summary = {
  protocol : string;
  goodput_mbps : float;
  owd : Stats.t;
  retx_owd : Stats.t;
  queuing_delay : Stats.t;
  retransmissions : int;
  wire_bytes : int;
  app_bytes : int;
  completion_time : float option;
  delivery : Leotp_util.Timeseries.t;
  duration : float;
  congestion_drops : int;
}

let uniform_hops ~n p = List.init n (fun _ -> p)

let to_spec p =
  Topology.hop ~plr:p.plr ~buffer_bytes:p.buffer_bytes
    ~bandwidth:(Bandwidth.Constant (mbps p.bandwidth_mbps))
    ~delay:p.delay ()

let summarize ?(congestion_drops = 0) ~protocol ~metrics ~floor ~warmup
    ~duration () =
  let owd = Flow_metrics.owd metrics in
  let queuing = Stats.create () in
  List.iter
    (fun s -> Stats.add queuing (Float.max 0.0 (s -. floor)))
    (Stats.to_list owd);
  let goodput_window_bytes =
    Leotp_util.Timeseries.window_sum (Flow_metrics.delivery metrics) ~lo:warmup
      ~hi:duration
  in
  let goodput_mbps =
    match Flow_metrics.completion_time metrics with
    | Some ct when ct > 0.0 ->
      Leotp_util.Units.bytes_per_sec_to_mbps
        (float_of_int (Flow_metrics.app_bytes metrics) /. ct)
    | _ ->
      if duration > warmup then
        Leotp_util.Units.bytes_per_sec_to_mbps
          (goodput_window_bytes /. (duration -. warmup))
      else 0.0
  in
  {
    protocol;
    goodput_mbps;
    owd;
    retx_owd = Flow_metrics.retx_owd metrics;
    queuing_delay = queuing;
    retransmissions = Flow_metrics.retransmissions metrics;
    wire_bytes = Flow_metrics.wire_bytes_sent metrics;
    app_bytes = Flow_metrics.app_bytes metrics;
    completion_time = Flow_metrics.completion_time metrics;
    delivery = Flow_metrics.delivery metrics;
    duration;
    congestion_drops;
  }

let chain_links (chain : Topology.chain) =
  Array.fold_right
    (fun d acc -> d.Topology.fwd :: d.Topology.rev :: acc)
    chain.Topology.hops []

(* Resolve a fault event's abstract target onto this scenario's links /
   midnodes and apply it.  Targets index modulo the available pool so a
   generic random schedule fits any topology; link actions aimed at a
   midnode target (or vice versa) are ignored. *)
let apply_fault ~hops ~midnodes (ev : Fault.event) =
  let hop_links i =
    let n = Array.length hops in
    if n = 0 then []
    else
      let d = hops.(((i mod n) + n) mod n) in
      [ d.Topology.fwd; d.Topology.rev ]
  in
  let mid k =
    match !midnodes with
    | [] -> None
    | l -> Some (List.nth l (((k mod List.length l) + List.length l) mod List.length l))
  in
  (match ev.Fault.action with
  | Fault.Link_down (Fault.Hop i) ->
    List.iter (fun l -> Link.set_up l false) (hop_links i)
  | Fault.Link_up (Fault.Hop i) ->
    List.iter (fun l -> Link.set_up l true) (hop_links i)
  | Fault.Set_plr (Fault.Hop i, p) ->
    List.iter (fun l -> Link.set_plr l p) (hop_links i)
  | Fault.Set_bw_mbps (Fault.Hop i, b) ->
    List.iter
      (fun l -> Link.set_bandwidth l (Bandwidth.Constant (mbps b)))
      (hop_links i)
  | Fault.Set_dup (Fault.Hop i, p) ->
    List.iter (fun l -> Link.set_dup_prob l p) (hop_links i)
  | Fault.Set_reorder (Fault.Hop i, p, j) ->
    List.iter (fun l -> Link.set_reorder l ~prob:p ~jitter:j) (hop_links i)
  | Fault.Crash (Fault.Mid k) -> Option.iter Leotp.Midnode.crash (mid k)
  | Fault.Restart (Fault.Mid k) -> Option.iter Leotp.Midnode.restart (mid k)
  | Fault.Link_down (Fault.Mid _)
  | Fault.Link_up (Fault.Mid _)
  | Fault.Set_plr (Fault.Mid _, _)
  | Fault.Set_bw_mbps (Fault.Mid _, _)
  | Fault.Set_dup (Fault.Mid _, _)
  | Fault.Set_reorder (Fault.Mid _, _, _)
  | Fault.Crash (Fault.Hop _)
  | Fault.Restart (Fault.Hop _) -> ());
  if Trace.on () then
    Trace.emit (Trace.Fault { what = Fault.event_to_string ev })

let observed ~engine ~links ?trace ?on_reports ?(sweep = fun ~now:_ -> ())
    ~label f =
  let self = Atomic.get Invariants.self_check in
  let checker =
    if self || Option.is_some on_reports then Some (Invariants.create ())
    else None
  in
  let recorder =
    match trace with
    | Some _ as t -> t
    | None ->
      (* Sink-only recorder: invariants fold incrementally, so a one-slot
         undigested ring keeps both memory and per-event cost flat while
         the sinks still see every event. *)
      if Option.is_some checker then
        Some (Trace.create ~capacity:1 ~digesting:false ())
      else None
  in
  match recorder with
  | None -> f ()
  | Some r ->
    Option.iter (fun c -> Trace.add_sink r (Invariants.sink c)) checker;
    Trace.with_recorder r
      ~clock:(fun () -> Engine.now engine)
      (fun () ->
        let result = f () in
        let now = Engine.now engine in
        sweep ~now;
        List.iter Link.trace_final links;
        (match checker with
        | None -> ()
        | Some c ->
          let reports = Invariants.finalize ~now c in
          (match on_reports with Some k -> k reports | None -> ());
          if self && not (Invariants.all_ok reports) then
            raise
              (Invariants.Violation
                 (Printf.sprintf "%s: invariant violation\n%s" label
                    (Invariants.to_string reports))));
        result)

let run_chain ?(seed = 42) ?bytes ?(duration = 60.0) ?(warmup = 10.0)
    ?bottleneck ?(bandwidth_schedule = []) ?(faults = []) ?trace ?on_reports
    ~hops protocol =
  Leotp_net.Packet.reset_ids ();
  Node.reset_ids ();
  let engine = Engine.create () in
  let rng = Leotp_util.Rng.create ~seed in
  let hops =
    match bottleneck with
    | None -> hops
    | Some (idx, p) -> List.mapi (fun i h -> if i = idx then p else h) hops
  in
  let floor = List.fold_left (fun acc h -> acc +. h.delay) 0.0 hops in
  let specs = Array.of_list (List.map to_spec hops) in
  let chain = Topology.chain engine ~rng specs in
  List.iter
    (fun (idx, bw) ->
      let d = chain.Topology.hops.(idx) in
      Leotp_net.Link.set_bandwidth d.Topology.fwd bw;
      Leotp_net.Link.set_bandwidth d.Topology.rev bw)
    bandwidth_schedule;
  let n = Array.length chain.Topology.nodes - 1 in
  let midnodes = ref [] in
  if faults <> [] then
    Fault.install engine
      ~apply:(apply_fault ~hops:chain.Topology.hops ~midnodes)
      faults;
  observed ~engine ~links:(chain_links chain) ?trace ?on_reports
    ~sweep:(fun ~now ->
      List.iter (fun m -> Leotp.Midnode.sweep_pit m ~now) !midnodes)
    ~label:(protocol_name protocol)
  @@ fun () ->
  let metrics =
    match protocol with
    | Tcp cc ->
      let source =
        match bytes with
        | Some b -> Leotp_tcp.Sender.Fixed b
        | None -> Leotp_tcp.Sender.Unlimited
      in
      let session =
        Leotp_tcp.Session.connect engine ~src_node:chain.Topology.nodes.(0)
          ~dst_node:chain.Topology.nodes.(n) ~flow:1 ~cc ~source ()
      in
      Leotp_tcp.Session.start session;
      session.Leotp_tcp.Session.metrics
    | Split_tcp cc ->
      let source =
        match bytes with
        | Some b -> Leotp_tcp.Sender.Fixed b
        | None -> Leotp_tcp.Sender.Unlimited
      in
      let split =
        Leotp_tcp.Split.connect engine ~nodes:chain.Topology.nodes ~flow:1 ~cc
          ~source ()
      in
      Leotp_tcp.Split.start split;
      Leotp_tcp.Split.metrics split
    | Leotp cfg ->
      let session =
        Leotp.Session.over_chain engine ~config:cfg ~chain ~flow:1
          ?total_bytes:bytes ()
      in
      midnodes := session.Leotp.Session.midnodes;
      Leotp.Session.start session;
      session.Leotp.Session.metrics
    | Leotp_partial (cfg, coverage) ->
      let session =
        Leotp.Session.over_chain engine ~config:cfg ~chain ~flow:1
          ?total_bytes:bytes ~coverage
          ~coverage_rng:(Leotp_util.Rng.substream rng "coverage")
          ()
      in
      midnodes := session.Leotp.Session.midnodes;
      Leotp.Session.start session;
      session.Leotp.Session.metrics
  in
  Engine.run ~until:duration engine;
  Runner.note_sim_seconds (Engine.now engine);
  let congestion_drops =
    Array.fold_left
      (fun acc d ->
        acc
        + (Leotp_net.Link.stats d.Topology.fwd).Leotp_net.Link.drops_tail
        + (Leotp_net.Link.stats d.Topology.rev).Leotp_net.Link.drops_tail)
      0 chain.Topology.hops
  in
  summarize ~congestion_drops ~protocol:(protocol_name protocol) ~metrics
    ~floor ~warmup ~duration ()

let run_flows_dumbbell ?(seed = 42) ?bytes ?(duration = 600.0) ?(faults = [])
    ?trace ?on_reports ~access_delays ~bottleneck ~access ~starts protocol =
  Leotp_net.Packet.reset_ids ();
  Node.reset_ids ();
  let engine = Engine.create () in
  let rng = Leotp_util.Rng.create ~seed in
  let n = List.length access_delays in
  assert (List.length starts = n);
  let access_specs =
    Array.of_list
      (List.map (fun d -> to_spec { access with delay = d }) access_delays)
  in
  let db =
    Topology.dumbbell engine ~rng ~access:access_specs
      ~bottleneck:(to_spec bottleneck)
  in
  let floor i = (2.0 *. List.nth access_delays i) +. bottleneck.delay in
  let all_midnodes = ref [] in
  let links =
    db.Topology.bottleneck.Topology.fwd :: db.Topology.bottleneck.Topology.rev
    :: List.concat_map
         (fun (d : Topology.duplex) -> [ d.Topology.fwd; d.Topology.rev ])
         (Array.to_list db.Topology.sender_links
         @ Array.to_list db.Topology.receiver_links)
  in
  (* Fault targets resolve modulo this pool: bottleneck first so Hop 0
     always hits the shared link, then the per-flow access duplexes. *)
  let fault_hops =
    Array.of_list
      (db.Topology.bottleneck
      :: Array.to_list db.Topology.sender_links
      @ Array.to_list db.Topology.receiver_links)
  in
  if faults <> [] then
    Fault.install engine
      ~apply:(apply_fault ~hops:fault_hops ~midnodes:all_midnodes)
      faults;
  let source =
    match bytes with
    | Some b -> Leotp_tcp.Sender.Fixed b
    | None -> Leotp_tcp.Sender.Unlimited
  in
  observed ~engine ~links ?trace ?on_reports
    ~sweep:(fun ~now ->
      List.iter (fun m -> Leotp.Midnode.sweep_pit m ~now) !all_midnodes)
    ~label:("dumbbell:" ^ protocol_name protocol)
  @@ fun () ->
  let all_metrics =
    match protocol with
    | Tcp cc ->
      List.init n (fun i ->
          let session =
            Leotp_tcp.Session.connect engine
              ~src_node:db.Topology.senders.(i)
              ~dst_node:db.Topology.receivers.(i)
              ~flow:(i + 1) ~cc ~source ()
          in
          ignore
            (Engine.schedule_at engine ~time:(List.nth starts i) (fun () ->
                 Leotp_tcp.Session.start session));
          session.Leotp_tcp.Session.metrics)
    | Leotp cfg ->
      (* Shared Midnodes on the two routers. *)
      let midnodes =
        match cfg.Leotp.Config.ablation with
        | Leotp.Config.No_midnodes -> []
        | _ ->
          [
            Leotp.Midnode.create engine ~config:cfg ~node:db.Topology.left ();
            Leotp.Midnode.create engine ~config:cfg ~node:db.Topology.right ();
          ]
      in
      all_midnodes := midnodes;
      List.init n (fun i ->
          (* Data flows sender -> receiver: the sender node is the
             Producer, the receiver node the Consumer. *)
          let session =
            Leotp.Session.attach engine ~config:cfg
              ~consumer_node:db.Topology.receivers.(i)
              ~producer_node:db.Topology.senders.(i)
              ~midnodes ~flow:(i + 1) ?total_bytes:bytes ()
          in
          ignore
            (Engine.schedule_at engine ~time:(List.nth starts i) (fun () ->
                 Leotp.Session.start session));
          session.Leotp.Session.metrics)
    | Split_tcp _ | Leotp_partial _ ->
      invalid_arg "run_flows_dumbbell: unsupported protocol"
  in
  Engine.run ~until:duration engine;
  Runner.note_sim_seconds (Engine.now engine);
  let summaries =
    List.mapi
      (fun i m ->
        summarize
          ~protocol:(protocol_name protocol)
          ~metrics:m ~floor:(floor i)
          ~warmup:(List.nth starts i +. 20.0)
          ~duration ())
      all_metrics
  in
  let series =
    List.map
      (fun m ->
        List.map
          (fun (t, bps) -> (t, Leotp_util.Units.bytes_per_sec_to_mbps bps))
          (Leotp_util.Timeseries.rate_series (Flow_metrics.delivery m)
             ~width:5.0 ~t_end:duration))
      all_metrics
  in
  (summaries, series)

let run_faulted ?seed ?bytes ?duration ?warmup ?(faults = []) ?trace ~hops
    protocol =
  let reports = ref [] in
  let summary =
    run_chain ?seed ?bytes ?duration ?warmup ~faults ?trace
      ~on_reports:(fun r -> reports := r)
      ~hops protocol
  in
  (summary, !reports)
