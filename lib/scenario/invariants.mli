(** Protocol-invariant checker over a packet trace.

    Attach {!sink} to a {!Leotp_net.Trace} recorder; state folds
    incrementally (so ring eviction never loses accounting), and
    {!finalize} renders five named verdicts:

    - ["pit-lifetime"] — PIT bookkeeping is conservative (every satisfy /
      expire matches a registration, the advertised pending count matches
      an exact replay of the events), fresh satisfies are within the
      entry's lifetime, and no entry outlives its expiry at end of run.
    - ["cache-capacity"] — cache occupancy never exceeds the configured
      capacity at any traced point.
    - ["delivery-order"] — per (node, flow), application delivery is
      exactly-once and in-order (prefix positions are contiguous from 0),
      and any completion byte count matches the delivered total.
    - ["link-conservation"] — per link, offered + duplicated = delivered
      + dropped + still-queued + still-in-flight, with the event stream
      agreeing with the link's own final counters.
    - ["rto-floor"] — no TR / TCP retransmission timeout fired earlier
      than min (SRTT + 4*RTTVAR, armed timeout) (RFC 6298).

    Scenarios run self-checking when {!self_check} is set (see
    {!Common.observed}); violations raise {!Violation}. *)

type report = { invariant : string; ok : bool; detail : string }

type t

val create : unit -> t
val sink : t -> Leotp_net.Trace.record -> unit

val finalize : ?eps:float -> now:float -> t -> report list
(** [now] is the end-of-run clock (for PIT end-of-run ages); [eps]
    defaults to 1e-9 seconds of slack on time comparisons. *)

val all_ok : report list -> bool
val to_string : report list -> string

exception Violation of string

val self_check : bool Atomic.t
(** When set, every {!Common.observed} scenario attaches a checker and
    raises {!Violation} at the end of the run if any invariant fails.
    Atomic (it is read from worker domains); set it before the first
    job runs so every run of a sweep is checked alike. *)

val check : ?eps:float -> now:float -> label:string -> t -> unit
(** Finalize and raise {!Violation} (prefixed with [label]) unless all
    five invariants hold. *)
