(** Paper-style row printers shared by the bench harness and examples. *)

(* This module is the one place in lib/ that may write to stdout: every
   other module formats its experiment output through these helpers, so
   the no-direct-print lint rule is allowed here and only here. *)
[@@@leotp.allow "no-direct-print"]

let ms s = Leotp_util.Units.sec_to_ms s

let header title =
  Printf.printf "\n=== %s ===\n" title

let subheader s = Printf.printf "--- %s ---\n" s

let row fmt = Printf.printf fmt
let newline () = print_newline ()

let summary_line (s : Common.summary) =
  Printf.printf
    "  %-20s  tput=%6.2f Mbps  owd(avg/p99)=%6.1f/%6.1f ms  queue(avg)=%6.1f ms  retx=%d\n"
    s.Common.protocol s.Common.goodput_mbps
    (ms (Leotp_util.Stats.mean s.Common.owd))
    (ms (Leotp_util.Stats.percentile s.Common.owd 99.0))
    (ms (Leotp_util.Stats.mean s.Common.queuing_delay))
    s.Common.retransmissions

let cdf_rows ?(points = 10) name stats =
  Printf.printf "  CDF %s:" name;
  List.iter
    (fun (v, f) -> Printf.printf " (%.1fms, %.2f)" (ms v) f)
    (Leotp_util.Stats.cdf_points ~points stats);
  print_newline ()

let percentiles name stats =
  Printf.printf "  %-12s mean=%6.1f p50=%6.1f p90=%6.1f p99=%6.1f max=%6.1f (ms)\n"
    name
    (ms (Leotp_util.Stats.mean stats))
    (ms (Leotp_util.Stats.percentile stats 50.0))
    (ms (Leotp_util.Stats.percentile stats 90.0))
    (ms (Leotp_util.Stats.percentile stats 99.0))
    (ms (Leotp_util.Stats.max stats))
