module Engine = Leotp_sim.Engine
module Bandwidth = Leotp_net.Bandwidth
module Dynamic_path = Leotp_net.Dynamic_path
module Path_service = Leotp_constellation.Path_service
module Walker = Leotp_constellation.Walker
module Cities = Leotp_constellation.Cities
module Stats = Leotp_util.Stats
module Cc = Leotp_tcp.Cc

let mbps = Leotp_util.Units.mbps_to_bytes_per_sec

type pair_result = {
  summary : Common.summary;
  mean_hops : float;
  min_propagation : float;
  switches : int;
}

let gsl_plr = 0.01
let isl_plr = 0.001
let other_bw = 20.0
let uplink_mean_bw = 10.0

(* GSL uplink bandwidth trace: 10 Mbps mean, a "V" dip of up to 3 Mbps
   within +/-2 s of each handover, and a +/-0.5 Mbps bias resampled each
   second (paper §V-C (ii) and (iv)). *)
let uplink_trace ~rng ~handovers ~t_end =
  let step = 0.25 in
  let n = int_of_float (t_end /. step) + 2 in
  let steps =
    Array.init n (fun i ->
        let t = float_of_int i *. step in
        let v_dip =
          List.fold_left
            (fun acc h ->
              let x = Float.abs (t -. h) in
              if x < 2.0 then Float.max acc (3.0 *. (1.0 -. (x /. 2.0))) else acc)
            0.0 handovers
        in
        (t, v_dip))
  in
  (* Bias: one draw per second, shared across the 0.25 s grid. *)
  let bias = Array.init (int_of_float t_end + 2) (fun _ -> Leotp_util.Rng.uniform rng (-0.5) 0.5) in
  Bandwidth.Steps
    (Array.map
       (fun (t, dip) ->
         let b = bias.(int_of_float t) in
         (t, mbps (Float.max 1.0 (uplink_mean_bw -. dip +. b))))
       steps)

(* Convert a route (Producer side first) into a Dynamic_path snapshot
   (Consumer side first). *)
let to_snapshot ~uplink_bw hops =
  let mapped =
    List.mapi
      (fun i (h : Path_service.hop) ->
        let delay = Leotp_constellation.Geo.propagation_delay h.Path_service.distance in
        match h.Path_service.kind with
        | Path_service.Gsl when i = 0 ->
          (* Uplink out of the Producer's ground station: the bottleneck. *)
          { Dynamic_path.delay; bandwidth = uplink_bw; plr = gsl_plr }
        | Path_service.Gsl ->
          { Dynamic_path.delay; bandwidth = Bandwidth.Constant (mbps other_bw); plr = gsl_plr }
        | Path_service.Isl ->
          { Dynamic_path.delay; bandwidth = Bandwidth.Constant (mbps other_bw); plr = isl_plr })
      hops
  in
  Array.of_list (List.rev mapped)

let run_pair ?(quick = false) ?(seed = 42) ~src ~dst ~isls protocol =
  Leotp_net.Packet.reset_ids ();
  Leotp_net.Node.reset_ids ();
  let duration = if quick then 25.0 else 100.0 in
  let warmup = if quick then 6.0 else 15.0 in
  let recompute = 5.0 in
  let w = Walker.create Walker.starlink in
  let c_src = Cities.find_exn src and c_dst = Cities.find_exn dst in
  let snaps =
    Path_service.snapshots w ~src:c_src ~dst:c_dst ~isls ~t_end:duration
      ~step:recompute
  in
  if snaps = [] then
    invalid_arg (Printf.sprintf "no route between %s and %s" src dst);
  let mean_hops = Path_service.mean_hop_count snaps in
  let min_propagation =
    List.fold_left
      (fun acc (_, h) -> Float.min acc (Path_service.total_delay h))
      Float.infinity snaps
  in
  (* Handover times: route (hop-count or per-hop distance) changes.
     Signatures are float lists, so the comparison must be
     [Option.equal (List.equal Float.equal)] — polymorphic [<>] on a
     float-containing structure is boxed and nan-unsound (and is now
     caught by the no-polymorphic-compare-on-float lint rule). *)
  let handovers =
    let rec go prev = function
      | [] -> []
      | (t, h) :: rest ->
        let sig_ = Path_service.signature h in
        let same = Option.equal (List.equal Float.equal) prev (Some sig_) in
        if (not same) && Option.is_some prev then t :: go (Some sig_) rest
        else go (Some sig_) rest
    in
    go None snaps
  in
  let engine = Engine.create () in
  let rng = Leotp_util.Rng.create ~seed in
  let uplink_bw = uplink_trace ~rng:(Leotp_util.Rng.substream rng "uplink") ~handovers ~t_end:duration in
  let max_hops =
    min 24 (List.fold_left (fun acc (_, h) -> max acc (Path_service.hop_count h)) 2 snaps)
  in
  let initial = to_snapshot ~uplink_bw (snd (List.hd snaps)) in
  let initial =
    if Array.length initial > max_hops then Array.sub initial 0 max_hops
    else initial
  in
  let dp = Dynamic_path.create engine ~rng ~max_hops ~initial () in
  Dynamic_path.schedule dp
    (List.filter_map
       (fun (t, h) ->
         if Float.equal t 0.0 then None
         else begin
           let s = to_snapshot ~uplink_bw h in
           let s = if Array.length s > max_hops then Array.sub s 0 max_hops else s in
           Some (t, s)
         end)
       snaps);
  let chain = Dynamic_path.chain dp in
  let n = Array.length chain.Leotp_net.Topology.nodes - 1 in
  let metrics =
    match protocol with
    | Common.Tcp cc ->
      (* Data flows producer (node n) -> consumer (node 0) to match the
         LEOTP orientation, so the same snapshot bottleneck applies. *)
      let session =
        Leotp_tcp.Session.connect engine
          ~src_node:chain.Leotp_net.Topology.nodes.(n)
          ~dst_node:chain.Leotp_net.Topology.nodes.(0)
          ~flow:1 ~cc ~source:Leotp_tcp.Sender.Unlimited ()
      in
      Leotp_tcp.Session.start session;
      session.Leotp_tcp.Session.metrics
    | Common.Leotp cfg ->
      let session =
        Leotp.Session.over_chain engine ~config:cfg ~chain ~flow:1 ()
      in
      Leotp.Session.start session;
      session.Leotp.Session.metrics
    | Common.Leotp_partial (cfg, coverage) ->
      let session =
        Leotp.Session.over_chain engine ~config:cfg ~chain ~flow:1 ~coverage
          ~coverage_rng:(Leotp_util.Rng.substream rng "coverage")
          ()
      in
      Leotp.Session.start session;
      session.Leotp.Session.metrics
    | Common.Split_tcp _ -> invalid_arg "run_pair: split tcp not used here"
  in
  Engine.run ~until:duration engine;
  Runner.note_sim_seconds (Engine.now engine);
  let summary =
    Common.summarize
      ~protocol:(Common.protocol_name protocol)
      ~metrics ~floor:min_propagation ~warmup ~duration ()
  in
  {
    summary;
    mean_hops;
    min_propagation;
    switches = Dynamic_path.switch_count dp;
  }

let protos_161718 =
  [
    (Common.Leotp Leotp.Config.default : Common.protocol);
    Common.Tcp Cc.Bbr;
    Common.Tcp Cc.Pcc;
    Common.Tcp Cc.Hybla;
  ]

let fig16 ?(quick = false) () =
  Report.header "Fig 16: Beijing-Shanghai (no ISLs): OWD / throughput";
  let results =
    Runner.map
      (List.map
         (fun proto () ->
           let r =
             run_pair ~quick ~src:"Beijing" ~dst:"Shanghai" ~isls:false proto
           in
           (Common.protocol_name proto, r))
         protos_161718)
  in
  List.iter
    (fun (name, r) ->
      Report.row
        "  %-8s tput=%5.2f Mbps  owd(avg)=%6.1fms  queuing(avg)=%6.1fms  p99=%6.1fms\n"
        name r.summary.Common.goodput_mbps
        (Report.ms (Stats.mean r.summary.Common.owd))
        (Report.ms (Stats.mean r.summary.Common.queuing_delay))
        (Report.ms (Stats.percentile r.summary.Common.owd 99.0));
      Report.cdf_rows ~points:8 (name ^ " OWD") r.summary.Common.owd)
    results;
  results

let fig17 ?(quick = false) () =
  Report.header "Fig 17: Beijing-New York (with ISLs): OWD / throughput";
  let results =
    Runner.map
      (List.map
         (fun proto () ->
           let r =
             run_pair ~quick ~src:"Beijing" ~dst:"New York" ~isls:true proto
           in
           (Common.protocol_name proto, r))
         protos_161718)
  in
  List.iter
    (fun (name, r) ->
      Report.row
        "  %-8s tput=%5.2f Mbps  owd(avg)=%6.1fms  queuing(avg)=%6.1fms  p99=%6.1fms (hops~%.1f)\n"
        name r.summary.Common.goodput_mbps
        (Report.ms (Stats.mean r.summary.Common.owd))
        (Report.ms (Stats.mean r.summary.Common.queuing_delay))
        (Report.ms (Stats.percentile r.summary.Common.owd 99.0))
        r.mean_hops;
      Report.cdf_rows ~points:8 (name ^ " OWD") r.summary.Common.owd)
    results;
  results

let pairs_18 = [ ("Beijing", "Hong Kong"); ("Beijing", "Paris"); ("Beijing", "New York") ]

let fig18 ?(quick = false) () =
  Report.header "Fig 18: average OWD / throughput vs distance (with ISLs)";
  let protos =
    if quick then
      [
        (Common.Leotp Leotp.Config.default : Common.protocol);
        Common.Leotp_partial (Leotp.Config.default, 0.25);
        Common.Tcp Cc.Bbr;
        Common.Tcp Cc.Pcc;
      ]
    else
      [
        (Common.Leotp Leotp.Config.default : Common.protocol);
        Common.Leotp_partial (Leotp.Config.default, 0.25);
        Common.Tcp Cc.Bbr;
        Common.Tcp Cc.Pcc;
        Common.Tcp Cc.Cubic;
        Common.Tcp Cc.Hybla;
      ]
  in
  let results =
    Runner.map
      (List.concat_map
         (fun (src, dst) ->
           List.map
             (fun proto () ->
               let r = run_pair ~quick ~src ~dst ~isls:true proto in
               ( Printf.sprintf "%s-%s" src dst,
                 Common.protocol_name proto,
                 Stats.mean r.summary.Common.owd,
                 r.summary.Common.goodput_mbps ))
             protos)
         pairs_18)
  in
  List.iter
    (fun (pair, proto, owd, tput) ->
      Report.row "  %-20s %-16s owd=%6.1fms  tput=%5.2f Mbps\n" pair proto
        (Report.ms owd) tput)
    results;
  results

let table2 ?(quick = false) () =
  Report.header "Table II: ablation (A full, B no-cache, C e2e-cc, D no midnodes)";
  let pairs = if quick then [ ("Beijing", "Hong Kong"); ("Beijing", "New York") ] else pairs_18 in
  let configs =
    [
      ("A", Leotp.Config.Full);
      ("B", Leotp.Config.No_cache);
      ("C", Leotp.Config.E2e_cc);
      ("D", Leotp.Config.No_midnodes);
    ]
  in
  let results =
    Runner.map
      (List.concat_map
         (fun (src, dst) ->
           List.map
             (fun (label, ablation) () ->
               let cfg =
                 Leotp.Config.with_ablation ablation Leotp.Config.default
               in
               let r = run_pair ~quick ~src ~dst ~isls:true (Common.Leotp cfg) in
               ( Printf.sprintf "%s-%s" src dst,
                 label,
                 r.summary.Common.goodput_mbps,
                 Report.ms (Stats.mean r.summary.Common.owd) ))
             configs)
         pairs)
  in
  List.iter
    (fun (pair, label, tput, owd) ->
      Report.row "  %-20s %s  tput=%5.2f Mbps  owd=%6.1f ms\n" pair label
        tput owd)
    results;
  results
