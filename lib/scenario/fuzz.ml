(* Seeded scenario fuzzer: random chain topologies, loss rates and fault
   schedules, each run under LEOTP and every TCP congestion-control
   variant with the differential oracle (Leotp_check) and the scenario
   invariant checker attached.  Failing cases are shrunk to a minimal
   replayable spec.

   Everything is deterministic in the root seed; jobs go through
   {!Runner.map} so [--jobs N] parallelizes case x protocol cells
   without changing results. *)

module Fault = Leotp_sim.Fault
module Trace = Leotp_net.Trace
module Rng = Leotp_util.Rng

type spec = {
  seed : int;
  hops : int;
  flows : int;
      (** 1 = single flow over a chain; >1 = concurrent flows sharing a
          dumbbell bottleneck (interleaved-flow oracle traces) *)
  bw_mbps : float;
  delay : float;  (** per-hop one-way, seconds *)
  plr : float;
  bytes : int;
  duration : float;
  faults : Fault.schedule;
}

type failure = {
  protocol : string;
  spec : spec;  (** shrunk when [shrink_runs > 0] *)
  original : spec;
  problems : string list;
  shrink_runs : int;
}

type outcome = {
  cases : int;
  runs : int;
  oracle_acks : int;
  failures : failure list;
}

(* Protocols under test: LEOTP plus every TCP variant.  LEOTP emits no
   sender-oracle events but exercises the PIT/cache/delivery invariants
   under the same fault schedules. *)
let protocols () =
  ("leotp", Common.Leotp Leotp.Config.default)
  :: List.map
       (fun a -> (Leotp_tcp.Cc.algo_name a, Common.Tcp a))
       Leotp_tcp.Cc.all

let protocol_of_name name =
  if name = "leotp" then Some (Common.Leotp Leotp.Config.default)
  else
    Option.map (fun a -> Common.Tcp a) (Leotp_tcp.Cc.algo_of_name name)

let gen_spec ~rng ~seed =
  let duration = 30.0 in
  let hops = 1 + Rng.int rng 5 in
  let n_faults = Rng.int rng 4 in
  (* A third of the cases interleave 2-8 concurrent flows through a
     shared bottleneck so the sender oracle sees multi-flow traces. *)
  let flows = if Rng.int rng 3 = 0 then 2 + Rng.int rng 7 else 1 in
  {
    seed;
    hops;
    flows;
    bw_mbps = Rng.uniform rng 2.0 40.0;
    delay = Rng.uniform rng 0.001 0.04;
    plr = (if Rng.bool rng then 0.0 else Rng.uniform rng 0.0 0.05);
    bytes = 50_000 + Rng.int rng 950_000;
    duration;
    faults =
      (if n_faults = 0 then []
       else
         Fault.random
           ~rng:(Rng.substream rng "faults")
           ~duration ~hops ~n:n_faults ());
  }

let gen ~seed n =
  let rng = Rng.create ~seed in
  List.init n (fun i ->
      gen_spec ~rng:(Rng.substream rng (Printf.sprintf "case%d" i)) ~seed:(seed + i))

let max_problems = 5

(* One simulation under full observation; returns the combined oracle
   divergences and invariant failures (empty = clean). *)
let run_one spec (protocol : Common.protocol) =
  let trace = Trace.create ~capacity:1 ~digesting:false () in
  let oracle = Leotp_check.Oracle.create ~mss:Leotp_tcp.Wire.default_mss () in
  Leotp_check.Oracle.attach oracle trace;
  let reports = ref [] in
  let hop =
    Common.link ~plr:spec.plr ~bw:spec.bw_mbps ~delay:spec.delay ()
  in
  (if spec.flows <= 1 then
     ignore
       (Common.run_chain ~seed:spec.seed ~bytes:spec.bytes
          ~duration:spec.duration ~warmup:0.0 ~faults:spec.faults ~trace
          ~on_reports:(fun r -> reports := r)
          ~hops:(Common.uniform_hops ~n:spec.hops hop)
          protocol)
   else
     (* Concurrent flows through a shared bottleneck; each flow starts
        one second after the previous so slow-start phases overlap
        established ones in the trace. *)
     let access = Common.link ~bw:(spec.bw_mbps *. 4.0) ~delay:spec.delay () in
     ignore
       (Common.run_flows_dumbbell ~seed:spec.seed ~bytes:spec.bytes
          ~duration:spec.duration ~faults:spec.faults ~trace
          ~on_reports:(fun r -> reports := r)
          ~access_delays:(List.init spec.flows (fun _ -> spec.delay))
          ~bottleneck:hop ~access
          ~starts:(List.init spec.flows float_of_int)
          protocol));
  let divs = Leotp_check.Oracle.divergences oracle in
  let cap l =
    let n = List.length l in
    if n <= max_problems then l
    else
      List.filteri (fun i _ -> i < max_problems) l
      @ [ Printf.sprintf "... and %d more" (n - max_problems) ]
  in
  let invariant_problems =
    List.filter_map
      (fun (r : Invariants.report) ->
        if r.Invariants.ok then None
        else Some (Printf.sprintf "invariant %s: %s" r.Invariants.invariant r.Invariants.detail))
      !reports
  in
  ( cap (List.map Leotp_check.Oracle.divergence_to_string divs)
    @ invariant_problems,
    Leotp_check.Oracle.acks oracle )

(* --- shrinking --------------------------------------------------------- *)

let shrink_candidates spec =
  let without_fault =
    List.mapi
      (fun i _ ->
        { spec with faults = List.filteri (fun j _ -> j <> i) spec.faults })
      spec.faults
  in
  without_fault
  @ (if spec.flows > 1 then [ { spec with flows = 1 } ] else [])
  @ (if spec.flows > 2 then [ { spec with flows = spec.flows - 1 } ] else [])
  @ (if spec.plr > 0.0 then [ { spec with plr = 0.0 } ] else [])
  @ (if spec.bytes >= 100_000 then [ { spec with bytes = spec.bytes / 2 } ]
     else [])
  @ (if spec.hops > 1 then [ { spec with hops = spec.hops - 1 } ] else [])

let max_shrink_runs = 60

(* Greedy descent: take the first simpler spec that still fails, repeat. *)
let shrink spec protocol =
  let runs = ref 0 in
  let fails s =
    incr runs;
    fst (run_one s protocol) <> []
  in
  let rec go spec =
    if !runs >= max_shrink_runs then spec
    else
      match List.find_opt fails (shrink_candidates spec) with
      | Some simpler -> go simpler
      | None -> spec
  in
  let shrunk = go spec in
  (shrunk, !runs)

(* --- replay specs ------------------------------------------------------ *)

let replay_to_string ~protocol spec =
  String.concat "|"
    [
      "cc=" ^ protocol;
      Printf.sprintf "seed=%d" spec.seed;
      Printf.sprintf "hops=%d" spec.hops;
      Printf.sprintf "flows=%d" spec.flows;
      Printf.sprintf "bw=%.17g" spec.bw_mbps;
      Printf.sprintf "delay=%.17g" spec.delay;
      Printf.sprintf "plr=%.17g" spec.plr;
      Printf.sprintf "bytes=%d" spec.bytes;
      Printf.sprintf "dur=%.17g" spec.duration;
      "faults=" ^ Fault.to_string spec.faults;
    ]

let replay_of_string s =
  let ( let* ) = Result.bind in
  let field kv =
    match String.index_opt kv '=' with
    | Some i ->
      Ok (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1))
    | None -> Error (Printf.sprintf "replay spec: %S is not key=value" kv)
  in
  let* fields =
    List.fold_left
      (fun acc kv ->
        let* acc = acc in
        let* f = field kv in
        Ok (f :: acc))
      (Ok [])
      (String.split_on_char '|' s)
  in
  let get k =
    match List.assoc_opt k fields with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "replay spec: missing %s=" k)
  in
  let num k conv =
    let* v = get k in
    match conv v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "replay spec: bad %s=%s" k v)
  in
  let* protocol = get "cc" in
  let* seed = num "seed" int_of_string_opt in
  let* hops = num "hops" int_of_string_opt in
  (* [flows=] postdates the first replay specs; absent means 1. *)
  let* flows =
    match List.assoc_opt "flows" fields with
    | None -> Ok 1
    | Some v -> (
      match int_of_string_opt v with
      | Some f when f >= 1 -> Ok f
      | _ -> Error (Printf.sprintf "replay spec: bad flows=%s" v))
  in
  let* bw_mbps = num "bw" float_of_string_opt in
  let* delay = num "delay" float_of_string_opt in
  let* plr = num "plr" float_of_string_opt in
  let* bytes = num "bytes" int_of_string_opt in
  let* duration = num "dur" float_of_string_opt in
  let* fault_spec = get "faults" in
  let* faults = Fault.of_string fault_spec in
  Ok
    ( protocol,
      { seed; hops; flows; bw_mbps; delay; plr; bytes; duration; faults } )

let replay s =
  match replay_of_string s with
  | Error e -> Error e
  | Ok (name, spec) -> (
    match protocol_of_name name with
    | None -> Error (Printf.sprintf "replay spec: unknown protocol %S" name)
    | Some protocol -> Ok (name, spec, fst (run_one spec protocol)))

(* --- top-level sweep --------------------------------------------------- *)

let run ?(shrinking = true) ~seed ~cases () =
  let specs = gen ~seed cases in
  let cells =
    List.concat_map
      (fun spec -> List.map (fun (name, p) -> (name, p, spec)) (protocols ()))
      specs
  in
  let outcomes =
    Runner.map
      (List.map (fun (name, p, spec) () -> (name, spec, run_one spec p)) cells)
  in
  let oracle_acks =
    List.fold_left (fun acc (_, _, (_, acks)) -> acc + acks) 0 outcomes
  in
  let failures =
    List.filter_map
      (fun (name, spec, (problems, _)) ->
        if problems = [] then None
        else
          (* Re-run the shrunk spec so the reported problems match it. *)
          let shrunk, shrink_runs, problems =
            match (shrinking, protocol_of_name name) with
            | true, Some p ->
              let s, r = shrink spec p in
              (s, r, fst (run_one s p))
            | _ -> (spec, 0, problems)
          in
          Some
            { protocol = name; spec = shrunk; original = spec; problems;
              shrink_runs })
      outcomes
  in
  {
    cases;
    runs = List.length cells;
    oracle_acks;
    failures;
  }
