module Trace = Leotp_net.Trace

type report = { invariant : string; ok : bool; detail : string }

exception Violation of string

(* Set once at startup by the golden-figure self-check harness; atomic
   because worker domains read it mid-run (see Common.observed).  The
   allow covers determinism, not safety: flipping it mid-sweep would
   change which runs are checked, so harnesses set it before any jobs
   start. *)
let self_check = Atomic.make false [@@leotp.allow "no-global-mutable-state"]

(* Per-link event-stream counters plus the link's own final snapshot. *)
type link_acc = {
  mutable offered : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable dups : int;
  mutable final :
    (int * int * int * int * int * int) option;
      (* offered, delivered, dropped, dups, queued, in_flight *)
}

(* Exact replay of one PIT's event stream: the open-entry table must
   always agree with the pending count the PIT itself advertised. *)
type pit_acc = {
  open_entries : (int * int * int, float) Hashtbl.t;  (** key -> entry birth *)
  mutable expiry : float;
  mutable first_error : string option;
}

type flow_acc = {
  mutable next : int;  (** expected position of the next delivery *)
  mutable completed : int option;
  mutable first_error : string option;
}

type t = {
  links : (string, link_acc) Hashtbl.t;
  pits : (string, pit_acc) Hashtbl.t;
  flows : (int * int, flow_acc) Hashtbl.t;
  mutable pit_satisfy_stale : int;  (** satisfies past expiry claiming fresh *)
  mutable cache_peak_over : (string * int * int) option;
  mutable cache_events : int;
  mutable rto_events : int;
  mutable rto_violation : (string * float * float) option;
  mutable events : int;
}

let create () =
  {
    links = Hashtbl.create 16;
    pits = Hashtbl.create 8;
    flows = Hashtbl.create 8;
    pit_satisfy_stale = 0;
    cache_peak_over = None;
    cache_events = 0;
    rto_events = 0;
    rto_violation = None;
    events = 0;
  }

let link_acc t name =
  match Hashtbl.find_opt t.links name with
  | Some a -> a
  | None ->
    let a = { offered = 0; delivered = 0; dropped = 0; dups = 0; final = None } in
    Hashtbl.replace t.links name a;
    a

let pit_acc t name =
  match Hashtbl.find_opt t.pits name with
  | Some a -> a
  | None ->
    let a =
      { open_entries = Hashtbl.create 64; expiry = 0.0; first_error = None }
    in
    Hashtbl.replace t.pits name a;
    a

let flow_acc t key =
  match Hashtbl.find_opt t.flows key with
  | Some a -> a
  | None ->
    let a = { next = 0; completed = None; first_error = None } in
    Hashtbl.replace t.flows key a;
    a

let pit_error (a : pit_acc) msg =
  if a.first_error = None then a.first_error <- Some msg

let check_pending a ~node ~pending =
  if Hashtbl.length a.open_entries <> pending then
    pit_error a
      (Printf.sprintf "%s: advertised %d pending, replay has %d" node pending
         (Hashtbl.length a.open_entries))

let eps_default = 1e-9

let sink t (r : Trace.record) =
  t.events <- t.events + 1;
  match r.Trace.event with
  | Trace.Link_enq { link; _ } ->
    let a = link_acc t link in
    a.offered <- a.offered + 1
  | Trace.Link_drop { link; _ } ->
    let a = link_acc t link in
    a.dropped <- a.dropped + 1
  | Trace.Link_deliver { link; _ } ->
    let a = link_acc t link in
    a.delivered <- a.delivered + 1
  | Trace.Link_dup { link; _ } ->
    let a = link_acc t link in
    a.dups <- a.dups + 1
  | Trace.Link_final { link; offered; delivered; dropped; dups; queued; in_flight }
    ->
    let a = link_acc t link in
    a.final <- Some (offered, delivered, dropped, dups, queued, in_flight)
  | Trace.Pit_register { node; flow; lo; hi; forwarded; expiry; pending } ->
    let a = pit_acc t node in
    a.expiry <- expiry;
    let key = (flow, lo, hi) in
    if forwarded then Hashtbl.replace a.open_entries key r.Trace.time
    else if not (Hashtbl.mem a.open_entries key) then
      pit_error a
        (Printf.sprintf "%s: duplicate-blocked register for absent entry" node);
    check_pending a ~node ~pending
  | Trace.Pit_satisfy { node; flow; lo; hi; fresh; age; pending } ->
    let a = pit_acc t node in
    let key = (flow, lo, hi) in
    if not (Hashtbl.mem a.open_entries key) then
      pit_error a (Printf.sprintf "%s: satisfy for unregistered entry" node)
    else Hashtbl.remove a.open_entries key;
    if fresh && age > a.expiry +. eps_default then
      t.pit_satisfy_stale <- t.pit_satisfy_stale + 1;
    check_pending a ~node ~pending
  | Trace.Pit_expire { node; flow; lo; hi; pending } ->
    let a = pit_acc t node in
    let key = (flow, lo, hi) in
    if not (Hashtbl.mem a.open_entries key) then
      pit_error a (Printf.sprintf "%s: expire for unregistered entry" node)
    else Hashtbl.remove a.open_entries key;
    check_pending a ~node ~pending
  | Trace.Cache_occupancy { node; used; capacity } ->
    t.cache_events <- t.cache_events + 1;
    if used > capacity && t.cache_peak_over = None then
      t.cache_peak_over <- Some (node, used, capacity)
  | Trace.Deliver { node; flow; pos; len } ->
    let a = flow_acc t (node, flow) in
    if pos <> a.next && a.first_error = None then
      a.first_error <-
        Some
          (Printf.sprintf "node %d flow %d: delivered pos %d, expected %d" node
             flow pos a.next);
    a.next <- max a.next (pos + len)
  | Trace.Complete { node; flow; bytes } ->
    let a = flow_acc t (node, flow) in
    if a.completed <> None && a.first_error = None then
      a.first_error <-
        Some (Printf.sprintf "node %d flow %d: completed twice" node flow);
    if bytes <> a.next && a.first_error = None then
      a.first_error <-
        Some
          (Printf.sprintf
             "node %d flow %d: completed at %d bytes, delivered %d" node flow
             bytes a.next);
    a.completed <- Some bytes
  | Trace.Rto_fire { who; elapsed; floor } ->
    t.rto_events <- t.rto_events + 1;
    if elapsed +. eps_default < floor && t.rto_violation = None then
      t.rto_violation <- Some (who, elapsed, floor)
  (* Ack_processed / Seg_state feed the differential oracle
     (Leotp_check.Oracle), a separate sink. *)
  | Trace.Ack_processed _ | Trace.Seg_state _ | Trace.Fault _ | Trace.Note _ ->
    ()

let sorted_hashtbl_bindings tbl =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let finalize ?(eps = eps_default) ~now t =
  let pit_report =
    let errors = ref [] in
    let entries = ref 0 in
    List.iter
      (fun (name, (a : pit_acc)) ->
        (match a.first_error with Some e -> errors := e :: !errors | None -> ());
        List.iter
          (fun (_, born) ->
            incr entries;
            if now -. born > a.expiry +. eps then
              errors :=
                Printf.sprintf "%s: entry leaked past expiry (age %.3f > %.3f)"
                  name (now -. born) a.expiry
                :: !errors)
          (sorted_hashtbl_bindings a.open_entries))
      (sorted_hashtbl_bindings t.pits);
    if t.pit_satisfy_stale > 0 then
      errors :=
        Printf.sprintf "%d satisfies claimed fresh past expiry"
          t.pit_satisfy_stale
        :: !errors;
    match !errors with
    | [] ->
      {
        invariant = "pit-lifetime";
        ok = true;
        detail =
          Printf.sprintf "%d tables consistent, %d entries open and fresh"
            (Hashtbl.length t.pits) !entries;
      }
    | e :: _ -> { invariant = "pit-lifetime"; ok = false; detail = e }
  in
  let cache_report =
    match t.cache_peak_over with
    | None ->
      {
        invariant = "cache-capacity";
        ok = true;
        detail = Printf.sprintf "%d occupancy samples within capacity" t.cache_events;
      }
    | Some (node, used, cap) ->
      {
        invariant = "cache-capacity";
        ok = false;
        detail = Printf.sprintf "%s: used %d > capacity %d" node used cap;
      }
  in
  let delivery_report =
    let errors =
      List.filter_map
        (fun (_, a) -> a.first_error)
        (sorted_hashtbl_bindings t.flows)
    in
    match errors with
    | [] ->
      {
        invariant = "delivery-order";
        ok = true;
        detail =
          Printf.sprintf "%d (node, flow) streams in-order and exactly-once"
            (Hashtbl.length t.flows);
      }
    | e :: _ -> { invariant = "delivery-order"; ok = false; detail = e }
  in
  let link_report =
    let errors = ref [] in
    List.iter
      (fun (name, a) ->
        match a.final with
        | None ->
          errors := Printf.sprintf "%s: no final accounting event" name :: !errors
        | Some (offered, delivered, dropped, dups, queued, in_flight) ->
          if
            (offered, delivered, dropped, dups)
            <> (a.offered, a.delivered, a.dropped, a.dups)
          then
            errors :=
              Printf.sprintf
                "%s: stream counts (%d,%d,%d,%d) disagree with link counters (%d,%d,%d,%d)"
                name a.offered a.delivered a.dropped a.dups offered delivered
                dropped dups
              :: !errors
          else if offered + dups <> delivered + dropped + queued + in_flight then
            errors :=
              Printf.sprintf
                "%s: %d offered + %d dup <> %d delivered + %d dropped + %d queued + %d in flight"
                name offered dups delivered dropped queued in_flight
              :: !errors)
      (sorted_hashtbl_bindings t.links);
    match !errors with
    | [] ->
      {
        invariant = "link-conservation";
        ok = true;
        detail = Printf.sprintf "%d links balanced" (Hashtbl.length t.links);
      }
    | e :: _ -> { invariant = "link-conservation"; ok = false; detail = e }
  in
  let rto_report =
    match t.rto_violation with
    | None ->
      {
        invariant = "rto-floor";
        ok = true;
        detail = Printf.sprintf "%d timeouts at or above the floor" t.rto_events;
      }
    | Some (who, elapsed, floor) ->
      {
        invariant = "rto-floor";
        ok = false;
        detail =
          Printf.sprintf "%s fired after %.6f s, floor %.6f s" who elapsed floor;
      }
  in
  [ pit_report; cache_report; delivery_report; link_report; rto_report ]

let all_ok reports = List.for_all (fun r -> r.ok) reports

let to_string reports =
  String.concat "\n"
    (List.map
       (fun r ->
         Printf.sprintf "  %-17s %s  %s" r.invariant
           (if r.ok then "OK" else "FAIL")
           r.detail)
       reports)

let check ?eps ~now ~label t =
  let reports = finalize ?eps ~now t in
  if not (all_ok reports) then
    raise
      (Violation
         (Printf.sprintf "%s: invariant violation\n%s" label (to_string reports)))
