(** Paper-style row printers shared by the bench harness and examples.

    This is the single module in [lib/] allowed to write to stdout
    (see the no-direct-print rule in LINT.md); scenario and experiment
    code formats all of its output through these helpers. *)

val ms : float -> float
(** Seconds to milliseconds. *)

val header : string -> unit
(** [=== title ===] banner. *)

val subheader : string -> unit

val row : ('a, out_channel, unit) format -> 'a
(** Printf-style row under the current header. *)

val newline : unit -> unit

val summary_line : Common.summary -> unit
(** One protocol summary row: goodput, OWD mean/p99, queuing, retx. *)

val cdf_rows : ?points:int -> string -> Leotp_util.Stats.t -> unit
(** Evenly spaced CDF sample points of a delay distribution, in ms. *)

val percentiles : string -> Leotp_util.Stats.t -> unit
(** mean/p50/p90/p99/max row of a delay distribution, in ms. *)
