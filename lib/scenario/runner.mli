(** Parallel experiment-job runner.

    A job is a thunk owning all of its state — it builds its own engine,
    rng and topology, and (via [Common.run_chain] etc.) resets the
    domain-local packet/node id counters at its start.  Under that
    contract, [map] with any parallelism returns results bit-identical
    to a sequential run, in submission order. *)

val set_jobs : int -> unit
(** Set the parallelism for subsequent {!map} calls.  [1] (the default)
    runs jobs inline on the calling domain; [n > 1] uses a shared pool of
    [n] worker domains (created lazily, replaced if [n] changes). *)

val jobs : unit -> int

val map : (unit -> 'a) list -> 'a list
(** Run every thunk, in parallel per {!set_jobs}; results in order. *)

val grid :
  'r list -> 'c list -> ('r -> 'c -> 'a) -> ('r * ('c * 'a) list) list
(** [grid rows cols f] evaluates the full cross product as one batch of
    parallel jobs and regroups row-major: the common (protocol x
    parameter) sweep shape. *)

type counters = {
  jobs_run : int;
  sim_seconds : float;  (** total simulated time, via {!note_sim_seconds} *)
  alloc_bytes : float;  (** bytes allocated inside jobs, all domains *)
  packets : int;  (** packets created inside jobs, all domains *)
}

val reset_counters : unit -> unit
val counters : unit -> counters

val note_sim_seconds : float -> unit
(** Called by scenario plumbing after each simulation run with the
    simulated duration, so the bench harness can report
    simulated-seconds-per-wall-second. *)
