(** Trace-driven dynamic paths (ROADMAP item 2, in the spirit of the
    HYPATIA / eBPF satellite-emulation papers): drive the Walker
    constellation over a long horizon, record the per-path timeline as a
    versioned {!Leotp_net.Path_trace}, and replay it — or any externally
    imported trace in the same schema — through
    {!Leotp_net.Dynamic_path.schedule_trace}, with route gaps becoming
    explicit link-down outage windows.

    Determinism contract: [generate] is a pure function of its {!spec}
    (same seed, byte-identical trace file), and [run] is a pure function
    of the trace plus the transport seed, so the packet-trace [digest] of
    a replayed file equals the digest of the live-generated run. *)

type spec = {
  src : string;
  dst : string;
  isls : bool;
  horizon : float;  (** seconds of orbital time *)
  step : float;  (** trace sample step, seconds *)
  route_epoch : float;  (** routing recompute quantum (Memo epoch) *)
  seed : int;
}

val default : spec
(** Beijing -> New York with ISLs, 1 h horizon, 1 s samples, 5 s routing
    epoch, seed 42. *)

val generate : spec -> Leotp_net.Path_trace.t
(** Sample the constellation: per-hop delay / bandwidth / plr / kind
    every [step] seconds, handover flags on route-signature changes,
    [`No_route] instants kept as outage records.  Bandwidth policy
    matches the parametric {!Starlink} scenario (10 Mbps uplink
    bottleneck with handover "V" dips and per-second bias, 20 Mbps
    elsewhere), but sampled into the trace so replays are
    self-contained. *)

type run_result = {
  summary : Common.summary;
  switches : int;  (** {!Leotp_net.Dynamic_path.switch_count} *)
  handovers : int;
  outages : int;  (** outage interval count *)
  outage_fraction : float;
  mean_hops : float;
  digest : string;  (** packet-trace digest: the determinism witness *)
}

val run :
  ?seed:int ->
  ?interp:Leotp_net.Dynamic_path.interp ->
  ?duration:float ->
  ?protocol:Common.protocol ->
  ?label:string ->
  Leotp_net.Path_trace.t ->
  run_result
(** One bulk flow over the replayed trace.  Defaults: transport seed =
    the trace's generator seed, duration = the trace horizon, hold-last
    interpolation, LEOTP with the default config.  Raises
    [Invalid_argument] on a trace with no route records. *)

type cell = { label : string; spec : spec }

val family : quick:bool -> cell list
(** The long-horizon experiment family: ISL long haul (Beijing-New
    York), bent-pipe outage storm (Hong Kong-Tokyo, a pair near the
    edge of common visibility), polar vs equatorial pairs; quick mode
    shrinks horizons and drops the comparison pairs. *)

val experiment : ?quick:bool -> unit -> (cell * run_result) list
(** Generate + replay every cell under {!Runner.map} (bit-identical for
    any job count) and print the summary table. *)
