(** Open-loop user-population workload generator (ROADMAP item 1).

    Seeded Poisson flow arrivals per consumer city under a diurnal rate
    curve, Zipf content popularity over a bounded catalog, lognormal
    bounded flow sizes and a configurable LEOTP/TCP protocol mix.  The
    schedule is a pure function of the spec: identical specs give
    byte-identical arrival lists, on any domain. *)

type protocol = Leotp | Tcp

type spec = {
  seed : int;
  cities : int;  (** consumer population: the first [cities] of {!Leotp_constellation.Cities.all} *)
  origins : int;  (** content origin sites: the first [origins] cities *)
  catalog : int;  (** number of content items *)
  zipf_s : float;  (** popularity exponent (weight of rank r is r^-s) *)
  rate_per_city : float;  (** mean flow arrivals per second per city *)
  diurnal_amplitude : float;  (** in [0, 1); 0 = flat rate *)
  day : float;  (** diurnal period, seconds (compressed for sim horizons) *)
  horizon : float;  (** generate arrivals in [0, horizon) *)
  median_bytes : int;  (** lognormal size median *)
  size_sigma : float;  (** lognormal sigma, nats *)
  min_bytes : int;
  max_bytes : int;  (** sizes are clipped into [min_bytes, max_bytes] *)
  tcp_share : float;  (** fraction of flows running TCP instead of LEOTP *)
}

val default : spec

type arrival = {
  seq : int;  (** index in the merged schedule — the flow's stable id *)
  at : float;  (** arrival time, seconds *)
  city : int;  (** consumer city index *)
  content : int;  (** catalog rank requested (0 = most popular) *)
  origin : int;  (** producer city index, derived from [content] *)
  bytes : int;
  protocol : protocol;
}

(** Zipf sampler over ranks [0..n-1] (inverse-CDF table; exposed for the
    statistical tests). *)
module Zipf : sig
  type t

  val create : n:int -> s:float -> t
  val sample : t -> Leotp_util.Rng.t -> int
end

val diurnal_factor : spec -> float -> float
(** Rate multiplier at a given time; integrates to 1 over any whole day. *)

val expected_flows : spec -> float
(** Expected schedule length ([rate * cities * horizon]); exact for flat
    curves or whole-day horizons. *)

val origin_of_content : spec -> int -> int

val generate : spec -> arrival list
(** The merged, time-sorted schedule.  Raises [Invalid_argument] on
    malformed specs (rates, bounds or city counts out of range). *)

val scale_to : spec -> flows:int -> spec
(** Adjust [rate_per_city] so {!expected_flows} equals [flows]. *)
