(** Shared experiment plumbing: build a path, run one protocol over it,
    return a uniform summary.  Every figure/table module builds on this. *)

type protocol =
  | Tcp of Leotp_tcp.Cc.algo
  | Split_tcp of Leotp_tcp.Cc.algo
  | Leotp of Leotp.Config.t
  | Leotp_partial of Leotp.Config.t * float  (** coverage fraction *)

val protocol_name : protocol -> string

type link_params = {
  bandwidth_mbps : float;
  delay : float;  (** one-way propagation per hop, seconds *)
  plr : float;
  buffer_bytes : int;
}

val link : ?plr:float -> ?buffer_bytes:int -> bw:float -> delay:float -> unit -> link_params

type summary = {
  protocol : string;
  goodput_mbps : float;  (** application goodput over the measure window *)
  owd : Leotp_util.Stats.t;  (** data-retrieval OWD, seconds *)
  retx_owd : Leotp_util.Stats.t;
  queuing_delay : Leotp_util.Stats.t;  (** OWD minus propagation floor *)
  retransmissions : int;
  wire_bytes : int;  (** bytes the origin sender put on the wire *)
  app_bytes : int;
  completion_time : float option;
  delivery : Leotp_util.Timeseries.t;
  duration : float;
  congestion_drops : int;  (** droptail losses across the path's links *)
}

val observed :
  engine:Leotp_sim.Engine.t ->
  links:Leotp_net.Link.t list ->
  ?trace:Leotp_net.Trace.t ->
  ?on_reports:(Invariants.report list -> unit) ->
  ?sweep:(now:float -> unit) ->
  label:string ->
  (unit -> 'a) ->
  'a
(** Run [f] under a packet-trace recorder.  A recorder is installed when
    the caller passes [trace], asks for invariant [on_reports], or
    {!Invariants.self_check} is set (then a one-slot sink-only ring is
    used); otherwise [f] just runs.  After [f]: [sweep ~now] (e.g. PIT
    end-of-run expiry), {!Leotp_net.Link.trace_final} on every link,
    invariant finalization.  In self-check mode a failed invariant raises
    {!Invariants.Violation} tagged with [label]. *)

val run_chain :
  ?seed:int ->
  ?bytes:int ->
  ?duration:float ->
  ?warmup:float ->
  ?bottleneck:int * link_params ->
  ?bandwidth_schedule:(int * Leotp_net.Bandwidth.t) list ->
  ?faults:Leotp_sim.Fault.schedule ->
  ?trace:Leotp_net.Trace.t ->
  ?on_reports:(Invariants.report list -> unit) ->
  hops:link_params list ->
  protocol ->
  summary
(** Run one flow over a chain of [hops].  [bytes] = fixed transfer (the
    run ends at completion or [duration]); omitted = bulk flow measured
    over [warmup, duration).  [bottleneck] replaces hop [i]'s parameters;
    [bandwidth_schedule] overrides the bandwidth model of selected hops
    (e.g. square-wave bottlenecks).  Propagation floor for the queuing
    statistic is the sum of hop delays.

    [faults] installs a {!Leotp_sim.Fault} schedule: [Hop i] targets the
    chain's hop [i mod n] (both directions), [Mid k] the session's
    midnode [k mod m] (ignored for protocols without midnodes).  [trace]
    records the packet trace; [on_reports] receives the five invariant
    verdicts (see {!observed}). *)

val run_faulted :
  ?seed:int ->
  ?bytes:int ->
  ?duration:float ->
  ?warmup:float ->
  ?faults:Leotp_sim.Fault.schedule ->
  ?trace:Leotp_net.Trace.t ->
  hops:link_params list ->
  protocol ->
  summary * Invariants.report list
(** {!run_chain} with the invariant checker always attached; returns the
    verdicts instead of raising. *)

val uniform_hops : n:int -> link_params -> link_params list

val summarize :
  ?congestion_drops:int ->
  protocol:string ->
  metrics:Leotp_net.Flow_metrics.t ->
  floor:float ->
  warmup:float ->
  duration:float ->
  unit ->
  summary
(** Build a summary from raw flow metrics (used by scenario runners that
    assemble their own topologies, e.g. the Starlink emulation). *)

val run_flows_dumbbell :
  ?seed:int ->
  ?bytes:int ->
  ?duration:float ->
  ?faults:Leotp_sim.Fault.schedule ->
  ?trace:Leotp_net.Trace.t ->
  ?on_reports:(Invariants.report list -> unit) ->
  access_delays:float list ->
  bottleneck:link_params ->
  access:link_params ->
  starts:float list ->
  protocol ->
  summary list * (float * float) list list
(** Fairness topology (Fig 15): one flow per access delay, flow [i]
    starting at [starts.(i)].  Returns per-flow summaries and per-flow
    throughput time series (1 s buckets, Mbps).  [bytes] bounds every
    flow (default: unlimited sources); [faults] resolve against a pool
    of bottleneck-then-access duplexes, so [Hop 0] is always the shared
    link.  Used by the fuzzer's many-flow dimension with the oracle
    attached to [trace]. *)
