(** LEOTP protocol parameters (paper §III-IV) and ablation switches
    (Table II). *)

(* Pure data: a record of protocol parameters whose every field is the
   public surface; an .mli would duplicate the whole definition. *)
[@@@leotp.allow "missing-interface"]


(** Table II's four configurations:
    A = full LEOTP; B = hop-by-hop congestion control but no cache (hence
    no in-network retransmission); C = in-network retransmission but
    end-to-end congestion control; D = no Midnodes at all. *)
type ablation = Full | No_cache | E2e_cc | No_midnodes

type t = {
  mss : int;  (** payload bytes per Interest / Data packet *)
  header_bytes : int;  (** wire header size (Table I) *)
  hole_threshold : int;
      (** N in Algorithm 1: packets that must skip a sequence hole before
          it is declared a loss *)
  queue_threshold : float;
      (** M in eq (8): estimated queue bytes above which the hop is
          congested *)
  k : float;  (** eq (8) multiplicative decrease target, cwnd = k*BDP *)
  bl_target : int;  (** BLtar in eq (9): target sending-buffer bytes *)
  cache_capacity : int;  (** Midnode cache bytes *)
  cache_block : int;  (** cache block granularity (§IV-A: 4096) *)
  send_buffer_capacity : int;  (** Midnode sending-buffer cap, bytes *)
  tr_backoff : float;  (** TR timeout growth factor (§III-B: 1.5) *)
  tr_scan_interval : float;  (** period of the Consumer's timeout scan *)
  min_rtt_window : float;  (** hopRTT_min window (§III-C: 5 s) *)
  pit_expiry : float;
      (** lifetime of pending-Interest entries (multicast, §VII) *)
  ablation : ablation;
}

let default =
  {
    mss = 1400;
    header_bytes = 15;
    hole_threshold = 3;
    queue_threshold = 25_000.0;
    k = 0.8;
    bl_target = 40_000;
    cache_capacity = 64 * 1024 * 1024;
    cache_block = 4096;
    send_buffer_capacity = 4 * 1024 * 1024;
    tr_backoff = 1.5;
    tr_scan_interval = 0.01;
    min_rtt_window = 5.0;
    pit_expiry = 1.0;
    ablation = Full;
  }

let with_ablation ablation t = { t with ablation }

let caches_enabled t =
  match t.ablation with
  | Full | E2e_cc -> true
  | No_cache | No_midnodes -> false

let hop_cc_enabled t =
  match t.ablation with
  | Full | No_cache -> true
  | E2e_cc | No_midnodes -> false
