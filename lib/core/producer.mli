(** LEOTP Producer: the data source.

    Pure Responder: parses Interests, serves the requested byte ranges
    through a sending buffer paced at the advertised rate (paper Fig 9).
    The origin first-transmission time of each range is remembered so
    that retransmitted Data carries the original timestamp (the paper's
    OWD metric measures data-retrieval delay including recovery). *)

type t

val create :
  Leotp_sim.Engine.t ->
  config:Config.t ->
  node:Leotp_net.Node.t ->
  flow:int ->
  ?total_bytes:int ->
  ?available:(unit -> int) ->
  ?metrics:Leotp_net.Flow_metrics.t ->
  unit ->
  t
(** [total_bytes]: size of the flow's content (requests beyond it are
    clipped); omit for an unbounded source.  [available]: incremental
    source (the §VII TCP gateway) — only that many bytes exist yet;
    requests beyond the prefix are parked and served on
    {!notify_data_available}.  Installs no handler — the session wiring
    dispatches {!handle_interest}. *)

val notify_data_available : t -> unit
(** The incremental source grew: serve parked requests. *)

val stop : t -> unit
(** Flow retirement: cancel the buffer's drain timer, release queued Data
    back to the pool and forget parked requests.  Late Interests arriving
    afterwards are still answered if the session keeps dispatching them —
    callers normally unwire the handler at the same time. *)

val handle_interest : t -> Leotp_net.Packet.t -> unit
val buffer_len : t -> int
val metrics : t -> Leotp_net.Flow_metrics.t
val interests_received : t -> int
val retransmissions : t -> int

(**/**)

val buffer_rate : t -> float
