type hole = { lo : int; hi : int; mutable count : int }

type t = {
  config : Config.t;
  mutable last_byte : int;
  mutable holes : hole list;  (** sorted by lo, disjoint *)
}

type actions = {
  new_holes : (int * int) list;
  expired_holes : (int * int) list;
}

(* One record per flow at first contact — setup, not per-packet. *)
let create ~config =
  ({ config; last_byte = 0; holes = [] } [@leotp.allow "hot-path-may-alloc"])

let empty_actions = { new_holes = []; expired_holes = [] }

let rec on_packet t ~lo ~hi =
  (* Fast path: in-order data with no holes outstanding — the common case
     on a clean link — touches nothing and returns a shared constant. *)
  if lo <= t.last_byte && t.holes == [] then begin
    t.last_byte <- max t.last_byte hi;
    empty_actions
  end
  else on_packet_slow t ~lo ~hi

(* Hole bookkeeping allocates (lists of hole records by design); it runs
   only while holes are outstanding — loss recovery, not the clean-link
   steady state, which takes the constant-return fast path above. *)
and on_packet_slow t ~lo ~hi =
  let new_holes = ref [] in
  (* (2) Beyond lastByte: the gap [last_byte, lo) becomes a hole. *)
  if lo > t.last_byte then begin
    new_holes := [ (t.last_byte, lo) ];
    t.holes <- t.holes @ [ { lo = t.last_byte; hi = lo; count = 0 } ]
  end
  else if lo < t.last_byte then
    (* (3) Retransmitted or reordered data: the covered holes are gone.
       Partial overlap splits the hole (keeps its skip count). *)
    t.holes <-
      List.concat_map
        (fun h ->
          if hi <= h.lo || lo >= h.hi then [ h ]
          else begin
            let left =
              if lo > h.lo then [ { lo = h.lo; hi = lo; count = h.count } ]
              else []
            in
            let right =
              if hi < h.hi then [ { lo = hi; hi = h.hi; count = h.count } ]
              else []
            in
            left @ right
          end)
        t.holes;
  (* Lines 10-18: this packet skips every hole that ends at or before its
     start; holes skipped more than N times are declared lost. *)
  let expired = ref [] in
  t.holes <-
    List.filter
      (fun h ->
        (* Strictly beyond the hole (Algorithm 1 line 11: rs > rangeEnd):
           the packet whose arrival opened the hole does not count as
           skipping it. *)
        if lo > h.hi then begin
          h.count <- h.count + 1;
          if h.count > t.config.Config.hole_threshold then begin
            expired := (h.lo, h.hi) :: !expired;
            false
          end
          else true
        end
        else true)
      t.holes;
  t.last_byte <- max t.last_byte hi;
  { new_holes = !new_holes; expired_holes = List.rev !expired }
[@@leotp.allow "hot-path-may-alloc"]

let last_byte t = t.last_byte
let pending_holes t = List.map (fun h -> (h.lo, h.hi, h.count)) t.holes
