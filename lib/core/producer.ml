module Engine = Leotp_sim.Engine
module Packet = Leotp_net.Packet
module Node = Leotp_net.Node
module IntMap = Map.Make (Int)

type t = {
  engine : Engine.t;
  config : Config.t;
  node : Node.t;
  flow : int;
  total_bytes : int option;
  available : (unit -> int) option;
      (** gateway mode: only this prefix exists yet (paper §VII's
          TCP-compatibility proxies feed a Producer incrementally) *)
  metrics : Leotp_net.Flow_metrics.t;
  buffer : Send_buffer.t;
  mutable first_sent : float IntMap.t;  (** range start -> origin send time *)
  mutable last_req_owd : float;  (** latest Interest OWD on the last hop *)
  mutable pending : (int * int * int) list;
      (** (lo, hi, consumer) requests beyond the available prefix *)
  mutable interests_received : int;
  mutable retransmissions : int;
}

let create engine ~config ~node ~flow ?total_bytes ?available ?metrics () =
  let metrics =
    match metrics with
    | Some m -> m
    | None -> Leotp_net.Flow_metrics.create ~flow
  in
  let t_ref = ref None in
  (* The wire timestamp is "when the packet is sent by the previous node"
     (Table I), so it is stamped at drain time, not at enqueue: data can
     wait in the sending buffer, and that wait must stay invisible to the
     hopRTT measurement (§III-C).  Restamping is in place and consumes a
     fresh id, exactly like the re-constructed packet it replaces. *)
  let send pkt =
    (match !t_ref with
    | Some t when Wire.is_data pkt ->
      Wire.restamp_data pkt
        ~timestamp:(Engine.now t.engine)
        ~req_owd:t.last_req_owd
    | _ -> ());
    Leotp_net.Flow_metrics.on_send metrics ~bytes:pkt.Packet.size;
    Node.send node pkt
  in
  let buffer = Send_buffer.create engine ~config ~send () in
  let t =
    {
      engine;
      config;
      node;
      flow;
      total_bytes;
      available;
      metrics;
      buffer;
      first_sent = IntMap.empty;
      last_req_owd = 0.0;
      pending = [];
      interests_received = 0;
      retransmissions = 0;
    }
  in
  t_ref := Some t;
  t

let available_now t =
  let base = match t.total_bytes with Some n -> n | None -> max_int in
  match t.available with Some f -> min base (f ()) | None -> base

(* Serve [range_lo, hi) in MSS-sized Data packets (a retransmission
   Interest may cover a multi-packet hole); transparent addressing
   (paper §IV-A): data carries the endpoints' addresses, midnodes
   intercept it in flight. *)
let rec serve_chunks t ~now ~consumer ~lo:range_lo ~hi =
  (* Recursion, not while+ref: this runs per served Interest and a local
     [ref] is a minor-heap cell.  The (first_sent, retx) pair and the
     first-send map node are per-chunk bookkeeping the Data packet
     carries — allocation the response itself dwarfs. *)
  if range_lo < hi then begin
    let lo = range_lo in
    let chunk_hi = min hi (lo + t.config.Config.mss) in
    let first_sent, retx =
      (match IntMap.find_opt lo t.first_sent with
      | Some ts ->
        t.retransmissions <- t.retransmissions + 1;
        Leotp_net.Flow_metrics.on_retransmit t.metrics;
        (ts, true)
      | None ->
        t.first_sent <- IntMap.add lo now t.first_sent;
        (now, false))
      [@leotp.allow "hot-path-may-alloc"]
    in
    let data =
      Wire.data_packet ~config:t.config ~src:(Node.id t.node) ~dst:consumer
        ~flow:t.flow ~lo ~hi:chunk_hi ~timestamp:now ~req_owd:t.last_req_owd
        ~first_sent ~retx
    in
    ignore (Send_buffer.push t.buffer data);
    serve_chunks t ~now ~consumer ~lo:chunk_hi ~hi
  end

let serve t ~now ~consumer ~lo ~hi =
  let avail = available_now t in
  (* Bytes beyond the current prefix wait for the application to produce
     them (incremental sources: the §VII TCP gateway). *)
  if hi > avail && (t.available <> None || t.total_bytes = None) then begin
    if t.available <> None then
      (* grows only while the application has not yet produced the range
         (incremental sources) — backpressure, not the steady serve path *)
      t.pending <-
        (((max lo avail, hi, consumer) :: t.pending)
        [@leotp.allow "hot-path-may-alloc"])
  end;
  let hi = min hi avail in
  if hi > lo then serve_chunks t ~now ~consumer ~lo ~hi

let notify_data_available t =
  let now = Engine.now t.engine in
  let pending = t.pending in
  t.pending <- [];
  List.iter (fun (lo, hi, consumer) -> serve t ~now ~consumer ~lo ~hi) pending

(* Terminal handler: the Interest dies here whether or not it matches. *)
let handle_interest t pkt =
  if Wire.is_interest pkt && pkt.Packet.flow = t.flow then begin
    t.interests_received <- t.interests_received + 1;
    let now = Engine.now t.engine in
    let req_owd = Float.max 0.0 (now -. Wire.timestamp pkt) in
    t.last_req_owd <- req_owd;
    Send_buffer.set_rate t.buffer (Wire.send_rate pkt);
    let lo = Wire.lo pkt and hi = Wire.hi pkt in
    let consumer = pkt.Packet.src in
    Leotp_net.Packet_pool.release pkt;
    serve t ~now ~consumer ~lo ~hi
  end
  else Leotp_net.Packet_pool.release pkt

let stop t =
  Send_buffer.clear t.buffer;
  t.pending <- []

let buffer_len t = Send_buffer.len t.buffer
let metrics t = t.metrics
let interests_received t = t.interests_received
let retransmissions t = t.retransmissions

let buffer_rate t = Send_buffer.rate t.buffer
