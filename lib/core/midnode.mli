(** LEOTP Midnode: a transparent in-network transport element
    (ground station or satellite).

    Per passing flow it keeps a few soft states (paper §VII: "tens of
    bytes ... can be reconstructed rapidly upon failures"): SHR loss
    detection, the upstream hop's congestion controller, and a sending
    buffer paced at the rate advertised by the downstream node.  All
    packets keep the endpoints' addresses (§IV-A, IP_TRANSPARENT); the
    Midnode intercepts, processes and re-emits them.

    Behaviour under ablation (Table II): with [No_cache] the cache, SHR
    and VPH are disabled (no in-network retransmission); with [E2e_cc]
    Interests and Data pass through without timestamp/sendRate rewriting
    and without buffering, so congestion control stays end-to-end while
    the cache still repairs losses. *)

type t

val create :
  Leotp_sim.Engine.t -> config:Config.t -> node:Leotp_net.Node.t -> unit -> t
(** Installs the intercepting handler on [node].  Non-LEOTP packets are
    forwarded untouched. *)

type flow_stats = {
  vph_sent : int;
  shr_interests : int;
  cache_hits : int;
  buffer_len : int;
}

val flow_stats : t -> flow:int -> flow_stats option

val debug_flow : t -> flow:int -> string
(** One-line dump of the control state (tests / diagnosis). *)

val cache : t -> Cache.t
val flows : t -> int list

val crash : t -> unit
(** Fault injection: lose all soft state (cache, PIT, per-flow SHR / CC /
    buffers) and degrade to a plain forwarder, as if the LEOTP process
    died while the router stayed up.  Idempotent. *)

val restart : t -> unit
(** Re-install the intercepting handler with cold state. *)

val crashed : t -> bool
val crash_count : t -> int

val sweep_pit : t -> now:float -> unit
(** Expire stale PIT entries (end-of-run cleanup for the invariant
    checker; also happens amortized during operation). *)

val retire_flow : t -> flow:int -> unit
(** Drop one flow's soft state (SHR / hop CC / sending buffer), evict its
    cached ranges and expire its PIT entries, releasing every pooled
    packet the flow still holds here.  Other flows are untouched.  Used by
    the many-flow fleet when a flow completes. *)

val pit_blocked : t -> int
(** Duplicate Interests absorbed by the pending-Interest table
    (multicast, paper §VII). *)

val pit_pending : t -> int
(** Current PIT size (leak checks after flow retirement). *)
