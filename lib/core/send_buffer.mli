(** Responder-side sending buffer: a FIFO of outgoing Data packets drained
    by a token-bucket rate limiter at the rate advertised by the
    downstream Requester (paper Fig 9).

    The buffer length [len] is the BL input of the backpressure equation;
    the drain rate doubles as the "next-hop sending rate" the node
    reports upstream. *)

type t

val create :
  Leotp_sim.Engine.t ->
  config:Config.t ->
  send:(Leotp_net.Packet.t -> unit) ->
  unit ->
  t
(** [send] actually transmits (normally [Node.send]). *)

val push : t -> Leotp_net.Packet.t -> bool
(** Enqueue; [false] if the buffer is full and the packet was dropped. *)

val set_rate : t -> float -> unit
(** Update the drain rate (bytes/s) from a received Interest's sendRate. *)

val rate : t -> float
val len : t -> int
(** queued bytes *)

val packets : t -> int
val drops : t -> int

val clear : t -> unit
(** Drop queued packets and cancel the drain timer (midnode crash). *)
