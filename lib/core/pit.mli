(** Pending Interest Table — the multicast support sketched in paper §VII.

    "When several Consumers request the same data at the same time, the
    cache in Midnodes could block the duplicate Interests and respond data
    immediately ... if the Consumers share the same FlowID."

    A Midnode records which consumers wait for an uncached range; a second
    Interest for the same range is blocked (not forwarded upstream), and
    when the Data passes through, every waiting consumer other than the
    packet's own destination gets a copy from the cache path.  Entries
    expire so a lost response does not pin state forever (the consumers'
    TR re-requests will re-create them). *)

type t

val create : ?label:string -> expiry:float -> unit -> t
(** [expiry] in seconds (a few path RTTs); [label] names this table in
    trace events (normally the owning node's name). *)

val register : t -> now:float -> flow:int -> lo:int -> hi:int -> consumer:int -> bool
(** Record that [consumer] waits for the range.  Returns [true] when this
    is a fresh entry (forward the Interest upstream) and [false] when the
    range was already pending (block the duplicate). *)

val satisfy : t -> now:float -> flow:int -> lo:int -> hi:int -> int list
(** Data for the range arrived: return the waiting consumers and drop the
    entry.  Expired entries are ignored. *)

val pending : t -> int

val expire_before : t -> now:float -> unit
(** Drop entries older than [expiry].  Also runs as an amortized sweep
    every few registrations, so the table stays bounded without a
    recurring engine timer. *)

val clear : t -> unit
(** Drop every entry (midnode crash); each removal is traced. *)

val drop_flow : t -> flow:int -> unit
(** Drop every entry of one flow (flow retirement); each removal is traced
    as an expiry so trace replay stays balanced. *)
