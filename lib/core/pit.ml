module Trace = Leotp_net.Trace

type entry = { mutable consumers : int list; created : float }
type key = int * int * int (* flow, lo, hi *)

(* Stale entries are reaped by an amortized sweep every [sweep_every]
   registrations: a timer-driven reaper would keep the engine's queue
   from ever draining (Engine.run with no [until] runs to quiescence),
   while the sweep bounds the table at "fresh entries + one sweep
   window" with O(1) amortized cost.  A final [expire_before] at end of
   run (Midnode.sweep) clears the tail for the leak invariant. *)
let sweep_every = 64

type t = {
  label : string;
  expiry : float;
  table : (key, entry) Hashtbl.t;
  mutable ops : int;
}

let create ?(label = "pit") ~expiry () =
  { label; expiry; table = Hashtbl.create 64; ops = 0 }

let fresh t ~now e = now -. e.created < t.expiry

let remove_emitting t key =
  Hashtbl.remove t.table key;
  if Trace.on () then begin
    let flow, lo, hi = key in
    Trace.emit
      (Trace.Pit_expire
         { node = t.label; flow; lo; hi; pending = Hashtbl.length t.table })
  end

(* Hashtbl fold order is representation-dependent; sort so the trace
   (and its digest) only depends on the entries themselves.  Runs once
   per [sweep_every] registrations — amortized housekeeping, not the
   per-packet path. *)
let expire_before t ~now =
  let stale =
    List.sort compare
      (Hashtbl.fold
         (fun k e acc -> if fresh t ~now e then acc else k :: acc)
         t.table [])
  in
  List.iter (remove_emitting t) stale
[@@leotp.allow "hot-path-may-alloc"]

(* Per-Interest PIT bookkeeping: the (flow, lo, hi) key tuple, the entry
   record, and its consumer list are the pending-interest table — the
   paper's multicast state, allocated per registration by design. *)
let register t ~now ~flow ~lo ~hi ~consumer =
  t.ops <- t.ops + 1;
  if t.ops mod sweep_every = 0 then expire_before t ~now;
  let key = (flow, lo, hi) in
  let forwarded =
    match Hashtbl.find_opt t.table key with
    | Some e when fresh t ~now e ->
      if not (List.mem consumer e.consumers) then
        e.consumers <- consumer :: e.consumers;
      false
    | _ ->
      Hashtbl.replace t.table key { consumers = [ consumer ]; created = now };
      true
  in
  if Trace.on () then
    Trace.emit
      (Trace.Pit_register
         {
           node = t.label;
           flow;
           lo;
           hi;
           forwarded;
           expiry = t.expiry;
           pending = Hashtbl.length t.table;
         });
  forwarded
[@@leotp.allow "hot-path-may-alloc"]

(* Same per-lookup key tuple as [register]. *)
let satisfy t ~now ~flow ~lo ~hi =
  let key = ((flow, lo, hi) [@leotp.allow "hot-path-may-alloc"]) in
  match Hashtbl.find_opt t.table key with
  | Some e ->
    Hashtbl.remove t.table key;
    let is_fresh = fresh t ~now e in
    if Trace.on () then
      Trace.emit
        (Trace.Pit_satisfy
           {
             node = t.label;
             flow;
             lo;
             hi;
             fresh = is_fresh;
             age = now -. e.created;
             pending = Hashtbl.length t.table;
           });
    if is_fresh then e.consumers else []
  | None -> []

let pending t = Hashtbl.length t.table

let clear t =
  let keys = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.table []) in
  List.iter (remove_emitting t) keys

let drop_flow t ~flow =
  let keys =
    List.sort compare
      (Hashtbl.fold
         (fun ((f, _, _) as k) _ acc -> if f = flow then k :: acc else acc)
         t.table [])
  in
  List.iter (remove_emitting t) keys
