module Engine = Leotp_sim.Engine
module Packet = Leotp_net.Packet
module Node = Leotp_net.Node
module Interval_set = Leotp_util.Interval_set
module IntMap = Map.Make (Int)

type interest_state = {
  lo : int;
  hi : int;
  first_requested : float;
  mutable last_requested : float;
  mutable deadline : float;
  mutable retx_count : int;
  mutable floor_bound : float;
      (** min (SRTT + 4*RTTVAR, armed timeout) when the deadline was set;
          a TR timeout firing earlier than this violates RFC 6298 *)
}

type t = {
  engine : Engine.t;
  config : Config.t;
  node : Node.t;
  producer : int;
  flow : int;
  total_bytes : int option;
  metrics : Leotp_net.Flow_metrics.t;
  on_complete : unit -> unit;
  on_prefix : pos:int -> len:int -> unit;
  cc : Hop_cc.t;
  shr : Shr.t;
  rto : Leotp_util.Rto.t;
  path_rtt_min : Leotp_util.Windowed_min.t;
      (** minimum Interest->Data delay: the path's propagation RTT *)
  mutable outstanding : interest_state IntMap.t;  (** keyed by range lo *)
  mutable outstanding_bytes : int;
  mutable stale_bytes : int;
      (** outstanding ranges that already hit a TR timeout (presumed lost,
          repair in flight); they do not occupy pipeline capacity so the
          cap ignores them.  The RTO adapts to true request-to-data
          delays, so producer-side queueing does not classify as loss. *)
  mutable next_to_request : int;
  mutable received : Interval_set.t;
  mutable prefix : int;  (** delivered in-order prefix length *)
  mutable interests_sent : int;
  mutable interest_retx : int;
  mutable next_send_time : float;
  mutable last_shared_backoff : float;
  mutable scan_timer : Engine.timer option;
  mutable pump_timer : Engine.timer option;
  mutable completed : bool;
  mutable started : bool;
}

let create engine ~config ~node ~producer ~flow ?total_bytes ?metrics
    ?(on_complete = fun () -> ()) ?(on_prefix = fun ~pos:_ ~len:_ -> ()) () =
  let metrics =
    match metrics with
    | Some m -> m
    | None -> Leotp_net.Flow_metrics.create ~flow
  in
  {
    engine;
    config;
    node;
    producer;
    flow;
    total_bytes;
    metrics;
    on_complete;
    on_prefix;
    cc = Hop_cc.create ~pipe_full_exit:false ~config ~now:(Engine.now engine) ();
    shr = Shr.create ~config;
    rto =
      Leotp_util.Rto.create ~min_rto:0.05 ~max_rto:2.0
        ~backoff_factor:config.Config.tr_backoff ();
    last_shared_backoff = 0.0;
    path_rtt_min = Leotp_util.Windowed_min.create_min ~window:10.0;
    outstanding = IntMap.empty;
    outstanding_bytes = 0;
    stale_bytes = 0;
    next_to_request = 0;
    received = Interval_set.empty;
    prefix = 0;
    interests_sent = 0;
    interest_retx = 0;
    next_send_time = Engine.now engine;
    scan_timer = None;
    pump_timer = None;
    completed = false;
    started = false;
  }

let advertised_rate t =
  (* The Consumer has no sending buffer: its application drains data
     instantly, so eq (10) reduces to the window rate cwnd/RTT. *)
  Hop_cc.rate t.cc ~now:(Engine.now t.engine)

let send_interest t ~lo ~hi ~retx =
  let now = Engine.now t.engine in
  let pkt =
    Wire.interest_packet ~config:t.config ~src:(Node.id t.node) ~dst:t.producer
      ~flow:t.flow ~lo ~hi ~timestamp:now ~send_rate:(advertised_rate t) ~retx
  in
  t.interests_sent <- t.interests_sent + 1;
  if retx then begin
    t.interest_retx <- t.interest_retx + 1;
    Leotp_net.Flow_metrics.on_retransmit t.metrics
  end;
  Leotp_net.Flow_metrics.on_send t.metrics ~bytes:pkt.Packet.size;
  Node.send t.node pkt

(* The RFC 6298 floor the invariant checker holds TR timeouts to: a
   timeout must not fire before SRTT + 4*RTTVAR (clamped by the timeout
   actually armed, which the estimator's min/max bounds may pull below
   the raw formula). *)
let rto_floor t ~timeout =
  (* nested matches, not a tuple pattern: this runs per issued Interest
     and a 2-tuple scrutinee is a minor-heap allocation *)
  match Leotp_util.Rto.srtt t.rto with
  | None -> 0.0
  | Some s -> (
    match Leotp_util.Rto.rttvar t.rto with
    | Some v -> Float.min (s +. (4.0 *. v)) timeout
    | None -> 0.0)

let reissue t st =
  let now = Engine.now t.engine in
  st.retx_count <- st.retx_count + 1;
  if st.retx_count = 1 then t.stale_bytes <- t.stale_bytes + (st.hi - st.lo);
  st.last_requested <- now;
  (* Resending interval grows by 1.5x per timeout (paper §III-B), with a
     10 s ceiling so a long outage doesn't push deadlines out forever. *)
  let timeout =
    Float.min 10.0
      (Leotp_util.Rto.base_rto t.rto
      *. (t.config.Config.tr_backoff ** float_of_int st.retx_count))
  in
  st.deadline <- now +. timeout;
  st.floor_bound <- rto_floor t ~timeout;
  send_interest t ~lo:st.lo ~hi:st.hi ~retx:true

(* TR: periodic scan of unsatisfied Interests (paper §III-B).  A scan
   that found timeouts also backs off the shared estimator (RFC 6298
   §5.5): under Karn's rule delayed-but-not-lost data never produces
   samples, so without this the base RTO stays small and every new
   Interest times out spuriously. *)
(* Runs per TR scan tick (a timer period), not per packet — the
   accumulator cell and iteration closure are off the per-packet budget. *)
let scan t =
  let now = Engine.now t.engine in
  let any = ref false in
  IntMap.iter
    (fun _ st ->
      if now >= st.deadline then begin
        any := true;
        if Leotp_net.Trace.on () then
          Leotp_net.Trace.emit
            (Leotp_net.Trace.Rto_fire
               {
                 who = "consumer:" ^ Node.name t.node;
                 elapsed = now -. st.last_requested;
                 floor = st.floor_bound;
               });
        reissue t st
      end)
    t.outstanding;
  (* At most one shared backoff per RTO epoch — per-scan compounding
     would explode the base timeout within a second. *)
  if !any && now -. t.last_shared_backoff >= Leotp_util.Rto.rto t.rto then begin
    t.last_shared_backoff <- now;
    Leotp_util.Rto.backoff t.rto
  end
[@@leotp.allow "hot-path-may-alloc"]

(* Re-arming the scan timer allocates its action closure: one per scan
   period, inherent to the [Engine.schedule] API. *)
let rec ensure_scan_timer ~pump t =
  if (not t.completed) && t.scan_timer = None then
    t.scan_timer <-
      Some
        (Engine.schedule t.engine ~after:t.config.Config.tr_scan_interval
           (fun () ->
             t.scan_timer <- None;
             if not t.completed then begin
               scan t;
               (* The periodic tick is also the liveness backstop for a
                  window-blocked pump (nothing else fires when every
                  outstanding Interest's response was lost). *)
               pump t;
               ensure_scan_timer ~pump t
             end))
[@@leotp.allow "hot-path-may-alloc"]

let want_more t =
  match t.total_bytes with
  | Some n -> t.next_to_request < n
  | None -> true

(* Issue new Interests paced at the advertised rate (eq 10).  LEOTP's
   control is rate-based: cwnd is the intermediate of eq (8) and the pull
   pipeline spans the whole path, so outstanding data legitimately exceeds
   one hop's window.  A safety cap of ~2x the path's
   bandwidth-delay product (path RTT from the TR estimator) bounds the
   flood if the path black-holes. *)
let rec pump t =
  if not t.completed then begin
    pump_loop t (Engine.now t.engine);
    ensure_scan_timer ~pump t
  end

(* Recursive issue loop (no while+ref: [pump] runs per received Data and
   per pacing timer, and a local [ref] is a minor-heap cell).  Stops when
   the window or pacing gate closes or the stream is fully requested. *)
and pump_loop t now =
  if want_more t then begin
    (* Window over the pull loop: outstanding (non-lost) data is
       bounded by cwnd, giving the self-clocking a pure rate pacer
       lacks.  Ranges already declared lost (TR timeout) are being
       repaired and do not occupy the pipeline. *)
    let cap = Hop_cc.cwnd t.cc in
    let hi =
      match t.total_bytes with
      | Some n -> min n (t.next_to_request + t.config.Config.mss)
      | None -> t.next_to_request + t.config.Config.mss
    in
    let len = hi - t.next_to_request in
    let occupying = t.outstanding_bytes - t.stale_bytes in
    (* Hard bound including presumed-lost ranges: spurious timeouts
       must not reopen the window indefinitely (that would rebuild
       the invisible Producer backlog the window exists to bound). *)
    if
      float_of_int (occupying + len) > cap
      || float_of_int (t.outstanding_bytes + len) > 2.0 *. cap
    then ()
    else if now < t.next_send_time then schedule_pump t ~at:t.next_send_time
    else begin
      let rate = Float.max 1000.0 (advertised_rate t) in
      t.next_send_time <-
        Float.max now t.next_send_time +. (float_of_int len /. rate);
      let lo = t.next_to_request in
      t.next_to_request <- hi;
      let timeout = Leotp_util.Rto.rto t.rto in
      let st =
        (* one state record per issued Interest — its identity for the
           whole timeout/retransmission lifetime *)
        ({
           lo;
           hi;
           first_requested = now;
           last_requested = now;
           deadline = now +. timeout;
           retx_count = 0;
           floor_bound = rto_floor t ~timeout;
         }
        [@leotp.allow "hot-path-may-alloc"])
      in
      t.outstanding <- IntMap.add lo st t.outstanding;
      t.outstanding_bytes <- t.outstanding_bytes + len;
      send_interest t ~lo ~hi ~retx:false;
      pump_loop t now
    end
  end

and schedule_pump t ~at =
  match t.pump_timer with
  | Some timer when Engine.is_pending timer -> ()
  | _ ->
    t.pump_timer <-
      (* arming the pacing timer allocates its action closure: one per
         pacing gap, inherent to the [Engine.schedule_at] API *)
      Some
        (Engine.schedule_at t.engine ~time:at
           ((fun () ->
              t.pump_timer <- None;
              pump t) [@leotp.allow "hot-path-may-alloc"]))

let finish t =
  if not t.completed then begin
    t.completed <- true;
    if Leotp_net.Trace.on () then
      Leotp_net.Trace.emit
        (Leotp_net.Trace.Complete
           { node = Node.id t.node; flow = t.flow; bytes = t.prefix });
    Leotp_net.Flow_metrics.set_finished t.metrics (Engine.now t.engine);
    (match t.scan_timer with Some tm -> Engine.cancel tm | None -> ());
    (match t.pump_timer with Some tm -> Engine.cancel tm | None -> ());
    t.on_complete ()
  end

(* Interests overlapping [lo, hi).  Called once per received VPH — loss
   signalling, not the per-Data steady state — so the accumulator and
   sequence cells are off the per-packet budget. *)
let overlapping_outstanding t ~lo ~hi =
  let acc = ref [] in
  let rec go s =
    match s () with
    | Seq.Nil -> ()
    | Seq.Cons ((_, st), rest) ->
      if st.lo < hi then begin
        if st.hi > lo then acc := st :: !acc;
        go rest
      end
  in
  (* Entries are MSS-aligned, so start the scan one MSS below. *)
  go (IntMap.to_seq_from (lo - t.config.Config.mss) t.outstanding);
  !acc
[@@leotp.allow "hot-path-may-alloc"]

(* Runs once per received VPH — SHR loss signalling, not the per-Data
   steady state; the overlap list and deadline-reset closure are the cost
   of the paper's timeout-suppression rule. *)
let handle_vph t ~lo ~hi =
  (* §III-B: "when the Consumer receives a header, it will reset the
     timestamp of the corresponding Interest to avoid the timeout being
     triggered before the data retransmitted by SHR arrives." *)
  let now = Engine.now t.engine in
  List.iter
    (fun st -> st.deadline <- Float.max st.deadline (now +. Leotp_util.Rto.base_rto t.rto))
    (overlapping_outstanding t ~lo ~hi);
  ignore (Shr.on_packet t.shr ~lo ~hi)
[@@leotp.allow "hot-path-may-alloc"]

(* Endpoint control-loop bookkeeping: the overlap list (typically one
   element) and its iteration closure are per-Data endpoint cost, not
   forwarding-path cost — the zero-allocation budget protects relays. *)
let handle_data t ~lo ~hi ~first_sent ~retx =
  let now = Engine.now t.engine in
  (* Resolve the satisfied Interests.  The Consumer's controller (eqs 6-8)
     runs on the full pull-loop RTT — its Interest emission to Data
     arrival.  When the adjacent Midnode's cache responds this IS the
     paper's hopRTT; for end-to-end responses it is the path RTT, which
     additionally makes Responder-buffer queueing visible to eq (7). *)
  let satisfied = overlapping_outstanding t ~lo ~hi in
  List.iter
    (fun st ->
      if st.lo >= lo && st.hi <= hi then begin
        (* Karn: RTT samples only from un-retransmitted Interests. *)
        if st.retx_count = 0 then begin
          let loop_rtt = now -. st.last_requested in
          Leotp_util.Rto.observe t.rto loop_rtt;
          Leotp_util.Windowed_min.add t.path_rtt_min ~now loop_rtt;
          Hop_cc.on_data t.cc ~now ~interest_owd:loop_rtt ~data_owd:0.0
            ~bytes:(st.hi - st.lo)
        end
        else
          (* Retransmitted ranges still count toward delivered bytes for
             the throughput estimate, without an RTT sample (Karn). *)
          Hop_cc.on_delivered t.cc ~now ~bytes:(st.hi - st.lo);
        t.outstanding <- IntMap.remove st.lo t.outstanding;
        t.outstanding_bytes <- t.outstanding_bytes - (st.hi - st.lo);
        if st.retx_count >= 1 then
          t.stale_bytes <- max 0 (t.stale_bytes - (st.hi - st.lo))
      end)
    satisfied;
  (* Deliver fresh bytes. *)
  let before = Interval_set.cardinal t.received in
  t.received <- Interval_set.add ~lo ~hi t.received;
  let fresh = Interval_set.cardinal t.received - before in
  if fresh > 0 then
    Leotp_net.Flow_metrics.on_deliver t.metrics ~now ~bytes:fresh
      ~owd:(now -. first_sent) ~retx;
  (* In-order prefix growth feeds byte-stream consumers (gateways). *)
  let new_prefix = Interval_set.first_missing ~lo:0 t.received in
  if new_prefix > t.prefix then begin
    let pos = t.prefix in
    t.prefix <- new_prefix;
    if Leotp_net.Trace.on () then
      Leotp_net.Trace.emit
        (Leotp_net.Trace.Deliver
           { node = Node.id t.node; flow = t.flow; pos; len = new_prefix - pos });
    t.on_prefix ~pos ~len:(new_prefix - pos)
  end;
  (* Consumer-side SHR: confirmed holes are re-requested immediately. *)
  let actions = Shr.on_packet t.shr ~lo ~hi in
  List.iter
    (fun (hlo, hhi) ->
      List.iter (fun st -> reissue t st)
        (overlapping_outstanding t ~lo:hlo ~hi:hhi))
    actions.Shr.expired_holes;
  (* Completion. *)
  (match t.total_bytes with
  | Some n when Interval_set.covers ~lo:0 ~hi:n t.received -> finish t
  | _ -> ());
  pump t
[@@leotp.allow "hot-path-may-alloc"]

(* Terminal handler: the Consumer owns the delivered packet and recycles
   it once the slot values are extracted. *)
let handle_packet t pkt =
  if Wire.is_data pkt && pkt.Packet.flow = t.flow then begin
    let lo = Wire.lo pkt and hi = Wire.hi pkt in
    let length = Wire.length pkt in
    let first_sent = Wire.first_sent pkt and retx = Wire.retx pkt in
    Leotp_net.Packet_pool.release pkt;
    if length = 0 then handle_vph t ~lo ~hi
    else handle_data t ~lo ~hi ~first_sent ~retx
  end
  else Leotp_net.Packet_pool.release pkt

let start t =
  if not t.started then begin
    t.started <- true;
    Leotp_net.Flow_metrics.set_started t.metrics (Engine.now t.engine);
    pump t
  end

let complete t = t.completed
let received_bytes t = Interval_set.cardinal t.received
let delivered_prefix t = t.prefix
let outstanding_bytes t = t.outstanding_bytes
let cwnd t = Hop_cc.cwnd t.cc
let hop_rtt t = Hop_cc.hop_rtt t.cc
let metrics t = t.metrics
let interests_sent t = t.interests_sent
let interest_retx t = t.interest_retx

let stop t =
  (match t.scan_timer with Some tm -> Engine.cancel tm | None -> ());
  (match t.pump_timer with Some tm -> Engine.cancel tm | None -> ());
  t.completed <- true
