(** Midnode block cache (paper §IV-A).

    Data is grouped into fixed-size blocks per flow ("we gather every 4096
    consequent bytes in the same data flow to one block"), indexed by
    (flow, block) with LRU replacement over blocks.  A block tracks which
    of its bytes are present plus the origin timestamp / retx metadata
    needed to re-serve a range.

    Capacity is in bytes of cached payload; eviction removes whole
    blocks. *)

type t

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
}

val create : ?label:string -> config:Config.t -> unit -> t
(** [label] names this cache in trace events (the owning node's name). *)

val insert :
  t -> flow:int -> lo:int -> hi:int -> first_sent:float -> retx:bool -> unit

val lookup : t -> flow:int -> lo:int -> hi:int -> (float * bool) option
(** [Some (first_sent, retx)] iff every byte of [lo, hi) is cached.
    Counts a hit or a miss. *)

val contains : t -> flow:int -> lo:int -> hi:int -> bool
(** Like {!lookup} but without touching LRU order or stats. *)

val used_bytes : t -> int
val stats : t -> stats

val clear : t -> unit
(** Drop every block (midnode crash); does not count as evictions. *)

val drop_flow : t -> flow:int -> unit
