type t = {
  config : Config.t;
  pipe_full_exit : bool;
  mutable cwnd : float;
  mutable slow_start : bool;
  rtt_ewma : Leotp_util.Stats.Ewma.t;
  rtt_min : Leotp_util.Windowed_min.t;
  thr_max : Leotp_util.Windowed_min.t;
      (** recent peak delivery rate; the BDP base (eq 6).  The smoothed
          rate dips whenever cwnd is cut, so using it for BDP would spiral
          the operating point down. *)
  mutable thr_ewma : float;  (** bytes/s *)
  mutable bytes_since_adjust : int;
  mutable last_adjust : float;
  mutable next_adjust : float;
}

let initial_cwnd config = 10.0 *. float_of_int config.Config.mss

(* One controller record per flow at first contact — setup, not
   per-packet. *)
let create ?(pipe_full_exit = true) ~config ~now () =
  ({
    config;
    pipe_full_exit;
    cwnd = initial_cwnd config;
    slow_start = true;
    rtt_ewma = Leotp_util.Stats.Ewma.create ~alpha:0.125;
    rtt_min =
      Leotp_util.Windowed_min.create_min ~window:config.Config.min_rtt_window;
    thr_max = Leotp_util.Windowed_min.create_max ~window:2.0;
    thr_ewma = 0.0;
    bytes_since_adjust = 0;
    last_adjust = now;
    next_adjust = now;
    } [@leotp.allow "hot-path-may-alloc"])

let hop_rtt t =
  let v = Leotp_util.Stats.Ewma.value t.rtt_ewma in
  if Float.is_nan v then None else Some v

let hop_rtt_min t ~now = Leotp_util.Windowed_min.get t.rtt_min ~now
let throughput t = t.thr_ewma
let in_slow_start t = t.slow_start
let cwnd t = t.cwnd

(* Nested matches, not a tuple pattern: this runs per adjust on the
   per-Data control path and a 2-tuple scrutinee is a minor-heap
   allocation. *)
let queue_len t ~now =
  match hop_rtt t with
  | None -> 0.0
  | Some rtt -> (
    match hop_rtt_min t ~now with
    | Some rtt_min -> t.thr_ewma *. Float.max 0.0 (rtt -. rtt_min)
    | None -> 0.0)

let adjust t ~now =
  let mss = float_of_int t.config.Config.mss in
  (* Throughput over the last adjustment interval, smoothed. *)
  let interval = now -. t.last_adjust in
  if interval > 0.0 then begin
    let sample = float_of_int t.bytes_since_adjust /. interval in
    t.thr_ewma <-
      (if Float.equal t.thr_ewma 0.0 then sample
       else (0.7 *. t.thr_ewma) +. (0.3 *. sample));
    Leotp_util.Windowed_min.add t.thr_max ~now t.thr_ewma
  end;
  t.bytes_since_adjust <- 0;
  t.last_adjust <- now;
  let q = queue_len t ~now in
  let m = t.config.Config.queue_threshold in
  if t.slow_start then begin
    (* Exit on queue build-up (eq 8) or when the window outruns what the
       path delivers (doubling cwnd stopped doubling throughput): queueing
       at the Responder's sending buffer is invisible to hopRTT by design
       (§III-C), so the pipe-full check is the only signal for it. *)
    let factor = if t.pipe_full_exit then 2.0 else 2.5 in
    (* Without [pipe_full_exit] the check still applies with extra
       headroom: on the Consumer's pull loop, thr*rtt IS the pipe's BDP,
       and exponential growth past ~2.5x of it only builds invisible
       Responder backlog (the queue signal lags the RTT smoothing). *)
    let pipe_full =
      match hop_rtt t with
      | Some rtt -> t.thr_ewma > 0.0 && t.cwnd > factor *. t.thr_ewma *. rtt
      | None -> false
    in
    if q > m || pipe_full then t.slow_start <- false
    else t.cwnd <- t.cwnd *. 2.0
  end;
  if not t.slow_start then begin
    if q <= m then t.cwnd <- t.cwnd +. mss
    else begin
      let thr =
        Leotp_util.Windowed_min.get_or t.thr_max ~now ~default:t.thr_ewma
      in
      let bdp =
        match hop_rtt_min t ~now with
        | Some rtt_min -> thr *. rtt_min
        | None -> t.cwnd
      in
      t.cwnd <- Float.max (2.0 *. mss) (t.config.Config.k *. bdp)
    end
  end

let on_delivered t ~now:_ ~bytes =
  t.bytes_since_adjust <- t.bytes_since_adjust + bytes

let on_data t ~now ~interest_owd ~data_owd ~bytes =
  let sample = Float.max 1e-6 (interest_owd +. data_owd) in
  Leotp_util.Stats.Ewma.add t.rtt_ewma sample;
  Leotp_util.Windowed_min.add t.rtt_min ~now sample;
  t.bytes_since_adjust <- t.bytes_since_adjust + bytes;
  if now >= t.next_adjust then begin
    adjust t ~now;
    let rtt =
      match hop_rtt t with Some r -> Float.max r 0.002 | None -> 0.01
    in
    t.next_adjust <- now +. rtt
  end

let rate t ~now =
  (* cwnd over the *floor* RTT: dividing by the smoothed RTT would lower
     the advertised rate as queues build, starving the very drain that
     clears them (Vegas's baseRTT argument). *)
  let rtt =
    match hop_rtt_min t ~now with
    | Some r -> Float.max r 1e-4
    | None -> (
      match hop_rtt t with Some r -> Float.max r 1e-4 | None -> 0.01)
  in
  let window_rate = t.cwnd /. rtt in
  (* Never advertise more than 2x the hop's recent peak delivery rate:
     the window rate alone can outrun the path indefinitely because
     Responder buffering is invisible to hopRTT (§III-C).  The 2x headroom
     still lets slow start double every hopRTT; the recent *peak* (not the
     smoothed rate) is used so that transient pipeline bubbles after a
     window cut do not feed back into a rate collapse.  Reaction to real
     bandwidth drops comes from the QueueLen cut of eq (8). *)
  let thr =
    Leotp_util.Windowed_min.get_or t.thr_max ~now ~default:t.thr_ewma
  in
  if thr > 0.0 then Float.min window_rate (2.0 *. thr) else window_rate
