module Node = Leotp_net.Node
module Packet = Leotp_net.Packet

type t = {
  consumer : Consumer.t;
  producer : Producer.t;
  midnodes : Midnode.t list;
  metrics : Leotp_net.Flow_metrics.t;
}

let attach engine ~config ~consumer_node ~producer_node ~midnodes ~flow
    ?total_bytes ?on_complete () =
  let metrics = Leotp_net.Flow_metrics.create ~flow in
  let consumer =
    Consumer.create engine ~config ~node:consumer_node
      ~producer:(Node.id producer_node) ~flow ?total_bytes ~metrics
      ?on_complete ()
  in
  let producer =
    Producer.create engine ~config ~node:producer_node ~flow ?total_bytes
      ~metrics ()
  in
  (* Endpoints also forward traffic that is not theirs (a node can host
     several flows' endpoints in multi-flow experiments — each flow
     re-installs a handler, so endpoint nodes are one-flow in practice;
     scenarios give each flow its own endpoint nodes). *)
  Node.set_handler consumer_node (fun ~from:_ pkt ->
      if Wire.is_data pkt && pkt.Packet.flow = flow then
        Consumer.handle_packet consumer pkt
      else Node.forward consumer_node ~from:0 pkt);
  Node.set_handler producer_node (fun ~from:_ pkt ->
      if Wire.is_interest pkt && pkt.Packet.flow = flow then
        Producer.handle_interest producer pkt
      else Node.forward producer_node ~from:0 pkt);
  { consumer; producer; midnodes; metrics }

let over_chain engine ~config ~chain ~flow ?total_bytes ?(coverage = 1.0)
    ?coverage_rng ?on_complete () =
  let nodes = chain.Leotp_net.Topology.nodes in
  let n = Array.length nodes in
  assert (n >= 2);
  let interior = Array.sub nodes 1 (n - 2) in
  let midnodes =
    match config.Config.ablation with
    | Config.No_midnodes -> []
    | _ ->
      (* Pick ceil(coverage * count) interior nodes as Midnodes; with an
         rng the subset is random (paper's partial deployment), otherwise
         evenly spaced. *)
      let count = Array.length interior in
      let wanted =
        int_of_float (Float.round (coverage *. float_of_int count))
      in
      let wanted = max 0 (min count wanted) in
      let chosen =
        if wanted = count then Array.to_list interior
        else begin
          match coverage_rng with
          | Some rng ->
            let idx = Array.init count Fun.id in
            Leotp_util.Rng.shuffle rng idx;
            Array.to_list (Array.map (fun i -> interior.(i)) (Array.sub idx 0 wanted))
          | None ->
            (* Evenly spaced deployment. *)
            List.init wanted (fun k ->
                interior.(k * count / max 1 wanted))
        end
      in
      List.map (fun node -> Midnode.create engine ~config ~node ()) chosen
  in
  attach engine ~config ~consumer_node:nodes.(0) ~producer_node:nodes.(n - 1)
    ~midnodes ~flow ?total_bytes ?on_complete ()

let start t = Consumer.start t.consumer

let stop t = Consumer.stop t.consumer
