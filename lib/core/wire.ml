(** LEOTP wire format (paper Table I), as flat packet slots.

    Two packet types: Interest (request) and Data (response).  A Data
    packet with [length = 0] is a Void Packet Header (VPH), the
    loss-notification of §III-B.  The header is 15 bytes (TYPE, FlowID,
    rangeStart, rangeEnd, timestamp, sendRate/length).

    Fields beyond Table I ([req_owd], [first_sent], [retx]) are simulation
    metadata: [req_owd] stands in for the Responder-side Interest-OWD
    bookkeeping a real node keeps locally (it rides the Data packet here
    because simulated nodes don't share memory), and [first_sent]/[retx]
    feed the measurement pipeline only.  None of them are charged wire
    bytes.

    Slot layout (name.flow is the packet's own [flow] field):
    - Interest ([kind_interest]): i0 = lo, i1 = hi, f.(0) = timestamp,
      f.(1) = send_rate (bytes/s, eq 10), [flag_retx].
    - Data ([kind_data]): i0 = lo, i1 = hi, i2 = length (0 = VPH),
      f.(0) = timestamp, f.(1) = req_owd, f.(2) = first_sent,
      [flag_retx]. *)

(* Wire-format surface: the slot accessors and constructors are the whole
   module; an .mli would duplicate every one-liner. *)
[@@@leotp.allow "missing-interface"]

module Packet = Leotp_net.Packet
module Pool = Leotp_net.Packet_pool
module Codec = Leotp_net.Codec

(* Kind registry: net reserves 0 (raw); LEOTP takes 1-2, TCP takes 3-4
   (lib/tcp/wire.ml) — distinct because gateway nodes carry both. *)
let kind_interest = 1
let kind_data = 2

let interest_packet ~config ~src ~dst ~flow ~lo ~hi ~timestamp ~send_rate
    ~retx =
  let p =
    Pool.acquire ~src ~dst ~flow ~size:config.Config.header_bytes
      ~kind:kind_interest
  in
  p.Packet.i0 <- lo;
  p.Packet.i1 <- hi;
  p.Packet.f.(0) <- timestamp;
  p.Packet.f.(1) <- send_rate;
  Packet.set_flag p Packet.flag_retx retx;
  p

let data_packet ~config ~src ~dst ~flow ~lo ~hi ~timestamp ~req_owd
    ~first_sent ~retx =
  let length = hi - lo in
  let p =
    Pool.acquire ~src ~dst ~flow
      ~size:(config.Config.header_bytes + length)
      ~kind:kind_data
  in
  p.Packet.i0 <- lo;
  p.Packet.i1 <- hi;
  p.Packet.i2 <- length;
  p.Packet.f.(0) <- timestamp;
  p.Packet.f.(1) <- req_owd;
  p.Packet.f.(2) <- first_sent;
  Packet.set_flag p Packet.flag_retx retx;
  p

let vph_packet ~config ~src ~dst ~flow ~lo ~hi ~timestamp =
  let p =
    Pool.acquire ~src ~dst ~flow ~size:config.Config.header_bytes
      ~kind:kind_data
  in
  p.Packet.i0 <- lo;
  p.Packet.i1 <- hi;
  (* i2 (length) stays 0: this is the VPH marker. *)
  p.Packet.f.(0) <- timestamp;
  p

(* Accessors (valid for both kinds unless noted). *)
let lo (p : Packet.t) = p.Packet.i0
let hi (p : Packet.t) = p.Packet.i1
let length (p : Packet.t) = p.Packet.i2  (* Data only *)
let timestamp (p : Packet.t) = p.Packet.f.(0)
let send_rate (p : Packet.t) = p.Packet.f.(1)  (* Interest only *)
let req_owd (p : Packet.t) = p.Packet.f.(1)  (* Data only *)
let first_sent (p : Packet.t) = p.Packet.f.(2)  (* Data only *)
let retx (p : Packet.t) = Packet.get_flag p Packet.flag_retx
let is_interest (p : Packet.t) = p.Packet.kind = kind_interest
let is_data (p : Packet.t) = p.Packet.kind = kind_data
let is_vph (p : Packet.t) = p.Packet.kind = kind_data && p.Packet.i2 = 0

(* In-place re-origination.  The wire timestamp is "when the packet is
   sent by the previous node" (Table I): Data is restamped when it leaves
   a sending buffer, Interests when a Midnode re-issues them upstream.
   Each consumes a fresh id, exactly like the re-constructed packet it
   replaces — the trace digests depend on that sequence. *)
let restamp_data p ~timestamp ~req_owd =
  Packet.assign_fresh_id p;
  p.Packet.f.(0) <- timestamp;
  p.Packet.f.(1) <- req_owd

let reoriginate_interest p ~timestamp ~send_rate =
  Packet.assign_fresh_id p;
  p.Packet.f.(0) <- timestamp;
  p.Packet.f.(1) <- send_rate

(* ------------------------------------------------------------------ *)
(* Cursor codecs: the byte serialization of each kind.  Decode fills a
   caller-owned (pool-acquired) record so the pair is allocation-free. *)

let header_encoded_size = 1 + (4 * 8)  (* kind tag + src/dst/flow/size *)
let interest_encoded_size = header_encoded_size + (2 * 8) + (2 * 8) + 1
let data_encoded_size = header_encoded_size + (3 * 8) + (3 * 8) + 1

let encode_header w (p : Packet.t) =
  Codec.w_u8 w p.Packet.kind;
  Codec.w_int w p.Packet.src;
  Codec.w_int w p.Packet.dst;
  Codec.w_int w p.Packet.flow;
  Codec.w_int w p.Packet.size

let decode_header r (p : Packet.t) =
  p.Packet.kind <- Codec.r_u8 r;
  p.Packet.src <- Codec.r_int r;
  p.Packet.dst <- Codec.r_int r;
  p.Packet.flow <- Codec.r_int r;
  p.Packet.size <- Codec.r_int r

let encode_interest w (p : Packet.t) =
  encode_header w p;
  Codec.w_int w p.Packet.i0;
  Codec.w_int w p.Packet.i1;
  Codec.w_float w p.Packet.f.(0);
  Codec.w_float w p.Packet.f.(1);
  Codec.w_bool w (retx p)

let decode_interest r (p : Packet.t) =
  decode_header r p;
  p.Packet.i0 <- Codec.r_int r;
  p.Packet.i1 <- Codec.r_int r;
  p.Packet.f.(0) <- Codec.r_float r;
  p.Packet.f.(1) <- Codec.r_float r;
  Packet.set_flag p Packet.flag_retx (Codec.r_bool r)

let encode_data w (p : Packet.t) =
  encode_header w p;
  Codec.w_int w p.Packet.i0;
  Codec.w_int w p.Packet.i1;
  Codec.w_int w p.Packet.i2;
  Codec.w_float w p.Packet.f.(0);
  Codec.w_float w p.Packet.f.(1);
  Codec.w_float w p.Packet.f.(2);
  Codec.w_bool w (retx p)

let decode_data r (p : Packet.t) =
  decode_header r p;
  p.Packet.i0 <- Codec.r_int r;
  p.Packet.i1 <- Codec.r_int r;
  p.Packet.i2 <- Codec.r_int r;
  p.Packet.f.(0) <- Codec.r_float r;
  p.Packet.f.(1) <- Codec.r_float r;
  p.Packet.f.(2) <- Codec.r_float r;
  Packet.set_flag p Packet.flag_retx (Codec.r_bool r)
