(** LEOTP wire format (paper Table I).

    Two packet types: Interest (request) and Data (response).  A Data
    packet with [length = 0] is a Void Packet Header (VPH), the
    loss-notification of §III-B.  The header is 15 bytes (TYPE, FlowID,
    rangeStart, rangeEnd, timestamp, sendRate/length).

    Fields beyond Table I ([req_owd], [first_sent], [retx]) are simulation
    metadata: [req_owd] stands in for the Responder-side Interest-OWD
    bookkeeping a real node keeps locally (it rides the Data packet here
    because simulated nodes don't share memory), and [first_sent]/[retx]
    feed the measurement pipeline only.  None of them are charged wire
    bytes. *)

(* Wire-format variant: every constructor and field is the public
   surface; an .mli would duplicate the whole definition. *)
[@@@leotp.allow "missing-interface"]


type name = { flow : int; lo : int; hi : int }

type Leotp_net.Packet.payload +=
  | Interest of {
      name : name;
      timestamp : float;  (** stamped by the Requester of this hop *)
      send_rate : float;  (** advertised sending rate, bytes/s (eq 10) *)
      retx : bool;  (** re-request (TR or SHR), for accounting *)
    }
  | Data of {
      name : name;
      length : int;  (** payload bytes; 0 = VPH *)
      timestamp : float;  (** stamped by the Responder of this hop *)
      req_owd : float;  (** Interest OWD measured at the Responder, s *)
      first_sent : float;  (** origin first-transmission time of the range *)
      retx : bool;  (** range was retransmitted somewhere on the path *)
    }

let range_len name = name.hi - name.lo

let interest_packet ~config ~src ~dst ~name ~timestamp ~send_rate ~retx =
  Leotp_net.Packet.make ~src ~dst ~flow:name.flow
    ~size:config.Config.header_bytes
    (Interest { name; timestamp; send_rate; retx })

let data_packet ~config ~src ~dst ~name ~timestamp ~req_owd ~first_sent ~retx =
  let length = range_len name in
  Leotp_net.Packet.make ~src ~dst ~flow:name.flow
    ~size:(config.Config.header_bytes + length)
    (Data { name; length; timestamp; req_owd; first_sent; retx })

let vph_packet ~config ~src ~dst ~name ~timestamp =
  Leotp_net.Packet.make ~src ~dst ~flow:name.flow
    ~size:config.Config.header_bytes
    (Data { name; length = 0; timestamp; req_owd = 0.0; first_sent = 0.0; retx = false })

let is_vph = function Data { length = 0; _ } -> true | _ -> false

let pp_name ppf n = Format.fprintf ppf "%d:[%d,%d)" n.flow n.lo n.hi
