module Interval_set = Leotp_util.Interval_set

(* Per-block origin metadata: a bounded ring of (range_start_abs,
   first_sent, retx) entries, newest overwriting oldest.  The ring only
   needs to resolve lookups for ranges still in the block, so one slot
   per MSS-grained insertion (plus slack) suffices; a ring keeps insert
   O(1) where the previous list representation paid [List.length] +
   [List.filteri] — O(n²) per block — on every insert. *)
type block = {
  mutable present : Interval_set.t;  (** byte ranges present, block-relative *)
  meta_lo : int array;
  meta_first_sent : float array;
  meta_retx : bool array;
  mutable meta_len : int;  (** live entries, <= capacity *)
  mutable meta_next : int;  (** next write slot *)
  mutable bytes : int;
}

type key = int * int (* flow, block index *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
}

type t = {
  config : Config.t;
  label : string;
  blocks : (key, block) Leotp_util.Lru.t;
  meta_capacity : int;
  mutable used : int;
  stats : stats;
}

let create ?(label = "cache") ~config () =
  {
    config;
    label;
    blocks = Leotp_util.Lru.create ();
    meta_capacity = (config.Config.cache_block / config.Config.mss) + 2;
    used = 0;
    stats = { hits = 0; misses = 0; insertions = 0; evictions = 0 };
  }

let trace_occupancy t =
  if Leotp_net.Trace.on () then
    Leotp_net.Trace.emit
      (Leotp_net.Trace.Cache_occupancy
         {
           node = t.label;
           used = t.used;
           capacity = t.config.Config.cache_capacity;
         })

let block_size t = t.config.Config.cache_block

(* One block record (plus its meta arrays) per [cache_block] bytes of
   fresh content entering the cache — amortized over the block's many
   packets, and recycled through the LRU thereafter. *)
let fresh_block t =
  ({
    present = Interval_set.empty;
    meta_lo = (Array.make [@leotp.allow "hot-path-may-alloc"]) t.meta_capacity 0;
    meta_first_sent =
      (Array.make [@leotp.allow "hot-path-may-alloc"]) t.meta_capacity 0.0;
    meta_retx =
      (Array.make [@leotp.allow "hot-path-may-alloc"]) t.meta_capacity false;
    meta_len = 0;
    meta_next = 0;
    bytes = 0;
  } [@leotp.allow "hot-path-may-alloc"])

let push_meta t blk ~lo ~first_sent ~retx =
  let cap = t.meta_capacity in
  let i = blk.meta_next in
  blk.meta_lo.(i) <- lo;
  blk.meta_first_sent.(i) <- first_sent;
  blk.meta_retx.(i) <- retx;
  blk.meta_next <- (i + 1) mod cap;
  if blk.meta_len < cap then blk.meta_len <- blk.meta_len + 1

let evict_until_fits t =
  while t.used > t.config.Config.cache_capacity do
    match Leotp_util.Lru.evict_lru t.blocks with
    | Some (_, blk) ->
      t.used <- t.used - blk.bytes;
      t.stats.evictions <- t.stats.evictions + 1
    | None -> t.used <- 0
  done

(* Apply [f] to every (block_key, block_lo, block_hi) slice of [lo, hi). *)
let iter_blocks t ~flow ~lo ~hi f =
  let bs = block_size t in
  let b0 = lo / bs and b1 = (hi - 1) / bs in
  for b = b0 to b1 do
    let blo = max lo (b * bs) and bhi = min hi ((b + 1) * bs) in
    (* the (flow, block) pair is the LRU key — one per block touched,
       inherent to a hashtable-keyed block store *)
    f ((flow, b) [@leotp.allow "hot-path-may-alloc"]) blo bhi
  done

let insert t ~flow ~lo ~hi ~first_sent ~retx =
  if hi > lo then begin
    t.stats.insertions <- t.stats.insertions + 1;
    (* per-insert block-walk closure — one cell per cached Data, dwarfed
       by the interval-set and LRU updates the insert performs anyway *)
    iter_blocks t ~flow ~lo ~hi
      ((fun key blo bhi ->
        let blk =
          match Leotp_util.Lru.find t.blocks key with
          | Some blk -> blk
          | None ->
            let blk = fresh_block t in
            Leotp_util.Lru.put t.blocks key blk;
            blk
        in
        let before = Interval_set.cardinal blk.present in
        blk.present <- Interval_set.add ~lo:blo ~hi:bhi blk.present;
        let added = Interval_set.cardinal blk.present - before in
        blk.bytes <- blk.bytes + added;
        t.used <- t.used + added;
        push_meta t blk ~lo:blo ~first_sent ~retx)
      [@leotp.allow "hot-path-may-alloc"]);
    evict_until_fits t;
    trace_occupancy t
  end

(* Entry with the largest start <= lo (the insertion that covered [lo]);
   falls back to the newest entry.  Scans the ring newest-first so ties
   on start resolve to the most recent insertion, matching the previous
   newest-first list fold. *)
(* Per-probe scratch cells and the (first_sent, retx) option result are
   the lookup API's currency — a handful of words per Interest probe,
   dwarfed by the Data response a hit produces. *)
let find_meta t blk ~lo =
  if blk.meta_len = 0 then None
  else begin
    let cap = t.meta_capacity in
    let best = ref (-1) in
    for k = 0 to blk.meta_len - 1 do
      let i = (blk.meta_next - 1 - k + (2 * cap)) mod cap in
      let s = blk.meta_lo.(i) in
      if s <= lo && (!best < 0 || s > blk.meta_lo.(!best)) then best := i
    done;
    let i = if !best >= 0 then !best else (blk.meta_next - 1 + cap) mod cap in
    Some (blk.meta_first_sent.(i), blk.meta_retx.(i))
  end
[@@leotp.allow "hot-path-may-alloc"]

let lookup_inner t ~touch ~flow ~lo ~hi =
  let ok = ref true in
  let meta = ref None in
  iter_blocks t ~flow ~lo ~hi (fun key blo bhi ->
      if !ok then begin
        let blk =
          if touch then Leotp_util.Lru.find t.blocks key
          else Leotp_util.Lru.peek t.blocks key
        in
        match blk with
        | Some blk when Interval_set.covers ~lo:blo ~hi:bhi blk.present ->
          if !meta = None then meta := find_meta t blk ~lo:blo
        | Some _ | None -> ok := false
      end);
  if !ok then Some (match !meta with Some m -> m | None -> (0.0, false))
  else None
[@@leotp.allow "hot-path-may-alloc"]

let lookup t ~flow ~lo ~hi =
  match lookup_inner t ~touch:true ~flow ~lo ~hi with
  | Some m ->
    t.stats.hits <- t.stats.hits + 1;
    Some m
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    None

let contains t ~flow ~lo ~hi =
  lookup_inner t ~touch:false ~flow ~lo ~hi <> None

let used_bytes t = t.used
let stats t = t.stats

let clear t =
  Leotp_util.Lru.clear t.blocks;
  t.used <- 0;
  trace_occupancy t

let drop_flow t ~flow =
  let keys = ref [] in
  Leotp_util.Lru.iter
    (fun ((f, _) as key) blk -> if f = flow then keys := (key, blk.bytes) :: !keys)
    t.blocks;
  List.iter
    (fun (key, bytes) ->
      Leotp_util.Lru.remove t.blocks key;
      t.used <- t.used - bytes)
    !keys
