(** Inter-hop rate coordination (paper §III-C, eqs 9-10): the Requester
    advertises to its upstream Responder the inflow that brings the
    sending buffer back to its target length within one hopRTT on top of
    the current outflow. *)

val rate_bp :
  config:Config.t ->
  buffer_len:int ->
  next_hop_rate:float ->
  hop_rtt:float ->
  float
(** Eq (9), in the draining form: [next_hop_rate + (BL_tar - BL) /
    hopRTT], clamped at 0. *)

val advertised_rate :
  config:Config.t ->
  cc:Hop_cc.t ->
  now:float ->
  buffer_len:int ->
  next_hop_rate:float ->
  float
(** Eq (10): [min (cwnd / hopRTT, rate_bp)]. *)
