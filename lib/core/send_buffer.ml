module Engine = Leotp_sim.Engine
module Packet = Leotp_net.Packet
module Pool = Leotp_net.Packet_pool
module Pkt_queue = Leotp_net.Pkt_queue

type t = {
  engine : Engine.t;
  config : Config.t;
  send : Packet.t -> unit;
  queue : Pkt_queue.t;
  bucket : Leotp_util.Token_bucket.t;
  queued_names : (int * int * int, unit) Hashtbl.t;
      (* Interest aggregation: a data range already waiting in the buffer
         is not enqueued twice (re-requests would otherwise multiply
         under timeout retransmission). *)
  mutable queued_bytes : int;
  mutable drops : int;
  mutable drain_timer : Engine.timer option;
}

(* Only real Data carries a dedup name; VPHs and Interests pass through. *)
let has_name pkt = pkt.Packet.kind = Wire.kind_data && pkt.Packet.i2 > 0
(* One 3-word tuple per named-Data dedup lookup: the aggregation table is
   keyed on (flow, lo, hi) and packing three unbounded ints into one word
   would invite collisions. *)
let name_key pkt =
  ((pkt.Packet.flow, pkt.Packet.i0, pkt.Packet.i1)
  [@leotp.allow "hot-path-may-alloc"])

(* One buffer record per flow at first contact — setup, not per-packet. *)
let create engine ~config ~send () =
  ({
    engine;
    config;
    send;
    queue = Pkt_queue.create ();
    queued_names = Hashtbl.create 64;
    bucket =
      Leotp_util.Token_bucket.create
        ~rate:(10.0 *. float_of_int config.Config.mss)
        ~burst:(2.0 *. float_of_int config.Config.mss)
        ~now:(Engine.now engine);
    queued_bytes = 0;
    drops = 0;
    drain_timer = None;
  } [@leotp.allow "hot-path-may-alloc"])

let rec drain t =
  if not (Pkt_queue.is_empty t.queue) then begin
    let pkt = Pkt_queue.peek t.queue in
    let now = Engine.now t.engine in
    if Leotp_util.Token_bucket.try_consume t.bucket ~now pkt.Packet.size then begin
      ignore (Pkt_queue.pop t.queue);
      t.queued_bytes <- t.queued_bytes - pkt.Packet.size;
      if has_name pkt then Hashtbl.remove t.queued_names (name_key pkt);
      t.send pkt;
      drain t
    end
    else begin
      let wait = Leotp_util.Token_bucket.time_until t.bucket ~now pkt.Packet.size in
      if Float.is_finite wait then schedule t ~after:wait
      (* A zero advertised rate pauses the buffer; a later set_rate
         restarts it. *)
    end
  end

and schedule t ~after =
  match t.drain_timer with
  | Some timer when Engine.is_pending timer -> ()
  | _ ->
    t.drain_timer <-
      (* arming the drain timer allocates its action closure: one per
         pacing gap, inherent to the [Engine.schedule] API *)
      Some
        (Engine.schedule t.engine ~after
           ((fun () ->
              t.drain_timer <- None;
              drain t) [@leotp.allow "hot-path-may-alloc"]))

(* [push] always takes ownership: absorbed duplicates and capacity drops
   go back to the pool here, queued packets die later in [t.send]'s
   downstream or in [clear]. *)
let push t pkt =
  if has_name pkt && Hashtbl.mem t.queued_names (name_key pkt) then begin
    (* Already queued: absorb the duplicate. *)
    Pool.release pkt;
    true
  end
  else if t.queued_bytes + pkt.Packet.size > t.config.Config.send_buffer_capacity
  then begin
    t.drops <- t.drops + 1;
    Pool.release pkt;
    false
  end
  else begin
    if has_name pkt then Hashtbl.replace t.queued_names (name_key pkt) ();
    Pkt_queue.push t.queue pkt;
    t.queued_bytes <- t.queued_bytes + pkt.Packet.size;
    drain t;
    true
  end

let set_rate t r =
  let now = Engine.now t.engine in
  Leotp_util.Token_bucket.set_rate t.bucket ~now (Float.max 0.0 r);
  if not (Pkt_queue.is_empty t.queue) then drain t

let rate t = Leotp_util.Token_bucket.rate t.bucket
let len t = t.queued_bytes
let packets t = Pkt_queue.length t.queue
let drops t = t.drops

let clear t =
  (match t.drain_timer with Some tm -> Engine.cancel tm | None -> ());
  t.drain_timer <- None;
  Pkt_queue.iter (fun pkt -> Pool.release pkt) t.queue;
  Pkt_queue.clear t.queue;
  Hashtbl.reset t.queued_names;
  t.queued_bytes <- 0
