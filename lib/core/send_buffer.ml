module Engine = Leotp_sim.Engine
module Packet = Leotp_net.Packet

type t = {
  engine : Engine.t;
  config : Config.t;
  send : Packet.t -> unit;
  queue : Packet.t Queue.t;
  bucket : Leotp_util.Token_bucket.t;
  queued_names : (int * int * int, unit) Hashtbl.t;
      (* Interest aggregation: a data range already waiting in the buffer
         is not enqueued twice (re-requests would otherwise multiply
         under timeout retransmission). *)
  mutable queued_bytes : int;
  mutable drops : int;
  mutable drain_timer : Engine.timer option;
}

let name_key pkt =
  match pkt.Packet.payload with
  | Wire.Data { name; length; _ } when length > 0 ->
    Some (name.Wire.flow, name.Wire.lo, name.Wire.hi)
  | _ -> None

let create engine ~config ~send () =
  {
    engine;
    config;
    send;
    queue = Queue.create ();
    queued_names = Hashtbl.create 64;
    bucket =
      Leotp_util.Token_bucket.create
        ~rate:(10.0 *. float_of_int config.Config.mss)
        ~burst:(2.0 *. float_of_int config.Config.mss)
        ~now:(Engine.now engine);
    queued_bytes = 0;
    drops = 0;
    drain_timer = None;
  }

let rec drain t =
  match Queue.peek_opt t.queue with
  | None -> ()
  | Some pkt ->
    let now = Engine.now t.engine in
    if Leotp_util.Token_bucket.try_consume t.bucket ~now pkt.Packet.size then begin
      ignore (Queue.pop t.queue);
      t.queued_bytes <- t.queued_bytes - pkt.Packet.size;
      (match name_key pkt with
      | Some key -> Hashtbl.remove t.queued_names key
      | None -> ());
      t.send pkt;
      drain t
    end
    else begin
      let wait = Leotp_util.Token_bucket.time_until t.bucket ~now pkt.Packet.size in
      if Float.is_finite wait then schedule t ~after:wait
      (* A zero advertised rate pauses the buffer; a later set_rate
         restarts it. *)
    end

and schedule t ~after =
  match t.drain_timer with
  | Some timer when Engine.is_pending timer -> ()
  | _ ->
    t.drain_timer <-
      Some
        (Engine.schedule t.engine ~after (fun () ->
             t.drain_timer <- None;
             drain t))

let push t pkt =
  match name_key pkt with
  | Some key when Hashtbl.mem t.queued_names key ->
    (* Already queued: absorb the duplicate. *)
    true
  | key_opt ->
    if t.queued_bytes + pkt.Packet.size > t.config.Config.send_buffer_capacity
    then begin
      t.drops <- t.drops + 1;
      false
    end
    else begin
      Queue.add pkt t.queue;
      (match key_opt with
      | Some key -> Hashtbl.replace t.queued_names key ()
      | None -> ());
      t.queued_bytes <- t.queued_bytes + pkt.Packet.size;
      drain t;
      true
    end

let set_rate t r =
  let now = Engine.now t.engine in
  Leotp_util.Token_bucket.set_rate t.bucket ~now (Float.max 0.0 r);
  if not (Queue.is_empty t.queue) then drain t

let rate t = Leotp_util.Token_bucket.rate t.bucket
let len t = t.queued_bytes
let packets t = Queue.length t.queue
let drops t = t.drops

let clear t =
  (match t.drain_timer with Some tm -> Engine.cancel tm | None -> ());
  t.drain_timer <- None;
  Queue.clear t.queue;
  Hashtbl.reset t.queued_names;
  t.queued_bytes <- 0
