module Engine = Leotp_sim.Engine
module Packet = Leotp_net.Packet
module Pool = Leotp_net.Packet_pool
module Node = Leotp_net.Node

type flow_stats = {
  vph_sent : int;
  shr_interests : int;
  cache_hits : int;
  buffer_len : int;
}

(* Multicast (paper par.VII): a second Consumer's Interest for a range
   already pending upstream is blocked; the passing Data then fans out to
   every waiter.  Retransmission Interests bypass the block so a lost
   response cannot starve a consumer until the entry expires. *)

type flow_state = {
  flow : int;
  mutable consumer : int;  (** learned from passing Interests *)
  mutable producer : int;
  shr : Shr.t;
  cc : Hop_cc.t;  (** Requester side of the upstream hop *)
  buffer : Send_buffer.t;  (** Responder side of the downstream hop *)
  mutable ds_interest_owd : float;
      (** latest Interest OWD measured on the downstream hop *)
  mutable vph_sent : int;
  mutable shr_interests : int;
  mutable cache_hits : int;
}

type t = {
  engine : Engine.t;
  config : Config.t;
  node : Node.t;
  cache : Cache.t;
  pit : Pit.t;
  flows : (int, flow_state) Hashtbl.t;
  mutable pit_blocked : int;
  mutable crashed : bool;
  mutable crash_count : int;
}

(* Allocates only on the first packet of a flow (the miss arm builds the
   whole per-flow state); every later packet takes the table hit. *)
let get_flow t ~flow ~consumer ~producer =
  match Hashtbl.find_opt t.flows flow with
  | Some fs -> fs
  | None ->
    let now = Engine.now t.engine in
    let fs_ref = ref None in
    (* Data leaving the sending buffer gets this hop's fresh timestamp and
       the latest downstream Interest OWD (paper Fig 9's bookkeeping).
       In-place restamping consumes a fresh id, exactly like the
       re-constructed packet it replaces. *)
    let send pkt =
      (match !fs_ref with
      | Some fs when Wire.is_data pkt ->
        Wire.restamp_data pkt
          ~timestamp:(Engine.now t.engine)
          ~req_owd:fs.ds_interest_owd
      | _ -> ());
      Node.send t.node pkt
    in
    let fs =
      {
        flow;
        consumer;
        producer;
        shr = Shr.create ~config:t.config;
        cc = Hop_cc.create ~config:t.config ~now ();
        buffer = Send_buffer.create t.engine ~config:t.config ~send ();
        ds_interest_owd = 0.0;
        vph_sent = 0;
        shr_interests = 0;
        cache_hits = 0;
      }
    in
    fs_ref := Some fs;
    Hashtbl.replace t.flows flow fs;
    fs
[@@leotp.allow "hot-path-may-alloc"]

(* Upstream advertised rate: eq (10) = min(cwnd/hopRTT, rate_bp). *)
let upstream_rate t fs =
  Backpressure.advertised_rate ~config:t.config ~cc:fs.cc
    ~now:(Engine.now t.engine)
    ~buffer_len:(Send_buffer.len fs.buffer)
    ~next_hop_rate:(Send_buffer.rate fs.buffer)

let send_vph t fs ~lo ~hi =
  let now = Engine.now t.engine in
  fs.vph_sent <- fs.vph_sent + 1;
  (* Notifications bypass the rate limiter: they must outrun the data
     stream to suppress duplicate detection downstream (§III-B). *)
  Node.send t.node
    (Wire.vph_packet ~config:t.config ~src:fs.producer ~dst:fs.consumer
       ~flow:fs.flow ~lo ~hi ~timestamp:now)

(* Retransmission requests are split at MSS so responses stay packet
   sized.  Recursion, not while+ref: this runs on the loss-recovery
   path and a local [ref] is a minor-heap cell. *)
let rec send_shr_interest t fs ~lo ~hi =
  if lo < hi then begin
    let now = Engine.now t.engine in
    let chunk_hi = min hi (lo + t.config.Config.mss) in
    fs.shr_interests <- fs.shr_interests + 1;
    Node.send t.node
      (Wire.interest_packet ~config:t.config ~src:fs.consumer ~dst:fs.producer
         ~flow:fs.flow ~lo ~hi:chunk_hi ~timestamp:now
         ~send_rate:(upstream_rate t fs) ~retx:true);
    send_shr_interest t fs ~lo:chunk_hi ~hi
  end

(* Serve a cached range as MSS-sized Data packets through [emit].
   Returns whether every chunk was served; keeps scanning past a miss so
   partial hits still go out.  Recursion, not while+refs: this runs per
   cache-hit Interest and local [ref]s are minor-heap cells. *)
let rec respond_from_cache t ~flow ~lo ~hi ~src ~dst ~timestamp ~req_owd ~retx
    ~emit =
  if lo >= hi then true
  else begin
    let chunk_hi = min hi (lo + t.config.Config.mss) in
    let served =
      match Cache.lookup t.cache ~flow ~lo ~hi:chunk_hi with
      | Some (first_sent, cretx) ->
        emit
          (Wire.data_packet ~config:t.config ~src ~dst ~flow ~lo ~hi:chunk_hi
             ~timestamp ~req_owd ~first_sent ~retx:(cretx || retx));
        true
      | None -> false
    in
    let rest =
      respond_from_cache t ~flow ~lo:chunk_hi ~hi ~src ~dst ~timestamp
        ~req_owd ~retx ~emit
    in
    served && rest
  end

let handle_interest t pkt =
  let flow = pkt.Packet.flow in
  let lo = Wire.lo pkt and hi = Wire.hi pkt in
  let timestamp = Wire.timestamp pkt in
  let send_rate = Wire.send_rate pkt in
  let retx = Wire.retx pkt in
  let fs =
    get_flow t ~flow ~consumer:pkt.Packet.src ~producer:pkt.Packet.dst
  in
  fs.consumer <- pkt.Packet.src;
  fs.producer <- pkt.Packet.dst;
  let now = Engine.now t.engine in
  if not (Config.hop_cc_enabled t.config) then begin
    (* Ablation C: end-to-end control; pass the Interest through but still
       try the cache. *)
    let hit =
      Config.caches_enabled t.config && Cache.contains t.cache ~flow ~lo ~hi
    in
    if hit then begin
      fs.cache_hits <- fs.cache_hits + 1;
      ignore
        (respond_from_cache t ~flow ~lo ~hi ~src:pkt.Packet.dst
           ~dst:pkt.Packet.src ~timestamp
           ~req_owd:(Float.max 0.0 (now -. timestamp))
           ~retx
           (* one emit closure per cache-hit response — dwarfed by the
              response packet it sends *)
           ~emit:((Node.send t.node) [@leotp.allow "hot-path-may-alloc"]));
      Pool.release pkt
    end
    else Node.send t.node pkt
  end
  else begin
    fs.ds_interest_owd <- Float.max 0.0 (now -. timestamp);
    (* The downstream Requester's advertised rate drives my rate limiter. *)
    Send_buffer.set_rate fs.buffer send_rate;
    let hit =
      Config.caches_enabled t.config && Cache.contains t.cache ~flow ~lo ~hi
    in
    if hit then begin
      fs.cache_hits <- fs.cache_hits + 1;
      ignore
        (respond_from_cache t ~flow ~lo ~hi ~src:pkt.Packet.dst
           ~dst:pkt.Packet.src ~timestamp:now ~req_owd:fs.ds_interest_owd ~retx
           (* one emit closure per cache-hit response — dwarfed by the
              response packet it queues *)
           ~emit:((fun data -> ignore (Send_buffer.push fs.buffer data))
                 [@leotp.allow "hot-path-may-alloc"]));
      Pool.release pkt
    end
    else begin
      let forward =
        Pit.register t.pit ~now ~flow ~lo ~hi ~consumer:pkt.Packet.src
      in
      if forward || retx then begin
        (* Re-originate upstream with this hop's timestamp and rate (a
           fresh id in place, like the re-constructed packet it
           replaces). *)
        Wire.reoriginate_interest pkt ~timestamp:now
          ~send_rate:(upstream_rate t fs);
        Node.send t.node pkt
      end
      else begin
        t.pit_blocked <- t.pit_blocked + 1;
        Pool.release pkt
      end
    end
  end

let handle_data t pkt =
  let flow = pkt.Packet.flow in
  let lo = Wire.lo pkt and hi = Wire.hi pkt in
  let length = Wire.length pkt in
  let timestamp = Wire.timestamp pkt in
  let req_owd = Wire.req_owd pkt in
  let first_sent = Wire.first_sent pkt in
  let retx = Wire.retx pkt in
  let fs = get_flow t ~flow ~consumer:pkt.Packet.dst ~producer:pkt.Packet.src in
  let now = Engine.now t.engine in
  let is_vph = length = 0 in
  (* Upstream hop congestion sample (not for VPHs: they carry no payload
     and may be generated mid-path). *)
  if Config.hop_cc_enabled t.config && not is_vph then
    Hop_cc.on_data fs.cc ~now
      ~interest_owd:(Float.max 0.0 req_owd)
      ~data_owd:(Float.max 0.0 (now -. timestamp))
      ~bytes:length;
  (* In-network retransmission machinery (disabled without caches). *)
  if Config.caches_enabled t.config then begin
    if not is_vph then begin
      Cache.insert t.cache ~flow ~lo ~hi ~first_sent ~retx;
      (* Multicast fan-out: serve every other consumer waiting on this
         range (the packet itself continues to [pkt.dst]). *)
      (* fan-out closure: one per Data carrying multicast waiters,
         inherent to the list the PIT hands back *)
      List.iter
        ((fun consumer ->
           if consumer <> pkt.Packet.dst then
             Node.send t.node
               (Wire.data_packet ~config:t.config ~src:pkt.Packet.src
                  ~dst:consumer ~flow ~lo ~hi ~timestamp:now
                  ~req_owd:fs.ds_interest_owd ~first_sent ~retx))
        [@leotp.allow "hot-path-may-alloc"])
        (Pit.satisfy t.pit ~now ~flow ~lo ~hi)
    end;
    let actions = Shr.on_packet fs.shr ~lo ~hi in
    (* hole-action closures: allocated only when SHR reports new or
       expired holes — loss recovery, not the clean-link steady state *)
    List.iter
      ((fun (lo, hi) -> send_vph t fs ~lo ~hi)
      [@leotp.allow "hot-path-may-alloc"])
      actions.Shr.new_holes;
    List.iter
      ((fun (lo, hi) ->
         (* Serve the retransmission locally if a later packet filled the
            cache meanwhile; otherwise ask upstream. *)
         match Cache.lookup t.cache ~flow ~lo ~hi with
         | Some _ -> ()
         | None -> send_shr_interest t fs ~lo ~hi)
      [@leotp.allow "hot-path-may-alloc"])
      actions.Shr.expired_holes
  end;
  if is_vph then
    (* Forward the notification immediately. *)
    Node.send t.node pkt
  else if Config.hop_cc_enabled t.config then
    ignore (Send_buffer.push fs.buffer pkt)
  else Node.send t.node pkt

let handler t ~from:_ pkt =
  if Wire.is_interest pkt then handle_interest t pkt
  else if Wire.is_data pkt then handle_data t pkt
  else Node.forward t.node ~from:0 pkt

let create engine ~config ~node () =
  let t =
    {
      engine;
      config;
      node;
      cache = Cache.create ~label:(Node.name node) ~config ();
      pit = Pit.create ~label:(Node.name node) ~expiry:config.Config.pit_expiry ();
      flows = Hashtbl.create 8;
      pit_blocked = 0;
      crashed = false;
      crash_count = 0;
    }
  in
  Node.set_handler node (fun ~from pkt -> handler t ~from pkt);
  t

(* Crash model (paper §VII: midnode state is soft and "can be
   reconstructed rapidly upon failures"): the LEOTP process dies, losing
   cache, PIT and per-flow state, while the node itself keeps forwarding
   packets like a plain router until [restart] brings the interception
   handler back with cold state. *)
let crash t =
  if not t.crashed then begin
    t.crashed <- true;
    t.crash_count <- t.crash_count + 1;
    (* Order-insensitive: each per-flow buffer is cleared independently
       and no event or trace record is emitted per entry. *)
    (Hashtbl.iter [@leotp.allow "ordered-iteration"])
      (fun _ fs -> Send_buffer.clear fs.buffer)
      t.flows;
    Hashtbl.reset t.flows;
    Cache.clear t.cache;
    Pit.clear t.pit;
    Node.set_handler t.node (fun ~from pkt -> Node.forward t.node ~from pkt)
  end

let restart t =
  if t.crashed then begin
    t.crashed <- false;
    Node.set_handler t.node (fun ~from pkt -> handler t ~from pkt)
  end

let crashed t = t.crashed
let crash_count t = t.crash_count

let sweep_pit t ~now = Pit.expire_before t.pit ~now

(* Flow retirement (many-flow fleets): drop one flow's soft state while
   the midnode keeps serving every other flow.  The sending buffer's
   queued packets go back to the pool, cached ranges are evicted so the
   catalog slot can be reused, and PIT entries are expired with traced
   removals so the pit-lifetime invariant sees a balanced ledger. *)
let retire_flow t ~flow =
  (match Hashtbl.find_opt t.flows flow with
  | Some fs ->
    Send_buffer.clear fs.buffer;
    Hashtbl.remove t.flows flow
  | None -> ());
  Cache.drop_flow t.cache ~flow;
  Pit.drop_flow t.pit ~flow

let flow_stats t ~flow =
  match Hashtbl.find_opt t.flows flow with
  | Some fs ->
    Some
      ({
         vph_sent = fs.vph_sent;
         shr_interests = fs.shr_interests;
         cache_hits = fs.cache_hits;
         buffer_len = Send_buffer.len fs.buffer;
       }
        : flow_stats)
  | None -> None

let debug_flow t ~flow =
  match Hashtbl.find_opt t.flows flow with
  | None -> "<no flow>"
  | Some fs ->
    let now = Engine.now t.engine in
    Printf.sprintf
      "cwnd=%.0f rtt=%s rttmin=%s thr=%.0f q=%.0f ss=%b bl=%d myrate=%.0f adv=%.0f"
      (Hop_cc.cwnd fs.cc)
      (match Hop_cc.hop_rtt fs.cc with
      | Some r -> Printf.sprintf "%.1fms" (r *. 1000.)
      | None -> "-")
      (match Hop_cc.hop_rtt_min fs.cc ~now with
      | Some r -> Printf.sprintf "%.1fms" (r *. 1000.)
      | None -> "-")
      (Hop_cc.throughput fs.cc)
      (Hop_cc.queue_len fs.cc ~now)
      (Hop_cc.in_slow_start fs.cc)
      (Send_buffer.len fs.buffer)
      (Send_buffer.rate fs.buffer)
      (upstream_rate t fs)

let cache t = t.cache
let flows t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.flows [])
let pit_blocked t = t.pit_blocked
let pit_pending t = Pit.pending t.pit
