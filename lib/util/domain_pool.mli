(** Fixed-size work-queue pool of OCaml 5 domains.

    Intended for coarse-grained, independent jobs (one simulation run per
    task).  Tasks must not share mutable state with each other; anything
    domain-local (e.g. {!Leotp_net.Packet} id counters) is per-worker, so
    a task that resets such state at its start behaves identically to a
    sequential run. *)

type t

val create : size:int -> t
(** Spawn [size] worker domains ([size >= 1]). *)

val size : t -> int

val submit : t -> (unit -> unit) -> unit
(** Enqueue a task.  Raises [Invalid_argument] after {!shutdown}. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Run [f] on every element on the pool's workers, blocking the caller
    until all are done; results keep list order.  Execution order is
    unspecified.  If any application raised, the first such exception (in
    list order) is re-raised after all tasks complete. *)

val shutdown : t -> unit
(** Finish queued tasks and join all workers.  Idempotent. *)
