(** Generic LRU index with O(1) touch/evict (hash table + doubly linked
    recency list).  The LEOTP block cache builds on this. *)

type ('k, 'v) t

val create : unit -> ('k, 'v) t
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Marks the entry most-recently-used. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** No recency update. *)

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace; entry becomes most-recently-used. *)

val remove : ('k, 'v) t -> 'k -> unit

val evict_lru : ('k, 'v) t -> ('k * 'v) option
(** Remove and return the least-recently-used entry. *)

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
(** Visits entries most-recently-used first (deterministic: recency
    order, never hash order).  [f] may remove the visited entry. *)

val clear : ('k, 'v) t -> unit
(** Drop every entry. *)
