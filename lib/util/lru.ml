type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (** most recently used *)
  mutable tail : ('k, 'v) node option;  (** least recently used *)
}

let create () = { table = Hashtbl.create 64; head = None; tail = None }
let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let touch t node =
  unlink t node;
  push_front t node

let find t k =
  match Hashtbl.find_opt t.table k with
  | Some node ->
    touch t node;
    Some node.value
  | None -> None

let peek t k =
  match Hashtbl.find_opt t.table k with
  | Some node -> Some node.value
  | None -> None

let put t k v =
  match Hashtbl.find_opt t.table k with
  | Some node ->
    node.value <- v;
    touch t node
  | None ->
    (* one LRU node per cached block insertion — per-block (amortized
       over the block's many packets) and recycled through eviction *)
    let node =
      ({ key = k; value = v; prev = None; next = None }
      [@leotp.allow "hot-path-may-alloc"])
    in
    Hashtbl.replace t.table k node;
    push_front t node

let remove t k =
  match Hashtbl.find_opt t.table k with
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table k
  | None -> ()

let evict_lru t =
  match t.tail with
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key;
    (* the evicted (key, value) pair: one per eviction, i.e. once per
       block-sized insertion when the cache is full — not per packet *)
    (Some (node.key, node.value) [@leotp.allow "hot-path-may-alloc"])
  | None -> None

(* Walk the recency list (MRU first) rather than the hash table: the
   visit order is then a deterministic function of the cache history,
   not of hashing, so callers (e.g. Cache.drop_flow) stay replayable. *)
let iter f t =
  let rec go = function
    | None -> ()
    | Some node ->
      let next = node.next in
      f node.key node.value;
      go next
  in
  go t.head

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None
