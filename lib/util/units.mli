(** Unit conversions used throughout the simulator.

    Internal conventions: time in seconds, sizes in bytes, rates in
    bytes/second, distances in meters.  The paper quotes link rates in
    Mbps (decimal megabits) and delays in milliseconds. *)

val bits_per_byte : float

val speed_of_light : float
(** m/s (used for ISL propagation delays). *)

val mbps_to_bytes_per_sec : float -> float
val bytes_per_sec_to_mbps : float -> float
val ms_to_sec : float -> float
val sec_to_ms : float -> float
val km_to_m : float -> float
val mb_to_bytes : int -> int

val earth_radius : float
(** Earth's mean radius, meters. *)

val earth_mu : float
(** Standard gravitational parameter of Earth, m^3/s^2. *)
