(** Unit conversions used throughout the simulator.

    Internal conventions: time in seconds, sizes in bytes, rates in
    bytes/second, distances in meters.  The paper quotes link rates in
    Mbps (decimal megabits) and delays in milliseconds.

    Inline conversion constants elsewhere in lib/ are flagged by the
    leotp-lint [--dim] pass (rule dim-raw-conversion); route
    conversions through these helpers instead. *)

val bits_per_byte : float

val speed_of_light : float
(** m/s (used for ISL propagation delays). *)

val mbps_to_bytes_per_sec : float -> float
val bytes_per_sec_to_mbps : float -> float
val ms_to_sec : float -> float
val sec_to_ms : float -> float
val usec_to_sec : float -> float
val sec_to_usec : float -> float
val km_to_m : float -> float
val m_to_km : float -> float
val bytes_to_bits : float -> float
val bits_to_bytes : float -> float
val mb_to_bytes : float -> float
val bytes_to_mb : float -> float

val mb_to_bytes_int : int -> int
(** Integer variant for byte counters (file sizes, buffer budgets). *)

val bytes_to_mb_int : int -> int

val earth_radius : float
(** Earth's mean radius, meters. *)

val earth_mu : float
(** Standard gravitational parameter of Earth, m^3/s^2. *)
