(* Intervals keyed by their lower bound; invariant: values are > key,
   intervals are disjoint and non-adjacent (adjacent runs are merged).
   The covered-byte count is maintained incrementally so [cardinal] is
   O(1) — it sits on the midnode cache's per-packet insert path. *)

module M = Map.Make (Int)

type t = { ivals : int M.t; total : int }

let empty = { ivals = M.empty; total = 0 }
let is_empty t = M.is_empty t.ivals

(* The interval containing or preceding [x], if any. *)
(* No re-boxing match: [find_last_opt] already returns the (lo, hi)
   option we want.  The predicate closure captures [x] — inherent to the
   [Map] search API, one closure per lookup, traded for O(log n) ordered
   search. *)
let find_before x m =
  M.find_last_opt ((fun lo -> lo <= x) [@leotp.allow "hot-path-may-alloc"]) m

(* A functional interval map allocates its path of map nodes per insert
   by design; the receiver keeps O(holes) intervals, and the in-order
   common case is a single merged node. *)
let add ~lo ~hi t =
  if lo >= hi then t
  else begin
    (* Extend [lo, hi) to absorb an overlapping-or-adjacent predecessor
       (which may entirely contain the new range).  [absorbed] counts the
       bytes of every interval merged away, so the new total follows from
       the final merged extent alone. *)
    let absorbed = ref 0 in
    let lo, hi, m =
      match find_before lo t.ivals with
      | Some (plo, phi) when phi >= lo ->
        absorbed := !absorbed + (phi - plo);
        (min plo lo, max hi phi, M.remove plo t.ivals)
      | _ -> (lo, hi, t.ivals)
    in
    (* Absorb all successors starting within or adjacent to [lo, hi). *)
    let rec absorb hi m =
      match M.find_first_opt (fun l -> l >= lo) m with
      | Some (slo, shi) when slo <= hi ->
        absorbed := !absorbed + (shi - slo);
        absorb (max hi shi) (M.remove slo m)
      | _ -> (hi, m)
    in
    let hi, m = absorb hi m in
    { ivals = M.add lo hi m; total = t.total + (hi - lo) - !absorbed }
  end
[@@leotp.allow "hot-path-may-alloc"]

let remove ~lo ~hi t =
  if lo >= hi then t
  else begin
    let removed = ref 0 in
    let m =
      match find_before lo t.ivals with
      | Some (plo, phi) when phi > lo ->
        removed := !removed + (min phi hi - lo);
        let m = M.remove plo t.ivals in
        let m = if plo < lo then M.add plo lo m else m in
        if phi > hi then M.add hi phi m else m
      | _ -> t.ivals
    in
    let rec strip m =
      match M.find_first_opt (fun l -> l >= lo) m with
      | Some (slo, shi) when slo < hi ->
        removed := !removed + (min shi hi - slo);
        let m = M.remove slo m in
        let m = if shi > hi then M.add hi shi m else m in
        strip m
      | _ -> m
    in
    (* [strip] must run before [!removed] is read (record fields evaluate
       right to left), hence the explicit binding. *)
    let m = strip m in
    { ivals = m; total = t.total - !removed }
  end

let mem x t =
  match find_before x t.ivals with Some (_, hi) -> x < hi | None -> false

let covers ~lo ~hi t =
  lo >= hi
  || (match find_before lo t.ivals with
     | Some (_, phi) -> phi >= hi
     | None -> false)

let intersects ~lo ~hi t =
  if lo >= hi then false
  else
    (match find_before lo t.ivals with Some (_, phi) -> phi > lo | None -> false)
    ||
    (match M.find_first_opt (fun l -> l >= lo) t.ivals with
    | Some (slo, _) -> slo < hi
    | None -> false)

let fold f t init = M.fold f t.ivals init
let cardinal t = t.total
let intervals t = List.rev (fold (fun lo hi acc -> (lo, hi) :: acc) t [])
let count_intervals t = M.cardinal t.ivals

(* Walk only the intervals overlapping [lo, hi): start from the interval
   containing [lo] (if any) and step through successors — O(k log n) for
   k overlapping intervals instead of O(n) over the whole map. *)
let gaps ~lo ~hi t =
  if lo >= hi then []
  else begin
    let start =
      match find_before lo t.ivals with
      | Some (_, phi) when phi > lo -> phi
      | _ -> lo
    in
    let rec loop cursor acc =
      if cursor >= hi then List.rev acc
      else
        match M.find_first_opt (fun l -> l >= cursor) t.ivals with
        | Some (slo, shi) when slo < hi ->
          let acc = if slo > cursor then (cursor, slo) :: acc else acc in
          loop shi acc
        | _ -> List.rev ((cursor, hi) :: acc)
    in
    loop start []
  end

let first_missing ~lo t =
  match find_before lo t.ivals with
  | Some (_, hi) when hi > lo -> hi
  | _ -> lo

let union a b = fold (fun lo hi acc -> add ~lo ~hi acc) a b
let equal a b = M.equal Int.equal a.ivals b.ivals

let pp ppf t =
  let pp_iv ppf (lo, hi) = Format.fprintf ppf "[%d,%d)" lo hi in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ") pp_iv)
    (intervals t)
