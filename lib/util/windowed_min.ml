(* The deque is a short list (O(samples in window)) rebuilt per sample —
   endpoint RTT filtering, not the relay forwarding path; the list cells
   are the design. *)
[@@@leotp.allow "hot-path-may-alloc"]

type kind = Min | Max

type t = {
  kind : kind;
  mutable window : float;
  (* Monotonic wedge, front = best (oldest surviving), back = newest.
     Values are increasing for Min / decreasing for Max, so the extremum
     over the window is always the front element. *)
  mutable dq : (float * float) list;
}

let create kind window = { kind; window; dq = [] }
let create_min ~window = create Min window
let create_max ~window = create Max window
let set_window t w = t.window <- w

let dominates kind new_v old_v =
  match kind with Min -> new_v <= old_v | Max -> new_v >= old_v

let expire t now =
  let cutoff = now -. t.window in
  let rec drop = function
    | (ts, _) :: rest when ts < cutoff -> drop rest
    | l -> l
  in
  t.dq <- drop t.dq

let add t ~now v =
  let rec strip = function
    | (_, ov) :: rest when dominates t.kind v ov -> strip rest
    | l -> l
  in
  t.dq <- List.rev ((now, v) :: strip (List.rev t.dq));
  expire t now

let get t ~now =
  expire t now;
  match t.dq with [] -> None | (_, v) :: _ -> Some v

let get_or t ~now ~default =
  match get t ~now with Some v -> v | None -> default

let clear t = t.dq <- []
