type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let grow t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = max 16 (2 * cap) in
    (* doubling growth: amortized O(1), not a steady-state allocation *)
    let ndata = (Array.make [@leotp.allow "hot-path-may-alloc"]) ncap x in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

(* The sift loops recurse on indices instead of using while+ref: both
   run per engine event, and a local [ref] is a minor-heap cell. *)
let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let push t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.size && t.cmp t.data.(l) t.data.(i) < 0 then l else i in
  let smallest =
    if r < t.size && t.cmp t.data.(r) t.data.(smallest) < 0 then r
    else smallest
  in
  if smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(smallest);
    t.data.(smallest) <- tmp;
    sift_down t smallest
  end

let pop t =
  if t.size = 0 then None
  else begin
    let root = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some root
  end

(* Compaction: runs once per batch of cancellations (the caller
   amortizes), so its scratch cells are off the per-event budget. *)
let filter_in_place t ~keep =
  let j = ref 0 in
  for i = 0 to t.size - 1 do
    let x = t.data.(i) in
    if keep x then begin
      t.data.(!j) <- x;
      incr j
    end
  done;
  t.size <- !j;
  (* Reallocate to drop references to removed elements (and excess
     capacity) — the point of compaction is releasing what the heap was
     retaining. *)
  if !j = 0 then t.data <- [||]
  else begin
    let cap = ref 16 in
    while !cap < !j do
      cap := 2 * !cap
    done;
    let ndata = Array.make !cap t.data.(0) in
    Array.blit t.data 0 ndata 0 !j;
    t.data <- ndata
  end;
  (* Floyd heapify: surviving elements kept array order, not heap order. *)
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done
[@@leotp.allow "hot-path-may-alloc"]

let clear t =
  t.data <- [||];
  t.size <- 0
