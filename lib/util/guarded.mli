(** A value that carries its own mutex, so unlocked access is
    unrepresentable.

    Shared mutable state that must cross domains (the job-runner
    singleton, a pool's work queue) lives inside a ['a t]; the payload
    is only reachable through {!with_} and {!await}, both of which hold
    the lock for the duration of the callback.  The leotp-race static
    pass ([leotp_lint.exe --race]) treats these regions as critical
    sections, so code written against this interface analyses as
    domain-safe by construction.

    The callback must not call back into the same [t] (the mutex is not
    reentrant) and should not block on other locks (classic lock-order
    discipline applies). *)

type 'a t

val create : 'a -> 'a t

val with_ : 'a t -> ('a -> 'b) -> 'b
(** [with_ t f] runs [f] on the payload with the lock held and returns
    its result.  Waiters in {!await} are woken on exit (the payload may
    have been mutated). *)

val await : 'a t -> ('a -> 'b option) -> 'b
(** [await t f] blocks until [f payload] returns [Some r] (re-checked,
    under the lock, every time another domain leaves a {!with_}/{!set}
    region) and returns [r].  [f] runs with the lock held and may
    mutate the payload (e.g. popping the queue element it waited
    for). *)

val get : 'a t -> 'a
(** Snapshot the payload under the lock.  Only safe when the payload is
    immutable (or treated as such by every writer, which replaces it
    via {!set}). *)

val set : 'a t -> 'a -> unit
(** Replace the payload under the lock and wake waiters. *)
