(** Unit conversions used throughout the simulator.

    Internal conventions: time in seconds, sizes in bytes, rates in
    bytes/second, distances in meters.  The paper quotes link rates in
    Mbps (decimal megabits) and delays in milliseconds.

    Inline conversion constants elsewhere in lib/ are flagged by the
    leotp-lint [--dim] pass (rule dim-raw-conversion); this module is
    where they are allowed to live. *)

let bits_per_byte = 8.0

(** Speed of light in vacuum, m/s (used for ISL propagation delays). *)
let speed_of_light = 299_792_458.0

let mbps_to_bytes_per_sec mbps = mbps *. 1_000_000.0 /. bits_per_byte
let bytes_per_sec_to_mbps bps = bps *. bits_per_byte /. 1_000_000.0
let ms_to_sec ms = ms /. 1_000.0
let sec_to_ms s = s *. 1_000.0
let usec_to_sec us = us /. 1_000_000.0
let sec_to_usec s = s *. 1_000_000.0
let km_to_m km = km *. 1_000.0
let m_to_km m = m /. 1_000.0
let bytes_to_bits b = b *. bits_per_byte
let bits_to_bytes b = b /. bits_per_byte
let mb_to_bytes mb = mb *. 1_000_000.0
let bytes_to_mb b = b /. 1_000_000.0

(* Integer variants for byte counters (file sizes, buffer budgets). *)
let mb_to_bytes_int mb = mb * 1_000_000
let bytes_to_mb_int b = b / 1_000_000

(** Earth's mean radius, meters. *)
let earth_radius = 6_371_000.0

(** Standard gravitational parameter of Earth, m^3/s^2. *)
let earth_mu = 3.986_004_418e14
