(* Lock-free counters for cross-domain aggregation (job counts,
   per-domain allocation totals).  Like Guarded, the point is to make
   the safe operation the only representable one: the underlying
   [Atomic.t] never escapes, so every access is an atomic op. *)

type t = int Atomic.t

let create ?(initial = 0) () = Atomic.make initial
let incr = Atomic.incr
let add t n = ignore (Atomic.fetch_and_add t n : int)
let get = Atomic.get
let reset t = Atomic.set t 0

module Sum = struct
  type t = float Atomic.t

  let create () = Atomic.make 0.0

  (* No fetch-and-add for floats: CAS-retry.  Note that under
     parallelism the *order* of additions (hence rounding) depends on
     scheduling, so sums fed from worker domains are perf telemetry,
     not figure data. *)
  let rec add t x =
    let cur = Atomic.get t in
    if not (Atomic.compare_and_set t cur (cur +. x)) then add t x

  let get = Atomic.get
  let reset t = Atomic.set t 0.0
end
