(** Imperative binary min-heap.

    The comparison is fixed at creation.  Used by the discrete-event engine
    (keyed by time with a sequence tie-breaker for deterministic ordering)
    and by routing (keyed by distance). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val filter_in_place : 'a t -> keep:('a -> bool) -> unit
(** Drop every element for which [keep] is false, in O(n).  The backing
    store is reallocated to fit, so references to dropped elements are
    released immediately (used by the engine to compact lazily-cancelled
    timers). *)

val clear : 'a t -> unit
