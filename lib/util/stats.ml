type t = {
  mutable samples : float array;
  mutable size : int;
  mutable sorted : float array option;
}

let create () = { samples = [||]; size = 0; sorted = None }

let add t x =
  let cap = Array.length t.samples in
  if t.size = cap then begin
    (* doubling growth: amortized O(1), not a steady-state allocation *)
    let ndata =
      (Array.make [@leotp.allow "hot-path-may-alloc"])
        (Stdlib.max 64 (2 * cap)) 0.0
    in
    Array.blit t.samples 0 ndata 0 t.size;
    t.samples <- ndata
  end;
  t.samples.(t.size) <- x;
  t.size <- t.size + 1;
  t.sorted <- None

let count t = t.size
let is_empty t = t.size = 0

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Array.sub t.samples 0 t.size in
    Array.sort Float.compare a;
    t.sorted <- Some a;
    a

let total t =
  let acc = ref 0.0 in
  for i = 0 to t.size - 1 do
    acc := !acc +. t.samples.(i)
  done;
  !acc

let mean t = if t.size = 0 then Float.nan else total t /. float_of_int t.size

let stddev t =
  if t.size < 2 then 0.0
  else begin
    let m = mean t in
    let acc = ref 0.0 in
    for i = 0 to t.size - 1 do
      let d = t.samples.(i) -. m in
      acc := !acc +. (d *. d)
    done;
    sqrt (!acc /. float_of_int (t.size - 1))
  end

let min t = if t.size = 0 then Float.nan else (sorted t).(0)
let max t = if t.size = 0 then Float.nan else (sorted t).(t.size - 1)

let percentile t p =
  if t.size = 0 then Float.nan
  else begin
    let a = sorted t in
    let p = Float.min 100.0 (Float.max 0.0 p) in
    let rank = p /. 100.0 *. float_of_int (t.size - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then a.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
    end
  end

let median t = percentile t 50.0

let cdf_points ?(points = 100) t =
  if t.size = 0 then []
  else begin
    let a = sorted t in
    let n = t.size in
    let step = Stdlib.max 1 (n / points) in
    let rec collect i acc =
      if i >= n then List.rev ((a.(n - 1), 1.0) :: acc)
      else collect (i + step) ((a.(i), float_of_int (i + 1) /. float_of_int n) :: acc)
    in
    collect 0 []
  end

let to_list t = Array.to_list (Array.sub t.samples 0 t.size)

let jain_index xs =
  match xs with
  | [] -> Float.nan
  | _ ->
    let n = float_of_int (List.length xs) in
    let s = List.fold_left ( +. ) 0.0 xs in
    let s2 = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
    if Float.equal s2 0.0 then 1.0 else s *. s /. (n *. s2)

module Welford = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = if t.n = 0 then Float.nan else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
end

module Ewma = struct
  type t = { alpha : float; mutable value : float; mutable primed : bool }

  (* One record per estimator at setup — not per-sample. *)
  let create ~alpha =
    assert (alpha > 0.0 && alpha <= 1.0);
    ({ alpha; value = Float.nan; primed = false }
    [@leotp.allow "hot-path-may-alloc"])

  let add t x =
    if t.primed then t.value <- ((1.0 -. t.alpha) *. t.value) +. (t.alpha *. x)
    else begin
      t.value <- x;
      t.primed <- true
    end

  let value t = t.value
  let value_or t ~default = if t.primed then t.value else default
end
