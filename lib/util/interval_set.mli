(** Sets of disjoint half-open integer intervals [lo, hi).

    This is the byte-range algebra shared by LEOTP's sequence-hole tracking
    (Algorithm 1 of the paper), the Consumer's reassembly buffer, and the
    TCP receiver's out-of-order store.  All operations keep the internal
    representation normalized: intervals are disjoint, non-empty and sorted. *)

type t

val empty : t
val is_empty : t -> bool

val add : lo:int -> hi:int -> t -> t
(** Insert [lo, hi), merging with any overlapping or adjacent intervals.
    No-op when [lo >= hi]. *)

val remove : lo:int -> hi:int -> t -> t
(** Remove every point of [lo, hi), splitting intervals as needed. *)

val mem : int -> t -> bool

val covers : lo:int -> hi:int -> t -> bool
(** [covers ~lo ~hi t] is true iff every point of [lo, hi) is in [t]. *)

val intersects : lo:int -> hi:int -> t -> bool
(** True iff [lo, hi) shares at least one point with [t]. *)

val cardinal : t -> int
(** Total number of points covered.  O(1): the count is maintained
    incrementally by {!add} and {!remove}. *)

val intervals : t -> (int * int) list
(** Intervals in increasing order. *)

val count_intervals : t -> int

val gaps : lo:int -> hi:int -> t -> (int * int) list
(** Maximal sub-intervals of [lo, hi) not covered by [t], in order. *)

val first_missing : lo:int -> t -> int
(** Smallest point [>= lo] not in [t]. *)

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f t init] folds [f lo hi] over intervals in increasing order. *)

val union : t -> t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
