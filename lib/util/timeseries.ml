type t = {
  mutable times : float array;
  mutable values : float array;
  mutable size : int;
}

let create () = { times = [||]; values = [||]; size = 0 }

let add t ~time v =
  let cap = Array.length t.times in
  if t.size = cap then begin
    let ncap = max 64 (2 * cap) in
    (* doubling growth: amortized O(1), not a steady-state allocation *)
    let nt = (Array.make [@leotp.allow "hot-path-may-alloc"]) ncap 0.0
    and nv = (Array.make [@leotp.allow "hot-path-may-alloc"]) ncap 0.0 in
    Array.blit t.times 0 nt 0 t.size;
    Array.blit t.values 0 nv 0 t.size;
    t.times <- nt;
    t.values <- nv
  end;
  (* Timestamps from a discrete-event simulation are non-decreasing. *)
  assert (t.size = 0 || time >= t.times.(t.size - 1));
  t.times.(t.size) <- time;
  t.values.(t.size) <- v;
  t.size <- t.size + 1

let length t = t.size

let to_list t =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) ((t.times.(i), t.values.(i)) :: acc)
  in
  go (t.size - 1) []

let window_fold f init t ~lo ~hi =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    if t.times.(i) >= lo && t.times.(i) < hi then acc := f !acc t.values.(i)
  done;
  !acc

let window_sum t ~lo ~hi = window_fold ( +. ) 0.0 t ~lo ~hi

let window_mean t ~lo ~hi =
  let sum, n =
    window_fold (fun (s, n) v -> (s +. v, n + 1)) (0.0, 0) t ~lo ~hi
  in
  if n = 0 then Float.nan else sum /. float_of_int n

let bucketize t ~width ~t_end =
  let nbuckets = int_of_float (Float.ceil (t_end /. width)) in
  let sums = Array.make (max nbuckets 0) 0.0 in
  for i = 0 to t.size - 1 do
    let b = int_of_float (t.times.(i) /. width) in
    if b >= 0 && b < nbuckets then sums.(b) <- sums.(b) +. t.values.(i)
  done;
  List.mapi (fun b s -> (float_of_int b *. width, s)) (Array.to_list sums)

let rate_series t ~width ~t_end =
  List.map (fun (ts, s) -> (ts, s /. width)) (bucketize t ~width ~t_end)
