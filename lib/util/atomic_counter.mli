(** Lock-free cross-domain counters.

    A thin veil over [Atomic] that keeps the atomic value abstract, so
    the only representable operations are the atomic ones — the shape
    the leotp-race static pass recognises as safe.  Used by
    {!Leotp_scenario.Runner} for its perf counters. *)

type t
(** A monotonically updated integer counter. *)

val create : ?initial:int -> unit -> t
val incr : t -> unit
val add : t -> int -> unit
val get : t -> int
val reset : t -> unit

(** Float accumulator (CAS loop; no fetch-and-add for floats).  The
    accumulation order under parallelism is scheduling-dependent, so
    use only for telemetry, never for figure data. *)
module Sum : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val get : t -> float
  val reset : t -> unit
end
