(* A value bundled with the mutex (and condition variable) that guards
   it.  The payload is only ever reachable through [with_]/[await], so
   an unlocked access is unrepresentable — which is exactly the shape
   the leotp-race static pass recognises as safe (see LINT.md, "Domain
   safety"). *)

type 'a t = {
  mutex : Mutex.t;
  changed : Condition.t;
  mutable value : 'a;
}

let create value =
  { mutex = Mutex.create (); changed = Condition.create (); value }

(* Every exit from a critical section broadcasts: [with_] may have
   changed the payload, and a spurious wakeup in [await] only re-checks
   the predicate.  Broadcasting before unlock keeps the pair atomic. *)
let leave t =
  Condition.broadcast t.changed;
  Mutex.unlock t.mutex

let with_ t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> leave t) (fun () -> f t.value)

let await t f =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> leave t)
    (fun () ->
      let rec loop () =
        match f t.value with
        | Some r -> r
        | None ->
          Condition.wait t.changed t.mutex;
          loop ()
      in
      loop ())

let get t = with_ t (fun v -> v)
let set t v = with_ t (fun _ -> t.value <- v)
