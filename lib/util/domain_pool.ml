(* Fixed-size pool of OCaml 5 domains draining a shared work queue.

   Built for embarrassingly-parallel experiment sweeps: tasks are
   closures that own all their state (engine, rng, topology), so the
   only shared structure is the queue itself, protected by one mutex. *)

type task = unit -> unit

type t = {
  size : int;
  tasks : task Queue.t;
  mutex : Mutex.t;
  work_available : Condition.t;
  mutable shutting_down : bool;
  mutable workers : unit Domain.t list;
}

let size t = t.size

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.tasks && not t.shutting_down do
    Condition.wait t.work_available t.mutex
  done;
  if Queue.is_empty t.tasks then Mutex.unlock t.mutex (* shutting down *)
  else begin
    let task = Queue.pop t.tasks in
    Mutex.unlock t.mutex;
    (* Tasks are expected to trap their own exceptions ([map] wraps them
       in [Result]); a raise here must not kill the worker. *)
    (try task () with _ -> ());
    worker_loop t
  end

let create ~size =
  if size < 1 then invalid_arg "Domain_pool.create: size must be >= 1";
  let t =
    {
      size;
      tasks = Queue.create ();
      mutex = Mutex.create ();
      work_available = Condition.create ();
      shutting_down = false;
      workers = [];
    }
  in
  t.workers <- List.init size (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t task =
  Mutex.lock t.mutex;
  if t.shutting_down then begin
    Mutex.unlock t.mutex;
    invalid_arg "Domain_pool.submit: pool is shut down"
  end;
  Queue.push task t.tasks;
  Condition.signal t.work_available;
  Mutex.unlock t.mutex

let shutdown t =
  Mutex.lock t.mutex;
  t.shutting_down <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let map t f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let out = Array.make n None in
    let remaining = ref n in
    let m = Mutex.create () in
    let all_done = Condition.create () in
    Array.iteri
      (fun i x ->
        submit t (fun () ->
            let r = try Ok (f x) with e -> Error e in
            Mutex.lock m;
            out.(i) <- Some r;
            decr remaining;
            if !remaining = 0 then Condition.signal all_done;
            Mutex.unlock m))
      arr;
    Mutex.lock m;
    while !remaining > 0 do
      Condition.wait all_done m
    done;
    Mutex.unlock m;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
         out)
  end
