(* Fixed-size pool of OCaml 5 domains draining a shared work queue.

   Built for embarrassingly-parallel experiment sweeps: tasks are
   closures that own all their state (engine, rng, topology), so the
   only shared structures are the work queue and the per-[map] result
   aggregate — both held in a Guarded.t, so every cross-domain access
   is a critical section by construction (and analyses as such under
   leotp-race). *)

type task = unit -> unit

type state = {
  tasks : task Queue.t;
  mutable shutting_down : bool;
}

type t = {
  size : int;
  state : state Guarded.t;
  mutable workers : unit Domain.t list;
      (* spawned once in [create], joined and cleared in [shutdown];
         only ever touched by the owning (submitting) domain *)
}

let size t = t.size

let rec worker_loop state =
  match
    Guarded.await state (fun s ->
        match Queue.take_opt s.tasks with
        | Some task -> Some (Some task)
        | None -> if s.shutting_down then Some None else None)
  with
  | None -> () (* shutting down *)
  | Some task ->
    (* Tasks are expected to trap their own exceptions ([map] wraps them
       in [Result]); a raise here must not kill the worker. *)
    (try task () with _ -> ());
    worker_loop state

let create ~size =
  if size < 1 then invalid_arg "Domain_pool.create: size must be >= 1";
  let state =
    Guarded.create { tasks = Queue.create (); shutting_down = false }
  in
  {
    size;
    state;
    workers =
      List.init size (fun _ -> Domain.spawn (fun () -> worker_loop state));
  }

let submit t task =
  Guarded.with_ t.state (fun s ->
      if s.shutting_down then
        invalid_arg "Domain_pool.submit: pool is shut down";
      Queue.push task s.tasks)

let shutdown t =
  Guarded.with_ t.state (fun s -> s.shutting_down <- true);
  List.iter Domain.join t.workers;
  t.workers <- []

(* Result aggregation for [map]: workers fill disjoint slots and
   decrement [remaining] inside the critical section; the caller awaits
   [remaining = 0]. *)
type 'r agg = {
  out : 'r option array;
  mutable remaining : int;
}

let map t f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let agg = Guarded.create { out = Array.make n None; remaining = n } in
    Array.iteri
      (fun i x ->
        submit t (fun () ->
            let r = try Ok (f x) with e -> Error e in
            Guarded.with_ agg (fun a ->
                a.out.(i) <- Some r;
                a.remaining <- a.remaining - 1)))
      arr;
    Guarded.await agg (fun a -> if a.remaining = 0 then Some a.out else None)
    |> Array.map (function
         | Some (Ok v) -> v
         | Some (Error e) -> raise e
         | None -> assert false)
    |> Array.to_list
  end
