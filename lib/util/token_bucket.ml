type t = {
  mutable rate : float; (* bytes per second *)
  burst : float;
  mutable tokens : float;
  mutable last : float;
}

(* One bucket record per flow/link at setup — not per-packet. *)
let create ~rate ~burst ~now =
  assert (rate >= 0.0 && burst > 0.0);
  ({ rate; burst; tokens = burst; last = now }
  [@leotp.allow "hot-path-may-alloc"])

let refill t now =
  if now > t.last then begin
    t.tokens <- Float.min t.burst (t.tokens +. ((now -. t.last) *. t.rate));
    t.last <- now
  end

let set_rate t ~now r =
  refill t now;
  t.rate <- Float.max 0.0 r

let rate t = t.rate

(* A little float slack: without it a residual deficit of ~1e-10 tokens
   yields a wait below the clock's resolution and a scheduler livelock. *)
let slack = 1e-6

let try_consume t ~now n =
  refill t now;
  let n = float_of_int n in
  if t.tokens >= n -. slack then begin
    t.tokens <- Float.max 0.0 (t.tokens -. n);
    true
  end
  else false

let time_until t ~now n =
  refill t now;
  let deficit = float_of_int n -. t.tokens in
  if deficit <= slack then 0.0
  else if t.rate <= 0.0 then Float.infinity
  else Float.max 1e-6 (deficit /. t.rate)

let available t ~now =
  refill t now;
  t.tokens
