(** Time-varying link bandwidth models (bytes/second).

    [Square] reproduces the paper's bottleneck fluctuation (a square wave
    with fixed period and amplitude, §II-A and §V-B); [Steps] is used for
    trace-driven rates such as the GSL handover "V" curve with random bias
    (§V-C), precomputed by the scenario so that sampling stays pure. *)

type t =
  | Constant of float
  | Square of { mean : float; amplitude : float; period : float }
      (** [mean + amplitude] for the first half of each period, then
          [mean - amplitude]. *)
  | Steps of (float * float) array
      (** [(start_time, rate)] pairs sorted by time; the rate before the
          first step is the first step's rate. *)

let constant_mbps mbps = Constant (Leotp_util.Units.mbps_to_bytes_per_sec mbps)

let square_mbps ~mean ~amplitude ~period =
  Square
    {
      mean = Leotp_util.Units.mbps_to_bytes_per_sec mean;
      amplitude = Leotp_util.Units.mbps_to_bytes_per_sec amplitude;
      period;
    }

(* Last step with start_time <= time — top-level recursion rather than
   while+refs: this runs per transmission start, and a local [ref] is a
   minor-heap allocation.  Also [fst]/[snd]-free: a polymorphic [fst] on
   a float pair would box. *)
let rec step_at (steps : (float * float) array) time lo hi =
  if lo >= hi then snd steps.(lo)
  else
    let mid = (lo + hi + 1) / 2 in
    if fst steps.(mid) <= time then step_at steps time mid hi
    else step_at steps time lo (mid - 1)

(* Same style as [step_at]: index recursion, no closures, so the
   dynamic-path switch detector can call this from the timer path. *)
let rec steps_approx_equal (a : (float * float) array) b epsilon i =
  i >= Array.length a
  || (Float.equal (fst a.(i)) (fst b.(i))
     && Float.abs (snd a.(i) -. snd b.(i)) <= epsilon
     && steps_approx_equal a b epsilon (i + 1))

(* Nested matches, not [match (a, b)]: the tupled scrutinee would be a
   minor-heap allocation on the reconfiguration timer path. *)
let approx_equal ~epsilon a b =
  match a with
  | Constant x -> (
    match b with
    | Constant y -> Float.abs (x -. y) <= epsilon
    | Square _ | Steps _ -> false)
  | Square p -> (
    match b with
    | Square q ->
      Float.abs (p.mean -. q.mean) <= epsilon
      && Float.abs (p.amplitude -. q.amplitude) <= epsilon
      && Float.equal p.period q.period
    | Constant _ | Steps _ -> false)
  | Steps xs -> (
    match b with
    | Steps ys ->
      xs == ys
      || (Array.length xs = Array.length ys
         && steps_approx_equal xs ys epsilon 0)
    | Constant _ | Square _ -> false)

let at t time =
  match t with
  | Constant r -> r
  | Square { mean; amplitude; period } ->
    let phase = Float.rem time period in
    if phase < period /. 2.0 then mean +. amplitude else mean -. amplitude
  | Steps steps ->
    let n = Array.length steps in
    if n = 0 then invalid_arg "Bandwidth.at: empty Steps"
    else if time < fst steps.(0) then snd steps.(0)
    else step_at steps time 0 (n - 1)

let mean_over t ~t_end =
  match t with
  | Constant r -> r
  | Square { mean; _ } -> mean
  | Steps _ ->
    let samples = 1000 in
    let acc = ref 0.0 in
    for i = 0 to samples - 1 do
      acc := !acc +. at t (float_of_int i *. t_end /. float_of_int samples)
    done;
    !acc /. float_of_int samples
