(** Allocation-free FIFO of packets (growable ring buffer).

    Unlike [Queue.t], pushes allocate nothing in steady state — the ring
    doubles when full and is otherwise reused in place.  [peek]/[pop]
    assume a non-empty queue (check {!is_empty}); ownership of popped
    packets passes to the caller, [clear] drops references without
    releasing (release while iterating first if the queue owns them). *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool
val push : t -> Packet.t -> unit

val peek : t -> Packet.t
(** Front packet without removing it; queue must be non-empty. *)

val pop : t -> Packet.t
(** Remove and return the front packet; queue must be non-empty. *)

val iter : (Packet.t -> unit) -> t -> unit
val clear : t -> unit
