(** Packet-trace layer: per-packet lifecycle events from the link, node,
    midnode, consumer and TCP engines, recorded to a bounded in-memory
    ring with an incremental digest and optional live sinks.

    The recorder is domain-local (like the id counters in {!Packet} and
    {!Node}), so parallel sweep cells each observe only their own
    simulation and a seeded run produces the same digest under any
    [--jobs N].  When no recorder is installed every emit site reduces to
    one domain-local read, so tracing costs nothing when off. *)

type drop_reason = Tail | Error | Flush | Down

type seg_state = Seg_sent | Seg_retx | Seg_lost
(** Sender-side segment lifecycle, for the {!Ack_processed}/{!Seg_state}
    differential oracle (Leotp_check): a segment is transmitted, possibly
    retransmitted, and may be declared lost in between. *)

type event =
  | Link_enq of { link : string; pkt : int; size : int }
  | Link_drop of { link : string; pkt : int; reason : drop_reason }
  | Link_deliver of { link : string; pkt : int; size : int }
  | Link_dup of { link : string; pkt : int }
      (** fault-injected duplicate delivery *)
  | Link_final of {
      link : string;
      offered : int;
      delivered : int;
      dropped : int;
      dups : int;
      queued : int;  (** still in the droptail queue at end of run *)
      in_flight : int;  (** serialized/propagating, delivery never fired *)
    }
  | Pit_register of {
      node : string;
      flow : int;
      lo : int;
      hi : int;
      forwarded : bool;
      expiry : float;
      pending : int;  (** table size after the operation *)
    }
  | Pit_satisfy of {
      node : string;
      flow : int;
      lo : int;
      hi : int;
      fresh : bool;
      age : float;
      pending : int;
    }
  | Pit_expire of { node : string; flow : int; lo : int; hi : int; pending : int }
  | Cache_occupancy of { node : string; used : int; capacity : int }
  | Deliver of { node : int; flow : int; pos : int; len : int }
      (** in-order prefix handed to the application *)
  | Complete of { node : int; flow : int; bytes : int }
  | Rto_fire of { who : string; elapsed : float; floor : float }
      (** [floor] = min (SRTT + 4*RTTVAR, armed timeout) at arm time *)
  | Ack_processed of {
      who : string;
      flow : int;
      cc : string;  (** congestion-controller name *)
      phase : string;  (** controller phase (e.g. BBR gain-cycle state) *)
      cum_ack : int;
      sacks : (int * int) list;
      rtt : float option;  (** RTT sample taken from this ack, if any *)
      snd_una : int;  (** sender state claimed {i after} processing *)
      inflight : int;
      lost_pending : int;
      cwnd : float;
      rto : float;  (** timeout the sender would arm now *)
    }
      (** One TCP sender finished processing one ACK: the ack's content
          plus the sender's resulting bookkeeping, checked against the
          reference model by [Leotp_check.Oracle]. *)
  | Seg_state of {
      who : string;
      flow : int;
      seq : int;
      len : int;
      state : seg_state;
    }  (** Sender segment transition: (re)transmitted or declared lost. *)
  | Fault of { what : string }
  | Note of { what : string }

type record = { seq : int; time : float; event : event }

type t

val create : ?capacity:int -> ?digesting:bool -> unit -> t
(** Ring capacity in records (default 65536).  The digest and any sinks
    cover every emitted record regardless of ring retention.
    [digesting:false] skips the per-record serialization + hash (for
    sink-only recorders, e.g. pure invariant checking); {!digest} then
    stays at the FNV offset basis. *)

val set_clock : t -> (unit -> float) -> unit
(** Timestamp source, normally [fun () -> Engine.now engine]. *)

val add_sink : t -> (record -> unit) -> unit
(** Live callback per record (e.g. an invariant checker). *)

val install : t -> unit
(** Make [t] the current domain's recorder. *)

val uninstall : unit -> unit
val installed : unit -> t option

val on : unit -> bool
(** [true] iff a recorder is installed on this domain; guard for emit
    sites so the event payload is never allocated when tracing is off. *)

val emit : event -> unit
(** Record on the current recorder; no-op when none is installed. *)

val with_recorder : t -> clock:(unit -> float) -> (unit -> 'a) -> 'a
(** Install (with clock), run, uninstall (also on exception). *)

val records : t -> record list
(** Retained records, oldest first. *)

val count : t -> int
(** Total records emitted, including those evicted from the ring. *)

val digest : t -> string
(** FNV-1a 64-bit hash over every serialized record, as 16 hex digits. *)

val json_of_record : record -> string
(** One JSON object, no trailing newline; schema in EXPERIMENTS.md. *)

val write_jsonl : t -> out_channel -> unit
(** Retained records as JSON lines. *)
