(** Byte-cursor primitives for the wire-module codecs.

    Fixed-width little-endian: ints and floats as 64-bit words (float bit
    patterns, so NaN/-0.0/boundary values round-trip exactly), bytes for
    small tags.  A cursor advances through a caller-owned buffer;
    encode/decode pairs in the wire modules compose these into per-kind
    packet codecs. *)

type writer
type reader

val writer : Bytes.t -> writer
val reader : Bytes.t -> reader

val written : writer -> int
val remaining : reader -> int

val w_int : writer -> int -> unit
val r_int : reader -> int

val w_float : writer -> float -> unit
val r_float : reader -> float

val w_u8 : writer -> int -> unit
val r_u8 : reader -> int

val w_bool : writer -> bool -> unit
val r_bool : reader -> bool
