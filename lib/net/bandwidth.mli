(** Time-varying link bandwidth models (bytes/second).

    [Square] reproduces the paper's bottleneck fluctuation (§II-A, §V-B);
    [Steps] is used for trace-driven rates such as the GSL handover "V"
    curve, precomputed by the scenario so that sampling stays pure. *)

type t =
  | Constant of float
  | Square of { mean : float; amplitude : float; period : float }
      (** [mean + amplitude] for the first half of each period, then
          [mean - amplitude]. *)
  | Steps of (float * float) array
      (** [(start_time, rate)] pairs sorted by time; the rate before the
          first step is the first step's rate. *)

val constant_mbps : float -> t
val square_mbps : mean:float -> amplitude:float -> period:float -> t

val approx_equal : epsilon:float -> t -> t -> bool
(** Same model shape with every rate within [epsilon] bytes/second
    (step boundary times must match exactly).  Different constructors
    never compare equal — a handover from a [Steps] uplink to a
    [Constant] hop is always a change. *)

val at : t -> float -> float
(** Instantaneous rate at an absolute time, bytes/second. *)

val mean_over : t -> t_end:float -> float
(** Average rate over [\[0, t_end\]]. *)
