(* Cursor codecs over Bytes.

   Wire modules serialize their flat packet layouts through these
   primitives instead of building constructor blocks: a writer advances
   through a caller-owned buffer, a reader walks it back.  Encodings are
   fixed-width little-endian (ints and float bit patterns as 64-bit
   words), so every value — including NaNs, -0.0 and min/max ints —
   round-trips exactly. *)

type writer = { wbuf : Bytes.t; mutable wpos : int }
type reader = { rbuf : Bytes.t; mutable rpos : int }

let writer buf = { wbuf = buf; wpos = 0 }
let reader buf = { rbuf = buf; rpos = 0 }
let written w = w.wpos
let remaining r = Bytes.length r.rbuf - r.rpos

let w_int w v =
  Bytes.set_int64_le w.wbuf w.wpos (Int64.of_int v);
  w.wpos <- w.wpos + 8

let r_int r =
  let v = Int64.to_int (Bytes.get_int64_le r.rbuf r.rpos) in
  r.rpos <- r.rpos + 8;
  v

let w_float w v =
  Bytes.set_int64_le w.wbuf w.wpos (Int64.bits_of_float v);
  w.wpos <- w.wpos + 8

let r_float r =
  let v = Int64.float_of_bits (Bytes.get_int64_le r.rbuf r.rpos) in
  r.rpos <- r.rpos + 8;
  v

let w_u8 w v =
  Bytes.set_uint8 w.wbuf w.wpos (v land 0xff);
  w.wpos <- w.wpos + 1

let r_u8 r =
  let v = Bytes.get_uint8 r.rbuf r.rpos in
  r.rpos <- r.rpos + 1;
  v

let w_bool w v = w_u8 w (if v then 1 else 0)
let r_bool r = r_u8 r <> 0
