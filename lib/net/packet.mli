(** Simulated network packets, as flat recyclable records.

    A packet's payload lives inline in fixed slots — [kind] selects the
    layout (int fields in [i0]..[i7], floats in [f], flags bits in
    [flags]); the owning wire module documents and owns each layout and
    provides the cursor codecs.  Records come from {!Packet_pool} and are
    released back to it at every sink, so the steady-state hot path
    allocates nothing per packet.  [size] is the total on-wire size in
    bytes and is what links charge for serialization and queue
    occupancy. *)

type t = {
  mutable id : int;  (** globally unique, for tracing *)
  mutable src : int;  (** origin node id *)
  mutable dst : int;  (** destination node id (used by forwarders) *)
  mutable flow : int;  (** flow identifier *)
  mutable size : int;  (** bytes on the wire *)
  mutable kind : int;  (** payload layout selector (see wire modules) *)
  mutable flags : int;  (** bit set: [flag_retx], [flag_fin], ... *)
  mutable i0 : int;
  mutable i1 : int;
  mutable i2 : int;
  mutable i3 : int;
  mutable i4 : int;
  mutable i5 : int;
  mutable i6 : int;
  mutable i7 : int;
  f : float array;  (** [float_slots] entries; see [link_slot] *)
  mutable str : string;  (** opaque payload ([kind_raw], tests) *)
}

val kind_raw : int
(** opaque payload in [str]; protocol kinds are registered in the wire
    modules (see the slot registry note in packet.ml) *)

val flag_retx : int
val flag_fin : int
val flag_ts_echo : int

val flag_free : int
(** set while the record sits in the pool free list; checked by the
    pool's debug mode to catch double releases *)

val float_slots : int

val link_slot : int
(** index in [f] reserved for link bookkeeping (enqueue timestamp) —
    payload layouts must not use it *)

val get_flag : t -> int -> bool
val set_flag : t -> int -> bool -> unit

val blank : unit -> t
(** Allocate a zeroed record with no id.  Only {!Packet_pool} (to grow
    the pool) and packet-queue placeholders may call this — flagged by
    the [hot-path-alloc] lint rule elsewhere. *)

val assign_fresh_id : t -> unit
(** Stamp the next domain-local packet id (and bump the lifetime
    creation counter).  Called on pool acquisition and at in-place
    re-origination points; consuming ids at exactly the historical
    creation points keeps trace digests bit-identical. *)

val reset_ids : unit -> unit
(** Reset the id counter (between independent experiments). *)

val created_on_domain : unit -> int
(** Lifetime count of logical packets created on the calling domain.
    Not affected by {!reset_ids}; the bench runner reads deltas around
    each job for per-packet allocation accounting. *)

val pp : Format.formatter -> t -> unit
