(* FIFO of packets as a growable ring: no cell allocation per enqueue
   (Queue.t costs one cons per push), which matters because every packet
   crosses a link queue at every hop.  Slots left behind by [pop] keep
   their stale reference — harmless, the pool keeps released records
   alive anyway. *)

type t = {
  mutable arr : Packet.t array;
  mutable head : int;
  mutable len : int;
  placeholder : Packet.t;  (** fills unused slots of a fresh array *)
}

let create () =
  (* The array is grown lazily at first push so idle queues cost one
     blank record, not a 64-slot array.  One queue record per link/flow
     at setup — not per-packet. *)
  let placeholder = (Packet.blank [@leotp.allow "hot-path-alloc"]) () in
  ({ arr = [||]; head = 0; len = 0; placeholder }
  [@leotp.allow "hot-path-may-alloc"])

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.arr in
  let ncap = max 64 (2 * cap) in
  (* doubling growth: amortized O(1), not a steady-state allocation *)
  let narr = (Array.make [@leotp.allow "hot-path-may-alloc"]) ncap t.placeholder in
  for i = 0 to t.len - 1 do
    narr.(i) <- t.arr.((t.head + i) mod cap)
  done;
  t.arr <- narr;
  t.head <- 0

let push t p =
  if t.len = Array.length t.arr then grow t;
  t.arr.((t.head + t.len) mod Array.length t.arr) <- p;
  t.len <- t.len + 1

(* Callers check [is_empty] first: an option return would allocate per
   packet per hop. *)
let peek t =
  assert (t.len > 0);
  t.arr.(t.head)

let pop t =
  assert (t.len > 0);
  let p = t.arr.(t.head) in
  t.head <- (t.head + 1) mod Array.length t.arr;
  t.len <- t.len - 1;
  p

let iter f t =
  for i = 0 to t.len - 1 do
    f t.arr.((t.head + i) mod Array.length t.arr)
  done

let clear t =
  t.head <- 0;
  t.len <- 0
