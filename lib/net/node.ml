type t = {
  id : int;
  name : string;
  routes : (int, Link.t) Hashtbl.t;
  mutable handler : from:int -> Packet.t -> unit;
  mutable no_route_drops : int;
}

(* Domain-local: see the note on [Packet.counter]. *)
let counter = Domain.DLS.new_key (fun () -> ref 0)

let create ~name =
  let c = Domain.DLS.get counter in
  incr c;
  let rec t =
    {
      id = !c;
      name;
      routes = Hashtbl.create 16;
      handler = (fun ~from pkt -> forward_impl t ~from pkt);
      no_route_drops = 0;
    }
  and forward_impl t ~from:_ pkt = send_impl t pkt
  and send_impl t pkt =
    match Hashtbl.find_opt t.routes pkt.Packet.dst with
    | Some link -> Link.send link pkt
    | None ->
      t.no_route_drops <- t.no_route_drops + 1;
      Packet_pool.release pkt
  in
  t

let reset_ids () = Domain.DLS.get counter := 0
let id t = t.id
let name t = t.name
let add_route t ~dst link = Hashtbl.replace t.routes dst link
let remove_route t ~dst = Hashtbl.remove t.routes dst
let route_to t ~dst = Hashtbl.find_opt t.routes dst
let clear_routes t = Hashtbl.reset t.routes
let set_handler t h = t.handler <- h
let receive t ~from pkt = t.handler ~from pkt

let send t pkt =
  match Hashtbl.find_opt t.routes pkt.Packet.dst with
  | Some link -> Link.send link pkt
  | None ->
    (* The packet dies here: no route means no owner downstream. *)
    t.no_route_drops <- t.no_route_drops + 1;
    Packet_pool.release pkt

let no_route_drops t = t.no_route_drops
let forward t ~from:_ pkt = send t pkt
