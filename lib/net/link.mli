(** Unidirectional link: droptail queue -> serialization -> propagation ->
    random loss -> delivery.

    Loss is drawn after serialization so that lost packets still consume
    the link's bandwidth, matching the paper's observation that end-to-end
    retransmissions waste bottleneck capacity.  [flush] models link
    switching: all queued and in-flight packets are discarded (§II-C
    "packet loss may occur ... when an intermediate node removes from the
    path"). *)

type t

type stats = {
  mutable packets_in : int;  (** offered to the link *)
  mutable packets_delivered : int;
  mutable bytes_delivered : int;
  mutable drops_tail : int;  (** queue overflow (congestion loss) *)
  mutable drops_error : int;  (** random corruption (PLR) *)
  mutable drops_flush : int;  (** link switching *)
  mutable drops_down : int;  (** offered while the link was down *)
  mutable dups : int;  (** fault-injected duplicate deliveries *)
  queue_delay : Leotp_util.Stats.t;  (** seconds spent queued, per packet *)
}

val create :
  Leotp_sim.Engine.t ->
  name:string ->
  src:int ->
  dst:int ->
  bandwidth:Bandwidth.t ->
  delay:float ->
  ?plr:float ->
  ?buffer_bytes:int ->
  rng:Leotp_util.Rng.t ->
  unit ->
  t
(** [src]/[dst] are the node ids of the link endpoints; [delay] is the
    one-way propagation delay in seconds.  Default [plr] 0, default buffer
    256 KB. *)

val set_sink : t -> (Packet.t -> unit) -> unit
(** Delivery callback (wired by {!Topology}). *)

val send : t -> Packet.t -> unit
(** Offer a packet; drops silently when the buffer is full. *)

val flush : t -> unit

val src : t -> int
val dst : t -> int
val name : t -> string
val delay : t -> float
val set_delay : t -> float -> unit
val plr : t -> float
val set_plr : t -> float -> unit
val bandwidth : t -> Bandwidth.t
val set_bandwidth : t -> Bandwidth.t -> unit
val current_rate : t -> float
(** Bytes/second at the present simulation time. *)

val set_buffer_bytes : t -> int -> unit
val queue_bytes : t -> int
(** Current backlog (queued, excluding the packet being serialized). *)

val queued_packets : t -> int
val in_flight : t -> int
(** Packets taken off the queue whose delivery or drop has not resolved
    yet (serializing or propagating). *)

val up : t -> bool
val set_up : t -> bool -> unit
(** Taking a link down flushes queued and in-flight packets and drops
    everything offered until it comes back up ([drops_down]). *)

val set_dup_prob : t -> float -> unit
(** Fault injection: deliver an extra copy of each arriving packet with
    this probability (default 0; costs no RNG draws at 0). *)

val set_reorder : t -> prob:float -> jitter:float -> unit
(** Fault injection: with probability [prob], add a uniform extra delay
    in [0, jitter) seconds to a packet's propagation so later packets
    can overtake it (default 0/0). *)

val stats : t -> stats

val trace_final : t -> unit
(** Emit a {!Trace.Link_final} accounting record for this link (no-op
    when tracing is off). *)
