type payload = ..
type payload += Raw of string

type t = {
  id : int;
  src : int;
  dst : int;
  flow : int;
  size : int;
  payload : payload;
}

(* Domain-local so independent simulations running on worker domains
   (bench --jobs N) each see the same id sequence as a sequential run. *)
let counter = Domain.DLS.new_key (fun () -> ref 0)

let make ~src ~dst ~flow ~size payload =
  assert (size > 0);
  let c = Domain.DLS.get counter in
  incr c;
  { id = !c; src; dst; flow; size; payload }

let reset_ids () = Domain.DLS.get counter := 0

let pp ppf t =
  Format.fprintf ppf "#%d flow=%d %d->%d %dB" t.id t.flow t.src t.dst t.size
