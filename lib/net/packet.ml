(* Flat, recyclable packet representation.

   Payloads are not heap-allocated constructor blocks: every protocol
   encodes its fields into the fixed slots below ([kind] selects the
   layout, documented in the owning wire module).  Records are acquired
   from and released to [Packet_pool]; in steady state the simulation
   allocates no words per packet.

   Slot registry (kinds must be distinct across protocols because
   gateways carry both on one node):
     0  raw          [str] opaque payload (tests)
     1  leotp Interest   lib/core/wire.ml
     2  leotp Data/VPH   lib/core/wire.ml
     3  tcp Data_seg     lib/tcp/wire.ml
     4  tcp Ack_seg      lib/tcp/wire.ml *)

type t = {
  mutable id : int;
  mutable src : int;
  mutable dst : int;
  mutable flow : int;
  mutable size : int;
  mutable kind : int;
  mutable flags : int;
  mutable i0 : int;
  mutable i1 : int;
  mutable i2 : int;
  mutable i3 : int;
  mutable i4 : int;
  mutable i5 : int;
  mutable i6 : int;
  mutable i7 : int;
  f : float array;
      (** [float_slots] unboxed float slots; payload layouts use 0..2,
          slot [link_slot] is link-queue scratch (enqueue time) *)
  mutable str : string;
}

let kind_raw = 0

let flag_retx = 1
let flag_fin = 2
let flag_ts_echo = 4

let flag_free = 256
(** set while the record sits in the pool's free list (double-release
    and use-after-release detection) *)

let float_slots = 4
let link_slot = 3

let get_flag t bit = t.flags land bit <> 0

let set_flag t bit v =
  if v then t.flags <- t.flags lor bit else t.flags <- t.flags land lnot bit

(* The only raw allocation of a packet record: [Packet_pool] calls it to
   grow the pool, queues call it for array placeholders.  Each record is
   allocated once and recycled forever after. *)
let blank () =
  ({
    id = 0;
    src = 0;
    dst = 0;
    flow = 0;
    size = 0;
    kind = kind_raw;
    flags = 0;
    i0 = 0;
    i1 = 0;
    i2 = 0;
    i3 = 0;
    i4 = 0;
    i5 = 0;
    i6 = 0;
    i7 = 0;
    f = Array.make float_slots 0.0;
    str = "";
    } [@leotp.allow "hot-path-may-alloc"])

(* Domain-local so independent simulations running on worker domains
   (bench --jobs N) each see the same id sequence as a sequential run. *)
let counter = Domain.DLS.new_key (fun () -> ref 0)

(* Lifetime count of logical packets created on this domain.  Unlike
   [counter] it is *not* reset between experiments: the bench runner
   reads deltas around each job to attribute per-packet allocation. *)
let created = Domain.DLS.new_key (fun () -> ref 0)

(* Every point that logically creates a packet — pool acquisition, or
   in-place re-origination of a pooled record — consumes the next id,
   exactly as [make] did when each packet was a fresh heap record; the
   trace digests depend on this sequence. *)
let assign_fresh_id t =
  let c = Domain.DLS.get counter in
  incr c;
  incr (Domain.DLS.get created);
  t.id <- !c

let reset_ids () = Domain.DLS.get counter := 0
let created_on_domain () = !(Domain.DLS.get created)

let pp ppf t =
  Format.fprintf ppf "#%d flow=%d %d->%d %dB" t.id t.flow t.src t.dst t.size
