(** Domain-local free-list recycling of {!Packet.t} records.

    Every packet sink (link drop, buffer drop, terminal handler) releases
    its packet here; every creation point acquires one.  Steady-state
    simulation therefore allocates ~zero words per packet: records only
    get allocated while the pool grows toward the peak number of packets
    simultaneously alive. *)

val acquire : src:int -> dst:int -> flow:int -> size:int -> kind:int -> Packet.t
(** A record with a fresh domain-local id and all payload slots zeroed —
    indistinguishable from a newly allocated packet. *)

val release : Packet.t -> unit
(** Return a record to the pool.  The caller must hold the only live
    reference.  Double release is ignored (first release wins) unless
    debug mode is on, where it raises [Invalid_argument]. *)

val clone : Packet.t -> Packet.t
(** Copy for link-level duplication: identical fields {e including} the
    id (it is the same logical packet) — consumes no fresh id.  Cloning
    an already-released record raises [Invalid_argument] in debug mode
    (it is a use-after-release). *)

val double_release_count : unit -> int
(** Lifetime count of double releases observed, summed across domains.
    Non-debug builds ignore the redundant release (first wins) but still
    count it; tests assert the count stays 0 across a run. *)

val reset_double_release_count : unit -> unit

val set_debug : bool -> unit
(** Poison released records (sentinel ints, -inf floats, negated id) and
    raise on double release.  Also enabled by [LEOTP_POOL_DEBUG=1]. *)

val debug_enabled : unit -> bool

val poison_int : int
val poison_float : float

val free_count : unit -> int
(** Records currently in this domain's free list (tests). *)

val live_count : unit -> int
(** Packets acquired (or cloned) on this domain and not yet released.
    Leak checks snapshot this before a run and assert a zero delta after
    teardown: every creation path goes through {!acquire}/{!clone} and
    every sink through {!release}, so the delta is exact. *)
