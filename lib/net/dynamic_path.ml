type hop_state = { delay : float; bandwidth : Bandwidth.t; plr : float }
type snapshot = hop_state array

type epsilons = { delay_eps : float; bw_eps : float; plr_eps : float }

(* Delay: 50 us ~ 15 km of path change, well above numeric jitter and
   well below any real handover.  Bandwidth: 4 Mbps, so the paper's
   per-second +/-0.5 Mbps bias and the 1.5 Mbps/s handover "V" slope do
   not read as switches while a 10 -> 20 Mbps hop swap does.  Plr: GSL
   (1%) vs ISL (0.1%) hop substitutions are above it. *)
let default_epsilons =
  {
    delay_eps = 50e-6;
    bw_eps = Leotp_util.Units.mbps_to_bytes_per_sec 4.0;
    plr_eps = 5e-3;
  }

type t = {
  engine : Leotp_sim.Engine.t;
  chain : Topology.chain;
  max_hops : int;
  eps : epsilons;
  mutable active_hops : int;
  mutable switch_count : int;
}

(* Pass-through hops stand in for "this relay is not on the current route":
   they add (almost) nothing to the path. *)
let pass_through_delay = 20e-6
let pass_through_bw = Bandwidth.constant_mbps 10_000.0

let to_spec ?(buffer_bytes = 256 * 1024) (h : hop_state) =
  Topology.hop ~plr:h.plr ~buffer_bytes ~bandwidth:h.bandwidth ~delay:h.delay
    ()

let create engine ~rng ~max_hops ~initial ?(buffer_bytes = 256 * 1024)
    ?switch_epsilon ?(epsilons = default_epsilons) () =
  assert (Array.length initial <= max_hops);
  let eps =
    match switch_epsilon with
    | None -> epsilons
    | Some d -> { epsilons with delay_eps = d }
  in
  let specs =
    Array.init max_hops (fun i ->
        if i < Array.length initial then to_spec ~buffer_bytes initial.(i)
        else
          Topology.hop ~buffer_bytes ~bandwidth:pass_through_bw
            ~delay:pass_through_delay ())
  in
  let chain = Topology.chain engine ~rng specs in
  {
    engine;
    chain;
    max_hops;
    eps;
    active_hops = Array.length initial;
    switch_count = 0;
  }

let chain t = t.chain

(* A switch is any above-epsilon change in *any* dimension: a handover
   that keeps the delay but lands on a different-rate (or lossier) link
   must still flush in-flight packets and count in [switch_count]. *)
let update_link link ~delay ~bandwidth ~plr ~eps =
  let changed =
    Float.abs (Link.delay link -. delay) > eps.delay_eps
    || not (Bandwidth.approx_equal ~epsilon:eps.bw_eps (Link.bandwidth link) bandwidth)
    || Float.abs (Link.plr link -. plr) > eps.plr_eps
  in
  Link.set_delay link delay;
  Link.set_bandwidth link bandwidth;
  Link.set_plr link plr;
  if changed then Link.flush link;
  changed

(* Runs once per topology snapshot — handover timescale (seconds), not
   the per-packet path, even though the applying timer event is hot. *)
let apply t snapshot =
  let n = Array.length snapshot in
  assert (n <= t.max_hops);
  let any_switch = ref false in
  for i = 0 to t.max_hops - 1 do
    let delay, bandwidth, plr =
      if i < n then (snapshot.(i).delay, snapshot.(i).bandwidth, snapshot.(i).plr)
      else (pass_through_delay, pass_through_bw, 0.0)
    in
    let d = t.chain.Topology.hops.(i) in
    let c1 = update_link d.Topology.fwd ~delay ~bandwidth ~plr ~eps:t.eps in
    (* The reverse direction keeps the same delay/plr; its bandwidth is the
       forward one too (Interest/ACK traffic is tiny). *)
    let c2 = update_link d.Topology.rev ~delay ~bandwidth ~plr ~eps:t.eps in
    if c1 || c2 then any_switch := true
  done;
  t.active_hops <- n;
  if !any_switch then t.switch_count <- t.switch_count + 1
[@@leotp.allow "hot-path-may-alloc"]

let schedule t items =
  List.iter
    (fun (time, snap) ->
      ignore
        (Leotp_sim.Engine.schedule_at t.engine ~time (fun () -> apply t snap)))
    items

let active_hops t = t.active_hops
let switch_count t = t.switch_count

(* ------------------------------------------------------------------ *)
(* Trace replay. *)

type interp = Hold_last | Linear of { substep : float }

let hop_state_of_trace (h : Path_trace.hop) =
  {
    delay = h.Path_trace.delay;
    bandwidth =
      Bandwidth.Constant
        (Leotp_util.Units.mbps_to_bytes_per_sec h.Path_trace.bw_mbps);
    plr = h.Path_trace.plr;
  }

let snapshot_of_hops ~max_hops (hops : Path_trace.hop array) =
  Array.init
    (min (Array.length hops) max_hops)
    (fun i -> hop_state_of_trace hops.(i))

(* Linearly interpolated snapshot between two same-length hop arrays. *)
let lerp_snapshot ~max_hops a b frac =
  Array.init
    (min (Array.length a) max_hops)
    (fun i ->
      let ha : Path_trace.hop = a.(i) and hb : Path_trace.hop = b.(i) in
      {
        delay = ha.Path_trace.delay +. (frac *. (hb.Path_trace.delay -. ha.Path_trace.delay));
        bandwidth =
          Bandwidth.Constant
            (Leotp_util.Units.mbps_to_bytes_per_sec
               (ha.Path_trace.bw_mbps
               +. (frac *. (hb.Path_trace.bw_mbps -. ha.Path_trace.bw_mbps))));
        plr =
          ha.Path_trace.plr +. (frac *. (hb.Path_trace.plr -. ha.Path_trace.plr));
      })

let trace_snapshots ~max_hops ~interp (tr : Path_trace.t) =
  let routes =
    List.filter_map
      (fun (r : Path_trace.record) ->
        match r.Path_trace.event with
        | Path_trace.Route { hops; _ } -> Some (r.Path_trace.time, hops)
        | Path_trace.No_route -> None)
      tr.Path_trace.records
  in
  match interp with
  | Hold_last ->
    List.map
      (fun (time, hops) -> (time, snapshot_of_hops ~max_hops hops))
      routes
  | Linear { substep } ->
    let substep = Float.max substep 1e-3 in
    let rec expand acc = function
      | [] -> List.rev acc
      | [ (t0, h0) ] -> List.rev ((t0, snapshot_of_hops ~max_hops h0) :: acc)
      | (t0, h0) :: ((t1, h1) :: _ as rest) ->
        let acc = (t0, snapshot_of_hops ~max_hops h0) :: acc in
        let acc =
          (* Only interpolate along an unchanged route shape; a hop-count
             change is a reroute and must stay a step. *)
          if Array.length h0 <> Array.length h1 then acc
          else begin
            let k =
              int_of_float (Float.round ((t1 -. t0) /. substep))
            in
            let rec fill acc j =
              if j >= k then acc
              else
                let frac = float_of_int j /. float_of_int k in
                let tj = t0 +. (frac *. (t1 -. t0)) in
                fill ((tj, lerp_snapshot ~max_hops h0 h1 frac) :: acc) (j + 1)
            in
            if k > 1 then fill acc 1 else acc
          end
        in
        expand acc rest
    in
    expand [] routes

let apply_outage t (ev : Leotp_sim.Fault.event) =
  let set_hop i v =
    if i >= 0 && i < t.max_hops then begin
      let d = t.chain.Topology.hops.(i) in
      Link.set_up d.Topology.fwd v;
      Link.set_up d.Topology.rev v
    end
  in
  match ev.Leotp_sim.Fault.action with
  | Leotp_sim.Fault.Link_down (Leotp_sim.Fault.Hop i) -> set_hop i false
  | Leotp_sim.Fault.Link_up (Leotp_sim.Fault.Hop i) -> set_hop i true
  | _ -> ()

(* Every outage window takes the whole chain down: with no route there is
   no partial path either, and taking links down drops in-flight packets
   through the regular fault plumbing. *)
let outage_schedule t (tr : Path_trace.t) =
  List.concat_map
    (fun (a, b) ->
      List.concat
        (List.init t.max_hops (fun i ->
             [
               {
                 Leotp_sim.Fault.time = a;
                 action = Leotp_sim.Fault.Link_down (Leotp_sim.Fault.Hop i);
               };
               {
                 Leotp_sim.Fault.time = b;
                 action = Leotp_sim.Fault.Link_up (Leotp_sim.Fault.Hop i);
               };
             ])))
    (Path_trace.outage_intervals tr)

let schedule_trace ?(interp = Hold_last) t (tr : Path_trace.t) =
  schedule t (trace_snapshots ~max_hops:t.max_hops ~interp tr);
  (* Snapshots are scheduled before outage events, so at an outage-ending
     instant the new route's parameters apply first and the link comes
     back up second — deterministically, via the engine's FIFO tie-break. *)
  Leotp_sim.Fault.install t.engine ~apply:(apply_outage t)
    (outage_schedule t tr)
