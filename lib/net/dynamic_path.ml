type hop_state = { delay : float; bandwidth : Bandwidth.t; plr : float }
type snapshot = hop_state array

type t = {
  engine : Leotp_sim.Engine.t;
  chain : Topology.chain;
  max_hops : int;
  switch_epsilon : float;
  mutable active_hops : int;
  mutable switch_count : int;
}

(* Pass-through hops stand in for "this relay is not on the current route":
   they add (almost) nothing to the path. *)
let pass_through_delay = 20e-6
let pass_through_bw = Bandwidth.constant_mbps 10_000.0

let to_spec ?(buffer_bytes = 256 * 1024) (h : hop_state) =
  Topology.hop ~plr:h.plr ~buffer_bytes ~bandwidth:h.bandwidth ~delay:h.delay
    ()

let create engine ~rng ~max_hops ~initial ?(buffer_bytes = 256 * 1024)
    ?(switch_epsilon = 50e-6) () =
  assert (Array.length initial <= max_hops);
  let specs =
    Array.init max_hops (fun i ->
        if i < Array.length initial then to_spec ~buffer_bytes initial.(i)
        else
          Topology.hop ~buffer_bytes ~bandwidth:pass_through_bw
            ~delay:pass_through_delay ())
  in
  let chain = Topology.chain engine ~rng specs in
  {
    engine;
    chain;
    max_hops;
    switch_epsilon;
    active_hops = Array.length initial;
    switch_count = 0;
  }

let chain t = t.chain

let update_link link ~delay ~bandwidth ~plr ~epsilon =
  let changed = Float.abs (Link.delay link -. delay) > epsilon in
  Link.set_delay link delay;
  Link.set_bandwidth link bandwidth;
  Link.set_plr link plr;
  if changed then Link.flush link;
  changed

(* Runs once per topology snapshot — handover timescale (seconds), not
   the per-packet path, even though the applying timer event is hot. *)
let apply t snapshot =
  let n = Array.length snapshot in
  assert (n <= t.max_hops);
  let any_switch = ref false in
  for i = 0 to t.max_hops - 1 do
    let delay, bandwidth, plr =
      if i < n then (snapshot.(i).delay, snapshot.(i).bandwidth, snapshot.(i).plr)
      else (pass_through_delay, pass_through_bw, 0.0)
    in
    let d = t.chain.Topology.hops.(i) in
    let c1 =
      update_link d.Topology.fwd ~delay ~bandwidth ~plr
        ~epsilon:t.switch_epsilon
    in
    (* The reverse direction keeps the same delay/plr; its bandwidth is the
       forward one too (Interest/ACK traffic is tiny). *)
    let c2 =
      update_link d.Topology.rev ~delay ~bandwidth ~plr
        ~epsilon:t.switch_epsilon
    in
    if c1 || c2 then any_switch := true
  done;
  t.active_hops <- n;
  if !any_switch then t.switch_count <- t.switch_count + 1
[@@leotp.allow "hot-path-may-alloc"]

let schedule t items =
  List.iter
    (fun (time, snap) ->
      ignore
        (Leotp_sim.Engine.schedule_at t.engine ~time (fun () -> apply t snap)))
    items

let active_hops t = t.active_hops
let switch_count t = t.switch_count
