(* Free-list recycling of packet records.

   The pool is a domain-local stack (each bench job runs entirely on one
   domain, so no cross-domain hand-off exists).  Pushes and pops move
   array slots only — no list cells — so steady-state acquire/release
   allocates nothing; the stack doubles when a burst outgrows it.

   Debug mode ([LEOTP_POOL_DEBUG=1] or [set_debug true]) poisons every
   released record so a reader holding a stale reference sees sentinel
   values instead of plausible data, and raises on double release. *)

type stack = { mutable arr : Packet.t array; mutable len : int }

let pool : stack Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { arr = [||]; len = 0 })

(* Packets handed out and not yet released on this domain.  Every
   creation path funnels through [acquire]/[clone] and every sink through
   [release], so a zero delta across a run proves nothing leaked. *)
let live : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let live_count () = !(Domain.DLS.get live)

(* Read once per release in debug builds only; an Atomic bool set from
   the environment (or tests) does not affect packet contents or ids, so
   it cannot perturb --jobs N determinism. *)
let debug =
  Atomic.make
    (match Sys.getenv_opt "LEOTP_POOL_DEBUG" with
    | Some "1" -> true
    | _ -> false)
[@@leotp.allow "no-global-mutable-state"]

let set_debug v = Atomic.set debug v
let debug_enabled () = Atomic.get debug

(* Double releases are counted unconditionally — in non-debug builds the
   first release still wins, but a non-zero count after a run is exactly
   the bug the leotp-own static pass hunts for, so tests assert it is 0.
   Cross-domain aggregate: worker domains each release on their own pool,
   the counter sums them. *)
let double_releases = Leotp_util.Atomic_counter.create ()

let double_release_count () = Leotp_util.Atomic_counter.get double_releases
let reset_double_release_count () = Leotp_util.Atomic_counter.reset double_releases

let poison_int = (1 lsl 61) + 0xDEAD
let poison_float = Float.neg_infinity

let poison (p : Packet.t) =
  p.Packet.id <- -p.Packet.id - 1;
  p.Packet.src <- poison_int;
  p.Packet.dst <- poison_int;
  p.Packet.flow <- poison_int;
  p.Packet.size <- poison_int;
  p.Packet.kind <- poison_int;
  p.Packet.i0 <- poison_int;
  p.Packet.i1 <- poison_int;
  p.Packet.i2 <- poison_int;
  p.Packet.i3 <- poison_int;
  p.Packet.i4 <- poison_int;
  p.Packet.i5 <- poison_int;
  p.Packet.i6 <- poison_int;
  p.Packet.i7 <- poison_int;
  for i = 0 to Packet.float_slots - 1 do
    p.Packet.f.(i) <- poison_float
  done;
  p.Packet.str <- "\xde\xad"

let free_count () = (Domain.DLS.get pool).len

let release (p : Packet.t) =
  if Packet.get_flag p Packet.flag_free then begin
    (* Already in the free list: releasing again would alias the record
       between two future owners.  Counted always, loud in debug, ignored
       otherwise (the first release already made the record recyclable). *)
    Leotp_util.Atomic_counter.incr double_releases;
    if Atomic.get debug then
      invalid_arg
        (Printf.sprintf "Packet_pool.release: double release of packet %d"
           p.Packet.id)
  end
  else begin
    if Atomic.get debug then poison p;
    p.Packet.flags <- Packet.flag_free;
    decr (Domain.DLS.get live);
    let s = Domain.DLS.get pool in
    let cap = Array.length s.arr in
    if s.len = cap then begin
      let ncap = max 256 (2 * cap) in
      (* doubling growth: amortized O(1), not a steady-state allocation *)
      let narr = (Array.make [@leotp.allow "hot-path-may-alloc"]) ncap p in
      Array.blit s.arr 0 narr 0 s.len;
      s.arr <- narr
    end;
    (* the free list is the terminal owner of a released record *)
    (s.arr.(s.len) <- p) [@leotp.allow "own-escape"];
    s.len <- s.len + 1
  end

(* Fresh id, zeroed slots: a recycled record is indistinguishable from a
   newly allocated one. *)
let acquire ~src ~dst ~flow ~size ~kind =
  assert (size > 0);
  incr (Domain.DLS.get live);
  let s = Domain.DLS.get pool in
  let p =
    (* empty-pool refill: each record is allocated once, then recycled *)
    if s.len = 0 then (Packet.blank [@leotp.allow "hot-path-may-alloc"]) ()
    else begin
      s.len <- s.len - 1;
      let p = s.arr.(s.len) in
      if Atomic.get debug && not (Packet.get_flag p Packet.flag_free) then
        invalid_arg "Packet_pool.acquire: free-list record not marked free";
      p
    end
  in
  Packet.assign_fresh_id p;
  p.Packet.src <- src;
  p.Packet.dst <- dst;
  p.Packet.flow <- flow;
  p.Packet.size <- size;
  p.Packet.kind <- kind;
  p.Packet.flags <- 0;
  p.Packet.i0 <- 0;
  p.Packet.i1 <- 0;
  p.Packet.i2 <- 0;
  p.Packet.i3 <- 0;
  p.Packet.i4 <- 0;
  p.Packet.i5 <- 0;
  p.Packet.i6 <- 0;
  p.Packet.i7 <- 0;
  for i = 0 to Packet.float_slots - 1 do
    p.Packet.f.(i) <- 0.0
  done;
  p.Packet.str <- "";
  p

(* Identical copy, *including* the id: link-level duplication delivers
   the same logical packet twice, so the copy consumes no fresh id and
   traces under the original's id. *)
let clone (p : Packet.t) =
  (* Cloning a released record is a use-after-release: the source may
     already be recycled under another owner (and is poisoned in debug). *)
  if Atomic.get debug && Packet.get_flag p Packet.flag_free then
    invalid_arg
      (Printf.sprintf "Packet_pool.clone: clone of released packet %d"
         p.Packet.id);
  incr (Domain.DLS.get live);
  let s = Domain.DLS.get pool in
  let c =
    (* empty-pool refill: each record is allocated once, then recycled *)
    if s.len = 0 then (Packet.blank [@leotp.allow "hot-path-may-alloc"]) ()
    else begin
      s.len <- s.len - 1;
      let c = s.arr.(s.len) in
      if Atomic.get debug && not (Packet.get_flag c Packet.flag_free) then
        invalid_arg "Packet_pool.clone: free-list record not marked free";
      c
    end
  in
  c.Packet.id <- p.Packet.id;
  c.Packet.src <- p.Packet.src;
  c.Packet.dst <- p.Packet.dst;
  c.Packet.flow <- p.Packet.flow;
  c.Packet.size <- p.Packet.size;
  c.Packet.kind <- p.Packet.kind;
  c.Packet.flags <- p.Packet.flags land lnot Packet.flag_free;
  c.Packet.i0 <- p.Packet.i0;
  c.Packet.i1 <- p.Packet.i1;
  c.Packet.i2 <- p.Packet.i2;
  c.Packet.i3 <- p.Packet.i3;
  c.Packet.i4 <- p.Packet.i4;
  c.Packet.i5 <- p.Packet.i5;
  c.Packet.i6 <- p.Packet.i6;
  c.Packet.i7 <- p.Packet.i7;
  Array.blit p.Packet.f 0 c.Packet.f 0 Packet.float_slots;
  c.Packet.str <- p.Packet.str;
  c
