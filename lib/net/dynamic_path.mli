(** Time-varying linear path (link switching and rerouting).

    A chain is allocated with a fixed maximum hop count; reconfigurations
    change per-hop delay / bandwidth / loss over time.  When the new route
    has fewer hops than the chain, the surplus hops become "pass-through"
    (negligible delay, high rate, no loss) so transport objects survive the
    change — which is exactly the property LEOTP's connectionless design
    exploits, while TCP endpoints simply observe a changed end-to-end path.

    Any hop that changes by more than the per-dimension epsilons — delay,
    bandwidth or loss rate — is flushed: queued and in-flight packets are
    dropped, reproducing the paper's "link switching causes inevitable
    packet loss" (§V-B).  Besides explicit snapshot lists, a path can
    replay a recorded {!Path_trace} timeline, including its outage
    windows (chain-wide link-down intervals through the
    {!Leotp_sim.Fault} plumbing). *)

type hop_state = {
  delay : float;
  bandwidth : Bandwidth.t;
  plr : float;
}

type snapshot = hop_state array
(** Active hops, source side first; length <= max hops of the chain. *)

type epsilons = {
  delay_eps : float;  (** seconds *)
  bw_eps : float;  (** bytes/second (see {!Bandwidth.approx_equal}) *)
  plr_eps : float;  (** absolute loss-probability delta *)
}
(** A reconfiguration counts as a switch (and flushes the hop) when any
    dimension moves by more than its epsilon. *)

val default_epsilons : epsilons
(** 50 us delay, 4 Mbps bandwidth, 5e-3 plr: tight enough to catch any
    real handover, loose enough that the paper's per-second bandwidth
    bias and handover "V" ramps do not read as switches. *)

type t

val create :
  Leotp_sim.Engine.t ->
  rng:Leotp_util.Rng.t ->
  max_hops:int ->
  initial:snapshot ->
  ?buffer_bytes:int ->
  ?switch_epsilon:float ->
  ?epsilons:epsilons ->
  unit ->
  t
(** Default epsilons {!default_epsilons}; [switch_epsilon] overrides the
    delay component only (the pre-trace API).  Default buffer 256 KB. *)

val chain : t -> Topology.chain
val apply : t -> snapshot -> unit

val schedule : t -> (float * snapshot) list -> unit
(** Apply each snapshot at its absolute time. *)

type interp =
  | Hold_last  (** each trace sample holds until the next one *)
  | Linear of { substep : float }
      (** linearly interpolate delay/bandwidth/plr between consecutive
          same-hop-count samples, applied every [substep] seconds;
          reroutes (hop-count changes) remain steps *)

val snapshot_of_hops : max_hops:int -> Path_trace.hop array -> snapshot
(** Truncate to [max_hops] and convert Mbps rates to {!Bandwidth.t}
    (trace hops are already Consumer side first). *)

val schedule_trace : ?interp:interp -> t -> Path_trace.t -> unit
(** Replay a recorded timeline: schedule every route sample (under the
    interpolation policy, default {!Hold_last}) and turn every outage
    interval into a chain-wide link-down window via
    {!Leotp_sim.Fault.install}, so going dark drops in-flight packets
    exactly like an injected fault. *)

val active_hops : t -> int
val switch_count : t -> int
