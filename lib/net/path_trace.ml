type kind = Gsl | Isl
type hop = { delay : float; bw_mbps : float; plr : float; kind : kind }
type event = Route of { hops : hop array; handover : bool } | No_route
type record = { time : float; event : event }

type meta = {
  seed : int;
  src : string;
  dst : string;
  isls : bool;
  step : float;
  horizon : float;
}

type t = { meta : meta; records : record list }

let version = 1
let schema_name = "TRACE_PATH"

(* ------------------------------------------------------------------ *)
(* Writer.  Canonical layout, fixed key order, "%.17g" floats: parsing
   and re-printing a trace reproduces it byte for byte. *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      if Char.code c < 0x20 then
        invalid_arg "Path_trace: control character in string field"
      else begin
        if c = '"' || c = '\\' then Buffer.add_char b '\\';
        Buffer.add_char b c
      end)
    s;
  Buffer.contents b

let kind_to_string = function Gsl -> "gsl" | Isl -> "isl"

let add_header b m =
  Printf.bprintf b
    "{\"schema\":\"%s\",\"version\":%d,\"seed\":%d,\"src\":\"%s\",\"dst\":\"%s\",\"isls\":%b,\"step\":%.17g,\"horizon\":%.17g}\n"
    schema_name version m.seed (escape m.src) (escape m.dst) m.isls m.step
    m.horizon

let add_record b r =
  match r.event with
  | No_route -> Printf.bprintf b "{\"t\":%.17g,\"outage\":true}\n" r.time
  | Route { hops; handover } ->
    Printf.bprintf b "{\"t\":%.17g,\"hops\":[" r.time;
    Array.iteri
      (fun i h ->
        if i > 0 then Buffer.add_char b ',';
        Printf.bprintf b "{\"d\":%.17g,\"bw\":%.17g,\"plr\":%.17g,\"k\":\"%s\"}"
          h.delay h.bw_mbps h.plr (kind_to_string h.kind))
      hops;
    Printf.bprintf b "],\"ho\":%b}\n" handover

let to_string t =
  let b = Buffer.create (4096 + (List.length t.records * 96)) in
  add_header b t.meta;
  List.iter (add_record b) t.records;
  Buffer.contents b

let to_file t path =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Strict line/field parser.  No JSON library in the tree; the grammar
   is the canonical writer output, so the cursor expects exact keys in
   order and reports the first mismatch with its line and column. *)

exception Bad of string

type cursor = { buf : string; mutable pos : int; lineno : int }

let fail cur fmt =
  Printf.ksprintf
    (fun m -> raise (Bad (Printf.sprintf "line %d: %s" cur.lineno m)))
    fmt

let expect cur lit =
  let n = String.length lit in
  if cur.pos + n <= String.length cur.buf && String.sub cur.buf cur.pos n = lit
  then cur.pos <- cur.pos + n
  else fail cur "expected %s at column %d" lit (cur.pos + 1)

let key cur name = expect cur (Printf.sprintf "\"%s\":" name)

let looking_at cur lit =
  let n = String.length lit in
  cur.pos + n <= String.length cur.buf && String.sub cur.buf cur.pos n = lit

let is_num_char c =
  (c >= '0' && c <= '9') || c = '+' || c = '-' || c = '.' || c = 'e' || c = 'E'

let number cur ~what =
  let start = cur.pos in
  while cur.pos < String.length cur.buf && is_num_char cur.buf.[cur.pos] do
    cur.pos <- cur.pos + 1
  done;
  if cur.pos = start then fail cur "expected a number for %S" what;
  match float_of_string_opt (String.sub cur.buf start (cur.pos - start)) with
  | Some f when Float.is_finite f -> f
  | _ ->
    fail cur "%S is not a finite number for %S"
      (String.sub cur.buf start (cur.pos - start))
      what

let int_field cur ~what =
  let start = cur.pos in
  while
    cur.pos < String.length cur.buf
    && ((cur.buf.[cur.pos] >= '0' && cur.buf.[cur.pos] <= '9')
       || cur.buf.[cur.pos] = '-')
  do
    cur.pos <- cur.pos + 1
  done;
  match int_of_string_opt (String.sub cur.buf start (cur.pos - start)) with
  | Some i -> i
  | None -> fail cur "expected an integer for %S" what

let bool_field cur ~what =
  if looking_at cur "true" then begin
    cur.pos <- cur.pos + 4;
    true
  end
  else if looking_at cur "false" then begin
    cur.pos <- cur.pos + 5;
    false
  end
  else fail cur "expected true or false for %S" what

let quoted cur ~what =
  expect cur "\"";
  let b = Buffer.create 16 in
  let rec go () =
    if cur.pos >= String.length cur.buf then
      fail cur "unterminated string for %S" what
    else begin
      let c = cur.buf.[cur.pos] in
      cur.pos <- cur.pos + 1;
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        if cur.pos >= String.length cur.buf then
          fail cur "unterminated escape in %S" what;
        let e = cur.buf.[cur.pos] in
        cur.pos <- cur.pos + 1;
        match e with
        | '"' | '\\' ->
          Buffer.add_char b e;
          go ()
        | _ -> fail cur "unsupported escape '\\%c' in %S" e what
      end
      else if Char.code c < 0x20 then fail cur "control character in %S" what
      else begin
        Buffer.add_char b c;
        go ()
      end
    end
  in
  go ()

let eol cur =
  if cur.pos <> String.length cur.buf then
    fail cur "trailing characters at column %d" (cur.pos + 1)

let parse_header line =
  let cur = { buf = line; pos = 0; lineno = 1 } in
  expect cur "{";
  key cur "schema";
  let schema = quoted cur ~what:"schema" in
  if schema <> schema_name then
    fail cur "unknown schema %S (expected %S)" schema schema_name;
  expect cur ",";
  key cur "version";
  let v = int_field cur ~what:"version" in
  if v <> version then
    fail cur "unsupported %s version %d (this reader supports %d)" schema_name
      v version;
  expect cur ",";
  key cur "seed";
  let seed = int_field cur ~what:"seed" in
  expect cur ",";
  key cur "src";
  let src = quoted cur ~what:"src" in
  expect cur ",";
  key cur "dst";
  let dst = quoted cur ~what:"dst" in
  expect cur ",";
  key cur "isls";
  let isls = bool_field cur ~what:"isls" in
  expect cur ",";
  key cur "step";
  let step = number cur ~what:"step" in
  if step <= 0.0 then fail cur "\"step\" must be positive";
  expect cur ",";
  key cur "horizon";
  let horizon = number cur ~what:"horizon" in
  if horizon < 0.0 then fail cur "\"horizon\" must be non-negative";
  expect cur "}";
  eol cur;
  { seed; src; dst; isls; step; horizon }

let parse_hop cur =
  expect cur "{";
  key cur "d";
  let delay = number cur ~what:"d" in
  if delay < 0.0 then fail cur "\"d\" (hop delay) must be non-negative";
  expect cur ",";
  key cur "bw";
  let bw_mbps = number cur ~what:"bw" in
  if bw_mbps <= 0.0 then fail cur "\"bw\" (hop bandwidth) must be positive";
  expect cur ",";
  key cur "plr";
  let plr = number cur ~what:"plr" in
  if plr < 0.0 || plr > 1.0 then fail cur "\"plr\" must be within [0, 1]";
  expect cur ",";
  key cur "k";
  let kind =
    match quoted cur ~what:"k" with
    | "gsl" -> Gsl
    | "isl" -> Isl
    | other -> fail cur "unknown link kind %S (expected \"gsl\" or \"isl\")" other
  in
  expect cur "}";
  { delay; bw_mbps; plr; kind }

let parse_record ~lineno line =
  let cur = { buf = line; pos = 0; lineno } in
  expect cur "{";
  key cur "t";
  let time = number cur ~what:"t" in
  expect cur ",";
  if looking_at cur "\"outage\"" then begin
    key cur "outage";
    expect cur "true";
    expect cur "}";
    eol cur;
    { time; event = No_route }
  end
  else begin
    key cur "hops";
    expect cur "[";
    if looking_at cur "]" then fail cur "\"hops\" must not be empty";
    let rec hops acc =
      let h = parse_hop cur in
      if looking_at cur "," then begin
        cur.pos <- cur.pos + 1;
        hops (h :: acc)
      end
      else begin
        expect cur "]";
        List.rev (h :: acc)
      end
    in
    let hs = hops [] in
    expect cur ",";
    key cur "ho";
    let handover = bool_field cur ~what:"ho" in
    expect cur "}";
    eol cur;
    { time; event = Route { hops = Array.of_list hs; handover } }
  end

let of_string s =
  let lines = String.split_on_char '\n' s in
  (* A canonical trace ends with a newline: drop the final empty chunk
     only. *)
  let lines =
    match List.rev lines with "" :: rev -> List.rev rev | _ -> lines
  in
  match lines with
  | [] -> Error "line 1: empty trace"
  | header :: rest -> (
    try
      let meta = parse_header header in
      let _, records =
        List.fold_left
          (fun (lineno, acc) line ->
            let r = parse_record ~lineno line in
            (match acc with
            | prev :: _ ->
              if r.time <= prev.time then
                raise
                  (Bad
                     (Printf.sprintf
                        "line %d: record times must be strictly increasing \
                         (%.17g after %.17g)"
                        lineno r.time prev.time))
            | [] ->
              if r.time < 0.0 then
                raise
                  (Bad
                     (Printf.sprintf "line %d: record time must be >= 0"
                        lineno)));
            (lineno + 1, r :: acc))
          (2, []) rest
      in
      Ok { meta; records = List.rev records }
    with Bad m -> Error m)

let of_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Derived statistics. *)

let route_count t =
  List.fold_left
    (fun acc r -> match r.event with Route _ -> acc + 1 | No_route -> acc)
    0 t.records

let handover_times t =
  List.filter_map
    (fun r ->
      match r.event with
      | Route { handover = true; _ } -> Some r.time
      | Route _ | No_route -> None)
    t.records

let handover_count t = List.length (handover_times t)

let outage_intervals t =
  (* [run_start] is the first dark sample of the current run; a run is
     closed by the next route sample (or by trace end, plus one step). *)
  let rec go run_start last_dark acc = function
    | [] -> (
      match run_start with
      | Some a -> List.rev ((a, last_dark +. t.meta.step) :: acc)
      | None -> List.rev acc)
    | r :: rest -> (
      match (r.event, run_start) with
      | No_route, None -> go (Some r.time) r.time acc rest
      | No_route, Some _ -> go run_start r.time acc rest
      | Route _, Some a -> go None 0.0 ((a, r.time) :: acc) rest
      | Route _, None -> go None 0.0 acc rest)
  in
  go None 0.0 [] t.records

let outage_fraction t =
  match t.records with
  | [] -> 0.0
  | _ ->
    let dark =
      List.fold_left
        (fun acc r ->
          match r.event with No_route -> acc + 1 | Route _ -> acc)
        0 t.records
    in
    float_of_int dark /. float_of_int (List.length t.records)

let max_hop_count t =
  List.fold_left
    (fun acc r ->
      match r.event with
      | Route { hops; _ } -> max acc (Array.length hops)
      | No_route -> acc)
    0 t.records

let mean_hop_count t =
  let n, total =
    List.fold_left
      (fun (n, total) r ->
        match r.event with
        | Route { hops; _ } -> (n + 1, total + Array.length hops)
        | No_route -> (n, total))
      (0, 0) t.records
  in
  if n = 0 then Float.nan else float_of_int total /. float_of_int n

let min_total_delay t =
  List.fold_left
    (fun acc r ->
      match r.event with
      | Route { hops; _ } ->
        Float.min acc
          (Array.fold_left (fun s (h : hop) -> s +. h.delay) 0.0 hops)
      | No_route -> acc)
    Float.infinity t.records
