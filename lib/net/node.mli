(** Network nodes.

    A node owns a routing table (destination node id -> egress link) and a
    packet handler.  The default handler forwards toward the packet's
    destination; transport protocols (TCP endpoints, LEOTP Consumer /
    Midnode / Producer) replace the handler with their own logic and call
    {!send} to hand packets back to the network. *)

type t

val create : name:string -> t
(** Node ids are assigned from a domain-local counter; {!reset_ids}
    restarts it between experiments so ids stay small and deterministic,
    including when independent experiments run on parallel domains. *)

val reset_ids : unit -> unit
val id : t -> int
val name : t -> string

val add_route : t -> dst:int -> Link.t -> unit

val remove_route : t -> dst:int -> unit
(** Drop the route toward [dst] (no-op when absent).  Flow retirement uses
    this to unwire per-flow entries from shared gateway nodes; packets
    still in flight toward [dst] then die as {!no_route_drops}. *)

val route_to : t -> dst:int -> Link.t option
val clear_routes : t -> unit

val set_handler : t -> (from:int -> Packet.t -> unit) -> unit
(** [from] is the node id of the upstream end of the delivering link. *)

val receive : t -> from:int -> Packet.t -> unit

val send : t -> Packet.t -> unit
(** Route by [pkt.dst] and transmit.  Packets with no route are counted in
    {!no_route_drops} and dropped (happens transiently during rerouting). *)

val no_route_drops : t -> int

val forward : t -> from:int -> Packet.t -> unit
(** The default handler: deliver locally is impossible for a plain node, so
    everything is routed onward. *)
