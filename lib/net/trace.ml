type drop_reason = Tail | Error | Flush | Down
type seg_state = Seg_sent | Seg_retx | Seg_lost

type event =
  | Link_enq of { link : string; pkt : int; size : int }
  | Link_drop of { link : string; pkt : int; reason : drop_reason }
  | Link_deliver of { link : string; pkt : int; size : int }
  | Link_dup of { link : string; pkt : int }
  | Link_final of {
      link : string;
      offered : int;
      delivered : int;
      dropped : int;
      dups : int;
      queued : int;
      in_flight : int;
    }
  | Pit_register of {
      node : string;
      flow : int;
      lo : int;
      hi : int;
      forwarded : bool;
      expiry : float;
      pending : int;
    }
  | Pit_satisfy of {
      node : string;
      flow : int;
      lo : int;
      hi : int;
      fresh : bool;
      age : float;
      pending : int;
    }
  | Pit_expire of { node : string; flow : int; lo : int; hi : int; pending : int }
  | Cache_occupancy of { node : string; used : int; capacity : int }
  | Deliver of { node : int; flow : int; pos : int; len : int }
  | Complete of { node : int; flow : int; bytes : int }
  | Rto_fire of { who : string; elapsed : float; floor : float }
  | Ack_processed of {
      who : string;
      flow : int;
      cc : string;
      phase : string;
      cum_ack : int;
      sacks : (int * int) list;
      rtt : float option;
      snd_una : int;
      inflight : int;
      lost_pending : int;
      cwnd : float;
      rto : float;
    }
  | Seg_state of {
      who : string;
      flow : int;
      seq : int;
      len : int;
      state : seg_state;
    }
  | Fault of { what : string }
  | Note of { what : string }

type record = { seq : int; time : float; event : event }

type t = {
  capacity : int;
  digesting : bool;
  mutable ring : record array;  (** allocated lazily at first emit *)
  mutable len : int;
  mutable next : int;
  mutable seq : int;
  mutable digest : int64;
  mutable clock : unit -> float;
  mutable sinks : (record -> unit) list;
}

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let create ?(capacity = 65536) ?(digesting = true) () =
  {
    capacity = max 1 capacity;
    digesting;
    ring = [||];
    len = 0;
    next = 0;
    seq = 0;
    digest = fnv_offset;
    clock = (fun () -> 0.0);
    sinks = [];
  }

let set_clock t f = t.clock <- f
let add_sink t sink = t.sinks <- t.sinks @ [ sink ]

(* Domain-local recorder, mirroring the Packet/Node id counters so that
   parallel sweep cells never observe each other. *)
let current : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let install t = Domain.DLS.get current := Some t
let uninstall () = Domain.DLS.get current := None
let installed () = !(Domain.DLS.get current)

(* A recorder that neither digests nor feeds a sink observes nothing:
   [on] reports false for it so hot-path call sites skip event
   construction entirely — the allocation-free-when-disabled contract. *)
let enabled t = t.digesting || t.sinks <> []

let on () =
  match !(Domain.DLS.get current) with None -> false | Some t -> enabled t

(* %.17g round-trips any float (same convention as the BENCH records). *)
let fl x = Printf.sprintf "%.17g" x

let reason_name = function
  | Tail -> "tail"
  | Error -> "error"
  | Flush -> "flush"
  | Down -> "down"

let json_of_event = function
  | Link_enq { link; pkt; size } ->
    Printf.sprintf "\"ev\":\"link_enq\",\"link\":%S,\"pkt\":%d,\"size\":%d" link
      pkt size
  | Link_drop { link; pkt; reason } ->
    Printf.sprintf "\"ev\":\"link_drop\",\"link\":%S,\"pkt\":%d,\"reason\":%S"
      link pkt (reason_name reason)
  | Link_deliver { link; pkt; size } ->
    Printf.sprintf "\"ev\":\"link_deliver\",\"link\":%S,\"pkt\":%d,\"size\":%d"
      link pkt size
  | Link_dup { link; pkt } ->
    Printf.sprintf "\"ev\":\"link_dup\",\"link\":%S,\"pkt\":%d" link pkt
  | Link_final { link; offered; delivered; dropped; dups; queued; in_flight } ->
    Printf.sprintf
      "\"ev\":\"link_final\",\"link\":%S,\"offered\":%d,\"delivered\":%d,\"dropped\":%d,\"dups\":%d,\"queued\":%d,\"in_flight\":%d"
      link offered delivered dropped dups queued in_flight
  | Pit_register { node; flow; lo; hi; forwarded; expiry; pending } ->
    Printf.sprintf
      "\"ev\":\"pit_register\",\"node\":%S,\"flow\":%d,\"lo\":%d,\"hi\":%d,\"forwarded\":%b,\"expiry\":%s,\"pending\":%d"
      node flow lo hi forwarded (fl expiry) pending
  | Pit_satisfy { node; flow; lo; hi; fresh; age; pending } ->
    Printf.sprintf
      "\"ev\":\"pit_satisfy\",\"node\":%S,\"flow\":%d,\"lo\":%d,\"hi\":%d,\"fresh\":%b,\"age\":%s,\"pending\":%d"
      node flow lo hi fresh (fl age) pending
  | Pit_expire { node; flow; lo; hi; pending } ->
    Printf.sprintf
      "\"ev\":\"pit_expire\",\"node\":%S,\"flow\":%d,\"lo\":%d,\"hi\":%d,\"pending\":%d"
      node flow lo hi pending
  | Cache_occupancy { node; used; capacity } ->
    Printf.sprintf
      "\"ev\":\"cache_occupancy\",\"node\":%S,\"used\":%d,\"capacity\":%d" node
      used capacity
  | Deliver { node; flow; pos; len } ->
    Printf.sprintf
      "\"ev\":\"deliver\",\"node\":%d,\"flow\":%d,\"pos\":%d,\"len\":%d" node
      flow pos len
  | Complete { node; flow; bytes } ->
    Printf.sprintf "\"ev\":\"complete\",\"node\":%d,\"flow\":%d,\"bytes\":%d"
      node flow bytes
  | Rto_fire { who; elapsed; floor } ->
    Printf.sprintf "\"ev\":\"rto_fire\",\"who\":%S,\"elapsed\":%s,\"floor\":%s"
      who (fl elapsed) (fl floor)
  | Ack_processed
      {
        who;
        flow;
        cc;
        phase;
        cum_ack;
        sacks;
        rtt;
        snd_una;
        inflight;
        lost_pending;
        cwnd;
        rto;
      } ->
    Printf.sprintf
      "\"ev\":\"ack_processed\",\"who\":%S,\"flow\":%d,\"cc\":%S,\"phase\":%S,\"cum_ack\":%d,\"sacks\":[%s],\"rtt\":%s,\"snd_una\":%d,\"inflight\":%d,\"lost_pending\":%d,\"cwnd\":%s,\"rto\":%s"
      who flow cc phase cum_ack
      (String.concat ","
         (List.map (fun (lo, hi) -> Printf.sprintf "[%d,%d]" lo hi) sacks))
      (match rtt with Some r -> fl r | None -> "null")
      snd_una inflight lost_pending (fl cwnd) (fl rto)
  | Seg_state { who; flow; seq; len; state } ->
    Printf.sprintf
      "\"ev\":\"seg_state\",\"who\":%S,\"flow\":%d,\"seq\":%d,\"len\":%d,\"state\":%S"
      who flow seq len
      (match state with
      | Seg_sent -> "sent"
      | Seg_retx -> "retx"
      | Seg_lost -> "lost")
  | Fault { what } -> Printf.sprintf "\"ev\":\"fault\",\"what\":%S" what
  | Note { what } -> Printf.sprintf "\"ev\":\"note\",\"what\":%S" what

let json_of_record (r : record) =
  Printf.sprintf "{\"seq\":%d,\"t\":%s,%s}" r.seq (fl r.time)
    (json_of_event r.event)

let record t event =
  let r = { seq = t.seq; time = t.clock (); event } in
  t.seq <- t.seq + 1;
  if t.digesting then begin
    t.digest <- fnv1a64 t.digest (json_of_record r);
    t.digest <- fnv1a64 t.digest "\n"
  end;
  if Array.length t.ring = 0 then t.ring <- Array.make t.capacity r;
  t.ring.(t.next) <- r;
  t.next <- (t.next + 1) mod t.capacity;
  if t.len < t.capacity then t.len <- t.len + 1;
  List.iter (fun sink -> sink r) t.sinks

let emit ev =
  match installed () with
  | None -> ()
  | Some t -> if enabled t then record t ev

let with_recorder t ~clock f =
  t.clock <- clock;
  install t;
  Fun.protect ~finally:uninstall f

let records t =
  let start = (t.next - t.len + t.capacity) mod t.capacity in
  List.init t.len (fun i -> t.ring.((start + i) mod t.capacity))

let count t = t.seq
let digest t = Printf.sprintf "%016Lx" t.digest

let write_jsonl t oc =
  List.iter
    (fun r ->
      output_string oc (json_of_record r);
      output_char oc '\n')
    (records t)
