type stats = {
  mutable packets_in : int;
  mutable packets_delivered : int;
  mutable bytes_delivered : int;
  mutable drops_tail : int;
  mutable drops_error : int;
  mutable drops_flush : int;
  mutable drops_down : int;
  mutable dups : int;
  queue_delay : Leotp_util.Stats.t;
}

type t = {
  engine : Leotp_sim.Engine.t;
  name : string;
  src : int;
  dst : int;
  mutable bandwidth : Bandwidth.t;
  mutable delay : float;
  mutable plr : float;
  mutable buffer_bytes : int;
  mutable up : bool;
  mutable dup_prob : float;
  mutable reorder_prob : float;
  mutable reorder_jitter : float;
  rng : Leotp_util.Rng.t;
  queue : Pkt_queue.t;
      (** enqueue time rides in each packet's [Packet.link_slot] float
          slot — a packet has exactly one owner, so the slot is free
          while it sits in this queue *)
  mutable queued_bytes : int;
  mutable busy : bool;
  mutable in_flight : int;
      (** taken off the queue, delivery (or drop) not yet resolved *)
  mutable epoch : int;
  mutable sink : Packet.t -> unit;
  stats : stats;
}

let create engine ~name ~src ~dst ~bandwidth ~delay ?(plr = 0.0)
    ?(buffer_bytes = 256 * 1024) ~rng () =
  {
    engine;
    name;
    src;
    dst;
    bandwidth;
    delay;
    plr;
    buffer_bytes;
    up = true;
    dup_prob = 0.0;
    reorder_prob = 0.0;
    reorder_jitter = 0.0;
    rng;
    queue = Pkt_queue.create ();
    queued_bytes = 0;
    busy = false;
    in_flight = 0;
    epoch = 0;
    sink = (fun _ -> ());
    stats =
      {
        packets_in = 0;
        packets_delivered = 0;
        bytes_delivered = 0;
        drops_tail = 0;
        drops_error = 0;
        drops_flush = 0;
        drops_down = 0;
        dups = 0;
        queue_delay = Leotp_util.Stats.create ();
      };
  }

let set_sink t sink = t.sink <- sink
let src t = t.src
let dst t = t.dst
let name t = t.name
let delay t = t.delay
let set_delay t d = t.delay <- d
let plr t = t.plr
let set_plr t p = t.plr <- p
let bandwidth t = t.bandwidth
let set_bandwidth t b = t.bandwidth <- b
let current_rate t = Bandwidth.at t.bandwidth (Leotp_sim.Engine.now t.engine)
let set_buffer_bytes t n = t.buffer_bytes <- n
let queue_bytes t = t.queued_bytes
let queued_packets t = Pkt_queue.length t.queue
let in_flight t = t.in_flight
let stats t = t.stats
let up t = t.up
let set_dup_prob t p = t.dup_prob <- p

let set_reorder t ~prob ~jitter =
  t.reorder_prob <- prob;
  t.reorder_jitter <- jitter

let trace_drop t pkt reason =
  if Trace.on () then
    Trace.emit (Trace.Link_drop { link = t.name; pkt = pkt.Packet.id; reason })

(* Every dropped packet dies here: the link owns it, so the record goes
   straight back to the pool. *)
let drop t pkt reason =
  trace_drop t pkt reason;
  Packet_pool.release pkt

let deliver t pkt =
  t.stats.packets_delivered <- t.stats.packets_delivered + 1;
  t.stats.bytes_delivered <- t.stats.bytes_delivered + pkt.Packet.size;
  if Trace.on () then
    Trace.emit
      (Trace.Link_deliver
         { link = t.name; pkt = pkt.Packet.id; size = pkt.Packet.size });
  t.sink pkt

let rec start_transmission t =
  if (not t.busy) && not (Pkt_queue.is_empty t.queue) then begin
    let pkt = Pkt_queue.pop t.queue in
    let enqueued_at = pkt.Packet.f.(Packet.link_slot) in
    t.queued_bytes <- t.queued_bytes - pkt.Packet.size;
    t.busy <- true;
    t.in_flight <- t.in_flight + 1;
    let now = Leotp_sim.Engine.now t.engine in
    Leotp_util.Stats.add t.stats.queue_delay (now -. enqueued_at);
    let rate = Float.max 1.0 (Bandwidth.at t.bandwidth now) in
    let tx_time = float_of_int pkt.Packet.size /. rate in
    let epoch = t.epoch in
    ignore
      (* the transmission-completion event is this closure — one per
         packet per hop is the cost of discrete-event simulation *)
      (Leotp_sim.Engine.schedule t.engine ~after:tx_time
         ((fun () -> complete_transmission t pkt epoch)
         [@leotp.allow "hot-path-may-alloc"]))
  end

and complete_transmission t pkt epoch =
  t.busy <- false;
  if epoch = t.epoch then begin
    (* Corruption consumes the hop's bandwidth but the packet vanishes. *)
    if Leotp_util.Rng.bernoulli t.rng t.plr then begin
      t.stats.drops_error <- t.stats.drops_error + 1;
      t.in_flight <- t.in_flight - 1;
      drop t pkt Trace.Error
    end
    else begin
      let arrival_epoch = t.epoch in
      (* Fault-injected reordering: an extra one-off propagation delay
         lets later packets overtake this one. *)
      let extra =
        if Leotp_util.Rng.bernoulli t.rng t.reorder_prob then
          Leotp_util.Rng.float t.rng t.reorder_jitter
        else 0.0
      in
      ignore
        (* the propagation event is this closure — one per packet per hop
           is the cost of discrete-event simulation, not an oversight *)
        (Leotp_sim.Engine.schedule t.engine ~after:(t.delay +. extra)
           ((fun () ->
             t.in_flight <- t.in_flight - 1;
             if arrival_epoch = t.epoch then begin
               (* Fault-injected duplication at the receiving end.  The
                  dup decision and the copy are taken *before* the first
                  delivery: its sink chain consumes (and may recycle) the
                  record.  Nothing in the synchronous deliver cascade
                  draws from this rng, so hoisting the bernoulli draw
                  leaves the stream — and the trace — bit-identical. *)
               if Leotp_util.Rng.bernoulli t.rng t.dup_prob then begin
                 let copy = Packet_pool.clone pkt in
                 deliver t pkt;
                 t.stats.dups <- t.stats.dups + 1;
                 if Trace.on () then
                   Trace.emit
                     (Trace.Link_dup { link = t.name; pkt = copy.Packet.id });
                 deliver t copy
               end
               else deliver t pkt
             end
             else begin
               t.stats.drops_flush <- t.stats.drops_flush + 1;
               drop t pkt Trace.Flush
             end) [@leotp.allow "hot-path-may-alloc"]))
    end
  end
  else begin
    t.stats.drops_flush <- t.stats.drops_flush + 1;
    t.in_flight <- t.in_flight - 1;
    drop t pkt Trace.Flush
  end;
  start_transmission t

let send t pkt =
  t.stats.packets_in <- t.stats.packets_in + 1;
  if Trace.on () then
    Trace.emit
      (Trace.Link_enq
         { link = t.name; pkt = pkt.Packet.id; size = pkt.Packet.size });
  if not t.up then begin
    t.stats.drops_down <- t.stats.drops_down + 1;
    drop t pkt Trace.Down
  end
  else if t.queued_bytes + pkt.Packet.size > t.buffer_bytes then begin
    t.stats.drops_tail <- t.stats.drops_tail + 1;
    drop t pkt Trace.Tail
  end
  else begin
    pkt.Packet.f.(Packet.link_slot) <- Leotp_sim.Engine.now t.engine;
    Pkt_queue.push t.queue pkt;
    t.queued_bytes <- t.queued_bytes + pkt.Packet.size;
    start_transmission t
  end

(* Runs on path switch (handover timescale), not per packet. *)
let flush t =
  t.epoch <- t.epoch + 1;
  t.stats.drops_flush <- t.stats.drops_flush + Pkt_queue.length t.queue;
  Pkt_queue.iter
    ((fun pkt -> drop t pkt Trace.Flush) [@leotp.allow "hot-path-may-alloc"])
    t.queue;
  Pkt_queue.clear t.queue;
  t.queued_bytes <- 0

let set_up t v =
  if v && not t.up then t.up <- true
  else if (not v) && t.up then begin
    (* Going down flushes everything queued and in flight. *)
    flush t;
    t.up <- false
  end

let trace_final t =
  if Trace.on () then
    Trace.emit
      (Trace.Link_final
         {
           link = t.name;
           offered = t.stats.packets_in;
           delivered = t.stats.packets_delivered;
           dropped =
             t.stats.drops_tail + t.stats.drops_error + t.stats.drops_flush
             + t.stats.drops_down;
           dups = t.stats.dups;
           queued = Pkt_queue.length t.queue;
           in_flight = t.in_flight;
         })
