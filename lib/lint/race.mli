(** leotp-race: interprocedural domain-safety analysis (the [--race]
    pass of [leotp_lint.exe]).

    Reports rule ["domain-unsafe-access"] (error) for every access to a
    top-level mutable value — a [ref] / [Hashtbl] / array / queue
    creator, or a binding some code field-assigns — that is transitively
    reachable from a domain entrypoint (a closure passed to
    [Domain.spawn] or [Domain_pool.submit]/[run]/[map]) and is not
    provably inside a critical section ([Guarded.with_]/[await]/[get]/
    [set], an [Atomic]/[Atomic_counter] operation, or code sequenced
    after [Mutex.lock]).  Each finding's message carries a witness
    path: entrypoint → call chain → access site.

    Suppress individual findings with an item-level
    [[@leotp.allow "domain-unsafe-access"]] at the access site.

    The analysis is syntactic and interprocedural but not higher-order:
    thunks stored in data structures (e.g. the job lists handed to
    {!Leotp_scenario.Runner.map}) are not followed — the dynamic
    [--jobs 1] vs [--jobs N] digest-identity tests remain the backstop
    for those. *)

val rule_id : string
(** ["domain-unsafe-access"] *)

val analyze : (string * Ppxlib.structure) list -> Finding.t list
(** Analyze a set of parsed units ([(path, structure)]); order of the
    input does not matter (findings are sorted and deduplicated). *)

val analyze_sources : (string * string) list -> Finding.t list
(** Parse and analyze in-memory sources ([(path, contents)]); units
    that fail to parse are skipped (use {!Engine.lint_source} to
    surface those). *)

val scan : string list -> Finding.t list
(** Recursively analyze every [.ml] under the given files/directories,
    with the same walk as {!Engine.scan}.  Unreadable or unparseable
    files are skipped here because {!Engine.scan} already reports them
    as [parse-error] findings. *)
