(* Driver: parse each .ml with the ppxlib parser, collect
   [@leotp.allow] suppressions, run every applicable rule, and filter
   the raw diagnostics through the suppressions. *)

open Ppxlib

let attr_name = "leotp.allow"

(* A scoped suppression: rule [rule] is allowed anywhere inside the
   character range [start_c, end_c] of the file. *)
type allow = { rule : string; start_c : int; end_c : int }

type allows = {
  mutable file_level : string list;  (* [@@@leotp.allow] — whole file *)
  mutable scoped : allow list;
  mutable malformed : Location.t list;
  mutable unknown : (string * Location.t) list;
}

let payload_rule (attr : attribute) =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    Some s
  | _ -> None

let note_attrs acc ~(range : Location.t) ~file_level attrs =
  List.iter
    (fun (attr : attribute) ->
      if attr.attr_name.txt = attr_name then
        match payload_rule attr with
        | None -> acc.malformed <- attr.attr_loc :: acc.malformed
        | Some rule ->
          if not (List.mem rule Rules.known_ids) then
            acc.unknown <- (rule, attr.attr_loc) :: acc.unknown;
          if file_level then acc.file_level <- rule :: acc.file_level
          else
            acc.scoped <-
              {
                rule;
                start_c = range.loc_start.pos_cnum;
                end_c = range.loc_end.pos_cnum;
              }
              :: acc.scoped)
    attrs

let collect_allows st =
  let acc = { file_level = []; scoped = []; malformed = []; unknown = [] } in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! structure_item si =
        (match si.pstr_desc with
        | Pstr_attribute attr ->
          note_attrs acc ~range:si.pstr_loc ~file_level:true [ attr ]
        | Pstr_eval (_, attrs) ->
          note_attrs acc ~range:si.pstr_loc ~file_level:false attrs
        | _ -> ());
        super#structure_item si

      method! expression e =
        note_attrs acc ~range:e.pexp_loc ~file_level:false e.pexp_attributes;
        super#expression e

      method! value_binding vb =
        note_attrs acc ~range:vb.pvb_loc ~file_level:false vb.pvb_attributes;
        super#value_binding vb

      method! module_binding mb =
        note_attrs acc ~range:mb.pmb_loc ~file_level:false mb.pmb_attributes;
        super#module_binding mb
    end
  in
  it#structure st;
  acc

let suppressed allows ~rule ~(loc : Location.t) =
  List.mem rule allows.file_level
  || List.exists
       (fun a ->
         a.rule = rule
         && a.start_c <= loc.loc_start.pos_cnum
         && loc.loc_start.pos_cnum <= a.end_c)
       allows.scoped

let finding_of ~path ~rule ~(severity : Finding.severity) ~(loc : Location.t)
    message =
  {
    Finding.rule;
    severity;
    file = path;
    line = loc.loc_start.pos_lnum;
    col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
    message;
  }

let parse_error ~path msg =
  { Finding.rule = "parse-error"; severity = Error; file = path; line = 1;
    col = 0; message = msg }

let parse_impl ~path contents =
  let lexbuf = Lexing.from_string contents in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | st -> Ok st
  | exception exn ->
    let msg =
      match Location.Error.of_exn exn with
      | Some e -> Location.Error.message e
      | None -> Printexc.to_string exn
    in
    Error msg

let lint_source ~path ?mli_exists contents =
  match parse_impl ~path contents with
  | Error msg -> [ parse_error ~path ("file does not parse: " ^ msg) ]
  | Ok st ->
    let scope = Rules.scope_of_path path in
    let allows = collect_allows st in
    let raw = ref [] in
    List.iter
      (fun (r : Rules.t) ->
        if r.applies scope then
          r.check
            ~emit:(fun ~loc message ->
              raw := (r.id, r.severity, loc, message) :: !raw)
            st)
      Rules.all;
    let findings =
      List.filter_map
        (fun (rule, severity, loc, message) ->
          if suppressed allows ~rule ~loc then None
          else Some (finding_of ~path ~rule ~severity ~loc message))
        !raw
    in
    (* missing-interface is a file-system property, not an AST one. *)
    let findings =
      match mli_exists with
      | Some false
        when Rules.scope_of_path path = Lib
             && not (List.mem Rules.missing_interface_id allows.file_level) ->
        {
          Finding.rule = Rules.missing_interface_id;
          severity = Warning;
          file = path;
          line = 1;
          col = 0;
          message =
            "module has no .mli; add one (or a justified \
             [@@@leotp.allow \"missing-interface\"]) so the public \
             surface is explicit";
        }
        :: findings
      | _ -> findings
    in
    let findings =
      List.map
        (fun loc ->
          finding_of ~path ~rule:"malformed-allow" ~severity:Error ~loc
            "malformed [@leotp.allow] payload; expected a single string \
             literal rule id")
        allows.malformed
      @ List.map
          (fun (rule, loc) ->
            finding_of ~path ~rule:"unknown-rule" ~severity:Warning ~loc
              (Printf.sprintf
                 "[@leotp.allow %S] names no known rule (known: %s)" rule
                 (String.concat ", " Rules.known_ids)))
          allows.unknown
      @ findings
    in
    List.sort_uniq Finding.compare findings

let lint_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> [ parse_error ~path ("cannot read: " ^ msg) ]
  | contents ->
    lint_source ~path ~mli_exists:(Sys.file_exists (path ^ "i")) contents

let skip_dirs = [ "_build"; ".git"; "_opam"; "node_modules" ]

let rec ml_files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.filter (fun name ->
           (not (List.mem name skip_dirs)) && name.[0] <> '.')
    |> List.concat_map (fun name -> ml_files_under (Filename.concat path name))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

type report = { files : int; findings : Finding.t list }

let scan paths =
  let files =
    List.concat_map
      (fun p ->
        if Sys.file_exists p then ml_files_under p
        else [ (* surface missing roots as findings, not silence *) p ])
      paths
    |> List.sort_uniq String.compare
  in
  let findings =
    List.concat_map
      (fun f ->
        if Sys.file_exists f then lint_file f
        else [ parse_error ~path:f "no such file or directory" ])
      files
  in
  (* sort_uniq: identical findings from re-scanned files collapse, and
     repeated runs emit byte-identical reports. *)
  {
    files = List.length files;
    findings = List.sort_uniq Finding.compare findings;
  }
