(* leotp-own: interprocedural packet-ownership, allocation-effect and
   time-taint analysis.

   Three rule families share one syntactic substrate (per-file function
   defs with parameter lists and bodies, resolved across files with
   Callgraph.resolves, exactly like Race):

   (a) ownership — every [Packet.t] born at [Packet_pool.acquire] /
       [clone] has exactly one owner.  A fixpoint over the call graph
       infers a role per function parameter: [Consumes] (the callee
       releases it), [Transfers] (the callee hands it to a registered
       sink, stores it, or returns it) or [Borrows] (reads only).
       [[@leotp.owns "consumes p"]] overrides inference.  An abstract
       walk of each body then tracks the owner bit through lets,
       branches (joined by union), loops (iterated twice) and calls,
       and reports: acquire paths on which the packet is still owned at
       the end (own-leak), a second release (own-double-release), any
       use after release (own-use-after-release), and stores into
       long-lived containers that are not registered sinks
       (own-escape).  Constructions that wrap the packet ([Some p],
       tuples) and closures that capture it transfer ownership out of
       the analysis — deferred, not flagged.

   (b) allocation effects — rule 9 only bans two allocation sites by
       name; this generalizes it to inferred may-allocate effects
       (closures, tuples, records, list cells, lazy blocks, known
       allocating stdlib calls, partial application of known functions)
       and walks them from the per-packet hot roots: the engine
       dispatch loop, [Shr.on_packet], [Seg_store] scans, [Pkt_queue]
       and the packet pool itself, plus literal closures handed to
       [Engine.schedule]/[schedule_at]/[every], [Node.set_handler] and
       [Link.set_sink] inside the datapath directories.  Error paths
       ([raise]/[failwith]/[invalid_arg]/[assert]) and debug-guarded
       branches ([if Trace.on () then ...]) are exempt.

   (c) time taint — modules are classified into strata by path: the
       sim-time stratum (everything under lib/ except lib/lint) must
       not reach wall-clock reads ([Unix.gettimeofday], [Sys.time],
       ...), even transitively through harness-stratum helpers.  The
       per-expression no-wall-clock rule already bans direct reads in
       lib/; this adds the interprocedural leg ahead of the real-socket
       backend (ROADMAP item 5).

   Like every leotp-lint pass this is best-effort syntactic analysis:
   aliasing ([let q = p]), packets smuggled through data structures and
   renamed module aliases are invisible; over-approximate name
   resolution can attach a spurious role.  Every finding carries a
   race.ml-style witness path, and the escape hatch is a justified
   [[@leotp.allow "rule-id"]] at the site. *)

open Ppxlib

let leak_id = "own-leak"
let double_id = "own-double-release"
let uar_id = "own-use-after-release"
let escape_id = "own-escape"
let annot_id = "own-annotation"
let alloc_id = "hot-path-may-alloc"
let taint_id = "time-taint"
let owns_attr = "leotp.owns"

(* ------------------------------------------------------------------ *)
(* Small name helpers (Callgraph keeps its own copies private). *)

let ident_name (lid : Longident.t) =
  match Longident.flatten_exn lid with
  | exception _ -> "_"
  | parts -> String.concat "." parts

let split name = String.split_on_char '.' name

let leaf name =
  match List.rev (split name) with l :: _ -> l | [] -> name

let rec is_suffix ~suffix l =
  let ls = List.length suffix and ll = List.length l in
  if ll < ls then false
  else if ll = ls then l = suffix
  else match l with [] -> false | _ :: tl -> is_suffix ~suffix tl

let ends_with_any names n =
  let segs = split n in
  List.exists (fun s -> is_suffix ~suffix:(split s) segs) names

let line (loc : Location.t) = loc.loc_start.pos_lnum
let col (loc : Location.t) = loc.loc_start.pos_cnum - loc.loc_start.pos_bol

(* ------------------------------------------------------------------ *)
(* Builtin knowledge: the packet pool API under both its spellings
   (lib/core aliases [module Pool = Leotp_net.Packet_pool]). *)

let acquire_fns = [ "Packet_pool.acquire"; "Pool.acquire" ]
let clone_fns = [ "Packet_pool.clone"; "Pool.clone" ]
let release_fns = [ "Packet_pool.release"; "Pool.release" ]

(* Callee suffixes that legitimately take ownership of a packet
   argument: the queue stores it (and its drop path releases it), so
   pushing is a registered transfer, not an escape. *)
let transfer_sinks = [ "Pkt_queue.push" ]

let is_acquire = ends_with_any acquire_fns
let is_clone = ends_with_any clone_fns
let is_release = ends_with_any release_fns
let is_transfer_sink = ends_with_any transfer_sinks

(* Long-lived container stores: position of the stored value among the
   arguments. *)
let container_ops =
  [
    ("Hashtbl.add", `Last);
    ("Hashtbl.replace", `Last);
    ("Array.set", `Last);
    ("Array.unsafe_set", `Last);
    ("Queue.push", `First);
    ("Queue.add", `First);
    ("Stack.push", `First);
  ]

let container_op_of n =
  List.find_opt (fun (s, _) -> ends_with_any [ s ] n) container_ops

(* Wall-clock / real-time reads (the taint sources). *)
let wall_clock_fns =
  [
    "Unix.gettimeofday";
    "Unix.time";
    "Unix.sleep";
    "Unix.sleepf";
    "Unix.select";
    "Sys.time";
    "Mtime_clock.now";
    "Mtime_clock.elapsed";
    "Ptime_clock.now";
  ]

let is_wall_clock = ends_with_any wall_clock_fns

(* Per-packet hot roots for the allocation-effect walk. *)
let hot_root_defs =
  [
    "Engine.step";
    "Engine.run_slice";
    "Shr.on_packet";
    "Seg_store.iter";
    "Seg_store.iter_from_while";
    "Seg_store.drop_below";
    "Seg_store.push_back";
    "Seg_store.find";
    "Pkt_queue.push";
    "Pkt_queue.pop";
    "Packet_pool.acquire";
    "Packet_pool.release";
    "Packet_pool.clone";
  ]

(* Sinks whose literal-closure arguments run on the per-packet path
   (timer bodies, packet handlers).  Only closures in the datapath
   directories become roots: scenario/bench setup code schedules
   closures too, but those run per flow, not per packet. *)
let hot_closure_sinks =
  [
    "Engine.schedule";
    "Engine.schedule_at";
    "Engine.every";
    "Node.set_handler";
    "Link.set_sink";
  ]

let is_hot_closure_sink = ends_with_any hot_closure_sinks

(* Sinks that stash their closure argument and run it later: ownership
   of a captured packet genuinely leaves the current activation.  Any
   other callee taking a literal closure is assumed to be a synchronous
   combinator ([List.iter], [Fun.protect], [Seg_store.iter], ...) whose
   closure runs zero or more times right here. *)
let async_capture_sinks =
  hot_closure_sinks
  @ [
      "Domain.spawn";
      "Domain_pool.run";
      "Domain_pool.async";
      "Domain_pool.submit";
      "Thread.create";
    ]

let is_async_capture = ends_with_any async_capture_sinks

let path_segs path =
  List.filter (fun s -> s <> "") (String.split_on_char '/' path)

let datapath_dirs = [ "core"; "net"; "tcp"; "gateway" ]

let in_datapath path =
  let rec scan = function
    | "lib" :: d :: _ -> List.mem d datapath_dirs
    | _ :: tl -> scan tl
    | [] -> false
  in
  scan (path_segs path)

(* Time strata: everything under lib/ except lib/lint is sim-time. *)
let sim_time_stratum path =
  match path_segs path with
  | "lib" :: "lint" :: _ -> false
  | "lib" :: _ -> true
  | _ -> false

(* Known allocating stdlib calls (suffix-matched).  Combinators that
   only *call* their argument (fold, iter) are absent: a literal
   closure argument is counted as a closure of its own. *)
let allocating_fns =
  [
    "ref";
    "List.map";
    "List.mapi";
    "List.map2";
    "List.filter";
    "List.filter_map";
    "List.concat";
    "List.concat_map";
    "List.append";
    "List.init";
    "List.rev";
    "List.rev_append";
    "List.rev_map";
    "List.sort";
    "List.sort_uniq";
    "List.stable_sort";
    "List.merge";
    "List.split";
    "List.combine";
    "List.of_seq";
    "List.to_seq";
    "Seq.map";
    "Seq.filter";
    "Seq.filter_map";
    "Seq.append";
    "Seq.concat";
    "Seq.unfold";
    "Array.make";
    "Array.init";
    "Array.append";
    "Array.concat";
    "Array.of_list";
    "Array.to_list";
    "Array.copy";
    "Array.sub";
    "Array.map";
    "Array.mapi";
    "Bytes.create";
    "Bytes.make";
    "Bytes.sub";
    "Bytes.of_string";
    "Bytes.to_string";
    "String.concat";
    "String.make";
    "String.init";
    "String.sub";
    "String.map";
    "String.split_on_char";
    "Printf.sprintf";
    "Format.asprintf";
    "Buffer.create";
    "Buffer.contents";
    "Hashtbl.create";
    "Hashtbl.copy";
    "Queue.create";
    "Queue.copy";
    "string_of_int";
    "string_of_float";
    "Float.to_string";
    "Int.to_string";
    "Option.map";
    "Option.bind";
    "Option.to_list";
    "Result.map";
    "Result.bind";
  ]

let is_allocating_call = ends_with_any allocating_fns

(* ------------------------------------------------------------------ *)
(* Ownership roles *)

type role = Borrows | Transfers | Consumes

let role_rank = function Borrows -> 0 | Transfers -> 1 | Consumes -> 2
let join_role a b = if role_rank a >= role_rank b then a else b

(* ------------------------------------------------------------------ *)
(* Def extraction *)

type fbody = Body of expression | Cases of case list

type param = {
  pname : string;  (** "_" when the pattern is not a plain variable *)
  popt : bool;  (** optional argument (affects partial-app detection) *)
  ptyped_packet : bool;  (** pattern carries a [: Packet.t] constraint *)
}

type odef = {
  ofile : string;
  oqname : string;
  oscope : string list;
  oloc : Location.t;
  oparams : param list;
  obody : fbody;
  oowns : (string * Location.t) list;  (** raw [@leotp.owns] payloads *)
  orefs : (string * Location.t) list;
      (** idents of the body, hot sub-closure ranges excluded *)
  ohot_root : bool;
  ohot_ranges : (int * int) list;
      (** char ranges of literal closures handed to hot sinks *)
  oguards : (int * int) list;
      (** char ranges of debug-gated / error-path subtrees *)
}

let binding_name (vb : value_binding) =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
  | _ -> None

let rec pat_name (p : pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (inner, _) | Ppat_alias (inner, _) -> pat_name inner
  | _ -> None

let rec pat_typed_packet (p : pattern) =
  match p.ppat_desc with
  | Ppat_constraint (inner, ty) ->
    (match ty.ptyp_desc with
    | Ptyp_constr ({ txt; _ }, _) ->
      ends_with_any [ "Packet.t" ] (ident_name txt)
    | _ -> false)
    || pat_typed_packet inner
  | _ -> false

let param_of (fp : function_param) =
  match fp.pparam_desc with
  | Pparam_val (lbl, _, pat) ->
    Some
      {
        pname = (match pat_name pat with Some n -> n | None -> "_");
        popt = (match lbl with Optional _ -> true | _ -> false);
        ptyped_packet = pat_typed_packet pat;
      }
  | Pparam_newtype _ -> None

(* Peel the (possibly nested) [fun]-chain of a binding RHS into a flat
   parameter list and the innermost body. *)
let rec peel acc (e : expression) =
  match e.pexp_desc with
  | Pexp_function (ps, _, Pfunction_body inner) -> peel (acc @ ps) inner
  | Pexp_function (ps, _, Pfunction_cases (cs, _, _)) ->
    let scrutinee = { pname = "_"; popt = false; ptyped_packet = false } in
    (List.filter_map param_of (acc @ ps) @ [ scrutinee ], Cases cs)
  | Pexp_constraint (inner, _) -> peel acc inner
  | _ -> (List.filter_map param_of acc, Body e)

let is_function (e : expression) =
  match e.pexp_desc with
  | Pexp_function _ -> true
  | Pexp_constraint ({ pexp_desc = Pexp_function _; _ }, _) -> true
  | _ -> false

let owns_payload (attr : attribute) =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    Some s
  | _ -> None

let owns_of_attrs (attrs : attributes) =
  List.filter_map
    (fun (a : attribute) ->
      if a.attr_name.txt = owns_attr then
        Some
          ((match owns_payload a with Some s -> s | None -> ""), a.attr_loc)
      else None)
    attrs

let range_of (loc : Location.t) =
  (loc.loc_start.pos_cnum, loc.loc_end.pos_cnum)

let in_range (s, e) (loc : Location.t) =
  s <= loc.loc_start.pos_cnum && loc.loc_start.pos_cnum <= e

let error_heads = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

(* A condition that gates tracing/debug-only work: allocations under
   its then-branch do not count against the steady-state hot path. *)
let debug_cond (c : expression) =
  let found = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } ->
          let n = ident_name txt in
          if
            ends_with_any [ "Trace.on"; "debug_enabled"; "self_check" ] n
            || leaf n = "debug"
          then found := true
        | _ -> ());
        super#expression e
    end
  in
  it#expression c;
  !found

(* Collect the raw idents of an expression, the literal closures passed
   to hot sinks (each becomes a synthetic hot-root def), and the char
   ranges of debug-gated / error-path subtrees (calls inside them do
   not count against the steady-state allocation effect). *)
let body_facts (body : expression) =
  let idents = ref [] in
  let hot_closures = ref [] in
  let guards = ref [] in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } ->
          idents := (ident_name txt, e.pexp_loc) :: !idents
        | Pexp_ifthenelse (c, t, _) when debug_cond c ->
          guards := range_of t.pexp_loc :: !guards
        | Pexp_assert inner -> guards := range_of inner.pexp_loc :: !guards
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
          let n = ident_name txt in
          if is_hot_closure_sink n then
            List.iter
              (fun ((_, a) : arg_label * expression) ->
                if is_function a then hot_closures := a :: !hot_closures)
              args;
          if ends_with_any error_heads n then
            guards := range_of e.pexp_loc :: !guards
        | _ -> ());
        super#expression e
    end
  in
  it#expression body;
  (List.rev !idents, List.rev !hot_closures, List.rev !guards)

let extract_defs ~path st : odef list =
  let modname = Callgraph.module_name_of_path path in
  let datapath = in_datapath path in
  let defs = ref [] in
  let rec items scope sis = List.iter (item scope) sis
  and item scope (si : structure_item) =
    match si.pstr_desc with
    | Pstr_value (_, vbs) -> List.iter (binding scope) vbs
    | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } ->
      module_expr (scope @ [ name ]) pmb_expr
    | Pstr_recmodule mbs ->
      List.iter
        (fun (mb : module_binding) ->
          match mb.pmb_name.txt with
          | Some name -> module_expr (scope @ [ name ]) mb.pmb_expr
          | None -> ())
        mbs
    | Pstr_include { pincl_mod; _ } -> module_expr scope pincl_mod
    | _ -> ()
  and module_expr scope (me : module_expr) =
    match me.pmod_desc with
    | Pmod_structure sis -> items scope sis
    | Pmod_constraint (me, _) -> module_expr scope me
    | Pmod_functor (_, me) -> module_expr scope me
    | _ -> ()
  and binding scope (vb : value_binding) =
    if is_function vb.pvb_expr then begin
      let qname =
        match binding_name vb with
        | Some n -> String.concat "." (scope @ [ n ])
        | None ->
          Printf.sprintf "%s.<top:%d>" (String.concat "." scope)
            (line vb.pvb_loc)
      in
      let params, fb = peel [] vb.pvb_expr in
      let facts_root =
        match fb with Body e -> e | Cases _ -> vb.pvb_expr
      in
      let idents, hot_closures, guards = body_facts facts_root in
      let hot_ranges =
        if datapath then
          List.map (fun (c : expression) -> range_of c.pexp_loc) hot_closures
        else []
      in
      let own_refs =
        List.filter
          (fun (_, loc) ->
            not (List.exists (fun r -> in_range r loc) hot_ranges))
          idents
      in
      defs :=
        {
          ofile = path;
          oqname = qname;
          oscope = scope;
          oloc = vb.pvb_loc;
          oparams = params;
          obody = fb;
          oowns = owns_of_attrs vb.pvb_attributes;
          orefs = own_refs;
          ohot_root = ends_with_any hot_root_defs qname;
          ohot_ranges = hot_ranges;
          oguards = guards;
        }
        :: !defs;
      (* Each literal closure handed to a hot sink in the datapath is
         its own allocation-free root. *)
      if datapath then
        List.iter
          (fun (c : expression) ->
            let cparams, cbody = peel [] c in
            let croot = match cbody with Body e -> e | Cases _ -> c in
            let cidents, _, cguards = body_facts croot in
            defs :=
              {
                ofile = path;
                oqname =
                  Printf.sprintf "%s.<hot:%d:%d>" qname (line c.pexp_loc)
                    (col c.pexp_loc);
                oscope = scope;
                oloc = c.pexp_loc;
                oparams = cparams;
                obody = cbody;
                oowns = [];
                orefs = cidents;
                ohot_root = true;
                ohot_ranges = [];
                oguards = cguards;
              }
              :: !defs)
          hot_closures
    end
  in
  items [ modname ] st;
  List.rev !defs

(* ------------------------------------------------------------------ *)
(* Summaries and their fixpoint *)

type summary = {
  s_packetish : bool array;
  s_role : role array;
  s_forced : bool array;  (** role pinned by [@leotp.owns] *)
  mutable s_returns_packet : bool;
  mutable s_transfers_ok : bool;
      (** def carries [@leotp.owns "transfers"]: container stores in
          its body are sanctioned hand-offs *)
}

type env = {
  defs_by_leaf : (string, odef) Hashtbl.t;
  summaries : (string * string, summary) Hashtbl.t;
  mutable changed : bool;
}

let summary_of env (d : odef) =
  match Hashtbl.find_opt env.summaries (d.ofile, d.oqname) with
  | Some s -> s
  | None ->
    let n = List.length d.oparams in
    let s =
      {
        s_packetish = Array.make n false;
        s_role = Array.make n Borrows;
        s_forced = Array.make n false;
        s_returns_packet = false;
        s_transfers_ok = false;
      }
    in
    Hashtbl.replace env.summaries (d.ofile, d.oqname) s;
    s

let resolve_defs env ~scope written =
  Hashtbl.find_all env.defs_by_leaf (leaf written)
  |> List.filter (fun (d : odef) ->
         Callgraph.resolves ~scope ~written ~qname:d.oqname)
  |> List.sort (fun (a : odef) b ->
         compare (a.ofile, a.oqname) (b.ofile, b.oqname))

(* Parsed [@leotp.owns] payload: "role [param ...]"; no params = all. *)
type owns_spec = {
  o_role : role option;  (** [None] for "source" *)
  o_source : bool;
  o_params : string list;
  o_bad : string option;  (** malformed: diagnostic text *)
}

let parse_owns (payload : string) =
  let words =
    List.filter (fun w -> w <> "") (String.split_on_char ' ' payload)
  in
  match words with
  | [] ->
    {
      o_role = None;
      o_source = false;
      o_params = [];
      o_bad = Some "empty payload";
    }
  | "source" :: rest ->
    if rest = [] then
      { o_role = None; o_source = true; o_params = []; o_bad = None }
    else
      {
        o_role = None;
        o_source = true;
        o_params = [];
        o_bad = Some "\"source\" takes no parameter names";
      }
  | role_w :: params -> (
    let role =
      match role_w with
      | "consumes" -> Some Consumes
      | "transfers" -> Some Transfers
      | "borrows" -> Some Borrows
      | _ -> None
    in
    match role with
    | None ->
      {
        o_role = None;
        o_source = false;
        o_params = [];
        o_bad =
          Some
            (Printf.sprintf
               "unknown role %S (expected consumes | transfers | borrows | \
                source)"
               role_w);
      }
    | Some r ->
      { o_role = Some r; o_source = false; o_params = params; o_bad = None })

(* Pin annotation-declared roles into a summary. *)
let apply_owns (d : odef) (s : summary) =
  List.iter
    (fun (payload, _) ->
      let spec = parse_owns payload in
      if spec.o_bad = None then begin
        if spec.o_source then s.s_returns_packet <- true;
        match spec.o_role with
        | None -> ()
        | Some r ->
          if r = Transfers then s.s_transfers_ok <- true;
          List.iteri
            (fun i (p : param) ->
              let named =
                spec.o_params = [] || List.mem p.pname spec.o_params
              in
              if named && p.pname <> "_" then begin
                s.s_role.(i) <- r;
                s.s_forced.(i) <- true;
                s.s_packetish.(i) <- true
              end)
            d.oparams
      end)
    d.oowns

(* ------------------------------------------------------------------ *)
(* The ownership walk.

   Abstract state per tracked variable is a bitmask: [owned] (we hold
   the obligation to release), [released] (ownership ended via the
   pool) and [moved] (ownership handed to someone else).  Branches
   join by union, so "released on some path" keeps both bits and the
   end-of-track check can distinguish must-leak from may-leak. *)

let owned = 1
let released = 2
let moved = 4

type shared = {
  sh_var : string;
  mutable sh_rel : (string * Location.t) option;
      (** how/where ownership ended: "released", "consumed by F" *)
  mutable sh_released_ever : bool;
  mutable sh_moved_ever : bool;
  mutable sh_abandoned : bool;  (** shadowed: stop judging this track *)
  mutable sh_packetish : bool;
  mutable sh_trail : (string * Location.t) list;  (** reversed *)
}

type octx = {
  c_def : odef;
  c_env : env;
  c_emit : rule:string -> loc:Location.t -> string -> unit;
}

let trail_push sh desc loc =
  match sh.sh_trail with
  | (d, l) :: _ when d = desc && l = loc -> ()
  | _ -> sh.sh_trail <- (desc, loc) :: sh.sh_trail

let fmt_trail sh ~first ~last =
  let steps = (first :: List.rev_map fst sh.sh_trail) @ [ last ] in
  let n = List.length steps in
  let steps =
    if n <= 6 then steps
    else
      List.filteri (fun i _ -> i < 3) steps
      @ [ Printf.sprintf "... %d more ..." (n - 5) ]
      @ List.filteri (fun i _ -> i >= n - 2) steps
  in
  String.concat " -> " steps

let is_var var (e : expression) =
  let rec go (e : expression) =
    match e.pexp_desc with
    | Pexp_ident { txt = Lident v; _ } -> v = var
    | Pexp_constraint (inner, _) -> go inner
    | _ -> false
  in
  go e

let mentions var (e : expression) =
  let found = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e2 =
        (match e2.pexp_desc with
        | Pexp_ident { txt = Lident v; _ } when v = var -> found := true
        | _ -> ());
        if not !found then super#expression e2
    end
  in
  it#expression e;
  !found

let pat_binds var (p : pattern) =
  let found = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! pattern p2 =
        (match p2.ppat_desc with
        | Ppat_var { txt; _ } when txt = var -> found := true
        | _ -> ());
        super#pattern p2
    end
  in
  it#pattern p;
  !found

(* One use of the tracked variable: flag it if ownership already ended
   through the pool. *)
let use_check ctx sh bits (loc : Location.t) =
  if bits land released <> 0 then begin
    let how, rloc =
      match sh.sh_rel with
      | Some (d, l) -> (d, line l)
      | None -> ("released", line loc)
    in
    ctx.c_emit ~rule:uar_id ~loc
      (Printf.sprintf
         "use of %s after it was %s (line %d); the record may already be \
          recycled under another owner; witness: %s"
         sh.sh_var how rloc
         (fmt_trail sh
            ~first:(Printf.sprintf "%s in %s" sh.sh_var ctx.c_def.oqname)
            ~last:(Printf.sprintf "use at line %d" (line loc))))
  end

let release_event ctx sh bits ~desc (loc : Location.t) =
  (if bits land released <> 0 then
     let how, rloc =
       match sh.sh_rel with
       | Some (d, l) -> (d, line l)
       | None -> ("released", line loc)
     in
     ctx.c_emit ~rule:double_id ~loc
       (Printf.sprintf "double release of %s: already %s (line %d); witness: %s"
          sh.sh_var how rloc
          (fmt_trail sh
             ~first:(Printf.sprintf "%s in %s" sh.sh_var ctx.c_def.oqname)
             ~last:(Printf.sprintf "%s again at line %d" desc (line loc))))
   else if bits land moved <> 0 then
     ctx.c_emit ~rule:double_id ~loc
       (Printf.sprintf
          "release of %s after its ownership was transferred; the new owner \
           will release it too; witness: %s"
          sh.sh_var
          (fmt_trail sh
             ~first:(Printf.sprintf "%s in %s" sh.sh_var ctx.c_def.oqname)
             ~last:(Printf.sprintf "%s at line %d" desc (line loc)))));
  if sh.sh_rel = None then sh.sh_rel <- Some (desc, loc);
  sh.sh_released_ever <- true;
  trail_push sh (Printf.sprintf "%s (line %d)" desc (line loc)) loc;
  bits land lnot owned lor released

let move_event sh bits ~desc (loc : Location.t) =
  sh.sh_moved_ever <- true;
  trail_push sh (Printf.sprintf "%s (line %d)" desc (line loc)) loc;
  bits land lnot owned lor moved

let escape_event ctx sh bits ~op (loc : Location.t) =
  let s = summary_of ctx.c_env ctx.c_def in
  if not s.s_transfers_ok then
    ctx.c_emit ~rule:escape_id ~loc
      (Printf.sprintf
         "packet %s escapes into a long-lived container (%s) that is not a \
          registered sink; hand it to Pkt_queue.push, annotate the enclosing \
          function with [@leotp.owns \"transfers\"], or justify with \
          [@leotp.allow %S]; witness: %s"
         sh.sh_var op escape_id
         (fmt_trail sh
            ~first:(Printf.sprintf "%s in %s" sh.sh_var ctx.c_def.oqname)
            ~last:(Printf.sprintf "stored at line %d" (line loc))));
  move_event sh bits ~desc:(Printf.sprintf "stored via %s" op) loc

(* Role of argument [i] of a call to [written]: builtin knowledge
   first, then the resolved summaries (joined). *)
let arg_role ctx ~scope written i =
  if is_release written then Consumes
  else if is_transfer_sink written then Transfers
  else
    let cands = resolve_defs ctx.c_env ~scope written in
    List.fold_left
      (fun acc (d : odef) ->
        let s = summary_of ctx.c_env d in
        if i < Array.length s.s_role then join_role acc s.s_role.(i) else acc)
      Borrows cands

let callee_packetish ctx ~scope written i =
  List.exists
    (fun (d : odef) ->
      let s = summary_of ctx.c_env d in
      i < Array.length s.s_packetish && s.s_packetish.(i))
    (resolve_defs ctx.c_env ~scope written)

let rec eval ctx sh ~tail bits (e : expression) : int =
  let var = sh.sh_var in
  match e.pexp_desc with
  | Pexp_ident { txt = Lident v; _ } when v = var ->
    use_check ctx sh bits e.pexp_loc;
    if tail then move_event sh bits ~desc:"returned" e.pexp_loc else bits
  | Pexp_ident _ | Pexp_constant _ -> bits
  | Pexp_constraint (inner, _)
  | Pexp_open (_, inner)
  | Pexp_letmodule (_, _, inner)
  | Pexp_letexception (_, inner) ->
    eval ctx sh ~tail bits inner
  | Pexp_sequence (a, b) ->
    let bits = eval ctx sh ~tail:false bits a in
    eval ctx sh ~tail bits b
  | Pexp_let (_, vbs, cont) ->
    let bits =
      List.fold_left
        (fun bits (vb : value_binding) ->
          eval ctx sh ~tail:false bits vb.pvb_expr)
        bits vbs
    in
    if List.exists (fun vb -> pat_binds var vb.pvb_pat) vbs then begin
      (* shadowed: the name no longer denotes this packet *)
      sh.sh_abandoned <- true;
      bits
    end
    else eval ctx sh ~tail bits cont
  | Pexp_ifthenelse (c, t, f) ->
    let bits = eval ctx sh ~tail:false bits c in
    let bt = eval ctx sh ~tail bits t in
    let bf =
      match f with Some f -> eval ctx sh ~tail bits f | None -> bits
    in
    bt lor bf
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
    let bits = eval ctx sh ~tail:false bits scrut in
    List.fold_left
      (fun acc (c : case) ->
        if pat_binds var c.pc_lhs then acc lor bits
        else begin
          let b =
            match c.pc_guard with
            | Some g -> eval ctx sh ~tail:false bits g
            | None -> bits
          in
          acc lor eval ctx sh ~tail b c.pc_rhs
        end)
      0 cases
  | Pexp_while (c, body) ->
    let b1 = eval ctx sh ~tail:false bits c in
    let b2 = eval ctx sh ~tail:false b1 body in
    (* second iteration from the joined state catches release-in-loop *)
    let b3 = eval ctx sh ~tail:false (b1 lor b2) body in
    b1 lor b2 lor b3
  | Pexp_for (pat, e1, e2, _, body) ->
    let bits = eval ctx sh ~tail:false bits e1 in
    let bits = eval ctx sh ~tail:false bits e2 in
    if pat_binds var pat then bits
    else begin
      let b2 = eval ctx sh ~tail:false bits body in
      let b3 = eval ctx sh ~tail:false (bits lor b2) body in
      bits lor b2 lor b3
    end
  | Pexp_function _ ->
    if mentions var e then begin
      (* Capture by a closure whose call sites we cannot see: judge the
         body once against the current state (catches use-after-release
         inside it), then stop judging — the closure may legitimately
         release the packet later, so neither a leak nor a later
         release can be blamed with confidence. *)
      (let _, fb = peel [] e in
       match fb with
       | Body b -> ignore (eval ctx sh ~tail:false bits b)
       | Cases cs ->
         List.iter
           (fun (c : case) ->
             if not (pat_binds var c.pc_lhs) then
               ignore (eval ctx sh ~tail:false bits c.pc_rhs))
           cs);
      sh.sh_moved_ever <- true;
      trail_push sh
        (Printf.sprintf "captured by a closure (line %d)" (line e.pexp_loc))
        e.pexp_loc;
      bits land released
    end
    else bits
  | Pexp_apply (head, args) -> eval_apply ctx sh bits head args
  | Pexp_tuple es -> eval_construction ctx sh ~tail bits e.pexp_loc es
  | Pexp_construct (_, Some arg) | Pexp_variant (_, Some arg) ->
    eval_construction ctx sh ~tail bits e.pexp_loc [ arg ]
  | Pexp_construct (_, None) | Pexp_variant (_, None) -> bits
  | Pexp_record (fields, base) ->
    let es =
      List.map snd fields @ (match base with Some b -> [ b ] | None -> [])
    in
    eval_construction ctx sh ~tail bits e.pexp_loc es
  | Pexp_array es -> eval_construction ctx sh ~tail bits e.pexp_loc es
  | Pexp_field (recv, _) ->
    if is_var var recv then begin
      (* field access is a plain read; it is NOT packet evidence — any
         record parameter reads fields *)
      use_check ctx sh bits recv.pexp_loc;
      bits
    end
    else eval ctx sh ~tail:false bits recv
  | Pexp_setfield (recv, _, rhs) ->
    if is_var var rhs then begin
      use_check ctx sh bits rhs.pexp_loc;
      let bits = eval ctx sh ~tail:false bits recv in
      escape_event ctx sh bits ~op:"record field" rhs.pexp_loc
    end
    else begin
      let bits =
        if is_var var recv then begin
          use_check ctx sh bits recv.pexp_loc;
          bits
        end
        else eval ctx sh ~tail:false bits recv
      in
      eval ctx sh ~tail:false bits rhs
    end
  | Pexp_assert inner | Pexp_lazy inner ->
    eval ctx sh ~tail:false bits inner
  | _ ->
    (* Exotic constructs: every occurrence of the var inside is a
       plain use; state is unchanged. *)
    if mentions var e then use_check ctx sh bits e.pexp_loc;
    bits

(* The packet wrapped into a structure: ownership moves into the
   value.  In tail position that is an ordinary transfer to the
   caller; elsewhere the value may flow anywhere — deferred, the
   container-store and setfield cases catch the long-lived escapes. *)
and eval_construction ctx sh ~tail bits loc es =
  let var = sh.sh_var in
  let bits =
    List.fold_left
      (fun bits sub ->
        if is_var var sub then bits else eval ctx sh ~tail:false bits sub)
      bits es
  in
  if List.exists (is_var var) es then begin
    use_check ctx sh bits loc;
    move_event sh bits
      ~desc:
        (if tail then "returned in a structure" else "packed into a structure")
      loc
  end
  else bits

and eval_apply ctx sh bits head args =
  let var = sh.sh_var in
  let scope = ctx.c_def.oscope in
  match head.pexp_desc with
  | Pexp_ident { txt; _ } -> (
    let n = ident_name txt in
    let is_closure_capture (a : expression) =
      is_function a && mentions var a
    in
    (* plain arguments evaluate before the call takes effect *)
    let bits =
      List.fold_left
        (fun bits ((_, a) : arg_label * expression) ->
          if is_var var a || is_closure_capture a then bits
          else eval ctx sh ~tail:false bits a)
        bits args
    in
    (* literal closures that capture the tracked variable: a closure
       handed to a scheduling sink outlives this activation (weak
       capture, as in the standalone case); any other callee is
       assumed to be a synchronous combinator whose closure body runs
       zero or more times right here, so it is evaluated inline like a
       loop body. *)
    let eval_closure_body bits (a : expression) =
      let cparams, fb = peel [] a in
      if List.exists (fun (p : param) -> p.pname = var) cparams then bits
      else
        match fb with
        | Body b -> eval ctx sh ~tail:false bits b
        | Cases cs ->
          List.fold_left
            (fun acc (c : case) ->
              if pat_binds var c.pc_lhs then acc lor bits
              else acc lor eval ctx sh ~tail:false bits c.pc_rhs)
            0 cs
    in
    let bits =
      List.fold_left
        (fun bits ((_, a) : arg_label * expression) ->
          if not (is_closure_capture a) then bits
          else if is_async_capture n then begin
            ignore (eval_closure_body bits a);
            sh.sh_moved_ever <- true;
            trail_push sh
              (Printf.sprintf "captured by a closure handed to %s (line %d)" n
                 (line a.pexp_loc))
              a.pexp_loc;
            bits land released
          end
          else begin
            let b1 = eval_closure_body bits a in
            let b2 = eval_closure_body (bits lor b1) a in
            bits lor b1 lor b2
          end)
        bits args
    in
    let var_positions =
      List.mapi (fun i ((_, a) : arg_label * expression) -> (i, a)) args
      |> List.filter (fun (_, a) -> is_var var a)
    in
    match var_positions with
    | [] -> bits
    | (_, first_arg) :: _ ->
      let aloc = first_arg.pexp_loc in
      if is_release n then release_event ctx sh bits ~desc:"released" aloc
      else if is_clone n then begin
        use_check ctx sh bits aloc;
        sh.sh_packetish <- true;
        trail_push sh (Printf.sprintf "cloned (line %d)" (line aloc)) aloc;
        bits
      end
      else if is_acquire n then bits
      else (
        match container_op_of n with
        | Some (op, pos) ->
          let nargs = List.length args in
          let is_store_pos =
            List.exists
              (fun (i, _) ->
                match pos with `Last -> i = nargs - 1 | `First -> i = 0)
              var_positions
          in
          use_check ctx sh bits aloc;
          if is_store_pos then escape_event ctx sh bits ~op aloc else bits
        | None -> (
          let role =
            List.fold_left
              (fun acc (i, _) -> join_role acc (arg_role ctx ~scope n i))
              Borrows var_positions
          in
          List.iter
            (fun (i, _) ->
              if callee_packetish ctx ~scope n i then sh.sh_packetish <- true)
            var_positions;
          match role with
          | Consumes ->
            release_event ctx sh bits
              ~desc:(Printf.sprintf "consumed by %s" n)
              aloc
          | Transfers ->
            use_check ctx sh bits aloc;
            let forced =
              is_transfer_sink n
              || List.exists
                   (fun (d : odef) ->
                     let s = summary_of ctx.c_env d in
                     List.exists
                       (fun (i, _) ->
                         i < Array.length s.s_forced
                         && s.s_forced.(i)
                         && s.s_role.(i) = Transfers)
                       var_positions)
                   (resolve_defs ctx.c_env ~scope n)
            in
            if forced then
              (* programmer-asserted hand-off: arm the
                 release-after-transfer diagnostic *)
              move_event sh bits
                ~desc:(Printf.sprintf "transferred via %s" n)
                aloc
            else begin
              (* inferred hand-off: ownership probably leaves here, but
                 inference is best-effort — drop to unknown rather than
                 blame a later release on it *)
              sh.sh_moved_ever <- true;
              trail_push sh
                (Printf.sprintf "transferred via %s (line %d)" n (line aloc))
                aloc;
              bits land lnot owned
            end
          | Borrows ->
            use_check ctx sh bits aloc;
            trail_push sh
              (Printf.sprintf "borrowed by %s (line %d)" n (line aloc))
              aloc;
            bits)))
  | _ ->
    (* [t.handler p], [(lookup k) p]: the callee is opaque, and packet
       handlers routinely take ownership — weak transfer. *)
    let bits = eval ctx sh ~tail:false bits head in
    List.fold_left
      (fun bits ((_, a) : arg_label * expression) ->
        if is_var var a then begin
          use_check ctx sh bits a.pexp_loc;
          sh.sh_moved_ever <- true;
          trail_push sh
            (Printf.sprintf "passed to a computed function (line %d)"
               (line a.pexp_loc))
            a.pexp_loc;
          bits land lnot owned
        end
        else eval ctx sh ~tail:false bits a)
      bits args

(* ------------------------------------------------------------------ *)
(* Track discovery: every [let p = Packet_pool.acquire ... in] (or
   clone, or a call to an inferred/annotated source) starts an
   ownership track over its continuation. *)

type track = {
  t_var : string;
  t_loc : Location.t;
  t_src : string;
  t_cont : expression;
  t_tail : bool;
}

let source_desc_of env ~scope (e : expression) =
  let rec head (e : expression) =
    match e.pexp_desc with
    | Pexp_constraint (inner, _) -> head inner
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      Some (ident_name txt)
    | _ -> None
  in
  match head e with
  | None -> None
  | Some n ->
    if is_acquire n then Some "Packet_pool.acquire"
    else if is_clone n then Some "Packet_pool.clone"
    else if
      List.exists
        (fun (d : odef) -> (summary_of env d).s_returns_packet)
        (resolve_defs env ~scope n)
    then Some (Printf.sprintf "call to %s" n)
    else None

let find_tracks env ~scope (body : fbody) : track list =
  let acc = ref [] in
  let rec go ~tail (e : expression) =
    match e.pexp_desc with
    | Pexp_let (_, vbs, cont) ->
      List.iter
        (fun (vb : value_binding) ->
          go ~tail:false vb.pvb_expr;
          match (binding_name vb, source_desc_of env ~scope vb.pvb_expr) with
          | Some v, Some src ->
            acc :=
              {
                t_var = v;
                t_loc = vb.pvb_expr.pexp_loc;
                t_src = src;
                t_cont = cont;
                t_tail = tail;
              }
              :: !acc
          | _ -> ())
        vbs;
      go ~tail cont
    | Pexp_sequence (a, b) ->
      go ~tail:false a;
      go ~tail b
    | Pexp_ifthenelse (c, t, f) ->
      go ~tail:false c;
      go ~tail t;
      Option.iter (go ~tail) f
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      go ~tail:false scrut;
      List.iter
        (fun (c : case) ->
          Option.iter (go ~tail:false) c.pc_guard;
          go ~tail c.pc_rhs)
        cases
    | Pexp_apply (head, args) ->
      go ~tail:false head;
      List.iter (fun (_, a) -> go ~tail:false a) args
    | Pexp_function (_, _, Pfunction_body b) -> go ~tail:true b
    | Pexp_function (_, _, Pfunction_cases (cases, _, _)) ->
      List.iter (fun (c : case) -> go ~tail:true c.pc_rhs) cases
    | Pexp_while (c, b) ->
      go ~tail:false c;
      go ~tail:false b
    | Pexp_for (_, e1, e2, _, b) ->
      go ~tail:false e1;
      go ~tail:false e2;
      go ~tail:false b
    | Pexp_constraint (inner, _)
    | Pexp_open (_, inner)
    | Pexp_letmodule (_, _, inner)
    | Pexp_letexception (_, inner)
    | Pexp_assert inner
    | Pexp_lazy inner ->
      go ~tail inner
    | Pexp_tuple es | Pexp_array es -> List.iter (go ~tail:false) es
    | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) ->
      go ~tail:false a
    | Pexp_record (fields, base) ->
      List.iter (fun (_, v) -> go ~tail:false v) fields;
      Option.iter (go ~tail:false) base
    | Pexp_field (r, _) -> go ~tail:false r
    | Pexp_setfield (r, _, v) ->
      go ~tail:false r;
      go ~tail:false v
    | _ -> ()
  in
  (match body with
  | Body e -> go ~tail:true e
  | Cases cs -> List.iter (fun (c : case) -> go ~tail:true c.pc_rhs) cs);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Per-def ownership analysis: parameter tracks (role inference and,
   in the reporting phase, misuse findings) and acquire tracks
   (leaks). *)

let eval_body ctx sh ~tail bits (body : fbody) =
  match body with
  | Body e -> eval ctx sh ~tail bits e
  | Cases cs ->
    List.fold_left
      (fun acc (c : case) ->
        if pat_binds sh.sh_var c.pc_lhs then acc lor bits
        else acc lor eval ctx sh ~tail bits c.pc_rhs)
      0 cs

let run_param_track ctx (d : odef) (p : param) =
  let sh =
    {
      sh_var = p.pname;
      sh_rel = None;
      sh_released_ever = false;
      sh_moved_ever = false;
      sh_abandoned = false;
      sh_packetish = p.ptyped_packet;
      sh_trail = [];
    }
  in
  ignore (eval_body ctx sh ~tail:true owned d.obody);
  sh

let silent_emit ~rule:_ ~loc:_ _ = ()

let infer_pass env (defs : odef list) =
  List.iter
    (fun (d : odef) ->
      let s = summary_of env d in
      let ctx = { c_def = d; c_env = env; c_emit = silent_emit } in
      List.iteri
        (fun i (p : param) ->
          if p.pname <> "_" && not s.s_forced.(i) then begin
            let sh = run_param_track ctx d p in
            let role =
              if sh.sh_released_ever then Consumes
              else if sh.sh_moved_ever then Transfers
              else Borrows
            in
            if role_rank role > role_rank s.s_role.(i) then begin
              s.s_role.(i) <- role;
              env.changed <- true
            end;
            if sh.sh_packetish && not s.s_packetish.(i) then begin
              s.s_packetish.(i) <- true;
              env.changed <- true
            end
          end)
        d.oparams;
      (* returns_packet: the tail of the body is a source call or a
         variable bound from one *)
      let rec tail_source bound (e : expression) =
        match e.pexp_desc with
        | Pexp_ident { txt = Lident v; _ } -> List.mem v bound
        | Pexp_constraint (inner, _) | Pexp_open (_, inner) ->
          tail_source bound inner
        | Pexp_sequence (_, b) -> tail_source bound b
        | Pexp_let (_, vbs, cont) ->
          let bound =
            List.fold_left
              (fun bound (vb : value_binding) ->
                match
                  ( binding_name vb,
                    source_desc_of env ~scope:d.oscope vb.pvb_expr )
                with
                | Some v, Some _ -> v :: bound
                | _ -> bound)
              bound vbs
          in
          tail_source bound cont
        | Pexp_ifthenelse (_, t, f) ->
          tail_source bound t
          || (match f with Some f -> tail_source bound f | None -> false)
        | Pexp_match (_, cases) | Pexp_try (_, cases) ->
          List.exists (fun (c : case) -> tail_source bound c.pc_rhs) cases
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
          let n = ident_name txt in
          is_acquire n || is_clone n
          || List.exists
               (fun (cd : odef) -> (summary_of env cd).s_returns_packet)
               (resolve_defs env ~scope:d.oscope n)
        | _ -> false
      in
      let rp =
        match d.obody with
        | Body e -> tail_source [] e
        | Cases cs ->
          List.exists (fun (c : case) -> tail_source [] c.pc_rhs) cs
      in
      if rp && not s.s_returns_packet then begin
        s.s_returns_packet <- true;
        env.changed <- true
      end)
    defs

let report_ownership env (defs : odef list) ~emit =
  List.iter
    (fun (d : odef) ->
      let ctx = { c_def = d; c_env = env; c_emit = emit } in
      (* malformed annotations *)
      List.iter
        (fun (payload, aloc) ->
          let spec = parse_owns payload in
          (match spec.o_bad with
          | Some why ->
            emit ~rule:annot_id ~loc:aloc
              (Printf.sprintf
                 "malformed [@leotp.owns] payload %S: %s; grammar: \
                  \"consumes|transfers|borrows [param ...]\" or \"source\""
                 payload why)
          | None -> ());
          if spec.o_bad = None then
            List.iter
              (fun pn ->
                if
                  not (List.exists (fun (p : param) -> p.pname = pn) d.oparams)
                then
                  emit ~rule:annot_id ~loc:aloc
                    (Printf.sprintf
                       "[@leotp.owns] names parameter %S but %s has no such \
                        parameter"
                       pn d.oqname))
              spec.o_params)
        d.oowns;
      (* parameter misuse (no leak judgement: the caller owns it).
         Diagnostics are buffered and dropped unless there is positive
         evidence the parameter actually is a packet — a [: Packet.t]
         constraint, an [@leotp.owns] annotation, a pool call on it, or
         propagated callee evidence.  Without the gate, every int that
         is stored into a container would trip the ownership rules. *)
      let s = summary_of env d in
      List.iteri
        (fun i (p : param) ->
          if p.pname <> "_" then begin
            let buf = ref [] in
            let bctx =
              {
                c_def = d;
                c_env = env;
                c_emit =
                  (fun ~rule ~loc message ->
                    buf := (rule, loc, message) :: !buf);
              }
            in
            let sh = run_param_track bctx d p in
            let packetish =
              sh.sh_packetish
              || (i < Array.length s.s_packetish && s.s_packetish.(i))
            in
            if packetish then
              List.iter
                (fun (rule, loc, message) -> emit ~rule ~loc message)
                (List.rev !buf)
          end)
        d.oparams;
      (* acquire/source tracks: leaks *)
      List.iter
        (fun (t : track) ->
          let sh =
            {
              sh_var = t.t_var;
              sh_rel = None;
              sh_released_ever = false;
              sh_moved_ever = false;
              sh_abandoned = false;
              sh_packetish = true;
              sh_trail = [];
            }
          in
          let final = eval ctx sh ~tail:t.t_tail owned t.t_cont in
          if (not sh.sh_abandoned) && final land owned <> 0 then
            let some_path = sh.sh_released_ever || sh.sh_moved_ever in
            emit ~rule:leak_id ~loc:t.t_loc
              (Printf.sprintf
                 "packet %s (%s) %s; release it on every path, hand it to a \
                  consuming/transferring callee, or annotate the callee \
                  with [@leotp.owns]; witness: %s"
                 t.t_var t.t_src
                 (if some_path then
                    "is still owned on some path through " ^ d.oqname
                  else "is never released or handed off in " ^ d.oqname)
                 (fmt_trail sh
                    ~first:(Printf.sprintf "acquired (line %d)" (line t.t_loc))
                    ~last:(Printf.sprintf "end of %s still owned" d.oqname))))
        (find_tracks env ~scope:d.oscope d.obody))
    defs

(* ------------------------------------------------------------------ *)
(* Allocation effects *)

type alloc_site = { a_loc : Location.t; a_what : string }

(* Collect the may-allocate evidence of one def body.  Hot sub-closure
   bodies are excluded (each is a root of its own), but the closure
   *creation* at the sink call site still counts against the parent. *)
let alloc_sites env (d : odef) : alloc_site list =
  let sites = ref [] in
  let add loc what = sites := { a_loc = loc; a_what = what } :: !sites in
  let rec go (e : expression) =
    match e.pexp_desc with
    | Pexp_function _ ->
      add e.pexp_loc "a closure";
      children e
    | Pexp_tuple _ ->
      add e.pexp_loc "a tuple";
      children e
    | Pexp_record _ ->
      add e.pexp_loc "a record";
      children e
    | Pexp_array _ ->
      add e.pexp_loc "an array literal";
      children e
    | Pexp_lazy _ ->
      add e.pexp_loc "a lazy block";
      children e
    | Pexp_construct ({ txt = Lident "::"; _ }, Some arg) ->
      add e.pexp_loc "a list cell";
      (* walk the spine once: nested cons cells of one literal list
         are a single piece of evidence *)
      spine arg
    | Pexp_ifthenelse (c, t, f) ->
      if debug_cond c then Option.iter go f
      else begin
        go c;
        go t;
        Option.iter go f
      end
    | Pexp_assert _ -> ()
    | Pexp_apply (({ pexp_desc = Pexp_ident { txt; _ }; _ } as head), args)
      -> (
      let n = ident_name txt in
      if ends_with_any error_heads n then ()
      else begin
        if is_allocating_call n then
          add head.pexp_loc (Printf.sprintf "a call to %s" n)
        else begin
          let cands = resolve_defs env ~scope:d.oscope n in
          let nargs = List.length args in
          if
            cands <> []
            && List.for_all
                 (fun (cd : odef) ->
                   List.length cd.oparams > nargs
                   && not (List.exists (fun (p : param) -> p.popt) cd.oparams))
                 cands
          then
            add head.pexp_loc (Printf.sprintf "partial application of %s" n)
        end;
        List.iter
          (fun ((_, a) : arg_label * expression) ->
            if
              is_hot_closure_sink n && is_function a
              && List.exists (fun r -> in_range r a.pexp_loc) d.ohot_ranges
            then
              (* the closure record itself is allocated here, per
                 event; its body is audited as a separate root *)
              add a.pexp_loc (Printf.sprintf "a closure handed to %s" n)
            else go a)
          args
      end)
    | _ -> children e
  and spine (arg : expression) =
    match arg.pexp_desc with
    | Pexp_tuple [ hd; tl ] -> (
      go hd;
      match tl.pexp_desc with
      | Pexp_construct ({ txt = Lident "::"; _ }, Some arg') -> spine arg'
      | Pexp_construct ({ txt = Lident "[]"; _ }, None) -> ()
      | _ -> go tl)
    | _ -> go arg
  and children (e : expression) =
    let it =
      object
        inherit Ast_traverse.iter as super

        method! expression e2 = if e2 == e then super#expression e2 else go e2
      end
    in
    it#expression e
  in
  (match d.obody with
  | Body e -> go e
  | Cases cs ->
    List.iter
      (fun (c : case) ->
        Option.iter go c.pc_guard;
        go c.pc_rhs)
      cs);
  List.rev !sites

(* Calls into the tracing facility are debug-gated by design
   ([Trace.on] gates the steady state), so they do not count against
   the allocation effect. *)
let is_trace_ref n = List.mem "Trace" (split n)
let is_trace_file path = Filename.basename path = "trace.ml"

(* Refs that count for the effect walk: outside debug-gated / error
   subtrees and not into the tracing facility. *)
let live_refs (d : odef) =
  List.filter
    (fun ((rname, rloc) : string * Location.t) ->
      (not (is_trace_ref rname))
      && not (List.exists (fun r -> in_range r rloc) d.oguards))
    d.orefs

let report_alloc env (defs : odef list) ~suppressed_at ~emit =
  let site_memo : (string * string, alloc_site list) Hashtbl.t =
    Hashtbl.create 256
  in
  (* A site the author has justified with [@leotp.allow] is not
     evidence either: allowing the pool's amortized grow path, say,
     clears every call chain that bottoms out in it. *)
  let sites_of (d : odef) =
    let key = (d.ofile, d.oqname) in
    match Hashtbl.find_opt site_memo key with
    | Some s -> s
    | None ->
      let s =
        alloc_sites env d
        |> List.filter (fun (s : alloc_site) ->
               not (suppressed_at ~file:d.ofile alloc_id s.a_loc))
      in
      Hashtbl.replace site_memo key s;
      s
  in
  (* Transitive may-allocate effect of a def, memoized: the first piece
     of allocation evidence (site, file, qname chain), or [None].
     Cycles resolve to no-effect on the back edge. *)
  let effect_memo
      : (string * string, (alloc_site * string * string list) option) Hashtbl.t
    =
    Hashtbl.create 256
  in
  let rec effect_of (d : odef) =
    let key = (d.ofile, d.oqname) in
    match Hashtbl.find_opt effect_memo key with
    | Some e -> e
    | None ->
      Hashtbl.replace effect_memo key None;
      let e =
        if is_trace_file d.ofile then None
        else
          match sites_of d with
          | s :: _ -> Some (s, d.ofile, [ d.oqname ])
          | [] ->
            List.fold_left
              (fun acc ((rname, _) : string * Location.t) ->
                match acc with
                | Some _ -> acc
                | None ->
                  List.fold_left
                    (fun acc (callee : odef) ->
                      match acc with
                      | Some _ -> acc
                      | None -> (
                        match effect_of callee with
                        | Some (s, f, chain) ->
                          Some (s, f, d.oqname :: chain)
                        | None -> None))
                    None
                    (resolve_defs env ~scope:d.oscope rname))
              None (live_refs d)
      in
      Hashtbl.replace effect_memo key e;
      e
  in
  let elide steps =
    let n = List.length steps in
    if n <= 5 then steps
    else
      List.filteri (fun i _ -> i < 2) steps
      @ [ Printf.sprintf "... %d more ..." (n - 3) ]
      @ List.filteri (fun i _ -> i >= n - 1) steps
  in
  let roots =
    List.filter (fun (d : odef) -> d.ohot_root) defs
    |> List.sort (fun (a : odef) b ->
           compare (a.ofile, a.oqname) (b.ofile, b.oqname))
  in
  List.iter
    (fun (root : odef) ->
      (* allocations in the root body itself *)
      List.iter
        (fun (s : alloc_site) ->
          emit ~file:root.ofile ~rule:alloc_id ~loc:s.a_loc
            (Printf.sprintf
               "%s is allocated on the packet hot path; hoist it out of the \
                per-packet flow or justify with [@leotp.allow %S]; witness: \
                %s (%s:%d) -> allocates at line %d"
               s.a_what alloc_id root.oqname root.ofile (line root.oloc)
               (line s.a_loc)))
        (sites_of root);
      (* calls from the root body into code with a may-allocate effect:
         one finding at the call site, not one per transitive site *)
      List.iter
        (fun ((rname, rloc) : string * Location.t) ->
          List.iter
            (fun (callee : odef) ->
              if not callee.ohot_root then
                match effect_of callee with
                | Some (s, sfile, chain) ->
                  emit ~file:root.ofile ~rule:alloc_id ~loc:rloc
                    (Printf.sprintf
                       "call to %s may allocate on the packet hot path (%s \
                        at %s:%d); hoist the allocation, restructure the \
                        call, or justify with [@leotp.allow %S]; witness: \
                        %s (%s:%d) -> %s -> allocates %s at line %d"
                       rname s.a_what sfile (line s.a_loc) alloc_id
                       root.oqname root.ofile (line root.oloc)
                       (String.concat " -> " (elide chain))
                       s.a_what (line s.a_loc))
                | None -> ())
            (resolve_defs env ~scope:root.oscope rname))
        (live_refs root))
    roots

(* ------------------------------------------------------------------ *)
(* Time taint *)

type taint = {
  tn_read : string;  (** the wall-clock ident reached *)
  tn_read_loc : Location.t;
  tn_chain : string list;  (** qnames from this def to the read *)
}

let report_taint env (defs : odef list) ~emit =
  let taint_memo : (string * string, taint option) Hashtbl.t =
    Hashtbl.create 256
  in
  let rec taint_of (d : odef) : taint option =
    let key = (d.ofile, d.oqname) in
    match Hashtbl.find_opt taint_memo key with
    | Some t -> t
    | None ->
      (* cycles resolve to untainted on the back edge *)
      Hashtbl.replace taint_memo key None;
      let direct =
        List.find_opt (fun ((n, _) : string * Location.t) -> is_wall_clock n)
          d.orefs
      in
      let t =
        match direct with
        | Some (n, loc) ->
          Some { tn_read = n; tn_read_loc = loc; tn_chain = [ d.oqname ] }
        | None ->
          List.fold_left
            (fun acc ((rname, _) : string * Location.t) ->
              match acc with
              | Some _ -> acc
              | None ->
                List.fold_left
                  (fun acc (callee : odef) ->
                    match acc with
                    | Some _ -> acc
                    | None -> (
                      match taint_of callee with
                      | Some t ->
                        Some { t with tn_chain = d.oqname :: t.tn_chain }
                      | None -> None))
                  None
                  (resolve_defs env ~scope:d.oscope rname))
            None d.orefs
      in
      Hashtbl.replace taint_memo key t;
      t
  in
  List.iter
    (fun (d : odef) ->
      if sim_time_stratum d.ofile then
        List.iter
          (fun ((rname, rloc) : string * Location.t) ->
            if is_wall_clock rname then
              emit ~file:d.ofile ~rule:taint_id ~loc:rloc
                (Printf.sprintf
                   "%s reads the wall clock (%s) but lives in the sim-time \
                    stratum; route real time through the harness or justify \
                    with [@leotp.allow %S]; witness: %s -> reads %s at line \
                    %d"
                   d.oqname rname taint_id d.oqname rname (line rloc))
            else
              List.iter
                (fun (callee : odef) ->
                  if not (sim_time_stratum callee.ofile) then
                    match taint_of callee with
                    | Some t ->
                      emit ~file:d.ofile ~rule:taint_id ~loc:rloc
                        (Printf.sprintf
                           "sim-time code %s reaches a wall-clock read \
                            through harness code %s; keep real time out of \
                            the protocol core or justify with [@leotp.allow \
                            %S]; witness: %s -> %s -> reads %s at line %d"
                           d.oqname callee.oqname taint_id d.oqname
                           (String.concat " -> " t.tn_chain) t.tn_read
                           (line t.tn_read_loc))
                    | None -> ())
                (resolve_defs env ~scope:d.oscope rname))
          d.orefs)
    defs

(* ------------------------------------------------------------------ *)
(* Entry points *)

let max_fixpoint_rounds = 12

let analyze (parsed : (string * structure) list) : Finding.t list =
  let parsed =
    List.sort (fun (a, _) (b, _) -> String.compare a b) parsed
  in
  let defs = List.concat_map (fun (p, st) -> extract_defs ~path:p st) parsed in
  let allows = List.map (fun (p, st) -> (p, Engine.collect_allows st)) parsed in
  let env =
    {
      defs_by_leaf = Hashtbl.create 512;
      summaries = Hashtbl.create 512;
      changed = true;
    }
  in
  List.iter
    (fun (d : odef) -> Hashtbl.add env.defs_by_leaf (leaf d.oqname) d)
    defs;
  (* seed annotation-declared summaries, then iterate inference to a
     fixpoint (roles and packet evidence only ever grow) *)
  List.iter (fun (d : odef) -> apply_owns d (summary_of env d)) defs;
  let rounds = ref 0 in
  while env.changed && !rounds < max_fixpoint_rounds do
    env.changed <- false;
    infer_pass env defs;
    incr rounds
  done;
  let suppressed_at ~file rule (loc : Location.t) =
    match List.assoc_opt file allows with
    | Some a -> Engine.suppressed a ~rule ~loc
    | None -> false
  in
  let reported : (string * string * int * int, unit) Hashtbl.t =
    Hashtbl.create 64
  in
  let findings = ref [] in
  let emit_at ~file ~rule ~loc message =
    let key = (file, rule, line loc, col loc) in
    if (not (Hashtbl.mem reported key)) && not (suppressed_at ~file rule loc)
    then begin
      Hashtbl.replace reported key ();
      findings :=
        {
          Finding.rule;
          severity = Error;
          file;
          line = line loc;
          col = col loc;
          message;
        }
        :: !findings
    end
  in
  let own_defs_by_file =
    List.map
      (fun (p, _) ->
        (p, List.filter (fun (d : odef) -> d.ofile = p) defs))
      parsed
  in
  List.iter
    (fun (file, fdefs) ->
      report_ownership env fdefs
        ~emit:(fun ~rule ~loc message -> emit_at ~file ~rule ~loc message))
    own_defs_by_file;
  report_alloc env defs ~suppressed_at ~emit:emit_at;
  report_taint env defs ~emit:emit_at;
  List.sort_uniq Finding.compare !findings

let analyze_sources sources =
  let parsed =
    List.filter_map
      (fun (path, contents) ->
        match Engine.parse_impl ~path contents with
        | Ok st -> Some (path, st)
        | Error _ -> None)
      sources
  in
  analyze parsed

(* Directory scan for the CLI.  Files that fail to parse are skipped:
   Engine.scan (which always runs alongside) already reports them as
   parse-error findings. *)
let scan paths =
  let files =
    List.concat_map
      (fun p -> if Sys.file_exists p then Engine.ml_files_under p else [])
      paths
    |> List.sort_uniq String.compare
  in
  let parsed =
    List.filter_map
      (fun f ->
        match In_channel.with_open_bin f In_channel.input_all with
        | exception Sys_error _ -> None
        | contents -> (
          match Engine.parse_impl ~path:f contents with
          | Ok st -> Some (f, st)
          | Error _ -> None))
      files
  in
  analyze parsed
