type severity = Warning | Error

let severity_to_string = function Warning -> "warning" | Error -> "error"

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

let severity_rank = function Error -> 0 | Warning -> 1

(* Primary order is (file, line, col, rule-id) — the report contract —
   with severity and message as final tie-breakers so the order is
   total and [List.sort_uniq] deduplicates exact duplicates only. *)
let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c
        else
          let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
          if c <> 0 then c else String.compare a.message b.message

let to_text f =
  Printf.sprintf "%s:%d:%d: [%s] %s: %s" f.file f.line f.col
    (severity_to_string f.severity)
    f.rule f.message

(* Minimal JSON string escaping: the report only ever contains paths,
   rule ids and fixed message text, but be safe about quotes/controls. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf
    {|{"rule":"%s","severity":"%s","file":"%s","line":%d,"col":%d,"message":"%s"}|}
    (json_escape f.rule)
    (severity_to_string f.severity)
    (json_escape f.file) f.line f.col (json_escape f.message)

let count sev findings =
  List.length (List.filter (fun f -> f.severity = sev) findings)

let report_json ?(timings = []) ~files findings =
  let body = String.concat ",\n  " (List.map to_json findings) in
  let timings_json =
    (* per-pass analyzer wall time; run-varying by nature, so it sits
       in its own object and the findings array stays byte-stable *)
    match timings with
    | [] -> ""
    | ts ->
      Printf.sprintf {|,"timings_ms":{%s}|}
        (String.concat ","
           (List.map
              (fun (pass, ms) ->
                Printf.sprintf {|"%s":%.1f|} (json_escape pass) ms)
              ts))
  in
  Printf.sprintf
    {|{"version":1,"files":%d,"errors":%d,"warnings":%d%s,"findings":[%s%s%s]}
|}
    files (count Error findings) (count Warning findings) timings_json
    (if findings = [] then "" else "\n  ")
    body
    (if findings = [] then "" else "\n")
