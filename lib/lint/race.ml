(* leotp-race: interprocedural domain-safety analysis.

   The question the per-expression rules cannot answer: is any
   top-level mutable value transitively reachable from a domain
   entrypoint (a closure handed to Domain.spawn or
   Domain_pool.submit/run/map) accessed outside a critical section?
   Such an access is exactly the bug that silently breaks the --jobs N
   bit-identity claim, and the one a file-level
   [@leotp.allow "no-global-mutable-state"] used to wave through.

   The analysis is a lockset-flavoured reachability walk over the
   per-file call graphs of Callgraph:

     1. collect every top-level mutable binding (ref / Hashtbl / array
        / Queue / ... creator, or a binding some code field-assigns);
     2. collect every entrypoint (literal closures at spawn sinks plus
        named functions passed to them);
     3. DFS along resolved call edges from each entrypoint, propagating
        "inside a critical section" along call sites that are
        themselves guarded;
     4. report every access to a tracked global whose reference is not
        guarded (lexically inside Guarded.with_/await/get/set, an
        Atomic/Atomic_counter operation, or sequenced after
        Mutex.lock) — with the full entrypoint → call chain → access
        witness path.

   Like every leotp-lint pass this is best-effort syntactic analysis:
   higher-order flow (thunks stored in data structures) is invisible,
   renamed module aliases hide guards, and shadowing is ignored.
   Escape hatch: [@leotp.allow "domain-unsafe-access"] at the access
   site, item-level and justified. *)

open Ppxlib

let rule_id = "domain-unsafe-access"

type node = { nfile : string; ndef : Callgraph.def }

type gnode = { gfile : string; g : Callgraph.global }

let leaf name =
  match List.rev (String.split_on_char '.' name) with
  | l :: _ -> l
  | [] -> name

let line (loc : Location.t) = loc.loc_start.pos_lnum

(* Keep witnesses readable: a chain deeper than this elides the
   middle. *)
let max_witness = 6

let witness ~(access : Callgraph.reference) path =
  let step (n : node) =
    Printf.sprintf "%s (%s:%d)" n.ndef.qname n.nfile (line n.ndef.loc)
  in
  let steps = List.map step path in
  let steps =
    let n = List.length steps in
    if n <= max_witness then steps
    else
      List.filteri (fun i _ -> i < 3) steps
      @ [ Printf.sprintf "... %d more ..." (n - 5) ]
      @ List.filteri (fun i _ -> i >= n - 2) steps
  in
  String.concat " -> " (steps @ [ Printf.sprintf "access at line %d" (line access.loc) ])

let analyze (parsed : (string * structure) list) : Finding.t list =
  let parsed =
    List.sort (fun (a, _) (b, _) -> String.compare a b) parsed
  in
  let cgs = List.map (fun (p, st) -> Callgraph.of_structure ~path:p st) parsed in
  let allows = List.map (fun (p, st) -> (p, Engine.collect_allows st)) parsed in
  (* Index defs and candidate globals by their last name segment so
     resolution is a short candidate scan, not O(all defs). *)
  let defs_by_leaf : (string, node) Hashtbl.t = Hashtbl.create 512 in
  List.iter
    (fun (cg : Callgraph.t) ->
      List.iter
        (fun (d : Callgraph.def) ->
          Hashtbl.add defs_by_leaf (leaf d.qname) { nfile = cg.file; ndef = d })
        cg.defs)
    cgs;
  (* Tracked globals: explicit mutable creators, plus any top-level
     binding that is the receiver of a field assignment somewhere
     (mutable record detected from use). *)
  let globals : gnode list =
    let created =
      List.concat_map
        (fun (cg : Callgraph.t) ->
          List.map (fun g -> { gfile = cg.file; g }) cg.globals)
        cgs
    in
    let all_setfields =
      List.concat_map
        (fun (cg : Callgraph.t) ->
          List.map
            (fun (r : Callgraph.reference) -> (cg.module_name, r))
            cg.setfields)
        cgs
    in
    let field_assigned =
      List.concat_map
        (fun (cg : Callgraph.t) ->
          List.filter_map
            (fun (qname, gloc) ->
              let already =
                List.exists
                  (fun gn -> gn.g.Callgraph.gqname = qname && gn.gfile = cg.file)
                  created
              in
              let hit =
                List.exists
                  (fun (m, (r : Callgraph.reference)) ->
                    Callgraph.resolves ~scope:[ m ] ~written:r.name ~qname)
                  all_setfields
              in
              if hit && not already then
                Some
                  {
                    gfile = cg.file;
                    g = { Callgraph.gqname = qname; gloc; creator = "mutable-field" };
                  }
              else None)
            cg.bindings)
        cgs
    in
    created @ field_assigned
  in
  let globals_by_leaf : (string, gnode) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun gn -> Hashtbl.add globals_by_leaf (leaf gn.g.Callgraph.gqname) gn)
    globals;
  let resolve_defs ~scope written =
    Hashtbl.find_all defs_by_leaf (leaf written)
    |> List.filter (fun n ->
           Callgraph.resolves ~scope ~written ~qname:n.ndef.qname)
    |> List.sort (fun a b ->
           compare (a.nfile, a.ndef.qname) (b.nfile, b.ndef.qname))
  in
  let resolve_globals ~scope written =
    Hashtbl.find_all globals_by_leaf (leaf written)
    |> List.filter (fun gn ->
           Callgraph.resolves ~scope ~written ~qname:gn.g.Callgraph.gqname)
    |> List.sort (fun a b ->
           compare (a.gfile, a.g.Callgraph.gqname) (b.gfile, b.g.Callgraph.gqname))
  in
  (* Entrypoints: literal closures (entry defs) plus named functions
     passed to spawn sinks, resolved. *)
  let entries =
    let literal =
      List.concat_map
        (fun (cg : Callgraph.t) ->
          List.filter_map
            (fun (d : Callgraph.def) ->
              if d.entry then Some { nfile = cg.file; ndef = d } else None)
            cg.defs)
        cgs
    in
    let named =
      List.concat_map
        (fun (cg : Callgraph.t) ->
          List.concat_map
            (fun (r : Callgraph.reference) ->
              resolve_defs ~scope:[ cg.module_name ] r.name)
            cg.entry_names)
        cgs
    in
    List.sort_uniq
      (fun a b -> compare (a.nfile, a.ndef.qname) (b.nfile, b.ndef.qname))
      (literal @ named)
  in
  let suppressed_at ~file (loc : Location.t) =
    match List.assoc_opt file allows with
    | Some a -> Engine.suppressed a ~rule:rule_id ~loc
    | None -> false
  in
  let reported : (string * int * int * string, unit) Hashtbl.t =
    Hashtbl.create 32
  in
  let findings = ref [] in
  let report ~path ~(node : node) ~(access : Callgraph.reference)
      (gn : gnode) =
    let loc = access.loc in
    let col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol in
    let key = (node.nfile, line loc, col, gn.g.Callgraph.gqname) in
    if
      (not (Hashtbl.mem reported key))
      && not (suppressed_at ~file:node.nfile loc)
    then begin
      Hashtbl.replace reported key ();
      findings :=
        {
          Finding.rule = rule_id;
          severity = Error;
          file = node.nfile;
          line = line loc;
          col;
          message =
            Printf.sprintf
              "unguarded cross-domain access to %s (%s, defined %s:%d); \
               guard it with Guarded.with_ / Atomic, or justify with an \
               item-level [@leotp.allow %S]; witness: %s"
              gn.g.Callgraph.gqname gn.g.Callgraph.creator gn.gfile
              (line gn.g.Callgraph.gloc) rule_id
              (witness ~access path);
        }
        :: !findings
    end
  in
  (* DFS from each entrypoint.  [visited] is per-entry and keyed by
     (file, def, guardedness) so a function reached both inside and
     outside a critical section is examined in both contexts. *)
  List.iter
    (fun entry ->
      let visited = Hashtbl.create 64 in
      let rec visit ~path_rev ~guarded (node : node) =
        let key = (node.nfile, node.ndef.qname, guarded) in
        if not (Hashtbl.mem visited key) then begin
          Hashtbl.replace visited key ();
          let path = List.rev (node :: path_rev) in
          List.iter
            (fun (r : Callgraph.reference) ->
              let safe = guarded || r.guarded in
              if not safe then
                List.iter
                  (fun gn -> report ~path ~node ~access:r gn)
                  (resolve_globals ~scope:node.ndef.scope r.name);
              List.iter
                (fun callee ->
                  (* don't walk back into entry closures: they are
                     roots of their own *)
                  if not callee.ndef.entry then
                    visit ~path_rev:(node :: path_rev) ~guarded:safe callee)
                (resolve_defs ~scope:node.ndef.scope r.name))
            node.ndef.refs
        end
      in
      visit ~path_rev:[] ~guarded:false entry)
    entries;
  List.sort_uniq Finding.compare !findings

let analyze_sources sources =
  let parsed =
    List.filter_map
      (fun (path, contents) ->
        match Engine.parse_impl ~path contents with
        | Ok st -> Some (path, st)
        | Error _ -> None)
      sources
  in
  analyze parsed

(* Directory scan for the CLI.  Files that fail to parse are skipped
   here: Engine.scan (which always runs alongside) already reports them
   as parse-error findings, and double-reporting would break LINT.json
   dedup. *)
let scan paths =
  let files =
    List.concat_map
      (fun p -> if Sys.file_exists p then Engine.ml_files_under p else [])
      paths
    |> List.sort_uniq String.compare
  in
  let parsed =
    List.filter_map
      (fun f ->
        match In_channel.with_open_bin f In_channel.input_all with
        | exception Sys_error _ -> None
        | contents -> (
          match Engine.parse_impl ~path:f contents with
          | Ok st -> Some (f, st)
          | Error _ -> None))
      files
  in
  analyze parsed
