(** leotp-dim: interprocedural dimensional analysis ([--dim]).

    Infers a unit of measure for expressions over a small lattice
    (seconds/ms/us, bytes/bits/mb/packets, meters/km, seqno, rates
    [a_per_b], mbps, dimensionless), seeded from known signatures
    ([Leotp_util.Units] conversions, [Engine] times, [Link]/[Bandwidth]
    rates, [Rto] estimators, [Cc] windows, [Geo] distances, packet
    [Wire] slot accessors) and propagated over the call graph with a
    per-parameter fixpoint.  Parameters take their units from evidence
    inside their own bodies only — never from call sites — so generic
    helpers stay unit-polymorphic.

    Rules: [dim-mixed-arith] (adding/subtracting/comparing
    incompatible units), [dim-bad-product] (rate x rate, time x time),
    [dim-raw-conversion] (a magic constant re-deriving a [Units]
    helper, e.g. [*. 1000.] on seconds), [dim-seqno-arith] (ordinal
    sequence numbers meeting sizes) and [dim-annotation] (grammar
    violations).  Pins: [[@@leotp.dim "seconds dt, returns bytes"]] on
    bindings, [(e [@leotp.dim "seconds"])] on expressions.  Findings
    are reported for lib/ only (units.ml exempt) and respect
    [[@leotp.allow "rule-id"]]. *)

val mixed_id : string
val product_id : string
val conv_id : string
val seqno_id : string
val annot_id : string

val analyze : (string * Ppxlib.structure) list -> Finding.t list
(** Run the pass over pre-parsed units ([(path, ast)]).  Input order is
    irrelevant: units are sorted by path and findings ordered by
    {!Finding.compare}, so output is byte-stable. *)

val analyze_sources : (string * string) list -> Finding.t list
(** Like {!analyze} for in-memory sources (tests); unparsable sources
    are skipped. *)

val scan : string list -> Finding.t list
(** Analyze every [.ml] under the given roots (the walk {!Engine.scan}
    uses).  Unparsable files are skipped: Engine.scan reports them as
    parse-error findings. *)
