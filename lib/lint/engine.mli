(** Analyzer driver: parse, run rules, apply [[@leotp.allow]]
    suppressions, report. *)

val lint_source : path:string -> ?mli_exists:bool -> string -> Finding.t list
(** Lint one compilation unit given as a string.  [path] determines the
    rule scope (lib/ vs bench/ vs bin/) and is echoed in findings; pass
    [~mli_exists] to enable the missing-interface check (omitted for
    in-memory fixtures).  A file that does not parse yields a single
    ["parse-error"] finding rather than an exception. *)

val lint_file : string -> Finding.t list
(** Read and lint one file; [mli_exists] is taken from the file system. *)

type report = { files : int; findings : Finding.t list }

val scan : string list -> report
(** Recursively lint every [.ml] under the given files/directories
    (skipping [_build], dot-dirs and the like), in sorted order so the
    report is deterministic. *)
