(** Analyzer driver: parse, run rules, apply [[@leotp.allow]]
    suppressions, report. *)

val lint_source : path:string -> ?mli_exists:bool -> string -> Finding.t list
(** Lint one compilation unit given as a string.  [path] determines the
    rule scope (lib/ vs bench/ vs bin/) and is echoed in findings; pass
    [~mli_exists] to enable the missing-interface check (omitted for
    in-memory fixtures).  A file that does not parse yields a single
    ["parse-error"] finding rather than an exception. *)

val lint_file : string -> Finding.t list
(** Read and lint one file; [mli_exists] is taken from the file system. *)

type report = { files : int; findings : Finding.t list }

val scan : string list -> report
(** Recursively lint every [.ml] under the given files/directories
    (skipping [_build], dot-dirs and the like), in sorted order and with
    exact-duplicate findings collapsed, so the report is deterministic
    and byte-identical across runs. *)

(** {2 Shared plumbing for other passes (Race)} *)

val parse_impl :
  path:string -> string -> (Ppxlib.structure, string) result
(** Parse one implementation with positions attributed to [path]. *)

val ml_files_under : string -> string list
(** Every [.ml] file under a root (the walk {!scan} uses): skips
    [_build], dot-dirs, [_opam], [node_modules]. *)

type allows
(** Collected [[@leotp.allow]] suppressions of one unit. *)

val collect_allows : Ppxlib.structure -> allows

val suppressed :
  allows -> rule:string -> loc:Ppxlib.Location.t -> bool
(** Is [rule] allowed at [loc] — by a file-level [[@@@leotp.allow]] or
    an item/expression allow whose range contains [loc]? *)
