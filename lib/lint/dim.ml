(* leotp-dim: interprocedural dimensional analysis (units of measure).

   The protocol math is all bare [float]/[int]: seconds next to bytes,
   Mbps next to bytes/second, km next to m.  This pass infers a unit
   for as many expressions as it can and flags arithmetic that mixes
   incompatible units, on the same syntactic substrate as the other
   interprocedural passes (per-file defs resolved with
   Callgraph.resolves, a per-parameter fixpoint shaped like own.ml's
   role inference).

   The lattice is deliberately small:

     base  := seconds | ms | us | bytes | bits | mb | packets
            | meters | km | seqno
     u     := base | base per base (a rate) | mbps | dimensionless

   Values start Unknown and only become Known through evidence:

   - {b seeds} — known signatures: every [Leotp_util.Units] conversion,
     [Engine.now]/[schedule]/[every]/[run] times, [Link] delay and rate
     accessors, [Bandwidth] Mbps constructors, [Rto] times, [Cc]
     window sizes, [Geo] distances, and the packet wire accessors
     ([Wire.timestamp] is seconds, [Wire.send_rate] bytes/s, ...).
   - {b pins} — [[@@leotp.dim "seconds dt, returns bytes"]] on a
     binding, or [(e [@leotp.dim "seconds"])] on an expression
     (grammar-checked; violations are [dim-annotation] findings).
   - {b propagation} — a per-parameter fixpoint: a parameter's unit
     comes from evidence in its own body (passed to a slot with a
     known unit, or added to / compared with a known value).  It is
     deliberately {e not} inferred from call sites: generic helpers
     ([Stats.add], [clamp]) must stay polymorphic in units.

   Arithmetic is then checked bottom-up: [+.]/[-.]/comparisons/
   [min]/[max] demand equal units ([dim-mixed-arith], or
   [dim-seqno-arith] when an ordinal sequence number meets a size);
   products and quotients follow a small dimensional algebra
   (rate x time = amount, amount / time = rate, x / x = dimensionless)
   with [dim-bad-product] for rate x rate and time x time; and a
   Known value scaled by a magic constant that re-derives a [Units]
   helper ([*. 1000.] on seconds, [/. 8.] on bits, ...) is
   [dim-raw-conversion].  An unknown operand never flags: one-sided
   multiplication is scalar scaling by assumption.

   Findings are reported for lib/ only (bench/bin display math is out
   of scope) and never for units.ml itself, whose whole business is
   the raw conversions.  Like every leotp-lint pass this is
   best-effort and syntactic: record fields are untracked, so a unit
   laundered through a field read comes back Unknown.  Every finding
   carries a witness chain from the seed or pin that introduced each
   unit, and the escape hatch is a justified [[@leotp.allow
   "rule-id"]] at the site. *)

open Ppxlib

let mixed_id = "dim-mixed-arith"
let product_id = "dim-bad-product"
let conv_id = "dim-raw-conversion"
let seqno_id = "dim-seqno-arith"
let annot_id = "dim-annotation"
let dim_attr = "leotp.dim"

(* ------------------------------------------------------------------ *)
(* Small name helpers (each pass keeps its own private copies). *)

let ident_name (lid : Longident.t) =
  match Longident.flatten_exn lid with
  | exception _ -> "_"
  | parts -> String.concat "." parts

let split name = String.split_on_char '.' name

let leaf name =
  match List.rev (split name) with l :: _ -> l | [] -> name

let rec is_suffix ~suffix l =
  let ls = List.length suffix and ll = List.length l in
  if ll < ls then false
  else if ll = ls then l = suffix
  else match l with [] -> false | _ :: tl -> is_suffix ~suffix tl

let ends_with_any names n =
  let segs = split n in
  List.exists (fun s -> is_suffix ~suffix:(split s) segs) names

let line (loc : Location.t) = loc.loc_start.pos_lnum
let col (loc : Location.t) = loc.loc_start.pos_cnum - loc.loc_start.pos_bol

let path_segs path =
  List.filter (fun s -> s <> "") (String.split_on_char '/' path)

(* Findings are scoped to lib/: bench/ and bin/ are presentation code.
   units.ml is the one lib/ file whose business is raw conversions. *)
let reportable path =
  (match path_segs path with "lib" :: _ -> true | _ -> false)
  && Filename.basename path <> "units.ml"

(* ------------------------------------------------------------------ *)
(* The unit lattice *)

type base =
  | Seconds
  | Millis
  | Micros
  | Bytes
  | Bits
  | Megabytes
  | Packets
  | Meters
  | Km
  | Seqno

type u = Base of base | Rate of base * base | Mbps | Dimensionless

let base_name = function
  | Seconds -> "seconds"
  | Millis -> "ms"
  | Micros -> "us"
  | Bytes -> "bytes"
  | Bits -> "bits"
  | Megabytes -> "mb"
  | Packets -> "packets"
  | Meters -> "meters"
  | Km -> "km"
  | Seqno -> "seqno"

let u_name = function
  | Base b -> base_name b
  | Rate (a, b) -> Printf.sprintf "%s_per_%s" (base_name a) (base_name b)
  | Mbps -> "mbps"
  | Dimensionless -> "dimensionless"

let base_of_name = function
  | "seconds" | "sec" | "s" -> Some Seconds
  | "ms" -> Some Millis
  | "us" -> Some Micros
  | "bytes" -> Some Bytes
  | "bits" -> Some Bits
  | "mb" -> Some Megabytes
  | "packets" -> Some Packets
  | "meters" -> Some Meters
  | "km" -> Some Km
  | "seqno" -> Some Seqno
  | _ -> None

(* "bytes_per_sec" -> Rate (Bytes, Seconds); the separator is the
   literal substring "_per_". *)
let split_per s =
  let sep = "_per_" in
  let n = String.length s and m = String.length sep in
  let rec find i =
    if i + m > n then None
    else if String.sub s i m = sep then
      Some (String.sub s 0 i, String.sub s (i + m) (n - i - m))
    else find (i + 1)
  in
  find 0

let u_of_name s =
  match s with
  | "mbps" -> Some Mbps
  | "dimensionless" | "scalar" -> Some Dimensionless
  | _ -> (
    match base_of_name s with
    | Some b -> Some (Base b)
    | None -> (
      match split_per s with
      | Some (a, b) -> (
        match (base_of_name a, base_of_name b) with
        | Some a, Some b -> Some (Rate (a, b))
        | _ -> None)
      | None -> None))

let unit_grammar =
  "seconds|ms|us|bytes|bits|mb|packets|meters|km|seqno|mbps|dimensionless|\
   <base>_per_<base>"

(* A known value: its unit plus the chain of evidence that produced
   it, origin first ("Engine.now returns seconds (seed)" -> ...). *)
type value = { vu : u; vprov : string list }

let elide steps =
  let n = List.length steps in
  if n <= 5 then steps
  else
    List.filteri (fun i _ -> i < 2) steps
    @ [ Printf.sprintf "... %d more ..." (n - 4) ]
    @ List.filteri (fun i _ -> i >= n - 2) steps

let fmt_prov prov = String.concat " -> " (elide prov)
let describe v = Printf.sprintf "%s (via %s)" (u_name v.vu) (fmt_prov v.vprov)

(* ------------------------------------------------------------------ *)
(* Seed signatures *)

type slot = Lbl of string | Pos of int

let slot_desc = function
  | Lbl s -> "~" ^ s
  | Pos i -> Printf.sprintf "arg %d" (i + 1)

type seed = { s_fn : string; s_args : (slot * u) list; s_ret : u option }

let bps = Rate (Bytes, Seconds)

let seeds =
  [
    (* Leotp_util.Units conversions: argument and result units are the
       ground truth of the whole analysis. *)
    { s_fn = "Units.mbps_to_bytes_per_sec"; s_args = [ (Pos 0, Mbps) ]; s_ret = Some bps };
    { s_fn = "Units.bytes_per_sec_to_mbps"; s_args = [ (Pos 0, bps) ]; s_ret = Some Mbps };
    { s_fn = "Units.ms_to_sec"; s_args = [ (Pos 0, Base Millis) ]; s_ret = Some (Base Seconds) };
    { s_fn = "Units.sec_to_ms"; s_args = [ (Pos 0, Base Seconds) ]; s_ret = Some (Base Millis) };
    { s_fn = "Units.usec_to_sec"; s_args = [ (Pos 0, Base Micros) ]; s_ret = Some (Base Seconds) };
    { s_fn = "Units.sec_to_usec"; s_args = [ (Pos 0, Base Seconds) ]; s_ret = Some (Base Micros) };
    { s_fn = "Units.km_to_m"; s_args = [ (Pos 0, Base Km) ]; s_ret = Some (Base Meters) };
    { s_fn = "Units.m_to_km"; s_args = [ (Pos 0, Base Meters) ]; s_ret = Some (Base Km) };
    { s_fn = "Units.mb_to_bytes"; s_args = [ (Pos 0, Base Megabytes) ]; s_ret = Some (Base Bytes) };
    { s_fn = "Units.bytes_to_mb"; s_args = [ (Pos 0, Base Bytes) ]; s_ret = Some (Base Megabytes) };
    { s_fn = "Units.mb_to_bytes_int"; s_args = [ (Pos 0, Base Megabytes) ]; s_ret = Some (Base Bytes) };
    { s_fn = "Units.bytes_to_mb_int"; s_args = [ (Pos 0, Base Bytes) ]; s_ret = Some (Base Megabytes) };
    { s_fn = "Units.bytes_to_bits"; s_args = [ (Pos 0, Base Bytes) ]; s_ret = Some (Base Bits) };
    { s_fn = "Units.bits_to_bytes"; s_args = [ (Pos 0, Base Bits) ]; s_ret = Some (Base Bytes) };
    (* Simulated time. *)
    { s_fn = "Engine.now"; s_args = []; s_ret = Some (Base Seconds) };
    { s_fn = "Engine.schedule"; s_args = [ (Lbl "after", Base Seconds) ]; s_ret = None };
    { s_fn = "Engine.schedule_at"; s_args = [ (Lbl "time", Base Seconds) ]; s_ret = None };
    { s_fn = "Engine.every"; s_args = [ (Lbl "period", Base Seconds); (Lbl "start", Base Seconds) ]; s_ret = None };
    { s_fn = "Engine.run"; s_args = [ (Lbl "until", Base Seconds) ]; s_ret = None };
    { s_fn = "Engine.run_slice"; s_args = [ (Lbl "until", Base Seconds) ]; s_ret = None };
    (* Links and bandwidth processes. *)
    { s_fn = "Link.create"; s_args = [ (Lbl "delay", Base Seconds) ]; s_ret = None };
    { s_fn = "Link.delay"; s_args = []; s_ret = Some (Base Seconds) };
    { s_fn = "Link.set_delay"; s_args = [ (Pos 1, Base Seconds) ]; s_ret = None };
    { s_fn = "Link.current_rate"; s_args = []; s_ret = Some bps };
    { s_fn = "Link.queue_bytes"; s_args = []; s_ret = Some (Base Bytes) };
    { s_fn = "Link.set_buffer_bytes"; s_args = [ (Pos 1, Base Bytes) ]; s_ret = None };
    { s_fn = "Link.queued_packets"; s_args = []; s_ret = Some (Base Packets) };
    { s_fn = "Link.in_flight"; s_args = []; s_ret = Some (Base Packets) };
    { s_fn = "Bandwidth.constant_mbps"; s_args = [ (Pos 0, Mbps) ]; s_ret = None };
    { s_fn = "Bandwidth.square_mbps";
      s_args = [ (Lbl "mean", Mbps); (Lbl "amplitude", Mbps); (Lbl "period", Base Seconds) ];
      s_ret = None };
    { s_fn = "Bandwidth.at"; s_args = [ (Pos 1, Base Seconds) ]; s_ret = Some bps };
    { s_fn = "Bandwidth.mean_over"; s_args = [ (Lbl "t_end", Base Seconds) ]; s_ret = Some bps };
    (* RTO estimation (RFC 6298): everything is seconds. *)
    { s_fn = "Rto.create";
      s_args = [ (Lbl "initial_rto", Base Seconds); (Lbl "min_rto", Base Seconds); (Lbl "max_rto", Base Seconds) ];
      s_ret = None };
    { s_fn = "Rto.observe"; s_args = [ (Pos 1, Base Seconds) ]; s_ret = None };
    { s_fn = "Rto.rto"; s_args = []; s_ret = Some (Base Seconds) };
    { s_fn = "Rto.base_rto"; s_args = []; s_ret = Some (Base Seconds) };
    { s_fn = "Rto.srtt"; s_args = []; s_ret = Some (Base Seconds) };
    { s_fn = "Rto.rttvar"; s_args = []; s_ret = Some (Base Seconds) };
    (* Congestion-control window sizes are bytes (fmss floats an
       integral MSS). *)
    { s_fn = "Cc.fmss"; s_args = []; s_ret = Some (Base Bytes) };
    { s_fn = "Cc_intf.fmss"; s_args = []; s_ret = Some (Base Bytes) };
    { s_fn = "Cc.initial_window"; s_args = []; s_ret = Some (Base Bytes) };
    { s_fn = "Cc_intf.initial_window"; s_args = []; s_ret = Some (Base Bytes) };
    { s_fn = "Cc.min_window"; s_args = []; s_ret = Some (Base Bytes) };
    { s_fn = "Cc_intf.min_window"; s_args = []; s_ret = Some (Base Bytes) };
    (* Orbital geometry: distances in meters, delays in seconds. *)
    { s_fn = "Geo.distance"; s_args = []; s_ret = Some (Base Meters) };
    { s_fn = "Geo.great_circle_distance"; s_args = []; s_ret = Some (Base Meters) };
    { s_fn = "Geo.propagation_delay"; s_args = [ (Pos 0, Base Meters) ]; s_ret = Some (Base Seconds) };
    (* Packet wire accessors: float-slot roles from lib/core/wire.ml
       and lib/tcp/wire.ml (both modules are named Wire; the slots
       agree).  lo/hi/seq are byte offsets, so differences are byte
       counts. *)
    { s_fn = "Wire.timestamp"; s_args = []; s_ret = Some (Base Seconds) };
    { s_fn = "Wire.sent_at"; s_args = []; s_ret = Some (Base Seconds) };
    { s_fn = "Wire.first_sent"; s_args = []; s_ret = Some (Base Seconds) };
    { s_fn = "Wire.req_owd"; s_args = []; s_ret = Some (Base Seconds) };
    { s_fn = "Wire.send_rate"; s_args = []; s_ret = Some bps };
    { s_fn = "Wire.lo"; s_args = []; s_ret = Some (Base Bytes) };
    { s_fn = "Wire.hi"; s_args = []; s_ret = Some (Base Bytes) };
    { s_fn = "Wire.seq"; s_args = []; s_ret = Some (Base Bytes) };
    { s_fn = "Wire.length"; s_args = []; s_ret = Some (Base Bytes) };
    { s_fn = "Wire.len"; s_args = []; s_ret = Some (Base Bytes) };
    { s_fn = "Wire.set_ts_echo"; s_args = [ (Pos 1, Base Seconds) ]; s_ret = None };
    { s_fn = "Wire.interest_packet";
      s_args = [ (Lbl "lo", Base Bytes); (Lbl "hi", Base Bytes); (Lbl "timestamp", Base Seconds); (Lbl "send_rate", bps) ];
      s_ret = None };
    { s_fn = "Wire.data_packet";
      s_args =
        [ (Lbl "lo", Base Bytes); (Lbl "hi", Base Bytes); (Lbl "timestamp", Base Seconds);
          (Lbl "req_owd", Base Seconds); (Lbl "first_sent", Base Seconds);
          (Lbl "seq", Base Bytes); (Lbl "len", Base Bytes); (Lbl "sent_at", Base Seconds) ];
      s_ret = None };
    { s_fn = "Wire.vph_packet";
      s_args = [ (Lbl "lo", Base Bytes); (Lbl "hi", Base Bytes); (Lbl "timestamp", Base Seconds) ];
      s_ret = None };
  ]

(* Known constants. *)
let ident_seeds =
  [
    ("Units.speed_of_light", Rate (Meters, Seconds));
    ("Units.earth_radius", Base Meters);
  ]

let seeds_for n = List.filter (fun s -> ends_with_any [ s.s_fn ] n) seeds

let ident_seed n =
  List.find_map
    (fun (i, u) ->
      if ends_with_any [ i ] n then
        Some { vu = u; vprov = [ Printf.sprintf "%s is %s (seed)" i (u_name u) ] }
      else None)
    ident_seeds

(* ------------------------------------------------------------------ *)
(* Def extraction *)

type dparam = { dp_name : string; dp_label : string option }
type fbody = Body of expression | Cases of case list

type ddef = {
  dfile : string;
  dqname : string;
  dscope : string list;
  dparams : dparam list;
  dbody : fbody;
  dattrs : (string * Location.t) list;  (** raw [@leotp.dim] payloads *)
  dalias : string option;  (** RHS is a bare ident: [let mbps = Units....] *)
  dfun : bool;  (** binding RHS is a function *)
}

let binding_name (vb : value_binding) =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
  | _ -> None

let rec pat_name (p : pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (inner, _) | Ppat_alias (inner, _) -> pat_name inner
  | _ -> None

let dparam_of (fp : function_param) =
  match fp.pparam_desc with
  | Pparam_val (lbl, _, pat) ->
    Some
      {
        dp_name = (match pat_name pat with Some n -> n | None -> "_");
        dp_label =
          (match lbl with Labelled s | Optional s -> Some s | Nolabel -> None);
      }
  | Pparam_newtype _ -> None

let rec peel acc (e : expression) =
  match e.pexp_desc with
  | Pexp_function (ps, _, Pfunction_body inner) -> peel (acc @ ps) inner
  | Pexp_function (ps, _, Pfunction_cases (cs, _, _)) ->
    let scrutinee = { dp_name = "_"; dp_label = None } in
    (List.filter_map dparam_of (acc @ ps) @ [ scrutinee ], Cases cs)
  | Pexp_constraint (inner, _) -> peel acc inner
  | _ -> (List.filter_map dparam_of acc, Body e)

let is_function (e : expression) =
  match e.pexp_desc with
  | Pexp_function _ -> true
  | Pexp_constraint ({ pexp_desc = Pexp_function _; _ }, _) -> true
  | _ -> false

let rec alias_of (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (ident_name txt)
  | Pexp_constraint (inner, _) -> alias_of inner
  | _ -> None

let attr_payload (attr : attribute) =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    Some s
  | _ -> None

let dims_of_attrs (attrs : attributes) =
  List.filter_map
    (fun (a : attribute) ->
      if a.attr_name.txt = dim_attr then
        Some
          ((match attr_payload a with Some s -> s | None -> ""), a.attr_loc)
      else None)
    attrs

let extract_defs ~path st : ddef list =
  let modname = Callgraph.module_name_of_path path in
  let defs = ref [] in
  let rec items scope sis = List.iter (item scope) sis
  and item scope (si : structure_item) =
    match si.pstr_desc with
    | Pstr_value (_, vbs) -> List.iter (binding scope) vbs
    | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } ->
      module_expr (scope @ [ name ]) pmb_expr
    | Pstr_recmodule mbs ->
      List.iter
        (fun (mb : module_binding) ->
          match mb.pmb_name.txt with
          | Some name -> module_expr (scope @ [ name ]) mb.pmb_expr
          | None -> ())
        mbs
    | Pstr_include { pincl_mod; _ } -> module_expr scope pincl_mod
    | _ -> ()
  and module_expr scope (me : module_expr) =
    match me.pmod_desc with
    | Pmod_structure sis -> items scope sis
    | Pmod_constraint (me, _) -> module_expr scope me
    | Pmod_functor (_, me) -> module_expr scope me
    | _ -> ()
  and binding scope (vb : value_binding) =
    let qname =
      match binding_name vb with
      | Some n -> String.concat "." (scope @ [ n ])
      | None ->
        Printf.sprintf "%s.<top:%d>" (String.concat "." scope)
          (line vb.pvb_loc)
    in
    let func = is_function vb.pvb_expr in
    let params, fb =
      if func then peel [] vb.pvb_expr else ([], Body vb.pvb_expr)
    in
    defs :=
      {
        dfile = path;
        dqname = qname;
        dscope = scope;
        dparams = params;
        dbody = fb;
        dattrs = dims_of_attrs vb.pvb_attributes;
        dalias = (if func then None else alias_of vb.pvb_expr);
        dfun = func;
      }
      :: !defs
  in
  items [ modname ] st;
  List.rev !defs

(* ------------------------------------------------------------------ *)
(* Summaries and the environment *)

type summary = {
  sm_param : value option array;
  sm_forced : bool array;  (** pinned by a seed or [@leotp.dim] *)
  mutable sm_ret : value option;
  mutable sm_ret_forced : bool;
}

type env = {
  defs_by_leaf : (string, ddef) Hashtbl.t;
  summaries : (string * string, summary) Hashtbl.t;
  mutable changed : bool;
}

let summary_of env (d : ddef) =
  match Hashtbl.find_opt env.summaries (d.dfile, d.dqname) with
  | Some s -> s
  | None ->
    let n = List.length d.dparams in
    let s =
      {
        sm_param = Array.make n None;
        sm_forced = Array.make n false;
        sm_ret = None;
        sm_ret_forced = false;
      }
    in
    Hashtbl.replace env.summaries (d.dfile, d.dqname) s;
    s

let resolve_defs env ~scope written =
  Hashtbl.find_all env.defs_by_leaf (leaf written)
  |> List.filter (fun (d : ddef) ->
         Callgraph.resolves ~scope ~written ~qname:d.dqname)
  |> List.sort (fun (a : ddef) b ->
         compare (a.dfile, a.dqname) (b.dfile, b.dqname))

(* Slot of the i-th parameter: its label, or its rank among the
   unlabeled parameters. *)
let slot_of_params params =
  let pos = ref 0 in
  List.map
    (fun p ->
      match p.dp_label with
      | Some s -> (Lbl s, p)
      | None ->
        let k = !pos in
        incr pos;
        (Pos k, p))
    params

(* The visible signature of a callee written [n]: expected slot units
   and the return unit, combining matching seeds with resolved def
   summaries (alias bindings forward to their target). *)
type callee_sig = { cs_slots : (slot * value) list; cs_ret : value option }

let empty_sig = { cs_slots = []; cs_ret = None }

let rec callee_sig env ~depth ~scope n : callee_sig =
  if depth > 4 then empty_sig
  else begin
    let matching = seeds_for n in
    let seed_slots =
      List.concat_map
        (fun s ->
          List.map
            (fun (slot, u) ->
              ( slot,
                {
                  vu = u;
                  vprov =
                    [
                      Printf.sprintf "%s %s is %s (seed)" s.s_fn
                        (slot_desc slot) (u_name u);
                    ];
                } ))
            s.s_args)
        matching
    in
    let seed_ret =
      List.find_map
        (fun s ->
          match s.s_ret with
          | Some u ->
            Some
              {
                vu = u;
                vprov =
                  [ Printf.sprintf "%s returns %s (seed)" s.s_fn (u_name u) ];
              }
          | None -> None)
        matching
    in
    let ds = resolve_defs env ~scope n in
    let def_slots, def_ret =
      List.fold_left
        (fun (slots, ret) (d : ddef) ->
          match d.dalias with
          | Some target ->
            let s = callee_sig env ~depth:(depth + 1) ~scope:d.dscope target in
            (slots @ s.cs_slots, if ret = None then s.cs_ret else ret)
          | None ->
            let sm = summary_of env d in
            let dslots =
              List.mapi
                (fun i (slot, _) ->
                  match sm.sm_param.(i) with
                  | Some v -> Some (slot, v)
                  | None -> None)
                (slot_of_params d.dparams)
              |> List.filter_map Fun.id
            in
            (slots @ dslots, if ret = None then sm.sm_ret else ret))
        ([], None) ds
    in
    {
      cs_slots = seed_slots @ def_slots;
      cs_ret = (match seed_ret with Some _ -> seed_ret | None -> def_ret);
    }
  end

(* ------------------------------------------------------------------ *)
(* Annotation grammar: "<unit> <param>...", "returns <unit>" or a bare
   "<unit>" (expression pins and parameterless bindings), clauses
   separated by commas. *)

type clause = CRet of u | CParams of u * string list | CBare of u

let parse_dim payload : (clause list, string) result =
  let clauses =
    String.split_on_char ',' payload
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if clauses = [] then Error "empty payload"
  else
    let parse_clause c =
      let words =
        List.filter (fun w -> w <> "") (String.split_on_char ' ' c)
      in
      match words with
      | [] -> Error "empty clause"
      | [ "returns" ] -> Error "\"returns\" needs a unit"
      | [ "returns"; uw ] -> (
        match u_of_name uw with
        | Some u -> Ok (CRet u)
        | None ->
          Error
            (Printf.sprintf "unknown unit %S (expected %s)" uw unit_grammar))
      | "returns" :: _ -> Error "\"returns\" takes exactly one unit"
      | uw :: params -> (
        match u_of_name uw with
        | None ->
          Error
            (Printf.sprintf "unknown unit %S (expected %s)" uw unit_grammar)
        | Some u ->
          if params = [] then Ok (CBare u) else Ok (CParams (u, params)))
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | c :: tl -> (
        match parse_clause c with
        | Ok cl -> go (cl :: acc) tl
        | Error e -> Error e)
    in
    go [] clauses

(* Pin a binding's [@leotp.dim] clauses into its summary.  Grammar
   errors are ignored here and reported as dim-annotation findings by
   the report pass. *)
let apply_pins env (d : ddef) =
  let sm = summary_of env d in
  List.iter
    (fun (payload, _) ->
      match parse_dim payload with
      | Error _ -> ()
      | Ok clauses ->
        let pin_ret u =
          sm.sm_ret <-
            Some
              {
                vu = u;
                vprov =
                  [
                    Printf.sprintf "%s returns %s ([@leotp.dim] pin)"
                      d.dqname (u_name u);
                  ];
              };
          sm.sm_ret_forced <- true
        in
        List.iter
          (fun cl ->
            match cl with
            | CRet u -> pin_ret u
            | CBare u -> if d.dparams = [] then pin_ret u
            | CParams (u, names) ->
              List.iteri
                (fun i p ->
                  if List.mem p.dp_name names then begin
                    sm.sm_param.(i) <-
                      Some
                        {
                          vu = u;
                          vprov =
                            [
                              Printf.sprintf "%s %s is %s ([@leotp.dim] pin)"
                                d.dqname p.dp_name (u_name u);
                            ];
                        };
                    sm.sm_forced.(i) <- true
                  end)
                d.dparams)
          clauses)
    d.dattrs

(* Pin the seed table into the seeded functions' own summaries, so
   their parameters carry units inside their own bodies too. *)
let apply_seeds env (d : ddef) =
  let sm = summary_of env d in
  List.iter
    (fun s ->
      List.iter
        (fun (slot, u) ->
          List.iteri
            (fun i (pslot, p) ->
              let hit =
                match (slot, pslot) with
                | Lbl a, Lbl b -> a = b
                | Pos a, Pos b -> a = b
                | Lbl a, Pos _ -> p.dp_name = a
                | _ -> false
              in
              if hit && sm.sm_param.(i) = None then begin
                sm.sm_param.(i) <-
                  Some
                    {
                      vu = u;
                      vprov =
                        [
                          Printf.sprintf "%s %s is %s (seed)" s.s_fn
                            (slot_desc slot) (u_name u);
                        ];
                    };
                sm.sm_forced.(i) <- true
              end)
            (slot_of_params d.dparams))
        s.s_args;
      match s.s_ret with
      | Some u when not sm.sm_ret_forced ->
        sm.sm_ret <-
          Some
            {
              vu = u;
              vprov =
                [ Printf.sprintf "%s returns %s (seed)" s.s_fn (u_name u) ];
            };
        sm.sm_ret_forced <- true
      | _ -> ())
    (seeds_for d.dqname)

(* ------------------------------------------------------------------ *)
(* The dimensional algebra *)

let is_time = function Seconds | Millis | Micros -> true | _ -> false
let is_amount = function Bytes | Bits | Megabytes | Packets -> true | _ -> false

(* add/sub/compare: which rule (if any) does mixing [a] and [b]
   violate? *)
let mix_rule a b =
  if a = b then None
  else
    let seqno_size x y =
      match (x, y) with
      | Base Seqno, Base z -> is_amount z
      | _ -> false
    in
    if seqno_size a b || seqno_size b a then Some seqno_id
    else Some mixed_id

let mul_unit a b =
  match (a, b) with
  | Dimensionless, u | u, Dimensionless -> Ok (Some u)
  | Rate (x, y), Base z when y = z -> Ok (Some (Base x))
  | Base z, Rate (x, y) when y = z -> Ok (Some (Base x))
  | Base x, Base y when is_time x && is_time y ->
    Error (Printf.sprintf "%s x %s (a duration squared)" (base_name x) (base_name y))
  | (Rate _ | Mbps), (Rate _ | Mbps) ->
    Error (Printf.sprintf "%s x %s (a rate times a rate)" (u_name a) (u_name b))
  | _ -> Ok None

let div_unit a b =
  if a = b then Some Dimensionless
  else
    match (a, b) with
    | u, Dimensionless -> Some u
    | Base x, Base y -> Some (Rate (x, y))
    | Base x, Rate (x', y) when x = x' -> Some (Base y)
    | _ -> None

(* Magic constants that re-derive a Units helper: (unit of the scaled
   value, operator, literal) -> (helper name, resulting unit). *)
let conversions =
  [
    (Base Seconds, `Mul, 1_000.0, "sec_to_ms", Base Millis);
    (Base Millis, `Div, 1_000.0, "ms_to_sec", Base Seconds);
    (Base Seconds, `Mul, 1_000_000.0, "sec_to_usec", Base Micros);
    (Base Micros, `Div, 1_000_000.0, "usec_to_sec", Base Seconds);
    (Base Bytes, `Mul, 8.0, "bytes_to_bits", Base Bits);
    (Base Bits, `Div, 8.0, "bits_to_bytes", Base Bytes);
    (Base Bytes, `Div, 1_000_000.0, "bytes_to_mb", Base Megabytes);
    (Base Megabytes, `Mul, 1_000_000.0, "mb_to_bytes", Base Bytes);
    (Base Meters, `Div, 1_000.0, "m_to_km", Base Km);
    (Base Km, `Mul, 1_000.0, "km_to_m", Base Meters);
  ]

let conversion_of u op lit =
  List.find_map
    (fun (cu, cop, clit, helper, res) ->
      if cu = u && cop = op && clit = lit then Some (helper, res) else None)
    conversions

(* ------------------------------------------------------------------ *)
(* The abstract walk *)

type entry = Pvar of int | Vval of value option

type ectx = {
  e_def : ddef;
  e_env : env;
  e_sum : summary;
  e_emit : (rule:string -> loc:Location.t -> string -> unit) option;
  e_infer : bool;
}

let emit ctx ~rule ~loc msg =
  match ctx.e_emit with Some f -> f ~rule ~loc msg | None -> ()

let rec unwrap (e : expression) =
  match e.pexp_desc with
  | Pexp_constraint (inner, _) | Pexp_open (_, inner) -> unwrap inner
  | _ -> e

let literal_of (e : expression) =
  match (unwrap e).pexp_desc with
  | Pexp_constant (Pconst_float (s, _)) -> float_of_string_opt s
  | Pexp_constant (Pconst_integer (s, _)) -> (
    match int_of_string_opt s with
    | Some i -> Some (float_of_int i)
    | None -> None)
  | _ -> None

(* The bare variable named by [e], if any (for parameter evidence). *)
let var_of (e : expression) =
  match (unwrap e).pexp_desc with
  | Pexp_ident { txt = Lident v; _ } -> Some v
  | _ -> None

(* Record evidence that parameter-valued expression [e] has the unit
   of [expected]: first Known wins, pins never move. *)
let evidence ctx venv (e : expression) (expected : value) =
  if ctx.e_infer then
    match var_of e with
    | None -> ()
    | Some v -> (
      match List.assoc_opt v venv with
      | Some (Pvar i)
        when ctx.e_sum.sm_param.(i) = None && not ctx.e_sum.sm_forced.(i) ->
        let pname =
          match List.nth_opt ctx.e_def.dparams i with
          | Some p -> p.dp_name
          | None -> v
        in
        ctx.e_sum.sm_param.(i) <-
          Some
            {
              vu = expected.vu;
              vprov =
                expected.vprov
                @ [ Printf.sprintf "flows into %s %s" ctx.e_def.dqname pname ];
            };
        ctx.e_env.changed <- true
      | _ -> ())

let join a b =
  match (a, b) with
  | Some x, Some y when x.vu = y.vu -> Some x
  | _ -> None

let check_mix ctx ~loc ~what (a : value) (b : value) =
  match mix_rule a.vu b.vu with
  | None -> ()
  | Some rule ->
    let detail =
      if rule = seqno_id then
        "an ordinal sequence number is not a size; convert explicitly \
         (offset difference, count x size) or justify with [@leotp.allow \
         \"dim-seqno-arith\"]"
      else
        "convert one side via Leotp_util.Units or justify with \
         [@leotp.allow \"dim-mixed-arith\"]"
    in
    emit ctx ~rule ~loc
      (Printf.sprintf "%s mixes %s with %s; %s; witness: %s vs %s at line %d"
         what (u_name a.vu) (u_name b.vu) detail (describe a) (describe b)
         (line loc))

let pattern_vars (p : pattern) =
  let vars = ref [] in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! pattern p =
        (match p.ppat_desc with
        | Ppat_var { txt; _ } -> vars := txt :: !vars
        | Ppat_alias (_, { txt; _ }) -> vars := txt :: !vars
        | _ -> ());
        super#pattern p
    end
  in
  it#pattern p;
  List.rev !vars

(* Bind a pattern against the scrutinee's value: a plain variable (and
   a single-argument constructor around one, [Some x]) sees the value;
   every other bound variable shadows to Unknown. *)
let rec bind_pattern (p : pattern) (v : value option) venv =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> (txt, Vval v) :: venv
  | Ppat_alias (inner, { txt; _ }) -> bind_pattern inner v ((txt, Vval v) :: venv)
  | Ppat_constraint (inner, _) -> bind_pattern inner v venv
  | Ppat_construct (_, Some (_, { ppat_desc = Ppat_var { txt; _ }; _ })) ->
    (txt, Vval v) :: venv
  | _ -> List.map (fun n -> (n, Vval None)) (pattern_vars p) @ venv

let add_sub_ops = [ "+."; "-."; "+"; "-" ]
let mul_ops = [ "*."; "*" ]
let div_ops = [ "/."; "/" ]

let cmp_ops =
  [ "<"; "<="; ">"; ">="; "="; "<>"; "=="; "!="; "compare"; "Float.compare";
    "Float.equal"; "Int.compare" ]

let minmax_ops = [ "min"; "max"; "Float.min"; "Float.max"; "Int.min"; "Int.max" ]

let preserve_ops =
  [ "abs_float"; "Float.abs"; "Float.round"; "Float.ceil"; "Float.floor";
    "ceil"; "floor"; "float_of_int"; "Float.of_int"; "int_of_float";
    "Float.to_int"; "truncate"; "abs"; "Int.abs"; "~-"; "~-."; "~+"; "~+.";
    "Stdlib.abs_float" ]

let rec eval ctx venv (e : expression) : value option =
  let natural = eval_desc ctx venv e in
  (* Expression-level pin: [(e [@leotp.dim "seconds"])] asserts and
     forces the unit. *)
  List.fold_left
    (fun v ((payload, aloc) : string * Location.t) ->
      match parse_dim payload with
      | Ok [ CBare u ] ->
        let pinned =
          {
            vu = u;
            vprov =
              [
                Printf.sprintf "[@leotp.dim %S] pin at line %d" payload
                  (line aloc);
              ];
          }
        in
        (match v with
        | Some got when got.vu <> u ->
          check_mix ctx ~loc:e.pexp_loc ~what:"annotated expression" pinned got
        | _ -> ());
        (match v with None -> evidence ctx venv e pinned | Some _ -> ());
        Some pinned
      | Ok _ ->
        emit ctx ~rule:annot_id ~loc:aloc
          (Printf.sprintf
             "[@leotp.dim] on an expression takes a single unit (%s), got %S"
             unit_grammar payload);
        v
      | Error err ->
        emit ctx ~rule:annot_id ~loc:aloc
          (Printf.sprintf "malformed [@leotp.dim] payload %S: %s" payload err);
        v)
    natural
    (dims_of_attrs e.pexp_attributes)

and eval_desc ctx venv (e : expression) : value option =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident v; _ } -> (
    match List.assoc_opt v venv with
    | Some (Pvar i) -> ctx.e_sum.sm_param.(i)
    | Some (Vval x) -> x
    | None -> ident_value ctx ~depth:0 v)
  | Pexp_ident { txt; _ } -> ident_value ctx ~depth:0 (ident_name txt)
  | Pexp_constant _ -> None
  | Pexp_let (_, vbs, body) ->
    let venv' =
      List.fold_left
        (fun acc (vb : value_binding) ->
          let v = eval ctx acc vb.pvb_expr in
          bind_pattern vb.pvb_pat v acc)
        venv vbs
    in
    eval ctx venv' body
  | Pexp_sequence (a, b) ->
    ignore (eval ctx venv a);
    eval ctx venv b
  | Pexp_ifthenelse (c, t, f) ->
    ignore (eval ctx venv c);
    let vt = eval ctx venv t in
    let vf = match f with Some f -> eval ctx venv f | None -> None in
    join vt vf
  | Pexp_match (scr, cases) | Pexp_try (scr, cases) ->
    let sv = eval ctx venv scr in
    List.fold_left
      (fun acc (c : case) ->
        let venv' = bind_pattern c.pc_lhs sv venv in
        (match c.pc_guard with
        | Some g -> ignore (eval ctx venv' g)
        | None -> ());
        let v = eval ctx venv' c.pc_rhs in
        if acc = None then v else join acc v)
      None cases
  | Pexp_function (ps, _, fb) ->
    let venv' =
      List.filter_map dparam_of ps
      |> List.fold_left (fun acc p -> (p.dp_name, Vval None) :: acc) venv
    in
    (match fb with
    | Pfunction_body b -> ignore (eval ctx venv' b)
    | Pfunction_cases (cs, _, _) ->
      List.iter
        (fun (c : case) ->
          let venv'' = bind_pattern c.pc_lhs None venv' in
          ignore (eval ctx venv'' c.pc_rhs))
        cs);
    None
  | Pexp_apply (f, args) -> eval_apply ctx venv e f args
  | Pexp_construct (_, Some arg) -> (
    match arg.pexp_desc with
    | Pexp_tuple parts ->
      List.iter (fun p -> ignore (eval ctx venv p)) parts;
      None
    | _ -> eval ctx venv arg (* [Some e], [Ok e]: transparent *))
  | Pexp_construct (_, None) -> None
  | Pexp_variant (_, Some arg) -> eval ctx venv arg
  | Pexp_variant (_, None) -> None
  | Pexp_tuple parts ->
    List.iter (fun p -> ignore (eval ctx venv p)) parts;
    None
  | Pexp_record (fields, base) ->
    List.iter (fun (_, v) -> ignore (eval ctx venv v)) fields;
    (match base with Some b -> ignore (eval ctx venv b) | None -> ());
    None
  | Pexp_array parts ->
    List.iter (fun p -> ignore (eval ctx venv p)) parts;
    None
  | Pexp_field (r, _) ->
    ignore (eval ctx venv r);
    None
  | Pexp_setfield (r, _, v) ->
    ignore (eval ctx venv r);
    ignore (eval ctx venv v);
    None
  | Pexp_constraint (inner, _) | Pexp_open (_, inner) | Pexp_lazy inner ->
    eval ctx venv inner
  | Pexp_assert inner ->
    ignore (eval ctx venv inner);
    None
  | Pexp_while (c, b) ->
    ignore (eval ctx venv c);
    ignore (eval ctx venv b);
    None
  | Pexp_for ({ ppat_desc = Ppat_var { txt; _ }; _ }, lo, hi, _, b) ->
    ignore (eval ctx venv lo);
    ignore (eval ctx venv hi);
    ignore (eval ctx ((txt, Vval None) :: venv) b);
    None
  | Pexp_for (_, lo, hi, _, b) ->
    ignore (eval ctx venv lo);
    ignore (eval ctx venv hi);
    ignore (eval ctx venv b);
    None
  | _ -> None

and ident_value ctx ~depth n : value option =
  if depth > 4 then None
  else
    match ident_seed n with
    | Some v -> Some v
    | None ->
      resolve_defs ctx.e_env ~scope:ctx.e_def.dscope n
      |> List.find_map (fun (d : ddef) ->
             match d.dalias with
             | Some t ->
               ident_value { ctx with e_def = { ctx.e_def with dscope = d.dscope } }
                 ~depth:(depth + 1) t
             | None ->
               if d.dfun then None
               else (summary_of ctx.e_env d).sm_ret)

and eval_apply ctx venv (e : expression) (f : expression) args : value option =
  let fname =
    match (unwrap f).pexp_desc with
    | Pexp_ident { txt; _ } -> Some (ident_name txt)
    | _ -> None
  in
  match fname with
  | None ->
    ignore (eval ctx venv f);
    List.iter (fun (_, a) -> ignore (eval ctx venv a)) args;
    None
  | Some n ->
    let exprs = List.map snd args in
    if List.mem n add_sub_ops && List.length exprs = 2 then
      let a = List.nth exprs 0 and b = List.nth exprs 1 in
      eval_add_sub ctx venv e n a b
    else if List.mem n mul_ops && List.length exprs = 2 then
      let a = List.nth exprs 0 and b = List.nth exprs 1 in
      eval_mul ctx venv e a b
    else if List.mem n div_ops && List.length exprs = 2 then
      let a = List.nth exprs 0 and b = List.nth exprs 1 in
      eval_div ctx venv e a b
    else if List.mem n cmp_ops && List.length exprs = 2 then begin
      let a = List.nth exprs 0 and b = List.nth exprs 1 in
      let va = eval ctx venv a and vb = eval ctx venv b in
      (match (va, vb) with
      | Some x, Some y -> check_mix ctx ~loc:e.pexp_loc ~what:"comparison" x y
      | Some x, None -> evidence ctx venv b x
      | None, Some y -> evidence ctx venv a y
      | None, None -> ());
      None
    end
    else if List.mem n minmax_ops && List.length exprs = 2 then begin
      let a = List.nth exprs 0 and b = List.nth exprs 1 in
      let va = eval ctx venv a and vb = eval ctx venv b in
      match (va, vb) with
      | Some x, Some y ->
        check_mix ctx ~loc:e.pexp_loc ~what:n x y;
        Some x
      | Some x, None ->
        evidence ctx venv b x;
        Some x
      | None, Some y ->
        evidence ctx venv a y;
        Some y
      | None, None -> None
    end
    else if List.mem n preserve_ops && List.length exprs = 1 then
      eval ctx venv (List.hd exprs)
    else eval_call ctx venv e n args

and eval_add_sub ctx venv (e : expression) op a b : value option =
  let va = eval ctx venv a and vb = eval ctx venv b in
  match (va, vb) with
  | Some x, Some y ->
    (* seqno - seqno is the one unit-changing subtraction: an offset
       difference is a count of bytes-between, modelled as bytes. *)
    if x.vu = Base Seqno && y.vu = Base Seqno && (op = "-" || op = "-.") then
      Some { vu = Base Packets; vprov = x.vprov @ [ "seqno difference" ] }
    else begin
      check_mix ctx ~loc:e.pexp_loc ~what:(Printf.sprintf "(%s)" op) x y;
      if x.vu = y.vu then Some x else None
    end
  | Some x, None ->
    evidence ctx venv b x;
    Some x
  | None, Some y ->
    evidence ctx venv a y;
    Some y
  | None, None -> None

and eval_mul ctx venv (e : expression) a b : value option =
  let va = eval ctx venv a and vb = eval ctx venv b in
  let conv v lit =
    match v with
    | Some x -> (
      match lit with
      | Some l -> (
        match conversion_of x.vu `Mul l with
        | Some (helper, res) ->
          emit ctx ~rule:conv_id ~loc:e.pexp_loc
            (Printf.sprintf
               "raw unit conversion: %s *. %g re-derives Units.%s; call \
                Leotp_util.Units.%s or justify with [@leotp.allow %S]; \
                witness: %s at line %d"
               (u_name x.vu) l helper helper conv_id (describe x)
               (line e.pexp_loc));
          Some { vu = res; vprov = x.vprov @ [ "converted to " ^ u_name res ] }
        | None -> None)
      | None -> None)
    | _ -> None
  in
  (* a known value scaled by a magic conversion constant, either
     order *)
  match conv va (literal_of b) with
  | Some r -> Some r
  | None -> (
    match conv vb (literal_of a) with
    | Some r -> Some r
    | None -> (
      match (va, vb) with
      | Some x, Some y -> (
        match mul_unit x.vu y.vu with
        | Error what ->
          emit ctx ~rule:product_id ~loc:e.pexp_loc
            (Printf.sprintf
               "suspicious product: %s; no quantity in the protocol has \
                this unit — restructure or justify with [@leotp.allow %S]; \
                witness: %s vs %s at line %d"
               what product_id (describe x) (describe y) (line e.pexp_loc));
          None
        | Ok (Some u) -> Some { vu = u; vprov = x.vprov @ y.vprov }
        | Ok None -> None)
      | Some x, None | None, Some x ->
        (* unknown factor: scalar scaling by assumption *)
        Some x
      | None, None -> None))

and eval_div ctx venv (e : expression) a b : value option =
  let va = eval ctx venv a and vb = eval ctx venv b in
  match (va, literal_of b) with
  | Some x, Some l when conversion_of x.vu `Div l <> None ->
    let helper, res =
      match conversion_of x.vu `Div l with Some hr -> hr | None -> assert false
    in
    emit ctx ~rule:conv_id ~loc:e.pexp_loc
      (Printf.sprintf
         "raw unit conversion: %s /. %g re-derives Units.%s; call \
          Leotp_util.Units.%s or justify with [@leotp.allow %S]; witness: \
          %s at line %d"
         (u_name x.vu) l helper helper conv_id (describe x) (line e.pexp_loc));
    Some { vu = res; vprov = x.vprov @ [ "converted to " ^ u_name res ] }
  | _ -> (
    match (va, vb) with
    | Some x, Some y -> (
      match div_unit x.vu y.vu with
      | Some u -> Some { vu = u; vprov = x.vprov @ y.vprov }
      | None -> None)
    | Some x, None -> Some x (* scalar divisor by assumption *)
    | None, _ -> None)

and eval_call ctx venv (e : expression) n args : value option =
  ignore e;
  let cs = callee_sig ctx.e_env ~depth:0 ~scope:ctx.e_def.dscope n in
  let pos = ref 0 in
  List.iter
    (fun ((lbl, a) : arg_label * expression) ->
      let slot =
        match lbl with
        | Labelled s | Optional s -> Lbl s
        | Nolabel ->
          let k = !pos in
          incr pos;
          Pos k
      in
      let va = eval ctx venv a in
      match
        List.find_opt (fun (s, _) -> s = slot) cs.cs_slots
      with
      | None -> ()
      | Some (_, expected) -> (
        match va with
        | None -> evidence ctx venv a expected
        | Some got ->
          check_mix ctx ~loc:a.pexp_loc
            ~what:(Printf.sprintf "argument %s of %s" (slot_desc slot) n)
            expected got))
    args;
  cs.cs_ret

(* ------------------------------------------------------------------ *)
(* Passes *)

let eval_def ctx =
  let venv =
    List.mapi (fun i p -> (p.dp_name, Pvar i)) ctx.e_def.dparams
  in
  match ctx.e_def.dbody with
  | Body e -> eval ctx venv e
  | Cases cs ->
    List.fold_left
      (fun acc (c : case) ->
        let venv' = bind_pattern c.pc_lhs None venv in
        (match c.pc_guard with
        | Some g -> ignore (eval ctx venv' g)
        | None -> ());
        let v = eval ctx venv' c.pc_rhs in
        if acc = None then v else join acc v)
      None cs

let infer_pass env defs =
  List.iter
    (fun (d : ddef) ->
      if d.dalias = None then begin
        let sm = summary_of env d in
        let ctx =
          { e_def = d; e_env = env; e_sum = sm; e_emit = None; e_infer = true }
        in
        let ret = eval_def ctx in
        match ret with
        | Some v when sm.sm_ret = None && not sm.sm_ret_forced ->
          sm.sm_ret <-
            Some
              { v with vprov = v.vprov @ [ "returned by " ^ d.dqname ] };
          env.changed <- true
        | _ -> ()
      end)
    defs

(* Annotation grammar checking, reported once per payload. *)
let report_annotations (d : ddef) ~emit:emit_at =
  List.iter
    (fun ((payload, aloc) : string * Location.t) ->
      match parse_dim payload with
      | Error err ->
        emit_at ~rule:annot_id ~loc:aloc
          (Printf.sprintf "malformed [@leotp.dim] payload %S: %s" payload err)
      | Ok clauses ->
        List.iter
          (fun cl ->
            match cl with
            | CRet _ -> ()
            | CBare _ ->
              if d.dparams <> [] then
                emit_at ~rule:annot_id ~loc:aloc
                  (Printf.sprintf
                     "bare unit clause in %S pins a value, but %s has \
                      parameters; name them or use \"returns <unit>\""
                     payload (leaf d.dqname))
            | CParams (_, names) ->
              List.iter
                (fun nm ->
                  if
                    not
                      (List.exists
                         (fun p -> p.dp_name = nm)
                         d.dparams)
                  then
                    emit_at ~rule:annot_id ~loc:aloc
                      (Printf.sprintf
                         "[@leotp.dim] names parameter %S which %s does not \
                          have"
                         nm (leaf d.dqname)))
                names)
          clauses)
    d.dattrs

let report_pass env (d : ddef) ~emit:emit_at =
  report_annotations d ~emit:emit_at;
  if d.dalias = None then begin
    let sm = summary_of env d in
    let ctx =
      {
        e_def = d;
        e_env = env;
        e_sum = sm;
        e_emit = Some emit_at;
        e_infer = false;
      }
    in
    ignore (eval_def ctx)
  end

(* ------------------------------------------------------------------ *)
(* Entry points *)

let max_fixpoint_rounds = 12

let analyze (parsed : (string * structure) list) : Finding.t list =
  let parsed =
    List.sort (fun (a, _) (b, _) -> String.compare a b) parsed
  in
  let defs = List.concat_map (fun (p, st) -> extract_defs ~path:p st) parsed in
  let allows = List.map (fun (p, st) -> (p, Engine.collect_allows st)) parsed in
  let env =
    {
      defs_by_leaf = Hashtbl.create 512;
      summaries = Hashtbl.create 512;
      changed = true;
    }
  in
  List.iter
    (fun (d : ddef) -> Hashtbl.add env.defs_by_leaf (leaf d.dqname) d)
    defs;
  (* seed-table and annotation pins first, then iterate inference to a
     fixpoint (units only ever go Unknown -> Known) *)
  List.iter (fun (d : ddef) -> apply_seeds env d) defs;
  List.iter (fun (d : ddef) -> apply_pins env d) defs;
  let rounds = ref 0 in
  while env.changed && !rounds < max_fixpoint_rounds do
    env.changed <- false;
    infer_pass env defs;
    incr rounds
  done;
  let suppressed_at ~file rule (loc : Location.t) =
    match List.assoc_opt file allows with
    | Some a -> Engine.suppressed a ~rule ~loc
    | None -> false
  in
  let reported : (string * string * int * int, unit) Hashtbl.t =
    Hashtbl.create 64
  in
  let findings = ref [] in
  let emit_at ~file ~rule ~loc message =
    let key = (file, rule, line loc, col loc) in
    if (not (Hashtbl.mem reported key)) && not (suppressed_at ~file rule loc)
    then begin
      Hashtbl.replace reported key ();
      findings :=
        {
          Finding.rule;
          severity = Error;
          file;
          line = line loc;
          col = col loc;
          message;
        }
        :: !findings
    end
  in
  List.iter
    (fun (d : ddef) ->
      if reportable d.dfile then
        report_pass env d
          ~emit:(fun ~rule ~loc message ->
            emit_at ~file:d.dfile ~rule ~loc message))
    defs;
  List.sort_uniq Finding.compare !findings

let analyze_sources sources =
  let parsed =
    List.filter_map
      (fun (path, contents) ->
        match Engine.parse_impl ~path contents with
        | Ok st -> Some (path, st)
        | Error _ -> None)
      sources
  in
  analyze parsed

(* Directory scan for the CLI.  Files that fail to parse are skipped:
   Engine.scan (which always runs alongside) already reports them as
   parse-error findings. *)
let scan paths =
  let files =
    List.concat_map
      (fun p -> if Sys.file_exists p then Engine.ml_files_under p else [])
      paths
    |> List.sort_uniq String.compare
  in
  let parsed =
    List.filter_map
      (fun f ->
        match In_channel.with_open_bin f In_channel.input_all with
        | exception Sys_error _ -> None
        | contents -> (
          match Engine.parse_impl ~path:f contents with
          | Ok st -> Some (f, st)
          | Error _ -> None))
      files
  in
  analyze parsed
