(** leotp-own: interprocedural packet-ownership, allocation-effect and
    time-taint analysis ([--own]).

    Three rule families over the syntactic call graph:

    - {b ownership} ([own-leak], [own-double-release],
      [own-use-after-release], [own-escape], [own-annotation]) — every
      [Packet.t] born at [Packet_pool.acquire]/[clone] must be released
      exactly once or handed to a consuming/transferring callee.  Roles
      are inferred per parameter by a call-graph fixpoint and can be
      pinned with [[@leotp.owns "consumes p"]] (grammar:
      ["consumes|transfers|borrows [param ...]"] or ["source"]).
    - {b allocation effects} ([hot-path-may-alloc]) — may-allocate
      evidence (closures, tuples, records, list cells, known
      allocating calls, partial application) propagated from the
      per-packet hot roots (engine dispatch, [Shr.on_packet],
      [Seg_store] scans, the packet pool, datapath timer closures).
    - {b time taint} ([time-taint]) — wall-clock reads reachable from
      the sim-time stratum (lib/ minus lib/lint), even through
      harness-stratum helpers.

    Findings carry race.ml-style witness paths and respect
    [[@leotp.allow "rule-id"]]. *)

val leak_id : string
val double_id : string
val uar_id : string
val escape_id : string
val annot_id : string
val alloc_id : string
val taint_id : string

val analyze : (string * Ppxlib.structure) list -> Finding.t list
(** Run all three families over pre-parsed units ([(path, ast)]).
    Input order is irrelevant: units are sorted by path and findings
    ordered by {!Finding.compare}, so output is byte-stable. *)

val analyze_sources : (string * string) list -> Finding.t list
(** Like {!analyze} for in-memory sources (tests); unparsable sources
    are skipped. *)

val scan : string list -> Finding.t list
(** Analyze every [.ml] under the given roots (the walk {!Engine.scan}
    uses).  Unparsable files are skipped: Engine.scan reports them as
    parse-error findings. *)
