(* Module-qualified call graph of one compilation unit, for the
   leotp-race pass.

   Purely syntactic, like every other leotp-lint analysis: each
   top-level (possibly nested-module) function binding becomes a [def]
   carrying the raw identifier references of its body; closures passed
   to a domain-spawning sink (Domain.spawn, Domain_pool.submit/run/map)
   become synthetic entrypoint defs of their own.  Resolution of raw
   references against defs/globals across files happens in Race, via
   [resolves].

   Guard regions are recorded as character ranges: everything inside an
   argument of Guarded.with_/await/get/set or an Atomic /
   Atomic_counter operation, and everything sequenced after a
   Mutex.lock (the `Mutex.lock l; ...` / `Fun.protect ~finally:unlock`
   idiom), is considered to run inside a critical section; references
   in those ranges are marked [guarded]. *)

open Ppxlib

type reference = {
  name : string;  (** dotted path exactly as written, e.g. "Runner.map" *)
  loc : Location.t;
  guarded : bool;
}

type def = {
  qname : string;
      (** module-qualified, file module included: "Runner.set_jobs" *)
  scope : string list;  (** enclosing module path, e.g. ["Runner"] *)
  loc : Location.t;
  entry : bool;  (** a closure passed straight to a domain-spawning sink *)
  refs : reference list;
}

type global = {
  gqname : string;
  gloc : Location.t;
  creator : string;  (** "ref", "Hashtbl.create", "[| |]", "mutable-field" *)
}

type t = {
  file : string;
  module_name : string;
  defs : def list;
  globals : global list;
  bindings : (string * Location.t) list;
      (** every named top-level value binding, mutable or not
          (set-field targets are resolved against these) *)
  entry_names : reference list;
      (** named functions passed to a spawning sink *)
  setfields : reference list;
      (** receivers of [x.f <- e]: evidence that [x] is mutable *)
}

(* ------------------------------------------------------------------ *)
(* Names and matching *)

let ident_name (lid : Longident.t) =
  match Longident.flatten_exn lid with
  | exception _ -> "_"
  | parts -> String.concat "." parts

let module_name_of_path path =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename path))

let split name = String.split_on_char '.' name

let rec is_suffix ~suffix l =
  let ls = List.length suffix and ll = List.length l in
  if ll < ls then false
  else if ll = ls then l = suffix
  else match l with [] -> false | _ :: tl -> is_suffix ~suffix tl

let rec drop_last = function
  | [] | [ _ ] -> []
  | x :: tl -> x :: drop_last tl

(* Does the raw reference [written], appearing inside module path
   [scope], plausibly denote the definition/global [qname]?  Bare names
   resolve only along the enclosing-module chain (OCaml scoping);
   dotted names match by segment suffix in either direction, because
   library-qualified references (Leotp_scenario.Runner.map) are longer
   than our file-level qnames (Runner.map), while references into a
   nested module (Inner.f) are shorter (Mod.Inner.f). *)
let resolves ~scope ~written ~qname =
  let ws = split written and qs = split qname in
  match ws with
  | [ _ ] ->
    let rec chain prefix =
      prefix @ ws = qs || (prefix <> [] && chain (drop_last prefix))
    in
    chain scope
  | _ -> is_suffix ~suffix:ws qs || is_suffix ~suffix:qs ws

(* ------------------------------------------------------------------ *)
(* Syntactic classifications *)

let ends_with_any names n =
  let segs = split n in
  List.exists (fun s -> is_suffix ~suffix:(split s) segs) names

(* Creators whose result is shared-mutable when bound at top level.
   Atomic.make and Mutex.create are deliberately absent: an
   ['a Atomic.t] only admits atomic operations, and a mutex *is* a
   guard, not a hazard. *)
let mutable_creators =
  [
    "ref";
    "Hashtbl.create";
    "Queue.create";
    "Stack.create";
    "Buffer.create";
    "Bytes.create";
    "Bytes.make";
    "Array.make";
    "Array.init";
    "Array.create_float";
  ]

let rec creator_of_rhs (e : expression) =
  match e.pexp_desc with
  | Pexp_constraint (inner, _) -> creator_of_rhs inner
  | Pexp_array _ -> Some "[| |]"
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    let n = ident_name txt in
    if List.mem n mutable_creators then Some n else None
  | _ -> None

(* Application heads that move their function argument onto another
   domain: those arguments are domain entrypoints. *)
let spawn_sinks =
  [ "Domain.spawn"; "Domain_pool.submit"; "Domain_pool.run"; "Domain_pool.map" ]

(* Application heads whose arguments run inside a critical section or
   are atomic operations.  Module *aliases* are only recognised when
   the alias keeps the module's own name (module Guarded =
   Leotp_util.Guarded); a rename hides the guard and the access will be
   flagged — prefer same-name aliases. *)
let guard_fns =
  [
    "Guarded.with_";
    "Guarded.await";
    "Guarded.get";
    "Guarded.set";
    "Guarded.create";
    "Atomic.get";
    "Atomic.set";
    "Atomic.make";
    "Atomic.exchange";
    "Atomic.incr";
    "Atomic.decr";
    "Atomic.fetch_and_add";
    "Atomic.compare_and_set";
  ]

let is_guard_fn n =
  ends_with_any guard_fns n
  ||
  (* Atomic_counter.incr / Atomic_counter.Sum.add / ... — every
     operation of the counter module is atomic by construction. *)
  List.exists (fun seg -> seg = "Atomic_counter") (split n)

let is_spawn_sink n = ends_with_any spawn_sinks n
let is_mutex_lock n = ends_with_any [ "Mutex.lock" ] n

let is_function (e : expression) =
  match e.pexp_desc with Pexp_function _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Per-binding body analysis *)

type range = { start_c : int; end_c : int }

let range_of (loc : Location.t) =
  { start_c = loc.loc_start.pos_cnum; end_c = loc.loc_end.pos_cnum }

let contains r (loc : Location.t) =
  r.start_c <= loc.loc_start.pos_cnum && loc.loc_start.pos_cnum <= r.end_c

type body_facts = {
  mutable idents : (string * Location.t) list;
  mutable guards : range list;
  mutable entries : Location.t list;  (** literal closures passed to sinks *)
  mutable entry_name_refs : (string * Location.t) list;
  mutable setfield_refs : (string * Location.t) list;
}

let facts_of_body (body : expression) =
  let fx =
    {
      idents = [];
      guards = [];
      entries = [];
      entry_name_refs = [];
      setfield_refs = [];
    }
  in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } ->
          fx.idents <- (ident_name txt, e.pexp_loc) :: fx.idents
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
          let n = ident_name txt in
          if is_guard_fn n then
            List.iter
              (fun ((_, a) : arg_label * expression) ->
                fx.guards <- range_of a.pexp_loc :: fx.guards)
              args;
          if is_spawn_sink n then
            List.iter
              (fun ((_, a) : arg_label * expression) ->
                if is_function a then
                  fx.entries <- a.pexp_loc :: fx.entries
                else
                  match a.pexp_desc with
                  | Pexp_ident { txt; _ } ->
                    fx.entry_name_refs <-
                      (ident_name txt, a.pexp_loc) :: fx.entry_name_refs
                  | _ -> ())
              args
        | Pexp_sequence (e1, e2) -> (
          match e1.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
            when is_mutex_lock (ident_name txt) ->
            fx.guards <- range_of e2.pexp_loc :: fx.guards
          | _ -> ())
        | Pexp_setfield (recv, _, _) -> (
          match recv.pexp_desc with
          | Pexp_ident { txt; _ } ->
            fx.setfield_refs <-
              (ident_name txt, recv.pexp_loc) :: fx.setfield_refs
          | _ -> ())
        | _ -> ());
        super#expression e
    end
  in
  it#expression body;
  fx

(* ------------------------------------------------------------------ *)
(* Structure walk *)

let binding_name (vb : value_binding) =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
  | _ -> None

let of_structure ~path st =
  let module_name = module_name_of_path path in
  let defs = ref [] in
  let globals = ref [] in
  let bindings = ref [] in
  let entry_names = ref [] in
  let setfields = ref [] in
  let no_guard (n, loc) = { name = n; loc; guarded = false } in
  let rec items scope sis = List.iter (item scope) sis
  and item scope (si : structure_item) =
    match si.pstr_desc with
    | Pstr_value (_, vbs) -> List.iter (binding scope) vbs
    | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } ->
      module_expr (scope @ [ name ]) pmb_expr
    | Pstr_module { pmb_name = { txt = None; _ }; _ } -> ()
    | Pstr_recmodule mbs ->
      List.iter
        (fun (mb : module_binding) ->
          match mb.pmb_name.txt with
          | Some name -> module_expr (scope @ [ name ]) mb.pmb_expr
          | None -> ())
        mbs
    | Pstr_include { pincl_mod; _ } -> module_expr scope pincl_mod
    | _ -> ()
  and module_expr scope (me : module_expr) =
    match me.pmod_desc with
    | Pmod_structure sis -> items scope sis
    | Pmod_constraint (me, _) -> module_expr scope me
    | Pmod_functor (_, me) -> module_expr scope me
    | _ -> ()
  and binding scope (vb : value_binding) =
    let qname =
      match binding_name vb with
      | Some n ->
        let q = String.concat "." (scope @ [ n ]) in
        bindings := (q, vb.pvb_loc) :: !bindings;
        q
      | None ->
        Printf.sprintf "%s.<top:%d>" (String.concat "." scope)
          vb.pvb_loc.loc_start.pos_lnum
    in
    (match creator_of_rhs vb.pvb_expr with
    | Some creator ->
      globals := { gqname = qname; gloc = vb.pvb_loc; creator } :: !globals
    | None -> ());
    let fx = facts_of_body vb.pvb_expr in
    entry_names := List.map no_guard fx.entry_name_refs @ !entry_names;
    setfields := List.map no_guard fx.setfield_refs @ !setfields;
    let guarded loc = List.exists (fun r -> contains r loc) fx.guards in
    let entry_ranges = List.map range_of fx.entries in
    let in_entry loc = List.exists (fun r -> contains r loc) entry_ranges in
    let refs_where pred =
      List.filter_map
        (fun (n, loc) ->
          if pred loc then Some { name = n; loc; guarded = guarded loc }
          else None)
        (List.rev fx.idents)
    in
    (* The binding itself is a node only if it is a function (its body
       runs when called); a plain top-level value's RHS runs once at
       module init, on the main domain, and is never re-entered. *)
    if is_function vb.pvb_expr then
      defs :=
        {
          qname;
          scope;
          loc = vb.pvb_loc;
          entry = false;
          refs = refs_where (fun loc -> not (in_entry loc));
        }
        :: !defs;
    (* Each literal closure handed to a spawn sink is its own
       entrypoint node, carrying exactly the refs of its body. *)
    List.iter
      (fun (eloc : Location.t) ->
        let er = range_of eloc in
        defs :=
          {
            qname =
              Printf.sprintf "%s.<entry:%d:%d>" qname eloc.loc_start.pos_lnum
                (eloc.loc_start.pos_cnum - eloc.loc_start.pos_bol);
            scope;
            loc = eloc;
            entry = true;
            refs = refs_where (fun loc -> contains er loc);
          }
          :: !defs)
      fx.entries
  in
  items [ module_name ] st;
  {
    file = path;
    module_name;
    defs = List.rev !defs;
    globals = List.rev !globals;
    bindings = List.rev !bindings;
    entry_names = List.rev !entry_names;
    setfields = List.rev !setfields;
  }
