(** A single analyzer diagnostic: which rule fired, where, and how bad. *)

type severity = Warning | Error

val severity_to_string : severity -> string

type t = {
  rule : string;  (** rule id, e.g. ["no-wall-clock"] *)
  severity : severity;
  file : string;  (** path as given to the engine *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  message : string;
}

val compare : t -> t -> int
(** Order by file, then line, then column, then rule id (severity and
    message break remaining ties, so the order is total and
    [List.sort_uniq] collapses exact duplicates only). *)

val to_text : t -> string
(** [file:line:col: [severity] rule-id: message] — one line, no newline. *)

val to_json : t -> string
(** One finding as a JSON object. *)

val count : severity -> t list -> int

val report_json : ?timings:(string * float) list -> files:int -> t list -> string
(** Whole-run JSON report: version, file/issue counts, findings array.
    [timings] adds a ["timings_ms"] object of per-pass analyzer wall
    times (milliseconds, one decimal) for trend tracking; it is the one
    run-varying part of the report — the findings array itself stays
    byte-stable. *)
