(** Syntactic, module-qualified call graph of one compilation unit —
    the substrate of the leotp-race pass (see {!Race}).

    Nodes are top-level function bindings (recursing through nested
    modules, module constraints and functor bodies) plus one synthetic
    {e entrypoint} node per literal closure passed to a domain-spawning
    sink ([Domain.spawn], [Domain_pool.submit]/[run]/[map]).  Each node
    carries the raw identifier references of its body, tagged with
    whether they sit inside a recognised critical section
    ([Guarded.with_]/[await]/[get]/[set] argument, an [Atomic] /
    [Atomic_counter] operation, or code sequenced after a
    [Mutex.lock]).  Cross-file name resolution is left to the caller
    via {!resolves}. *)

type reference = {
  name : string;  (** dotted path exactly as written, e.g. "Runner.map" *)
  loc : Ppxlib.Location.t;
  guarded : bool;  (** inside a recognised critical section / atomic op *)
}

type def = {
  qname : string;
      (** module-qualified, file module included: ["Runner.set_jobs"];
          entrypoint closures get ["<parent>.<entry:LINE:COL>"] *)
  scope : string list;  (** enclosing module path, e.g. [["Runner"]] *)
  loc : Ppxlib.Location.t;
  entry : bool;  (** a closure passed straight to a domain-spawning sink *)
  refs : reference list;
}

type global = {
  gqname : string;
  gloc : Ppxlib.Location.t;
  creator : string;
      (** which constructor made it mutable: ["ref"],
          ["Hashtbl.create"], ["[| |]"], ... or ["mutable-field"] when
          inferred from a [x.f <- e] assignment *)
}

type t = {
  file : string;
  module_name : string;
  defs : def list;
  globals : global list;
      (** top-level bindings whose right-hand side is a known mutable
          creator.  [Atomic.make] and [Mutex.create] are deliberately
          not tracked: atomics only admit atomic operations, and a
          mutex is a guard. *)
  bindings : (string * Ppxlib.Location.t) list;
      (** every named top-level value binding, mutable or not *)
  entry_names : reference list;
      (** named functions passed to a spawning sink *)
  setfields : reference list;
      (** receivers of [x.f <- e]: evidence that a binding holds a
          mutable record *)
}

val of_structure : path:string -> Ppxlib.structure -> t
(** Build the graph for one parsed unit; [path] determines the file
    module name (["lib/scenario/runner.ml"] → ["Runner"]). *)

val module_name_of_path : string -> string

val resolves : scope:string list -> written:string -> qname:string -> bool
(** Best-effort name resolution: does [written], appearing inside
    module path [scope], plausibly denote [qname]?  Bare names resolve
    along the enclosing-module chain only; dotted names match by
    segment suffix in either direction (so both
    ["Leotp_scenario.Runner.map"] and ["Runner.map"] reach
    ["Runner.map"], and ["Inner.f"] reaches ["Mod.Inner.f"]).
    Over-approximates on collisions; the race pass reports per-file
    witnesses, so collisions surface visibly rather than silently. *)
