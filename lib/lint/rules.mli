(** The leotp-lint rule registry.

    Rules are syntactic (parsetree-level) checks with a severity and a
    path scope.  [Error]-severity findings fail the build; [Warning]
    findings are advisory.  Every rule can be silenced with
    [[@leotp.allow "rule-id"]] on a binding/expression or
    [[@@@leotp.allow "rule-id"]] for the whole file. *)

type scope = Lib | Bench | Bin | Other

val scope_of_path : string -> scope
(** Classify a '/'-separated path by its first recognised component. *)

type emit = loc:Ppxlib.Location.t -> string -> unit

type t = {
  id : string;
  severity : Finding.severity;
  doc : string;  (** one-line rationale, shown by [--rules] *)
  applies : scope -> bool;
  check : emit:emit -> Ppxlib.Parsetree.structure -> unit;
}

val missing_interface_id : string
(** The one rule not driven by the AST: the engine checks for a sibling
    [.mli] on the file system and reports under this id. *)

val domain_unsafe_access_id : string
(** Registered here for [--rules] and allow-validation; the analysis
    itself is interprocedural and lives in {!Race} ([--race]). *)

val all : t list
val known_ids : string list
