(* Rule registry for leotp-lint.

   Every rule is purely syntactic (parsetree only, no typing pass), so
   each one is a cheap best-effort approximation of the property we
   actually care about; the [@leotp.allow "rule-id"] escape hatch exists
   precisely because a syntactic check cannot prove order-insensitivity
   or type a comparison.  Rules are scoped: protocol code under lib/ is
   held to stricter standards than the bench/bin harness (which
   legitimately reads wall clocks and prints to stdout). *)

open Ppxlib

type scope = Lib | Bench | Bin | Other

let scope_of_path path =
  let parts = String.split_on_char '/' path in
  let parts = List.filter (fun p -> p <> "" && p <> ".") parts in
  if List.mem "lib" parts then Lib
  else if List.mem "bench" parts then Bench
  else if List.mem "bin" parts then Bin
  else Other

type emit = loc:Location.t -> string -> unit

type t = {
  id : string;
  severity : Finding.severity;
  doc : string;
  applies : scope -> bool;
  check : emit:emit -> structure -> unit;
}

let lib_only = function Lib -> true | Bench | Bin | Other -> false
let everywhere _ = true

let ident_name (lid : Longident.t) =
  String.concat "." (Longident.flatten_exn lid)

(* Visit every value identifier in the structure. *)
let iter_idents f st =
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } -> f (ident_name txt) e.pexp_loc
        | _ -> ());
        super#expression e
    end
  in
  it#structure st

(* A rule that flags any use of the listed identifiers, with a
   per-identifier message. *)
let banned_idents ~id ~severity ~doc ~applies table =
  {
    id;
    severity;
    doc;
    applies;
    check =
      (fun ~emit st ->
        iter_idents
          (fun name loc ->
            match List.assoc_opt name table with
            | Some msg -> emit ~loc msg
            | None -> ())
          st);
  }

(* -- Rule 1: no-wall-clock ------------------------------------------- *)

let no_wall_clock =
  banned_idents ~id:"no-wall-clock" ~severity:Finding.Error
    ~doc:
      "lib/ must use simulated time (Engine.now); wall-clock reads make \
       traces and digests differ between runs"
    ~applies:lib_only
    [
      ( "Unix.gettimeofday",
        "wall-clock read in protocol code; use Engine.now (simulated time)" );
      ( "Unix.time",
        "wall-clock read in protocol code; use Engine.now (simulated time)" );
      ( "Sys.time",
        "process CPU-time read in protocol code; use Engine.now or the \
         Runner perf counters" );
    ]

(* -- Rule 2: no-unseeded-random -------------------------------------- *)

let no_unseeded_random =
  {
    id = "no-unseeded-random";
    severity = Finding.Error;
    doc =
      "the global Random generator (and Random.self_init) is unseeded, \
       shared across domains and order-sensitive; thread a Leotp_util.Rng \
       / Random.State value instead";
    applies = everywhere;
    check =
      (fun ~emit st ->
        iter_idents
          (fun name loc ->
            match String.split_on_char '.' name with
            | [ "Random"; "State" ] | "Random" :: "State" :: _ -> ()
            | [ "Random"; "self_init" ] ->
              emit ~loc
                "Random.self_init seeds from the environment; every run \
                 must derive its generator from the experiment seed"
            | [ "Random"; _ ] ->
              emit ~loc
                "global Random generator is shared mutable state; thread \
                 a Leotp_util.Rng (Random.State) through instead"
            | _ -> ())
          st);
  }

(* -- Rule 3: ordered-iteration --------------------------------------- *)

let hashtbl_order_fns = [ "Hashtbl.iter"; "Hashtbl.fold" ]
let sort_fns = [ "List.sort"; "List.stable_sort"; "List.sort_uniq" ]

let same_start (a : Location.t) (b : Location.t) =
  a.loc_start.pos_cnum = b.loc_start.pos_cnum
  && a.loc_start.pos_fname = b.loc_start.pos_fname

(* Hashtbl iteration order is representation-dependent, so results that
   escape (lists of keys, printed lines, trace events) depend on
   insertion history and hashing.  The one idiom we can recognise as
   safe syntactically is sorting the collected result *immediately*:
   [List.sort cmp (Hashtbl.fold f tbl init)].  Anything else needs an
   explicit [@leotp.allow "ordered-iteration"] with a justification. *)
let ordered_iteration =
  {
    id = "ordered-iteration";
    severity = Finding.Error;
    doc =
      "Hashtbl.iter/fold order is nondeterministic; sort the result \
       in-place (List.sort over the fold) or justify with an allow";
    applies = lib_only;
    check =
      (fun ~emit st ->
        let sanctioned = ref [] in
        let uses = ref [] in
        let it =
          object
            inherit Ast_traverse.iter as super

            method! expression e =
              (match e.pexp_desc with
              | Pexp_apply
                  ({ pexp_desc = Pexp_ident { txt = sorter; _ }; _ }, args)
                when List.mem (ident_name sorter) sort_fns ->
                List.iter
                  (fun ((_, arg) : arg_label * expression) ->
                    match arg.pexp_desc with
                    | Pexp_apply
                        (({ pexp_desc = Pexp_ident { txt; _ }; _ } as fn), _)
                      when List.mem (ident_name txt) hashtbl_order_fns ->
                      sanctioned := fn.pexp_loc :: !sanctioned
                    | _ -> ())
                  args
              | Pexp_ident { txt; _ }
                when List.mem (ident_name txt) hashtbl_order_fns ->
                uses := e.pexp_loc :: !uses
              | _ -> ());
              super#expression e
          end
        in
        it#structure st;
        List.iter
          (fun loc ->
            if not (List.exists (same_start loc) !sanctioned) then
              emit ~loc
                "Hashtbl iteration order is nondeterministic; sort the \
                 collected result (List.sort over the fold) or add a \
                 justified [@leotp.allow \"ordered-iteration\"]")
          (List.rev !uses));
  }

(* -- Rule 4: no-global-mutable-state --------------------------------- *)

let mutable_creators =
  [
    "ref";
    "Hashtbl.create";
    "Buffer.create";
    "Queue.create";
    "Stack.create";
    "Array.make";
    "Bytes.create";
    "Mutex.create";
    "Atomic.make";
  ]

let rec creator_of_rhs (e : expression) =
  match e.pexp_desc with
  | Pexp_constraint (inner, _) -> creator_of_rhs inner
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    let n = ident_name txt in
    if List.mem n mutable_creators then Some n else None
  | _ -> None

(* Only *top-level* bindings are flagged: a ref local to a function is
   per-call state, but a module-level ref/Hashtbl is shared by every
   Domain_pool job and breaks --jobs N determinism.  Recurses into
   nested top-level modules but not into expressions. *)
let no_global_mutable_state =
  let rec check_items ~emit items =
    List.iter
      (fun (si : structure_item) ->
        match si.pstr_desc with
        | Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : value_binding) ->
              match creator_of_rhs vb.pvb_expr with
              | Some n ->
                emit ~loc:vb.pvb_loc
                  (Printf.sprintf
                     "top-level mutable state (%s) is shared across \
                      Domain_pool jobs and breaks --jobs N determinism; \
                      thread it through function arguments or add a \
                      justified [@leotp.allow \"no-global-mutable-state\"]"
                     n)
              | None -> ())
            vbs
        | Pstr_module { pmb_expr; _ } -> check_module_expr ~emit pmb_expr
        | Pstr_recmodule mbs ->
          List.iter (fun mb -> check_module_expr ~emit mb.pmb_expr) mbs
        | Pstr_include { pincl_mod; _ } -> check_module_expr ~emit pincl_mod
        | _ -> ())
      items
  and check_module_expr ~emit (me : module_expr) =
    match me.pmod_desc with
    | Pmod_structure items -> check_items ~emit items
    | Pmod_constraint (me, _) -> check_module_expr ~emit me
    | Pmod_functor (_, me) -> check_module_expr ~emit me
    | _ -> ()
  in
  {
    id = "no-global-mutable-state";
    severity = Finding.Error;
    doc =
      "module-level ref/Hashtbl/Buffer/... in lib/ is shared across \
       Domain_pool jobs; state must be threaded through values";
    applies = lib_only;
    check = (fun ~emit st -> check_items ~emit st);
  }

(* -- Rule 5: no-direct-print ----------------------------------------- *)

let no_direct_print =
  let msg =
    "direct stdout/stderr write in lib/; route output through \
     Leotp_scenario.Report (or Logs) so formatting lives in one module"
  in
  banned_idents ~id:"no-direct-print" ~severity:Finding.Error
    ~doc:
      "lib/ must not print directly; all experiment output goes through \
       Leotp_scenario.Report or Logs"
    ~applies:lib_only
    (List.map
       (fun f -> (f, msg))
       [
         "Printf.printf";
         "Printf.eprintf";
         "Format.printf";
         "Format.eprintf";
         "print_endline";
         "print_string";
         "print_newline";
         "print_char";
         "print_int";
         "print_float";
         "prerr_endline";
         "prerr_string";
         "prerr_newline";
         "Stdlib.print_endline";
         "Stdlib.print_string";
         "Stdlib.print_newline";
         "Stdlib.Printf.printf";
       ])

(* -- Rule 6: no-polymorphic-compare-on-float ------------------------- *)

let poly_compare_fns =
  [ "="; "<>"; "=="; "!="; "compare"; "Stdlib.compare"; "Stdlib.=" ]

(* Functions of the Float module that do *not* return float (so their
   result is safe to compare polymorphically). *)
let float_fns_not_float =
  [
    "Float.equal";
    "Float.compare";
    "Float.is_nan";
    "Float.is_finite";
    "Float.is_integer";
    "Float.to_int";
    "Float.to_string";
    "Float.sign_bit";
    "Float.classify_float";
  ]

let float_constants =
  [
    "Float.infinity";
    "Float.neg_infinity";
    "Float.nan";
    "Float.pi";
    "Float.max_float";
    "Float.min_float";
    "Float.epsilon";
    "infinity";
    "neg_infinity";
    "nan";
    "max_float";
    "min_float";
    "epsilon_float";
  ]

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-." ]

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Syntactic evidence that an expression is a float: a float literal, a
   float type annotation, float arithmetic, a Float.* call that returns
   float, or a well-known float constant. *)
let floatish (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint
      (_, { ptyp_desc = Ptyp_constr ({ txt = Lident "float"; _ }, []); _ }) ->
    true
  | Pexp_ident { txt; _ } -> List.mem (ident_name txt) float_constants
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    let n = ident_name txt in
    List.mem n float_ops
    || n = "abs_float" || n = "float_of_int"
    || (starts_with ~prefix:"Float." n && not (List.mem n float_fns_not_float))
  | _ -> false

(* Combinators whose lambda argument's result populates the structure
   they build: [List.map (fun h -> Float.round ...) hops] is a float
   list. *)
let float_struct_builders =
  [
    "List.map";
    "List.mapi";
    "List.rev_map";
    "List.filter_map";
    "List.concat_map";
    "List.init";
    "Array.map";
    "Array.mapi";
    "Array.init";
  ]

let rec type_mentions_float (t : core_type) =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, args) ->
    ident_name txt = "float" || List.exists type_mentions_float args
  | Ptyp_tuple ts -> List.exists type_mentions_float ts
  | _ -> false

let rec lambda_body (e : expression) =
  match e.pexp_desc with
  | Pexp_function (_, _, Pfunction_body inner) -> lambda_body inner
  | Pexp_constraint (inner, _) -> lambda_body inner
  | _ -> e

(* [floatish] lifted through structure: options, tuples, list cells,
   map-style builders and let-bound names ([env]) whose right-hand side
   was itself float-bearing — so [prev <> Some sig_] is caught when
   [sig_] was built from float data. *)
let rec floatish_deep env (e : expression) =
  floatish e
  ||
  match e.pexp_desc with
  | Pexp_ident { txt = Lident x; _ } -> Hashtbl.mem env x
  | Pexp_constraint (_, t) -> type_mentions_float t
  | Pexp_tuple es -> List.exists (floatish_deep env) es
  | Pexp_construct ({ txt = Lident "Some"; _ }, Some arg) ->
    floatish_deep env arg
  | Pexp_construct
      ({ txt = Lident "::"; _ }, Some { pexp_desc = Pexp_tuple [ hd; tl ]; _ })
    ->
    floatish_deep env hd || floatish_deep env tl
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
    List.mem (ident_name txt) float_struct_builders
    && List.exists
         (fun ((_, a) : _ * expression) ->
           match a.pexp_desc with
           | Pexp_function _ -> floatish_deep env (lambda_body a)
           | _ -> false)
         args
  | _ -> false

(* Let-bound names with float-bearing right-hand sides, to a fixpoint
   (a binding may reference an earlier float-bearing binding). *)
let collect_float_names st =
  let env = Hashtbl.create 16 in
  let grew = ref true in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! value_binding vb =
        (match vb.pvb_pat.ppat_desc with
        | Ppat_var { txt; _ }
          when (not (Hashtbl.mem env txt))
               && floatish_deep env vb.pvb_expr ->
          Hashtbl.add env txt ();
          grew := true
        | _ -> ());
        super#value_binding vb

      (* Annotated binders anywhere — [(a : float list)] parameters,
         let-patterns — carry their own evidence. *)
      method! pattern p =
        (match p.ppat_desc with
        | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, t)
          when (not (Hashtbl.mem env txt)) && type_mentions_float t ->
          Hashtbl.add env txt ();
          grew := true
        | _ -> ());
        super#pattern p
    end
  in
  while !grew do
    grew := false;
    it#structure st
  done;
  env

let no_poly_float_compare =
  {
    id = "no-polymorphic-compare-on-float";
    severity = Finding.Error;
    doc =
      "polymorphic =/compare on floats (or float-containing structures) \
       is boxed and nan-unsound; use Float.equal / Float.compare \
       (compose with Option.equal / List.equal)";
    applies = lib_only;
    check =
      (fun ~emit st ->
        let env = collect_float_names st in
        let it =
          object
            inherit Ast_traverse.iter as super

            method! expression e =
              (match e.pexp_desc with
              | Pexp_apply
                  (({ pexp_desc = Pexp_ident { txt; _ }; _ } as fn), args)
                when List.mem (ident_name txt) poly_compare_fns
                     && List.length args >= 2
                     && List.exists (fun (_, a) -> floatish_deep env a) args ->
                emit ~loc:fn.pexp_loc
                  (Printf.sprintf
                     "polymorphic %s on a float-bearing operand (boxed, \
                      nan-unsound); use Float.equal / Float.compare \
                      (compose with Option.equal / List.equal)"
                     (ident_name txt))
              | _ -> ());
              super#expression e
          end
        in
        it#structure st);
  }

(* -- Rule 7: missing-interface --------------------------------------- *)

(* The AST check is a no-op: the engine implements this rule from the
   file system (does [foo.mli] sit next to [foo.ml]?).  It is registered
   here so that --rules, the docs and allow-validation see it. *)
let missing_interface_id = "missing-interface"

let missing_interface =
  {
    id = missing_interface_id;
    severity = Finding.Warning;
    doc =
      "every module under lib/ should have an .mli so its public \
       surface is explicit";
    applies = lib_only;
    check = (fun ~emit:_ _ -> ());
  }

(* -- Rule 8: domain-unsafe-access ------------------------------------ *)

(* Like missing-interface, the AST check here is a no-op: the real
   analysis is interprocedural (entrypoint reachability across files)
   and lives in Race, run via `leotp_lint.exe --race`.  Registering the
   id here makes --rules list it and lets allow-validation accept
   [@leotp.allow "domain-unsafe-access"]. *)
let domain_unsafe_access_id = "domain-unsafe-access"

let domain_unsafe_access =
  {
    id = domain_unsafe_access_id;
    severity = Finding.Error;
    doc =
      "top-level mutable state reachable from a Domain_pool/Domain.spawn \
       entrypoint must be accessed inside Guarded/Atomic/Mutex critical \
       sections (interprocedural; run with --race)";
    applies = everywhere;
    check = (fun ~emit:_ _ -> ());
  }

(* -- Rule 9: hot-path-alloc ------------------------------------------ *)

(* Packets are pooled (Leotp_net.Packet_pool): the steady-state hot path
   allocates ~zero words per packet because every sink recycles the flat
   record.  Direct allocation via [Packet.blank] bypasses the free list,
   and [Packet.assign_fresh_id] consumes a fresh id — the deterministic
   id sequence that --jobs N bit-identity rests on — so both are
   restricted to the packet/pool/codec layer itself.  The file allowlist
   keys on the location's filename (the engine parses with the real path),
   so the rule needs no plumbing through [applies]. *)

let hot_path_sanctioned_files =
  [ "packet.ml"; "packet_pool.ml"; "codec.ml"; "wire.ml" ]

let hot_path_banned =
  let blank_msg =
    "direct packet allocation bypasses the pool's free list; use \
     Packet_pool.acquire (or a Wire constructor) so the record is \
     recycled, or add a justified [@leotp.allow \"hot-path-alloc\"]"
  in
  let id_msg =
    "fresh packet ids may only be consumed inside the wire codecs \
     (Packet_pool.acquire / Wire.restamp_*); consuming one elsewhere \
     perturbs the deterministic id sequence behind --jobs N bit-identity"
  in
  [
    ("Packet.blank", blank_msg);
    ("Leotp_net.Packet.blank", blank_msg);
    ("Packet.assign_fresh_id", id_msg);
    ("Leotp_net.Packet.assign_fresh_id", id_msg);
  ]

let hot_path_alloc =
  {
    id = "hot-path-alloc";
    severity = Finding.Error;
    doc =
      "packet records are pool-recycled; allocate via Packet_pool.acquire \
       / the Wire constructors, never Packet.blank, and consume fresh ids \
       only inside the wire codecs";
    applies = everywhere;
    check =
      (fun ~emit st ->
        iter_idents
          (fun name loc ->
            if
              not
                (List.mem
                   (Filename.basename loc.loc_start.pos_fname)
                   hot_path_sanctioned_files)
            then
              match List.assoc_opt name hot_path_banned with
              | Some msg -> emit ~loc msg
              | None -> ())
          st);
  }

(* -- Rules 10..16: the leotp-own families ---------------------------- *)

(* As with domain-unsafe-access, these AST checks are no-ops: the real
   analyses are interprocedural (ownership tracks, allocation-effect
   and time-taint reachability across files) and live in Own, run via
   `leotp_lint.exe --own`.  Registering the ids here makes --rules list
   them and lets allow-validation accept their [@leotp.allow]s. *)

let own_rule id doc =
  {
    id;
    severity = Finding.Error;
    doc;
    applies = everywhere;
    check = (fun ~emit:_ _ -> ());
  }

let own_leak =
  own_rule "own-leak"
    "a packet acquired from Packet_pool.acquire/clone is still owned at \
     the end of some path: release it, hand it to a consuming/transferring \
     callee, or annotate with [@leotp.owns] (interprocedural; run with \
     --own)"

let own_double_release =
  own_rule "own-double-release"
    "a packet is released (or consumed by a callee) twice, or released \
     after its ownership was transferred; the record would alias two \
     future owners (interprocedural; run with --own)"

let own_use_after_release =
  own_rule "own-use-after-release"
    "a packet is read or passed on after Packet_pool.release; the record \
     may already be recycled under another owner (interprocedural; run \
     with --own)"

let own_escape =
  own_rule "own-escape"
    "a packet is stored into a long-lived container (Hashtbl/Queue/array \
     slot/record field) that is not a registered sink; annotate the \
     function with [@leotp.owns \"transfers\"] if the store is a \
     deliberate hand-off (interprocedural; run with --own)"

let own_annotation =
  own_rule "own-annotation"
    "a [@leotp.owns] payload does not follow the grammar \
     \"consumes|transfers|borrows [param ...]\" or \"source\", or names a \
     parameter the function does not have"

let hot_path_may_alloc =
  own_rule "hot-path-may-alloc"
    "a function reachable from the per-packet hot roots (engine dispatch, \
     Shr.on_packet, Seg_store scans, the packet pool, datapath timer \
     closures) may allocate: closures, tuples, records, list cells, \
     allocating stdlib calls or partial application (interprocedural; run \
     with --own)"

let time_taint =
  own_rule "time-taint"
    "sim-time code (lib/ outside lib/lint) reaches a wall-clock read, \
     directly or through harness helpers; route real time through the \
     harness stratum (interprocedural; run with --own)"

(* -- Rules 17..21: the leotp-dim family ------------------------------ *)

(* Same pattern again: the dimensional analysis is interprocedural
   (unit inference over the call graph) and lives in Dim, run via
   `leotp_lint.exe --dim`. *)

let dim_mixed_arith =
  own_rule "dim-mixed-arith"
    "arithmetic or a comparison mixes incompatible units of measure \
     (seconds + bytes, ms passed where a seeded signature expects \
     seconds); convert via Leotp_util.Units or pin with [@leotp.dim] \
     (interprocedural; run with --dim)"

let dim_bad_product =
  own_rule "dim-bad-product"
    "a product multiplies two rates or two durations; no protocol \
     quantity has that unit, so one factor is almost certainly wrong \
     (interprocedural; run with --dim)"

let dim_raw_conversion =
  own_rule "dim-raw-conversion"
    "a magic constant re-derives a Leotp_util.Units conversion on a \
     value with a known unit (*. 1000. on seconds, /. 8. on bits, \
     ...); call the named Units helper instead (interprocedural; run \
     with --dim)"

let dim_seqno_arith =
  own_rule "dim-seqno-arith"
    "an ordinal sequence number is used as a byte/bit/packet count or \
     vice versa; offsets difference to counts, they do not add to \
     sizes (interprocedural; run with --dim)"

let dim_annotation =
  own_rule "dim-annotation"
    "a [@leotp.dim] payload does not follow the grammar \"<unit> \
     <param>...\" | \"returns <unit>\" | \"<unit>\" (clauses \
     comma-separated), uses an unknown unit, or names a parameter the \
     function does not have"

let all =
  [
    no_wall_clock;
    no_unseeded_random;
    ordered_iteration;
    no_global_mutable_state;
    no_direct_print;
    no_poly_float_compare;
    missing_interface;
    domain_unsafe_access;
    hot_path_alloc;
    own_leak;
    own_double_release;
    own_use_after_release;
    own_escape;
    own_annotation;
    hot_path_may_alloc;
    time_taint;
    dim_mixed_arith;
    dim_bad_product;
    dim_raw_conversion;
    dim_seqno_arith;
    dim_annotation;
  ]

let known_ids = List.map (fun r -> r.id) all
