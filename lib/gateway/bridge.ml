module Node = Leotp_net.Node
module Packet = Leotp_net.Packet
module Flow_metrics = Leotp_net.Flow_metrics

type t = {
  tcp_in : Leotp_tcp.Sender.t;
  rx_in : Leotp_tcp.Receiver.t;
  producer : Leotp.Producer.t;
  consumer : Leotp.Consumer.t;
  tcp_out : Leotp_tcp.Sender.t;
  rx_out : Leotp_tcp.Receiver.t;
  m_in : Flow_metrics.t;
  m_leotp : Flow_metrics.t;
  m_out : Flow_metrics.t;
  completed : bool ref;
}

let create engine ~config ~tcp_cc ~sender_node ~ingress_node ~egress_node
    ~receiver_node ~flow ~bytes ?on_complete () =
  let m_in = Flow_metrics.create ~flow in
  let m_leotp = Flow_metrics.create ~flow in
  let m_out = Flow_metrics.create ~flow in
  let completed = ref false in

  (* Terrestrial leg 1: TCP sender -> ingress gateway. *)
  let tcp_in =
    Leotp_tcp.Sender.create engine ~node:sender_node
      ~dst:(Node.id ingress_node) ~flow ~cc:tcp_cc
      ~source:(Leotp_tcp.Sender.Fixed bytes) ~metrics:m_in ()
  in
  let producer_ref = ref None in
  let rx_in =
    Leotp_tcp.Receiver.create engine ~node:ingress_node
      ~src:(Node.id sender_node) ~flow ~metrics:m_in
      ~on_deliver:(fun ~pos:_ ~len:_ ~first_sent:_ ~retx:_ ->
        (* More of the stream exists: parked Interests can be served. *)
        match !producer_ref with
        | Some p -> Leotp.Producer.notify_data_available p
        | None -> ())
      ()
  in
  (* Satellite segment: the ingress gateway republishes the byte stream
     as a LEOTP Producer whose prefix is what TCP has delivered. *)
  let producer =
    Leotp.Producer.create engine ~config ~node:ingress_node ~flow
      ~total_bytes:bytes
      ~available:(fun () -> Leotp_tcp.Receiver.delivered_bytes rx_in)
      ~metrics:m_leotp ()
  in
  producer_ref := Some producer;
  (* Terrestrial leg 2: egress gateway -> final TCP receiver; the source
     grows with the LEOTP Consumer's in-order prefix. *)
  let consumer_ref = ref None in
  let tcp_out =
    Leotp_tcp.Sender.create engine ~node:egress_node
      ~dst:(Node.id receiver_node) ~flow ~cc:tcp_cc
      ~source:
        (Leotp_tcp.Sender.Dynamic
           (fun () ->
             match !consumer_ref with
             | Some c -> Leotp.Consumer.delivered_prefix c
             | None -> 0))
      ~metrics:m_out ()
  in
  let consumer =
    Leotp.Consumer.create engine ~config ~node:egress_node
      ~producer:(Node.id ingress_node) ~flow ~total_bytes:bytes
      ~metrics:m_leotp
      ~on_prefix:(fun ~pos:_ ~len:_ ->
        Leotp_tcp.Sender.notify_data_available tcp_out)
      ()
  in
  consumer_ref := Some consumer;
  let rx_out =
    Leotp_tcp.Receiver.create engine ~node:receiver_node
      ~src:(Node.id egress_node) ~flow ~metrics:m_out ~expected_bytes:bytes
      ~on_complete:(fun () ->
        completed := true;
        match on_complete with Some f -> f () | None -> ())
      ()
  in

  (* Handlers: each node dispatches by packet kind, forwarding anything
     that is not for it (the gateways sit on routed paths). *)
  Node.set_handler sender_node (fun ~from:_ pkt ->
      if Leotp_tcp.Wire.is_ack_seg pkt && pkt.Packet.flow = flow then
        Leotp_tcp.Sender.handle_ack tcp_in pkt
      else Node.forward sender_node ~from:0 pkt);
  Node.set_handler ingress_node (fun ~from:_ pkt ->
      if Leotp_tcp.Wire.is_data_seg pkt && pkt.Packet.flow = flow then
        Leotp_tcp.Receiver.handle_data rx_in pkt
      else if Leotp.Wire.is_interest pkt && pkt.Packet.flow = flow then
        Leotp.Producer.handle_interest producer pkt
      else Node.forward ingress_node ~from:0 pkt);
  Node.set_handler egress_node (fun ~from:_ pkt ->
      if Leotp.Wire.is_data pkt && pkt.Packet.flow = flow then
        Leotp.Consumer.handle_packet consumer pkt
      else if Leotp_tcp.Wire.is_ack_seg pkt && pkt.Packet.flow = flow then
        Leotp_tcp.Sender.handle_ack tcp_out pkt
      else Node.forward egress_node ~from:0 pkt);
  Node.set_handler receiver_node (fun ~from:_ pkt ->
      if Leotp_tcp.Wire.is_data_seg pkt && pkt.Packet.flow = flow then
        Leotp_tcp.Receiver.handle_data rx_out pkt
      else Node.forward receiver_node ~from:0 pkt);
  {
    tcp_in;
    rx_in;
    producer;
    consumer;
    tcp_out;
    rx_out;
    m_in;
    m_leotp;
    m_out;
    completed;
  }

let start t =
  Leotp_tcp.Sender.start t.tcp_in;
  Leotp.Consumer.start t.consumer;
  Leotp_tcp.Sender.start t.tcp_out

let complete t = !(t.completed)
let tcp_in_metrics t = t.m_in
let leotp_metrics t = t.m_leotp
let tcp_out_metrics t = t.m_out

let ingress_backlog t =
  Leotp_tcp.Receiver.delivered_bytes t.rx_in
  - Leotp.Consumer.delivered_prefix t.consumer

let egress_backlog t =
  Leotp.Consumer.delivered_prefix t.consumer - Leotp_tcp.Sender.snd_una t.tcp_out
