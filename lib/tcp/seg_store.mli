(** Ordered, allocation-free store for a TCP sender's unacknowledged
    segments: appends at increasing [seq], prefix removal on cumulative
    ACK, ordered scans and point lookups.  See [seg_store.ml] for why
    this replaces an [IntMap]. *)

type seg = {
  mutable seq : int;
  mutable len : int;
  mutable first_sent : float;
  mutable last_sent : float;
  mutable retx_count : int;
  mutable sacked : bool;
  mutable lost : bool;
}

type t

val create : unit -> t
val is_empty : t -> bool
val cardinal : t -> int

val push_back : t -> seg -> unit
(** Append; [seg.seq] must exceed every stored sequence number. *)

val first : t -> seg option

val find : t -> int -> seg option
(** Segment whose [seq] equals the given position, if present. *)

val iter : t -> (seg -> unit) -> unit

val iter_from_while : t -> from:int -> (seg -> bool) -> unit
(** Ordered scan from the first segment with [seq >= from]; stops when
    the callback returns [false].  Allocates nothing. *)

val first_lost : t -> from:int -> seg option
(** First segment with [seq >= from] that is marked lost and not
    SACKed — the next retransmission candidate.  Allocates nothing
    beyond the returned option. *)

val drop_below :
  t -> cum:int -> on_drop:(seg -> unit) -> on_straddle:(seg -> int -> unit) -> unit
(** Remove every segment entirely below [cum]; a straddler is truncated
    in place after [on_straddle seg head] reports its acked head. *)

val clear : t -> unit
