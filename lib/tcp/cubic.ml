(** CUBIC (RFC 8312): cubic window growth in congestion avoidance with a
    TCP-friendly (Reno-tracking) floor, beta = 0.7, C = 0.4. *)

open Cc_intf

let beta = 0.7
let c = 0.4

type state = {
  mss : float;
  mutable cwnd : float;  (** bytes *)
  mutable ssthresh : float;
  mutable w_max : float;  (** segments *)
  mutable k : float;
  mutable epoch_start : float option;
  mutable srtt : float;
}

let create ~mss ~now:_ =
  let s =
    {
      mss = fmss mss;
      cwnd = initial_window mss;
      ssthresh = Float.infinity;
      w_max = 0.0;
      k = 0.0;
      epoch_start = None;
      srtt = 0.1;
    }
  in
  let hystart = Hystart.create () in
  let on_ack info =
    (match info.rtt_sample with
    | Some r -> s.srtt <- (0.875 *. s.srtt) +. (0.125 *. r)
    | None -> ());
    if s.cwnd < s.ssthresh && Hystart.should_exit hystart ~rtt_sample:info.rtt_sample
    then s.ssthresh <- s.cwnd;
    let acked = float_of_int info.acked_bytes in
    if s.cwnd < s.ssthresh then s.cwnd <- s.cwnd +. acked
    else begin
      let now = info.now in
      (match s.epoch_start with
      | Some _ -> ()
      | None ->
        s.epoch_start <- Some now;
        let w_cwnd = s.cwnd /. s.mss in
        if s.w_max <= w_cwnd then begin
          s.w_max <- w_cwnd;
          s.k <- 0.0
        end
        else s.k <- Float.cbrt (s.w_max *. (1.0 -. beta) /. c));
      let epoch = Option.get s.epoch_start in
      let t = now -. epoch +. s.srtt in
      let target = (c *. ((t -. s.k) ** 3.0)) +. s.w_max in
      (* TCP-friendly region (RFC 8312 S4.2): Reno-equivalent window grows
         ~0.53 segments per RTT of elapsed epoch time. *)
      let w_est =
        (s.w_max *. beta)
        +. (3.0 *. (1.0 -. beta) /. (1.0 +. beta)
           *. (t /. Float.max s.srtt 1e-3))
      in
      let w_cwnd = s.cwnd /. s.mss in
      let next =
        if target > w_cwnd then w_cwnd +. ((target -. w_cwnd) /. w_cwnd)
        else w_cwnd +. (0.01 /. w_cwnd)
      in
      s.cwnd <- Float.max (next *. s.mss) (w_est *. s.mss)
    end
  in
  let on_loss ~now:_ ~inflight:_ =
    let w_cwnd = s.cwnd /. s.mss in
    (* Fast convergence (RFC 8312 §4.6). *)
    s.w_max <- (if w_cwnd < s.w_max then w_cwnd *. (2.0 -. beta) /. 2.0 else w_cwnd);
    s.cwnd <- Float.max (s.cwnd *. beta) (min_window (int_of_float s.mss));
    s.ssthresh <- s.cwnd;
    s.epoch_start <- None
  in
  {
    name = "cubic";
    on_ack;
    on_loss;
    on_rto =
      (fun ~now ->
        on_loss ~now ~inflight:0;
        s.cwnd <- s.mss);
    cwnd = (fun () -> s.cwnd);
    pacing_rate = (fun () -> None);
    phase = (fun () -> if s.cwnd < s.ssthresh then "ss" else "ca");
  }
