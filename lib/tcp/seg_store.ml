(* Ordered store for a TCP sender's unacknowledged segments.

   The sender's access pattern is strictly structured: new segments are
   appended at ever-increasing sequence numbers, cumulative ACKs remove a
   prefix, and everything else is an ordered scan or a point lookup.  A
   ring buffer over a growable array supports all of that with zero
   allocation per operation (amortised: the backing array doubles), which
   matters because the SACK and FACK scans in [Sender.handle_ack] run on
   every ack and cover O(window) segments — as an [IntMap] with
   [to_seq_from] they allocated ~10 words per segment visited, the
   dominant allocation in every large-window TCP scenario. *)

type seg = {
  mutable seq : int;
  mutable len : int;
  mutable first_sent : float;
  mutable last_sent : float;
  mutable retx_count : int;
  mutable sacked : bool;
  mutable lost : bool;  (** declared lost, waiting for retransmission *)
}

type t = { mutable buf : seg array; mutable head : int; mutable count : int }

let dummy =
  {
    seq = -1;
    len = 0;
    first_sent = 0.0;
    last_sent = 0.0;
    retx_count = 0;
    sacked = false;
    lost = false;
  }

let create () = { buf = Array.make 64 dummy; head = 0; count = 0 }
let is_empty t = t.count = 0
let cardinal t = t.count
let get t i = t.buf.((t.head + i) mod Array.length t.buf)

let grow t =
  let cap = Array.length t.buf in
  (* doubling growth: amortized O(1), not a steady-state allocation *)
  let buf = (Array.make [@leotp.allow "hot-path-may-alloc"]) (2 * cap) dummy in
  for i = 0 to t.count - 1 do
    buf.(i) <- get t i
  done;
  t.buf <- buf;
  t.head <- 0

let push_back t seg =
  if t.count = Array.length t.buf then grow t;
  t.buf.((t.head + t.count) mod Array.length t.buf) <- seg;
  t.count <- t.count + 1

let first t = if t.count = 0 then None else Some (get t 0)

let pop_front t =
  t.buf.(t.head) <- dummy;
  t.head <- (t.head + 1) mod Array.length t.buf;
  t.count <- t.count - 1

(* Index of the first segment with [seq >= from]; [t.count] if none.
   Top-level recursion rather than while+ref: this runs per ack, and a
   local [ref] (or a captured closure) is a minor-heap allocation. *)
let rec lb_search t ~from lo hi =
  if lo >= hi then lo
  else
    let mid = (lo + hi) / 2 in
    if (get t mid).seq < from then lb_search t ~from (mid + 1) hi
    else lb_search t ~from lo mid

let lower_bound t ~from = lb_search t ~from 0 t.count

let find t pos =
  let i = lower_bound t ~from:pos in
  if i < t.count then begin
    let seg = get t i in
    if seg.seq = pos then Some seg else None
  end
  else None

let iter t f =
  for i = 0 to t.count - 1 do
    f (get t i)
  done

(* Ordered scan starting at the first segment with [seq >= from]; stops
   when [f] returns false.  Recursion, not while+ref: this is the SACK
   scan, run per ack. *)
let rec iter_while_at t f i =
  if i < t.count && f (get t i) then iter_while_at t f (i + 1)

let iter_from_while t ~from f = iter_while_at t f (lower_bound t ~from)

(* Next retransmission candidate.  A dedicated scan (rather than
   [iter_from_while] with a closure over a [ref]) keeps the sender's
   per-ack path free of closure allocations. *)
let rec first_lost_at t i =
  if i >= t.count then None
  else
    let seg = get t i in
    if seg.lost && not seg.sacked then Some seg else first_lost_at t (i + 1)

let first_lost t ~from = first_lost_at t (lower_bound t ~from)

(* Cumulative-ack removal: drop every segment entirely below [cum]
   (calling [on_drop] on each) and truncate a straddler in place so its
   unacknowledged tail stays outstanding.  [on_straddle seg head] runs
   before the truncation with [head] = acknowledged bytes. *)
let rec drop_below t ~cum ~on_drop ~on_straddle =
  if t.count > 0 then begin
    let seg = get t 0 in
    if seg.seq + seg.len <= cum then begin
      on_drop seg;
      pop_front t;
      drop_below t ~cum ~on_drop ~on_straddle
    end
    else if seg.seq < cum then begin
      let head = cum - seg.seq in
      on_straddle seg head;
      seg.seq <- cum;
      seg.len <- seg.len - head
    end
  end

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) dummy;
  t.head <- 0;
  t.count <- 0
