(** TCP Hybla (Caini & Firrincieli 2004): window growth scaled by
    rho = RTT/RTT0 so long-RTT (satellite) flows grow as fast as a
    reference terrestrial flow with RTT0 = 25 ms. *)

val create : mss:int -> now:float -> Cc_intf.t
