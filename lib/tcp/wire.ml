(** TCP-like wire format carried in simulator packets, as flat slots.

    [Data_seg] also carries [first_sent], the time the byte range was first
    transmitted by the {i origin} sender: the receiver uses it to measure
    application-level data-retrieval delay (including retransmission and,
    for Split TCP, proxy queuing), which is the paper's OWD metric.

    Slot layout:
    - Data_seg ([kind_data_seg]): i0 = seq, i1 = len, f.(0) = sent_at,
      f.(1) = first_sent, [flag_retx], [flag_fin].
    - Ack_seg ([kind_ack_seg]): i0 = cum_ack, i1 = number of SACK ranges
      (0..3), ranges inline in (i2,i3) (i4,i5) (i6,i7) — fixed slots, no
      list; f.(0) = ts_echo with [flag_ts_echo] marking presence.  The
      presence flag, not a 0.0 sentinel, preserves the PR 5 semantics: a
      packet sent at simulation time 0.0 is a perfectly valid RTT sample
      (it used to be silently dropped, leaving the first RTO unprimed). *)

(* Wire-format surface: the slot accessors and constructors are the whole
   module; an .mli would duplicate every one-liner. *)
[@@@leotp.allow "missing-interface"]

module Packet = Leotp_net.Packet
module Pool = Leotp_net.Packet_pool
module Codec = Leotp_net.Codec

(* Kind registry: 1-2 are LEOTP's (lib/core/wire.ml). *)
let kind_data_seg = 3
let kind_ack_seg = 4

let header_bytes = 40
let default_mss = 1400
let max_sacks = 3

let data_packet ~src ~dst ~flow ~seq ~len ~sent_at ~first_sent ~retx ~fin =
  let p =
    Pool.acquire ~src ~dst ~flow ~size:(header_bytes + len)
      ~kind:kind_data_seg
  in
  p.Packet.i0 <- seq;
  p.Packet.i1 <- len;
  p.Packet.f.(0) <- sent_at;
  p.Packet.f.(1) <- first_sent;
  Packet.set_flag p Packet.flag_retx retx;
  Packet.set_flag p Packet.flag_fin fin;
  p

(* The ack starts with zero SACK ranges; the receiver appends up to
   [max_sacks] with [add_sack]. *)
let ack_packet ~src ~dst ~flow ~cum_ack =
  let p =
    Pool.acquire ~src ~dst ~flow ~size:header_bytes ~kind:kind_ack_seg
  in
  p.Packet.i0 <- cum_ack;
  p

let set_ts_echo p ts =
  p.Packet.f.(0) <- ts;
  Packet.set_flag p Packet.flag_ts_echo true

let add_sack p ~lo ~hi =
  (match p.Packet.i1 with
  | 0 ->
    p.Packet.i2 <- lo;
    p.Packet.i3 <- hi
  | 1 ->
    p.Packet.i4 <- lo;
    p.Packet.i5 <- hi
  | 2 ->
    p.Packet.i6 <- lo;
    p.Packet.i7 <- hi
  | _ -> invalid_arg "Wire.add_sack: more than 3 ranges");
  p.Packet.i1 <- p.Packet.i1 + 1

(* Data_seg accessors. *)
let seq (p : Packet.t) = p.Packet.i0
let len (p : Packet.t) = p.Packet.i1
let sent_at (p : Packet.t) = p.Packet.f.(0)
let first_sent (p : Packet.t) = p.Packet.f.(1)
let retx (p : Packet.t) = Packet.get_flag p Packet.flag_retx
let fin (p : Packet.t) = Packet.get_flag p Packet.flag_fin

(* Ack_seg accessors. *)
let cum_ack (p : Packet.t) = p.Packet.i0
let sack_count (p : Packet.t) = p.Packet.i1

let sack_lo (p : Packet.t) i =
  match i with
  | 0 -> p.Packet.i2
  | 1 -> p.Packet.i4
  | _ -> p.Packet.i6

let sack_hi (p : Packet.t) i =
  match i with
  | 0 -> p.Packet.i3
  | 1 -> p.Packet.i5
  | _ -> p.Packet.i7

let has_ts_echo (p : Packet.t) = Packet.get_flag p Packet.flag_ts_echo
let ts_echo (p : Packet.t) = p.Packet.f.(0)

(* The trace's [Ack_processed] event keeps its list shape (digest
   compatibility); only built when a recorder is actually observing. *)
let sack_list (p : Packet.t) =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) ((sack_lo p i, sack_hi p i) :: acc)
  in
  go (sack_count p - 1) []

let is_data_seg (p : Packet.t) = p.Packet.kind = kind_data_seg
let is_ack_seg (p : Packet.t) = p.Packet.kind = kind_ack_seg

(* ------------------------------------------------------------------ *)
(* Cursor codecs: byte serialization of each kind.  Decode fills a
   caller-owned (pool-acquired) record so the pair is allocation-free. *)

let header_encoded_size = 1 + (4 * 8)
let data_seg_encoded_size = header_encoded_size + (2 * 8) + (2 * 8) + 1

let ack_seg_encoded_size =
  header_encoded_size + (2 * 8) + (2 * max_sacks * 8) + 1 + 8

let encode_header w (p : Packet.t) =
  Codec.w_u8 w p.Packet.kind;
  Codec.w_int w p.Packet.src;
  Codec.w_int w p.Packet.dst;
  Codec.w_int w p.Packet.flow;
  Codec.w_int w p.Packet.size

let decode_header r (p : Packet.t) =
  p.Packet.kind <- Codec.r_u8 r;
  p.Packet.src <- Codec.r_int r;
  p.Packet.dst <- Codec.r_int r;
  p.Packet.flow <- Codec.r_int r;
  p.Packet.size <- Codec.r_int r

let encode_data_seg w (p : Packet.t) =
  encode_header w p;
  Codec.w_int w p.Packet.i0;
  Codec.w_int w p.Packet.i1;
  Codec.w_float w p.Packet.f.(0);
  Codec.w_float w p.Packet.f.(1);
  Codec.w_u8 w ((if retx p then 1 else 0) lor if fin p then 2 else 0)

let decode_data_seg r (p : Packet.t) =
  decode_header r p;
  p.Packet.i0 <- Codec.r_int r;
  p.Packet.i1 <- Codec.r_int r;
  p.Packet.f.(0) <- Codec.r_float r;
  p.Packet.f.(1) <- Codec.r_float r;
  let fl = Codec.r_u8 r in
  Packet.set_flag p Packet.flag_retx (fl land 1 <> 0);
  Packet.set_flag p Packet.flag_fin (fl land 2 <> 0)

let encode_ack_seg w (p : Packet.t) =
  encode_header w p;
  Codec.w_int w p.Packet.i0;
  Codec.w_int w p.Packet.i1;
  Codec.w_int w p.Packet.i2;
  Codec.w_int w p.Packet.i3;
  Codec.w_int w p.Packet.i4;
  Codec.w_int w p.Packet.i5;
  Codec.w_int w p.Packet.i6;
  Codec.w_int w p.Packet.i7;
  Codec.w_bool w (has_ts_echo p);
  Codec.w_float w p.Packet.f.(0)

let decode_ack_seg r (p : Packet.t) =
  decode_header r p;
  p.Packet.i0 <- Codec.r_int r;
  p.Packet.i1 <- Codec.r_int r;
  p.Packet.i2 <- Codec.r_int r;
  p.Packet.i3 <- Codec.r_int r;
  p.Packet.i4 <- Codec.r_int r;
  p.Packet.i5 <- Codec.r_int r;
  p.Packet.i6 <- Codec.r_int r;
  p.Packet.i7 <- Codec.r_int r;
  Packet.set_flag p Packet.flag_ts_echo (Codec.r_bool r);
  p.Packet.f.(0) <- Codec.r_float r
