(** TCP-like wire format carried in simulator packets.

    [Data_seg] also carries [first_sent], the time the byte range was first
    transmitted by the {i origin} sender: the receiver uses it to measure
    application-level data-retrieval delay (including retransmission and,
    for Split TCP, proxy queuing), which is the paper's OWD metric. *)

(* Open-extension wire constructors: the payload cases are the public
   surface; an .mli would duplicate the whole definition. *)
[@@@leotp.allow "missing-interface"]


type Leotp_net.Packet.payload +=
  | Data_seg of {
      seq : int;  (** first byte of the range *)
      len : int;  (** payload bytes *)
      sent_at : float;  (** this transmission's time (RTT timestamp) *)
      first_sent : float;  (** origin first-transmission time of the range *)
      retx : bool;  (** retransmitted at least once somewhere on the path *)
      fin : bool;  (** last segment of the flow *)
    }
  | Ack_seg of {
      cum_ack : int;  (** next byte expected *)
      sacks : (int * int) list;  (** up to 3 selectively acked ranges *)
      ts_echo : float option;
          (** [sent_at] of the segment that triggered this ack.  An option,
              not a 0.0 sentinel: a packet sent at simulation time 0.0 is a
              perfectly valid RTT sample (it used to be silently dropped,
              leaving the first RTO unprimed). *)
    }

let header_bytes = 40
let default_mss = 1400

let data_packet ~src ~dst ~flow ~seq ~len ~sent_at ~first_sent ~retx ~fin =
  Leotp_net.Packet.make ~src ~dst ~flow ~size:(header_bytes + len)
    (Data_seg { seq; len; sent_at; first_sent; retx; fin })

let ack_packet ~src ~dst ~flow ~cum_ack ~sacks ~ts_echo =
  Leotp_net.Packet.make ~src ~dst ~flow ~size:header_bytes
    (Ack_seg { cum_ack; sacks; ts_echo })
