type ack_info = Cc_intf.ack_info = {
  now : float;
  acked_bytes : int;
  rtt_sample : float option;
  bw_sample : float option;
  inflight : int;
}

type t = Cc_intf.t = {
  name : string;
  on_ack : ack_info -> unit;
  on_loss : now:float -> inflight:int -> unit;
  on_rto : now:float -> unit;
  cwnd : unit -> float;
  pacing_rate : unit -> float option;
  phase : unit -> string;
}

type algo = Newreno | Cubic | Hybla | Westwood | Vegas | Bbr | Pcc

let all = [ Newreno; Cubic; Hybla; Westwood; Vegas; Bbr; Pcc ]

let algo_name = function
  | Newreno -> "newreno"
  | Cubic -> "cubic"
  | Hybla -> "hybla"
  | Westwood -> "westwood"
  | Vegas -> "vegas"
  | Bbr -> "bbr"
  | Pcc -> "pcc"

let algo_of_name = function
  | "newreno" -> Some Newreno
  | "cubic" -> Some Cubic
  | "hybla" -> Some Hybla
  | "westwood" -> Some Westwood
  | "vegas" -> Some Vegas
  | "bbr" -> Some Bbr
  | "pcc" -> Some Pcc
  | _ -> None

let create algo ~mss ~now =
  match algo with
  | Newreno -> Newreno.create ~mss ~now
  | Cubic -> Cubic.create ~mss ~now
  | Hybla -> Hybla.create ~mss ~now
  | Westwood -> Westwood.create ~mss ~now
  | Vegas -> Vegas.create ~mss ~now
  | Bbr -> Bbr.create ~mss ~now
  | Pcc -> Pcc_vivace.create ~mss ~now
