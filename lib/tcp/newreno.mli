(** TCP NewReno: slow start + AIMD congestion avoidance with fast-recovery
    halving.  The reference loss-based baseline. *)

val create : mss:int -> now:float -> Cc_intf.t
