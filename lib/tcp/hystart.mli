(** Delay-based slow-start exit (HyStart, Ha & Rhee 2011): leave slow
    start as soon as the RTT inflates past the propagation floor by
    max(4 ms, floor/8), instead of one full RTT after the queue starts
    building. *)

type t

val create : unit -> t

val should_exit : t -> rtt_sample:float option -> bool
(** Feed every ACK's RTT sample; [true] once the RTT is inflated.  The
    caller is responsible for acting only while still in slow start. *)
