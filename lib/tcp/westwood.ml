(** TCP Westwood+ (Mascolo et al. 2001): Reno-style growth, but on loss the
    window is set from an end-to-end bandwidth estimate (ACK rate) times
    the minimum RTT, instead of blind halving — designed for lossy
    wireless links. *)

open Cc_intf

type state = {
  mss : float;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable bwe : float;  (** bytes/s, EWMA of delivery-rate samples *)
  mutable rtt_min : float;
}

let create ~mss ~now:_ =
  let s =
    {
      mss = fmss mss;
      cwnd = initial_window mss;
      ssthresh = Float.infinity;
      bwe = 0.0;
      rtt_min = Float.infinity;
    }
  in
  let hystart = Hystart.create () in
  {
    name = "westwood";
    on_ack =
      (fun info ->
        (match info.rtt_sample with
        | Some r -> s.rtt_min <- Float.min s.rtt_min r
        | None -> ());
        if s.cwnd < s.ssthresh && Hystart.should_exit hystart ~rtt_sample:info.rtt_sample
        then s.ssthresh <- s.cwnd;
        (match info.bw_sample with
        | Some b -> s.bwe <- if Float.equal s.bwe 0.0 then b else (0.9 *. s.bwe) +. (0.1 *. b)
        | None -> ());
        let acked = float_of_int info.acked_bytes in
        if s.cwnd < s.ssthresh then s.cwnd <- s.cwnd +. acked
        else s.cwnd <- s.cwnd +. (s.mss *. acked /. s.cwnd));
    on_loss =
      (fun ~now:_ ~inflight:_ ->
        let target =
          if s.bwe > 0.0 && Float.is_finite s.rtt_min then s.bwe *. s.rtt_min
          else s.cwnd /. 2.0
        in
        s.ssthresh <- Float.max target (2.0 *. s.mss);
        s.cwnd <- Float.min s.cwnd s.ssthresh);
    on_rto =
      (fun ~now:_ ->
        let target =
          if s.bwe > 0.0 && Float.is_finite s.rtt_min then s.bwe *. s.rtt_min
          else s.cwnd /. 2.0
        in
        s.ssthresh <- Float.max target (2.0 *. s.mss);
        s.cwnd <- s.mss);
    cwnd = (fun () -> s.cwnd);
    pacing_rate = (fun () -> None);
    phase = (fun () -> if s.cwnd < s.ssthresh then "ss" else "ca");
  }
