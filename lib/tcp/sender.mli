(** Reliable byte-stream sender.

    Loss detection: SACK scoreboard with a FACK-style reordering threshold
    (a segment is declared lost once bytes >= 3*MSS beyond it have been
    selectively acknowledged), plus an RFC 6298 retransmission timeout as
    the last resort.  Congestion control is pluggable ({!Cc}); rate-based
    controllers are honoured through packet pacing. *)

type source =
  | Fixed of int  (** transfer exactly this many bytes, then finish *)
  | Unlimited  (** bulk flow with unbounded data *)
  | Dynamic of (unit -> int)
      (** available prefix length grows over time (Split TCP proxies) *)

type t

val create :
  Leotp_sim.Engine.t ->
  node:Leotp_net.Node.t ->
  dst:int ->
  flow:int ->
  cc:Cc.algo ->
  ?mss:int ->
  ?source:source ->
  ?metrics:Leotp_net.Flow_metrics.t ->
  ?on_complete:(unit -> unit) ->
  ?first_sent_of:(pos:int -> len:int -> float * bool) ->
  unit ->
  t
(** Installs the flow's ACK handling on [node] (via {!handle_ack}; the node
    handler must dispatch to it — {!Session} and {!Split} do the wiring).
    [first_sent_of ~pos ~len] supplies the origin timestamp and retx flag
    stamped into data segments; by default the segment's own first
    transmission time (proxies pass the origin flow's). *)

val start : t -> unit
val handle_ack : t -> Leotp_net.Packet.t -> unit

val notify_data_available : t -> unit
(** For [Dynamic] sources: new bytes are available, try to send. *)

val finished : t -> bool
val snd_una : t -> int
(** Lowest unacknowledged byte (= bytes reliably delivered downstream). *)

val snd_nxt : t -> int
(** Next new byte to be transmitted. *)

val inflight : t -> int

val lost_pending : t -> int
(** Segments declared lost and not yet retransmitted. *)

val cwnd : t -> float

val srtt : t -> float option
(** Smoothed RTT estimate; [None] until the first valid sample. *)

val metrics : t -> Leotp_net.Flow_metrics.t
val cc_name : t -> string
val stop : t -> unit
(** Cancel timers (end of experiment). *)

val timers_idle : t -> bool
(** Both the RTO and pump timer slots are empty (not merely cancelled).
    Holds after {!stop} and after the flow finishes. *)

val timer_pending : t -> bool
(** Some timer is still armed in the engine ({!Leotp_sim.Engine.is_pending});
    must be [false] once the sender has finished or been stopped. *)

(**/**)

val debug_state : t -> string
