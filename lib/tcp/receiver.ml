module Engine = Leotp_sim.Engine
module Packet = Leotp_net.Packet
module Node = Leotp_net.Node
module Flow_metrics = Leotp_net.Flow_metrics
module Interval_set = Leotp_util.Interval_set

type t = {
  engine : Engine.t;
  node : Node.t;
  src : int;
  flow : int;
  metrics : Flow_metrics.t;
  expected_bytes : int option;
  on_deliver : pos:int -> len:int -> first_sent:float -> retx:bool -> unit;
  on_complete : unit -> unit;
  mutable received : Interval_set.t;
  mutable delivered : int;  (** in-order prefix length *)
  mutable completed : bool;
}

let create engine ~node ~src ~flow ?metrics ?expected_bytes
    ?(on_deliver = fun ~pos:_ ~len:_ ~first_sent:_ ~retx:_ -> ())
    ?(on_complete = fun () -> ()) () =
  let metrics =
    match metrics with Some m -> m | None -> Flow_metrics.create ~flow
  in
  {
    engine;
    node;
    src;
    flow;
    metrics;
    expected_bytes;
    on_deliver;
    on_complete;
    received = Interval_set.empty;
    delivered = 0;
    completed = false;
  }

let sack_blocks t ~cum =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | (lo, hi) :: rest ->
      if hi <= cum then take n rest else (max lo cum, hi) :: take (n - 1) rest
  in
  take 3 (Interval_set.intervals t.received)

let handle_data t pkt =
  match pkt.Packet.payload with
  | Wire.Data_seg { seq; len; sent_at; first_sent; retx; fin = _ }
    when pkt.Packet.flow = t.flow ->
    let now = Engine.now t.engine in
    let fresh = not (Interval_set.covers ~lo:seq ~hi:(seq + len) t.received) in
    let before = Interval_set.cardinal t.received in
    t.received <- Interval_set.add ~lo:seq ~hi:(seq + len) t.received;
    let new_bytes = Interval_set.cardinal t.received - before in
    if new_bytes > 0 then
      Flow_metrics.on_deliver t.metrics ~now ~bytes:new_bytes
        ~owd:(now -. first_sent) ~retx;
    (* Advance the in-order prefix and hand it to the application. *)
    let prefix = Interval_set.first_missing ~lo:0 t.received in
    if prefix > t.delivered then begin
      (* Update state before the callback: consumers (Split proxies) read
         [delivered_bytes] from inside it. *)
      let pos = t.delivered in
      t.delivered <- prefix;
      if Leotp_net.Trace.on () then
        Leotp_net.Trace.emit
          (Leotp_net.Trace.Deliver
             { node = Node.id t.node; flow = t.flow; pos; len = prefix - pos });
      t.on_deliver ~pos ~len:(prefix - pos) ~first_sent ~retx
    end;
    ignore fresh;
    (* Per-packet ACK with timestamp echo. *)
    let cum = t.delivered in
    Node.send t.node
      (Wire.ack_packet ~src:(Node.id t.node) ~dst:t.src ~flow:t.flow
         ~cum_ack:cum ~sacks:(sack_blocks t ~cum) ~ts_echo:(Some sent_at));
    (match t.expected_bytes with
    | Some n when t.delivered >= n && not t.completed ->
      t.completed <- true;
      if Leotp_net.Trace.on () then
        Leotp_net.Trace.emit
          (Leotp_net.Trace.Complete
             { node = Node.id t.node; flow = t.flow; bytes = t.delivered });
      Flow_metrics.set_finished t.metrics now;
      t.on_complete ()
    | _ -> ())
  | _ -> ()

let delivered_bytes t = t.delivered
let received_bytes t = Interval_set.cardinal t.received
let complete t = t.completed
let metrics t = t.metrics
