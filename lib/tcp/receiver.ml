module Engine = Leotp_sim.Engine
module Packet = Leotp_net.Packet
module Node = Leotp_net.Node
module Flow_metrics = Leotp_net.Flow_metrics
module Interval_set = Leotp_util.Interval_set

type t = {
  engine : Engine.t;
  node : Node.t;
  src : int;
  flow : int;
  metrics : Flow_metrics.t;
  expected_bytes : int option;
  on_deliver : pos:int -> len:int -> first_sent:float -> retx:bool -> unit;
  on_complete : unit -> unit;
  mutable received : Interval_set.t;
  mutable delivered : int;  (** in-order prefix length *)
  mutable completed : bool;
}

let create engine ~node ~src ~flow ?metrics ?expected_bytes
    ?(on_deliver = fun ~pos:_ ~len:_ ~first_sent:_ ~retx:_ -> ())
    ?(on_complete = fun () -> ()) () =
  let metrics =
    match metrics with Some m -> m | None -> Flow_metrics.create ~flow
  in
  {
    engine;
    node;
    src;
    flow;
    metrics;
    expected_bytes;
    on_deliver;
    on_complete;
    received = Interval_set.empty;
    delivered = 0;
    completed = false;
  }

(* Write up to [Wire.max_sacks] out-of-order ranges above [cum] straight
   into the ack's fixed slots — no intermediate list.  The fold closure
   is one cell per ack, inherent to walking the functional interval set. *)
let fill_sacks t ack ~cum =
  ignore
    (Interval_set.fold
       (fun lo hi n ->
         if n >= Wire.max_sacks || hi <= cum then n
         else begin
           Wire.add_sack ack ~lo:(max lo cum) ~hi;
           n + 1
         end)
       t.received 0)
[@@leotp.allow "hot-path-may-alloc"]

let handle_data t pkt =
  if Wire.is_data_seg pkt && pkt.Packet.flow = t.flow then begin
    let seq = Wire.seq pkt and len = Wire.len pkt in
    let sent_at = Wire.sent_at pkt in
    let first_sent = Wire.first_sent pkt and retx = Wire.retx pkt in
    Leotp_net.Packet_pool.release pkt;
    let now = Engine.now t.engine in
    let fresh = not (Interval_set.covers ~lo:seq ~hi:(seq + len) t.received) in
    let before = Interval_set.cardinal t.received in
    t.received <- Interval_set.add ~lo:seq ~hi:(seq + len) t.received;
    let new_bytes = Interval_set.cardinal t.received - before in
    if new_bytes > 0 then
      Flow_metrics.on_deliver t.metrics ~now ~bytes:new_bytes
        ~owd:(now -. first_sent) ~retx;
    (* Advance the in-order prefix and hand it to the application. *)
    let prefix = Interval_set.first_missing ~lo:0 t.received in
    if prefix > t.delivered then begin
      (* Update state before the callback: consumers (Split proxies) read
         [delivered_bytes] from inside it. *)
      let pos = t.delivered in
      t.delivered <- prefix;
      if Leotp_net.Trace.on () then
        Leotp_net.Trace.emit
          (Leotp_net.Trace.Deliver
             { node = Node.id t.node; flow = t.flow; pos; len = prefix - pos });
      t.on_deliver ~pos ~len:(prefix - pos) ~first_sent ~retx
    end;
    ignore fresh;
    (* Per-packet ACK with timestamp echo. *)
    let cum = t.delivered in
    let ack =
      Wire.ack_packet ~src:(Node.id t.node) ~dst:t.src ~flow:t.flow
        ~cum_ack:cum
    in
    fill_sacks t ack ~cum;
    Wire.set_ts_echo ack sent_at;
    Node.send t.node ack;
    match t.expected_bytes with
    | Some n when t.delivered >= n && not t.completed ->
      t.completed <- true;
      if Leotp_net.Trace.on () then
        Leotp_net.Trace.emit
          (Leotp_net.Trace.Complete
             { node = Node.id t.node; flow = t.flow; bytes = t.delivered });
      Flow_metrics.set_finished t.metrics now;
      t.on_complete ()
    | _ -> ()
  end
  else Leotp_net.Packet_pool.release pkt

let delivered_bytes t = t.delivered
let received_bytes t = Interval_set.cardinal t.received
let complete t = t.completed
let metrics t = t.metrics
