(** BBR (Cardwell et al.), simplified v1 model.

    Model-based control: a windowed-max filter estimates bottleneck
    bandwidth from delivery-rate samples and a windowed-min filter
    estimates the propagation RTT; the pacing rate cycles gains around the
    estimated bandwidth (ProbeBW), with Startup / Drain / ProbeRTT phases.
    Loss is ignored (the property the paper leans on in Figs 2 and 12);
    the delayed reaction to bandwidth change comes from the filter windows
    and probing cadence (Figs 5 and 14). *)

open Cc_intf

let startup_gain = 2.885
let probe_gains = [| 1.25; 0.75; 1.0; 1.0; 1.0; 1.0; 1.0; 1.0 |]
let min_rtt_expiry = 10.0
let probe_rtt_duration = 0.2

type mode = Startup | Drain | Probe_bw | Probe_rtt

type state = {
  mss : float;
  mutable mode : mode;
  max_bw : Leotp_util.Windowed_min.t;  (** bytes/s *)
  mutable min_rtt : float;
  mutable min_rtt_stamp : float;
  mutable srtt : float;
  mutable pacing_gain : float;
  mutable cwnd_gain : float;
  mutable cycle_index : int;
  mutable cycle_stamp : float;
  mutable full_bw : float;
  mutable full_bw_count : int;
  mutable round_start : float;
  mutable probe_rtt_done : float;
  mutable mode_before_probe_rtt : mode;
}

let create ~mss ~now =
  let s =
    {
      mss = fmss mss;
      mode = Startup;
      max_bw = Leotp_util.Windowed_min.create_max ~window:2.0;
      min_rtt = Float.infinity;
      min_rtt_stamp = now;
      srtt = 0.1;
      pacing_gain = startup_gain;
      cwnd_gain = startup_gain;
      cycle_index = 2;
      cycle_stamp = now;
      full_bw = 0.0;
      full_bw_count = 0;
      round_start = now;
      probe_rtt_done = 0.0;
      mode_before_probe_rtt = Probe_bw;
    }
  in
  let bw () =
    Leotp_util.Windowed_min.get_or s.max_bw ~now:s.round_start ~default:0.0
  in
  let bdp () =
    if Float.is_finite s.min_rtt then bw () *. s.min_rtt else 0.0
  in
  let enter_probe_bw now =
    s.mode <- Probe_bw;
    s.pacing_gain <- probe_gains.(s.cycle_index);
    s.cwnd_gain <- 2.0;
    s.cycle_stamp <- now
  in
  let on_ack info =
    let now = info.now in
    (match info.rtt_sample with
    | Some r ->
      s.srtt <- (0.875 *. s.srtt) +. (0.125 *. r);
      if r <= s.min_rtt || now -. s.min_rtt_stamp > min_rtt_expiry then begin
        s.min_rtt <- r;
        s.min_rtt_stamp <- now
      end
    | None -> ());
    (* Bandwidth filter spans ~10 round trips. *)
    Leotp_util.Windowed_min.set_window s.max_bw (Float.max (10.0 *. s.srtt) 1.0);
    (match info.bw_sample with
    | Some b -> Leotp_util.Windowed_min.add s.max_bw ~now b
    | None -> ());
    s.round_start <- now;
    (match s.mode with
    | Startup ->
      (* Full-pipe detection: bandwidth stopped growing for ~3 rounds. *)
      let b = bw () in
      if b > s.full_bw *. 1.25 then begin
        s.full_bw <- b;
        s.full_bw_count <- 0;
        s.round_start <- now
      end
      else if now -. s.cycle_stamp > s.srtt then begin
        s.cycle_stamp <- now;
        s.full_bw_count <- s.full_bw_count + 1;
        if s.full_bw_count >= 3 then begin
          s.mode <- Drain;
          s.pacing_gain <- 1.0 /. startup_gain
        end
      end
    | Drain -> if float_of_int info.inflight <= bdp () then enter_probe_bw now
    | Probe_bw ->
      (* Advance the gain cycle once per min_rtt. *)
      let phase_len =
        if Float.is_finite s.min_rtt then Float.max s.min_rtt 0.01 else s.srtt
      in
      if now -. s.cycle_stamp > phase_len then begin
        s.cycle_index <- (s.cycle_index + 1) mod Array.length probe_gains;
        s.pacing_gain <- probe_gains.(s.cycle_index);
        s.cycle_stamp <- now
      end
    | Probe_rtt ->
      if now >= s.probe_rtt_done then begin
        s.min_rtt_stamp <- now;
        (match s.mode_before_probe_rtt with
        | Startup ->
          s.mode <- Startup;
          s.pacing_gain <- startup_gain
        | _ -> enter_probe_bw now)
      end);
    (* ProbeRTT entry: the min-RTT estimate is stale. *)
    if s.mode <> Probe_rtt && now -. s.min_rtt_stamp > min_rtt_expiry then begin
      s.mode_before_probe_rtt <- s.mode;
      s.mode <- Probe_rtt;
      s.pacing_gain <- 1.0;
      s.probe_rtt_done <- now +. probe_rtt_duration
    end
  in
  {
    name = "bbr";
    on_ack;
    on_loss = (fun ~now:_ ~inflight:_ -> ());
    on_rto = (fun ~now:_ -> ());
    cwnd =
      (fun () ->
        match s.mode with
        | Probe_rtt -> 4.0 *. s.mss
        | _ ->
          let b = bdp () in
          if b <= 0.0 then initial_window (int_of_float s.mss)
          else Float.max (s.cwnd_gain *. b) (4.0 *. s.mss));
    pacing_rate =
      (fun () ->
        let b = bw () in
        if b <= 0.0 then None else Some (s.pacing_gain *. b));
    phase =
      (fun () ->
        match s.mode with
        | Startup -> "startup"
        | Drain -> "drain"
        | Probe_bw -> Printf.sprintf "probe_bw:%d" s.cycle_index
        | Probe_rtt -> "probe_rtt");
  }
