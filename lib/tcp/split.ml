module Engine = Leotp_sim.Engine
module Node = Leotp_net.Node
module Packet = Leotp_net.Packet
module IntMap = Map.Make (Int)

(* Per-proxy origin-timestamp bookkeeping: byte position -> (first_sent,
   retx) recorded from incoming segments.  Entries are consumed (left
   behind, pruned below the downstream snd_una) as data moves on. *)
type origin_info = { first_sent : float; retx : bool }

type proxy = {
  rx : Receiver.t;
  tx : Sender.t;
  mutable origin : origin_info IntMap.t;
}

type t = {
  origin_sender : Sender.t;
  end_receiver : Receiver.t;
  proxies : proxy array;
  metrics : Leotp_net.Flow_metrics.t;
  completed : bool ref;
}

let origin_lookup proxy ~pos ~len:_ =
  (* Find the recorded range containing [pos]. *)
  match IntMap.find_last_opt (fun k -> k <= pos) proxy.origin with
  | Some (_, info) -> (info.first_sent, info.retx)
  | None -> (0.0, false)

let prune_origin proxy upto =
  (* Keep one entry at or below [upto] (it may still cover bytes >= upto).
     The predicate closure and the map surgery allocate — per cumulative
     ack on the proxy, bounded by the origin map the split design keeps. *)
  match
    IntMap.find_last_opt
      ((fun k -> k <= upto) [@leotp.allow "hot-path-may-alloc"])
      proxy.origin
  with
  | Some (k, _) ->
    let _, at, above = IntMap.split k proxy.origin in
    proxy.origin <-
      (match at with Some v -> IntMap.add k v above | None -> above)
  | None -> ()

let connect engine ~nodes ~flow ~cc ?(mss = Wire.default_mss) ?source
    ?on_complete () =
  let n = Array.length nodes in
  assert (n >= 2);
  let metrics = Leotp_net.Flow_metrics.create ~flow in
  let expected_bytes =
    match source with Some (Sender.Fixed b) -> Some b | _ -> None
  in
  let completed = ref false in
  (* Build from the receiver side backwards so each proxy's sender knows
     its downstream node. *)
  let end_receiver =
    Receiver.create engine ~node:nodes.(n - 1) ~src:(Node.id nodes.(n - 2))
      ~flow ~metrics ?expected_bytes
      ~on_complete:(fun () ->
        completed := true;
        match on_complete with Some f -> f () | None -> ())
      ()
  in
  Node.set_handler nodes.(n - 1) (fun ~from:_ pkt ->
      if Wire.is_data_seg pkt && pkt.Packet.flow = flow then
        Receiver.handle_data end_receiver pkt
      else Node.forward nodes.(n - 1) ~from:0 pkt);
  (* Proxies at interior nodes, downstream-first. *)
  let proxies = Array.make (max 0 (n - 2)) None in
  for i = n - 2 downto 1 do
    let node = nodes.(i) in
    let rx_ref = ref None and tx_ref = ref None in
    let proxy_ref = ref None in
    let tx =
      Sender.create engine ~node ~dst:(Node.id nodes.(i + 1)) ~flow ~cc ~mss
        ~source:
          (Sender.Dynamic
             (fun () ->
               match !rx_ref with
               | Some rx -> Receiver.delivered_bytes rx
               | None -> 0))
        ~first_sent_of:(fun ~pos ~len ->
          match !proxy_ref with
          | Some p -> origin_lookup p ~pos ~len
          | None -> (0.0, false))
        ()
    in
    tx_ref := Some tx;
    let rx =
      Receiver.create engine ~node ~src:(Node.id nodes.(i - 1)) ~flow
        ~on_deliver:(fun ~pos:_ ~len:_ ~first_sent:_ ~retx:_ ->
          Sender.notify_data_available tx)
        ()
    in
    rx_ref := Some rx;
    let proxy = { rx; tx; origin = IntMap.empty } in
    proxy_ref := Some proxy;
    proxies.(i - 1) <- Some proxy;
    Node.set_handler node (fun ~from:_ pkt ->
        if Wire.is_data_seg pkt && pkt.Packet.flow = flow then begin
          (* Record origin info before handing the packet on: the receiver
             recycles it. *)
          (* per-packet origin bookkeeping is the split proxy's job: the
             record and map node carry end-to-end timing across the relay *)
          proxy.origin <-
            IntMap.add (Wire.seq pkt)
              ({ first_sent = Wire.first_sent pkt; retx = Wire.retx pkt }
              [@leotp.allow "hot-path-may-alloc"])
              proxy.origin;
          prune_origin proxy (Sender.snd_una proxy.tx);
          Receiver.handle_data rx pkt
        end
        else if Wire.is_ack_seg pkt && pkt.Packet.flow = flow then
          Sender.handle_ack tx pkt
        else Node.forward node ~from:0 pkt)
  done;
  let proxies = Array.map Option.get proxies in
  let origin_sender =
    Sender.create engine ~node:nodes.(0) ~dst:(Node.id nodes.(1)) ~flow ~cc
      ~mss ?source ~metrics ()
  in
  Node.set_handler nodes.(0) (fun ~from:_ pkt ->
      if Wire.is_ack_seg pkt && pkt.Packet.flow = flow then
        Sender.handle_ack origin_sender pkt
      else Node.forward nodes.(0) ~from:0 pkt);
  { origin_sender; end_receiver; proxies; metrics; completed }

let start t =
  Sender.start t.origin_sender;
  Array.iter (fun p -> Sender.start p.tx) t.proxies

let stop t =
  Sender.stop t.origin_sender;
  Array.iter (fun p -> Sender.stop p.tx) t.proxies

let metrics t = t.metrics

let proxy_backlogs t =
  Array.map
    (fun p -> Receiver.delivered_bytes p.rx - Sender.snd_una p.tx)
    t.proxies

let complete t = !(t.completed)

let debug_proxy_tx t =
  Array.map
    (fun p ->
      ( Sender.snd_una p.tx,
        Sender.inflight p.tx,
        Sender.cwnd p.tx,
        Sender.finished p.tx ))
    t.proxies

let debug_proxy_str t = Array.map (fun p -> Sender.debug_state p.tx) t.proxies
