(** PCC Vivace (Dong et al., NSDI'18), simplified online-learning model:
    per-monitor-interval utility U = thr^0.9 - b*thr*max(0, dRTT/dt) -
    c*thr*loss, with paired probe MIs deciding gradient-style rate
    steps. *)

val utility : thr_bps:float -> rtt_grad:float -> loss_rate:float -> float
(** The Vivace utility of one monitor interval (throughput in bytes/s,
    RTT gradient in s/s, loss rate in [0,1]); exposed for the
    conformance tests. *)

val create : mss:int -> now:float -> Cc_intf.t
