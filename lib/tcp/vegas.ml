(** TCP Vegas (Brakmo & Peterson 1995): RTT-based congestion avoidance.
    Keeps between [alpha] and [beta] segments queued in the network,
    estimated as (expected - actual) * baseRTT. *)

open Cc_intf

let alpha = 2.0
let beta = 4.0
let gamma = 1.0

type state = {
  mss : float;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable base_rtt : float;
  mutable srtt : float;
  mutable next_update : float;  (** adjust once per RTT *)
  mutable in_slow_start : bool;
}

let create ~mss ~now =
  let s =
    {
      mss = fmss mss;
      cwnd = initial_window mss;
      ssthresh = Float.infinity;
      base_rtt = Float.infinity;
      srtt = Float.nan;
      next_update = now;
      in_slow_start = true;
    }
  in
  let diff_segments () =
    (* (expected - actual) * baseRTT, in segments. *)
    if Float.is_nan s.srtt || not (Float.is_finite s.base_rtt) then 0.0
    else begin
      let expected = s.cwnd /. s.base_rtt in
      let actual = s.cwnd /. s.srtt in
      (expected -. actual) *. s.base_rtt /. s.mss
    end
  in
  {
    name = "vegas";
    on_ack =
      (fun info ->
        (match info.rtt_sample with
        | Some r ->
          s.base_rtt <- Float.min s.base_rtt r;
          s.srtt <-
            (if Float.is_nan s.srtt then r else (0.875 *. s.srtt) +. (0.125 *. r))
        | None -> ());
        if info.now >= s.next_update then begin
          s.next_update <-
            info.now +. (if Float.is_nan s.srtt then 0.1 else s.srtt);
          let diff = diff_segments () in
          if s.in_slow_start then begin
            if diff > gamma || s.cwnd >= s.ssthresh then s.in_slow_start <- false
            else s.cwnd <- s.cwnd *. 2.0
          end
          else if diff < alpha then s.cwnd <- s.cwnd +. s.mss
          else if diff > beta then
            s.cwnd <- Float.max (s.cwnd -. s.mss) (min_window (int_of_float s.mss))
        end);
    on_loss =
      (fun ~now:_ ~inflight:_ ->
        s.in_slow_start <- false;
        s.cwnd <- Float.max (s.cwnd *. 0.75) (min_window (int_of_float s.mss));
        s.ssthresh <- s.cwnd);
    on_rto =
      (fun ~now:_ ->
        s.in_slow_start <- false;
        s.ssthresh <- Float.max (s.cwnd /. 2.0) (2.0 *. s.mss);
        s.cwnd <- s.mss);
    cwnd = (fun () -> s.cwnd);
    pacing_rate = (fun () -> None);
    phase = (fun () -> if s.in_slow_start then "ss" else "ca");
  }
