(** TCP Vegas (Brakmo & Peterson 1995): RTT-based congestion avoidance
    keeping between alpha and beta segments queued in the network,
    adjusted once per RTT. *)

val create : mss:int -> now:float -> Cc_intf.t
