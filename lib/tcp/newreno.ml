(** TCP NewReno: slow start + AIMD congestion avoidance with fast-recovery
    halving.  The reference loss-based baseline. *)

open Cc_intf

type state = { mss : float; mutable cwnd : float; mutable ssthresh : float }

let create ~mss ~now:_ =
  let s =
    { mss = fmss mss; cwnd = initial_window mss; ssthresh = Float.infinity }
  in
  let hystart = Hystart.create () in
  {
    name = "newreno";
    on_ack =
      (fun info ->
        if s.cwnd < s.ssthresh && Hystart.should_exit hystart ~rtt_sample:info.rtt_sample
        then s.ssthresh <- s.cwnd;
        let acked = float_of_int info.acked_bytes in
        if s.cwnd < s.ssthresh then s.cwnd <- s.cwnd +. acked
        else s.cwnd <- s.cwnd +. (s.mss *. acked /. s.cwnd));
    on_loss =
      (fun ~now:_ ~inflight:_ ->
        s.ssthresh <- Float.max (s.cwnd /. 2.0) (2.0 *. s.mss);
        s.cwnd <- s.ssthresh);
    on_rto =
      (fun ~now:_ ->
        s.ssthresh <- Float.max (s.cwnd /. 2.0) (2.0 *. s.mss);
        s.cwnd <- s.mss);
    cwnd = (fun () -> s.cwnd);
    pacing_rate = (fun () -> None);
    phase = (fun () -> if s.cwnd < s.ssthresh then "ss" else "ca");
  }
