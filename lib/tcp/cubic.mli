(** CUBIC (RFC 8312): cubic window growth in congestion avoidance with a
    TCP-friendly (Reno-tracking) floor, beta = 0.7, C = 0.4, plus
    HyStart slow-start exit. *)

val create : mss:int -> now:float -> Cc_intf.t
