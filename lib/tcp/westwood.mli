(** TCP Westwood+ (Mascolo et al. 2001): Reno-style growth, but on loss
    the window is set from a bandwidth estimate times the minimum RTT
    instead of blind halving. *)

val create : mss:int -> now:float -> Cc_intf.t
