(** Shared controller record (see {!Cc} for the public face).  Kept in its
    own module so each algorithm implementation can depend on it without a
    cycle through [Cc]. *)

type ack_info = {
  now : float;
  acked_bytes : int;
  rtt_sample : float option;
  bw_sample : float option;
  inflight : int;
}

type t = {
  name : string;
  on_ack : ack_info -> unit;
  on_loss : now:float -> inflight:int -> unit;
  on_rto : now:float -> unit;
  cwnd : unit -> float;
  pacing_rate : unit -> float option;
  phase : unit -> string;
}

let fmss mss = float_of_int mss

(** Initial window: 10 segments (RFC 6928). *)
let initial_window mss = 10.0 *. fmss mss

let min_window mss = 2.0 *. fmss mss
