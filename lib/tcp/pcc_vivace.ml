(** PCC Vivace (Dong et al., NSDI'18), simplified online-learning model.

    The sender partitions time into monitor intervals (MIs) of about one
    RTT, computes the Vivace utility of each MI
      U = thr^0.9 - b * thr * max(0, dRTT/dt) - c * thr * loss_rate
    (throughput in Mbps), and performs gradient-style rate steps: paired
    probe MIs at rate*(1±eps) decide the direction, and a confidence
    amplifier grows the step while the direction is consistent.  Loss
    enters only through the utility, so PCC is largely loss-insensitive,
    but the c coefficient makes utility collapse under heavy loss — the
    behaviour Fig 2 reports at 5% end-to-end PLR. *)

open Cc_intf

let eps = 0.05
let base_step = 0.05
let max_step = 0.3
let utility_b = 900.0
let utility_c = 11.35

type phase =
  | Starting
  | Probe_up  (** running the rate*(1+eps) MI *)
  | Probe_down  (** running the rate*(1-eps) MI *)

type state = {
  mss : float;
  mutable rate : float;  (** base rate decision, bytes/s *)
  mutable phase : phase;
  mutable srtt : float;
  mutable mi_end : float;
  mutable mi_acked : int;
  mutable mi_lost : int;
  mutable mi_rtt_first : float option;
  mutable mi_rtt_last : float option;
  mutable mi_start : float;
  mutable prev_utility : float;
  mutable up_utility : float;
  mutable direction : float;  (** +1 / -1 of last move *)
  mutable step : float;
}

let utility ~thr_bps ~rtt_grad ~loss_rate =
  let thr = Leotp_util.Units.bytes_per_sec_to_mbps thr_bps in
  if thr <= 0.0 then 0.0
  else
    (thr ** 0.9)
    -. (utility_b *. thr *. Float.max 0.0 rtt_grad)
    -. (utility_c *. thr *. loss_rate)

let create ~mss ~now =
  let s =
    {
      mss = fmss mss;
      rate = 20.0 *. fmss mss /. 0.1;  (* ~2.2 Mbps starting guess *)
      phase = Starting;
      srtt = 0.1;
      mi_end = now +. 0.1;
      mi_acked = 0;
      mi_lost = 0;
      mi_rtt_first = None;
      mi_rtt_last = None;
      mi_start = now;
      prev_utility = Float.neg_infinity;
      up_utility = 0.0;
      direction = 1.0;
      step = base_step;
    }
  in
  let mi_utility () =
    let dur = Float.max (s.mi_end -. s.mi_start) 1e-6 in
    let thr_bps = float_of_int s.mi_acked /. dur in
    let rtt_grad =
      match (s.mi_rtt_first, s.mi_rtt_last) with
      | Some a, Some b -> (b -. a) /. dur
      | _ -> 0.0
    in
    let pkts_acked = s.mi_acked / int_of_float s.mss in
    let loss_rate =
      let total = pkts_acked + s.mi_lost in
      if total = 0 then 0.0 else float_of_int s.mi_lost /. float_of_int total
    in
    utility ~thr_bps ~rtt_grad ~loss_rate
  in
  let start_mi now =
    s.mi_start <- now;
    s.mi_end <- now +. Float.max s.srtt 0.01;
    s.mi_acked <- 0;
    s.mi_lost <- 0;
    s.mi_rtt_first <- None;
    s.mi_rtt_last <- None
  in
  let finish_mi now =
    let u = mi_utility () in
    (match s.phase with
    | Starting ->
      if u >= s.prev_utility then begin
        s.prev_utility <- u;
        s.rate <- s.rate *. 2.0
      end
      else begin
        (* Overshot: back off and switch to gradient probing. *)
        s.rate <- s.rate /. 2.0;
        s.phase <- Probe_up;
        s.prev_utility <- u
      end
    | Probe_up ->
      s.up_utility <- u;
      s.phase <- Probe_down
    | Probe_down ->
      let dir = if s.up_utility >= u then 1.0 else -1.0 in
      if dir = s.direction then
        s.step <- Float.min max_step (s.step +. base_step)
      else s.step <- base_step;
      s.direction <- dir;
      s.rate <- s.rate *. (1.0 +. (dir *. s.step));
      s.phase <- Probe_up);
    s.rate <- Float.max s.rate (2.0 *. s.mss /. Float.max s.srtt 0.01);
    start_mi now
  in
  {
    name = "pcc";
    on_ack =
      (fun info ->
        (match info.rtt_sample with
        | Some r ->
          s.srtt <- (0.875 *. s.srtt) +. (0.125 *. r);
          if s.mi_rtt_first = None then s.mi_rtt_first <- Some r;
          s.mi_rtt_last <- Some r
        | None -> ());
        s.mi_acked <- s.mi_acked + info.acked_bytes;
        if info.now >= s.mi_end then finish_mi info.now);
    on_loss = (fun ~now:_ ~inflight:_ -> s.mi_lost <- s.mi_lost + 1);
    on_rto = (fun ~now:_ -> s.mi_lost <- s.mi_lost + 10);
    cwnd = (fun () -> Float.max (2.0 *. s.rate *. s.srtt) (4.0 *. s.mss));
    pacing_rate =
      (fun () ->
        let gain =
          match s.phase with
          | Starting -> 1.0
          | Probe_up -> 1.0 +. eps
          | Probe_down -> 1.0 -. eps
        in
        Some (gain *. s.rate));
    phase =
      (fun () ->
        match s.phase with
        | Starting -> "starting"
        | Probe_up -> "probe_up"
        | Probe_down -> "probe_down");
  }
