(** Shared congestion-controller record and window constants.

    Each algorithm module ({!Bbr}, {!Cubic}, ...) builds one of these
    records; {!Cc} re-exports the types and dispatches [create].  Kept
    separate so implementations can depend on it without a cycle. *)

type ack_info = {
  now : float;
  acked_bytes : int;  (** bytes newly acknowledged *)
  rtt_sample : float option;  (** seconds, from the timestamp echo *)
  bw_sample : float option;  (** delivery-rate sample, bytes/second *)
  inflight : int;  (** bytes in flight after processing this ack *)
}

type t = {
  name : string;
  on_ack : ack_info -> unit;
  on_loss : now:float -> inflight:int -> unit;
      (** One call per loss episode (at most once per RTT). *)
  on_rto : now:float -> unit;
  cwnd : unit -> float;  (** bytes *)
  pacing_rate : unit -> float option;  (** bytes/second *)
  phase : unit -> string;
      (** Current controller phase, for the semantic trace oracle
          (Leotp_check): loss-based algorithms report ["ss"]/["ca"], BBR
          its gain-cycle state (["startup"], ["drain"], ["probe_bw:<i>"],
          ["probe_rtt"]), PCC its probe direction. *)
}

val fmss : int -> float

val initial_window : int -> float
(** 10 segments, in bytes (RFC 6928). *)

val min_window : int -> float
(** 2 segments, in bytes. *)
