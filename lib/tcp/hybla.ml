(** TCP Hybla (Caini & Firrincieli 2004): window growth scaled by
    rho = RTT/RTT0 so long-RTT (satellite) flows grow as fast as a
    reference terrestrial flow with RTT0 = 25 ms. *)

open Cc_intf

let rtt0 = 0.025

type state = {
  mss : float;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable srtt : float;
}

let create ~mss ~now:_ =
  let s =
    {
      mss = fmss mss;
      cwnd = initial_window mss;
      ssthresh = Float.infinity;
      srtt = rtt0;
    }
  in
  let rho () = Float.max 1.0 (s.srtt /. rtt0) in
  let hystart = Hystart.create () in
  {
    name = "hybla";
    on_ack =
      (fun info ->
        (match info.rtt_sample with
        | Some r -> s.srtt <- (0.875 *. s.srtt) +. (0.125 *. r)
        | None -> ());
        if s.cwnd < s.ssthresh && Hystart.should_exit hystart ~rtt_sample:info.rtt_sample
        then s.ssthresh <- s.cwnd;
        let acked = float_of_int info.acked_bytes in
        let rho = rho () in
        if s.cwnd < s.ssthresh then
          (* SS: cwnd += (2^rho - 1) per acked segment. *)
          s.cwnd <- s.cwnd +. (((2.0 ** rho) -. 1.0) *. acked)
        else
          (* CA: cwnd += rho^2 * MSS^2 / cwnd per acked segment. *)
          s.cwnd <- s.cwnd +. (rho *. rho *. s.mss *. acked /. s.cwnd));
    on_loss =
      (fun ~now:_ ~inflight:_ ->
        s.ssthresh <- Float.max (s.cwnd /. 2.0) (2.0 *. s.mss);
        s.cwnd <- s.ssthresh);
    on_rto =
      (fun ~now:_ ->
        s.ssthresh <- Float.max (s.cwnd /. 2.0) (2.0 *. s.mss);
        s.cwnd <- s.mss);
    cwnd = (fun () -> s.cwnd);
    pacing_rate = (fun () -> None);
    phase = (fun () -> if s.cwnd < s.ssthresh then "ss" else "ca");
  }
