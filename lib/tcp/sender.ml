module Engine = Leotp_sim.Engine
module Packet = Leotp_net.Packet
module Node = Leotp_net.Node
module Flow_metrics = Leotp_net.Flow_metrics

type source = Fixed of int | Unlimited | Dynamic of (unit -> int)

type segment = Seg_store.seg = {
  mutable seq : int;
  mutable len : int;
  mutable first_sent : float;
  mutable last_sent : float;
  mutable retx_count : int;
  mutable sacked : bool;
  mutable lost : bool;  (** declared lost, waiting for retransmission *)
}

type t = {
  engine : Engine.t;
  node : Node.t;
  dst : int;
  flow : int;
  mss : int;
  cc : Cc.t;
  rto : Leotp_util.Rto.t;
  source : source;
  metrics : Flow_metrics.t;
  on_complete : unit -> unit;
  mutable first_sent_of : pos:int -> len:int -> float * bool;
  segments : Seg_store.t;  (** ordered by seq; unacked only *)
  mutable snd_nxt : int;
  mutable snd_una : int;
  mutable inflight : int;
  mutable lost_pending : int;  (** segments marked lost, not yet resent *)
  mutable high_sacked : int;
  mutable recovery_point : int;
  mutable delivered : int;
  mutable bw_clock : float;
  mutable bw_delivered : int;
  mutable rto_timer : Engine.timer option;
  mutable rto_armed_at : float;
  mutable rto_floor : float;
      (** min (SRTT + 4*RTTVAR, armed timeout) at arm time, for the trace
          invariant that the RTO never fires early *)
  mutable pump_timer : Engine.timer option;
  mutable next_send_time : float;
  mutable finished : bool;
  mutable started : bool;
}

let dupthresh_bytes t = 3 * t.mss

let create engine ~node ~dst ~flow ~cc ?(mss = Wire.default_mss)
    ?(source = Unlimited) ?metrics ?(on_complete = fun () -> ())
    ?first_sent_of () =
  let metrics =
    match metrics with Some m -> m | None -> Flow_metrics.create ~flow
  in
  let now = Engine.now engine in
  let t =
    {
      engine;
      node;
      dst;
      flow;
      mss;
      cc = Cc.create cc ~mss ~now;
      rto = Leotp_util.Rto.create ~min_rto:0.2 ();
      source;
      metrics;
      on_complete;
      first_sent_of = (fun ~pos:_ ~len:_ -> (now, false));
      segments = Seg_store.create ();
      snd_nxt = 0;
      snd_una = 0;
      inflight = 0;
      lost_pending = 0;
      high_sacked = 0;
      recovery_point = 0;
      delivered = 0;
      bw_clock = now;
      bw_delivered = 0;
      rto_timer = None;
      rto_armed_at = now;
      rto_floor = 0.0;
      pump_timer = None;
      next_send_time = now;
      finished = false;
      started = false;
    }
  in
  (match first_sent_of with
  | Some f -> t.first_sent_of <- f
  | None ->
    t.first_sent_of <-
      (fun ~pos ~len ->
        match Seg_store.find t.segments pos with
        | Some seg when seg.len = len -> (seg.first_sent, seg.retx_count > 0)
        | _ -> (Engine.now engine, false)));
  t

let available_bytes t =
  match t.source with
  | Fixed n -> n
  | Unlimited -> max_int
  | Dynamic f -> f ()

let total_bytes t = match t.source with Fixed n -> Some n | _ -> None

let trace_who t = "tcp:" ^ Node.name t.node

let trace_seg t seg state =
  if Leotp_net.Trace.on () then
    Leotp_net.Trace.emit
      (Leotp_net.Trace.Seg_state
         { who = trace_who t; flow = t.flow; seq = seg.seq; len = seg.len; state })

let mark_lost t seg =
  if (not seg.lost) && not seg.sacked then begin
    seg.lost <- true;
    t.lost_pending <- t.lost_pending + 1;
    t.inflight <- max 0 (t.inflight - seg.len);
    trace_seg t seg Leotp_net.Trace.Seg_lost
  end

(* Ordered scan with early exit; allocation-free (the SACK and FACK
   scans below run on every ack over O(window) segments). *)
let seq_iter_while m ~from f = Seg_store.iter_from_while m ~from f

let cancel_rto t =
  match t.rto_timer with
  | Some timer ->
    Engine.cancel timer;
    t.rto_timer <- None
  | None -> ()

let rec arm_rto t =
  cancel_rto t;
  if not t.finished then begin
    let timeout = Leotp_util.Rto.rto t.rto in
    t.rto_armed_at <- Engine.now t.engine;
    (* nested matches, not a tuple pattern: [arm_rto] runs per ack and a
       2-tuple scrutinee is a minor-heap allocation *)
    t.rto_floor <-
      (match Leotp_util.Rto.srtt t.rto with
      | None -> 0.0
      | Some s -> (
        match Leotp_util.Rto.rttvar t.rto with
        | Some v -> Float.min (s +. (4.0 *. v)) timeout
        | None -> 0.0));
    t.rto_timer <-
      (* arming a timer allocates its action closure: one per re-arm,
         bounded by acks, inherent to the [Engine.schedule] API *)
      Some
        (Engine.schedule t.engine ~after:timeout
           ((fun () -> on_rto_fire t) [@leotp.allow "hot-path-may-alloc"]))
  end

(* Loss recovery after a retransmission timeout: fires once per RTO, not
   per packet, so its scan closures are off the steady-state budget. *)
and on_rto_fire t =
  t.rto_timer <- None;
  if (not t.finished) && not (Seg_store.is_empty t.segments) then begin
    if Leotp_net.Trace.on () then
      Leotp_net.Trace.emit
        (Leotp_net.Trace.Rto_fire
           {
             who = "tcp:" ^ Node.name t.node;
             elapsed = Engine.now t.engine -. t.rto_armed_at;
             floor = t.rto_floor;
           });
    Leotp_util.Rto.backoff t.rto;
    t.cc.Cc.on_rto ~now:(Engine.now t.engine);
    (* Everything outstanding and un-SACKed is presumed lost (Linux
       behaviour); retransmissions then proceed window-limited from the
       collapsed cwnd.  Without this, tail losses leave segments counted
       as in-flight forever and the connection stalls. *)
    Seg_store.iter t.segments (fun seg -> if not seg.sacked then mark_lost t seg);
    (* Retransmit the first unacknowledged segment immediately. *)
    (match Seg_store.first t.segments with
    | Some seg when not seg.sacked -> send_segment t seg ~retx:true
    | Some _ | None -> ());
    arm_rto t;
    pump t
  end
[@@leotp.allow "hot-path-may-alloc"]

and send_segment t seg ~retx =
  let now = Engine.now t.engine in
  if retx then begin
    seg.retx_count <- seg.retx_count + 1;
    if seg.lost then begin
      seg.lost <- false;
      t.lost_pending <- max 0 (t.lost_pending - 1)
    end;
    Flow_metrics.on_retransmit t.metrics
  end
  else seg.first_sent <- now;
  seg.last_sent <- now;
  t.inflight <- t.inflight + seg.len;
  trace_seg t seg
    (if retx then Leotp_net.Trace.Seg_retx else Leotp_net.Trace.Seg_sent);
  let first_sent, upstream_retx = t.first_sent_of ~pos:seg.seq ~len:seg.len in
  let fin =
    match total_bytes t with Some n -> seg.seq + seg.len >= n | None -> false
  in
  let pkt =
    Wire.data_packet ~src:(Node.id t.node) ~dst:t.dst ~flow:t.flow ~seq:seg.seq
      ~len:seg.len ~sent_at:now ~first_sent
      ~retx:(retx || seg.retx_count > 0 || upstream_retx)
      ~fin
  in
  Flow_metrics.on_send t.metrics ~bytes:pkt.Packet.size;
  Node.send t.node pkt;
  if t.rto_timer = None then arm_rto t

(* One segment the window currently allows, if any: lost segments first,
   then new data.  The option/pair result is the send decision — one
   2-word pair per segment dispatched, dwarfed by the packet it sends. *)
and next_sendable t =
  let retx =
    if t.lost_pending > 0 then Seg_store.first_lost t.segments ~from:t.snd_una
    else None
  in
  match retx with
  | Some seg -> Some (seg, true)
  | None ->
    let avail = available_bytes t in
    if t.snd_nxt >= avail then None
    else begin
      let len = min t.mss (avail - t.snd_nxt) in
      let seg =
        (* one metadata record per new segment entering the window — the
           segment's identity for its whole retransmission lifetime *)
        ({
          seq = t.snd_nxt;
          len;
          first_sent = 0.0;
          last_sent = 0.0;
          retx_count = 0;
          sacked = false;
          lost = false;
        } [@leotp.allow "hot-path-may-alloc"])
      in
      Some (seg, false)
    end
[@@leotp.allow "hot-path-may-alloc"]

and pump t = if not t.finished then pump_loop t (Engine.now t.engine)

(* Recursive send loop (no while+ref: [pump] runs per ack and per pacing
   timer, and a local [ref] is a minor-heap cell).  Stops when the window
   or pacing gate closes or nothing is sendable. *)
and pump_loop t now =
  let cwnd = t.cc.Cc.cwnd () in
  match next_sendable t with
  | None -> ()
  | Some (seg, is_retx) ->
    if float_of_int (t.inflight + seg.len) > cwnd then ()
    else begin
      match t.cc.Cc.pacing_rate () with
      | Some rate when rate > 0.0 ->
        if now < t.next_send_time then schedule_pump t ~at:t.next_send_time
        else begin
          t.next_send_time <-
            Float.max now t.next_send_time
            +. (float_of_int (seg.len + Wire.header_bytes) /. rate);
          dispatch t seg is_retx;
          pump_loop t now
        end
      | Some _ | None ->
        dispatch t seg is_retx;
        pump_loop t now
    end

and dispatch t seg is_retx =
  if not is_retx then begin
    Seg_store.push_back t.segments seg;
    t.snd_nxt <- max t.snd_nxt (seg.seq + seg.len)
  end;
  send_segment t seg ~retx:is_retx

and schedule_pump t ~at =
  match t.pump_timer with
  | Some timer when Engine.is_pending timer -> ()
  | _ ->
    t.pump_timer <-
      (* arming the pacing timer allocates its action closure: one per
         pacing gap, inherent to the [Engine.schedule_at] API *)
      Some
        (Engine.schedule_at t.engine ~time:at
           ((fun () ->
              t.pump_timer <- None;
              pump t) [@leotp.allow "hot-path-may-alloc"]))

let cancel_pump t =
  (* Clear the field as well as cancelling: a cancelled-but-present timer
     would still be reported armed by [debug_state] and would make
     [schedule_pump] skip [Engine.is_pending] bookkeeping. *)
  match t.pump_timer with
  | Some timer ->
    Engine.cancel timer;
    t.pump_timer <- None
  | None -> ()

let finish t =
  if not t.finished then begin
    t.finished <- true;
    Flow_metrics.set_finished t.metrics (Engine.now t.engine);
    cancel_rto t;
    cancel_pump t;
    t.on_complete ()
  end

(* Per-ack bookkeeping allocates a handful of short-lived closures and
   accumulator cells for the [Seg_store] callback scans; the per-packet
   forwarding path stays allocation-free, and un-generalizing the store's
   callbacks would duplicate its scan logic here. *)
let handle_ack t pkt =
  if (not (Wire.is_ack_seg pkt)) || t.finished then
    Leotp_net.Packet_pool.release pkt
  else begin
    let cum_ack = Wire.cum_ack pkt in
    let now = Engine.now t.engine in
    (* [>=], not [>]: a segment echoed within the same simulated instant
       is a (zero) sample, and a [ts_echo] of exactly 0.0 is a valid
       echo of a packet sent at simulation start (the presence flag, not
       a sentinel, says whether the echo exists). *)
    let has_rtt = Wire.has_ts_echo pkt && now >= Wire.ts_echo pkt in
    let rtt = if has_rtt then now -. Wire.ts_echo pkt else 0.0 in
    if has_rtt then Leotp_util.Rto.observe t.rto rtt;
    let acked_bytes = ref 0 in
    (* Cumulative progress: drop every segment entirely below cum_ack. *)
    if cum_ack > t.snd_una then begin
      (* A segment straddling cum_ack (seq < cum_ack < seq + len) has only
         its head acknowledged: [drop_below] truncates it in place and the
         tail (with the segment's loss/sack state) stays outstanding.
         Dropping it whole would under-count inflight and silently un-send
         the tail. *)
      Seg_store.drop_below t.segments ~cum:cum_ack
        ~on_drop:(fun seg ->
          if not seg.sacked then acked_bytes := !acked_bytes + seg.len;
          if seg.lost then t.lost_pending <- max 0 (t.lost_pending - 1)
          else if not seg.sacked then
            t.inflight <- max 0 (t.inflight - seg.len))
        ~on_straddle:(fun seg head ->
          if not seg.sacked then begin
            acked_bytes := !acked_bytes + head;
            if not seg.lost then t.inflight <- max 0 (t.inflight - head)
          end);
      t.snd_una <- cum_ack;
      Leotp_util.Rto.reset_backoff t.rto;
      arm_rto t
    end;
    (* Selective acknowledgements: only scan the covered range.  Ranges
       live in the ack's fixed slots — no list to walk. *)
    for i = 0 to Wire.sack_count pkt - 1 do
      let lo = Wire.sack_lo pkt i and hi = Wire.sack_hi pkt i in
      seq_iter_while t.segments ~from:lo (fun seg ->
          if seg.seq + seg.len > hi then false
          else begin
            if not seg.sacked then begin
              seg.sacked <- true;
              acked_bytes := !acked_bytes + seg.len;
              if seg.lost then t.lost_pending <- max 0 (t.lost_pending - 1)
              else t.inflight <- max 0 (t.inflight - seg.len);
              seg.lost <- false
            end;
            true
          end);
      t.high_sacked <- max t.high_sacked hi
    done;
    t.high_sacked <- max t.high_sacked cum_ack;
    t.delivered <- t.delivered + !acked_bytes;
    (* FACK loss detection: everything sufficiently below the highest
       selective ack is lost.  The scan stops at the first segment that is
       too recent (sequence order = send order here). *)
    let newly_lost = ref false in
    let srtt =
      match Leotp_util.Rto.srtt t.rto with Some r -> r | None -> 0.1
    in
    seq_iter_while t.segments ~from:t.snd_una (fun seg ->
        if seg.seq + seg.len + dupthresh_bytes t <= t.high_sacked then begin
          (* A segment already retransmitted is only declared lost again
             once a full SRTT has passed since that retransmission —
             otherwise every ACK re-marks it and the sender spins on
             duplicate retransmissions. *)
          if
            (not seg.sacked)
            && (not seg.lost)
            && (seg.retx_count = 0 || now -. seg.last_sent > srtt)
          then begin
            mark_lost t seg;
            newly_lost := true
          end;
          true
        end
        else false);
    if !newly_lost && t.snd_una >= t.recovery_point then begin
      t.recovery_point <- t.snd_nxt;
      t.cc.Cc.on_loss ~now ~inflight:t.inflight
    end;
    (* Delivery-rate sample for model-based controllers.  Sampled over a
       minimum interval: ack compression can deliver a window's worth of
       acks microseconds apart, and a delta-based estimate over such a
       span poisons BBR's max-bandwidth filter with absurd rates. *)
    let bw_sample =
      let min_interval =
        match Leotp_util.Rto.srtt t.rto with
        | Some s -> Float.max 0.001 (s /. 8.0)
        | None -> 0.001
      in
      if now -. t.bw_clock >= min_interval && t.delivered > t.bw_delivered
      then begin
        let sample =
          float_of_int (t.delivered - t.bw_delivered) /. (now -. t.bw_clock)
        in
        t.bw_clock <- now;
        t.bw_delivered <- t.delivered;
        Some sample
      end
      else None
    in
    if !acked_bytes > 0 || has_rtt then
      t.cc.Cc.on_ack
        {
          Cc.now;
          acked_bytes = !acked_bytes;
          rtt_sample = (if has_rtt then Some rtt else None);
          bw_sample;
          inflight = t.inflight;
        };
    (* Emitted before [pump] so the oracle sees the post-ack claim ahead
       of any (re)transmissions the ack unlocks.  The list/option shapes
       exist only here, under the recorder gate — digest-identical to the
       old wire format, allocation-free when nobody is observing. *)
    if Leotp_net.Trace.on () then
      Leotp_net.Trace.emit
        (Leotp_net.Trace.Ack_processed
           {
             who = trace_who t;
             flow = t.flow;
             cc = t.cc.Cc.name;
             phase = t.cc.Cc.phase ();
             cum_ack;
             sacks = Wire.sack_list pkt;
             rtt = (if has_rtt then Some rtt else None);
             snd_una = t.snd_una;
             inflight = t.inflight;
             lost_pending = t.lost_pending;
             cwnd = t.cc.Cc.cwnd ();
             rto = Leotp_util.Rto.rto t.rto;
           });
    Leotp_net.Packet_pool.release pkt;
    (match total_bytes t with
    | Some n when t.snd_una >= n -> finish t
    | _ -> if Seg_store.is_empty t.segments then cancel_rto t);
    pump t
  end
[@@leotp.allow "hot-path-may-alloc"]

let start t =
  if not t.started then begin
    t.started <- true;
    Flow_metrics.set_started t.metrics (Engine.now t.engine);
    pump t
  end

let notify_data_available t = if t.started && not t.finished then pump t
let finished t = t.finished
let snd_una t = t.snd_una
let snd_nxt t = t.snd_nxt
let inflight t = t.inflight
let lost_pending t = t.lost_pending
let cwnd t = t.cc.Cc.cwnd ()
let srtt t = Leotp_util.Rto.srtt t.rto
let metrics t = t.metrics
let cc_name t = t.cc.Cc.name

let stop t =
  cancel_rto t;
  cancel_pump t

let timers_idle t = t.rto_timer = None && t.pump_timer = None

let timer_pending t =
  (match t.rto_timer with Some tm -> Engine.is_pending tm | None -> false)
  || match t.pump_timer with Some tm -> Engine.is_pending tm | None -> false

let debug_state t =
  Printf.sprintf
    "una=%d nxt=%d infl=%d lost_pend=%d segs=%d rto_armed=%b pump_armed=%b avail=%d fin=%b"
    t.snd_una t.snd_nxt t.inflight t.lost_pending (Seg_store.cardinal t.segments)
    (match t.rto_timer with
    | Some tm -> Engine.is_pending tm
    | None -> false)
    (match t.pump_timer with
    | Some tm -> Engine.is_pending tm
    | None -> false)
    (let a = available_bytes t in
     if a = max_int then -1 else a)
    t.finished
