(** BBR (Cardwell et al.), simplified v1 model: windowed-max bandwidth /
    windowed-min RTT estimation with Startup / Drain / ProbeBW / ProbeRTT
    pacing-gain phases.  Loss-insensitive by design. *)

val create : mss:int -> now:float -> Cc_intf.t
