(** Pluggable congestion control for the TCP engine.

    A controller is a record of callbacks driven by the sender's ACK
    processing.  Window-based algorithms expose [cwnd] (bytes) and return
    [None] from [pacing_rate]; rate-based algorithms (BBR, PCC) return
    [Some rate] and use [cwnd] only as an inflight cap. *)

type ack_info = {
  now : float;
  acked_bytes : int;  (** bytes newly acknowledged (cumulative or SACK) *)
  rtt_sample : float option;  (** seconds, from the timestamp echo *)
  bw_sample : float option;  (** delivery-rate sample, bytes/second *)
  inflight : int;  (** bytes in flight after processing this ack *)
}

type t = {
  name : string;
  on_ack : ack_info -> unit;
  on_loss : now:float -> inflight:int -> unit;
      (** One call per loss {i episode} (at most once per RTT). *)
  on_rto : now:float -> unit;
  cwnd : unit -> float;  (** bytes *)
  pacing_rate : unit -> float option;  (** bytes/second *)
  phase : unit -> string;
      (** Controller phase, for the semantic trace oracle (see
          {!Cc_intf.t}). *)
}

type algo =
  | Newreno
  | Cubic
  | Hybla
  | Westwood
  | Vegas
  | Bbr
  | Pcc

val all : algo list
val algo_name : algo -> string
val algo_of_name : string -> algo option

val create : algo -> mss:int -> now:float -> t
(** Fresh controller state; [now] is the flow start time. *)
