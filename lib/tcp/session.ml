module Node = Leotp_net.Node
module Packet = Leotp_net.Packet

type t = {
  sender : Sender.t;
  receiver : Receiver.t;
  metrics : Leotp_net.Flow_metrics.t;
}

let connect engine ~src_node ~dst_node ~flow ~cc ?mss ?source ?on_complete ()
    =
  let metrics = Leotp_net.Flow_metrics.create ~flow in
  let expected_bytes =
    match source with Some (Sender.Fixed n) -> Some n | _ -> None
  in
  let sender =
    Sender.create engine ~node:src_node ~dst:(Node.id dst_node) ~flow ~cc ?mss
      ?source ~metrics ?on_complete ()
  in
  let receiver =
    Receiver.create engine ~node:dst_node ~src:(Node.id src_node) ~flow
      ~metrics ?expected_bytes ()
  in
  Node.set_handler src_node (fun ~from:_ pkt ->
      if Wire.is_ack_seg pkt && pkt.Packet.flow = flow then
        Sender.handle_ack sender pkt
      else Node.forward src_node ~from:0 pkt);
  Node.set_handler dst_node (fun ~from:_ pkt ->
      if Wire.is_data_seg pkt && pkt.Packet.flow = flow then
        Receiver.handle_data receiver pkt
      else Node.forward dst_node ~from:0 pkt);
  { sender; receiver; metrics }

let start t = Sender.start t.sender
let stop t = Sender.stop t.sender
