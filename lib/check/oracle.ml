module Trace = Leotp_net.Trace

type divergence = { time : float; who : string; flow : int; what : string }

(* Replica of Leotp_util.Rto's RFC 6298 estimator: same constants, same
   float operations in the same order, so the floor we compute here is
   bit-identical to the base timeout the sender derives.  Backoff is not
   replicated — it only raises the timeout, and the oracle asserts a
   lower bound. *)
module Rto_replica = struct
  type t = { mutable srtt : float; mutable rttvar : float; mutable primed : bool }

  let min_rto = 0.2
  let max_rto = 60.0
  let initial_rto = 1.0

  let create () = { srtt = 0.0; rttvar = 0.0; primed = false }

  let observe t r =
    if t.primed then begin
      t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt -. r));
      t.srtt <- (0.875 *. t.srtt) +. (0.125 *. r)
    end
    else begin
      t.srtt <- r;
      t.rttvar <- r /. 2.0;
      t.primed <- true
    end

  let floor t =
    if t.primed then
      Float.min max_rto
        (Float.max min_rto (t.srtt +. Float.max 0.000_1 (4.0 *. t.rttvar)))
    else initial_rto
end

(* Per-(sender, flow) connection state: reference model + estimator
   replica + the previous congestion-controller observation. *)
type conn = {
  model : Model.t;
  rto : Rto_replica.t;
  mutable prev_cwnd : float option;
  mutable prev_phase : string option;
  (* Vegas once-per-RTT bookkeeping. *)
  mutable vegas_srtt : float;  (** NaN until the first sample *)
  mutable vegas_next_growth : float;
}

type t = {
  mss : int;
  eps : float;
  conns : (string * int, conn) Hashtbl.t;
  mutable divergences : divergence list;  (** newest first *)
  mutable acks : int;
  mutable seg_events : int;
}

let create ?(eps = 1e-6) ~mss () =
  { mss; eps; conns = Hashtbl.create 8; divergences = []; acks = 0; seg_events = 0 }

let conn t key =
  match Hashtbl.find_opt t.conns key with
  | Some c -> c
  | None ->
    let c =
      {
        model = Model.create ();
        rto = Rto_replica.create ();
        prev_cwnd = None;
        prev_phase = None;
        vegas_srtt = Float.nan;
        vegas_next_growth = Float.neg_infinity;
      }
    in
    Hashtbl.replace t.conns key c;
    c

let diverge t ~time ~who ~flow what =
  t.divergences <- { time; who; flow; what } :: t.divergences

(* --- per-CC semantic checks ------------------------------------------- *)

(* BBR gain-cycle legality: which phases may follow [prev] by the next
   ACK.  Within one on_ack the mode machine takes at most one step into
   probe_rtt on top of at most one regular step, and regular steps
   serialize, so consecutive observations differ by at most one edge. *)
let bbr_step_ok ~prev ~next =
  let probe_bw_index p =
    if String.length p > 9 && String.sub p 0 9 = "probe_bw:" then
      int_of_string_opt (String.sub p 9 (String.length p - 9))
    else None
  in
  if prev = next then true
  else if next = "probe_rtt" then
    (* A stale min-RTT estimate forces ProbeRTT from any mode. *)
    true
  else
    match (probe_bw_index prev, probe_bw_index next) with
    | Some i, Some j -> j = (i + 1) mod 8
    | None, Some _ -> prev = "drain" || prev = "probe_rtt"
    | Some _, None -> false (* ProbeBW only exits into ProbeRTT *)
    | None, None ->
      (prev = "startup" && next = "drain")
      || (prev = "probe_rtt" && next = "startup")

let pcc_step_ok ~prev ~next =
  prev = next
  ||
  match (prev, next) with
  | "starting", "probe_up" -> true
  | "probe_up", "probe_down" -> true
  | "probe_down", "probe_up" -> true
  | _ -> false

let check_cc t (c : conn) ~time ~who ~flow ~cc ~phase ~cwnd ~acked =
  let fail what = diverge t ~time ~who ~flow what in
  let fmss = float_of_int t.mss in
  if not (Float.is_finite cwnd && cwnd > 0.0) then
    fail (Printf.sprintf "cc %s: cwnd %g not a positive finite window" cc cwnd);
  (match cc with
  | "newreno" | "westwood" -> (
    (* Loss-based AIMD: acks grow the window by at most the bytes they
       acknowledge; every other transition (loss, RTO) shrinks it. *)
    match c.prev_cwnd with
    | Some prev when cwnd > prev +. float_of_int acked +. t.eps ->
      fail
        (Printf.sprintf
           "cc %s: cwnd grew %g -> %g on %d acked bytes (AIMD bound %g)" cc
           prev cwnd acked
           (prev +. float_of_int acked))
    | _ -> ())
  | "vegas" ->
    (match c.prev_cwnd with
    | Some prev when cwnd > prev +. t.eps ->
      (* Window growth is gated to once per RTT and bounded by one MSS
         (congestion avoidance) or a doubling (slow start). *)
      if time +. t.eps < c.vegas_next_growth then
        fail
          (Printf.sprintf
             "cc vegas: window grew at %.6f, earliest legal growth %.6f (once per RTT)"
             time c.vegas_next_growth);
      if cwnd -. prev > Float.max prev fmss +. t.eps then
        fail
          (Printf.sprintf
             "cc vegas: growth %g exceeds max(cwnd, mss) = %g" (cwnd -. prev)
             (Float.max prev fmss));
      c.vegas_next_growth <-
        time +. (if Float.is_nan c.vegas_srtt then 0.1 else c.vegas_srtt)
    | _ -> ())
  | "bbr" ->
    (match c.prev_phase with
    | Some prev when not (bbr_step_ok ~prev ~next:phase) ->
      fail (Printf.sprintf "cc bbr: illegal gain-cycle step %s -> %s" prev phase)
    | _ -> ());
    if phase = "probe_rtt" && Float.abs (cwnd -. (4.0 *. fmss)) > t.eps then
      fail
        (Printf.sprintf "cc bbr: probe_rtt window %g, expected 4*MSS = %g" cwnd
           (4.0 *. fmss))
  | "pcc" -> (
    match c.prev_phase with
    | Some prev when not (pcc_step_ok ~prev ~next:phase) ->
      fail (Printf.sprintf "cc pcc: illegal monitor-interval step %s -> %s" prev phase)
    | _ -> ())
  | _ -> ());
  c.prev_cwnd <- Some cwnd;
  c.prev_phase <- Some phase

(* --- trace sink -------------------------------------------------------- *)

let sink t (r : Trace.record) =
  match r.Trace.event with
  | Trace.Seg_state { who; flow; seq; len; state } ->
    t.seg_events <- t.seg_events + 1;
    let c = conn t (who, flow) in
    let errs =
      match state with
      | Trace.Seg_sent -> Model.on_sent c.model ~seq ~len
      | Trace.Seg_retx -> Model.on_retx c.model ~seq ~len
      | Trace.Seg_lost -> Model.on_lost c.model ~seq ~len
    in
    List.iter (diverge t ~time:r.Trace.time ~who ~flow) errs
  | Trace.Ack_processed
      { who; flow; cc; phase; cum_ack; sacks; rtt; snd_una; inflight;
        lost_pending; cwnd; rto } ->
    t.acks <- t.acks + 1;
    let c = conn t (who, flow) in
    let acked = Model.on_ack c.model ~cum_ack ~sacks in
    List.iter
      (diverge t ~time:r.Trace.time ~who ~flow)
      (Model.check c.model { Model.snd_una; inflight; lost_pending });
    (* RFC 6298 lower bound, replayed on the same samples the sender saw.
       Update order matches Sender.handle_ack: sample first, then arm. *)
    (match rtt with
    | Some sample ->
      Rto_replica.observe c.rto sample;
      c.vegas_srtt <-
        (if Float.is_nan c.vegas_srtt then sample
         else (0.875 *. c.vegas_srtt) +. (0.125 *. sample))
    | None -> ());
    let floor = Rto_replica.floor c.rto in
    if rto +. t.eps < floor then
      diverge t ~time:r.Trace.time ~who ~flow
        (Printf.sprintf "rto %.9f below RFC 6298 floor %.9f (SRTT+4*RTTVAR)"
           rto floor);
    check_cc t c ~time:r.Trace.time ~who ~flow ~cc ~phase ~cwnd ~acked
  | _ -> ()

let attach t trace = Trace.add_sink trace (sink t)

let divergences t = List.rev t.divergences
let acks t = t.acks
let seg_events t = t.seg_events
let connections t = Hashtbl.length t.conns

let divergence_to_string d =
  Printf.sprintf "[%.6f] %s flow %d: %s" d.time d.who d.flow d.what

(* Engine-level quiescence: a finished or stopped sender must have
   released both timer slots and left nothing armed in the engine. *)
let sender_quiescent s =
  if Leotp_tcp.Sender.timer_pending s then
    Some "a sender timer is still armed in the engine after finish/stop"
  else if not (Leotp_tcp.Sender.timers_idle s) then
    Some "a cancelled sender timer handle was not cleared"
  else None
