(* Executable reference model of a reliable byte-stream sender.

   Deliberately naive: a go-back-N scoreboard kept as a sorted list of
   outstanding segments with explicit per-segment SACK/loss flags, every
   operation an O(n) scan.  No pacing, no FACK heuristics, no windowing
   — the model does not decide *when* to send or mark segments lost; it
   replays the real sender's own transitions (from Seg_state trace
   events) and independently applies ACK semantics, so any bookkeeping
   shortcut in the optimized sender shows up as a divergence at the next
   Ack_processed event. *)

type seg = { seq : int; len : int; mutable sacked : bool; mutable lost : bool }

type t = {
  mutable segs : seg list;  (** outstanding, sorted by [seq], disjoint *)
  mutable snd_una : int;
  mutable inflight : int;
  mutable lost_pending : int;
}

type claim = { snd_una : int; inflight : int; lost_pending : int }

let create () = { segs = []; snd_una = 0; inflight = 0; lost_pending = 0 }

let rec insert seg = function
  | [] -> [ seg ]
  | s :: rest when seg.seq < s.seq -> seg :: s :: rest
  | s :: rest -> s :: insert seg rest

let overlaps a b = a.seq < b.seq + b.len && b.seq < a.seq + a.len

(* Transition replay: the sender claims it (re)transmitted or lost-marked
   a segment; mirror the bookkeeping, reporting impossible transitions. *)

let on_sent (t : t) ~seq ~len =
  if List.exists (fun s -> overlaps s { seq; len; sacked = false; lost = false })
       t.segs
  then [ Printf.sprintf "sent seq=%d len=%d overlaps an outstanding segment" seq len ]
  else begin
    t.segs <- insert { seq; len; sacked = false; lost = false } t.segs;
    t.inflight <- t.inflight + len;
    []
  end

let on_retx (t : t) ~seq ~len =
  match List.find_opt (fun s -> s.seq = seq && s.len = len) t.segs with
  | None ->
    [ Printf.sprintf "retransmit of unknown segment seq=%d len=%d" seq len ]
  | Some s ->
    if s.lost then begin
      s.lost <- false;
      t.lost_pending <- t.lost_pending - 1
    end;
    t.inflight <- t.inflight + len;
    []

let on_lost (t : t) ~seq ~len =
  (* A loss mark for a proper suffix of a known segment is legal: a
     partial cumulative ack splits a straddled segment inside the
     sender's handle_ack, and the tail may be loss-marked before the
     Ack_processed event (which carries the split to this model) is
     emitted.  Mirror the split here, exactly as the ack will. *)
  let target =
    match List.find_opt (fun s -> s.seq = seq && s.len = len) t.segs with
    | Some s -> Some s
    | None -> (
      match
        List.find_opt
          (fun s -> s.seq < seq && s.seq + s.len = seq + len && not s.sacked)
          t.segs
      with
      | Some s when not s.lost ->
        let head = { s with len = seq - s.seq } in
        let tail = { seq; len; sacked = false; lost = false } in
        t.segs <-
          List.concat_map
            (fun s' -> if s' == s then [ head; tail ] else [ s' ])
            t.segs;
        Some tail
      | _ -> None)
  in
  match target with
  | None -> [ Printf.sprintf "loss mark for unknown segment seq=%d len=%d" seq len ]
  | Some s ->
    if s.sacked then
      [ Printf.sprintf "loss mark for SACKed segment seq=%d len=%d" seq len ]
    else if s.lost then
      [ Printf.sprintf "duplicate loss mark for segment seq=%d len=%d" seq len ]
    else begin
      s.lost <- true;
      t.lost_pending <- t.lost_pending + 1;
      t.inflight <- t.inflight - len;
      []
    end

(* ACK semantics, ground truth.  Returns the bytes newly acknowledged
   (cumulative head + fresh SACKs), matching what the sender feeds its
   congestion controller. *)
let on_ack (t : t) ~cum_ack ~sacks =
  let acked = ref 0 in
  if cum_ack > t.snd_una then begin
    t.segs <-
      List.filter_map
        (fun s ->
          if s.seq + s.len <= cum_ack then begin
            (* Fully acknowledged. *)
            if not s.sacked then acked := !acked + s.len;
            if s.lost then t.lost_pending <- t.lost_pending - 1
            else if not s.sacked then t.inflight <- t.inflight - s.len;
            None
          end
          else if s.seq < cum_ack then begin
            (* Straddles cum_ack: only the head is acknowledged. *)
            let head = cum_ack - s.seq in
            if not s.sacked then begin
              acked := !acked + head;
              if not s.lost then t.inflight <- t.inflight - head
            end;
            Some { s with seq = cum_ack; len = s.len - head }
          end
          else Some s)
        t.segs;
    t.snd_una <- cum_ack
  end;
  List.iter
    (fun (lo, hi) ->
      List.iter
        (fun s ->
          if s.seq >= lo && s.seq + s.len <= hi && not s.sacked then begin
            s.sacked <- true;
            acked := !acked + s.len;
            if s.lost then t.lost_pending <- t.lost_pending - 1
            else t.inflight <- t.inflight - s.len;
            s.lost <- false
          end)
        t.segs)
    sacks;
  !acked

let check (t : t) (c : claim) =
  let err = ref [] in
  let mismatch what model claimed =
    err :=
      Printf.sprintf "%s: sender claims %d, model has %d" what claimed model
      :: !err
  in
  if c.snd_una <> t.snd_una then mismatch "snd_una" t.snd_una c.snd_una;
  if c.inflight <> t.inflight then mismatch "inflight" t.inflight c.inflight;
  if c.lost_pending <> t.lost_pending then
    mismatch "lost_pending" t.lost_pending c.lost_pending;
  List.rev !err

let snd_una (t : t) = t.snd_una
let inflight (t : t) = t.inflight
let lost_pending (t : t) = t.lost_pending
let outstanding t = List.length t.segs
