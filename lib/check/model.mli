(** Executable reference model of a reliable byte-stream sender.

    A deliberately naive go-back-N scoreboard (sorted segment list with
    explicit per-segment SACK and loss flags, O(n) scans everywhere).
    The model replays the real sender's transmit/loss transitions from
    {!Leotp_net.Trace.Seg_state} events and independently applies ACK
    semantics, giving ground truth for [snd_una] / [inflight] /
    [lost_pending] that the optimized {!Leotp_tcp.Sender} must match at
    every {!Leotp_net.Trace.Ack_processed} event. *)

type t

type claim = { snd_una : int; inflight : int; lost_pending : int }
(** The sender's own post-ACK view, as carried in an [Ack_processed]
    trace event. *)

val create : unit -> t

val on_sent : t -> seq:int -> len:int -> string list
(** A fresh transmission.  Returns divergences (e.g. the new segment
    overlaps an outstanding one). *)

val on_retx : t -> seq:int -> len:int -> string list
(** A retransmission of an outstanding segment: clears its loss mark and
    puts it back in flight. *)

val on_lost : t -> seq:int -> len:int -> string list
(** The sender declared an outstanding segment lost. *)

val on_ack : t -> cum_ack:int -> sacks:(int * int) list -> int
(** Apply cumulative + selective acknowledgement semantics.  Returns the
    bytes newly acknowledged (what a correct sender credits to its
    congestion controller). *)

val check : t -> claim -> string list
(** Compare the sender's claim against model ground truth; empty when
    they agree. *)

val snd_una : t -> int
val inflight : t -> int
val lost_pending : t -> int

val outstanding : t -> int
(** Number of segments the model still tracks. *)
