(** Differential & model-based protocol oracle.

    Attached as a live sink on a {!Leotp_net.Trace} recorder, the oracle
    replays every TCP sender's segment lifecycle ({!Leotp_net.Trace.Seg_state})
    into the reference {!Model} and, at each
    {!Leotp_net.Trace.Ack_processed} event, checks that

    - the sender's claimed [snd_una] / [inflight] / [lost_pending] match
      model ground truth (differential check);
    - the armed retransmission timeout never drops below the RFC 6298
      floor SRTT + max(G, 4*RTTVAR), replayed on the same samples;
    - the congestion controller respects its algorithm's semantics:
      positive finite window always; AIMD growth bounded by acked bytes
      (NewReno, Westwood); at most one window adjustment per RTT (Vegas);
      gain-cycle phase legality and the 4*MSS ProbeRTT window (BBR);
      monitor-interval phase legality (PCC).

    Divergences are accumulated, never raised, so a fuzz run can finish
    the simulation and report every failure. *)

type t

type divergence = { time : float; who : string; flow : int; what : string }

val create : ?eps:float -> mss:int -> unit -> t
(** [eps] is the float-comparison slack (default [1e-6]); [mss] must
    match the senders under test. *)

val sink : t -> Leotp_net.Trace.record -> unit
val attach : t -> Leotp_net.Trace.t -> unit
(** [attach t trace] registers {!sink} on [trace]. *)

val divergences : t -> divergence list
(** All divergences so far, oldest first. *)

val acks : t -> int
(** ACK events checked. *)

val seg_events : t -> int
(** Segment-lifecycle events replayed. *)

val connections : t -> int
(** Distinct (sender, flow) connections observed. *)

val divergence_to_string : divergence -> string

val sender_quiescent : Leotp_tcp.Sender.t -> string option
(** Engine-level timer assertion for a finished or stopped sender:
    [None] when both timer slots are cleared and nothing remains armed
    in the engine ({!Leotp_sim.Engine.is_pending}); otherwise a
    description of the leak. *)
