type timer = {
  time : float;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
  mutable fired : bool;
  owner : t;
}

and t = {
  mutable clock : float;
  mutable next_seq : int;
  queue : timer Leotp_util.Pqueue.t;
  mutable cancelled_pending : int;
      (** cancelled-but-not-yet-popped timers still in [queue] *)
  mutable processed : int;  (** events fired over the engine's lifetime *)
}

let compare_timer a b =
  match Float.compare a.time b.time with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

let create () =
  {
    clock = 0.0;
    next_seq = 0;
    queue = Leotp_util.Pqueue.create ~cmp:compare_timer;
    cancelled_pending = 0;
    processed = 0;
  }

let now t = t.clock

let schedule_at t ~time action =
  let time = Float.max time t.clock in
  let timer =
    (* the timer record is the simulator's unit of work — one per
       scheduled event is the cost of discrete-event simulation *)
    ({ time; seq = t.next_seq; action; cancelled = false; fired = false; owner = t }
    [@leotp.allow "hot-path-may-alloc"])
  in
  t.next_seq <- t.next_seq + 1;
  Leotp_util.Pqueue.push t.queue timer;
  timer

let schedule t ~after action =
  schedule_at t ~time:(t.clock +. Float.max 0.0 after) action

(* Cancellation stays O(1) and lazy, but once cancelled timers dominate
   the heap we compact it: a long-lived engine that keeps rescheduling
   and cancelling RTO timers would otherwise retain every dead timer
   (and its action closure) until its pop time arrives. *)
let compact_min = 64

let maybe_compact t =
  if
    t.cancelled_pending >= compact_min
    && 2 * t.cancelled_pending > Leotp_util.Pqueue.length t.queue
  then begin
    (* compaction runs once per [compact_min] cancellations, amortized
       far below one allocation per event *)
    Leotp_util.Pqueue.filter_in_place t.queue
      ~keep:((fun tm -> not tm.cancelled) [@leotp.allow "hot-path-may-alloc"]);
    t.cancelled_pending <- 0
  end

let cancel timer =
  if (not timer.cancelled) && not timer.fired then begin
    timer.cancelled <- true;
    (* Proxy handles from [every] (seq < 0) never enter the queue. *)
    if timer.seq >= 0 then begin
      let t = timer.owner in
      t.cancelled_pending <- t.cancelled_pending + 1;
      maybe_compact t
    end
  end

let is_pending timer = (not timer.cancelled) && not timer.fired

let note_popped t timer =
  if timer.cancelled then t.cancelled_pending <- t.cancelled_pending - 1

(* Directly recursive (no local [next] closure): [step] runs once per
   event, and a closure capturing [t] is a minor-heap allocation. *)
let rec step t =
  match Leotp_util.Pqueue.pop t.queue with
  | None -> false
  | Some timer when timer.cancelled ->
    note_popped t timer;
    step t
  | Some timer ->
    t.clock <- Float.max t.clock timer.time;
    timer.fired <- true;
    t.processed <- t.processed + 1;
    timer.action ();
    true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
    let continue = ref true in
    while !continue do
      match Leotp_util.Pqueue.peek t.queue with
      | Some timer when timer.cancelled ->
        ignore (Leotp_util.Pqueue.pop t.queue);
        note_popped t timer
      | Some timer when timer.time <= limit -> ignore (step t)
      | Some _ | None ->
        t.clock <- Float.max t.clock limit;
        continue := false
    done

(* Bounded variant of [run]: fire at most [max_events] events with
   [time <= until].  The caller loops, regaining control between slices —
   the seam where a progress callback runs today and where a partitioned
   (per-shard) queue would hand control across shards tomorrow. *)
let rec slice_loop t ~until budget fired =
  if fired >= budget then `Events
  else
    match Leotp_util.Pqueue.peek t.queue with
    | Some timer when timer.cancelled ->
      ignore (Leotp_util.Pqueue.pop t.queue);
      note_popped t timer;
      slice_loop t ~until budget fired
    | Some timer when timer.time <= until ->
      ignore (step t);
      slice_loop t ~until budget (fired + 1)
    | Some _ ->
      t.clock <- Float.max t.clock until;
      `Until
    | None ->
      t.clock <- Float.max t.clock until;
      `Quiescent

let run_slice ?max_events t ~until =
  let budget = match max_events with None -> max_int | Some n -> max 1 n in
  slice_loop t ~until budget 0

let pending_events t = Leotp_util.Pqueue.length t.queue
let cancelled_pending t = t.cancelled_pending
let events_processed t = t.processed

let every t ~period ?start action =
  assert (period > 0.0);
  let start = match start with Some s -> s | None -> period in
  (* The recurrence is controlled through a proxy handle whose [cancelled]
     flag is inherited by each rescheduling. *)
  let handle =
    {
      time = t.clock;
      seq = -1;
      action = ignore;
      cancelled = false;
      fired = false;
      owner = t;
    }
  in
  let rec fire () =
    if not handle.cancelled then begin
      action ();
      if not handle.cancelled then ignore (schedule t ~after:period fire)
    end
  in
  ignore (schedule t ~after:start fire);
  handle
