(** Deterministic fault injection: seeded, serializable schedules of
    link flaps, degradations (loss / bandwidth / duplication /
    reordering bursts) and midnode crash-restarts, fired at exact
    simulated times through the engine's timer queue.

    This module only knows times and abstract targets; the scenario
    layer resolves targets onto concrete links and midnodes via the
    [apply] callback of {!install} (the sim library sits below the
    network model and cannot name its types).

    Spec syntax (one event per [;]-separated item):
    {v
      <time>@down:hop<i>            take hop i's duplex link down (flush)
      <time>@up:hop<i>              bring it back
      <time>@plr:hop<i>=<p>         set random-corruption probability
      <time>@bw:hop<i>=<mbps>       set bandwidth (both directions)
      <time>@dup:hop<i>=<p>         duplicate delivered packets w.p. p
      <time>@reorder:hop<i>=<p>,<jitter_s>  extra-delay reordering
      <time>@crash:mid<k>           midnode loses cache/PIT/flow state
      <time>@restart:mid<k>         midnode resumes with cold state
    v} *)

type target = Hop of int | Mid of int

type action =
  | Link_down of target
  | Link_up of target
  | Set_plr of target * float
  | Set_bw_mbps of target * float
  | Set_dup of target * float
  | Set_reorder of target * float * float  (** probability, jitter seconds *)
  | Crash of target
  | Restart of target

type event = { time : float; action : action }
type schedule = event list

val action_to_string : action -> string
val event_to_string : event -> string

val to_string : schedule -> string
(** Canonical [;]-joined form; floats printed with ["%.17g"] so
    [of_string (to_string s)] round-trips exactly. *)

val of_string : string -> (schedule, string) result
(** Parse a spec.  [Error msg] names the first offending item. *)

val random :
  rng:Leotp_util.Rng.t ->
  duration:float ->
  ?hops:int ->
  ?mids:int ->
  ?bw_mbps:float ->
  n:int ->
  unit ->
  schedule
(** At least [n] events (paired so every down/crash/degradation gets a
    matching recovery), with onsets in [0.05, 0.7] of [duration] so a
    transfer can still complete.  Deterministic in [rng].  Default
    [hops] 4, [mids] 1, [bw_mbps] 20 (restore value for bandwidth dips). *)

val install : Engine.t -> apply:(event -> unit) -> schedule -> unit
(** Schedule every event on the engine; [apply] runs at the event's
    simulated time. *)
