(** Deterministic discrete-event simulation engine.

    Events at equal times fire in scheduling order (a monotonically
    increasing sequence number breaks ties), so runs are fully reproducible.
    Timers are cancellable; cancellation is O(1) (lazily discarded when
    popped). *)

type t

type timer
(** Handle for a scheduled event. *)

val create : unit -> t

val now : t -> float
(** Current simulation time, seconds. *)

val schedule : t -> after:float -> (unit -> unit) -> timer
(** [schedule t ~after f] runs [f] at [now t +. after].  [after] is clamped
    to be non-negative. *)

val schedule_at : t -> time:float -> (unit -> unit) -> timer
(** Absolute-time variant; [time] in the past fires immediately (at [now]). *)

val cancel : timer -> unit
(** Idempotent.  A fired timer is also safe to cancel.  Cancellation is
    O(1); when cancelled timers come to dominate the queue (more than
    half, past a small floor) the queue is compacted so dead timers and
    their closures are not retained until their pop time. *)

val is_pending : timer -> bool

val run : ?until:float -> t -> unit
(** Process events in order until the queue drains or the clock would pass
    [until] (the clock is left at [until] in that case). *)

val step : t -> bool
(** Process one event; [false] if the queue was empty. *)

val run_slice :
  ?max_events:int -> t -> until:float -> [ `Events | `Until | `Quiescent ]
(** Bounded batch of [run]: fire at most [max_events] events (default:
    unlimited) whose time is [<= until], in order.  Returns [`Events] when
    the budget stopped the slice (more work may remain before [until]),
    [`Until] when the next event lies beyond [until] (clock advanced to
    [until]), and [`Quiescent] when the queue drained (clock advanced to
    [until]).  Calling in a loop until a non-[`Events] result is
    equivalent to [run ~until].  This is the engine's event-batching seam:
    callers regain control between slices (progress reporting today,
    per-shard queue partitioning groundwork tomorrow). *)

val events_processed : t -> int
(** Total events fired since [create] (monotonic; instrumentation). *)

val pending_events : t -> int

val cancelled_pending : t -> int
(** Cancelled timers still occupying the queue (awaiting lazy discard or
    compaction).  Exposed for tests and instrumentation. *)

val every : t -> period:float -> ?start:float -> (unit -> unit) -> timer
(** Recurring event; the returned handle cancels the whole recurrence.
    First firing at [now + start] (default: [now + period]). *)
