type target = Hop of int | Mid of int

type action =
  | Link_down of target
  | Link_up of target
  | Set_plr of target * float
  | Set_bw_mbps of target * float
  | Set_dup of target * float
  | Set_reorder of target * float * float
  | Crash of target
  | Restart of target

type event = { time : float; action : action }
type schedule = event list

let target_to_string = function
  | Hop i -> Printf.sprintf "hop%d" i
  | Mid i -> Printf.sprintf "mid%d" i

let fl x = Printf.sprintf "%.17g" x

let action_to_string = function
  | Link_down t -> "down:" ^ target_to_string t
  | Link_up t -> "up:" ^ target_to_string t
  | Set_plr (t, p) -> Printf.sprintf "plr:%s=%s" (target_to_string t) (fl p)
  | Set_bw_mbps (t, b) -> Printf.sprintf "bw:%s=%s" (target_to_string t) (fl b)
  | Set_dup (t, p) -> Printf.sprintf "dup:%s=%s" (target_to_string t) (fl p)
  | Set_reorder (t, p, j) ->
    Printf.sprintf "reorder:%s=%s,%s" (target_to_string t) (fl p) (fl j)
  | Crash t -> "crash:" ^ target_to_string t
  | Restart t -> "restart:" ^ target_to_string t

let event_to_string ev = Printf.sprintf "%s@%s" (fl ev.time) (action_to_string ev.action)
let to_string sched = String.concat ";" (List.map event_to_string sched)

let parse_target s =
  let num prefix =
    let n = String.length prefix in
    int_of_string_opt (String.sub s n (String.length s - n))
  in
  if String.length s > 3 && String.sub s 0 3 = "hop" then
    Option.map (fun i -> Hop i) (num "hop")
  else if String.length s > 3 && String.sub s 0 3 = "mid" then
    Option.map (fun i -> Mid i) (num "mid")
  else None

let parse_event item =
  let fail () = Error (Printf.sprintf "bad fault event %S" item) in
  match String.index_opt item '@' with
  | None -> fail ()
  | Some at -> (
    let time = float_of_string_opt (String.sub item 0 at) in
    let rest = String.sub item (at + 1) (String.length item - at - 1) in
    let verb, operand =
      match String.index_opt rest ':' with
      | None -> (rest, "")
      | Some c ->
        (String.sub rest 0 c, String.sub rest (c + 1) (String.length rest - c - 1))
    in
    let tgt, args =
      match String.index_opt operand '=' with
      | None -> (operand, [])
      | Some e ->
        ( String.sub operand 0 e,
          String.split_on_char ','
            (String.sub operand (e + 1) (String.length operand - e - 1)) )
    in
    match (time, parse_target tgt, args) with
    | Some time, Some tgt, [] when verb = "down" ->
      Ok { time; action = Link_down tgt }
    | Some time, Some tgt, [] when verb = "up" -> Ok { time; action = Link_up tgt }
    | Some time, Some tgt, [] when verb = "crash" -> Ok { time; action = Crash tgt }
    | Some time, Some tgt, [] when verb = "restart" ->
      Ok { time; action = Restart tgt }
    | Some time, Some tgt, [ a ] -> (
      match (verb, float_of_string_opt a) with
      | "plr", Some p -> Ok { time; action = Set_plr (tgt, p) }
      | "bw", Some b -> Ok { time; action = Set_bw_mbps (tgt, b) }
      | "dup", Some p -> Ok { time; action = Set_dup (tgt, p) }
      | _ -> fail ())
    | Some time, Some tgt, [ a; b ] when verb = "reorder" -> (
      match (float_of_string_opt a, float_of_string_opt b) with
      | Some p, Some j -> Ok { time; action = Set_reorder (tgt, p, j) }
      | _ -> fail ())
    | _ -> fail ())

let of_string s =
  let items =
    String.split_on_char ';' s
    |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  List.fold_left
    (fun acc item ->
      match (acc, parse_event item) with
      | Error _, _ -> acc
      | Ok evs, Ok ev -> Ok (ev :: evs)
      | Ok _, Error e -> Error e)
    (Ok []) items
  |> Result.map List.rev

(* Sort is stable and ties additionally break on the serialized action so
   the emitted order never depends on generation order. *)
let sort sched =
  List.stable_sort
    (fun a b ->
      match compare a.time b.time with
      | 0 -> compare (action_to_string a.action) (action_to_string b.action)
      | c -> c)
    sched

let random ~rng ~duration ?(hops = 4) ?(mids = 1) ?(bw_mbps = 20.0) ~n () =
  let module Rng = Leotp_util.Rng in
  let t0 = 0.05 *. duration and t1 = 0.7 *. duration in
  let evs = ref [] in
  let count = ref 0 in
  while !count < n do
    let time = t0 +. Rng.float rng (t1 -. t0) in
    let dt = 0.05 +. Rng.float rng 1.5 in
    let h = Hop (Rng.int rng (max 1 hops)) in
    let pair a b =
      evs := { time = time +. dt; action = b } :: { time; action = a } :: !evs;
      count := !count + 2
    in
    match Rng.int rng 6 with
    | 0 -> pair (Link_down h) (Link_up h)
    | 1 -> pair (Set_plr (h, 0.01 +. Rng.float rng 0.2)) (Set_plr (h, 0.0))
    | 2 ->
      pair
        (Set_bw_mbps (h, bw_mbps *. (0.1 +. Rng.float rng 0.4)))
        (Set_bw_mbps (h, bw_mbps))
    | 3 -> pair (Set_dup (h, 0.02 +. Rng.float rng 0.2)) (Set_dup (h, 0.0))
    | 4 ->
      pair
        (Set_reorder (h, 0.05 +. Rng.float rng 0.3, 0.001 +. Rng.float rng 0.01))
        (Set_reorder (h, 0.0, 0.0))
    | _ ->
      let m = Mid (Rng.int rng (max 1 mids)) in
      pair (Crash m) (Restart m)
  done;
  sort !evs

let install engine ~apply sched =
  List.iter
    (fun ev ->
      ignore (Engine.schedule_at engine ~time:ev.time (fun () -> apply ev)))
    sched
