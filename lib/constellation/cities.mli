(** Ground-station sites: the 100 most populous metropolitan areas
    (paper §V-A).  Coordinates are approximate city centers. *)

type t = { name : string; lat : float; lon : float }

val all : t array
val count : int

val find : string -> t option
val find_exn : string -> t
