type link_kind = Gsl | Isl
type hop = { distance : float; kind : link_kind }

let ground_pos (c : Cities.t) ~time =
  Geo.ground_position ~lat_deg:c.Cities.lat ~lon_deg:c.Cities.lon ~time

let route_with_isls w ~src ~dst ~time ?(min_elevation_deg = 25.0)
    ?(gsl_policy = `Nearest) () =
  let n = Walker.count w in
  let g = Routing.create ~nodes:(n + 2) in
  let src_node = n and dst_node = n + 1 in
  let pos = Array.init n (fun sat -> Walker.position w ~sat ~time) in
  (* ISL mesh (+grid). *)
  for sat = 0 to n - 1 do
    List.iter
      (fun other ->
        if other > sat then
          Routing.add_edge g sat other (Geo.distance pos.(sat) pos.(other)))
      (Walker.isl_neighbors w ~sat)
  done;
  let gp1 = ground_pos src ~time and gp2 = ground_pos dst ~time in
  (match gsl_policy with
  | `All_visible ->
    (* GSLs to every visible satellite. *)
    for sat = 0 to n - 1 do
      if Geo.visible ~min_elevation_deg ~ground:gp1 ~sat:pos.(sat) () then
        Routing.add_edge g src_node sat (Geo.distance gp1 pos.(sat));
      if Geo.visible ~min_elevation_deg ~ground:gp2 ~sat:pos.(sat) () then
        Routing.add_edge g dst_node sat (Geo.distance gp2 pos.(sat))
    done
  | `Nearest ->
    (* One GSL per ground station (the HYPATIA-style model), but offer
       the few nearest visible satellites as candidates: a station's
       single dish tracks one satellite, and routing decides which
       attachment serves the path (the strictly-nearest satellite can be
       on a grid-distant ascending/descending pass, which would send the
       route half-way around the orbit). *)
    let attach node gp =
      let cands = ref [] in
      for sat = 0 to n - 1 do
        if Geo.visible ~min_elevation_deg ~ground:gp ~sat:pos.(sat) () then
          cands := (Geo.distance gp pos.(sat), sat) :: !cands
      done;
      let sorted = List.sort compare !cands in
      List.iteri
        (fun i (d, sat) -> if i < 4 then Routing.add_edge g node sat d)
        sorted
    in
    attach src_node gp1;
    attach dst_node gp2);
  match Routing.dijkstra g ~src:src_node ~dst:dst_node with
  | None -> None
  | Some (path, _) ->
    let rec hops = function
      | a :: (b :: _ as rest) ->
        let d =
          let p u = if u = src_node then gp1 else if u = dst_node then gp2 else pos.(u) in
          Geo.distance (p a) (p b)
        in
        let kind = if a >= n || b >= n then Gsl else Isl in
        { distance = d; kind } :: hops rest
      | _ -> []
    in
    Some (hops path)

let route_bent_pipe w ~src ~dst ~time ?(min_elevation_deg = 25.0) () =
  let gp1 = ground_pos src ~time and gp2 = ground_pos dst ~time in
  match Walker.common_visible w ~ground1:gp1 ~ground2:gp2 ~time ~min_elevation_deg () with
  | None -> None
  | Some sat ->
    let pos = Walker.position w ~sat ~time in
    Some
      [
        { distance = Geo.distance gp1 pos; kind = Gsl };
        { distance = Geo.distance pos gp2; kind = Gsl };
      ]

(* Per-epoch route memo.  A fleet admitting 1000 flows between the same
   city pair within one routing epoch would otherwise run Dijkstra over
   1600 satellites 1000 times for the same answer.  Times are quantized
   to the epoch, so the key space stays bounded by
   (city pairs) x (epochs touched). *)
module Memo = struct
  type t = {
    walker : Walker.t;
    epoch : float;
    table : (string * string * bool * float, hop list option) Hashtbl.t;
    mutable queries : int;
    mutable computes : int;
  }

  let create ?(epoch = 0.0) walker =
    { walker; epoch; table = Hashtbl.create 64; queries = 0; computes = 0 }

  let quantize t time =
    if t.epoch > 0.0 then Float.of_int (int_of_float (time /. t.epoch)) *. t.epoch
    else time

  let route t ~src ~dst ~isls ~time =
    t.queries <- t.queries + 1;
    let time = quantize t time in
    let key = (src.Cities.name, dst.Cities.name, isls, time) in
    match Hashtbl.find_opt t.table key with
    | Some r -> r
    | None ->
      t.computes <- t.computes + 1;
      let r =
        if isls then route_with_isls t.walker ~src ~dst ~time ()
        else route_bent_pipe t.walker ~src ~dst ~time ()
      in
      Hashtbl.replace t.table key r;
      r

  let queries t = t.queries
  let computes t = t.computes
  let clear t =
    Hashtbl.reset t.table;
    t.queries <- 0;
    t.computes <- 0
end

(* Instants with no route are kept as [`No_route]: the trace generator
   turns them into explicit outage intervals instead of silently holding
   the last path (the pre-trace [snapshots] behavior). *)
let snapshots_with_gaps ?(epoch = 0.0) w ~src ~dst ~isls ~t_end ~step =
  let memo = Memo.create ~epoch w in
  let rec go time acc =
    if time > t_end then List.rev acc
    else begin
      let entry =
        match Memo.route memo ~src ~dst ~isls ~time with
        | Some hops -> `Route hops
        | None -> `No_route
      in
      go (time +. step) ((time, entry) :: acc)
    end
  in
  go 0.0 []

let snapshots w ~src ~dst ~isls ~t_end ~step =
  List.filter_map
    (fun (time, entry) ->
      match entry with `Route hops -> Some (time, hops) | `No_route -> None)
    (snapshots_with_gaps w ~src ~dst ~isls ~t_end ~step)

let signature hops =
  List.map (fun h -> Float.round (Leotp_util.Units.m_to_km h.distance)) hops

let total_delay hops =
  List.fold_left (fun acc h -> acc +. Geo.propagation_delay h.distance) 0.0 hops

let hop_count = List.length

let mean_hop_count snaps =
  match snaps with
  | [] -> Float.nan
  | _ ->
    let total = List.fold_left (fun acc (_, h) -> acc + hop_count h) 0 snaps in
    float_of_int total /. float_of_int (List.length snaps)
