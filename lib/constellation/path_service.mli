(** Time-varying routes between ground stations over the constellation.

    Produces hop lists (distance + link kind) that scenarios translate
    into {!Leotp_net.Dynamic_path} snapshots with per-kind bandwidth and
    loss (GSL vs ISL, paper §V-C). *)

type link_kind = Gsl | Isl

type hop = { distance : float; kind : link_kind }

val route_with_isls :
  Walker.t ->
  src:Cities.t ->
  dst:Cities.t ->
  time:float ->
  ?min_elevation_deg:float ->
  ?gsl_policy:[ `Nearest | `All_visible ] ->
  unit ->
  hop list option
(** Shortest path src-ground -> (GSL) -> satellites (+grid ISLs) ->
    (GSL) -> dst-ground, by total distance.  [`Nearest] (default, the
    HYPATIA model the paper uses) gives each ground station a single GSL
    to its closest visible satellite; [`All_visible] lets routing pick
    any visible satellite. *)

val route_bent_pipe :
  Walker.t ->
  src:Cities.t ->
  dst:Cities.t ->
  time:float ->
  ?min_elevation_deg:float ->
  unit ->
  hop list option
(** The no-ISL network: up to a satellite visible from both cities and
    straight back down (2 GSL hops); [None] when no common satellite is
    in view. *)

val snapshots :
  Walker.t ->
  src:Cities.t ->
  dst:Cities.t ->
  isls:bool ->
  t_end:float ->
  step:float ->
  (float * hop list) list
(** Route recomputed every [step] seconds from 0 to [t_end]; times with no
    route are omitted. *)

val snapshots_with_gaps :
  ?epoch:float ->
  Walker.t ->
  src:Cities.t ->
  dst:Cities.t ->
  isls:bool ->
  t_end:float ->
  step:float ->
  (float * [ `Route of hop list | `No_route ]) list
(** Like {!snapshots} but gap-preserving: one entry per sampled instant,
    with [`No_route] where the pair has no path (bent-pipe visibility
    loss, unreachable ground station).  [epoch] > 0 memoizes route
    computation per {!Memo} epoch, so bandwidth can be sampled on a finer
    [step] than the routing recompute quantum. *)

val signature : hop list -> float list
(** Per-hop distances rounded to whole kilometres: the route identity
    used for handover detection (compare with
    [List.equal Float.equal]). *)

(** Per-epoch memoization of route queries.  Many-flow fleets issue one
    query per admitted flow; flows between the same city pair inside one
    routing epoch share a single Dijkstra run.  The query/compute counters
    are the regression hook: tests assert that N same-pair queries cost
    exactly one compute per epoch. *)
module Memo : sig
  type t

  val create : ?epoch:float -> Walker.t -> t
  (** [epoch] (seconds) quantizes query times downward; [0.] (default)
      memoizes exact times only. *)

  val route :
    t -> src:Cities.t -> dst:Cities.t -> isls:bool -> time:float ->
    hop list option
  (** Memoized {!route_with_isls} (or {!route_bent_pipe} when [isls] is
      false) at the quantized time; [None] results are cached too. *)

  val queries : t -> int
  val computes : t -> int

  val clear : t -> unit
  (** Drop the cache and reset both counters. *)
end

val total_delay : hop list -> float
(** One-way propagation delay of the route, seconds. *)

val hop_count : hop list -> int
val mean_hop_count : (float * hop list) list -> float
