(* Multicast (paper §VII): two Consumers fetch the same named flow; the
   branching Midnode's cache and pending-Interest table turn the transfer
   into a multicast tree — the Producer's uplink carries (roughly) one
   copy of the data.

       Producer ---- Midnode ---+---- Consumer A
                                +---- Consumer B

     dune exec examples/multicast.exe *)

module Engine = Leotp_sim.Engine
module Node = Leotp_net.Node
module Topology = Leotp_net.Topology
module Bandwidth = Leotp_net.Bandwidth

let mbps = Leotp_util.Units.mbps_to_bytes_per_sec

let () =
  let engine = Engine.create () in
  let rng = Leotp_util.Rng.create ~seed:3 in
  let producer_node = Node.create ~name:"producer" in
  let mid_node = Node.create ~name:"branch" in
  let a_node = Node.create ~name:"consumerA" in
  let b_node = Node.create ~name:"consumerB" in
  let spec = Topology.hop ~bandwidth:(Bandwidth.Constant (mbps 20.0)) ~delay:0.02 () in
  let up = Topology.connect engine ~rng producer_node mid_node spec in
  let la = Topology.connect engine ~rng mid_node a_node spec in
  let lb = Topology.connect engine ~rng mid_node b_node spec in
  (* Static routes for the Y. *)
  Node.add_route producer_node ~dst:(Node.id mid_node) up.Topology.fwd;
  Node.add_route producer_node ~dst:(Node.id a_node) up.Topology.fwd;
  Node.add_route producer_node ~dst:(Node.id b_node) up.Topology.fwd;
  Node.add_route mid_node ~dst:(Node.id producer_node) up.Topology.rev;
  Node.add_route mid_node ~dst:(Node.id a_node) la.Topology.fwd;
  Node.add_route mid_node ~dst:(Node.id b_node) lb.Topology.fwd;
  Node.add_route a_node ~dst:(Node.id producer_node) la.Topology.rev;
  Node.add_route a_node ~dst:(Node.id mid_node) la.Topology.rev;
  Node.add_route b_node ~dst:(Node.id producer_node) lb.Topology.rev;
  Node.add_route b_node ~dst:(Node.id mid_node) lb.Topology.rev;

  let config = Leotp.Config.default in
  let mid = Leotp.Midnode.create engine ~config ~node:mid_node () in
  let bytes = 3_000_000 in
  let flow = 9 in
  let metrics = Leotp_net.Flow_metrics.create ~flow in
  let producer =
    Leotp.Producer.create engine ~config ~node:producer_node ~flow
      ~total_bytes:bytes ~metrics ()
  in
  Node.set_handler producer_node (fun ~from:_ pkt ->
      if Leotp.Wire.is_interest pkt then
        Leotp.Producer.handle_interest producer pkt
      else Node.forward producer_node ~from:0 pkt);
  let consumer_at node =
    let c =
      Leotp.Consumer.create engine ~config ~node
        ~producer:(Node.id producer_node) ~flow ~total_bytes:bytes ()
    in
    Node.set_handler node (fun ~from:_ pkt ->
        if Leotp.Wire.is_data pkt then Leotp.Consumer.handle_packet c pkt
        else Node.forward node ~from:0 pkt);
    c
  in
  let ca = consumer_at a_node in
  let cb = consumer_at b_node in
  Leotp.Consumer.start ca;
  (* B joins 0.5 s later and shares the same FlowID. *)
  ignore (Engine.schedule engine ~after:0.5 (fun () -> Leotp.Consumer.start cb));
  Engine.run ~until:60.0 engine;

  let uplink = Leotp_net.Link.stats up.Topology.fwd in
  Printf.printf "consumer A: complete=%b (%d bytes)\n"
    (Leotp.Consumer.complete ca)
    (Leotp.Consumer.received_bytes ca);
  Printf.printf "consumer B: complete=%b (%d bytes)\n"
    (Leotp.Consumer.complete cb)
    (Leotp.Consumer.received_bytes cb);
  Printf.printf "uplink carried %.1f MB for %.1f MB of demand (%.2fx)\n"
    (float_of_int uplink.Leotp_net.Link.bytes_delivered /. 1e6)
    (float_of_int (2 * bytes) /. 1e6)
    (float_of_int uplink.Leotp_net.Link.bytes_delivered /. float_of_int (2 * bytes));
  Printf.printf "branch midnode: %d duplicate Interests blocked by the PIT\n"
    (Leotp.Midnode.pit_blocked mid);
  match Leotp.Midnode.flow_stats mid ~flow with
  | Some fs -> Printf.printf "branch cache hits: %d\n" fs.Leotp.Midnode.cache_hits
  | None -> ()
