(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation.

   Usage:
     dune exec bench/main.exe                    # everything, full size
     dune exec bench/main.exe -- --quick         # shrunk runs
     dune exec bench/main.exe -- fig12 table2    # selected experiments
     dune exec bench/main.exe -- fig19           # Bechamel CPU micro-bench
     dune exec bench/main.exe -- --jobs 4 fig12  # sweep cells on 4 domains
     dune exec bench/main.exe -- --perf-smoke    # fixed quick subset + JSON

   --jobs N runs each experiment's independent simulation cells on N
   worker domains; results are bit-identical to --jobs 1 (each cell owns
   its engine/rng/topology and domain-local id counters).

   Every experiment additionally writes a machine-readable perf record
   BENCH_<id>.json (to --out-dir DIR, default '.') so the perf
   trajectory can be tracked across commits; see EXPERIMENTS.md for the
   schema.

   Absolute numbers are not expected to match the authors' testbed; the
   qualitative shape (who wins, by roughly what factor, where crossovers
   fall) is the reproduction target.  See EXPERIMENTS.md for the
   paper-vs-measured record. *)

module E = Leotp_scenario.Experiments
module S = Leotp_scenario.Starlink
module Runner = Leotp_scenario.Runner
module Common = Leotp_scenario.Common
module Invariants = Leotp_scenario.Invariants
module Fault = Leotp_sim.Fault
module Trace = Leotp_net.Trace
module Fuzz = Leotp_scenario.Fuzz
module Fleet = Leotp_scenario.Fleet
module Workload = Leotp_scenario.Workload
module Pathtrace = Leotp_scenario.Pathtrace
module Path_trace = Leotp_net.Path_trace
module Stats = Leotp_util.Stats

(* ------------------------------------------------------------------ *)
(* Fig 19: Midnode CPU overhead, as per-packet processing cost          *)
(* (Bechamel micro-benchmarks; flat-in-PLR is the paper's claim).       *)

let config = Leotp.Config.default
let bench_mss = config.Leotp.Config.mss

(* Feed a stream of 256 data packets (with [plr] of them missing, which
   exercises SHR hole tracking and VPH generation) through a fresh
   Midnode handler.  The loss pattern is fixed once; the packets are
   pool-acquired per iteration because every sink recycles them — a
   pre-built list would be use-after-release on the second run. *)
let midnode_stream ~plr () =
  let engine = Leotp_sim.Engine.create () in
  let node = Leotp_net.Node.create ~name:"mid" in
  let (_ : Leotp.Midnode.t) = Leotp.Midnode.create engine ~config ~node () in
  let rng = Leotp_util.Rng.create ~seed:1 in
  let kept =
    List.filter
      (fun _ -> not (Leotp_util.Rng.bernoulli rng plr))
      (List.init 256 Fun.id)
  in
  fun () ->
    List.iter
      (fun i ->
        let pkt =
          Leotp.Wire.data_packet ~config ~src:99 ~dst:98 ~flow:7
            ~lo:(i * bench_mss)
            ~hi:((i + 1) * bench_mss)
            ~timestamp:0.0 ~req_owd:0.001 ~first_sent:0.0 ~retx:false
        in
        Leotp_net.Node.receive node ~from:1 pkt)
      kept

let cache_ops () =
  let cache = Leotp.Cache.create ~config () in
  fun () ->
    for i = 0 to 255 do
      Leotp.Cache.insert cache ~flow:1 ~lo:(i * 1400) ~hi:((i + 1) * 1400)
        ~first_sent:0.0 ~retx:false
    done;
    for i = 0 to 255 do
      ignore (Leotp.Cache.lookup cache ~flow:1 ~lo:(i * 1400) ~hi:((i + 1) * 1400))
    done

let fig19_tests =
  let open Bechamel in
  [
    Test.make ~name:"midnode/256pkt/plr=0" (Staged.stage (midnode_stream ~plr:0.0 ()));
    Test.make ~name:"midnode/256pkt/plr=1%" (Staged.stage (midnode_stream ~plr:0.01 ()));
    Test.make ~name:"midnode/256pkt/plr=5%" (Staged.stage (midnode_stream ~plr:0.05 ()));
    Test.make ~name:"cache/256 insert+lookup" (Staged.stage (cache_ops ()));
  ]

let fig19 () =
  print_endline "\n=== Fig 19: Midnode per-packet processing cost ===";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let res = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ ns_per_run ] ->
            Printf.printf "  %-26s %8.3f us/packet\n" name
              (ns_per_run /. 256.0 /. 1000.0)
          | _ -> Printf.printf "  %-26s <no estimate>\n" name)
        res)
    fig19_tests;
  print_endline
    "  (flat across PLR = the paper's Fig 19 claim: cost dominated by per-packet work)"

(* ------------------------------------------------------------------ *)
(* Path-trace experiment results, stashed so the BENCH_pathtrace.json
   perf record can carry the per-cell summary stats alongside the
   generic perf fields.  Cells run under Runner.map, so everything in
   this JSON — digests included — is identical for any --jobs N. *)

let pathtrace_cells : (Pathtrace.cell * Pathtrace.run_result) list ref =
  ref []

let pathtrace_cells_json cells =
  let cell_json ((c : Pathtrace.cell), (r : Pathtrace.run_result)) =
    Printf.sprintf
      "    {\"label\": \"%s\", \"horizon_s\": %.17g, \"isls\": %b, \"seed\": \
       %d, \"handovers\": %d, \"handover_rate_per_s\": %.17g, \"outages\": \
       %d, \"outage_fraction\": %.17g, \"mean_hops\": %.17g, \"switches\": \
       %d, \"goodput_mbps\": %.17g, \"owd_ms_mean\": %.17g, \"owd_ms_p99\": \
       %.17g, \"digest\": \"%s\"}"
      c.Pathtrace.label c.Pathtrace.spec.Pathtrace.horizon
      c.Pathtrace.spec.Pathtrace.isls c.Pathtrace.spec.Pathtrace.seed
      r.Pathtrace.handovers
      (if c.Pathtrace.spec.Pathtrace.horizon > 0.0 then
         float_of_int r.Pathtrace.handovers /. c.Pathtrace.spec.Pathtrace.horizon
       else 0.0)
      r.Pathtrace.outages r.Pathtrace.outage_fraction r.Pathtrace.mean_hops
      r.Pathtrace.switches r.Pathtrace.summary.Common.goodput_mbps
      (Leotp_util.Units.sec_to_ms (Stats.mean r.Pathtrace.summary.Common.owd))
      (Leotp_util.Units.sec_to_ms
         (Stats.percentile r.Pathtrace.summary.Common.owd 99.0))
      r.Pathtrace.digest
  in
  Printf.sprintf "  \"cells\": [\n%s\n  ]"
    (String.concat ",\n" (List.map cell_json cells))

let all_experiments =
  [
    ("fig2", fun ~quick -> ignore (E.fig02 ~quick ()));
    ("fig3", fun ~quick:_ -> ignore (E.fig03 ()));
    ("fig4", fun ~quick -> ignore (E.fig04 ~quick ()));
    ("fig5", fun ~quick -> ignore (E.fig05 ~quick ()));
    ("fig10", fun ~quick -> ignore (E.fig10 ~quick ()));
    ("fig11", fun ~quick -> ignore (E.fig11 ~quick ()));
    ("fig12", fun ~quick -> ignore (E.fig12 ~quick ()));
    ("fig13", fun ~quick -> ignore (E.fig13 ~quick ()));
    ("fig14", fun ~quick -> ignore (E.fig14 ~quick ()));
    ("fig15", fun ~quick -> ignore (E.fig15 ~quick ()));
    ("fig16", fun ~quick -> ignore (S.fig16 ~quick ()));
    ("fig17", fun ~quick -> ignore (S.fig17 ~quick ()));
    ("fig18", fun ~quick -> ignore (S.fig18 ~quick ()));
    ("table2", fun ~quick -> ignore (S.table2 ~quick ()));
    ("pathtrace", fun ~quick -> pathtrace_cells := Pathtrace.experiment ~quick ());
    ("fig19", fun ~quick:_ -> fig19 ());
  ]

(* ------------------------------------------------------------------ *)
(* Perf records: one BENCH_<id>.json per experiment run.                *)

type perf = {
  id : string;
  quick : bool;
  jobs : int;
  wall_s : float;
  cpu_s : float;
  jobs_run : int;
  sim_seconds : float;
  sim_per_wall : float;
  minor_words : float;
  major_words : float;
  promoted_words : float;
  worker_alloc_bytes : float;
  packets_simulated : int;
  minor_words_per_packet : float;
}

let json_of_perf ?(extra = "") p =
  (* %.17g round-trips any float; no JSON library in the tree. *)
  Printf.sprintf
    "{\n\
    \  \"id\": \"%s\",\n\
    \  \"quick\": %b,\n\
    \  \"jobs\": %d,\n\
    \  \"wall_s\": %.6f,\n\
    \  \"cpu_s\": %.6f,\n\
    \  \"jobs_run\": %d,\n\
    \  \"sim_seconds\": %.3f,\n\
    \  \"sim_per_wall\": %.3f,\n\
    \  \"gc\": {\n\
    \    \"minor_words\": %.17g,\n\
    \    \"major_words\": %.17g,\n\
    \    \"promoted_words\": %.17g\n\
    \  },\n\
    \  \"worker_alloc_bytes\": %.17g,\n\
    \  \"packets_simulated\": %d,\n\
    \  \"minor_words_per_packet\": %.17g%s\n\
     }\n"
    p.id p.quick p.jobs p.wall_s p.cpu_s p.jobs_run p.sim_seconds
    p.sim_per_wall p.minor_words p.major_words p.promoted_words
    p.worker_alloc_bytes p.packets_simulated p.minor_words_per_packet
    (if extra = "" then "" else ",\n" ^ extra)

let write_perf ?extra ~out_dir p =
  let path = Filename.concat out_dir (Printf.sprintf "BENCH_%s.json" p.id) in
  let oc = open_out path in
  output_string oc (json_of_perf ?extra p);
  close_out oc;
  path

(* Run one experiment under full instrumentation.  GC minor/major words
   are the main domain's [Gc.quick_stat] deltas (allocation on worker
   domains is reported separately via [worker_alloc_bytes], which the
   runner sums per job on whichever domain ran it).  The per-packet
   metric is computed from the per-job deltas only — both the byte and
   the packet counters are read on whichever domain ran the job — so it
   is the same number under --jobs 1 and --jobs N and the perf gate can
   compare runs regardless of parallelism. *)
let run_instrumented ~quick ~out_dir (id, f) =
  Runner.reset_counters ();
  let g0 = Gc.quick_stat () in
  let wall0 = Unix.gettimeofday () in
  let cpu0 = Sys.time () in
  f ~quick;
  let wall = Unix.gettimeofday () -. wall0 in
  let cpu = Sys.time () -. cpu0 in
  let g1 = Gc.quick_stat () in
  let c = Runner.counters () in
  let p =
    {
      id;
      quick;
      jobs = Runner.jobs ();
      wall_s = wall;
      cpu_s = cpu;
      jobs_run = c.Runner.jobs_run;
      sim_seconds = c.Runner.sim_seconds;
      sim_per_wall = (if wall > 0.0 then c.Runner.sim_seconds /. wall else 0.0);
      minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      major_words = g1.Gc.major_words -. g0.Gc.major_words;
      promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
      worker_alloc_bytes = c.Runner.alloc_bytes;
      packets_simulated = c.Runner.packets;
      minor_words_per_packet =
        (if c.Runner.packets > 0 then
           c.Runner.alloc_bytes /. 8.0 /. float_of_int c.Runner.packets
         else 0.0);
    }
  in
  let extra =
    match (id, !pathtrace_cells) with
    | "pathtrace", (_ :: _ as cells) -> Some (pathtrace_cells_json cells)
    | _ -> None
  in
  let path = write_perf ?extra ~out_dir p in
  Printf.printf "  [%s done in %.1fs wall / %.1fs cpu, %d jobs, %.0f sim-s/wall-s -> %s]\n%!"
    id wall cpu c.Runner.jobs_run p.sim_per_wall path;
  p

(* Fixed quick subset for perf sanity checks: one pure-computation
   experiment, one simulation sweep that exercises the runner, the
   retransmission-latency figure whose per-packet allocation number the
   perf gate tracks, and the trace-driven path replay. *)
let perf_smoke_ids = [ "fig3"; "fig10"; "fig12"; "pathtrace" ]

(* ------------------------------------------------------------------ *)
(* Perf-regression gate: compare this run's per-packet allocation
   metric against the checked-in baselines (bench/baselines.json).
   The parser is deliberately minimal — the file is one flat JSON
   object of "key": number pairs (experiment ids plus "tolerance_pct"),
   re-baselined by copying minor_words_per_packet out of a trusted
   BENCH_<id>.json; see EXPERIMENTS.md. *)

let parse_baselines path =
  let ic = open_in path in
  let tolerance = ref 25.0 in
  let entries = ref [] in
  (try
     while true do
       let line = input_line ic in
       (* A line of interest looks like:   "fig10": 249.4,   *)
       match String.index_opt line '"' with
       | None -> ()
       | Some q0 -> (
         match String.index_from_opt line (q0 + 1) '"' with
         | None -> ()
         | Some q1 -> (
           let key = String.sub line (q0 + 1) (q1 - q0 - 1) in
           match String.index_from_opt line q1 ':' with
           | None -> ()
           | Some c -> (
             let v =
               String.trim
                 (String.sub line (c + 1) (String.length line - c - 1))
             in
             let v =
               if v <> "" && v.[String.length v - 1] = ',' then
                 String.sub v 0 (String.length v - 1)
               else v
             in
             match float_of_string_opt v with
             | None -> ()
             | Some f ->
               if key = "tolerance_pct" then tolerance := f
               else entries := (key, f) :: !entries)))
     done
   with End_of_file -> close_in ic);
  (!tolerance, List.rev !entries)

let run_gate ~path perfs =
  let tolerance, baselines = parse_baselines path in
  Printf.printf "\n=== perf gate (%s, tolerance +%.0f%%) ===\n" path tolerance;
  let failures = ref [] in
  List.iter
    (fun p ->
      match List.assoc_opt p.id baselines with
      | None -> Printf.printf "  %-8s (no baseline; skipped)\n" p.id
      | Some base ->
        let limit = base *. (1.0 +. (tolerance /. 100.0)) in
        let delta =
          if base > 0.0 then
            (p.minor_words_per_packet -. base) /. base *. 100.0
          else 0.0
        in
        let ok = p.minor_words_per_packet <= limit in
        Printf.printf "  %-8s baseline=%10.1f measured=%10.1f (%+6.1f%%) %s\n"
          p.id base p.minor_words_per_packet delta
          (if ok then "OK" else "FAIL");
        if not ok then failures := (p, base) :: !failures)
    perfs;
  match List.rev !failures with
  | [] -> true
  | fs ->
    List.iter
      (fun (p, base) ->
        Printf.eprintf
          "perf gate: %s minor_words_per_packet regressed: measured %.1f \
           exceeds baseline %.1f by more than %.0f%% — if the growth is \
           intentional, re-baseline bench/baselines.json (see \
           EXPERIMENTS.md)\n"
          p.id p.minor_words_per_packet base tolerance)
      fs;
    false

(* ------------------------------------------------------------------ *)
(* Many-flow mode: an open-loop Workload over the live Walker
   constellation, run by the Fleet shard engine.  The headline metric is
   flow_sim_seconds_per_wall_second (total per-flow active simulated
   time per second of wall clock — the OpenSN-style scale number), gated
   against bench/baselines.json with its own tolerance band.  The
   combined FNV digest printed here is the determinism witness: it must
   be identical under any --jobs N for a fixed --shards. *)

let manyflow_spec ~quick ~flows ~seed ~shards =
  let wl =
    {
      Workload.default with
      Workload.seed;
      horizon = (if quick then 30.0 else 60.0);
    }
  in
  let wl = Workload.scale_to wl ~flows in
  { Fleet.default with Fleet.workload = wl; shards }

let json_of_manyflow ~quick ~seed ~jobs ~wall (s : Fleet.stats) =
  Printf.sprintf
    "{\n\
    \  \"id\": \"manyflow\",\n\
    \  \"quick\": %b,\n\
    \  \"seed\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"shards\": %d,\n\
    \  \"wall_s\": %.6f,\n\
    \  \"flows_offered\": %d,\n\
    \  \"flows_started\": %d,\n\
    \  \"flows_completed\": %d,\n\
    \  \"flows_skipped\": %d,\n\
    \  \"bytes_delivered\": %d,\n\
    \  \"packets_simulated\": %d,\n\
    \  \"events\": %d,\n\
    \  \"peak_active\": %d,\n\
    \  \"sim_seconds\": %.3f,\n\
    \  \"flow_sim_seconds\": %.3f,\n\
    \  \"flow_sim_seconds_per_wall_second\": %.17g,\n\
    \  \"route_queries\": %d,\n\
    \  \"route_computes\": %d,\n\
    \  \"pool_live_delta\": %d,\n\
    \  \"pit_pending_end\": %d,\n\
    \  \"digest\": \"%s\",\n\
    \  \"invariants_ok\": %b\n\
     }\n"
    quick seed jobs (List.length s.Fleet.shards) wall s.Fleet.flows_offered
    s.Fleet.flows_started s.Fleet.flows_completed s.Fleet.flows_skipped
    s.Fleet.bytes_delivered s.Fleet.packets s.Fleet.events s.Fleet.peak_active
    s.Fleet.sim_seconds s.Fleet.flow_sim_seconds
    (if wall > 0.0 then s.Fleet.flow_sim_seconds /. wall else 0.0)
    s.Fleet.route_queries s.Fleet.route_computes s.Fleet.pool_live_delta
    s.Fleet.pit_pending_end s.Fleet.digest s.Fleet.invariants_ok

(* Higher is better for the throughput-style manyflow metric, so the
   gate direction is reversed from the allocation gate: fail when the
   measured rate falls below baseline * (1 - tolerance). *)
let gate_manyflow ~path ~wall (s : Fleet.stats) =
  let _, entries = parse_baselines path in
  match List.assoc_opt "manyflow_flow_sim_per_wall" entries with
  | None ->
    print_endline "  manyflow: no baseline in gate file; skipped";
    true
  | Some base ->
    let tol =
      match List.assoc_opt "manyflow_tolerance_pct" entries with
      | Some t -> t
      | None -> 60.0
    in
    let measured = if wall > 0.0 then s.Fleet.flow_sim_seconds /. wall else 0.0 in
    let floor = base *. (1.0 -. (tol /. 100.0)) in
    let ok = measured >= floor in
    Printf.printf
      "  manyflow flow_sim_s/wall_s baseline=%8.1f measured=%8.1f \
       (floor %.1f, -%.0f%%) %s\n"
      base measured floor tol
      (if ok then "OK" else "FAIL");
    if not ok then
      Printf.eprintf
        "perf gate: manyflow flow_sim_seconds_per_wall_second dropped below \
         %.1f (baseline %.1f - %.0f%%) — if the slowdown is intentional, \
         re-baseline bench/baselines.json (see EXPERIMENTS.md)\n"
        floor base tol;
    ok

let run_manyflow ~quick ~out_dir ~flows ~seed ~shards ~gate =
  let spec = manyflow_spec ~quick ~flows ~seed ~shards in
  Printf.printf
    "\n=== manyflow: ~%d flows, %d cities -> %d origins, %d shards, \
     horizon %.0fs (jobs=%d) ===\n%!"
    flows spec.Fleet.workload.Workload.cities
    spec.Fleet.workload.Workload.origins spec.Fleet.shards
    spec.Fleet.workload.Workload.horizon (Runner.jobs ());
  let wall0 = Unix.gettimeofday () in
  let s = Fleet.run spec in
  let wall = Unix.gettimeofday () -. wall0 in
  Printf.printf
    "  %d offered, %d started, %d completed, %d skipped (no route); peak \
     %d concurrent\n"
    s.Fleet.flows_offered s.Fleet.flows_started s.Fleet.flows_completed
    s.Fleet.flows_skipped s.Fleet.peak_active;
  Printf.printf
    "  %d packets, %d events in %.1fs wall; %.0f flow-sim-s (%.0f per \
     wall-s)\n"
    s.Fleet.packets s.Fleet.events wall s.Fleet.flow_sim_seconds
    (if wall > 0.0 then s.Fleet.flow_sim_seconds /. wall else 0.0);
  Printf.printf "  routes: %d queries -> %d computes (memo)\n"
    s.Fleet.route_queries s.Fleet.route_computes;
  Printf.printf "  pool live delta %d, pit pending %d\n" s.Fleet.pool_live_delta
    s.Fleet.pit_pending_end;
  List.iter
    (fun (r : Fleet.shard_stats) ->
      Printf.printf "  shard %d: %4d flows, digest %s%s\n" r.Fleet.shard
        r.Fleet.flows_started r.Fleet.digest
        (if Invariants.all_ok r.Fleet.reports then "" else "  INVARIANT FAIL"))
    s.Fleet.shards;
  Printf.printf "  combined digest %s, invariants %s\n" s.Fleet.digest
    (if s.Fleet.invariants_ok then "ok" else "FAILED");
  if not s.Fleet.invariants_ok then
    List.iter
      (fun (r : Fleet.shard_stats) ->
        if not (Invariants.all_ok r.Fleet.reports) then begin
          Printf.printf "  shard %d:\n" r.Fleet.shard;
          print_endline (Invariants.to_string r.Fleet.reports)
        end)
      s.Fleet.shards;
  let path = Filename.concat out_dir "BENCH_manyflow.json" in
  let oc = open_out path in
  output_string oc
    (json_of_manyflow ~quick ~seed ~jobs:(Runner.jobs ()) ~wall s);
  close_out oc;
  Printf.printf "  wrote %s\n%!" path;
  let gate_ok =
    match gate with Some p -> gate_manyflow ~path:p ~wall s | None -> true
  in
  s.Fleet.invariants_ok && gate_ok

(* ------------------------------------------------------------------ *)
(* Fault lab: one LEOTP bulk flow over a 4-hop chain under a fault
   schedule, with the packet trace recorded and the five protocol
   invariants checked.  The printed digest is the determinism witness:
   the same spec and seed must reproduce it exactly. *)

let parse_faults ~duration = function
  | None -> []
  | Some spec -> (
    match String.split_on_char ':' spec with
    | [ "random"; seed; n ] -> (
      match (int_of_string_opt seed, int_of_string_opt n) with
      | Some seed, Some n when n >= 1 ->
        Fault.random ~rng:(Leotp_util.Rng.create ~seed) ~duration ~n ()
      | _ ->
        Printf.eprintf "--faults random:SEED:N expects integers, got %S\n" spec;
        exit 1)
    | _ -> (
      match Fault.of_string spec with
      | Ok sched -> sched
      | Error msg ->
        Printf.eprintf "--faults: %s\n" msg;
        exit 1))

let run_fault_lab ~quick ~out_dir ~spec ~trace_wanted =
  let duration = if quick then 10.0 else 30.0 in
  let faults = parse_faults ~duration spec in
  (* A one-slot ring still digests every event; only keep records around
     when they are going to be exported. *)
  let trace = Trace.create ~capacity:(if trace_wanted then 1 lsl 18 else 1) () in
  let hops = Common.uniform_hops ~n:4 (Common.link ~bw:20.0 ~delay:0.01 ()) in
  print_endline "\n=== fault lab: LEOTP over 4x20 Mbps, 10 ms hops ===";
  if faults <> [] then
    Printf.printf "  schedule: %s\n" (Fault.to_string faults);
  let summary, reports =
    Common.run_faulted ~duration ~warmup:(0.1 *. duration) ~faults ~trace ~hops
      (Common.Leotp Leotp.Config.default)
  in
  Printf.printf "  goodput %.2f Mbps, %d retransmissions, %d congestion drops\n"
    summary.Common.goodput_mbps summary.Common.retransmissions
    summary.Common.congestion_drops;
  Printf.printf "  trace: %d events, digest %s\n" (Trace.count trace)
    (Trace.digest trace);
  if trace_wanted then begin
    let path = Filename.concat out_dir "TRACE_faultlab.jsonl" in
    let oc = open_out path in
    Trace.write_jsonl trace oc;
    close_out oc;
    Printf.printf "  wrote %d records to %s\n"
      (min (Trace.count trace) (1 lsl 18))
      path
  end;
  print_endline (Invariants.to_string reports);
  Invariants.all_ok reports

(* ------------------------------------------------------------------ *)
(* Path-trace mode: generate a TRACE_PATH timeline from the live
   constellation (and replay it in-memory), or replay a trace file.
   Both print the packet-trace digest; gen(live) and a replay of the
   written file must print the same digest — the bit-identical replay
   guarantee that bin/ci.sh checks. *)

let print_pathtrace_run ~tag (r : Pathtrace.run_result) =
  Printf.printf
    "  %s: tput=%5.2f Mbps  owd(avg)=%6.1fms  switches %d\n" tag
    r.Pathtrace.summary.Common.goodput_mbps
    (Leotp_util.Units.sec_to_ms (Stats.mean r.Pathtrace.summary.Common.owd))
    r.Pathtrace.switches;
  Printf.printf "  digest %s\n" r.Pathtrace.digest

let interp_of ~step = function
  | `Hold -> Leotp_net.Dynamic_path.Hold_last
  | `Linear -> Leotp_net.Dynamic_path.Linear { substep = step /. 4.0 }

let run_path_trace ~mode ~file ~pair ~isls ~horizon ~step ~route_epoch ~interp
    ~seed =
  match mode with
  | `Gen -> (
    let src, dst = pair in
    let spec = { Pathtrace.src; dst; isls; horizon; step; route_epoch; seed } in
    Printf.printf "\n=== path-trace gen: %s -> %s (%s) %.0fs @ %gs, seed %d ===\n%!"
      src dst
      (if isls then "isls" else "bent-pipe")
      horizon step seed;
    match Pathtrace.generate spec with
    | exception Not_found ->
      Printf.eprintf "--path-trace gen: unknown city in pair %S:%S\n" src dst;
      false
    | tr ->
      Path_trace.to_file tr file;
      Printf.printf
        "  wrote %d records to %s (handovers %d, outages %d, outage \
         fraction %.1f%%)\n"
        (List.length tr.Path_trace.records)
        file
        (Path_trace.handover_count tr)
        (List.length (Path_trace.outage_intervals tr))
        (100.0 *. Path_trace.outage_fraction tr);
      if Path_trace.route_count tr = 0 then begin
        Printf.printf "  no route records: skipping the live replay\n";
        true
      end
      else begin
        print_pathtrace_run ~tag:"live"
          (Pathtrace.run ~interp:(interp_of ~step interp) tr);
        true
      end)
  | `Replay -> (
    match Path_trace.of_file file with
    | Error msg ->
      Printf.eprintf "--path-trace replay: %s: %s\n" file msg;
      false
    | Ok tr ->
      let m = tr.Path_trace.meta in
      Printf.printf
        "\n=== path-trace replay: %s -> %s (%s) %.0fs @ %gs, seed %d ===\n%!"
        m.Path_trace.src m.Path_trace.dst
        (if m.Path_trace.isls then "isls" else "bent-pipe")
        m.Path_trace.horizon m.Path_trace.step m.Path_trace.seed;
      if Path_trace.route_count tr = 0 then begin
        Printf.eprintf "--path-trace replay: trace has no route records\n";
        false
      end
      else begin
        print_pathtrace_run ~tag:"replay"
          (Pathtrace.run
             ~interp:(interp_of ~step:m.Path_trace.step interp)
             tr);
        true
      end)

(* ------------------------------------------------------------------ *)
(* Fuzz mode: random scenarios through the differential oracle
   (Leotp_check) and invariant checker, failures shrunk to a replay
   spec.  Deterministic in --seed; cells parallelize under --jobs. *)

let print_failure (f : Fuzz.failure) =
  Printf.printf "  FAIL %-10s seed=%d  (%d shrink runs)\n" f.Fuzz.protocol
    f.Fuzz.spec.Fuzz.seed f.Fuzz.shrink_runs;
  List.iter (fun p -> Printf.printf "    %s\n" p) f.Fuzz.problems;
  Printf.printf "    replay: --fuzz-replay '%s'\n"
    (Fuzz.replay_to_string ~protocol:f.Fuzz.protocol f.Fuzz.spec)

let run_fuzz ~cases ~seed =
  Printf.printf
    "\n=== fuzz: %d cases x (leotp + 7 TCP variants), seed %d ===\n%!" cases
    seed;
  let wall0 = Unix.gettimeofday () in
  let out = Fuzz.run ~seed ~cases () in
  Printf.printf
    "  %d runs, %d ack events checked by the oracle, %d failure(s) in %.1fs\n"
    out.Fuzz.runs out.Fuzz.oracle_acks
    (List.length out.Fuzz.failures)
    (Unix.gettimeofday () -. wall0);
  List.iter print_failure out.Fuzz.failures;
  out.Fuzz.failures = []

let run_fuzz_replay spec =
  match Fuzz.replay spec with
  | Error e ->
    Printf.eprintf "--fuzz-replay: %s\n" e;
    exit 1
  | Ok (protocol, s, problems) ->
    Printf.printf "\n=== fuzz replay: %s, seed %d ===\n" protocol s.Fuzz.seed;
    if problems = [] then begin
      print_endline "  clean: no oracle divergence, no invariant failure";
      true
    end
    else begin
      List.iter (fun p -> Printf.printf "  %s\n" p) problems;
      false
    end

let usage () =
  Printf.eprintf
    "usage: main.exe [--quick] [--jobs N] [--out-dir DIR] [--perf-smoke]\n\
    \       [--check] [--faults SPEC] [--trace] [--fuzz N] [--seed S]\n\
    \       [--fuzz-replay SPEC] [--manyflow N] [--shards K]\n\
    \       [--path-trace gen|replay] [--trace-file PATH] [--pair SRC:DST]\n\
    \       [--bent-pipe] [--horizon S] [--step S] [--route-epoch S]\n\
    \       [--interp hold|linear] [EXPERIMENT...]\n\
     known experiments: %s\n\
     --check        attach the invariant checker to every scenario (fail on violation)\n\
     --faults SPEC  run the fault lab; SPEC = '<t>@<verb>:<target>[=args];...' or random:SEED:N\n\
     --trace        run the fault lab and export its packet trace as JSONL\n\
     --fuzz N       run N random scenarios through the protocol oracle (exit 1 on divergence)\n\
     --seed S       root seed for --fuzz / --manyflow (default 7)\n\
     --manyflow N   run ~N open-loop flows over the live constellation\n\
    \                (writes BENCH_manyflow.json; exit 1 on invariant failure)\n\
     --shards K     fixed shard count for --manyflow (default 8; digests\n\
    \                depend on K but never on --jobs)\n\
     --fuzz-replay SPEC  re-run one spec printed by a failing --fuzz\n\
     --path-trace gen     sample the constellation into --trace-file\n\
    \                (TRACE_PATH jsonl), then replay it live and print the digest\n\
     --path-trace replay  replay an existing --trace-file and print the digest\n\
    \                (gen/replay digests must match; --seed seeds the generator)\n\
     --pair SRC:DST  city pair for --path-trace gen (default Beijing:New York)\n\
     --bent-pipe     disable ISLs for --path-trace gen (single-satellite relay)\n\
     --horizon S / --step S / --route-epoch S  gen horizon, sample step,\n\
    \                routing recompute quantum (defaults 3600 / 1 / 5)\n\
     --interp hold|linear  replay interpolation policy (default hold-last)\n\
     --gate FILE    after the experiments, compare minor_words_per_packet\n\
                    against FILE's baselines; exit 1 on regression\n"
    (String.concat ", " (List.map fst all_experiments));
  exit 1

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = ref false in
  let jobs = ref 1 in
  let out_dir = ref "." in
  let perf_smoke = ref false in
  let check = ref false in
  let faults_spec = ref None in
  let trace_flag = ref false in
  let fuzz_cases = ref None in
  let fuzz_seed = ref 7 in
  let fuzz_replay = ref None in
  let gate = ref None in
  let manyflow = ref None in
  let shards = ref 8 in
  let pt_mode = ref None in
  let pt_file = ref "TRACE_path.jsonl" in
  let pt_pair = ref (Pathtrace.default.Pathtrace.src, Pathtrace.default.Pathtrace.dst) in
  let pt_isls = ref true in
  let pt_horizon = ref Pathtrace.default.Pathtrace.horizon in
  let pt_step = ref Pathtrace.default.Pathtrace.step in
  let pt_epoch = ref Pathtrace.default.Pathtrace.route_epoch in
  let pt_interp = ref `Hold in
  let selected = ref [] in
  let positive_float flag s k =
    match float_of_string_opt s with
    | Some v when v > 0.0 && Float.is_finite v -> k v
    | _ ->
      Printf.eprintf "%s expects a positive number, got %S\n" flag s;
      usage ()
  in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--check" :: rest ->
      check := true;
      parse rest
    | "--faults" :: spec :: rest ->
      faults_spec := Some spec;
      parse rest
    | "--trace" :: rest ->
      trace_flag := true;
      parse rest
    | "--perf-smoke" :: rest ->
      perf_smoke := true;
      parse rest
    | "--fuzz" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        fuzz_cases := Some n;
        parse rest
      | _ ->
        Printf.eprintf "--fuzz expects a positive integer, got %S\n" n;
        usage ())
    | "--seed" :: s :: rest -> (
      match int_of_string_opt s with
      | Some s ->
        fuzz_seed := s;
        parse rest
      | _ ->
        Printf.eprintf "--seed expects an integer, got %S\n" s;
        usage ())
    | "--fuzz-replay" :: spec :: rest ->
      fuzz_replay := Some spec;
      parse rest
    | "--path-trace" :: mode :: rest -> (
      match mode with
      | "gen" ->
        pt_mode := Some `Gen;
        parse rest
      | "replay" ->
        pt_mode := Some `Replay;
        parse rest
      | _ ->
        Printf.eprintf "--path-trace expects 'gen' or 'replay', got %S\n" mode;
        usage ())
    | "--trace-file" :: path :: rest ->
      pt_file := path;
      parse rest
    | "--pair" :: pair :: rest -> (
      match String.index_opt pair ':' with
      | Some i when i > 0 && i < String.length pair - 1 ->
        pt_pair :=
          ( String.sub pair 0 i,
            String.sub pair (i + 1) (String.length pair - i - 1) );
        parse rest
      | _ ->
        Printf.eprintf "--pair expects \"SRC:DST\", got %S\n" pair;
        usage ())
    | "--bent-pipe" :: rest ->
      pt_isls := false;
      parse rest
    | "--horizon" :: s :: rest ->
      positive_float "--horizon" s (fun v ->
          pt_horizon := v;
          parse rest)
    | "--step" :: s :: rest ->
      positive_float "--step" s (fun v ->
          pt_step := v;
          parse rest)
    | "--route-epoch" :: s :: rest ->
      positive_float "--route-epoch" s (fun v ->
          pt_epoch := v;
          parse rest)
    | "--interp" :: policy :: rest -> (
      match policy with
      | "hold" ->
        pt_interp := `Hold;
        parse rest
      | "linear" ->
        pt_interp := `Linear;
        parse rest
      | _ ->
        Printf.eprintf "--interp expects 'hold' or 'linear', got %S\n" policy;
        usage ())
    | "--manyflow" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        manyflow := Some n;
        parse rest
      | _ ->
        Printf.eprintf "--manyflow expects a positive integer, got %S\n" n;
        usage ())
    | "--shards" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        shards := n;
        parse rest
      | _ ->
        Printf.eprintf "--shards expects a positive integer, got %S\n" n;
        usage ())
    | "--gate" :: path :: rest ->
      if not (Sys.file_exists path) then begin
        Printf.eprintf "--gate %S does not exist\n" path;
        usage ()
      end;
      gate := Some path;
      parse rest
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        jobs := n;
        parse rest
      | _ ->
        Printf.eprintf "--jobs expects a positive integer, got %S\n" n;
        usage ())
    | "--out-dir" :: dir :: rest ->
      (* Fail before the experiments run, not at the first write. *)
      if not (Sys.file_exists dir && Sys.is_directory dir) then begin
        Printf.eprintf "--out-dir %S is not an existing directory\n" dir;
        usage ()
      end;
      out_dir := dir;
      parse rest
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
      Printf.eprintf "unknown option %S\n" arg;
      usage ()
    | name :: rest ->
      if List.mem_assoc name all_experiments then begin
        selected := name :: !selected;
        parse rest
      end
      else begin
        Printf.eprintf "unknown experiment %S\n" name;
        usage ()
      end
  in
  parse args;
  if !perf_smoke then quick := true;
  Runner.set_jobs !jobs;
  if !check then Atomic.set Invariants.self_check true;
  (match !fuzz_replay with
  | Some spec -> exit (if run_fuzz_replay spec then 0 else 1)
  | None -> ());
  (match !fuzz_cases with
  | Some cases ->
    let ok = run_fuzz ~cases ~seed:!fuzz_seed in
    if not ok then exit 1;
    (* Like the fault lab, --fuzz replaces the experiment sweep unless
       experiments were selected alongside it. *)
    if !selected = [] && !faults_spec = None && not !trace_flag then exit 0
  | None -> ());
  (match !manyflow with
  | Some flows ->
    let ok =
      run_manyflow ~quick:!quick ~out_dir:!out_dir ~flows ~seed:!fuzz_seed
        ~shards:!shards ~gate:!gate
    in
    if not ok then exit 1;
    (* Like --fuzz, --manyflow replaces the experiment sweep unless
       experiments were selected alongside it. *)
    if !selected = [] && !faults_spec = None && not !trace_flag then exit 0
  | None -> ());
  if !faults_spec <> None || !trace_flag then begin
    let ok =
      run_fault_lab ~quick:!quick ~out_dir:!out_dir ~spec:!faults_spec
        ~trace_wanted:!trace_flag
    in
    if not ok then exit 1;
    (* The fault lab replaces the experiment sweep unless some were
       explicitly selected alongside it. *)
    if !selected = [] then exit 0
  end;
  (match !pt_mode with
  | Some mode ->
    let src, dst = !pt_pair in
    let ok =
      run_path_trace ~mode ~file:!pt_file ~pair:(src, dst) ~isls:!pt_isls
        ~horizon:!pt_horizon ~step:!pt_step ~route_epoch:!pt_epoch
        ~interp:!pt_interp ~seed:!fuzz_seed
    in
    if not ok then exit 1;
    (* Like the fault lab, --path-trace replaces the experiment sweep
       unless some were explicitly selected alongside it. *)
    if !selected = [] then exit 0
  | None -> ());
  let to_run =
    if !perf_smoke then
      List.filter (fun (id, _) -> List.mem id perf_smoke_ids) all_experiments
    else
      match List.rev !selected with
      | [] -> all_experiments
      | names ->
        List.map (fun name -> (name, List.assoc name all_experiments)) names
  in
  Printf.printf "LEOTP reproduction benchmarks%s (jobs=%d)\n"
    (if !quick then " (quick mode)" else "")
    !jobs;
  let perfs =
    List.map (run_instrumented ~quick:!quick ~out_dir:!out_dir) to_run
  in
  if !perf_smoke then begin
    print_endline "\n=== perf smoke summary ===";
    List.iter (fun p -> print_string (json_of_perf p)) perfs
  end;
  match !gate with
  | Some path -> if not (run_gate ~path perfs) then exit 1
  | None -> ()
