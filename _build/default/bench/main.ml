(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation.

   Usage:
     dune exec bench/main.exe                  # everything, full size
     dune exec bench/main.exe -- --quick       # shrunk runs
     dune exec bench/main.exe -- fig12 table2  # selected experiments
     dune exec bench/main.exe -- fig19         # Bechamel CPU micro-bench

   Absolute numbers are not expected to match the authors' testbed; the
   qualitative shape (who wins, by roughly what factor, where crossovers
   fall) is the reproduction target.  See EXPERIMENTS.md for the
   paper-vs-measured record. *)

module E = Leotp_scenario.Experiments
module S = Leotp_scenario.Starlink

(* ------------------------------------------------------------------ *)
(* Fig 19: Midnode CPU overhead, as per-packet processing cost          *)
(* (Bechamel micro-benchmarks; flat-in-PLR is the paper's claim).       *)

let config = Leotp.Config.default
let bench_mss = config.Leotp.Config.mss

(* Feed a pre-built stream of 256 data packets (with [plr] of them
   missing, which exercises SHR hole tracking and VPH generation)
   through a fresh Midnode handler. *)
let midnode_stream ~plr () =
  let engine = Leotp_sim.Engine.create () in
  let node = Leotp_net.Node.create ~name:"mid" in
  let (_ : Leotp.Midnode.t) = Leotp.Midnode.create engine ~config ~node () in
  let rng = Leotp_util.Rng.create ~seed:1 in
  let stream =
    List.filter_map
      (fun i ->
        if Leotp_util.Rng.bernoulli rng plr then None
        else
          Some
            (Leotp.Wire.data_packet ~config ~src:99 ~dst:98
               ~name:
                 { Leotp.Wire.flow = 7; lo = i * bench_mss; hi = (i + 1) * bench_mss }
               ~timestamp:0.0 ~req_owd:0.001 ~first_sent:0.0 ~retx:false))
      (List.init 256 Fun.id)
  in
  fun () -> List.iter (fun pkt -> Leotp_net.Node.receive node ~from:1 pkt) stream

let cache_ops () =
  let cache = Leotp.Cache.create ~config in
  fun () ->
    for i = 0 to 255 do
      Leotp.Cache.insert cache ~flow:1 ~lo:(i * 1400) ~hi:((i + 1) * 1400)
        ~first_sent:0.0 ~retx:false
    done;
    for i = 0 to 255 do
      ignore (Leotp.Cache.lookup cache ~flow:1 ~lo:(i * 1400) ~hi:((i + 1) * 1400))
    done

let fig19_tests =
  let open Bechamel in
  [
    Test.make ~name:"midnode/256pkt/plr=0" (Staged.stage (midnode_stream ~plr:0.0 ()));
    Test.make ~name:"midnode/256pkt/plr=1%" (Staged.stage (midnode_stream ~plr:0.01 ()));
    Test.make ~name:"midnode/256pkt/plr=5%" (Staged.stage (midnode_stream ~plr:0.05 ()));
    Test.make ~name:"cache/256 insert+lookup" (Staged.stage (cache_ops ()));
  ]

let fig19 () =
  print_endline "\n=== Fig 19: Midnode per-packet processing cost ===";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let res = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ ns_per_run ] ->
            Printf.printf "  %-26s %8.3f us/packet\n" name
              (ns_per_run /. 256.0 /. 1000.0)
          | _ -> Printf.printf "  %-26s <no estimate>\n" name)
        res)
    fig19_tests;
  print_endline
    "  (flat across PLR = the paper's Fig 19 claim: cost dominated by per-packet work)"

(* ------------------------------------------------------------------ *)

let all_experiments =
  [
    ("fig2", fun ~quick -> ignore (E.fig02 ~quick ()));
    ("fig3", fun ~quick:_ -> ignore (E.fig03 ()));
    ("fig4", fun ~quick -> ignore (E.fig04 ~quick ()));
    ("fig5", fun ~quick -> ignore (E.fig05 ~quick ()));
    ("fig10", fun ~quick -> ignore (E.fig10 ~quick ()));
    ("fig11", fun ~quick -> ignore (E.fig11 ~quick ()));
    ("fig12", fun ~quick -> ignore (E.fig12 ~quick ()));
    ("fig13", fun ~quick -> ignore (E.fig13 ~quick ()));
    ("fig14", fun ~quick -> ignore (E.fig14 ~quick ()));
    ("fig15", fun ~quick -> ignore (E.fig15 ~quick ()));
    ("fig16", fun ~quick -> ignore (S.fig16 ~quick ()));
    ("fig17", fun ~quick -> ignore (S.fig17 ~quick ()));
    ("fig18", fun ~quick -> ignore (S.fig18 ~quick ()));
    ("table2", fun ~quick -> ignore (S.table2 ~quick ()));
    ("fig19", fun ~quick:_ -> fig19 ());
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let selected = List.filter (fun a -> a <> "--quick") args in
  let to_run =
    if selected = [] then all_experiments
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt name all_experiments with
          | Some f -> Some (name, f)
          | None ->
            Printf.eprintf "unknown experiment %S (known: %s)\n" name
              (String.concat ", " (List.map fst all_experiments));
            exit 1)
        selected
  in
  Printf.printf "LEOTP reproduction benchmarks%s\n"
    (if quick then " (quick mode)" else "");
  List.iter
    (fun (name, f) ->
      let t0 = Sys.time () in
      f ~quick;
      Printf.printf "  [%s done in %.1fs cpu]\n%!" name (Sys.time () -. t0))
    to_run
