(* Partial Midnode deployment (paper §V-C: "LEOTP can achieve good
   performance with the assistance of a small amount of LEO satellites"):
   sweep the fraction of satellites that run a LEOTP Midnode and watch
   throughput and delay.

     dune exec examples/partial_coverage.exe *)

module C = Leotp_scenario.Common

let () =
  print_endline
    "Midnode coverage sweep on an 8-hop lossy path (20 Mbps, 1% loss/hop):";
  let hops = C.uniform_hops ~n:8 (C.link ~plr:0.01 ~bw:20.0 ~delay:0.01 ()) in
  List.iter
    (fun coverage ->
      let proto =
        if coverage = 0.0 then
          C.Leotp
            (Leotp.Config.with_ablation Leotp.Config.No_midnodes
               Leotp.Config.default)
        else C.Leotp_partial (Leotp.Config.default, coverage)
      in
      let s = C.run_chain ~duration:60.0 ~hops proto in
      Printf.printf
        "  coverage %3.0f%%: %5.2f Mbps, OWD mean %6.1f ms, %4d retransmissions\n"
        (coverage *. 100.0) s.C.goodput_mbps
        (Leotp_util.Stats.mean s.C.owd *. 1000.0)
        s.C.retransmissions)
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ];
  print_endline
    "(the paper's claim: ~25% coverage already recovers most of the benefit)"
