(* Transcontinental transfer over the emulated Starlink constellation —
   the paper's headline scenario (Beijing -> New York over ISLs).

     dune exec examples/transcontinental.exe
     dune exec examples/transcontinental.exe -- Beijing Paris

   Computes real orbital routes over the Walker shell (handover included),
   then races LEOTP against BBR on the identical time-varying path. *)

let () =
  let src, dst =
    match Sys.argv with
    | [| _; s; d |] -> (s, d)
    | _ -> ("Beijing", "New York")
  in
  Printf.printf "Route %s -> %s over the Starlink core shell (with ISLs)\n" src
    dst;
  let w = Leotp_constellation.Walker.create Leotp_constellation.Walker.starlink in
  let c_src = Leotp_constellation.Cities.find_exn src in
  let c_dst = Leotp_constellation.Cities.find_exn dst in
  (match
     Leotp_constellation.Path_service.route_with_isls w ~src:c_src ~dst:c_dst
       ~time:0.0 ()
   with
  | Some hops ->
    Printf.printf "  at t=0: %d hops, one-way propagation %.1f ms\n"
      (Leotp_constellation.Path_service.hop_count hops)
      (Leotp_constellation.Path_service.total_delay hops *. 1000.0)
  | None -> print_endline "  no route at t=0");
  let run proto =
    let r =
      Leotp_scenario.Starlink.run_pair ~quick:true ~src ~dst ~isls:true proto
    in
    Printf.printf
      "  %-8s throughput %.2f Mbps | OWD mean %.1f ms p99 %.1f ms | %d link switches\n"
      r.Leotp_scenario.Starlink.summary.Leotp_scenario.Common.protocol
      r.Leotp_scenario.Starlink.summary.Leotp_scenario.Common.goodput_mbps
      (Leotp_util.Stats.mean
         r.Leotp_scenario.Starlink.summary.Leotp_scenario.Common.owd
      *. 1000.0)
      (Leotp_util.Stats.percentile
         r.Leotp_scenario.Starlink.summary.Leotp_scenario.Common.owd 99.0
      *. 1000.0)
      r.Leotp_scenario.Starlink.switches
  in
  run (Leotp_scenario.Common.Leotp Leotp.Config.default);
  run (Leotp_scenario.Common.Tcp Leotp_tcp.Cc.Bbr)
