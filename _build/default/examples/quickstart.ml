(* Quickstart: fetch a 5 MB file with LEOTP over a lossy 5-hop satellite
   path and print what happened.

     dune exec examples/quickstart.exe

   This is the smallest end-to-end use of the public API: build a
   topology, put a Consumer and a Producer at the ends, Midnodes in the
   middle, run the discrete-event clock. *)

module Engine = Leotp_sim.Engine
module Topology = Leotp_net.Topology
module Bandwidth = Leotp_net.Bandwidth

let mbps = Leotp_util.Units.mbps_to_bytes_per_sec

let () =
  let engine = Engine.create () in
  let rng = Leotp_util.Rng.create ~seed:1 in

  (* A 5-hop path: 20 Mbps, 10 ms propagation and 1% loss per hop —
     LEO-like link quality. *)
  let hop =
    Topology.hop ~plr:0.01 ~bandwidth:(Bandwidth.Constant (mbps 20.0))
      ~delay:0.01 ()
  in
  let chain = Topology.chain engine ~rng (Array.make 5 hop) in

  (* LEOTP with default parameters: Consumer at one end, Producer at the
     other, a caching Midnode on every satellite in between. *)
  let config = Leotp.Config.default in
  let file_size = 5_000_000 in
  let session =
    Leotp.Session.over_chain engine ~config ~chain ~flow:1
      ~total_bytes:file_size ()
  in
  Leotp.Session.start session;
  Engine.run ~until:120.0 engine;

  let m = session.Leotp.Session.metrics in
  let owd = Leotp_net.Flow_metrics.owd m in
  Printf.printf "fetched   : %d / %d bytes (complete = %b)\n"
    (Leotp_net.Flow_metrics.app_bytes m)
    file_size
    (Leotp.Consumer.complete session.Leotp.Session.consumer);
  (match Leotp_net.Flow_metrics.completion_time m with
  | Some ct ->
    Printf.printf "duration  : %.2f s  (%.2f Mbps goodput)\n" ct
      (Leotp_util.Units.bytes_per_sec_to_mbps (float_of_int file_size /. ct))
  | None -> print_endline "duration  : did not finish");
  Printf.printf "owd       : mean %.1f ms, p99 %.1f ms (propagation floor 50 ms)\n"
    (Leotp_util.Stats.mean owd *. 1000.0)
    (Leotp_util.Stats.percentile owd 99.0 *. 1000.0);
  Printf.printf "retransmit: %d interests re-issued end-to-end\n"
    (Leotp_net.Flow_metrics.retransmissions m);
  List.iteri
    (fun i mid ->
      match Leotp.Midnode.flow_stats mid ~flow:1 with
      | Some fs ->
        Printf.printf
          "midnode %d : %d cache hits, %d SHR repairs requested, %d VPHs sent\n"
          (i + 1) fs.Leotp.Midnode.cache_hits fs.Leotp.Midnode.shr_interests
          fs.Leotp.Midnode.vph_sent
      | None -> ())
    session.Leotp.Session.midnodes
