(* Intra-protocol fairness (the paper's Fig 15 scenario): three flows with
   different RTTs share a 5 Mbps bottleneck, starting 80 s apart.

     dune exec examples/fairness.exe

   Compare LEOTP's RTT-independent sharing against BBR's RTT bias. *)

module C = Leotp_scenario.Common

let () =
  let run label proto =
    let summaries, series =
      C.run_flows_dumbbell ~duration:360.0
        ~access_delays:[ 0.015; 0.0225; 0.03 ] (* RTTs 90 / 120 / 150 ms *)
        ~bottleneck:(C.link ~bw:5.0 ~delay:0.015 ())
        ~access:(C.link ~bw:100.0 ~delay:0.0075 ())
        ~starts:[ 0.0; 80.0; 160.0 ] proto
    in
    let rates =
      List.map
        (fun s ->
          Leotp_util.Units.bytes_per_sec_to_mbps
            (Leotp_util.Timeseries.window_sum s.C.delivery ~lo:200.0 ~hi:360.0
            /. 160.0))
        summaries
    in
    Printf.printf "%s: steady-state shares = [%s] Mbps, Jain index = %.3f\n"
      label
      (String.concat "; " (List.map (Printf.sprintf "%.2f") rates))
      (Leotp_util.Stats.jain_index rates);
    (* A small convergence plot: flow throughput every 30 s. *)
    List.iteri
      (fun i s ->
        Printf.printf "  flow %d (RTT %3.0f ms): " (i + 1)
          (List.nth [ 90.0; 120.0; 150.0 ] i);
        List.iter
          (fun (t, v) ->
            if Float.rem t 30.0 < 5.0 then Printf.printf "%5.1f@%.0fs " v t)
          s;
        print_newline ())
      series
  in
  run "LEOTP" (C.Leotp Leotp.Config.default);
  run "BBR  " (C.Tcp Leotp_tcp.Cc.Bbr)
