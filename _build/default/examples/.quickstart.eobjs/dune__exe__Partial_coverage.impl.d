examples/partial_coverage.ml: Leotp Leotp_scenario Leotp_util List Printf
