examples/fairness.mli:
