examples/quickstart.ml: Array Leotp Leotp_net Leotp_sim Leotp_util List Printf
