examples/transcontinental.ml: Leotp Leotp_constellation Leotp_scenario Leotp_tcp Leotp_util Printf Sys
