examples/quickstart.mli:
