examples/multicast.mli:
