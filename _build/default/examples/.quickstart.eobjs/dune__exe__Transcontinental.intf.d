examples/transcontinental.mli:
