examples/fairness.ml: Float Leotp Leotp_scenario Leotp_tcp Leotp_util List Printf String
