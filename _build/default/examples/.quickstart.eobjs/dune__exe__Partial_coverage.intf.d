examples/partial_coverage.mli:
