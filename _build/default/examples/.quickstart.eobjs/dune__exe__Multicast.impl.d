examples/multicast.ml: Leotp Leotp_net Leotp_sim Leotp_util Printf
