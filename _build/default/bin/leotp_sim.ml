(* leotp_sim: command-line front end for the simulator.

   Subcommands:
     path      one flow over a static chain (any protocol)
     starlink  one flow over the emulated constellation between two cities
     fairness  three staggered flows on a dumbbell
     ablation  Table II configurations on one city pair
     route     print orbital routes for a city pair over time *)

open Cmdliner
module C = Leotp_scenario.Common

let protocol_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "leotp" -> Ok (C.Leotp Leotp.Config.default)
    | "leotp-b" | "leotp-no-cache" ->
      Ok (C.Leotp (Leotp.Config.with_ablation Leotp.Config.No_cache Leotp.Config.default))
    | "leotp-c" | "leotp-e2e-cc" ->
      Ok (C.Leotp (Leotp.Config.with_ablation Leotp.Config.E2e_cc Leotp.Config.default))
    | "leotp-d" | "leotp-e2e" ->
      Ok (C.Leotp (Leotp.Config.with_ablation Leotp.Config.No_midnodes Leotp.Config.default))
    | s when String.length s > 6 && String.sub s 0 6 = "split-" -> (
      match Leotp_tcp.Cc.algo_of_name (String.sub s 6 (String.length s - 6)) with
      | Some cc -> Ok (C.Split_tcp cc)
      | None -> Error (`Msg ("unknown split algorithm: " ^ s)))
    | s -> (
      match Leotp_tcp.Cc.algo_of_name s with
      | Some cc -> Ok (C.Tcp cc)
      | None -> Error (`Msg ("unknown protocol: " ^ s)))
  in
  let print ppf p = Format.pp_print_string ppf (C.protocol_name p) in
  Arg.conv (parse, print)

let protocol_arg =
  Arg.(
    value
    & opt protocol_conv (C.Leotp Leotp.Config.default)
    & info [ "p"; "protocol" ] ~docv:"PROTO"
        ~doc:
          "Transport: leotp, leotp-b/c/d (ablations), or a TCP variant \
           (newreno, cubic, hybla, westwood, vegas, bbr, pcc), optionally \
           prefixed with split- for Split TCP.")

let duration_arg =
  Arg.(value & opt float 60.0 & info [ "d"; "duration" ] ~docv:"SECONDS" ~doc:"Simulated duration.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let print_summary (s : C.summary) =
  Printf.printf "protocol      : %s\n" s.C.protocol;
  Printf.printf "goodput       : %.3f Mbps\n" s.C.goodput_mbps;
  Printf.printf "owd mean/p99  : %.1f / %.1f ms\n"
    (Leotp_util.Stats.mean s.C.owd *. 1000.0)
    (Leotp_util.Stats.percentile s.C.owd 99.0 *. 1000.0);
  Printf.printf "queuing mean  : %.1f ms\n"
    (Leotp_util.Stats.mean s.C.queuing_delay *. 1000.0);
  Printf.printf "retransmits   : %d\n" s.C.retransmissions;
  Printf.printf "wire bytes    : %d\n" s.C.wire_bytes;
  match s.C.completion_time with
  | Some t -> Printf.printf "completion    : %.2f s\n" t
  | None -> ()

let path_cmd =
  let hops = Arg.(value & opt int 5 & info [ "hops" ] ~docv:"N" ~doc:"Hop count.") in
  let bw = Arg.(value & opt float 20.0 & info [ "bw" ] ~docv:"MBPS" ~doc:"Per-hop bandwidth.") in
  let delay = Arg.(value & opt float 10.0 & info [ "delay" ] ~docv:"MS" ~doc:"Per-hop one-way delay (ms).") in
  let plr = Arg.(value & opt float 0.0 & info [ "plr" ] ~docv:"P" ~doc:"Per-hop loss rate (0-1).") in
  let bytes = Arg.(value & opt (some int) None & info [ "bytes" ] ~docv:"N" ~doc:"Fixed transfer size (bulk flow if absent).") in
  let run proto hops bw delay plr bytes duration seed =
    let s =
      C.run_chain ~seed ?bytes ~duration
        ~hops:(C.uniform_hops ~n:hops (C.link ~plr ~bw ~delay:(delay /. 1000.0) ()))
        proto
    in
    print_summary s
  in
  Cmd.v (Cmd.info "path" ~doc:"One flow over a static chain.")
    Term.(const run $ protocol_arg $ hops $ bw $ delay $ plr $ bytes $ duration_arg $ seed_arg)

let starlink_cmd =
  let src = Arg.(value & pos 0 string "Beijing" & info [] ~docv:"SRC") in
  let dst = Arg.(value & pos 1 string "New York" & info [] ~docv:"DST") in
  let isls = Arg.(value & flag & info [ "no-isls" ] ~doc:"Disable inter-satellite links (bent-pipe only).") in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Shorter run.") in
  let run proto src dst no_isls quick seed =
    let r = Leotp_scenario.Starlink.run_pair ~quick ~seed ~src ~dst ~isls:(not no_isls) proto in
    Printf.printf "route         : mean %.1f hops, min propagation %.1f ms, %d switches\n"
      r.Leotp_scenario.Starlink.mean_hops
      (r.Leotp_scenario.Starlink.min_propagation *. 1000.0)
      r.Leotp_scenario.Starlink.switches;
    print_summary r.Leotp_scenario.Starlink.summary
  in
  Cmd.v (Cmd.info "starlink" ~doc:"One flow over the emulated constellation.")
    Term.(const run $ protocol_arg $ src $ dst $ isls $ quick $ seed_arg)

let fairness_cmd =
  let same_rtt = Arg.(value & flag & info [ "same-rtt" ] ~doc:"All flows share one RTT (default: 90/120/150 ms).") in
  let run proto same_rtt duration =
    let access_delays =
      if same_rtt then [ 0.0075; 0.0075; 0.0075 ] else [ 0.015; 0.0225; 0.03 ]
    in
    let starts = [ 0.0; duration /. 4.0; duration /. 2.0 ] in
    let summaries, _ =
      C.run_flows_dumbbell ~duration ~access_delays
        ~bottleneck:(C.link ~bw:5.0 ~delay:0.015 ())
        ~access:(C.link ~bw:100.0 ~delay:0.0075 ())
        ~starts proto
    in
    let lo = List.nth starts 2 +. 20.0 in
    let rates =
      List.map
        (fun s ->
          Leotp_util.Units.bytes_per_sec_to_mbps
            (Leotp_util.Timeseries.window_sum s.C.delivery ~lo ~hi:duration
            /. (duration -. lo)))
        summaries
    in
    List.iteri (fun i r -> Printf.printf "flow %d: %.3f Mbps\n" (i + 1) r) rates;
    Printf.printf "jain index: %.3f\n" (Leotp_util.Stats.jain_index rates)
  in
  Cmd.v (Cmd.info "fairness" ~doc:"Three staggered flows on a dumbbell.")
    Term.(const run $ protocol_arg $ same_rtt $ duration_arg)

let ablation_cmd =
  let src = Arg.(value & pos 0 string "Beijing" & info [] ~docv:"SRC") in
  let dst = Arg.(value & pos 1 string "Hong Kong" & info [] ~docv:"DST") in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Shorter run.") in
  let run src dst quick =
    List.iter
      (fun (label, ablation) ->
        let cfg = Leotp.Config.with_ablation ablation Leotp.Config.default in
        let r =
          Leotp_scenario.Starlink.run_pair ~quick ~src ~dst ~isls:true
            (C.Leotp cfg)
        in
        Printf.printf "%s: %.2f Mbps, OWD %.1f ms\n" label
          r.Leotp_scenario.Starlink.summary.C.goodput_mbps
          (Leotp_util.Stats.mean r.Leotp_scenario.Starlink.summary.C.owd *. 1000.0))
      [
        ("A (full)        ", Leotp.Config.Full);
        ("B (no cache)    ", Leotp.Config.No_cache);
        ("C (e2e cc)      ", Leotp.Config.E2e_cc);
        ("D (no midnodes) ", Leotp.Config.No_midnodes);
      ]
  in
  Cmd.v (Cmd.info "ablation" ~doc:"Table II ablations on a city pair.")
    Term.(const run $ src $ dst $ quick)

let route_cmd =
  let src = Arg.(value & pos 0 string "Beijing" & info [] ~docv:"SRC") in
  let dst = Arg.(value & pos 1 string "New York" & info [] ~docv:"DST") in
  let run src dst duration =
    let w = Leotp_constellation.Walker.create Leotp_constellation.Walker.starlink in
    let c1 = Leotp_constellation.Cities.find_exn src in
    let c2 = Leotp_constellation.Cities.find_exn dst in
    let snaps =
      Leotp_constellation.Path_service.snapshots w ~src:c1 ~dst:c2 ~isls:true
        ~t_end:duration ~step:10.0
    in
    List.iter
      (fun (t, hops) ->
        Printf.printf "t=%5.0fs: %2d hops, %.1f ms one-way\n" t
          (Leotp_constellation.Path_service.hop_count hops)
          (Leotp_constellation.Path_service.total_delay hops *. 1000.0))
      snaps
  in
  Cmd.v (Cmd.info "route" ~doc:"Print orbital routes for a city pair over time.")
    Term.(const run $ src $ dst $ duration_arg)

let () =
  let info =
    Cmd.info "leotp_sim" ~version:"1.0.0"
      ~doc:"LEOTP: information-centric transport for LEO satellite networks (simulator)"
  in
  exit (Cmd.eval (Cmd.group info [ path_cmd; starlink_cmd; fairness_cmd; ablation_cmd; route_cmd ]))
