(* Tests for the analytic retransmission model (paper §II-B, Fig 3).
   Several expectations are the paper's own worked numbers. *)

open Leotp_theory

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

let test_e2e_plr () =
  close "single hop" 0.005 (Retrans.e2e_plr ~p:0.005 ~hops:1);
  close ~eps:1e-12 "exact 10 hops"
    (1.0 -. (0.995 ** 10.0))
    (Retrans.e2e_plr ~p:0.005 ~hops:10);
  close "approx Np" 0.05 (Retrans.e2e_plr_approx ~p:0.005 ~hops:10);
  (* Paper §II-A: "once ISLs are enabled, the end-to-end PLR ... reach up
     to 5%" for 10 hops at 0.5%/hop (approx). *)
  Alcotest.(check bool)
    "approx upper-bounds exact" true
    (Retrans.e2e_plr_approx ~p:0.005 ~hops:10
    >= Retrans.e2e_plr ~p:0.005 ~hops:10)

let test_paper_worked_example () =
  (* §II-B: "when N = 10, p = 0.5%, hop-by-hop retransmission achieves
     4.7% higher theoretical throughput and 8.7% lower average OWD". *)
  let gain = Retrans.throughput_gain ~p:0.005 ~hops:10 in
  close ~eps:5e-4 "throughput +4.7%" 1.047 gain;
  let ratio = Retrans.owd_ratio ~p:0.005 ~hops:10 in
  close ~eps:2e-3 "OWD -8.7%" 0.913 ratio

let test_owd_means () =
  (* p = 0: both schemes are pure propagation. *)
  close "e2e lossless" 0.1 (Retrans.owd_e2e ~p:0.0 ~hops:10 ~d:0.01);
  close "hbh lossless" 0.1 (Retrans.owd_hbh ~p:0.0 ~hops:10 ~d:0.01);
  (* Single hop: identical by construction. *)
  close ~eps:1e-12 "N=1 equal"
    (Retrans.owd_e2e ~p:0.01 ~hops:1 ~d:0.01)
    (Retrans.owd_hbh ~p:0.01 ~hops:1 ~d:0.01);
  (* Multi-hop and lossy: hbh is strictly better. *)
  Alcotest.(check bool)
    "hbh < e2e" true
    (Retrans.owd_hbh ~p:0.005 ~hops:10 ~d:0.01
    < Retrans.owd_e2e ~p:0.005 ~hops:10 ~d:0.01)

let test_throughput () =
  close "e2e" 9.5 (Retrans.throughput_e2e ~p:0.005 ~hops:10 ~b:10.0);
  close "hbh" 9.95 (Retrans.throughput_hbh ~p:0.005 ~b:10.0);
  Alcotest.(check bool)
    "hbh wins" true
    (Retrans.throughput_hbh ~p:0.005 ~b:10.0
    > Retrans.throughput_e2e ~p:0.005 ~hops:10 ~b:10.0)

let total_mass dist = List.fold_left (fun a (_, pr) -> a +. pr) 0.0 dist

let test_dist_mass () =
  let e2e = Retrans.Owd_dist.e2e ~p:0.005 ~hops:10 ~d:0.01 in
  let hbh = Retrans.Owd_dist.hbh ~p:0.005 ~hops:10 ~d:0.01 in
  close ~eps:1e-6 "e2e mass" 1.0 (total_mass e2e);
  close ~eps:1e-6 "hbh mass" 1.0 (total_mass hbh)

let test_fig3_percentiles () =
  (* Fig 3's setting: 10 hops, 0.5% PLR, 10 ms per hop.  Paper: e2e 99th
     percentile 300 ms; hbh 99th percentile 120 ms. *)
  let e2e = Retrans.Owd_dist.e2e ~p:0.005 ~hops:10 ~d:0.01 in
  let hbh = Retrans.Owd_dist.hbh ~p:0.005 ~hops:10 ~d:0.01 in
  close ~eps:1e-9 "e2e p99 = 300ms" 0.3 (Retrans.Owd_dist.percentile e2e 99.0);
  close ~eps:1e-9 "hbh p99 = 120ms" 0.12 (Retrans.Owd_dist.percentile hbh 99.0);
  (* Paper: maximum over 100000 packets is 700 ms e2e / 160 ms hbh;
     equivalently the ~(1 - 1e-5) quantiles. *)
  close ~eps:1e-9 "e2e p99.999 = 700ms" 0.7
    (Retrans.Owd_dist.percentile e2e 99.999);
  close ~eps:0.021 "hbh p99.999 ~ 160ms" 0.16
    (Retrans.Owd_dist.percentile hbh 99.999)

let test_dist_means_match_closed_form () =
  (* The exact-distribution mean should approximate the closed forms
     (which use the Np approximation for e2e). *)
  let hbh = Retrans.Owd_dist.hbh ~p:0.005 ~hops:10 ~d:0.01 in
  close ~eps:1e-6 "hbh mean exact"
    (Retrans.owd_hbh ~p:0.005 ~hops:10 ~d:0.01)
    (Retrans.Owd_dist.mean hbh);
  let e2e = Retrans.Owd_dist.e2e ~p:0.005 ~hops:10 ~d:0.01 in
  let closed = Retrans.owd_e2e ~p:0.005 ~hops:10 ~d:0.01 in
  Alcotest.(check bool)
    "e2e mean within 1% of closed form" true
    (Float.abs (Retrans.Owd_dist.mean e2e -. closed) /. closed < 0.01)

let test_sampling_agrees () =
  let rng = Leotp_util.Rng.create ~seed:3 in
  let dist = Retrans.Owd_dist.hbh ~p:0.02 ~hops:5 ~d:0.01 in
  let n = 50_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Retrans.Owd_dist.sample dist rng
  done;
  let mc_mean = !acc /. float_of_int n in
  Alcotest.(check bool)
    "Monte Carlo mean matches" true
    (Float.abs (mc_mean -. Retrans.Owd_dist.mean dist)
     /. Retrans.Owd_dist.mean dist
    < 0.01)

let monotone_prop =
  let open QCheck2 in
  Test.make ~name:"gain grows with p and hops" ~count:100
    Gen.(pair (float_range 0.0001 0.009) (int_range 2 10))
    (fun (p, hops) ->
      Retrans.throughput_gain ~p ~hops >= 1.0
      && Retrans.throughput_gain ~p ~hops:(hops + 1)
         >= Retrans.throughput_gain ~p ~hops
      && Retrans.owd_ratio ~p ~hops <= 1.0)

let dist_mass_prop =
  let open QCheck2 in
  Test.make ~name:"distributions are probability measures" ~count:50
    Gen.(pair (float_range 0.0 0.05) (int_range 1 12))
    (fun (p, hops) ->
      let m1 = total_mass (Retrans.Owd_dist.e2e ~p ~hops ~d:0.01) in
      let m2 = total_mass (Retrans.Owd_dist.hbh ~p ~hops ~d:0.01) in
      Float.abs (m1 -. 1.0) < 1e-6 && Float.abs (m2 -. 1.0) < 1e-6)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "leotp_theory"
    [
      ( "retrans",
        [
          Alcotest.test_case "e2e plr" `Quick test_e2e_plr;
          Alcotest.test_case "paper worked example" `Quick
            test_paper_worked_example;
          Alcotest.test_case "owd means" `Quick test_owd_means;
          Alcotest.test_case "throughput" `Quick test_throughput;
          qc monotone_prop;
        ] );
      ( "owd_dist",
        [
          Alcotest.test_case "mass" `Quick test_dist_mass;
          Alcotest.test_case "Fig 3 percentiles" `Quick test_fig3_percentiles;
          Alcotest.test_case "means match closed form" `Quick
            test_dist_means_match_closed_form;
          Alcotest.test_case "sampling agrees" `Quick test_sampling_agrees;
          qc dist_mass_prop;
        ] );
    ]
