test/test_constellation.ml: Alcotest Array Cities Float Gen Geo Leotp_constellation Leotp_util List Path_service Printf QCheck2 QCheck_alcotest Routing Test Walker
