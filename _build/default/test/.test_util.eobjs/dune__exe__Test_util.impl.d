test/test_util.ml: Alcotest Array Float Gen Int Interval_set Leotp_util List Lru Pqueue QCheck2 QCheck_alcotest Rng Rto Stats Test Timeseries Token_bucket Windowed_min
