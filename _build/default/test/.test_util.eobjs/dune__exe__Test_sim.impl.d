test/test_sim.ml: Alcotest Engine Float Leotp_sim Leotp_util List
