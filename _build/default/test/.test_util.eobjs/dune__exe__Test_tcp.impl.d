test/test_tcp.ml: Alcotest Array Cc Gen Leotp_net Leotp_sim Leotp_tcp Leotp_util List Printf QCheck2 QCheck_alcotest Receiver Sender Session Split Test Wire
