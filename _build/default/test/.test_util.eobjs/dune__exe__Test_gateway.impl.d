test/test_gateway.ml: Alcotest Array Leotp Leotp_gateway Leotp_net Leotp_sim Leotp_tcp Leotp_util Printf
