test/test_net.ml: Alcotest Array Bandwidth Dynamic_path Float Flow_metrics Leotp_net Leotp_sim Leotp_util Link List Node Packet Printf Topology
