test/test_scenario.ml: Alcotest Leotp Leotp_net Leotp_scenario Leotp_tcp Leotp_util List Printf
