test/test_leotp.mli:
