test/test_theory.ml: Alcotest Float Gen Leotp_theory Leotp_util List QCheck2 QCheck_alcotest Retrans Test
