test/test_constellation.mli:
