test/test_gateway.mli:
