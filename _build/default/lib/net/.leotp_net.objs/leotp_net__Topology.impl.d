lib/net/topology.ml: Array Bandwidth Leotp_util Link Node Printf
