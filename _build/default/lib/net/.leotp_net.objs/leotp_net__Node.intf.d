lib/net/node.mli: Link Packet
