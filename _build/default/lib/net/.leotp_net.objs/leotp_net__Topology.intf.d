lib/net/topology.mli: Bandwidth Leotp_sim Leotp_util Link Node
