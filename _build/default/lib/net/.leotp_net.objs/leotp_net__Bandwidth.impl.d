lib/net/bandwidth.ml: Array Float Leotp_util
