lib/net/link.mli: Bandwidth Leotp_sim Leotp_util Packet
