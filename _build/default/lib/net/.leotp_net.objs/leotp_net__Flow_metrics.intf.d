lib/net/flow_metrics.mli: Leotp_util
