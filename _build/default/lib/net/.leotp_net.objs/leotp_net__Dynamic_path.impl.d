lib/net/dynamic_path.ml: Array Bandwidth Float Leotp_sim Link List Topology
