lib/net/link.ml: Bandwidth Float Leotp_sim Leotp_util Packet Queue
