lib/net/flow_metrics.ml: Leotp_util
