lib/net/dynamic_path.mli: Bandwidth Leotp_sim Leotp_util Topology
