type hop_spec = {
  bandwidth : Bandwidth.t;
  rev_bandwidth : Bandwidth.t option;
  delay : float;
  plr : float;
  buffer_bytes : int;
}

let hop ?rev_bandwidth ?(plr = 0.0) ?(buffer_bytes = 256 * 1024) ~bandwidth
    ~delay () =
  { bandwidth; rev_bandwidth; delay; plr; buffer_bytes }

type duplex = { fwd : Link.t; rev : Link.t }

let connect engine ~rng a b spec =
  let mk ~name ~src_node ~dst_node ~bandwidth =
    let link =
      Link.create engine ~name ~src:(Node.id src_node) ~dst:(Node.id dst_node)
        ~bandwidth ~delay:spec.delay ~plr:spec.plr
        ~buffer_bytes:spec.buffer_bytes
        ~rng:(Leotp_util.Rng.substream rng name)
        ()
    in
    Link.set_sink link (fun pkt ->
        Node.receive dst_node ~from:(Node.id src_node) pkt);
    link
  in
  let fwd =
    mk
      ~name:(Printf.sprintf "%s->%s" (Node.name a) (Node.name b))
      ~src_node:a ~dst_node:b ~bandwidth:spec.bandwidth
  in
  let rev_bw =
    match spec.rev_bandwidth with Some b -> b | None -> spec.bandwidth
  in
  let rev =
    mk
      ~name:(Printf.sprintf "%s->%s" (Node.name b) (Node.name a))
      ~src_node:b ~dst_node:a ~bandwidth:rev_bw
  in
  { fwd; rev }

type chain = { nodes : Node.t array; hops : duplex array }

let chain engine ~rng specs =
  let n = Array.length specs in
  let nodes =
    Array.init (n + 1) (fun i -> Node.create ~name:(Printf.sprintf "n%d" i))
  in
  let hops =
    Array.init n (fun i -> connect engine ~rng nodes.(i) nodes.(i + 1) specs.(i))
  in
  (* Routing along the line: from node i, any node j > i goes over hop i's
     forward link, any j < i over hop (i-1)'s reverse link. *)
  for i = 0 to n do
    for j = 0 to n do
      if j > i then Node.add_route nodes.(i) ~dst:(Node.id nodes.(j)) hops.(i).fwd
      else if j < i then
        Node.add_route nodes.(i) ~dst:(Node.id nodes.(j)) hops.(i - 1).rev
    done
  done;
  { nodes; hops }

type dumbbell = {
  senders : Node.t array;
  receivers : Node.t array;
  left : Node.t;
  right : Node.t;
  bottleneck : duplex;
  sender_links : duplex array;
  receiver_links : duplex array;
}

let dumbbell engine ~rng ~access ~bottleneck:bspec =
  let n = Array.length access in
  let senders =
    Array.init n (fun i -> Node.create ~name:(Printf.sprintf "s%d" i))
  in
  let receivers =
    Array.init n (fun i -> Node.create ~name:(Printf.sprintf "r%d" i))
  in
  let left = Node.create ~name:"L" and right = Node.create ~name:"R" in
  let bottleneck = connect engine ~rng left right bspec in
  let sender_links =
    Array.init n (fun i -> connect engine ~rng senders.(i) left access.(i))
  in
  let receiver_links =
    Array.init n (fun i -> connect engine ~rng right receivers.(i) access.(i))
  in
  for i = 0 to n - 1 do
    let s = senders.(i) and r = receivers.(i) in
    (* Sender i -> its access link for everything. *)
    Node.add_route s ~dst:(Node.id r) sender_links.(i).fwd;
    Node.add_route s ~dst:(Node.id right) sender_links.(i).fwd;
    Node.add_route s ~dst:(Node.id left) sender_links.(i).fwd;
    (* Receiver i -> back over its access link. *)
    Node.add_route r ~dst:(Node.id s) receiver_links.(i).rev;
    Node.add_route r ~dst:(Node.id left) receiver_links.(i).rev;
    Node.add_route r ~dst:(Node.id right) receiver_links.(i).rev;
    (* Left router. *)
    Node.add_route left ~dst:(Node.id s) sender_links.(i).rev;
    Node.add_route left ~dst:(Node.id r) bottleneck.fwd;
    (* Right router. *)
    Node.add_route right ~dst:(Node.id r) receiver_links.(i).fwd;
    Node.add_route right ~dst:(Node.id s) bottleneck.rev
  done;
  Node.add_route left ~dst:(Node.id right) bottleneck.fwd;
  Node.add_route right ~dst:(Node.id left) bottleneck.rev;
  { senders; receivers; left; right; bottleneck; sender_links; receiver_links }
