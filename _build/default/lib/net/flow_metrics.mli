(** Per-flow measurement record, shared across protocols so scenarios can
    compare LEOTP and TCP variants uniformly.

    OWD here is the application-level data-retrieval delay of a byte range:
    the time between the moment the range was first requested/sent and the
    moment it is delivered at the receiver — this is what the paper's OWD
    CDFs (Figs 3, 10, 16, 17) measure, and it includes retransmission
    delays. *)

type t

val create : flow:int -> t
val flow : t -> int

val on_send : t -> bytes:int -> unit
(** Origin sender put [bytes] on the wire (including retransmissions). *)

val on_retransmit : t -> unit

val on_deliver : t -> now:float -> bytes:int -> owd:float -> retx:bool -> unit
(** The receiver delivered [bytes] of new data to the application with
    one-way delay [owd]; [retx] marks data that needed retransmission. *)

val set_started : t -> float -> unit
val set_finished : t -> float -> unit
val app_bytes : t -> int
val wire_bytes_sent : t -> int
val retransmissions : t -> int
val owd : t -> Leotp_util.Stats.t
val retx_owd : t -> Leotp_util.Stats.t
val delivery : t -> Leotp_util.Timeseries.t
val started : t -> float
val finished : t -> float option

val completion_time : t -> float option
val goodput : t -> lo:float -> hi:float -> float
(** Application bytes/second delivered in the window. *)

val mean_throughput_mbps : t -> duration:float -> float
