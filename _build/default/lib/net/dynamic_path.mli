(** Time-varying linear path (link switching and rerouting).

    A chain is allocated with a fixed maximum hop count; reconfigurations
    change per-hop delay / bandwidth / loss over time.  When the new route
    has fewer hops than the chain, the surplus hops become "pass-through"
    (negligible delay, high rate, no loss) so transport objects survive the
    change — which is exactly the property LEOTP's connectionless design
    exploits, while TCP endpoints simply observe a changed end-to-end path.

    Any hop whose propagation delay changes by more than [switch_epsilon]
    is flushed: queued and in-flight packets are dropped, reproducing the
    paper's "link switching causes inevitable packet loss" (§V-B). *)

type hop_state = {
  delay : float;
  bandwidth : Bandwidth.t;
  plr : float;
}

type snapshot = hop_state array
(** Active hops, source side first; length <= max hops of the chain. *)

type t

val create :
  Leotp_sim.Engine.t ->
  rng:Leotp_util.Rng.t ->
  max_hops:int ->
  initial:snapshot ->
  ?buffer_bytes:int ->
  ?switch_epsilon:float ->
  unit ->
  t
(** Default [switch_epsilon] 50 microseconds; default buffer 256 KB. *)

val chain : t -> Topology.chain
val apply : t -> snapshot -> unit

val schedule : t -> (float * snapshot) list -> unit
(** Apply each snapshot at its absolute time. *)

val active_hops : t -> int
val switch_count : t -> int
