(** Simulated network packets.

    The payload is an extensible variant so each transport protocol extends
    it with its own segment types without the network layer depending on
    any protocol.  [size] is the total on-wire size in bytes and is what
    links charge for serialization and queue occupancy. *)

type payload = ..

type payload += Raw of string  (** opaque payload for tests *)

type t = {
  id : int;  (** globally unique, for tracing *)
  src : int;  (** origin node id *)
  dst : int;  (** destination node id (used by forwarders) *)
  flow : int;  (** flow identifier *)
  size : int;  (** bytes on the wire *)
  payload : payload;
}

val make : src:int -> dst:int -> flow:int -> size:int -> payload -> t

val reset_ids : unit -> unit
(** Reset the id counter (between independent experiments). *)

val pp : Format.formatter -> t -> unit
