type payload = ..
type payload += Raw of string

type t = {
  id : int;
  src : int;
  dst : int;
  flow : int;
  size : int;
  payload : payload;
}

let counter = ref 0

let make ~src ~dst ~flow ~size payload =
  assert (size > 0);
  incr counter;
  { id = !counter; src; dst; flow; size; payload }

let reset_ids () = counter := 0

let pp ppf t =
  Format.fprintf ppf "#%d flow=%d %d->%d %dB" t.id t.flow t.src t.dst t.size
