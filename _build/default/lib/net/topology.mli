(** Topology builders: wiring nodes and duplex links.

    A "hop" is a duplex link pair.  [hop_spec] gives the forward-direction
    bandwidth; the reverse direction gets [rev_bandwidth] (defaults to the
    forward bandwidth) — the paper's scenarios are single-direction bulk
    transfers, with the reverse path carrying only Interests / ACKs. *)

type hop_spec = {
  bandwidth : Bandwidth.t;
  rev_bandwidth : Bandwidth.t option;
  delay : float;  (** one-way propagation, seconds *)
  plr : float;
  buffer_bytes : int;
}

val hop :
  ?rev_bandwidth:Bandwidth.t ->
  ?plr:float ->
  ?buffer_bytes:int ->
  bandwidth:Bandwidth.t ->
  delay:float ->
  unit ->
  hop_spec

type duplex = { fwd : Link.t; rev : Link.t }

val connect :
  Leotp_sim.Engine.t ->
  rng:Leotp_util.Rng.t ->
  Node.t ->
  Node.t ->
  hop_spec ->
  duplex
(** Create the duplex link and wire delivery to both nodes ({i without}
    touching routing tables). *)

type chain = {
  nodes : Node.t array;  (** length n+1 for n hops; [nodes.(0)] is the data
                             receiver side in LEOTP scenarios *)
  hops : duplex array;  (** [hops.(i)] joins [nodes.(i)] and [nodes.(i+1)] *)
}

val chain :
  Leotp_sim.Engine.t -> rng:Leotp_util.Rng.t -> hop_spec array -> chain
(** Build a linear chain with full routing: every node can reach every
    other node along the line. *)

type dumbbell = {
  senders : Node.t array;
  receivers : Node.t array;
  left : Node.t;  (** aggregation router on the sender side *)
  right : Node.t;
  bottleneck : duplex;
  sender_links : duplex array;
  receiver_links : duplex array;
}

val dumbbell :
  Leotp_sim.Engine.t ->
  rng:Leotp_util.Rng.t ->
  access:hop_spec array ->
  bottleneck:hop_spec ->
  dumbbell
(** [access.(i)] is used for {i both} sender i's and receiver i's access
    links (so per-flow RTT = 2*access delay + bottleneck delay, letting
    scenarios give flows different RTTs as in Fig 15).  Routing is set up
    so sender i reaches receiver i and vice versa. *)
