type t = {
  flow : int;
  mutable app_bytes : int;
  mutable wire_bytes_sent : int;
  mutable retransmissions : int;
  owd : Leotp_util.Stats.t;
  retx_owd : Leotp_util.Stats.t;
  delivery : Leotp_util.Timeseries.t;
  mutable started : float;
  mutable finished : float option;
}

let create ~flow =
  {
    flow;
    app_bytes = 0;
    wire_bytes_sent = 0;
    retransmissions = 0;
    owd = Leotp_util.Stats.create ();
    retx_owd = Leotp_util.Stats.create ();
    delivery = Leotp_util.Timeseries.create ();
    started = 0.0;
    finished = None;
  }

let flow t = t.flow
let on_send t ~bytes = t.wire_bytes_sent <- t.wire_bytes_sent + bytes
let on_retransmit t = t.retransmissions <- t.retransmissions + 1

let on_deliver t ~now ~bytes ~owd ~retx =
  t.app_bytes <- t.app_bytes + bytes;
  Leotp_util.Stats.add t.owd owd;
  if retx then Leotp_util.Stats.add t.retx_owd owd;
  Leotp_util.Timeseries.add t.delivery ~time:now (float_of_int bytes)

let set_started t v = t.started <- v
let set_finished t v = t.finished <- Some v
let app_bytes t = t.app_bytes
let wire_bytes_sent t = t.wire_bytes_sent
let retransmissions t = t.retransmissions
let owd t = t.owd
let retx_owd t = t.retx_owd
let delivery t = t.delivery
let started t = t.started
let finished t = t.finished

let completion_time t =
  match t.finished with Some f -> Some (f -. t.started) | None -> None

let goodput t ~lo ~hi =
  if hi <= lo then 0.0
  else Leotp_util.Timeseries.window_sum t.delivery ~lo ~hi /. (hi -. lo)

let mean_throughput_mbps t ~duration =
  if duration <= 0.0 then 0.0
  else
    Leotp_util.Units.bytes_per_sec_to_mbps
      (float_of_int t.app_bytes /. duration)
