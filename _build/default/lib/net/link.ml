type stats = {
  mutable packets_in : int;
  mutable packets_delivered : int;
  mutable bytes_delivered : int;
  mutable drops_tail : int;
  mutable drops_error : int;
  mutable drops_flush : int;
  queue_delay : Leotp_util.Stats.t;
}

type t = {
  engine : Leotp_sim.Engine.t;
  name : string;
  src : int;
  dst : int;
  mutable bandwidth : Bandwidth.t;
  mutable delay : float;
  mutable plr : float;
  mutable buffer_bytes : int;
  rng : Leotp_util.Rng.t;
  queue : (Packet.t * float) Queue.t;
  mutable queued_bytes : int;
  mutable busy : bool;
  mutable epoch : int;
  mutable sink : Packet.t -> unit;
  stats : stats;
}

let create engine ~name ~src ~dst ~bandwidth ~delay ?(plr = 0.0)
    ?(buffer_bytes = 256 * 1024) ~rng () =
  {
    engine;
    name;
    src;
    dst;
    bandwidth;
    delay;
    plr;
    buffer_bytes;
    rng;
    queue = Queue.create ();
    queued_bytes = 0;
    busy = false;
    epoch = 0;
    sink = (fun _ -> ());
    stats =
      {
        packets_in = 0;
        packets_delivered = 0;
        bytes_delivered = 0;
        drops_tail = 0;
        drops_error = 0;
        drops_flush = 0;
        queue_delay = Leotp_util.Stats.create ();
      };
  }

let set_sink t sink = t.sink <- sink
let src t = t.src
let dst t = t.dst
let name t = t.name
let delay t = t.delay
let set_delay t d = t.delay <- d
let plr t = t.plr
let set_plr t p = t.plr <- p
let bandwidth t = t.bandwidth
let set_bandwidth t b = t.bandwidth <- b
let current_rate t = Bandwidth.at t.bandwidth (Leotp_sim.Engine.now t.engine)
let set_buffer_bytes t n = t.buffer_bytes <- n
let queue_bytes t = t.queued_bytes
let stats t = t.stats

let rec start_transmission t =
  if not t.busy then begin
    match Queue.take_opt t.queue with
    | None -> ()
    | Some (pkt, enqueued_at) ->
      t.queued_bytes <- t.queued_bytes - pkt.Packet.size;
      t.busy <- true;
      let now = Leotp_sim.Engine.now t.engine in
      Leotp_util.Stats.add t.stats.queue_delay (now -. enqueued_at);
      let rate = Float.max 1.0 (Bandwidth.at t.bandwidth now) in
      let tx_time = float_of_int pkt.Packet.size /. rate in
      let epoch = t.epoch in
      ignore
        (Leotp_sim.Engine.schedule t.engine ~after:tx_time (fun () ->
             complete_transmission t pkt epoch))
  end

and complete_transmission t pkt epoch =
  t.busy <- false;
  if epoch = t.epoch then begin
    (* Corruption consumes the hop's bandwidth but the packet vanishes. *)
    if Leotp_util.Rng.bernoulli t.rng t.plr then
      t.stats.drops_error <- t.stats.drops_error + 1
    else begin
      let arrival_epoch = t.epoch in
      ignore
        (Leotp_sim.Engine.schedule t.engine ~after:t.delay (fun () ->
             if arrival_epoch = t.epoch then begin
               t.stats.packets_delivered <- t.stats.packets_delivered + 1;
               t.stats.bytes_delivered <-
                 t.stats.bytes_delivered + pkt.Packet.size;
               t.sink pkt
             end
             else t.stats.drops_flush <- t.stats.drops_flush + 1))
    end
  end
  else t.stats.drops_flush <- t.stats.drops_flush + 1;
  start_transmission t

let send t pkt =
  t.stats.packets_in <- t.stats.packets_in + 1;
  if t.queued_bytes + pkt.Packet.size > t.buffer_bytes then
    t.stats.drops_tail <- t.stats.drops_tail + 1
  else begin
    Queue.add (pkt, Leotp_sim.Engine.now t.engine) t.queue;
    t.queued_bytes <- t.queued_bytes + pkt.Packet.size;
    start_transmission t
  end

let flush t =
  t.epoch <- t.epoch + 1;
  t.stats.drops_flush <- t.stats.drops_flush + Queue.length t.queue;
  Queue.clear t.queue;
  t.queued_bytes <- 0
