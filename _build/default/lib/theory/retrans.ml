let check_args ~p ~hops =
  if p < 0.0 || p >= 1.0 then invalid_arg "Retrans: p must be in [0,1)";
  if hops < 1 then invalid_arg "Retrans: hops must be >= 1"

let e2e_plr ~p ~hops =
  check_args ~p ~hops;
  1.0 -. ((1.0 -. p) ** float_of_int hops)

let e2e_plr_approx ~p ~hops =
  check_args ~p ~hops;
  float_of_int hops *. p

let owd_e2e ~p ~hops ~d =
  (* Eq (2): sum_k (1+2k) * N*d * (1-P) P^k = N*d*(1+P)/(1-P). *)
  let n = float_of_int hops in
  let pp = e2e_plr_approx ~p ~hops in
  n *. d *. (1.0 +. pp) /. (1.0 -. pp)

let owd_hbh ~p ~hops ~d =
  check_args ~p ~hops;
  float_of_int hops *. d *. (1.0 +. p) /. (1.0 -. p)

let throughput_e2e ~p ~hops ~b =
  b *. (1.0 -. e2e_plr_approx ~p ~hops)

let throughput_hbh ~p ~b =
  if p < 0.0 || p >= 1.0 then invalid_arg "Retrans: p must be in [0,1)";
  b *. (1.0 -. p)

let throughput_gain ~p ~hops =
  let np = e2e_plr_approx ~p ~hops in
  (1.0 -. p) /. (1.0 -. np)

let owd_ratio ~p ~hops =
  let np = e2e_plr_approx ~p ~hops in
  (1.0 +. p) *. (1.0 -. np) /. ((1.0 -. p) *. (1.0 +. np))

module Owd_dist = struct
  type t = (float * float) list

  let tail_mass = 1e-9

  (* Geometric number of retransmissions: delay (1+2k)*unit with
     probability (1-q)*q^k, truncated once the remaining mass is
     negligible. *)
  let geometric ~q ~unit =
    if q <= 0.0 then [ (unit, 1.0) ]
    else begin
      let rec go k mass acc =
        let pk = (1.0 -. q) *. (q ** float_of_int k) in
        let acc = (float_of_int (1 + (2 * k)) *. unit, pk) :: acc in
        let mass = mass +. pk in
        if 1.0 -. mass < tail_mass then List.rev acc else go (k + 1) mass acc
      in
      go 0 0.0 []
    end

  let e2e ~p ~hops ~d =
    check_args ~p ~hops;
    let pp = e2e_plr ~p ~hops in
    geometric ~q:pp ~unit:(float_of_int hops *. d)

  (* Exact N-fold convolution of the per-hop distribution.  All delays are
     odd multiples of d, so we work on the integer lattice of d. *)
  let hbh ~p ~hops ~d =
    check_args ~p ~hops;
    let per_hop = geometric ~q:p ~unit:1.0 in
    let per_hop = List.map (fun (x, pr) -> (int_of_float x, pr)) per_hop in
    let max_per_hop =
      List.fold_left (fun acc (x, _) -> max acc x) 0 per_hop
    in
    let size = (max_per_hop * hops) + 1 in
    let dist = Array.make size 0.0 in
    dist.(0) <- 1.0;
    let scratch = Array.make size 0.0 in
    for _ = 1 to hops do
      Array.fill scratch 0 size 0.0;
      for i = 0 to size - 1 do
        if dist.(i) > 0.0 then
          List.iter
            (fun (x, pr) ->
              if i + x < size then scratch.(i + x) <- scratch.(i + x) +. (dist.(i) *. pr))
            per_hop
      done;
      Array.blit scratch 0 dist 0 size
    done;
    let acc = ref [] in
    for i = size - 1 downto 0 do
      if dist.(i) > 0.0 then acc := (float_of_int i *. d, dist.(i)) :: !acc
    done;
    !acc

  let percentile t pct =
    let target = pct /. 100.0 in
    let rec go cdf = function
      | [] -> (match List.rev t with (x, _) :: _ -> x | [] -> Float.nan)
      | (x, pr) :: rest ->
        let cdf = cdf +. pr in
        if cdf >= target then x else go cdf rest
    in
    go 0.0 t

  let mean t = List.fold_left (fun acc (x, pr) -> acc +. (x *. pr)) 0.0 t

  let sample t rng =
    let u = Leotp_util.Rng.float rng 1.0 in
    let rec go cdf = function
      | [] -> (match List.rev t with (x, _) :: _ -> x | [] -> Float.nan)
      | (x, pr) :: rest ->
        let cdf = cdf +. pr in
        if u < cdf then x else go cdf rest
    in
    go 0.0 t

  let monte_carlo ~scheme ~p ~hops ~d ~packets ~seed =
    check_args ~p ~hops;
    let rng = Leotp_util.Rng.create ~seed in
    let stats = Leotp_util.Stats.create () in
    let geometric_tries q =
      (* Number of transmissions until success: 1 + Geometric(q). *)
      let rec go k =
        if Leotp_util.Rng.bernoulli rng q then go (k + 1) else k
      in
      go 0
    in
    for _ = 1 to packets do
      let owd =
        match scheme with
        | `E2e ->
          (* Each attempt crosses the whole path; a loss anywhere forces a
             full-path retry (1 + 2k) * N * d. *)
          let pp = 1.0 -. ((1.0 -. p) ** float_of_int hops) in
          let k = geometric_tries pp in
          float_of_int (1 + (2 * k)) *. float_of_int hops *. d
        | `Hbh ->
          (* Each hop retries independently. *)
          let total = ref 0.0 in
          for _ = 1 to hops do
            let k = geometric_tries p in
            total := !total +. (float_of_int (1 + (2 * k)) *. d)
          done;
          !total
      in
      Leotp_util.Stats.add stats owd
    done;
    stats
end
