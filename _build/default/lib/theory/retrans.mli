(** Closed forms of the paper's retransmission model (§II-B, eqs 1-5).

    A path of [hops] hops, each with packet loss rate [p], per-hop one-way
    propagation delay [d] seconds and bandwidth [b] bytes/second.
    "e2e" = end-to-end retransmission (TCP-style: only the sender repairs),
    "hbh" = hop-by-hop retransmission (LEOTP-style: each hop repairs). *)

val e2e_plr : p:float -> hops:int -> float
(** Eq (1) exact: [1 - (1-p)^N]. *)

val e2e_plr_approx : p:float -> hops:int -> float
(** Eq (1) approximation [N*p] used by the paper in eqs (2) and (4). *)

val owd_e2e : p:float -> hops:int -> d:float -> float
(** Eq (2): mean one-way delay under end-to-end retransmission,
    [N*d*(1+P)/(1-P)] with [P = N*p]. *)

val owd_hbh : p:float -> hops:int -> d:float -> float
(** Eq (3): [N*d*(1+p)/(1-p)]. *)

val throughput_e2e : p:float -> hops:int -> b:float -> float
(** Eq (4): [b*(1-N*p)]. *)

val throughput_hbh : p:float -> b:float -> float
(** Eq (5): [b*(1-p)]. *)

val throughput_gain : p:float -> hops:int -> float
(** hbh/e2e throughput ratio [(1-p)/(1-Np)]; e.g. 1.047 for N=10, p=0.5%. *)

val owd_ratio : p:float -> hops:int -> float
(** hbh/e2e mean-OWD ratio [(1+p)(1-Np)/((1-p)(1+Np))]; e.g. 0.913 for
    N=10, p=0.5%. *)

(** Per-packet OWD distributions behind Fig 3.  Delays are on the lattice
    [k*d]; distributions are given as [(delay_seconds, probability)] with
    probabilities summing to ~1 (truncated at negligible tail mass). *)
module Owd_dist : sig
  type t = (float * float) list

  val e2e : p:float -> hops:int -> d:float -> t
  (** OWD = [(1+2k)*N*d] with probability [(1-P)*P^k], [P] exact. *)

  val hbh : p:float -> hops:int -> d:float -> t
  (** Sum over hops of independent per-hop delays [(1+2k)*d]; computed by
      exact convolution. *)

  val percentile : t -> float -> float
  (** [percentile dist 99.0] = smallest delay with CDF >= 0.99. *)

  val mean : t -> float

  val sample : t -> Leotp_util.Rng.t -> float
  (** Draw one OWD (inverse-CDF), for Monte-Carlo cross-checks. *)

  val monte_carlo :
    scheme:[ `E2e | `Hbh ] ->
    p:float ->
    hops:int ->
    d:float ->
    packets:int ->
    seed:int ->
    Leotp_util.Stats.t
  (** Simulate per-packet retransmission directly (geometric retry count
      per packet or per hop) rather than sampling the analytic
      distribution — an independent check of the closed forms, matching
      the paper's "100000 packets we simulate". *)
end
