lib/theory/retrans.mli: Leotp_util
