lib/theory/retrans.ml: Array Float Leotp_util List
