lib/sim/engine.ml: Float Int Leotp_util
