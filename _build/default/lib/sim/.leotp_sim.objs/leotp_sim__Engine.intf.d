lib/sim/engine.mli:
