(** End-to-end TCP session wiring: one sender node, one receiver node,
    shared flow metrics, node handlers installed. *)

type t = {
  sender : Sender.t;
  receiver : Receiver.t;
  metrics : Leotp_net.Flow_metrics.t;
}

val connect :
  Leotp_sim.Engine.t ->
  src_node:Leotp_net.Node.t ->
  dst_node:Leotp_net.Node.t ->
  flow:int ->
  cc:Cc.algo ->
  ?mss:int ->
  ?source:Sender.source ->
  ?on_complete:(unit -> unit) ->
  unit ->
  t
(** Replaces both nodes' handlers.  Call {!start} to begin transmission. *)

val start : t -> unit
val stop : t -> unit
