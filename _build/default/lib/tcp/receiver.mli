(** Byte-stream receiver: reassembly, delivery accounting and ACK
    generation (cumulative + up to 3 SACK ranges, per-packet ACKs with a
    timestamp echo). *)

type t

val create :
  Leotp_sim.Engine.t ->
  node:Leotp_net.Node.t ->
  src:int ->
  flow:int ->
  ?metrics:Leotp_net.Flow_metrics.t ->
  ?expected_bytes:int ->
  ?on_deliver:(pos:int -> len:int -> first_sent:float -> retx:bool -> unit) ->
  ?on_complete:(unit -> unit) ->
  unit ->
  t
(** [src] is the sender's node id (where ACKs are routed).  [on_deliver]
    fires for each {i in-order} chunk as it becomes deliverable (Split TCP
    proxies forward from it). *)

val handle_data : t -> Leotp_net.Packet.t -> unit
val delivered_bytes : t -> int
(** Length of the delivered in-order prefix. *)

val received_bytes : t -> int
(** Total distinct bytes received (including out-of-order). *)

val complete : t -> bool
val metrics : t -> Leotp_net.Flow_metrics.t
