lib/tcp/session.ml: Leotp_net Receiver Sender Wire
