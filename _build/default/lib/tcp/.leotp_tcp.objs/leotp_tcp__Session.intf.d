lib/tcp/session.mli: Cc Leotp_net Leotp_sim Receiver Sender
