lib/tcp/cc.mli:
