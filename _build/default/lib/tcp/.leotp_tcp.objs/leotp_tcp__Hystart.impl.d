lib/tcp/hystart.ml: Float
