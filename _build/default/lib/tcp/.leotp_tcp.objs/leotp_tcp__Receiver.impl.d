lib/tcp/receiver.ml: Leotp_net Leotp_sim Leotp_util Wire
