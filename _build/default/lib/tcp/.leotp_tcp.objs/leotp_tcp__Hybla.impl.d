lib/tcp/hybla.ml: Cc_intf Float Hystart
