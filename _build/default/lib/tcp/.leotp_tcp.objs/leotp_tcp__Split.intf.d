lib/tcp/split.mli: Cc Leotp_net Leotp_sim Sender
