lib/tcp/pcc_vivace.ml: Cc_intf Float Leotp_util
