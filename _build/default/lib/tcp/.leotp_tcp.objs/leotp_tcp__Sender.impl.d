lib/tcp/sender.ml: Cc Float Int Leotp_net Leotp_sim Leotp_util List Map Printf Seq Wire
