lib/tcp/cubic.ml: Cc_intf Float Hystart Option
