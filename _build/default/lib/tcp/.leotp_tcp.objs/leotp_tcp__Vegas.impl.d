lib/tcp/vegas.ml: Cc_intf Float
