lib/tcp/sender.mli: Cc Leotp_net Leotp_sim
