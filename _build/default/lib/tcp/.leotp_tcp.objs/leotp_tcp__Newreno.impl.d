lib/tcp/newreno.ml: Cc_intf Float Hystart
