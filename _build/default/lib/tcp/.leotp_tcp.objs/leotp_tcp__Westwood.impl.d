lib/tcp/westwood.ml: Cc_intf Float Hystart
