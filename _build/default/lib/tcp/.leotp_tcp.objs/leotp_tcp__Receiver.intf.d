lib/tcp/receiver.mli: Leotp_net Leotp_sim
