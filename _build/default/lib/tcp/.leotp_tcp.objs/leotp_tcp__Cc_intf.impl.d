lib/tcp/cc_intf.ml:
