lib/tcp/bbr.ml: Array Cc_intf Float Leotp_util
