lib/tcp/cc.ml: Bbr Cc_intf Cubic Hybla Newreno Pcc_vivace Vegas Westwood
