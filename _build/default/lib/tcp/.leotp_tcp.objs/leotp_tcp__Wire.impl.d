lib/tcp/wire.ml: Leotp_net
