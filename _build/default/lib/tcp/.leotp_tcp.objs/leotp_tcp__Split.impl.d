lib/tcp/split.ml: Array Int Leotp_net Leotp_sim Map Option Receiver Sender Wire
