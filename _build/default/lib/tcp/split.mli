(** Split TCP: independent TCP connections per hop through store-and-
    forward proxies (the PEP baseline of paper §II-C and Fig 4).

    Each proxy terminates the upstream connection, buffers the in-order
    byte stream, and re-originates it on a downstream connection running
    its own congestion controller.  Origin first-transmission timestamps
    are carried through so the end receiver's OWD includes proxy queuing
    delay — the backlog effect the paper demonstrates. *)

type t

val connect :
  Leotp_sim.Engine.t ->
  nodes:Leotp_net.Node.t array ->
  flow:int ->
  cc:Cc.algo ->
  ?mss:int ->
  ?source:Sender.source ->
  ?on_complete:(unit -> unit) ->
  unit ->
  t
(** [nodes.(0)] is the origin sender, the last node the end receiver, and
    every interior node a proxy.  Handlers are installed on all of them. *)

val start : t -> unit
val stop : t -> unit

val metrics : t -> Leotp_net.Flow_metrics.t
(** End-to-end metrics: origin wire bytes, end-receiver delivery/OWD. *)

val proxy_backlogs : t -> int array
(** Bytes buffered at each proxy (received in-order upstream but not yet
    acknowledged downstream). *)

val complete : t -> bool

(**/**)

val debug_proxy_tx : t -> (int * int * float * bool) array
(** (snd_una, inflight, cwnd, finished) per proxy — for tests/diagnosis. *)

val debug_proxy_str : t -> string array
