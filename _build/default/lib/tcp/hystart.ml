(** Delay-based slow-start exit (HyStart, Ha & Rhee 2011 — shipped as the
    Linux CUBIC default).

    Exponential window growth continues one full RTT after the bottleneck
    queue starts building, which on deep-buffered paths overshoots by the
    whole buffer and collapses into RTO cycles.  Watching the RTT and
    leaving slow start as soon as it inflates past the propagation floor
    prevents that.  We apply it to every loss-based controller (Linux
    couples it to CUBIC only, but relies on pacing elsewhere; a
    packet-level simulator needs the same protection for the Reno
    family). *)

type t = { mutable rtt_min : float }

let create () = { rtt_min = Float.infinity }

(* RTT considered inflated once it exceeds the floor by max(4 ms, 12.5%) —
   the clamped eta/8 rule from the HyStart paper. *)
let should_exit t ~rtt_sample =
  match rtt_sample with
  | None -> false
  | Some r ->
    t.rtt_min <- Float.min t.rtt_min r;
    let threshold =
      t.rtt_min +. Float.max 0.004 (t.rtt_min /. 8.0)
    in
    r > threshold
