(** TCP <-> LEOTP gateway (paper §VII, "Compatible with TCP").

    "An alternative solution is to use LEOTP only in the satellite
    segment.  Transparent proxies are deployed at ground stations to
    connect the territorial network and LEOTP."

    Topology:

      TCP sender --(terrestrial)--> ingress GW ==(LEOTP over satellites)==>
        egress GW --(terrestrial)--> TCP receiver

    The ingress gateway terminates the TCP connection and re-publishes the
    byte stream as a LEOTP Producer whose available prefix grows as TCP
    data arrives; the egress gateway is the LEOTP Consumer and re-sends
    the stream on a fresh TCP connection.  The transfer size is part of
    the bridge setup (a deployment would carry it in the proxy handshake;
    the paper flags exactly this sender-driven/receiver-driven mismatch
    as the hard part). *)

type t

val create :
  Leotp_sim.Engine.t ->
  config:Leotp.Config.t ->
  tcp_cc:Leotp_tcp.Cc.algo ->
  sender_node:Leotp_net.Node.t ->
  ingress_node:Leotp_net.Node.t ->
  egress_node:Leotp_net.Node.t ->
  receiver_node:Leotp_net.Node.t ->
  flow:int ->
  bytes:int ->
  ?on_complete:(unit -> unit) ->
  unit ->
  t
(** Installs handlers on all four nodes.  The satellite segment (between
    [ingress_node] and [egress_node]) may contain LEOTP Midnodes created
    separately. *)

val start : t -> unit
val complete : t -> bool

val tcp_in_metrics : t -> Leotp_net.Flow_metrics.t
(** Terrestrial leg into the ingress gateway. *)

val leotp_metrics : t -> Leotp_net.Flow_metrics.t
(** Satellite segment. *)

val tcp_out_metrics : t -> Leotp_net.Flow_metrics.t
(** Terrestrial leg to the final receiver (end-to-end delivery). *)

val ingress_backlog : t -> int
(** Bytes received from TCP but not yet pulled over the satellite leg. *)

val egress_backlog : t -> int
(** Bytes received over LEOTP but not yet acknowledged by the final TCP
    receiver. *)
