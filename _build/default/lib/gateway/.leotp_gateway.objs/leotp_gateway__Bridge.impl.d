lib/gateway/bridge.ml: Leotp Leotp_net Leotp_tcp
