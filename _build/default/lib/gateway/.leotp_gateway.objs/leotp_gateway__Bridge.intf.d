lib/gateway/bridge.mli: Leotp Leotp_net Leotp_sim Leotp_tcp
