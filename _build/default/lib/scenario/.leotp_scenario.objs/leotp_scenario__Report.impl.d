lib/scenario/report.ml: Common Leotp_util List Printf
