lib/scenario/experiments.ml: Array Common Float Leotp Leotp_net Leotp_sim Leotp_tcp Leotp_theory Leotp_util List Printf Report String
