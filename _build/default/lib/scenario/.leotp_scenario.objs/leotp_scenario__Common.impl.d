lib/scenario/common.ml: Array Float Leotp Leotp_net Leotp_sim Leotp_tcp Leotp_util List Printf
