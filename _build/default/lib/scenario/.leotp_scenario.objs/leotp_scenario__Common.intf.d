lib/scenario/common.mli: Leotp Leotp_net Leotp_tcp Leotp_util
