lib/scenario/starlink.ml: Array Common Float Leotp Leotp_constellation Leotp_net Leotp_sim Leotp_tcp Leotp_util List Printf Report
