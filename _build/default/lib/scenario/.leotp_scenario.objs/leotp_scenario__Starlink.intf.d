lib/scenario/starlink.mli: Common
