lib/scenario/experiments.mli:
