(** One function per paper figure/table in the controlled-environment
    evaluation (§II and §V-B).  Each prints its rows and returns the raw
    results for programmatic checks.  [quick] shrinks run lengths for CI;
    the defaults match the paper's setups. *)

val fig02 : ?quick:bool -> unit -> (string * (int * float) list) list
(** TCP throughput (Mbps) vs hop count under 0.5%/hop loss. *)

val fig03 : unit -> (string * (string * float) list) list
(** Theoretical OWD distribution, end-to-end vs hop-by-hop retransmission:
    (scheme, [(statistic, seconds)]). *)

val fig04 : ?quick:bool -> unit -> (string * (float * float)) list
(** Split TCP vs end-to-end TCP: (protocol, (throughput Mbps, mean OWD s))
    on a lossy 10-hop path. *)

val fig05 : ?quick:bool -> unit -> (string * (float * float * int) list) list
(** Queuing delay and congestion loss vs propagation delay under a
    fluctuating bottleneck: (protocol, [(prop_delay, queuing_s, drops)]). *)

val fig10 : ?quick:bool -> unit -> (string * (float * float * float) list) list
(** OWD of retransmitted packets: (protocol, [(plr, mean_retx_owd,
    p99_retx_owd)]). *)

val fig11 : ?quick:bool -> unit -> (string * (float * float) list) list
(** Origin traffic sent (MB) for a fixed file vs per-hop loss rate. *)

val fig12 : ?quick:bool -> unit -> (string * (float * float) list) list
(** Throughput (Mbps) vs per-hop PLR for LEOTP and all TCP baselines. *)

val fig13 : ?quick:bool -> unit -> (string * (float * float) list) list
(** Throughput vs path-switching interval (seconds). *)

val fig14 : ?quick:bool -> unit -> (string * (float * float)) list
(** Throughput-delay trade-off under bandwidth fluctuation:
    (label, (throughput Mbps, mean queuing s)); LEOTP swept over BLtar. *)

val fig15 : ?quick:bool -> unit -> (string * float * float list) list
(** Intra-protocol fairness: (scenario label, Jain index, per-flow Mbps)
    for same-RTT and different-RTT flow sets, LEOTP vs BBR. *)
