(** Shared experiment plumbing: build a path, run one protocol over it,
    return a uniform summary.  Every figure/table module builds on this. *)

type protocol =
  | Tcp of Leotp_tcp.Cc.algo
  | Split_tcp of Leotp_tcp.Cc.algo
  | Leotp of Leotp.Config.t
  | Leotp_partial of Leotp.Config.t * float  (** coverage fraction *)

val protocol_name : protocol -> string

type link_params = {
  bandwidth_mbps : float;
  delay : float;  (** one-way propagation per hop, seconds *)
  plr : float;
  buffer_bytes : int;
}

val link : ?plr:float -> ?buffer_bytes:int -> bw:float -> delay:float -> unit -> link_params

type summary = {
  protocol : string;
  goodput_mbps : float;  (** application goodput over the measure window *)
  owd : Leotp_util.Stats.t;  (** data-retrieval OWD, seconds *)
  retx_owd : Leotp_util.Stats.t;
  queuing_delay : Leotp_util.Stats.t;  (** OWD minus propagation floor *)
  retransmissions : int;
  wire_bytes : int;  (** bytes the origin sender put on the wire *)
  app_bytes : int;
  completion_time : float option;
  delivery : Leotp_util.Timeseries.t;
  duration : float;
  congestion_drops : int;  (** droptail losses across the path's links *)
}

val run_chain :
  ?seed:int ->
  ?bytes:int ->
  ?duration:float ->
  ?warmup:float ->
  ?bottleneck:int * link_params ->
  ?bandwidth_schedule:(int * Leotp_net.Bandwidth.t) list ->
  hops:link_params list ->
  protocol ->
  summary
(** Run one flow over a chain of [hops].  [bytes] = fixed transfer (the
    run ends at completion or [duration]); omitted = bulk flow measured
    over [warmup, duration).  [bottleneck] replaces hop [i]'s parameters;
    [bandwidth_schedule] overrides the bandwidth model of selected hops
    (e.g. square-wave bottlenecks).  Propagation floor for the queuing
    statistic is the sum of hop delays. *)

val uniform_hops : n:int -> link_params -> link_params list

val summarize :
  ?congestion_drops:int ->
  protocol:string ->
  metrics:Leotp_net.Flow_metrics.t ->
  floor:float ->
  warmup:float ->
  duration:float ->
  unit ->
  summary
(** Build a summary from raw flow metrics (used by scenario runners that
    assemble their own topologies, e.g. the Starlink emulation). *)

val run_flows_dumbbell :
  ?seed:int ->
  ?duration:float ->
  access_delays:float list ->
  bottleneck:link_params ->
  access:link_params ->
  starts:float list ->
  protocol ->
  summary list * (float * float) list list
(** Fairness topology (Fig 15): one flow per access delay, flow [i]
    starting at [starts.(i)].  Returns per-flow summaries and per-flow
    throughput time series (1 s buckets, Mbps). *)
