type graph = { n : int; adj : (int * float) list array }

let create ~nodes = { n = nodes; adj = Array.make nodes [] }

let add_edge g a b w =
  assert (a >= 0 && a < g.n && b >= 0 && b < g.n && w >= 0.0);
  let upsert u v =
    let rec go = function
      | [] -> [ (v, w) ]
      | (x, ow) :: rest when x = v -> (x, Float.min ow w) :: rest
      | e :: rest -> e :: go rest
    in
    g.adj.(u) <- go g.adj.(u)
  in
  upsert a b;
  upsert b a

let neighbors g u = g.adj.(u)
let node_count g = g.n

let dijkstra g ~src ~dst =
  let dist = Array.make g.n Float.infinity in
  let prev = Array.make g.n (-1) in
  let visited = Array.make g.n false in
  let cmp (d1, _) (d2, _) = Float.compare d1 d2 in
  let heap = Leotp_util.Pqueue.create ~cmp in
  dist.(src) <- 0.0;
  Leotp_util.Pqueue.push heap (0.0, src);
  let rec loop () =
    match Leotp_util.Pqueue.pop heap with
    | None -> ()
    | Some (_, u) when visited.(u) -> loop ()
    | Some (_, u) when u = dst -> ()
    | Some (du, u) ->
      visited.(u) <- true;
      List.iter
        (fun (v, w) ->
          let nd = du +. w in
          if nd < dist.(v) then begin
            dist.(v) <- nd;
            prev.(v) <- u;
            Leotp_util.Pqueue.push heap (nd, v)
          end)
        g.adj.(u);
      loop ()
  in
  loop ();
  if Float.is_finite dist.(dst) then begin
    let rec walk acc u = if u = src then src :: acc else walk (u :: acc) prev.(u) in
    Some (walk [] dst, dist.(dst))
  end
  else None

let floyd_warshall g =
  let n = g.n in
  let dist = Array.make_matrix n n Float.infinity in
  let next = Array.make_matrix n n (-1) in
  for i = 0 to n - 1 do
    dist.(i).(i) <- 0.0;
    next.(i).(i) <- i;
    List.iter
      (fun (j, w) ->
        if w < dist.(i).(j) then begin
          dist.(i).(j) <- w;
          next.(i).(j) <- j
        end)
      g.adj.(i)
  done;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if Float.is_finite dist.(i).(k) then
        for j = 0 to n - 1 do
          let alt = dist.(i).(k) +. dist.(k).(j) in
          if alt < dist.(i).(j) then begin
            dist.(i).(j) <- alt;
            next.(i).(j) <- next.(i).(k)
          end
        done
    done
  done;
  (dist, next)

let fw_path ~next ~src ~dst =
  if next.(src).(dst) = -1 then None
  else begin
    let rec go acc u =
      if u = dst then List.rev (dst :: acc) else go (u :: acc) next.(u).(dst)
    in
    Some (go [] src)
  end
