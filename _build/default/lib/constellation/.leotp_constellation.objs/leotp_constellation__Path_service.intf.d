lib/constellation/path_service.mli: Cities Walker
