lib/constellation/cities.ml: Array Printf String
