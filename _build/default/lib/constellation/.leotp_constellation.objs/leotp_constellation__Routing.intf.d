lib/constellation/routing.mli:
