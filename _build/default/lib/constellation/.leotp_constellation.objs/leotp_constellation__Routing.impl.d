lib/constellation/routing.ml: Array Float Leotp_util List
