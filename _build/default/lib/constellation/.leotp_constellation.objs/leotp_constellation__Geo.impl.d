lib/constellation/geo.ml: Float Leotp_util
