lib/constellation/walker.mli: Geo
