lib/constellation/geo.mli:
