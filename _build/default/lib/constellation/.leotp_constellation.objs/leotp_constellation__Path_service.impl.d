lib/constellation/path_service.ml: Array Cities Float Geo List Routing Walker
