lib/constellation/walker.ml: Float Geo Leotp_util Option
