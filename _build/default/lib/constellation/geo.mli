(** Geometry for orbital mechanics: 3-vectors, Earth-fixed and inertial
    frames, visibility.

    Convention: positions in meters in an Earth-centered inertial (ECI)
    frame; ground stations rotate with the Earth. *)

type vec3 = { x : float; y : float; z : float }

val add : vec3 -> vec3 -> vec3
val sub : vec3 -> vec3 -> vec3
val scale : float -> vec3 -> vec3
val dot : vec3 -> vec3 -> float
val norm : vec3 -> float
val distance : vec3 -> vec3 -> float

val rot_z : float -> vec3 -> vec3
(** Rotation about the z axis by the given angle (radians). *)

val rot_x : float -> vec3 -> vec3

val earth_rotation_rate : float
(** rad/s (sidereal). *)

val ground_position : lat_deg:float -> lon_deg:float -> time:float -> vec3
(** ECI position of a point on the Earth's surface at [time] seconds
    (Earth rotation included). *)

val elevation_deg : ground:vec3 -> sat:vec3 -> float
(** Elevation angle of [sat] above the local horizon at [ground]. *)

val visible : ?min_elevation_deg:float -> ground:vec3 -> sat:vec3 -> unit -> bool
(** Default minimum elevation: 25 degrees (Starlink terminals). *)

val great_circle_distance : lat1:float -> lon1:float -> lat2:float -> lon2:float -> float
(** Surface distance in meters between two lat/lon points (degrees). *)

val propagation_delay : float -> float
(** Delay in seconds for a straight-line distance in meters. *)
