type vec3 = { x : float; y : float; z : float }

let add a b = { x = a.x +. b.x; y = a.y +. b.y; z = a.z +. b.z }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y; z = a.z -. b.z }
let scale k v = { x = k *. v.x; y = k *. v.y; z = k *. v.z }
let dot a b = (a.x *. b.x) +. (a.y *. b.y) +. (a.z *. b.z)
let norm v = sqrt (dot v v)
let distance a b = norm (sub a b)

let rot_z a v =
  let c = cos a and s = sin a in
  { x = (c *. v.x) -. (s *. v.y); y = (s *. v.x) +. (c *. v.y); z = v.z }

let rot_x a v =
  let c = cos a and s = sin a in
  { x = v.x; y = (c *. v.y) -. (s *. v.z); z = (s *. v.y) +. (c *. v.z) }

let earth_rotation_rate = 7.292_115e-5
let deg_to_rad d = d *. Float.pi /. 180.0

let ground_position ~lat_deg ~lon_deg ~time =
  let lat = deg_to_rad lat_deg in
  let lon = deg_to_rad lon_deg +. (earth_rotation_rate *. time) in
  let r = Leotp_util.Units.earth_radius in
  {
    x = r *. cos lat *. cos lon;
    y = r *. cos lat *. sin lon;
    z = r *. sin lat;
  }

let elevation_deg ~ground ~sat =
  let to_sat = sub sat ground in
  let cos_zenith = dot ground to_sat /. (norm ground *. norm to_sat) in
  (* Elevation = 90 deg - zenith angle. *)
  90.0 -. (Float.acos (Float.min 1.0 (Float.max (-1.0) cos_zenith)) *. 180.0 /. Float.pi)

let visible ?(min_elevation_deg = 25.0) ~ground ~sat () =
  elevation_deg ~ground ~sat >= min_elevation_deg

let great_circle_distance ~lat1 ~lon1 ~lat2 ~lon2 =
  let p1 = deg_to_rad lat1 and p2 = deg_to_rad lat2 in
  let dl = deg_to_rad (lon2 -. lon1) in
  let central =
    Float.acos
      (Float.min 1.0
         (Float.max (-1.0)
            ((sin p1 *. sin p2) +. (cos p1 *. cos p2 *. cos dl))))
  in
  Leotp_util.Units.earth_radius *. central

let propagation_delay d = d /. Leotp_util.Units.speed_of_light
