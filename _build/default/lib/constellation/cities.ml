(** Ground-station sites: the 100 most populous metropolitan areas
    (paper §V-A: "ground stations are supposed to be deployed in the 100
    most populous cities").  Coordinates are approximate city centers. *)

type t = { name : string; lat : float; lon : float }

let all =
  [|
    { name = "Tokyo"; lat = 35.68; lon = 139.69 };
    { name = "Delhi"; lat = 28.61; lon = 77.21 };
    { name = "Shanghai"; lat = 31.23; lon = 121.47 };
    { name = "Sao Paulo"; lat = -23.55; lon = -46.63 };
    { name = "Mexico City"; lat = 19.43; lon = -99.13 };
    { name = "Cairo"; lat = 30.04; lon = 31.24 };
    { name = "Mumbai"; lat = 19.08; lon = 72.88 };
    { name = "Beijing"; lat = 39.90; lon = 116.41 };
    { name = "Dhaka"; lat = 23.81; lon = 90.41 };
    { name = "Osaka"; lat = 34.69; lon = 135.50 };
    { name = "New York"; lat = 40.71; lon = -74.01 };
    { name = "Karachi"; lat = 24.86; lon = 67.01 };
    { name = "Buenos Aires"; lat = -34.60; lon = -58.38 };
    { name = "Chongqing"; lat = 29.43; lon = 106.91 };
    { name = "Istanbul"; lat = 41.01; lon = 28.95 };
    { name = "Kolkata"; lat = 22.57; lon = 88.36 };
    { name = "Manila"; lat = 14.60; lon = 120.98 };
    { name = "Lagos"; lat = 6.52; lon = 3.38 };
    { name = "Rio de Janeiro"; lat = -22.91; lon = -43.17 };
    { name = "Tianjin"; lat = 39.34; lon = 117.36 };
    { name = "Kinshasa"; lat = -4.44; lon = 15.27 };
    { name = "Guangzhou"; lat = 23.13; lon = 113.26 };
    { name = "Los Angeles"; lat = 34.05; lon = -118.24 };
    { name = "Moscow"; lat = 55.76; lon = 37.62 };
    { name = "Shenzhen"; lat = 22.54; lon = 114.06 };
    { name = "Lahore"; lat = 31.55; lon = 74.34 };
    { name = "Bangalore"; lat = 12.97; lon = 77.59 };
    { name = "Paris"; lat = 48.86; lon = 2.35 };
    { name = "Bogota"; lat = 4.71; lon = -74.07 };
    { name = "Jakarta"; lat = -6.21; lon = 106.85 };
    { name = "Chennai"; lat = 13.08; lon = 80.27 };
    { name = "Lima"; lat = -12.05; lon = -77.04 };
    { name = "Bangkok"; lat = 13.76; lon = 100.50 };
    { name = "Seoul"; lat = 37.57; lon = 126.98 };
    { name = "Nagoya"; lat = 35.18; lon = 136.91 };
    { name = "Hyderabad"; lat = 17.39; lon = 78.49 };
    { name = "London"; lat = 51.51; lon = -0.13 };
    { name = "Tehran"; lat = 35.69; lon = 51.39 };
    { name = "Chicago"; lat = 41.88; lon = -87.63 };
    { name = "Chengdu"; lat = 30.57; lon = 104.07 };
    { name = "Nanjing"; lat = 32.06; lon = 118.80 };
    { name = "Wuhan"; lat = 30.59; lon = 114.31 };
    { name = "Ho Chi Minh City"; lat = 10.82; lon = 106.63 };
    { name = "Luanda"; lat = -8.84; lon = 13.23 };
    { name = "Ahmedabad"; lat = 23.02; lon = 72.57 };
    { name = "Kuala Lumpur"; lat = 3.14; lon = 101.69 };
    { name = "Xi'an"; lat = 34.34; lon = 108.94 };
    { name = "Hong Kong"; lat = 22.32; lon = 114.17 };
    { name = "Dongguan"; lat = 23.02; lon = 113.75 };
    { name = "Hangzhou"; lat = 30.27; lon = 120.16 };
    { name = "Foshan"; lat = 23.02; lon = 113.11 };
    { name = "Shenyang"; lat = 41.81; lon = 123.43 };
    { name = "Riyadh"; lat = 24.71; lon = 46.68 };
    { name = "Baghdad"; lat = 33.31; lon = 44.37 };
    { name = "Santiago"; lat = -33.45; lon = -70.67 };
    { name = "Surat"; lat = 21.17; lon = 72.83 };
    { name = "Madrid"; lat = 40.42; lon = -3.70 };
    { name = "Suzhou"; lat = 31.30; lon = 120.58 };
    { name = "Pune"; lat = 18.52; lon = 73.86 };
    { name = "Harbin"; lat = 45.80; lon = 126.53 };
    { name = "Houston"; lat = 29.76; lon = -95.37 };
    { name = "Dallas"; lat = 32.78; lon = -96.80 };
    { name = "Toronto"; lat = 43.65; lon = -79.38 };
    { name = "Dar es Salaam"; lat = -6.79; lon = 39.21 };
    { name = "Miami"; lat = 25.76; lon = -80.19 };
    { name = "Belo Horizonte"; lat = -19.92; lon = -43.94 };
    { name = "Singapore"; lat = 1.35; lon = 103.82 };
    { name = "Philadelphia"; lat = 39.95; lon = -75.17 };
    { name = "Atlanta"; lat = 33.75; lon = -84.39 };
    { name = "Fukuoka"; lat = 33.59; lon = 130.40 };
    { name = "Khartoum"; lat = 15.50; lon = 32.56 };
    { name = "Barcelona"; lat = 41.39; lon = 2.17 };
    { name = "Johannesburg"; lat = -26.20; lon = 28.05 };
    { name = "Saint Petersburg"; lat = 59.93; lon = 30.34 };
    { name = "Qingdao"; lat = 36.07; lon = 120.38 };
    { name = "Dalian"; lat = 38.91; lon = 121.60 };
    { name = "Washington"; lat = 38.91; lon = -77.04 };
    { name = "Yangon"; lat = 16.87; lon = 96.20 };
    { name = "Alexandria"; lat = 31.20; lon = 29.92 };
    { name = "Jinan"; lat = 36.65; lon = 117.12 };
    { name = "Guadalajara"; lat = 20.66; lon = -103.35 };
    { name = "Sydney"; lat = -33.87; lon = 151.21 };
    { name = "Melbourne"; lat = -37.81; lon = 144.96 };
    { name = "Monterrey"; lat = 25.69; lon = -100.32 };
    { name = "Nairobi"; lat = -1.29; lon = 36.82 };
    { name = "Hanoi"; lat = 21.03; lon = 105.85 };
    { name = "Brasilia"; lat = -15.79; lon = -47.88 };
    { name = "Casablanca"; lat = 33.57; lon = -7.59 };
    { name = "Kabul"; lat = 34.56; lon = 69.21 };
    { name = "Jeddah"; lat = 21.49; lon = 39.19 };
    { name = "Addis Ababa"; lat = 9.01; lon = 38.75 };
    { name = "Rome"; lat = 41.90; lon = 12.50 };
    { name = "Berlin"; lat = 52.52; lon = 13.41 };
    { name = "Montreal"; lat = 45.50; lon = -73.57 };
    { name = "Algiers"; lat = 36.74; lon = 3.09 };
    { name = "Ankara"; lat = 39.93; lon = 32.86 };
    { name = "Accra"; lat = 5.60; lon = -0.19 };
    { name = "Abidjan"; lat = 5.36; lon = -4.01 };
    { name = "San Francisco"; lat = 37.77; lon = -122.42 };
    { name = "Cape Town"; lat = -33.92; lon = 18.42 };
  |]

let count = Array.length all

let find name =
  let rec go i =
    if i >= count then None
    else if String.equal all.(i).name name then Some all.(i)
    else go (i + 1)
  in
  go 0

let find_exn name =
  match find name with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Cities.find_exn: unknown city %S" name)
