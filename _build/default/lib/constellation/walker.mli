(** Walker-delta constellation model.

    Default parameters are the paper's Starlink core shell (§V-A):
    1600 satellites evenly distributed on 32 orbital planes at 1150 km
    with 53 degrees inclination.  Orbits are ideal circles; positions are
    propagated analytically in the ECI frame. *)

type params = {
  planes : int;
  sats_per_plane : int;
  altitude : float;  (** meters above the surface *)
  inclination_deg : float;
  phasing_factor : int;  (** Walker F: inter-plane phase offset units *)
}

val starlink : params
(** 32 x 50 at 1150 km, 53 deg, F = 1. *)

type t

val create : params -> t
val params : t -> params
val count : t -> int

type sat = { plane : int; index : int }

val sat_id : t -> sat -> int
(** Dense id in [0, count). *)

val sat_of_id : t -> int -> sat
val orbital_period : t -> float  (** seconds *)

val position : t -> sat:int -> time:float -> Geo.vec3
(** ECI position of satellite [sat] (dense id) at [time]. *)

val isl_neighbors : t -> sat:int -> int list
(** +grid: the two intra-plane neighbours and the same-index satellites
    of the two adjacent planes. *)

val nearest_visible :
  t -> ground:Geo.vec3 -> time:float -> ?min_elevation_deg:float -> unit -> int option
(** Closest satellite above the elevation mask, if any. *)

val common_visible :
  t ->
  ground1:Geo.vec3 ->
  ground2:Geo.vec3 ->
  time:float ->
  ?min_elevation_deg:float ->
  unit ->
  int option
(** Satellite visible from both points minimizing the total bent-pipe
    distance (the no-ISL relay of §V-A's first network). *)
