type params = {
  planes : int;
  sats_per_plane : int;
  altitude : float;
  inclination_deg : float;
  phasing_factor : int;
}

let starlink =
  {
    planes = 32;
    sats_per_plane = 50;
    altitude = 1_150_000.0;
    inclination_deg = 53.0;
    phasing_factor = 1;
  }

type t = { p : params; radius : float; period : float }
type sat = { plane : int; index : int }

let create p =
  let radius = Leotp_util.Units.earth_radius +. p.altitude in
  let period =
    2.0 *. Float.pi *. sqrt (radius ** 3.0 /. Leotp_util.Units.earth_mu)
  in
  { p; radius; period }

let params t = t.p
let count t = t.p.planes * t.p.sats_per_plane
let sat_id t s = (s.plane * t.p.sats_per_plane) + s.index

let sat_of_id t id =
  { plane = id / t.p.sats_per_plane; index = id mod t.p.sats_per_plane }

let orbital_period t = t.period

let position t ~sat ~time =
  let s = sat_of_id t sat in
  let two_pi = 2.0 *. Float.pi in
  let raan = two_pi *. float_of_int s.plane /. float_of_int t.p.planes in
  let incl = t.p.inclination_deg *. Float.pi /. 180.0 in
  (* In-plane phase: slot offset + Walker inter-plane phasing + motion. *)
  let phase0 =
    two_pi
    *. ((float_of_int s.index /. float_of_int t.p.sats_per_plane)
       +. (float_of_int (t.p.phasing_factor * s.plane)
          /. float_of_int (count t)))
  in
  let phase = phase0 +. (two_pi *. time /. t.period) in
  let in_plane =
    { Geo.x = t.radius *. cos phase; y = t.radius *. sin phase; z = 0.0 }
  in
  Geo.rot_z raan (Geo.rot_x incl in_plane)

let isl_neighbors t ~sat =
  let s = sat_of_id t sat in
  let np = t.p.planes and ns = t.p.sats_per_plane in
  [
    sat_id t { s with index = (s.index + 1) mod ns };
    sat_id t { s with index = (s.index + ns - 1) mod ns };
    sat_id t { s with plane = (s.plane + 1) mod np };
    sat_id t { s with plane = (s.plane + np - 1) mod np };
  ]

let nearest_visible t ~ground ~time ?(min_elevation_deg = 25.0) () =
  let best = ref None in
  for sat = 0 to count t - 1 do
    let pos = position t ~sat ~time in
    if Geo.visible ~min_elevation_deg ~ground ~sat:pos () then begin
      let d = Geo.distance ground pos in
      match !best with
      | Some (_, bd) when bd <= d -> ()
      | _ -> best := Some (sat, d)
    end
  done;
  Option.map fst !best

let common_visible t ~ground1 ~ground2 ~time ?(min_elevation_deg = 25.0) () =
  let best = ref None in
  for sat = 0 to count t - 1 do
    let pos = position t ~sat ~time in
    if
      Geo.visible ~min_elevation_deg ~ground:ground1 ~sat:pos ()
      && Geo.visible ~min_elevation_deg ~ground:ground2 ~sat:pos ()
    then begin
      let d = Geo.distance ground1 pos +. Geo.distance ground2 pos in
      match !best with
      | Some (_, bd) when bd <= d -> ()
      | _ -> best := Some (sat, d)
    end
  done;
  Option.map fst !best
