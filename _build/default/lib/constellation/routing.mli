(** Shortest-path routing over a weighted graph.

    HYPATIA (which the paper uses) computes routes with Floyd-Warshall;
    for the 1600-node constellation we only ever need a handful of
    source-destination pairs per snapshot, so Dijkstra is used in
    production and Floyd-Warshall is kept for small graphs and as a
    cross-check in tests. *)

type graph

val create : nodes:int -> graph
val add_edge : graph -> int -> int -> float -> unit
(** Undirected, keeps the smaller weight on duplicates. *)

val neighbors : graph -> int -> (int * float) list
val node_count : graph -> int

val dijkstra : graph -> src:int -> dst:int -> (int list * float) option
(** Node path (inclusive of endpoints) and total weight. *)

val floyd_warshall : graph -> float array array * int array array
(** Distance matrix and next-hop matrix; [infinity] = unreachable. *)

val fw_path : next:int array array -> src:int -> dst:int -> int list option
