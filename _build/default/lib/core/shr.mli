(** Sequence Hole Retransmission loss detection — Algorithm 1 of the
    paper, per flow and per node.

    The node tracks [lastByte], the highest byte seen.  A packet starting
    beyond [lastByte] opens a hole; holes skipped by more than
    [hole_threshold] subsequent packets are declared lost.  The caller
    turns the returned actions into VPH notifications (downstream) and
    retransmission Interests (upstream).  A received VPH is fed through
    {!on_packet} exactly like data — that is what makes downstream nodes
    ignore holes an upstream node already owns (§III-B). *)

type t

type actions = {
  new_holes : (int * int) list;
      (** freshly detected holes, to be announced downstream as VPHs *)
  expired_holes : (int * int) list;
      (** holes past the threshold: request retransmission upstream *)
}

val create : config:Config.t -> t

val on_packet : t -> lo:int -> hi:int -> actions
(** Process a Data packet or VPH covering [lo, hi). *)

val last_byte : t -> int
val pending_holes : t -> (int * int * int) list
(** (lo, hi, skip_count), for inspection/tests. *)
