module Interval_set = Leotp_util.Interval_set

type block = {
  mutable present : Interval_set.t;  (** byte ranges present, block-relative *)
  mutable meta : (int * float * bool) list;
      (** (range_start_abs, first_sent, retx), newest first, pruned small *)
  mutable bytes : int;
}

type key = int * int (* flow, block index *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
}

type t = {
  config : Config.t;
  blocks : (key, block) Leotp_util.Lru.t;
  mutable used : int;
  stats : stats;
}

let create ~config =
  {
    config;
    blocks = Leotp_util.Lru.create ();
    used = 0;
    stats = { hits = 0; misses = 0; insertions = 0; evictions = 0 };
  }

let block_size t = t.config.Config.cache_block

let evict_until_fits t =
  while t.used > t.config.Config.cache_capacity do
    match Leotp_util.Lru.evict_lru t.blocks with
    | Some (_, blk) ->
      t.used <- t.used - blk.bytes;
      t.stats.evictions <- t.stats.evictions + 1
    | None -> t.used <- 0
  done

(* Apply [f] to every (block_key, block_lo, block_hi) slice of [lo, hi). *)
let iter_blocks t ~flow ~lo ~hi f =
  let bs = block_size t in
  let b0 = lo / bs and b1 = (hi - 1) / bs in
  for b = b0 to b1 do
    let blo = max lo (b * bs) and bhi = min hi ((b + 1) * bs) in
    f (flow, b) blo bhi
  done

let insert t ~flow ~lo ~hi ~first_sent ~retx =
  if hi > lo then begin
    t.stats.insertions <- t.stats.insertions + 1;
    iter_blocks t ~flow ~lo ~hi (fun key blo bhi ->
        let blk =
          match Leotp_util.Lru.find t.blocks key with
          | Some blk -> blk
          | None ->
            let blk = { present = Interval_set.empty; meta = []; bytes = 0 } in
            Leotp_util.Lru.put t.blocks key blk;
            blk
        in
        let before = Interval_set.cardinal blk.present in
        blk.present <- Interval_set.add ~lo:blo ~hi:bhi blk.present;
        let added = Interval_set.cardinal blk.present - before in
        blk.bytes <- blk.bytes + added;
        t.used <- t.used + added;
        blk.meta <- (blo, first_sent, retx) :: blk.meta;
        (* The meta list only needs to resolve lookups for ranges still in
           the block; a handful of recent entries suffices at MSS-grained
           insertion. *)
        if List.length blk.meta > 2 * (block_size t / t.config.Config.mss + 2)
        then
          blk.meta <-
            List.filteri (fun i _ -> i < block_size t / t.config.Config.mss + 2) blk.meta);
    evict_until_fits t
  end

(* Entry with the largest start <= lo (the insertion that covered [lo]);
   falls back to the newest entry. *)
let find_meta blk ~lo =
  let best =
    List.fold_left
      (fun acc (s, fs, rx) ->
        if s > lo then acc
        else
          match acc with
          | Some (bs, _, _) when bs >= s -> acc
          | _ -> Some (s, fs, rx))
      None blk.meta
  in
  match (best, blk.meta) with
  | Some (_, fs, rx), _ -> Some (fs, rx)
  | None, (_, fs, rx) :: _ -> Some (fs, rx)
  | None, [] -> None

let lookup_inner t ~touch ~flow ~lo ~hi =
  let ok = ref true in
  let meta = ref None in
  iter_blocks t ~flow ~lo ~hi (fun key blo bhi ->
      if !ok then begin
        let blk =
          if touch then Leotp_util.Lru.find t.blocks key
          else Leotp_util.Lru.peek t.blocks key
        in
        match blk with
        | Some blk when Interval_set.covers ~lo:blo ~hi:bhi blk.present ->
          if !meta = None then meta := find_meta blk ~lo:blo
        | Some _ | None -> ok := false
      end);
  if !ok then Some (match !meta with Some m -> m | None -> (0.0, false))
  else None

let lookup t ~flow ~lo ~hi =
  match lookup_inner t ~touch:true ~flow ~lo ~hi with
  | Some m ->
    t.stats.hits <- t.stats.hits + 1;
    Some m
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    None

let contains t ~flow ~lo ~hi =
  lookup_inner t ~touch:false ~flow ~lo ~hi <> None

let used_bytes t = t.used
let stats t = t.stats

let drop_flow t ~flow =
  let keys = ref [] in
  Leotp_util.Lru.iter
    (fun ((f, _) as key) blk -> if f = flow then keys := (key, blk.bytes) :: !keys)
    t.blocks;
  List.iter
    (fun (key, bytes) ->
      Leotp_util.Lru.remove t.blocks key;
      t.used <- t.used - bytes)
    !keys
