(** Assemble a LEOTP transfer over a topology.

    [over_chain] places the Consumer at one end, the Producer at the
    other, and Midnodes on interior nodes according to [coverage] and the
    ablation configuration — the way the paper deploys LEOTP over a path
    of ground stations and satellites.  [attach] wires a single flow onto
    nodes the caller picked (dumbbell experiments). *)

type t = {
  consumer : Consumer.t;
  producer : Producer.t;
  midnodes : Midnode.t list;
  metrics : Leotp_net.Flow_metrics.t;
}

val attach :
  Leotp_sim.Engine.t ->
  config:Config.t ->
  consumer_node:Leotp_net.Node.t ->
  producer_node:Leotp_net.Node.t ->
  midnodes:Midnode.t list ->
  flow:int ->
  ?total_bytes:int ->
  ?on_complete:(unit -> unit) ->
  unit ->
  t
(** Installs endpoint handlers; the given midnodes are shared
    infrastructure (already installed on their nodes) and are only listed
    for stats access. *)

val over_chain :
  Leotp_sim.Engine.t ->
  config:Config.t ->
  chain:Leotp_net.Topology.chain ->
  flow:int ->
  ?total_bytes:int ->
  ?coverage:float ->
  ?coverage_rng:Leotp_util.Rng.t ->
  ?on_complete:(unit -> unit) ->
  unit ->
  t
(** Consumer at [chain.nodes.(0)], Producer at the far end.  [coverage]
    (default 1.0) is the fraction of interior nodes running a Midnode
    (paper §V-C, 25% deployment); the rest stay plain forwarders.  With
    ablation [No_midnodes] no Midnode is created regardless. *)

val start : t -> unit
val stop : t -> unit
