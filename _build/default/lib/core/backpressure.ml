(** Inter-hop rate coordination (paper §III-C, eqs 9-10).

    The Requester advertises to its upstream Responder the rate

      rate_bp = rate_next_hop + (BL_tar - BL) / hopRTT          (9)
      rate    = min (cwnd / hopRTT, rate_bp)                    (10)

    i.e. the inflow that brings the sending buffer back to its target
    length within one hopRTT on top of the current outflow.  (The paper
    prints eq (9) with [BL - BLtar]; with that sign a growing backlog
    would {i raise} the requested inflow, the opposite of backpressure —
    we use the draining form, which also matches the paper's prose "if
    the downstream sending rate is lower than the upstream, the upstream
    will decrease its sending rate".) *)

let rate_bp ~config ~buffer_len ~next_hop_rate ~hop_rtt =
  let bl_tar = float_of_int config.Config.bl_target in
  let rtt = Float.max hop_rtt 1e-4 in
  Float.max 0.0 (next_hop_rate +. ((bl_tar -. float_of_int buffer_len) /. rtt))

let advertised_rate ~config ~cc ~now ~buffer_len ~next_hop_rate =
  let window_rate = Hop_cc.rate cc ~now in
  let hop_rtt =
    match Hop_cc.hop_rtt cc with Some r -> r | None -> 0.01
  in
  Float.min window_rate
    (rate_bp ~config ~buffer_len ~next_hop_rate ~hop_rtt)
