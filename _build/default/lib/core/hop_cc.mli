(** Requester-driven per-hop congestion control (paper §III-C, eqs 6-8).

    RTT-based, Vegas-like: per-packet hopRTT = Interest OWD + Data OWD;
    [hopRTT] is an EWMA of the samples and [hopRTT_min] the minimum over
    the recent 5 s.  Once per hopRTT the window is adjusted:

      BDP      = throughput * hopRTT_min                       (6)
      QueueLen = throughput * (hopRTT - hopRTT_min)            (7)
      cwnd     = 2*cwnd            in slow start               (8)
               | cwnd + MSS        if QueueLen <= M
               | k * BDP           otherwise

    Throughput is the delivery rate the Requester observes on this hop. *)

type t

val create : ?pipe_full_exit:bool -> config:Config.t -> now:float -> unit -> t
(** [pipe_full_exit] (default true) additionally leaves slow start when
    the window outruns 2x the measured delivery rate — needed on Midnode
    hops where Responder buffering is invisible to hopRTT; the Consumer's
    loop measurement sees that queueing directly and turns it off. *)

val on_data : t -> now:float -> interest_owd:float -> data_owd:float -> bytes:int -> unit
(** One received Data packet with its two one-way-delay components. *)

val on_delivered : t -> now:float -> bytes:int -> unit
(** Count delivered bytes without an RTT sample (retransmitted data,
    where the loop time is ambiguous). *)

val cwnd : t -> float
(** bytes *)

val rate : t -> now:float -> float
(** cwnd / hopRTT — the window expressed as a rate (input to eq 10). *)

val hop_rtt : t -> float option
val hop_rtt_min : t -> now:float -> float option
val throughput : t -> float
(** smoothed delivery rate, bytes/s *)

val queue_len : t -> now:float -> float
(** eq (7) estimate, bytes *)

val in_slow_start : t -> bool
