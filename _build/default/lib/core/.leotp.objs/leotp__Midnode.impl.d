lib/core/midnode.ml: Backpressure Cache Config Float Hashtbl Hop_cc Leotp_net Leotp_sim List Pit Printf Send_buffer Shr Wire
