lib/core/send_buffer.ml: Config Float Hashtbl Leotp_net Leotp_sim Leotp_util Queue Wire
