lib/core/cache.mli: Config
