lib/core/backpressure.ml: Config Float Hop_cc
