lib/core/shr.ml: Config List
