lib/core/session.mli: Config Consumer Leotp_net Leotp_sim Leotp_util Midnode Producer
