lib/core/hop_cc.ml: Config Float Leotp_util
