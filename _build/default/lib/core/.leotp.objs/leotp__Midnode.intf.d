lib/core/midnode.mli: Cache Config Leotp_net Leotp_sim
