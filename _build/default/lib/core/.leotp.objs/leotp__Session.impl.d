lib/core/session.ml: Array Config Consumer Float Fun Leotp_net Leotp_util List Midnode Producer Wire
