lib/core/shr.mli: Config
