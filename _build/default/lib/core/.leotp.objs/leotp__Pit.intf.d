lib/core/pit.mli:
