lib/core/producer.mli: Config Leotp_net Leotp_sim
