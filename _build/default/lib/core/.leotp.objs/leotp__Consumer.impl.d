lib/core/consumer.ml: Config Float Hop_cc Int Leotp_net Leotp_sim Leotp_util List Map Seq Shr Wire
