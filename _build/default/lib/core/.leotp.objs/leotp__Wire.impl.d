lib/core/wire.ml: Config Format Leotp_net
