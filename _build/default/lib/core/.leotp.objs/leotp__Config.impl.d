lib/core/config.ml:
