lib/core/hop_cc.mli: Config
