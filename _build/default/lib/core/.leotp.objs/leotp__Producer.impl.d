lib/core/producer.ml: Config Float Int Leotp_net Leotp_sim List Map Send_buffer Wire
