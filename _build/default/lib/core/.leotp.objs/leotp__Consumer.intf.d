lib/core/consumer.mli: Config Leotp_net Leotp_sim
