lib/core/send_buffer.mli: Config Leotp_net Leotp_sim
