lib/core/pit.ml: Hashtbl List
