lib/core/cache.ml: Config Leotp_util List
