type entry = { mutable consumers : int list; created : float }
type key = int * int * int (* flow, lo, hi *)

type t = { expiry : float; table : (key, entry) Hashtbl.t }

let create ~expiry = { expiry; table = Hashtbl.create 64 }

let fresh t ~now e = now -. e.created < t.expiry

let register t ~now ~flow ~lo ~hi ~consumer =
  let key = (flow, lo, hi) in
  match Hashtbl.find_opt t.table key with
  | Some e when fresh t ~now e ->
    if not (List.mem consumer e.consumers) then
      e.consumers <- consumer :: e.consumers;
    false
  | _ ->
    Hashtbl.replace t.table key { consumers = [ consumer ]; created = now };
    true

let satisfy t ~now ~flow ~lo ~hi =
  let key = (flow, lo, hi) in
  match Hashtbl.find_opt t.table key with
  | Some e ->
    Hashtbl.remove t.table key;
    if fresh t ~now e then e.consumers else []
  | None -> []

let pending t = Hashtbl.length t.table

let expire_before t ~now =
  let stale =
    Hashtbl.fold
      (fun k e acc -> if fresh t ~now e then acc else k :: acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) stale
