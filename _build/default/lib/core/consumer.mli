(** LEOTP Consumer: the end receiver that drives the transfer.

    Issues Interests for MSS-sized byte ranges, paced and windowed by the
    last hop's congestion controller (§III-C); provides end-to-end
    reliability through Timeout Retransmission (TR, §III-B) with RFC 6298
    RTO and 1.5x backoff; participates in SHR (it is a node too) so holes
    it observes are re-requested without waiting for the timeout; and on
    receiving a Void Packet Header resets the pending Interest's timer so
    TR does not race the in-network retransmission. *)

type t

val create :
  Leotp_sim.Engine.t ->
  config:Config.t ->
  node:Leotp_net.Node.t ->
  producer:int ->
  flow:int ->
  ?total_bytes:int ->
  ?metrics:Leotp_net.Flow_metrics.t ->
  ?on_complete:(unit -> unit) ->
  ?on_prefix:(pos:int -> len:int -> unit) ->
  unit ->
  t
(** [total_bytes]: fetch exactly that many bytes then finish; omit for an
    unbounded flow (runs until the experiment stops it). *)

val start : t -> unit
val handle_packet : t -> Leotp_net.Packet.t -> unit
(** Feed a Data packet or VPH addressed to this consumer. *)

val complete : t -> bool
val received_bytes : t -> int

val delivered_prefix : t -> int
(** Length of the contiguous in-order prefix delivered so far. *)

val outstanding_bytes : t -> int
val cwnd : t -> float
val hop_rtt : t -> float option
val metrics : t -> Leotp_net.Flow_metrics.t
val interests_sent : t -> int
val interest_retx : t -> int
val stop : t -> unit
