(* Intervals keyed by their lower bound; invariant: values are > key,
   intervals are disjoint and non-adjacent (adjacent runs are merged). *)

module M = Map.Make (Int)

type t = int M.t

let empty = M.empty
let is_empty = M.is_empty

(* The interval containing or preceding [x], if any. *)
let find_before x t =
  match M.find_last_opt (fun lo -> lo <= x) t with
  | Some (lo, hi) -> Some (lo, hi)
  | None -> None

let add ~lo ~hi t =
  if lo >= hi then t
  else begin
    (* Extend [lo, hi) to absorb an overlapping-or-adjacent predecessor
       (which may entirely contain the new range). *)
    let lo, hi, t =
      match find_before lo t with
      | Some (plo, phi) when phi >= lo -> (min plo lo, max hi phi, M.remove plo t)
      | _ -> (lo, hi, t)
    in
    (* Absorb all successors starting within or adjacent to [lo, hi). *)
    let rec absorb hi t =
      match M.find_first_opt (fun l -> l >= lo) t with
      | Some (slo, shi) when slo <= hi -> absorb (max hi shi) (M.remove slo t)
      | _ -> (hi, t)
    in
    let hi, t = absorb hi t in
    M.add lo hi t
  end

let remove ~lo ~hi t =
  if lo >= hi then t
  else begin
    let t =
      match find_before lo t with
      | Some (plo, phi) when phi > lo ->
        let t = M.remove plo t in
        let t = if plo < lo then M.add plo lo t else t in
        if phi > hi then M.add hi phi t else t
      | _ -> t
    in
    let rec strip t =
      match M.find_first_opt (fun l -> l >= lo) t with
      | Some (slo, shi) when slo < hi ->
        let t = M.remove slo t in
        let t = if shi > hi then M.add hi shi t else t in
        strip t
      | _ -> t
    in
    strip t
  end

let mem x t =
  match find_before x t with Some (_, hi) -> x < hi | None -> false

let covers ~lo ~hi t =
  lo >= hi
  || (match find_before lo t with Some (_, phi) -> phi >= hi | None -> false)

let intersects ~lo ~hi t =
  if lo >= hi then false
  else
    (match find_before lo t with Some (_, phi) -> phi > lo | None -> false)
    ||
    (match M.find_first_opt (fun l -> l >= lo) t with
    | Some (slo, _) -> slo < hi
    | None -> false)

let fold f t init = M.fold f t init
let cardinal t = fold (fun lo hi acc -> acc + (hi - lo)) t 0
let intervals t = List.rev (fold (fun lo hi acc -> (lo, hi) :: acc) t [])
let count_intervals t = M.cardinal t

let gaps ~lo ~hi t =
  if lo >= hi then []
  else begin
    let cursor = ref lo and acc = ref [] in
    let visit ilo ihi =
      if ihi > lo && ilo < hi then begin
        if ilo > !cursor then acc := (!cursor, min ilo hi) :: !acc;
        cursor := max !cursor ihi
      end
    in
    M.iter visit t;
    if !cursor < hi then acc := (!cursor, hi) :: !acc;
    List.rev !acc
  end

let first_missing ~lo t =
  match find_before lo t with
  | Some (_, hi) when hi > lo -> hi
  | _ -> lo

let union a b = fold (fun lo hi acc -> add ~lo ~hi acc) a b
let equal = M.equal Int.equal

let pp ppf t =
  let pp_iv ppf (lo, hi) = Format.fprintf ppf "[%d,%d)" lo hi in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ") pp_iv)
    (intervals t)
