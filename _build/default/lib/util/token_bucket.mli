(** Token-bucket rate limiter.

    Paper §III-C: the Responder's Rate Limiter "uses this rate to control
    the data sending process by the token bucket algorithm".  Tokens are
    bytes; the bucket refills continuously at [rate] bytes/second up to
    [burst] bytes. *)

type t

val create : rate:float -> burst:float -> now:float -> t

val set_rate : t -> now:float -> float -> unit
(** Update the refill rate (tokens accrued so far at the old rate are kept). *)

val rate : t -> float

val try_consume : t -> now:float -> int -> bool
(** Take [n] tokens if available; returns whether it succeeded. *)

val time_until : t -> now:float -> int -> float
(** Seconds from [now] until [n] tokens will be available (0 if already). *)

val available : t -> now:float -> float
