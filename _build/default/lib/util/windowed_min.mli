(** Sliding-window minimum / maximum over timestamped samples.

    Used for [hopRTT_min] ("the minimal hopRTT in the recent 5 seconds",
    paper §III-C) and for BBR's windowed max-bandwidth / min-RTT filters.
    Amortized O(1) per sample (monotonic wedge). *)

type t

val create_min : window:float -> t
(** Tracks the minimum of samples whose timestamp is within [window] of the
    most recent query/insert time. *)

val create_max : window:float -> t

val set_window : t -> float -> unit
(** Adjust the window length (e.g. BBR's 10-round-trip bandwidth filter,
    whose span follows the measured RTT). *)

val add : t -> now:float -> float -> unit
val get : t -> now:float -> float option
val get_or : t -> now:float -> default:float -> float
val clear : t -> unit
