(** RFC 6298 retransmission-timeout estimator.

    Shared by the TCP engine and LEOTP's Consumer-driven Timeout
    Retransmission (paper §III-B): SRTT/RTTVAR smoothing, the classic
    [srtt + 4 * rttvar] timeout, and exponential backoff.  LEOTP backs off
    by a factor of 1.5 per timeout (paper) while TCP doubles; the factor is
    a parameter. *)

type t

val create :
  ?initial_rto:float ->
  ?min_rto:float ->
  ?max_rto:float ->
  ?backoff_factor:float ->
  unit ->
  t
(** Defaults: initial 1 s, min 0.2 s, max 60 s, backoff factor 2.0. *)

val observe : t -> float -> unit
(** Feed an RTT sample (seconds); resets any backoff. *)

val rto : t -> float
(** Current timeout including backoff. *)

val base_rto : t -> float
(** Timeout without backoff. *)

val backoff : t -> unit
(** Multiply the timeout by the backoff factor (capped at [max_rto]). *)

val reset_backoff : t -> unit
val srtt : t -> float option
val rttvar : t -> float option
