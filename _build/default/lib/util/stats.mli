(** Descriptive statistics over float samples.

    [t] is an append-only sample collector; summary functions sort lazily
    and cache the sorted view.  Also provides streaming mean/variance
    (Welford), exponentially weighted moving averages, Jain's fairness
    index, and empirical CDF extraction for the paper's CDF figures. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val is_empty : t -> bool
val mean : t -> float
val stddev : t -> float
val min : t -> float
val max : t -> float
val total : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0, 100]; linear interpolation. *)

val median : t -> float

val cdf_points : ?points:int -> t -> (float * float) list
(** [(value, cumulative_fraction)] pairs suitable for plotting a CDF. *)

val to_list : t -> float list

val jain_index : float list -> float
(** Jain's fairness index of a throughput allocation; 1 = perfectly fair.
    Returns [nan] on the empty list. *)

(** Streaming mean/variance that never stores samples. *)
module Welford : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
end

(** Exponentially weighted moving average. *)
module Ewma : sig
  type t

  val create : alpha:float -> t
  (** [alpha] is the weight of each new sample, in (0, 1]. *)

  val add : t -> float -> unit
  val value : t -> float
  (** Current average; [nan] before the first sample. *)

  val value_or : t -> default:float -> float
end
