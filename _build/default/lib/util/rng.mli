(** Seedable random-number substreams.

    Every stochastic component of the simulator (per-link loss, bandwidth
    bias, workload arrival, ...) draws from its own named substream so that
    experiments are reproducible and components are statistically
    independent of each other regardless of call interleaving. *)

type t

val create : seed:int -> t
(** Root generator for a whole experiment. *)

val substream : t -> string -> t
(** [substream t name] derives an independent generator from [t]; the same
    [name] always yields the same stream for a given root seed. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [lo, hi). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normally distributed (Box-Muller). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
