(** Append-only timestamped series with windowed aggregation.

    Backs throughput-over-time plots (Fig 15's fairness/convergence traces)
    and rate sampling in scenarios. *)

type t

val create : unit -> t
val add : t -> time:float -> float -> unit
val length : t -> int
val to_list : t -> (float * float) list

val window_sum : t -> lo:float -> hi:float -> float
(** Sum of values with [lo <= time < hi]. *)

val window_mean : t -> lo:float -> hi:float -> float

val bucketize : t -> width:float -> t_end:float -> (float * float) list
(** [(bucket_start, sum_of_values)] for consecutive buckets of [width]
    seconds from time 0 to [t_end]. *)

val rate_series : t -> width:float -> t_end:float -> (float * float) list
(** Like {!bucketize} but each bucket's sum is divided by [width]
    (e.g. bytes recorded per event -> bytes/second per bucket). *)
