lib/util/lru.mli:
