lib/util/windowed_min.ml: List
