lib/util/rng.mli:
