lib/util/rto.ml: Float
