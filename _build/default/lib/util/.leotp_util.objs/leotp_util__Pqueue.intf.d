lib/util/pqueue.mli:
