lib/util/interval_set.ml: Format Int List Map
