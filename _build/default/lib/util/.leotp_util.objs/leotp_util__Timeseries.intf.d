lib/util/timeseries.mli:
