lib/util/stats.mli:
