lib/util/rto.mli:
