lib/util/units.ml:
