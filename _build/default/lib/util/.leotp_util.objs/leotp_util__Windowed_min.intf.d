lib/util/windowed_min.mli:
