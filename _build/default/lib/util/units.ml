(** Unit conversions used throughout the simulator.

    Internal conventions: time in seconds, sizes in bytes, rates in
    bytes/second, distances in meters.  The paper quotes link rates in
    Mbps (decimal megabits) and delays in milliseconds. *)

let bits_per_byte = 8.0

(** Speed of light in vacuum, m/s (used for ISL propagation delays). *)
let speed_of_light = 299_792_458.0

let mbps_to_bytes_per_sec mbps = mbps *. 1_000_000.0 /. bits_per_byte
let bytes_per_sec_to_mbps bps = bps *. bits_per_byte /. 1_000_000.0
let ms_to_sec ms = ms /. 1_000.0
let sec_to_ms s = s *. 1_000.0
let km_to_m km = km *. 1_000.0
let mb_to_bytes mb = mb * 1_000_000

(** Earth's mean radius, meters. *)
let earth_radius = 6_371_000.0

(** Standard gravitational parameter of Earth, m^3/s^2. *)
let earth_mu = 3.986_004_418e14
