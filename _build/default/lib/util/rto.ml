type t = {
  min_rto : float;
  max_rto : float;
  initial_rto : float;
  backoff_factor : float;
  mutable srtt : float;
  mutable rttvar : float;
  mutable primed : bool;
  mutable backoff_mult : float;
}

let create ?(initial_rto = 1.0) ?(min_rto = 0.2) ?(max_rto = 60.0)
    ?(backoff_factor = 2.0) () =
  {
    min_rto;
    max_rto;
    initial_rto;
    backoff_factor;
    srtt = 0.0;
    rttvar = 0.0;
    primed = false;
    backoff_mult = 1.0;
  }

let observe t r =
  if t.primed then begin
    (* RFC 6298 §2.3: beta = 1/4, alpha = 1/8. *)
    t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt -. r));
    t.srtt <- (0.875 *. t.srtt) +. (0.125 *. r)
  end
  else begin
    t.srtt <- r;
    t.rttvar <- r /. 2.0;
    t.primed <- true
  end;
  t.backoff_mult <- 1.0

let base_rto t =
  if not t.primed then t.initial_rto
  else
    Float.min t.max_rto
      (Float.max t.min_rto (t.srtt +. Float.max 0.000_1 (4.0 *. t.rttvar)))

let rto t = Float.min t.max_rto (base_rto t *. t.backoff_mult)
let backoff t = t.backoff_mult <- t.backoff_mult *. t.backoff_factor
let reset_backoff t = t.backoff_mult <- 1.0
let srtt t = if t.primed then Some t.srtt else None
let rttvar t = if t.primed then Some t.rttvar else None
