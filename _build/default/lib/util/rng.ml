type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x1e07; 0x9e3779b9 |]

let substream t name =
  (* Derive a child seed from the parent stream and the name hash; drawing
     from [t] here is deterministic in creation order, so substreams must be
     created eagerly at setup time (which all callers do). *)
  let h = Hashtbl.hash name in
  let s = Random.State.bits t in
  Random.State.make [| s; h; s lxor h; 0x5e07 land max_int |]

let float t bound = Random.State.float t bound
let int t bound = Random.State.int t bound
let bool t = Random.State.bool t
let bernoulli t p = p > 0. && Random.State.float t 1.0 < p
let uniform t lo hi = lo +. Random.State.float t (hi -. lo)

let exponential t ~mean =
  let u = 1.0 -. Random.State.float t 1.0 in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = 1.0 -. Random.State.float t 1.0 in
  let u2 = Random.State.float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
