(* End-to-end tests for the many-flow fleet engine: a ~500-flow workload
   over the live Walker constellation must satisfy every PR 2 trace
   invariant, leak nothing (packet pool and PITs empty after
   retirement), and produce bit-identical digests on 1 vs N worker
   domains. *)

module Fleet = Leotp_scenario.Fleet
module Workload = Leotp_scenario.Workload
module Invariants = Leotp_scenario.Invariants
module Runner = Leotp_scenario.Runner
module Pool = Leotp_net.Packet_pool

(* A quick spec: ~500 flows over a 30 s horizon.  Shared by all tests so
   the (expensive) runs stay few; results are deterministic, so re-runs
   inside one test binary are cheap to reason about. *)
let spec =
  let wl =
    Workload.scale_to
      { Workload.default with Workload.seed = 1; horizon = 30.0 }
      ~flows:500
  in
  { Fleet.default with Fleet.workload = wl }

let run_with_jobs n =
  Runner.set_jobs n;
  Fun.protect
    ~finally:(fun () -> Runner.set_jobs 1)
    (fun () -> Fleet.run spec)

let test_invariants_and_completion () =
  Atomic.set Invariants.self_check true;
  Fun.protect
    ~finally:(fun () -> Atomic.set Invariants.self_check false)
  @@ fun () ->
  let s = run_with_jobs 1 in
  Alcotest.(check bool) "invariants ok" true s.Fleet.invariants_ok;
  Alcotest.(check bool) "hundreds of flows ran" true
    (s.Fleet.flows_started > 200);
  Alcotest.(check int) "every started flow completed" s.Fleet.flows_started
    s.Fleet.flows_completed;
  Alcotest.(check bool) "bytes delivered" true (s.Fleet.bytes_delivered > 0);
  Alcotest.(check bool) "packets simulated" true (s.Fleet.packets > 10_000);
  (* Every shard ran all five invariant checks. *)
  List.iter
    (fun (r : Fleet.shard_stats) ->
      Alcotest.(check int)
        (Printf.sprintf "shard %d reports" r.Fleet.shard)
        5
        (List.length r.Fleet.reports))
    s.Fleet.shards

let test_digest_jobs_independent () =
  let seq = run_with_jobs 1 in
  let par = run_with_jobs 2 in
  Alcotest.(check string) "combined digest jobs 1 = jobs 2" seq.Fleet.digest
    par.Fleet.digest;
  List.iter2
    (fun (a : Fleet.shard_stats) (b : Fleet.shard_stats) ->
      Alcotest.(check string)
        (Printf.sprintf "shard %d digest" a.Fleet.shard)
        a.Fleet.digest b.Fleet.digest)
    seq.Fleet.shards par.Fleet.shards;
  Alcotest.(check int) "flows agree" seq.Fleet.flows_completed
    par.Fleet.flows_completed

let test_retirement_leaves_nothing () =
  (* Pool debug poisons released packets, so any use-after-release in
     the retire path crashes here rather than corrupting silently. *)
  Pool.set_debug true;
  Pool.reset_double_release_count ();
  Fun.protect ~finally:(fun () -> Pool.set_debug false) @@ fun () ->
  let s = run_with_jobs 1 in
  Alcotest.(check int) "no double release anywhere in the run" 0
    (Pool.double_release_count ());
  Alcotest.(check int) "no pooled packet leaked" 0 s.Fleet.pool_live_delta;
  Alcotest.(check int) "all PITs empty" 0 s.Fleet.pit_pending_end;
  List.iter
    (fun (r : Fleet.shard_stats) ->
      Alcotest.(check int)
        (Printf.sprintf "shard %d pool delta" r.Fleet.shard)
        0 r.Fleet.pool_live_delta)
    s.Fleet.shards

let test_shard_partition_is_stable () =
  (* The shard count is part of the digest contract: same spec, same
     shard list, deterministic flow counts per shard. *)
  let a = run_with_jobs 1 and b = run_with_jobs 1 in
  Alcotest.(check int) "shard count" spec.Fleet.shards
    (List.length a.Fleet.shards);
  List.iter2
    (fun (x : Fleet.shard_stats) (y : Fleet.shard_stats) ->
      Alcotest.(check int) "shard id" x.Fleet.shard y.Fleet.shard;
      Alcotest.(check int) "flows per shard" x.Fleet.flows_started
        y.Fleet.flows_started)
    a.Fleet.shards b.Fleet.shards;
  Alcotest.(check string) "digest reproducible" a.Fleet.digest b.Fleet.digest

let test_route_memoization_effective () =
  let s = run_with_jobs 1 in
  Alcotest.(check int) "one route query per started flow"
    s.Fleet.flows_started s.Fleet.route_queries;
  Alcotest.(check bool)
    (Printf.sprintf "memo hit: %d computes < %d queries"
       s.Fleet.route_computes s.Fleet.route_queries)
    true
    (s.Fleet.route_computes < s.Fleet.route_queries)

let () =
  Alcotest.run "leotp_manyflow"
    [
      ( "fleet",
        [
          Alcotest.test_case "invariants + completion" `Quick
            test_invariants_and_completion;
          Alcotest.test_case "digest jobs-independent" `Quick
            test_digest_jobs_independent;
          Alcotest.test_case "retirement leaves nothing" `Quick
            test_retirement_leaves_nothing;
          Alcotest.test_case "stable shard partition" `Quick
            test_shard_partition_is_stable;
          Alcotest.test_case "route memoization" `Quick
            test_route_memoization_effective;
        ] );
    ]
