(* leotp-race: fixture tests for the interprocedural domain-safety pass
   (unguarded accesses flagged with witness paths, guarded/atomic code
   clean, item-level suppression honoured) plus a QCheck round-trip on
   the call-graph builder over generated nested modules. *)

module Finding = Leotp_lint.Finding
module Race = Leotp_lint.Race
module Callgraph = Leotp_lint.Callgraph
module Engine = Leotp_lint.Engine

let analyze src = Race.analyze_sources [ ("lib/core/fixture.ml", src) ]

let errors findings =
  List.filter (fun f -> f.Finding.severity = Finding.Error) findings

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Fixtures *)

(* A ref mutated from a closure handed to Domain.spawn: the canonical
   injected race.  One finding, correct line, witness path showing
   entrypoint -> callee -> access. *)
let test_flags_unguarded_ref () =
  let src =
    "let counter = ref 0\n\
     let bump () = incr counter\n\
     let start () = Domain.spawn (fun () -> bump ())\n"
  in
  match errors (analyze src) with
  | [ f ] ->
    Alcotest.(check string) "rule" Race.rule_id f.Finding.rule;
    Alcotest.(check int) "access line" 2 f.Finding.line;
    Alcotest.(check bool) "witness names the entrypoint" true
      (contains f.Finding.message "Fixture.start.<entry:");
    Alcotest.(check bool) "witness walks through bump" true
      (contains f.Finding.message "Fixture.bump");
    Alcotest.(check bool) "names the global" true
      (contains f.Finding.message "Fixture.counter")
  | fs -> Alcotest.failf "expected exactly 1 error, got %d" (List.length fs)

(* Same shape, but the access sits after Mutex.lock in a sequence: the
   lockset heuristic must keep it clean. *)
let test_mutex_sequence_clean () =
  let src =
    "let m = Mutex.create ()\n\
     let counter = ref 0\n\
     let bump () = Mutex.lock m; incr counter; Mutex.unlock m\n\
     let start () = Domain.spawn (fun () -> bump ())\n"
  in
  Alcotest.(check int) "no errors" 0 (List.length (errors (analyze src)))

let test_guarded_clean () =
  let src =
    "let state = Leotp_util.Guarded.create 0\n\
     let bump () = Leotp_util.Guarded.with_ state (fun s -> s + 1)\n\
     let start () = Domain.spawn (fun () -> bump ())\n"
  in
  Alcotest.(check int) "no errors" 0 (List.length (errors (analyze src)))

let test_atomic_clean () =
  let src =
    "let hits = Atomic.make 0\n\
     let bump () = Atomic.incr hits\n\
     let start () = Domain.spawn (fun () -> bump ())\n"
  in
  Alcotest.(check int) "no errors" 0 (List.length (errors (analyze src)))

(* The same unguarded access as the first fixture, justified with an
   item-level allow at the access site. *)
let test_allow_suppresses () =
  let src =
    "let counter = ref 0\n\
     let bump () = (incr counter) [@leotp.allow \"domain-unsafe-access\"]\n\
     let start () = Domain.spawn (fun () -> bump ())\n"
  in
  Alcotest.(check int) "suppressed" 0 (List.length (errors (analyze src)))

(* A named function passed to a spawn sink (no literal closure) must
   still be treated as an entrypoint. *)
let test_named_entrypoint () =
  let src =
    "let counter = ref 0\n\
     let worker () = incr counter\n\
     let start () = Domain.spawn worker\n"
  in
  match errors (analyze src) with
  | [ f ] ->
    Alcotest.(check int) "access line" 2 f.Finding.line;
    Alcotest.(check bool) "witness walks through worker" true
      (contains f.Finding.message "Fixture.worker")
  | fs -> Alcotest.failf "expected exactly 1 error, got %d" (List.length fs)

(* A top-level mutable-record binding detected via `x.f <- e` rather
   than a creator call. *)
let test_mutable_record_field () =
  let src =
    "type s = { mutable n : int }\n\
     let st = { n = 0 }\n\
     let bump () = st.n <- st.n + 1\n\
     let start () = Domain.spawn (fun () -> bump ())\n"
  in
  match errors (analyze src) with
  | f :: _ ->
    Alcotest.(check bool) "names the record binding" true
      (contains f.Finding.message "Fixture.st")
  | [] -> Alcotest.fail "expected a mutable-field finding"

(* Cross-file: the global lives in one unit, the entrypoint in
   another. *)
let test_cross_module () =
  let state = "let table = Hashtbl.create 16\nlet put k v = Hashtbl.replace table k v\n" in
  let driver =
    "let start () = Domain.spawn (fun () -> State.put 1 2)\n"
  in
  let findings =
    Race.analyze_sources
      [ ("lib/core/state.ml", state); ("lib/core/driver.ml", driver) ]
  in
  match errors findings with
  | [ f ] ->
    Alcotest.(check string) "finding lands in state.ml" "lib/core/state.ml"
      f.Finding.file;
    Alcotest.(check bool) "witness starts in driver" true
      (contains f.Finding.message "Driver.start.<entry:")
  | fs -> Alcotest.failf "expected exactly 1 error, got %d" (List.length fs)

(* Deterministic output: analysis must not depend on input order. *)
let test_input_order_independent () =
  let a = ("lib/core/state.ml", "let t = ref 0\nlet poke () = incr t\n") in
  let b = ("lib/core/driver.ml", "let start () = Domain.spawn (fun () -> State.poke ())\n") in
  let f1 = Race.analyze_sources [ a; b ] in
  let f2 = Race.analyze_sources [ b; a ] in
  Alcotest.(check bool) "same findings either way" true (f1 = f2)

(* Code never reached from any entrypoint stays clean even if it pokes
   a mutable global: single-domain mutation is fine. *)
let test_unreachable_mutation_clean () =
  let src = "let counter = ref 0\nlet bump () = incr counter\n" in
  Alcotest.(check int) "no entrypoints, no findings" 0
    (List.length (errors (analyze src)))

(* ------------------------------------------------------------------ *)
(* QCheck: call-graph round-trip on generated modules *)

(* Generate a unit with t top-level defs f0..f(t-1) and m defs g0..
   g(m-1) inside `module Inner`, where each def calls a subset of the
   defs declared before it (encoded as a bitmask).  Render to source,
   parse, build the call graph, and check that the recovered def names
   and resolved call edges match the generated ones exactly. *)

type gen_unit = { top : int list list; inner : int list list }
(* top.(i) / inner.(i) = indices (into the combined earlier-def list)
   that def i calls.  Combined order: f0..f(t-1) then g0..g(m-1). *)

let gen_unit_gen =
  let open QCheck2.Gen in
  let callees_of_mask n_earlier mask =
    List.filter (fun i -> mask land (1 lsl i) <> 0)
      (List.init n_earlier Fun.id)
  in
  int_range 1 5 >>= fun t ->
  int_range 0 5 >>= fun m ->
  let masks k = list_repeat k (int_range 0 1023) in
  masks t >>= fun tm ->
  masks m >>= fun im ->
  let top = List.mapi (fun i mask -> callees_of_mask i mask) tm in
  let inner = List.mapi (fun i mask -> callees_of_mask (t + i) mask) im in
  return { top; inner }

let name_of_index ~t i = if i < t then Printf.sprintf "f%d" i
  else Printf.sprintf "Inner.g%d" (i - t)

(* Inside Inner, earlier Inner defs are referenced bare. *)
let written_name ~t ~in_inner i =
  if i < t then Printf.sprintf "f%d" i
  else if in_inner then Printf.sprintf "g%d" (i - t)
  else Printf.sprintf "Inner.g%d" (i - t)

let render { top; inner } =
  let t = List.length top in
  let buf = Buffer.create 256 in
  let body ~in_inner callees =
    if callees = [] then "()"
    else
      String.concat "; "
        (List.map (fun i -> written_name ~t ~in_inner i ^ " ()") callees)
  in
  List.iteri
    (fun i cs ->
      Buffer.add_string buf
        (Printf.sprintf "let f%d () = %s\n" i (body ~in_inner:false cs)))
    top;
  if inner <> [] then begin
    Buffer.add_string buf "module Inner = struct\n";
    List.iteri
      (fun i cs ->
        Buffer.add_string buf
          (Printf.sprintf "  let g%d () = %s\n" i (body ~in_inner:true cs)))
      inner;
    Buffer.add_string buf "end\n"
  end;
  Buffer.contents buf

let callgraph_roundtrip_prop =
  let open QCheck2 in
  Test.make ~name:"call graph round-trips generated modules" ~count:200
    gen_unit_gen (fun u ->
      let t = List.length u.top in
      let src = render u in
      match Engine.parse_impl ~path:"lib/core/fixture.ml" src with
      | Error msg -> QCheck2.Test.fail_reportf "parse failed: %s\n%s" msg src
      | Ok structure ->
        let cg = Callgraph.of_structure ~path:"lib/core/fixture.ml" structure in
        let expected_qnames =
          List.mapi (fun i _ -> "Fixture." ^ name_of_index ~t i)
            (u.top @ u.inner)
        in
        let got_qnames =
          List.map (fun (d : Callgraph.def) -> d.qname) cg.Callgraph.defs
        in
        if List.sort compare got_qnames <> List.sort compare expected_qnames
        then
          QCheck2.Test.fail_reportf "def mismatch: got [%s]\n%s"
            (String.concat "; " got_qnames) src
        else begin
          (* For each def, the set of generated defs its refs resolve to
             must equal its generated callee set.  All generated names
             are distinct, so the over-approximating [resolves] is exact
             here: every generated edge recovered, no spurious edge. *)
          let all = Array.of_list (u.top @ u.inner) in
          let n = Array.length all in
          let indices = List.init n Fun.id in
          let qname_of i = "Fixture." ^ name_of_index ~t i in
          List.for_all
            (fun (d : Callgraph.def) ->
              match List.find_opt (fun i -> qname_of i = d.qname) indices with
              | None -> false
              | Some idx ->
                let expected = List.sort compare all.(idx) in
                let resolved =
                  List.filter
                    (fun j ->
                      j <> idx
                      && List.exists
                           (fun (r : Callgraph.reference) ->
                             Callgraph.resolves ~scope:d.scope ~written:r.name
                               ~qname:(qname_of j))
                           d.refs)
                    indices
                in
                resolved = expected)
            cg.Callgraph.defs
        end)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "leotp_race"
    [
      ( "fixtures",
        [
          Alcotest.test_case "flags unguarded ref" `Quick
            test_flags_unguarded_ref;
          Alcotest.test_case "mutex sequence clean" `Quick
            test_mutex_sequence_clean;
          Alcotest.test_case "Guarded.with_ clean" `Quick test_guarded_clean;
          Alcotest.test_case "Atomic clean" `Quick test_atomic_clean;
          Alcotest.test_case "allow suppresses" `Quick test_allow_suppresses;
          Alcotest.test_case "named entrypoint" `Quick test_named_entrypoint;
          Alcotest.test_case "mutable record field" `Quick
            test_mutable_record_field;
          Alcotest.test_case "cross module witness" `Quick test_cross_module;
          Alcotest.test_case "input order independent" `Quick
            test_input_order_independent;
          Alcotest.test_case "unreachable mutation clean" `Quick
            test_unreachable_mutation_clean;
        ] );
      ("callgraph", [ qc callgraph_roundtrip_prop ]);
    ]
