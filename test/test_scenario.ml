(* Integration tests over the experiment harness: shrunken versions of
   the paper's scenarios asserting the qualitative *shape* results the
   paper reports (who wins, in which direction). *)

module C = Leotp_scenario.Common
module Cc = Leotp_tcp.Cc
module Stats = Leotp_util.Stats

let leotp = C.Leotp Leotp.Config.default

let run ?(hops = 5) ?(plr = 0.0) ?(duration = 40.0) ?bottleneck
    ?bandwidth_schedule proto =
  C.run_chain ~duration ?bottleneck ?bandwidth_schedule
    ~hops:(C.uniform_hops ~n:hops (C.link ~plr ~bw:20.0 ~delay:0.01 ()))
    proto

let test_summary_fields () =
  let s = run ~plr:0.005 leotp in
  Alcotest.(check string) "name" "leotp" s.C.protocol;
  Alcotest.(check bool) "positive goodput" true (s.C.goodput_mbps > 1.0);
  Alcotest.(check bool) "owd samples" true (Stats.count s.C.owd > 100);
  Alcotest.(check bool) "queuing >= 0" true (Stats.min s.C.queuing_delay >= 0.0);
  Alcotest.(check bool) "wire bytes counted" true (s.C.wire_bytes > s.C.app_bytes / 2)

let test_leotp_loss_insensitive_vs_cubic () =
  (* The Fig 12 shape: at 1%/hop loss LEOTP retains most of its clean
     throughput while Cubic collapses. *)
  let l_clean = run leotp and l_lossy = run ~plr:0.01 leotp in
  let c_clean = run (C.Tcp Cc.Cubic) and c_lossy = run ~plr:0.01 (C.Tcp Cc.Cubic) in
  let ratio a b = b.C.goodput_mbps /. a.C.goodput_mbps in
  Alcotest.(check bool)
    (Printf.sprintf "leotp keeps %.2f, cubic keeps %.2f"
       (ratio l_clean l_lossy) (ratio c_clean c_lossy))
    true
    (ratio l_clean l_lossy > ratio c_clean c_lossy +. 0.15)

let test_leotp_lower_queuing_than_cubic () =
  (* Loss-based TCP fills the bottleneck buffer; LEOTP's RTT-based hop
     control keeps queues near-empty (Figs 5/14/16 shape). *)
  let l = run leotp and c = run (C.Tcp Cc.Cubic) in
  Alcotest.(check bool)
    (Printf.sprintf "leotp %.1f ms < cubic %.1f ms"
       (Stats.mean l.C.queuing_delay *. 1000.0)
       (Stats.mean c.C.queuing_delay *. 1000.0))
    true
    (Stats.mean l.C.queuing_delay < Stats.mean c.C.queuing_delay)

let test_split_reduces_loss_penalty () =
  (* Fig 4 shape: splitting a lossy path rescues Cubic's throughput but
     costs delay. *)
  let e2e = run ~hops:8 ~plr:0.005 ~duration:50.0 (C.Tcp Cc.Cubic) in
  let split = run ~hops:8 ~plr:0.005 ~duration:50.0 (C.Split_tcp Cc.Cubic) in
  Alcotest.(check bool)
    (Printf.sprintf "split %.2f > e2e %.2f Mbps" split.C.goodput_mbps
       e2e.C.goodput_mbps)
    true
    (split.C.goodput_mbps > e2e.C.goodput_mbps);
  Alcotest.(check bool) "split delays data" true
    (Stats.mean split.C.owd >= Stats.mean e2e.C.owd)

let test_fluctuating_bottleneck_queue () =
  (* Fig 5/14 shape: under a fluctuating bottleneck with a long feedback
     loop, LEOTP's queuing stays below Cubic's. *)
  let schedule =
    [ (1, Leotp_net.Bandwidth.square_mbps ~mean:10.0 ~amplitude:1.0 ~period:2.0) ]
  in
  let l = run ~hops:5 ~duration:40.0 ~bandwidth_schedule:schedule leotp in
  let c = run ~hops:5 ~duration:40.0 ~bandwidth_schedule:schedule (C.Tcp Cc.Cubic) in
  Alcotest.(check bool)
    (Printf.sprintf "leotp q=%.1f ms, cubic q=%.1f ms"
       (Stats.mean l.C.queuing_delay *. 1000.0)
       (Stats.mean c.C.queuing_delay *. 1000.0))
    true
    (Stats.mean l.C.queuing_delay < Stats.mean c.C.queuing_delay);
  Alcotest.(check bool) "still delivers" true (l.C.goodput_mbps > 4.0)

let test_fairness_dumbbell_runs () =
  let summaries, series =
    C.run_flows_dumbbell ~duration:240.0
      ~access_delays:[ 0.0075; 0.0075; 0.0075 ]
      ~bottleneck:(C.link ~bw:5.0 ~delay:0.015 ())
      ~access:(C.link ~bw:100.0 ~delay:0.0075 ())
      ~starts:[ 0.0; 30.0; 60.0 ] leotp
  in
  Alcotest.(check int) "3 summaries" 3 (List.length summaries);
  Alcotest.(check int) "3 series" 3 (List.length series);
  (* All flows deliver data once started. *)
  List.iter
    (fun s -> Alcotest.(check bool) "flow active" true (s.C.app_bytes > 100_000))
    summaries;
  let rates =
    List.map
      (fun s ->
        Leotp_util.Units.bytes_per_sec_to_mbps
          (Leotp_util.Timeseries.window_sum s.C.delivery ~lo:120.0 ~hi:240.0
          /. 120.0))
      summaries
  in
  Alcotest.(check bool)
    (Printf.sprintf "fair-ish sharing (jain %.2f)" (Stats.jain_index rates))
    true
    (Stats.jain_index rates > 0.65)

let test_starlink_pair_shape () =
  (* Beijing-Shanghai without ISLs: both protocols work; LEOTP keeps its
     average queuing under ~60 ms (paper: ~16 ms vs PCC's 400+). *)
  let r =
    Leotp_scenario.Starlink.run_pair ~quick:true ~src:"Beijing" ~dst:"Shanghai"
      ~isls:false leotp
  in
  let s = r.Leotp_scenario.Starlink.summary in
  Alcotest.(check bool) "delivers" true (s.C.goodput_mbps > 4.0);
  Alcotest.(check bool)
    (Printf.sprintf "queuing %.1f ms bounded"
       (Stats.mean s.C.queuing_delay *. 1000.0))
    true
    (Stats.mean s.C.queuing_delay < 0.06);
  Alcotest.(check bool) "handover happened" true
    (r.Leotp_scenario.Starlink.switches >= 0)

let test_starlink_isls_long_path () =
  let r =
    Leotp_scenario.Starlink.run_pair ~quick:true ~src:"Beijing" ~dst:"New York"
      ~isls:true leotp
  in
  Alcotest.(check bool) "long path" true (r.Leotp_scenario.Starlink.mean_hops > 8.0);
  Alcotest.(check bool) "delivers across the Pacific" true
    (r.Leotp_scenario.Starlink.summary.C.goodput_mbps > 2.0)

(* Worker-domain count for the determinism tests: 4 by default, but
   overridable so bin/ci.sh can re-run the dynamic backstop with a
   different parallelism (LEOTP_TEST_JOBS=2) than the dev default. *)
let determinism_jobs () =
  match Option.bind (Sys.getenv_opt "LEOTP_TEST_JOBS") int_of_string_opt with
  | Some n when n >= 2 -> n
  | _ -> 4

let test_runner_parallel_determinism () =
  (* The acceptance bar for bench --jobs N: a sweep run on N worker
     domains must produce results byte-identical to the sequential run
     (every job owns its engine/rng and resets domain-local id counters,
     so exact float equality is required, not approximate). *)
  let module R = Leotp_scenario.Runner in
  let njobs = determinism_jobs () in
  let sweep () =
    R.grid
      [ leotp; C.Tcp Cc.Cubic ]
      [ 0.0; 0.01 ]
      (fun proto plr ->
        let s = run ~plr ~duration:12.0 proto in
        ( s.C.goodput_mbps,
          s.C.wire_bytes,
          s.C.app_bytes,
          s.C.retransmissions,
          s.C.congestion_drops,
          Stats.mean s.C.owd,
          Stats.mean s.C.queuing_delay ))
    |> List.concat_map (fun (_, rows) -> List.map snd rows)
  in
  R.set_jobs 1;
  let sequential = sweep () in
  R.set_jobs njobs;
  let parallel = sweep () in
  R.set_jobs 1;
  Alcotest.(check int) "same cell count" (List.length sequential)
    (List.length parallel);
  List.iteri
    (fun i (s, p) ->
      Alcotest.(check bool)
        (Printf.sprintf "cell %d identical (seq vs jobs=%d)" i njobs)
        true (s = p))
    (List.combine sequential parallel)

let test_theory_experiment_values () =
  let rows = Leotp_scenario.Experiments.fig03 () in
  match rows with
  | [ (_, e2e); (_, hbh) ] ->
    let get k l = List.assoc k l in
    Alcotest.(check (float 1e-9)) "e2e p99 = 300ms" 0.3 (get "p99" e2e);
    Alcotest.(check (float 1e-9)) "hbh p99 = 120ms" 0.12 (get "p99" hbh);
    Alcotest.(check bool) "hbh mean lower" true (get "mean" hbh < get "mean" e2e)
  | _ -> Alcotest.fail "two schemes expected"

let () =
  Alcotest.run "leotp_scenario"
    [
      ( "harness",
        [
          Alcotest.test_case "summary fields" `Quick test_summary_fields;
          Alcotest.test_case "fairness runs" `Quick test_fairness_dumbbell_runs;
          Alcotest.test_case "theory rows" `Quick test_theory_experiment_values;
          Alcotest.test_case "parallel determinism" `Quick
            test_runner_parallel_determinism;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "loss insensitivity vs cubic" `Slow
            test_leotp_loss_insensitive_vs_cubic;
          Alcotest.test_case "lower queuing than cubic" `Slow
            test_leotp_lower_queuing_than_cubic;
          Alcotest.test_case "split rescues cubic" `Slow
            test_split_reduces_loss_penalty;
          Alcotest.test_case "fluctuating bottleneck" `Slow
            test_fluctuating_bottleneck_queue;
        ] );
      ( "starlink",
        [
          Alcotest.test_case "BJ-SH bent pipe" `Slow test_starlink_pair_shape;
          Alcotest.test_case "BJ-NY ISLs" `Slow test_starlink_isls_long_path;
        ] );
    ]
