(* Tests for the constellation substrate: geometry, orbits, routing
   (Dijkstra vs Floyd-Warshall), and the city-pair path service. *)

open Leotp_constellation

let close ?(eps = 1e-6) = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Geo *)

let test_vec_ops () =
  let a = { Geo.x = 1.0; y = 2.0; z = 3.0 } in
  let b = { Geo.x = 4.0; y = 5.0; z = 6.0 } in
  close "dot" 32.0 (Geo.dot a b);
  close "norm" (sqrt 14.0) (Geo.norm a);
  close "distance" (sqrt 27.0) (Geo.distance a b);
  let s = Geo.scale 2.0 a in
  close "scale" 2.0 s.Geo.x

let test_rotations_preserve_norm () =
  let v = { Geo.x = 3.0; y = -1.0; z = 2.0 } in
  close ~eps:1e-9 "rot_z" (Geo.norm v) (Geo.norm (Geo.rot_z 1.234 v));
  close ~eps:1e-9 "rot_x" (Geo.norm v) (Geo.norm (Geo.rot_x 0.77 v))

let test_ground_position () =
  let r = Leotp_util.Units.earth_radius in
  let p = Geo.ground_position ~lat_deg:0.0 ~lon_deg:0.0 ~time:0.0 in
  close ~eps:1.0 "equator x" r p.Geo.x;
  close ~eps:1.0 "equator z" 0.0 p.Geo.z;
  let n = Geo.ground_position ~lat_deg:90.0 ~lon_deg:0.0 ~time:0.0 in
  close ~eps:1.0 "north pole z" r n.Geo.z;
  (* Earth rotation moves the point but keeps its radius and latitude. *)
  let later = Geo.ground_position ~lat_deg:45.0 ~lon_deg:10.0 ~time:3600.0 in
  let init = Geo.ground_position ~lat_deg:45.0 ~lon_deg:10.0 ~time:0.0 in
  close ~eps:1.0 "radius constant" (Geo.norm init) (Geo.norm later);
  close ~eps:1.0 "z constant (latitude)" init.Geo.z later.Geo.z;
  Alcotest.(check bool) "moved in x/y" true (Geo.distance init later > 1000.0)

let test_elevation () =
  let ground = Geo.ground_position ~lat_deg:0.0 ~lon_deg:0.0 ~time:0.0 in
  (* Satellite directly overhead. *)
  let overhead = Geo.scale ((Leotp_util.Units.earth_radius +. 1_150_000.0) /. Leotp_util.Units.earth_radius) ground in
  close ~eps:1e-6 "overhead = 90 deg" 90.0 (Geo.elevation_deg ~ground ~sat:overhead);
  Alcotest.(check bool) "visible" true (Geo.visible ~ground ~sat:overhead ());
  (* Satellite on the opposite side of the Earth. *)
  let opposite = Geo.scale (-1.0) overhead in
  Alcotest.(check bool) "not visible" false (Geo.visible ~ground ~sat:opposite ())

let test_great_circle () =
  (* Equatorial quarter circumference. *)
  close ~eps:1000.0 "quarter equator"
    (Float.pi /. 2.0 *. Leotp_util.Units.earth_radius)
    (Geo.great_circle_distance ~lat1:0.0 ~lon1:0.0 ~lat2:0.0 ~lon2:90.0);
  (* Beijing-Shanghai ~ 1067 km (the paper quotes 1968 km for BJ-HK). *)
  let bj = Cities.find_exn "Beijing" and sh = Cities.find_exn "Shanghai" in
  let d =
    Geo.great_circle_distance ~lat1:bj.Cities.lat ~lon1:bj.Cities.lon
      ~lat2:sh.Cities.lat ~lon2:sh.Cities.lon
  in
  Alcotest.(check bool)
    (Printf.sprintf "BJ-SH ~1067 km (%.0f)" (d /. 1000.0))
    true
    (d > 1.0e6 && d < 1.15e6)

(* ------------------------------------------------------------------ *)
(* Cities *)

let test_cities () =
  Alcotest.(check int) "100 cities" 100 Cities.count;
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " present") true (Cities.find name <> None))
    [ "Beijing"; "Shanghai"; "Hong Kong"; "Paris"; "New York" ];
  Alcotest.(check bool) "unknown" true (Cities.find "Atlantis" = None);
  (* Sane coordinates everywhere. *)
  Array.iter
    (fun c ->
      Alcotest.(check bool) (c.Cities.name ^ " lat") true
        (Float.abs c.Cities.lat <= 90.0);
      Alcotest.(check bool) (c.Cities.name ^ " lon") true
        (Float.abs c.Cities.lon <= 180.0))
    Cities.all

(* ------------------------------------------------------------------ *)
(* Walker *)

let w = Walker.create Walker.starlink

let test_walker_counts () =
  Alcotest.(check int) "1600 satellites" 1600 (Walker.count w);
  (* Orbital period for 1150 km is ~107-109 minutes. *)
  let period_min = Walker.orbital_period w /. 60.0 in
  Alcotest.(check bool)
    (Printf.sprintf "period %.1f min" period_min)
    true
    (period_min > 105.0 && period_min < 111.0)

let test_walker_altitude () =
  let expect = Leotp_util.Units.earth_radius +. 1_150_000.0 in
  for sat = 0 to 99 do
    let p = Walker.position w ~sat ~time:(float_of_int sat *. 13.7) in
    Alcotest.(check bool) "altitude constant" true
      (Float.abs (Geo.norm p -. expect) < 1.0)
  done

let test_walker_ids () =
  for id = 0 to Walker.count w - 1 do
    let s = Walker.sat_of_id w id in
    Alcotest.(check int) "id roundtrip" id (Walker.sat_id w s)
  done

let test_walker_motion () =
  (* Satellites move ~7.2 km/s at this altitude. *)
  let p0 = Walker.position w ~sat:0 ~time:0.0 in
  let p1 = Walker.position w ~sat:0 ~time:1.0 in
  let v = Geo.distance p0 p1 in
  Alcotest.(check bool) (Printf.sprintf "speed %.0f m/s" v) true
    (v > 7000.0 && v < 7500.0);
  (* Full period returns to the start. *)
  let p_t = Walker.position w ~sat:0 ~time:(Walker.orbital_period w) in
  Alcotest.(check bool) "periodic" true (Geo.distance p0 p_t < 1000.0)

let test_isl_neighbors () =
  let n = Walker.isl_neighbors w ~sat:0 in
  Alcotest.(check int) "4 neighbours (+grid)" 4 (List.length n);
  Alcotest.(check bool) "distinct" true
    (List.length (List.sort_uniq compare n) = 4);
  (* Neighbour distance is much smaller than a random pair. *)
  let p0 = Walker.position w ~sat:0 ~time:0.0 in
  List.iter
    (fun s ->
      let d = Geo.distance p0 (Walker.position w ~sat:s ~time:0.0) in
      Alcotest.(check bool) "neighbour close" true (d < 3.0e6))
    n

let test_visibility_search () =
  let bj = Cities.find_exn "Beijing" in
  let ground = Geo.ground_position ~lat_deg:bj.Cities.lat ~lon_deg:bj.Cities.lon ~time:0.0 in
  match Walker.nearest_visible w ~ground ~time:0.0 () with
  | Some sat ->
    let pos = Walker.position w ~sat ~time:0.0 in
    Alcotest.(check bool) "above mask" true (Geo.elevation_deg ~ground ~sat:pos >= 25.0)
  | None -> Alcotest.fail "a 1600-sat shell must cover Beijing"

(* ------------------------------------------------------------------ *)
(* Routing *)

let test_dijkstra_simple () =
  let g = Routing.create ~nodes:4 in
  Routing.add_edge g 0 1 1.0;
  Routing.add_edge g 1 2 1.0;
  Routing.add_edge g 0 2 5.0;
  Routing.add_edge g 2 3 1.0;
  (match Routing.dijkstra g ~src:0 ~dst:3 with
  | Some (path, d) ->
    Alcotest.(check (list int)) "path" [ 0; 1; 2; 3 ] path;
    close "distance" 3.0 d
  | None -> Alcotest.fail "route expected");
  let g2 = Routing.create ~nodes:2 in
  Alcotest.(check bool) "disconnected" true (Routing.dijkstra g2 ~src:0 ~dst:1 = None)

let routing_equiv_prop =
  let open QCheck2 in
  Test.make ~name:"dijkstra = floyd-warshall on random graphs" ~count:60
    Gen.(
      pair (int_range 2 12)
        (list_size (int_range 1 40) (triple (int_range 0 11) (int_range 0 11) (float_range 0.1 10.0))))
    (fun (n, edges) ->
      let g = Routing.create ~nodes:n in
      List.iter
        (fun (a, b, w) ->
          let a = a mod n and b = b mod n in
          if a <> b then Routing.add_edge g a b w)
        edges;
      let dist, _ = Routing.floyd_warshall g in
      let ok = ref true in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          match Routing.dijkstra g ~src ~dst with
          | Some (_, d) ->
            if Float.abs (d -. dist.(src).(dst)) > 1e-9 then ok := false
          | None -> if Float.is_finite dist.(src).(dst) then ok := false
        done
      done;
      !ok)

let test_fw_path () =
  let g = Routing.create ~nodes:3 in
  Routing.add_edge g 0 1 1.0;
  Routing.add_edge g 1 2 1.0;
  let _, next = Routing.floyd_warshall g in
  Alcotest.(check (option (list int))) "path" (Some [ 0; 1; 2 ])
    (Routing.fw_path ~next ~src:0 ~dst:2)

(* ------------------------------------------------------------------ *)
(* Path service *)

let test_bent_pipe_close_pair () =
  let bj = Cities.find_exn "Beijing" and sh = Cities.find_exn "Shanghai" in
  match Path_service.route_bent_pipe w ~src:bj ~dst:sh ~time:0.0 () with
  | Some hops ->
    Alcotest.(check int) "2 GSL hops" 2 (List.length hops);
    List.iter
      (fun h ->
        Alcotest.(check bool) "gsl" true (h.Path_service.kind = Path_service.Gsl))
      hops;
    (* One-way delay must be a handful of ms. *)
    let d = Path_service.total_delay hops in
    Alcotest.(check bool) "delay sane" true (d > 0.005 && d < 0.03)
  | None -> Alcotest.fail "BJ-SH bent pipe expected"

let test_no_bent_pipe_transcontinental () =
  let bj = Cities.find_exn "Beijing" and ny = Cities.find_exn "New York" in
  Alcotest.(check bool) "no common satellite across the Pacific" true
    (Path_service.route_bent_pipe w ~src:bj ~dst:ny ~time:0.0 () = None)

let test_isl_route_transcontinental () =
  let bj = Cities.find_exn "Beijing" and ny = Cities.find_exn "New York" in
  match Path_service.route_with_isls w ~src:bj ~dst:ny ~time:0.0 () with
  | Some hops ->
    let k = Path_service.hop_count hops in
    Alcotest.(check bool) (Printf.sprintf "%d hops" k) true (k >= 10 && k <= 24);
    (* Total path length must be at least the great-circle distance. *)
    let total = List.fold_left (fun a h -> a +. h.Path_service.distance) 0.0 hops in
    let gc =
      Geo.great_circle_distance ~lat1:bj.Cities.lat ~lon1:bj.Cities.lon
        ~lat2:ny.Cities.lat ~lon2:ny.Cities.lon
    in
    Alcotest.(check bool) "not shorter than great circle" true (total >= gc *. 0.95);
    (* Route structure: GSL at both ends, ISLs in the middle. *)
    (match (hops, List.rev hops) with
    | first :: _, last :: _ ->
      Alcotest.(check bool) "first is GSL" true (first.Path_service.kind = Path_service.Gsl);
      Alcotest.(check bool) "last is GSL" true (last.Path_service.kind = Path_service.Gsl)
    | _ -> Alcotest.fail "empty route")
  | None -> Alcotest.fail "ISL route expected"

let test_snapshots_change_over_time () =
  let bj = Cities.find_exn "Beijing" and pr = Cities.find_exn "Paris" in
  let snaps = Path_service.snapshots w ~src:bj ~dst:pr ~isls:true ~t_end:300.0 ~step:30.0 in
  Alcotest.(check bool) "routes found" true (List.length snaps >= 8);
  let delays = List.map (fun (_, h) -> Path_service.total_delay h) snaps in
  let distinct = List.sort_uniq compare delays in
  Alcotest.(check bool) "orbital motion changes the path" true
    (List.length distinct > 1);
  Alcotest.(check bool) "mean hops sane" true
    (Path_service.mean_hop_count snaps > 2.0)

(* Regression companion to the trace generator: [snapshots] silently
   drops no-route instants, so outage windows were invisible.  The
   gap-preserving variant must keep them, and filtering its [`Route]
   entries must reproduce the old behaviour exactly. *)
let test_snapshots_with_gaps () =
  let bj = Cities.find_exn "Beijing" and ny = Cities.find_exn "New York" in
  (* A transpacific bent-pipe pair has no common satellite: every sample
     must still be present, as [`No_route]. *)
  let gaps =
    Path_service.snapshots_with_gaps w ~src:bj ~dst:ny ~isls:false
      ~t_end:120.0 ~step:30.0
  in
  Alcotest.(check int) "all instants kept" 5 (List.length gaps);
  Alcotest.(check bool) "all dark" true
    (List.for_all (fun (_, e) -> e = `No_route) gaps);
  Alcotest.(check int) "plain snapshots drop them all" 0
    (List.length
       (Path_service.snapshots w ~src:bj ~dst:ny ~isls:false ~t_end:120.0
          ~step:30.0));
  (* A pair near the edge of common visibility (HK-Tokyo, ~2900 km)
     mixes [`Route] and [`No_route] over a long enough window... *)
  let hk = Cities.find_exn "Hong Kong" and tk = Cities.find_exn "Tokyo" in
  let mixed =
    Path_service.snapshots_with_gaps w ~src:hk ~dst:tk ~isls:false
      ~t_end:600.0 ~step:1.0
  in
  let dark =
    List.length (List.filter (fun (_, e) -> e = `No_route) mixed)
  in
  Alcotest.(check int) "all instants kept (mixed)" 601 (List.length mixed);
  Alcotest.(check bool) "some dark" true (dark > 0);
  Alcotest.(check bool) "some lit" true (dark < 601);
  (* ...and filtering the gaps reproduces [snapshots] exactly. *)
  let filtered =
    List.filter_map
      (fun (t, e) -> match e with `Route h -> Some (t, h) | `No_route -> None)
      mixed
  in
  let plain =
    Path_service.snapshots w ~src:hk ~dst:tk ~isls:false ~t_end:600.0
      ~step:1.0
  in
  Alcotest.(check int) "filtered = plain (length)" (List.length plain)
    (List.length filtered);
  List.iter2
    (fun (t1, h1) (t2, h2) ->
      Alcotest.(check bool) "same instant" true (Float.equal t1 t2);
      Alcotest.(check bool) "same route" true
        (List.equal Float.equal
           (Path_service.signature h1)
           (Path_service.signature h2)))
    filtered plain

let test_memo_deduplicates_queries () =
  let bj = Cities.find_exn "Beijing" and pr = Cities.find_exn "Paris" in
  let memo = Path_service.Memo.create ~epoch:30.0 w in
  (* 1000 same-pair queries inside one epoch cost exactly one Dijkstra. *)
  let first = Path_service.Memo.route memo ~src:bj ~dst:pr ~isls:true ~time:1.0 in
  for i = 0 to 998 do
    let t = 1.0 +. (float_of_int i /. 999.0 *. 28.0) in
    let h = Path_service.Memo.route memo ~src:bj ~dst:pr ~isls:true ~time:t in
    if h <> first then Alcotest.fail "memoized result changed within epoch"
  done;
  Alcotest.(check int) "queries counted" 1000 (Path_service.Memo.queries memo);
  Alcotest.(check int) "single compute" 1 (Path_service.Memo.computes memo);
  (* A different pair or a new epoch computes again. *)
  ignore (Path_service.Memo.route memo ~src:pr ~dst:bj ~isls:true ~time:1.0);
  Alcotest.(check int) "new pair computes" 2 (Path_service.Memo.computes memo);
  ignore (Path_service.Memo.route memo ~src:bj ~dst:pr ~isls:true ~time:31.0);
  Alcotest.(check int) "new epoch computes" 3 (Path_service.Memo.computes memo);
  (* The memoized route agrees with the unmemoized service at the
     quantized time. *)
  let direct = Path_service.route_with_isls w ~src:bj ~dst:pr ~time:0.0 () in
  (match (first, direct) with
  | Some a, Some b ->
    Alcotest.(check (float 1e-12))
      "same delay as direct route" (Path_service.total_delay b)
      (Path_service.total_delay a)
  | None, None -> ()
  | _ -> Alcotest.fail "memo and direct disagree on existence");
  Path_service.Memo.clear memo;
  Alcotest.(check int) "clear resets queries" 0 (Path_service.Memo.queries memo)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "leotp_constellation"
    [
      ( "geo",
        [
          Alcotest.test_case "vector ops" `Quick test_vec_ops;
          Alcotest.test_case "rotations" `Quick test_rotations_preserve_norm;
          Alcotest.test_case "ground position" `Quick test_ground_position;
          Alcotest.test_case "elevation" `Quick test_elevation;
          Alcotest.test_case "great circle" `Quick test_great_circle;
        ] );
      ("cities", [ Alcotest.test_case "catalogue" `Quick test_cities ]);
      ( "walker",
        [
          Alcotest.test_case "counts/period" `Quick test_walker_counts;
          Alcotest.test_case "altitude" `Quick test_walker_altitude;
          Alcotest.test_case "id roundtrip" `Quick test_walker_ids;
          Alcotest.test_case "motion" `Quick test_walker_motion;
          Alcotest.test_case "isl neighbours" `Quick test_isl_neighbors;
          Alcotest.test_case "visibility" `Quick test_visibility_search;
        ] );
      ( "routing",
        [
          Alcotest.test_case "dijkstra" `Quick test_dijkstra_simple;
          Alcotest.test_case "fw path" `Quick test_fw_path;
          qc routing_equiv_prop;
        ] );
      ( "path_service",
        [
          Alcotest.test_case "bent pipe BJ-SH" `Quick test_bent_pipe_close_pair;
          Alcotest.test_case "no bent pipe BJ-NY" `Quick test_no_bent_pipe_transcontinental;
          Alcotest.test_case "ISL route BJ-NY" `Quick test_isl_route_transcontinental;
          Alcotest.test_case "snapshots vary" `Quick test_snapshots_change_over_time;
          Alcotest.test_case "snapshots with gaps" `Quick
            test_snapshots_with_gaps;
          Alcotest.test_case "memo dedup" `Quick test_memo_deduplicates_queries;
        ] );
    ]
