(* Fixture tests for the leotp-dim interprocedural dimensional-analysis
   pass (lib/lint/dim.ml).

   Each fixture is an in-memory source handed to Dim.analyze_sources
   under a lib/ path (dim findings are scoped to lib/).  The seeded
   signatures referenced here (Engine.now, Engine.schedule ~after,
   Units conversions, Cc.fmss, Link.current_rate, ...) are matched by
   name suffix, so the fixtures just use the dotted names. *)

module Dim = Leotp_lint.Dim
module Finding = Leotp_lint.Finding

let analyze ?(path = "lib/core/fixture.ml") src =
  Dim.analyze_sources [ (path, src) ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_one ~rule ?witness fs =
  let hits = List.filter (fun (f : Finding.t) -> f.rule = rule) fs in
  Alcotest.(check int)
    (Printf.sprintf "exactly one %s finding" rule)
    1 (List.length hits);
  match (witness, hits) with
  | Some w, [ f ] ->
    if not (contains f.message w) then
      Alcotest.failf "finding message %S does not contain %S" f.message w
  | _ -> ()

let check_clean ~rule fs =
  let hits = List.filter (fun (f : Finding.t) -> f.rule = rule) fs in
  if hits <> [] then
    Alcotest.failf "expected no %s findings, got: %s" rule
      (String.concat "; "
         (List.map (fun (f : Finding.t) -> f.message) hits))

let check_none fs =
  if fs <> [] then
    Alcotest.failf "expected no findings, got: %s"
      (String.concat "; " (List.map Finding.to_text fs))

(* ------------------------------------------------------------------ *)
(* dim-mixed-arith *)

let mixed_add () =
  let fs =
    analyze
      {|
let bad engine m = Leotp_sim.Engine.now engine +. Leotp_tcp.Cc.fmss m
|}
  in
  check_one ~rule:"dim-mixed-arith" ~witness:"seconds" fs

let mixed_compare () =
  let fs =
    analyze
      {|
let bad engine l = Leotp_sim.Engine.now engine < Leotp_net.Link.current_rate l
|}
  in
  check_one ~rule:"dim-mixed-arith" ~witness:"bytes_per_seconds" fs

let mixed_minmax () =
  let fs =
    analyze
      {|
let bad engine m = Float.max (Leotp_sim.Engine.now engine) (Leotp_tcp.Cc.fmss m)
|}
  in
  check_one ~rule:"dim-mixed-arith" fs

let clean_same_unit () =
  let fs =
    analyze
      {|
let owd engine p = Leotp_sim.Engine.now engine -. Leotp.Wire.timestamp p
let fresh engine p = owd engine p < Leotp_util.Rto.rto p
|}
  in
  check_none fs

(* ------------------------------------------------------------------ *)
(* conversions: clean via Units, flagged when raw *)

let clean_units_conversion () =
  let fs =
    analyze
      {|
let report engine = Leotp_util.Units.sec_to_ms (Leotp_sim.Engine.now engine)
|}
  in
  check_none fs

let raw_sec_to_ms () =
  let fs = analyze {|
let bad engine = Leotp_sim.Engine.now engine *. 1000.0
|} in
  check_one ~rule:"dim-raw-conversion" ~witness:"Units.sec_to_ms" fs

let raw_literal_first () =
  let fs = analyze {|
let bad engine = 1000.0 *. Leotp_sim.Engine.now engine
|} in
  check_one ~rule:"dim-raw-conversion" ~witness:"sec_to_ms" fs

let raw_bits_div () =
  let fs =
    analyze
      {|
let bad p = Leotp_util.Units.bytes_to_bits (Leotp.Wire.send_rate p) /. 8.0
|}
  in
  (* bytes/s -> bits via helper is fine; the /. 8.0 on the resulting
     bits re-derives bits_to_bytes *)
  check_one ~rule:"dim-raw-conversion" ~witness:"bits_to_bytes" fs

let scalar_divide_not_conversion () =
  (* srtt /. 8.0 is a heuristic eighth of a duration, not a unit
     conversion: seconds pairs with no /. 8 table entry *)
  let fs =
    analyze
      {|
let smooth r = match Leotp_util.Rto.srtt r with
  | Some s -> s /. 8.0
  | None -> 0.0
|}
  in
  check_none fs

(* ------------------------------------------------------------------ *)
(* interprocedural propagation *)

let interprocedural_chain () =
  (* The ms value flows through two intermediate helpers before hitting
     the seeded ~after:seconds slot. *)
  let fs =
    analyze
      {|
let helper engine d = ignore (Leotp_sim.Engine.schedule engine ~after:d (fun () -> ()))
let outer engine d2 = helper engine d2
let bad engine s = outer engine (Leotp_util.Units.sec_to_ms s)
|}
  in
  check_one ~rule:"dim-mixed-arith" ~witness:"helper" fs;
  check_one ~rule:"dim-mixed-arith" ~witness:"outer" fs

let inference_stays_local () =
  (* A generic helper must not inherit units from its callers: clamp is
     used with seconds in one place and bytes in another — both fine. *)
  let fs =
    analyze
      {|
let clamp lo x = Float.max lo x
let a engine = clamp 0.001 (Leotp_sim.Engine.now engine)
let b m = clamp 1.0 (Leotp_tcp.Cc.fmss m)
|}
  in
  check_none fs

let cross_file_propagation () =
  let fs =
    Dim.analyze_sources
      [
        ( "lib/core/timing.ml",
          "let arm engine dt = ignore (Leotp_sim.Engine.schedule engine \
           ~after:dt (fun () -> ()))" );
        ( "lib/core/user.ml",
          "let bad engine s = Timing.arm engine (Leotp_util.Units.sec_to_ms \
           s)" );
      ]
  in
  check_one ~rule:"dim-mixed-arith" ~witness:"Timing.arm" fs

(* ------------------------------------------------------------------ *)
(* annotation pins *)

let pin_honored_flags () =
  let fs =
    analyze
      {|
let wait engine rtt_ms = ignore (Leotp_sim.Engine.schedule engine ~after:rtt_ms (fun () -> ()))
[@@leotp.dim "ms rtt_ms"]
|}
  in
  check_one ~rule:"dim-mixed-arith" ~witness:"[@leotp.dim] pin" fs

let pin_honored_clean () =
  let fs =
    analyze
      {|
let wait engine dt = ignore (Leotp_sim.Engine.schedule engine ~after:dt (fun () -> ()))
[@@leotp.dim "seconds dt"]
|}
  in
  check_none fs

let returns_pin () =
  let fs =
    analyze
      {|
let budget () = 42.0 [@@leotp.dim "returns bytes"]
let bad engine = budget () +. Leotp_sim.Engine.now engine
|}
  in
  check_one ~rule:"dim-mixed-arith" ~witness:"budget" fs

let expression_pin () =
  let fs =
    analyze
      {|
let bad engine x = ignore (Leotp_sim.Engine.schedule engine ~after:(x [@leotp.dim "mbps"]) (fun () -> ()))
|}
  in
  check_one ~rule:"dim-mixed-arith" ~witness:"mbps" fs

let malformed_annotation () =
  let fs =
    analyze {|
let f x = x +. 1.0 [@@leotp.dim "furlongs x"]
|}
  in
  check_one ~rule:"dim-annotation" ~witness:"unknown unit" fs

let annotation_unknown_param () =
  let fs =
    analyze {|
let f x = x +. 1.0 [@@leotp.dim "seconds nope"]
|}
  in
  check_one ~rule:"dim-annotation" ~witness:"nope" fs

(* ------------------------------------------------------------------ *)
(* allow suppression *)

let allow_suppresses () =
  let fs =
    analyze
      {|
let bad engine m =
  (Leotp_sim.Engine.now engine +. Leotp_tcp.Cc.fmss m) [@leotp.allow "dim-mixed-arith"]
|}
  in
  check_clean ~rule:"dim-mixed-arith" fs

let file_allow_suppresses () =
  let fs =
    analyze
      {|
[@@@leotp.allow "dim-raw-conversion"]
let bad engine = Leotp_sim.Engine.now engine *. 1000.0
|}
  in
  check_none fs

(* ------------------------------------------------------------------ *)
(* seqno misuse *)

let seqno_vs_bytes () =
  let fs =
    analyze
      {|
let bad p seq = seq +. Leotp_util.Units.bytes_to_mb (float_of_int (Leotp_net.Link.queue_bytes p))
[@@leotp.dim "seqno seq"]
|}
  in
  check_one ~rule:"dim-seqno-arith" fs

let seqno_difference_clean () =
  let fs =
    analyze
      {|
let gap a b = a - b [@@leotp.dim "seqno a, seqno b"]
let order a b = a < b [@@leotp.dim "seqno a, seqno b"]
|}
  in
  check_none fs

(* ------------------------------------------------------------------ *)
(* products and quotients *)

let rate_times_rate () =
  let fs =
    analyze
      {|
let bad l = Leotp_net.Link.current_rate l *. Leotp_net.Link.current_rate l
|}
  in
  check_one ~rule:"dim-bad-product" ~witness:"rate times a rate" fs

let time_times_time () =
  let fs =
    analyze {|
let bad engine = Leotp_sim.Engine.now engine *. Leotp_sim.Engine.now engine
|}
  in
  check_one ~rule:"dim-bad-product" ~witness:"duration squared" fs

let rate_times_time_clean () =
  (* the bandwidth-delay product: rate x seconds = bytes, comparable
     with a window in bytes *)
  let fs =
    analyze
      {|
let bdp l engine m =
  (Leotp_net.Link.current_rate l *. Leotp_net.Link.delay l) < Leotp_tcp.Cc.initial_window m
|}
  in
  check_none fs

let quotient_derives_rate () =
  (* bytes / seconds = bytes/s: comparing against a seeded rate is
     clean, comparing against seconds flags *)
  let fs =
    analyze
      {|
let rate p engine = Leotp_util.Units.mb_to_bytes 1.0 /. Leotp_sim.Engine.now engine
let ok p engine l = rate p engine < Leotp_net.Link.current_rate l
let bad p engine = rate p engine < Leotp_sim.Engine.now engine
|}
  in
  check_one ~rule:"dim-mixed-arith" fs

let distance_over_speed_is_time () =
  let fs =
    analyze
      {|
let owd d = d /. Leotp_util.Units.speed_of_light [@@leotp.dim "meters d"]
let ok engine d = owd d +. Leotp_sim.Engine.now engine
|}
  in
  check_none fs

(* ------------------------------------------------------------------ *)
(* witness paths & stability *)

let witness_names_seed_and_chain () =
  let fs =
    analyze
      {|
let helper engine d = ignore (Leotp_sim.Engine.schedule engine ~after:d (fun () -> ()))
let bad engine s = helper engine (Leotp_util.Units.sec_to_ms s)
|}
  in
  match List.filter (fun (f : Finding.t) -> f.rule = "dim-mixed-arith") fs with
  | [ f ] ->
    List.iter
      (fun part ->
        if not (contains f.message part) then
          Alcotest.failf "witness %S missing %S" f.message part)
      [ "seed"; "Engine.schedule"; "helper"; "Units.sec_to_ms"; "witness:" ]
  | other ->
    Alcotest.failf "expected exactly one mixed finding, got %d"
      (List.length other)

let order_independent () =
  let a =
    ( "lib/core/aaa.ml",
      "let arm engine dt = ignore (Leotp_sim.Engine.schedule engine \
       ~after:dt (fun () -> ()))" )
  in
  let b =
    ( "lib/core/zzz.ml",
      "let bad engine s = Aaa.arm engine (Leotp_util.Units.sec_to_ms s)" )
  in
  let render fs = String.concat "\n" (List.map Finding.to_text fs) in
  let out1 = render (Dim.analyze_sources [ a; b ]) in
  let out2 = render (Dim.analyze_sources [ b; a ]) in
  Alcotest.(check string) "byte-identical across input order" out1 out2;
  Alcotest.(check bool) "found the bug" true
    (contains out1 "dim-mixed-arith")

let bench_paths_exempt () =
  let fs =
    analyze ~path:"bench/main.ml"
      {|
let bad engine = Leotp_sim.Engine.now engine *. 1000.0
|}
  in
  check_none fs

(* ------------------------------------------------------------------ *)
(* oracle sensitivity: a deliberately planted ms-vs-s slip in a copy of
   the RTO-floor arming logic (PR 5 style: prove the pass would catch
   the real bug class).  The correct version is clean; the slipped one
   — arming the retransmission timer with sec_to_ms of the backoff —
   is flagged. *)

let planted_rto_floor_slip () =
  let correct =
    {|
let arm engine r =
  let rto = Float.max (Leotp_util.Rto.rto r) (Leotp_util.Units.ms_to_sec 200.0) in
  ignore (Leotp_sim.Engine.schedule engine ~after:rto (fun () -> ()))
|}
  in
  check_none (analyze correct);
  let slipped =
    {|
let arm engine r =
  let rto_ms = Leotp_util.Units.sec_to_ms (Leotp_util.Rto.rto r) in
  let floored = Float.max rto_ms 200.0 in
  ignore (Leotp_sim.Engine.schedule engine ~after:floored (fun () -> ()))
|}
  in
  check_one ~rule:"dim-mixed-arith" ~witness:"ms" (analyze slipped)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "leotp-dim"
    [
      ( "mixed-arith",
        [
          Alcotest.test_case "seconds + bytes flagged" `Quick mixed_add;
          Alcotest.test_case "seconds < rate flagged" `Quick mixed_compare;
          Alcotest.test_case "Float.max mixing flagged" `Quick mixed_minmax;
          Alcotest.test_case "same-unit arithmetic clean" `Quick
            clean_same_unit;
        ] );
      ( "conversions",
        [
          Alcotest.test_case "Units helper clean" `Quick
            clean_units_conversion;
          Alcotest.test_case "*. 1000. on seconds flagged" `Quick
            raw_sec_to_ms;
          Alcotest.test_case "literal-first product flagged" `Quick
            raw_literal_first;
          Alcotest.test_case "/. 8. on bits flagged" `Quick raw_bits_div;
          Alcotest.test_case "srtt /. 8. heuristic clean" `Quick
            scalar_divide_not_conversion;
        ] );
      ( "interprocedural",
        [
          Alcotest.test_case "two-call chain flagged with witness" `Quick
            interprocedural_chain;
          Alcotest.test_case "generic helpers stay polymorphic" `Quick
            inference_stays_local;
          Alcotest.test_case "cross-file propagation" `Quick
            cross_file_propagation;
        ] );
      ( "annotations",
        [
          Alcotest.test_case "param pin flags ms into seconds slot" `Quick
            pin_honored_flags;
          Alcotest.test_case "param pin seconds is clean" `Quick
            pin_honored_clean;
          Alcotest.test_case "returns pin flows to callers" `Quick
            returns_pin;
          Alcotest.test_case "expression pin checked at slot" `Quick
            expression_pin;
          Alcotest.test_case "unknown unit diagnosed" `Quick
            malformed_annotation;
          Alcotest.test_case "unknown param diagnosed" `Quick
            annotation_unknown_param;
        ] );
      ( "allows",
        [
          Alcotest.test_case "expression allow suppresses" `Quick
            allow_suppresses;
          Alcotest.test_case "file allow suppresses" `Quick
            file_allow_suppresses;
        ] );
      ( "seqno",
        [
          Alcotest.test_case "seqno + size flagged" `Quick seqno_vs_bytes;
          Alcotest.test_case "seqno difference/order clean" `Quick
            seqno_difference_clean;
        ] );
      ( "products",
        [
          Alcotest.test_case "rate x rate flagged" `Quick rate_times_rate;
          Alcotest.test_case "time x time flagged" `Quick time_times_time;
          Alcotest.test_case "BDP rate x time clean" `Quick
            rate_times_time_clean;
          Alcotest.test_case "bytes / seconds usable as rate" `Quick
            quotient_derives_rate;
          Alcotest.test_case "distance / c is seconds" `Quick
            distance_over_speed_is_time;
        ] );
      ( "witness-and-stability",
        [
          Alcotest.test_case "witness names seed and chain" `Quick
            witness_names_seed_and_chain;
          Alcotest.test_case "byte-stable across input order" `Quick
            order_independent;
          Alcotest.test_case "bench paths exempt" `Quick bench_paths_exempt;
        ] );
      ( "oracle-sensitivity",
        [
          Alcotest.test_case "planted RTO-floor ms slip caught" `Quick
            planted_rto_floor_slip;
        ] );
    ]
