(* Tests for leotp_util: interval sets, heap, stats, RTO, token bucket,
   windowed filters, RNG, time series. *)

open Leotp_util

let check_float = Alcotest.(check (float 1e-9))
let check_floats ?(eps = 1e-9) = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Interval_set *)

let ivs l =
  List.fold_left (fun acc (lo, hi) -> Interval_set.add ~lo ~hi acc)
    Interval_set.empty l

let test_ivs_empty () =
  Alcotest.(check bool) "empty" true Interval_set.(is_empty empty);
  Alcotest.(check int) "cardinal" 0 Interval_set.(cardinal empty);
  Alcotest.(check bool) "mem" false (Interval_set.mem 3 Interval_set.empty)

let test_ivs_add_merge () =
  let t = ivs [ (0, 10); (20, 30) ] in
  Alcotest.(check (list (pair int int)))
    "disjoint"
    [ (0, 10); (20, 30) ]
    (Interval_set.intervals t);
  let t = Interval_set.add ~lo:10 ~hi:20 t in
  Alcotest.(check (list (pair int int)))
    "adjacent merge" [ (0, 30) ] (Interval_set.intervals t);
  let t = ivs [ (0, 10); (5, 25) ] in
  Alcotest.(check (list (pair int int)))
    "overlap merge" [ (0, 25) ] (Interval_set.intervals t);
  let t = ivs [ (0, 5); (10, 15); (20, 25); (2, 22) ] in
  Alcotest.(check (list (pair int int)))
    "absorb several" [ (0, 25) ] (Interval_set.intervals t)

let test_ivs_add_empty_range () =
  let t = Interval_set.add ~lo:5 ~hi:5 Interval_set.empty in
  Alcotest.(check bool) "noop" true (Interval_set.is_empty t);
  let t = Interval_set.add ~lo:7 ~hi:3 Interval_set.empty in
  Alcotest.(check bool) "inverted noop" true (Interval_set.is_empty t)

let test_ivs_remove () =
  let t = ivs [ (0, 30) ] in
  let t = Interval_set.remove ~lo:10 ~hi:20 t in
  Alcotest.(check (list (pair int int)))
    "split"
    [ (0, 10); (20, 30) ]
    (Interval_set.intervals t);
  let t = Interval_set.remove ~lo:0 ~hi:5 t in
  Alcotest.(check (list (pair int int)))
    "trim head"
    [ (5, 10); (20, 30) ]
    (Interval_set.intervals t);
  let t = Interval_set.remove ~lo:25 ~hi:100 t in
  Alcotest.(check (list (pair int int)))
    "trim tail"
    [ (5, 10); (20, 25) ]
    (Interval_set.intervals t);
  let t = Interval_set.remove ~lo:0 ~hi:100 t in
  Alcotest.(check bool) "clear" true (Interval_set.is_empty t)

let test_ivs_queries () =
  let t = ivs [ (10, 20); (30, 40) ] in
  Alcotest.(check bool) "mem in" true (Interval_set.mem 15 t);
  Alcotest.(check bool) "mem edge lo" true (Interval_set.mem 10 t);
  Alcotest.(check bool) "mem edge hi" false (Interval_set.mem 20 t);
  Alcotest.(check bool) "covers" true (Interval_set.covers ~lo:12 ~hi:18 t);
  Alcotest.(check bool)
    "covers exact" true
    (Interval_set.covers ~lo:10 ~hi:20 t);
  Alcotest.(check bool)
    "covers gap" false
    (Interval_set.covers ~lo:15 ~hi:35 t);
  Alcotest.(check bool)
    "intersects" true
    (Interval_set.intersects ~lo:15 ~hi:35 t);
  Alcotest.(check bool)
    "no intersect" false
    (Interval_set.intersects ~lo:20 ~hi:30 t);
  Alcotest.(check int) "cardinal" 20 (Interval_set.cardinal t);
  Alcotest.(check int) "count" 2 (Interval_set.count_intervals t)

let test_ivs_gaps () =
  let t = ivs [ (10, 20); (30, 40) ] in
  Alcotest.(check (list (pair int int)))
    "gaps"
    [ (0, 10); (20, 30); (40, 50) ]
    (Interval_set.gaps ~lo:0 ~hi:50 t);
  Alcotest.(check (list (pair int int)))
    "gaps inside" [ (20, 30) ]
    (Interval_set.gaps ~lo:10 ~hi:40 t);
  Alcotest.(check (list (pair int int)))
    "no gaps" []
    (Interval_set.gaps ~lo:12 ~hi:18 t);
  Alcotest.(check int) "first missing" 20 (Interval_set.first_missing ~lo:10 t);
  Alcotest.(check int) "first missing out" 25 (Interval_set.first_missing ~lo:25 t)

let test_ivs_union () =
  let a = ivs [ (0, 5); (10, 15) ] and b = ivs [ (3, 12); (20, 25) ] in
  Alcotest.(check (list (pair int int)))
    "union"
    [ (0, 15); (20, 25) ]
    (Interval_set.intervals (Interval_set.union a b))

(* Property: a random sequence of adds/removes matches a naive bitmap
   model. *)
let ivs_model_prop =
  let open QCheck2 in
  let op =
    Gen.(
      triple (oneofl [ `Add; `Remove ]) (int_range 0 199) (int_range 0 60))
  in
  Test.make ~name:"interval_set matches bitmap model" ~count:300
    Gen.(list_size (int_range 0 40) op)
    (fun ops ->
      let model = Array.make 260 false in
      let t =
        List.fold_left
          (fun t (op, lo, len) ->
            let hi = lo + len in
            (match op with
            | `Add ->
              for i = lo to hi - 1 do
                model.(i) <- true
              done
            | `Remove ->
              for i = lo to hi - 1 do
                model.(i) <- false
              done);
            match op with
            | `Add -> Interval_set.add ~lo ~hi t
            | `Remove -> Interval_set.remove ~lo ~hi t)
          Interval_set.empty ops
      in
      let ok = ref true in
      for i = 0 to 259 do
        if Interval_set.mem i t <> model.(i) then ok := false
      done;
      let card = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 model in
      !ok && Interval_set.cardinal t = card)

let ivs_gaps_prop =
  let open QCheck2 in
  Test.make ~name:"gaps partition the range" ~count:200
    Gen.(list_size (int_range 0 20) (pair (int_range 0 100) (int_range 1 30)))
    (fun ranges ->
      let t =
        List.fold_left
          (fun t (lo, len) -> Interval_set.add ~lo ~hi:(lo + len) t)
          Interval_set.empty ranges
      in
      let gaps = Interval_set.gaps ~lo:0 ~hi:150 t in
      let gap_total = List.fold_left (fun a (l, h) -> a + h - l) 0 gaps in
      let covered = ref 0 in
      for i = 0 to 149 do
        if Interval_set.mem i t then incr covered
      done;
      gap_total + !covered = 150
      && List.for_all
           (fun (l, h) -> l < h && not (Interval_set.intersects ~lo:l ~hi:h t))
           gaps)

(* Property: after a random add/remove sequence, [cardinal], [gaps] and
   [covers] all agree with the naive list-of-booleans reference (guards
   the incremental byte-count and the range-limited gap walk). *)
let ivs_model_queries_prop =
  let open QCheck2 in
  let op =
    Gen.(
      triple (oneofl [ `Add; `Remove ]) (int_range 0 199) (int_range 0 60))
  in
  let gen =
    Gen.triple
      (Gen.list_size (Gen.int_range 0 60) op)
      (Gen.int_range 0 250)
      (Gen.int_range 0 80)
  in
  Test.make ~name:"cardinal/gaps/covers match bitmap model" ~count:500 gen
    (fun (ops, qlo, qlen) ->
      let size = 260 in
      let model = Array.make size false in
      let t =
        List.fold_left
          (fun t (op, lo, len) ->
            let hi = lo + len in
            match op with
            | `Add ->
              for i = lo to hi - 1 do
                model.(i) <- true
              done;
              Interval_set.add ~lo ~hi t
            | `Remove ->
              for i = lo to hi - 1 do
                model.(i) <- false
              done;
              Interval_set.remove ~lo ~hi t)
          Interval_set.empty ops
      in
      let card =
        Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 model
      in
      let qhi = min size (qlo + qlen) in
      let model_covers =
        let ok = ref true in
        for i = qlo to qhi - 1 do
          if not model.(i) then ok := false
        done;
        !ok
      in
      let model_gaps =
        let acc = ref [] and start = ref (-1) in
        for i = qlo to qhi - 1 do
          if (not model.(i)) && !start < 0 then start := i;
          if model.(i) && !start >= 0 then begin
            acc := (!start, i) :: !acc;
            start := -1
          end
        done;
        if !start >= 0 then acc := (!start, qhi) :: !acc;
        List.rev !acc
      in
      Interval_set.cardinal t = card
      && Interval_set.covers ~lo:qlo ~hi:qhi t = model_covers
      && Interval_set.gaps ~lo:qlo ~hi:qhi t = model_gaps)

(* Property: the incrementally-maintained byte count stays consistent
   with the bitmap model after EVERY operation, not just at the end of
   the sequence — an incremental-update bug that a later op happens to
   cancel out would slip past the end-of-sequence check above. *)
let ivs_cardinal_stepwise_prop =
  let open QCheck2 in
  let op =
    Gen.(
      triple (oneofl [ `Add; `Remove ]) (int_range 0 199) (int_range 0 60))
  in
  Test.make ~name:"cardinal matches bitmap model after every op" ~count:300
    Gen.(list_size (int_range 0 40) op)
    (fun ops ->
      let model = Array.make 260 false in
      let ok = ref true in
      ignore
        (List.fold_left
           (fun t (op, lo, len) ->
             let hi = lo + len in
             let t =
               match op with
               | `Add ->
                 for i = lo to hi - 1 do
                   model.(i) <- true
                 done;
                 Interval_set.add ~lo ~hi t
               | `Remove ->
                 for i = lo to hi - 1 do
                   model.(i) <- false
                 done;
                 Interval_set.remove ~lo ~hi t
             in
             let card =
               Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 model
             in
             if Interval_set.cardinal t <> card then ok := false;
             t)
           Interval_set.empty ops);
      !ok)

(* ------------------------------------------------------------------ *)
(* Pqueue *)

let test_pqueue_order () =
  let q = Pqueue.create ~cmp:Int.compare in
  List.iter (Pqueue.push q) [ 5; 3; 8; 1; 9; 2; 7 ];
  let rec drain acc =
    match Pqueue.pop q with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ] (drain [])

let test_pqueue_empty () =
  let q = Pqueue.create ~cmp:Int.compare in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Alcotest.(check (option int)) "pop none" None (Pqueue.pop q);
  Alcotest.(check (option int)) "peek none" None (Pqueue.peek q)

let pqueue_sort_prop =
  let open QCheck2 in
  Test.make ~name:"pqueue drains sorted" ~count:200
    Gen.(list_size (int_range 0 200) int)
    (fun xs ->
      let q = Pqueue.create ~cmp:Int.compare in
      List.iter (Pqueue.push q) xs;
      let rec drain acc =
        match Pqueue.pop q with
        | None -> List.rev acc
        | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

let test_pqueue_filter () =
  let q = Pqueue.create ~cmp:Int.compare in
  List.iter (Pqueue.push q) (List.init 100 Fun.id);
  Pqueue.filter_in_place q ~keep:(fun x -> x mod 2 = 0);
  Alcotest.(check int) "half kept" 50 (Pqueue.length q);
  let rec drain acc =
    match Pqueue.pop q with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int))
    "still a heap"
    (List.init 50 (fun i -> 2 * i))
    (drain []);
  Pqueue.push q 3;
  Pqueue.filter_in_place q ~keep:(fun _ -> false);
  Alcotest.(check bool) "empty after drop-all" true (Pqueue.is_empty q)

let pqueue_filter_prop =
  let open QCheck2 in
  Test.make ~name:"filter_in_place keeps heap invariant" ~count:200
    Gen.(pair (list_size (int_range 0 150) (int_range 0 1000)) (int_range 1 5))
    (fun (xs, k) ->
      let q = Pqueue.create ~cmp:Int.compare in
      List.iter (Pqueue.push q) xs;
      Pqueue.filter_in_place q ~keep:(fun x -> x mod k <> 0);
      let rec drain acc =
        match Pqueue.pop q with
        | None -> List.rev acc
        | Some x -> drain (x :: acc)
      in
      drain []
      = List.sort Int.compare (List.filter (fun x -> x mod k <> 0) xs))

(* ------------------------------------------------------------------ *)
(* Domain_pool *)

let test_domain_pool_map () =
  let pool = Domain_pool.create ~size:3 in
  let xs = List.init 50 Fun.id in
  let ys = Domain_pool.map pool (fun x -> x * x) xs in
  Alcotest.(check (list int)) "ordered results" (List.map (fun x -> x * x) xs) ys;
  (* A second batch reuses the same workers. *)
  let zs = Domain_pool.map pool string_of_int xs in
  Alcotest.(check string) "second batch" "49" (List.nth zs 49);
  Domain_pool.shutdown pool

let test_domain_pool_exception () =
  let pool = Domain_pool.create ~size:2 in
  let raised =
    try
      ignore
        (Domain_pool.map pool
           (fun x -> if x = 3 then failwith "boom" else x)
           [ 1; 2; 3; 4 ]);
      false
    with Failure m -> m = "boom"
  in
  Alcotest.(check bool) "exception propagates" true raised;
  (* Pool still usable after a failing batch. *)
  Alcotest.(check (list int)) "alive" [ 2; 4 ]
    (Domain_pool.map pool (fun x -> 2 * x) [ 1; 2 ]);
  Domain_pool.shutdown pool

let test_domain_pool_domain_local_state () =
  (* Packet ids are domain-local: jobs that reset them behave the same
     on any worker, which is what makes --jobs N bit-identical. *)
  let pool = Domain_pool.create ~size:4 in
  let ids =
    Domain_pool.map pool
      (fun _ ->
        Leotp_net.Packet.reset_ids ();
        let p =
          Leotp_net.Packet_pool.acquire ~src:1 ~dst:2 ~flow:1 ~size:100
            ~kind:Leotp_net.Packet.kind_raw
        in
        p.Leotp_net.Packet.id)
      (List.init 16 Fun.id)
  in
  Alcotest.(check (list int)) "all first ids" (List.init 16 (fun _ -> 1)) ids;
  Domain_pool.shutdown pool

(* ------------------------------------------------------------------ *)
(* Guarded / Atomic_counter *)

let test_guarded_counts_across_domains () =
  (* 4 domains x 1000 increments through with_: no lost updates. *)
  let cell = Guarded.create (ref 0) in
  let worker () =
    for _ = 1 to 1000 do
      Guarded.with_ cell (fun r -> incr r)
    done
  in
  let ds = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost updates" 4000 (Guarded.with_ cell (fun r -> !r))

let test_guarded_await () =
  (* await blocks until a producer domain pushes enough elements. *)
  let q = Guarded.create (Queue.create ()) in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to 10 do
          Guarded.with_ q (fun q -> Queue.push i q)
        done)
  in
  let sum = ref 0 and got = ref 0 in
  while !got < 10 do
    let v = Guarded.await q (fun q -> Queue.take_opt q) in
    incr got;
    sum := !sum + v
  done;
  Domain.join producer;
  Alcotest.(check int) "all consumed" 55 !sum

let test_guarded_get_set () =
  let g = Guarded.create 1 in
  Guarded.set g 42;
  Alcotest.(check int) "set/get" 42 (Guarded.get g);
  (* with_ releases the lock on exception *)
  (try Guarded.with_ g (fun _ -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "usable after raise" 42 (Guarded.get g)

let test_atomic_counter () =
  let c = Atomic_counter.create () in
  let s = Atomic_counter.Sum.create () in
  let worker () =
    for _ = 1 to 1000 do
      Atomic_counter.incr c;
      Atomic_counter.Sum.add s 0.5
    done
  in
  let ds = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  Alcotest.(check int) "int counter" 4000 (Atomic_counter.get c);
  check_float "float sum" 2000.0 (Atomic_counter.Sum.get s);
  Atomic_counter.reset c;
  Atomic_counter.Sum.reset s;
  Alcotest.(check int) "reset" 0 (Atomic_counter.get c);
  check_float "sum reset" 0.0 (Atomic_counter.Sum.get s);
  Atomic_counter.add c 7;
  Alcotest.(check int) "add" 7 (Atomic_counter.get c)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  check_float "mean" 3.0 (Stats.mean s);
  check_float "min" 1.0 (Stats.min s);
  check_float "max" 5.0 (Stats.max s);
  check_float "median" 3.0 (Stats.median s);
  check_float "total" 15.0 (Stats.total s);
  check_floats ~eps:1e-6 "stddev" (sqrt 2.5) (Stats.stddev s)

let test_stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  check_floats ~eps:1e-6 "p0" 1.0 (Stats.percentile s 0.0);
  check_floats ~eps:1e-6 "p100" 100.0 (Stats.percentile s 100.0);
  check_floats ~eps:0.6 "p50" 50.5 (Stats.percentile s 50.0);
  check_floats ~eps:1.1 "p99" 99.0 (Stats.percentile s 99.0)

let test_stats_cdf () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  let cdf = Stats.cdf_points ~points:4 s in
  Alcotest.(check bool)
    "ends at 1" true
    (match List.rev cdf with (_, f) :: _ -> f = 1.0 | [] -> false);
  Alcotest.(check bool)
    "monotone" true
    (let rec mono = function
       | (v1, f1) :: ((v2, f2) :: _ as rest) ->
         v1 <= v2 && f1 <= f2 && mono rest
       | _ -> true
     in
     mono cdf)

let test_jain () =
  check_float "equal is fair" 1.0 (Stats.jain_index [ 5.0; 5.0; 5.0 ]);
  check_floats ~eps:1e-6 "one hog" (1.0 /. 3.0) (Stats.jain_index [ 9.0; 0.0; 0.0 ]);
  Alcotest.(check bool) "empty nan" true (Float.is_nan (Stats.jain_index []))

let jain_bounds_prop =
  let open QCheck2 in
  Test.make ~name:"jain index in (0,1]" ~count:200
    Gen.(list_size (int_range 1 20) (float_range 0.0 100.0))
    (fun xs ->
      let j = Stats.jain_index xs in
      (* all-zero allocations are defined as fair *)
      j > 0.0 && j <= 1.0 +. 1e-9)

let test_welford () =
  let w = Stats.Welford.create () in
  List.iter (Stats.Welford.add w) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_floats ~eps:1e-9 "mean" 5.0 (Stats.Welford.mean w);
  check_floats ~eps:1e-9 "var" 4.571428571428571 (Stats.Welford.variance w)

let test_ewma () =
  let e = Stats.Ewma.create ~alpha:0.5 in
  Alcotest.(check bool) "unprimed nan" true (Float.is_nan (Stats.Ewma.value e));
  check_float "default" 7.0 (Stats.Ewma.value_or e ~default:7.0);
  Stats.Ewma.add e 10.0;
  check_float "first" 10.0 (Stats.Ewma.value e);
  Stats.Ewma.add e 20.0;
  check_float "second" 15.0 (Stats.Ewma.value e)

(* ------------------------------------------------------------------ *)
(* Rto *)

let test_rto_first_sample () =
  let r = Rto.create ~min_rto:0.0 ~initial_rto:1.0 () in
  check_float "initial" 1.0 (Rto.rto r);
  Rto.observe r 0.1;
  (* RFC 6298: srtt = R, rttvar = R/2, rto = srtt + 4*rttvar = 3R *)
  check_floats ~eps:1e-6 "after first" 0.3 (Rto.rto r);
  Alcotest.(check (option (float 1e-9))) "srtt" (Some 0.1) (Rto.srtt r)

let test_rto_smoothing () =
  let r = Rto.create ~min_rto:0.0 () in
  Rto.observe r 0.1;
  Rto.observe r 0.1;
  (* rttvar' = 0.75*0.05 + 0.25*0 = 0.0375; srtt stays 0.1 *)
  check_floats ~eps:1e-6 "converging" (0.1 +. (4.0 *. 0.0375)) (Rto.rto r)

let test_rto_backoff () =
  let r = Rto.create ~min_rto:0.0 ~backoff_factor:1.5 () in
  Rto.observe r 0.1;
  let base = Rto.rto r in
  Rto.backoff r;
  check_floats ~eps:1e-9 "x1.5" (base *. 1.5) (Rto.rto r);
  Rto.backoff r;
  check_floats ~eps:1e-9 "x2.25" (base *. 2.25) (Rto.rto r);
  Rto.reset_backoff r;
  check_floats ~eps:1e-9 "reset" base (Rto.rto r);
  Rto.backoff r;
  Rto.observe r 0.1;
  (* The new sample both resets the backoff and tightens rttvar:
     rttvar' = 0.75*0.05 + 0.25*0 = 0.0375, so rto = 0.1 + 4*0.0375. *)
  check_floats ~eps:1e-9 "sample resets backoff" 0.25 (Rto.rto r)

let test_rto_bounds () =
  let r = Rto.create ~min_rto:0.2 ~max_rto:1.0 () in
  Rto.observe r 0.001;
  check_float "min clamp" 0.2 (Rto.rto r);
  for _ = 1 to 20 do
    Rto.backoff r
  done;
  check_float "max clamp" 1.0 (Rto.rto r)

(* ------------------------------------------------------------------ *)
(* Token_bucket *)

let test_bucket_basic () =
  let b = Token_bucket.create ~rate:1000.0 ~burst:500.0 ~now:0.0 in
  Alcotest.(check bool) "burst ok" true (Token_bucket.try_consume b ~now:0.0 500);
  Alcotest.(check bool) "exhausted" false (Token_bucket.try_consume b ~now:0.0 1);
  check_floats ~eps:1e-9 "wait for 100" 0.1 (Token_bucket.time_until b ~now:0.0 100);
  Alcotest.(check bool)
    "refilled" true
    (Token_bucket.try_consume b ~now:0.1 100);
  Alcotest.(check bool)
    "capped at burst" false
    (Token_bucket.try_consume b ~now:100.0 501)

let test_bucket_set_rate () =
  let b = Token_bucket.create ~rate:1000.0 ~burst:100.0 ~now:0.0 in
  ignore (Token_bucket.try_consume b ~now:0.0 100);
  Token_bucket.set_rate b ~now:0.0 2000.0;
  check_floats ~eps:1e-9 "faster" 0.05 (Token_bucket.time_until b ~now:0.0 100);
  Token_bucket.set_rate b ~now:0.0 0.0;
  Alcotest.(check bool)
    "zero rate waits forever" true
    (Float.is_integer (Token_bucket.time_until b ~now:0.0 100) = false
    || Token_bucket.time_until b ~now:0.0 100 = Float.infinity)

(* Property: over any span, consumed bytes <= burst + rate * span. *)
let bucket_rate_prop =
  let open QCheck2 in
  Test.make ~name:"token bucket enforces rate" ~count:200
    Gen.(
      pair
        (float_range 100.0 10_000.0)
        (list_size (int_range 1 100) (pair (float_range 0.0 0.01) (int_range 1 400))))
    (fun (rate, reqs) ->
      let burst = 1_000.0 in
      let b = Token_bucket.create ~rate ~burst ~now:0.0 in
      let now = ref 0.0 in
      let consumed = ref 0 in
      List.iter
        (fun (dt, n) ->
          now := !now +. dt;
          if Token_bucket.try_consume b ~now:!now n then consumed := !consumed + n)
        reqs;
      float_of_int !consumed <= burst +. (rate *. !now) +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Windowed_min *)

let test_windowed_min () =
  let w = Windowed_min.create_min ~window:5.0 in
  Alcotest.(check (option (float 1e-9))) "empty" None (Windowed_min.get w ~now:0.0);
  Windowed_min.add w ~now:0.0 10.0;
  Windowed_min.add w ~now:1.0 5.0;
  Windowed_min.add w ~now:2.0 8.0;
  Alcotest.(check (option (float 1e-9)))
    "min" (Some 5.0)
    (Windowed_min.get w ~now:2.0);
  (* The 5.0 sample at t=1 expires after t=6. *)
  Alcotest.(check (option (float 1e-9)))
    "expired min" (Some 8.0)
    (Windowed_min.get w ~now:6.5);
  Alcotest.(check (option (float 1e-9)))
    "all expired" None
    (Windowed_min.get w ~now:100.0);
  check_float "default" 42.0 (Windowed_min.get_or w ~now:100.0 ~default:42.0)

let test_windowed_max () =
  let w = Windowed_min.create_max ~window:5.0 in
  Windowed_min.add w ~now:0.0 10.0;
  Windowed_min.add w ~now:1.0 50.0;
  Windowed_min.add w ~now:2.0 8.0;
  Alcotest.(check (option (float 1e-9)))
    "max" (Some 50.0)
    (Windowed_min.get w ~now:2.0);
  Alcotest.(check (option (float 1e-9)))
    "after expiry" (Some 8.0)
    (Windowed_min.get w ~now:6.5)

let windowed_max_prop =
  let open QCheck2 in
  Test.make ~name:"windowed max = naive max over window" ~count:200
    Gen.(
      list_size (int_range 1 50)
        (pair (float_range 0.0 1.0) (float_range 0.0 100.0)))
    (fun steps ->
      let w = Windowed_min.create_max ~window:2.0 in
      let now = ref 0.0 in
      let hist = ref [] in
      List.for_all
        (fun (dt, v) ->
          now := !now +. dt;
          Windowed_min.add w ~now:!now v;
          hist := (!now, v) :: !hist;
          let expect =
            List.filter_map
              (fun (ts, x) -> if ts >= !now -. 2.0 then Some x else None)
              !hist
            |> List.fold_left Float.max Float.neg_infinity
          in
          match Windowed_min.get w ~now:!now with
          | Some m -> Float.abs (m -. expect) < 1e-9
          | None -> false)
        steps)

let windowed_min_prop =
  let open QCheck2 in
  Test.make ~name:"windowed min = naive min over window" ~count:200
    Gen.(list_size (int_range 1 50) (pair (float_range 0.0 1.0) (float_range 0.0 100.0)))
    (fun steps ->
      let w = Windowed_min.create_min ~window:2.0 in
      let now = ref 0.0 in
      let hist = ref [] in
      List.for_all
        (fun (dt, v) ->
          now := !now +. dt;
          Windowed_min.add w ~now:!now v;
          hist := (!now, v) :: !hist;
          let expect =
            List.filter_map
              (fun (ts, x) -> if ts >= !now -. 2.0 then Some x else None)
              !hist
            |> List.fold_left Float.min Float.infinity
          in
          match Windowed_min.get w ~now:!now with
          | Some m -> Float.abs (m -. expect) < 1e-9
          | None -> false)
        steps)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let draw seed =
    let r = Rng.create ~seed in
    let s = Rng.substream r "link" in
    List.init 10 (fun _ -> Rng.float s 1.0)
  in
  Alcotest.(check (list (float 0.0))) "same seed same stream" (draw 42) (draw 42);
  Alcotest.(check bool)
    "different seeds differ" true
    (draw 42 <> draw 43)

let test_rng_substreams_independent () =
  let r = Rng.create ~seed:7 in
  let a = Rng.substream r "a" and b = Rng.substream r "b" in
  let xs = List.init 20 (fun _ -> Rng.float a 1.0) in
  let ys = List.init 20 (fun _ -> Rng.float b 1.0) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_bernoulli () =
  let r = Rng.create ~seed:1 in
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli r 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli r 1.0);
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let f = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p=0.3 approx" true (Float.abs (f -. 0.3) < 0.02)

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:2 in
  let n = 20_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential r ~mean:5.0
  done;
  let m = !acc /. float_of_int n in
  Alcotest.(check bool) "mean approx 5" true (Float.abs (m -. 5.0) < 0.2)

(* ------------------------------------------------------------------ *)
(* Lru *)

let test_lru_basic () =
  let l = Lru.create () in
  Lru.put l "a" 1;
  Lru.put l "b" 2;
  Lru.put l "c" 3;
  Alcotest.(check int) "length" 3 (Lru.length l);
  Alcotest.(check (option int)) "find" (Some 2) (Lru.find l "b");
  Alcotest.(check (option int)) "peek" (Some 1) (Lru.peek l "a");
  Alcotest.(check (option int)) "missing" None (Lru.find l "z")

let test_lru_eviction_order () =
  let l = Lru.create () in
  Lru.put l 1 ();
  Lru.put l 2 ();
  Lru.put l 3 ();
  (* Touch 1: now 2 is the least recently used. *)
  ignore (Lru.find l 1);
  (match Lru.evict_lru l with
  | Some (k, ()) -> Alcotest.(check int) "evicts 2" 2 k
  | None -> Alcotest.fail "expected eviction");
  (match Lru.evict_lru l with
  | Some (k, ()) -> Alcotest.(check int) "then 3" 3 k
  | None -> Alcotest.fail "expected eviction");
  (match Lru.evict_lru l with
  | Some (k, ()) -> Alcotest.(check int) "then 1" 1 k
  | None -> Alcotest.fail "expected eviction");
  Alcotest.(check bool) "empty" true (Lru.evict_lru l = None)

let test_lru_replace () =
  let l = Lru.create () in
  Lru.put l "k" 1;
  Lru.put l "k" 2;
  Alcotest.(check int) "no duplicate" 1 (Lru.length l);
  Alcotest.(check (option int)) "new value" (Some 2) (Lru.find l "k");
  Lru.remove l "k";
  Alcotest.(check int) "removed" 0 (Lru.length l);
  Lru.remove l "k" (* idempotent *)

let lru_model_prop =
  let open QCheck2 in
  Test.make ~name:"lru matches a naive model" ~count:200
    Gen.(list_size (int_range 1 80)
           (pair
              (frequency
                 [
                   (4, return `Put);
                   (3, return `Find);
                   (2, return `Remove);
                   (2, return `Evict);
                   (1, return `Clear);
                 ])
              (int_range 0 9)))
    (fun ops ->
      let l = Lru.create () in
      (* Model: association list, most recent first. *)
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun (op, k) ->
          match op with
          | `Put ->
            Lru.put l k k;
            model := (k, k) :: List.remove_assoc k !model
          | `Find ->
            let got = Lru.find l k in
            let expect = List.assoc_opt k !model in
            if got <> expect then ok := false;
            (match expect with
            | Some v -> model := (k, v) :: List.remove_assoc k !model
            | None -> ())
          | `Remove ->
            Lru.remove l k;
            model := List.remove_assoc k !model
          | `Evict -> (
            match (Lru.evict_lru l, List.rev !model) with
            | Some (ek, _), (mk, _) :: _ ->
              if ek <> mk then ok := false;
              model := List.remove_assoc mk !model
            | None, [] -> ()
            | _ -> ok := false)
          | `Clear ->
            Lru.clear l;
            model := [])
        ops;
      !ok && Lru.length l = List.length !model)

(* ------------------------------------------------------------------ *)
(* Timeseries *)

let test_timeseries () =
  let ts = Timeseries.create () in
  Timeseries.add ts ~time:0.5 10.0;
  Timeseries.add ts ~time:1.5 20.0;
  Timeseries.add ts ~time:2.5 30.0;
  check_float "window sum" 30.0 (Timeseries.window_sum ts ~lo:0.0 ~hi:2.0);
  check_float "window mean" 15.0 (Timeseries.window_mean ts ~lo:0.0 ~hi:2.0);
  Alcotest.(check int) "length" 3 (Timeseries.length ts);
  let buckets = Timeseries.bucketize ts ~width:1.0 ~t_end:3.0 in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "buckets"
    [ (0.0, 10.0); (1.0, 20.0); (2.0, 30.0) ]
    buckets;
  let rates = Timeseries.rate_series ts ~width:2.0 ~t_end:4.0 in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "rates"
    [ (0.0, 15.0); (2.0, 15.0) ]
    rates

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "leotp_util"
    [
      ( "interval_set",
        [
          Alcotest.test_case "empty" `Quick test_ivs_empty;
          Alcotest.test_case "add/merge" `Quick test_ivs_add_merge;
          Alcotest.test_case "empty ranges" `Quick test_ivs_add_empty_range;
          Alcotest.test_case "remove" `Quick test_ivs_remove;
          Alcotest.test_case "queries" `Quick test_ivs_queries;
          Alcotest.test_case "gaps" `Quick test_ivs_gaps;
          Alcotest.test_case "union" `Quick test_ivs_union;
          qc ivs_model_prop;
          qc ivs_gaps_prop;
          qc ivs_model_queries_prop;
          qc ivs_cardinal_stepwise_prop;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "ordering" `Quick test_pqueue_order;
          Alcotest.test_case "empty" `Quick test_pqueue_empty;
          Alcotest.test_case "filter_in_place" `Quick test_pqueue_filter;
          qc pqueue_sort_prop;
          qc pqueue_filter_prop;
        ] );
      ( "domain_pool",
        [
          Alcotest.test_case "map" `Quick test_domain_pool_map;
          Alcotest.test_case "exceptions" `Quick test_domain_pool_exception;
          Alcotest.test_case "domain-local state" `Quick
            test_domain_pool_domain_local_state;
        ] );
      ( "guarded",
        [
          Alcotest.test_case "cross-domain counts" `Quick
            test_guarded_counts_across_domains;
          Alcotest.test_case "await" `Quick test_guarded_await;
          Alcotest.test_case "get/set/raise" `Quick test_guarded_get_set;
          Alcotest.test_case "atomic counter" `Quick test_atomic_counter;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "cdf" `Quick test_stats_cdf;
          Alcotest.test_case "jain" `Quick test_jain;
          Alcotest.test_case "welford" `Quick test_welford;
          Alcotest.test_case "ewma" `Quick test_ewma;
          qc jain_bounds_prop;
        ] );
      ( "rto",
        [
          Alcotest.test_case "first sample" `Quick test_rto_first_sample;
          Alcotest.test_case "smoothing" `Quick test_rto_smoothing;
          Alcotest.test_case "backoff" `Quick test_rto_backoff;
          Alcotest.test_case "bounds" `Quick test_rto_bounds;
        ] );
      ( "token_bucket",
        [
          Alcotest.test_case "basic" `Quick test_bucket_basic;
          Alcotest.test_case "set rate" `Quick test_bucket_set_rate;
          qc bucket_rate_prop;
        ] );
      ( "windowed_min",
        [
          Alcotest.test_case "min" `Quick test_windowed_min;
          Alcotest.test_case "max" `Quick test_windowed_max;
          qc windowed_min_prop;
          qc windowed_max_prop;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "substreams" `Quick test_rng_substreams_independent;
          Alcotest.test_case "bernoulli" `Quick test_rng_bernoulli;
          Alcotest.test_case "exponential" `Quick test_rng_exponential_mean;
        ] );
      ( "lru",
        [
          Alcotest.test_case "basic" `Quick test_lru_basic;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "replace/remove" `Quick test_lru_replace;
          qc lru_model_prop;
        ] );
      ("timeseries", [ Alcotest.test_case "windows" `Quick test_timeseries ]);
    ]
