(* Tests for the §VII extensions: the pending-Interest table (multicast)
   and the TCP <-> LEOTP gateway bridge. *)

module Engine = Leotp_sim.Engine
module Node = Leotp_net.Node
module Topology = Leotp_net.Topology
module Bandwidth = Leotp_net.Bandwidth
module Flow_metrics = Leotp_net.Flow_metrics

let mbps = Leotp_util.Units.mbps_to_bytes_per_sec
let config = Leotp.Config.default

let setup () =
  Leotp_net.Packet.reset_ids ();
  Node.reset_ids ();
  (Engine.create (), Leotp_util.Rng.create ~seed:21)

(* ------------------------------------------------------------------ *)
(* PIT unit tests *)

let test_pit_register_block () =
  let pit = Leotp.Pit.create ~expiry:1.0 () in
  Alcotest.(check bool) "first forwards" true
    (Leotp.Pit.register pit ~now:0.0 ~flow:1 ~lo:0 ~hi:100 ~consumer:7);
  Alcotest.(check bool) "duplicate blocked" false
    (Leotp.Pit.register pit ~now:0.1 ~flow:1 ~lo:0 ~hi:100 ~consumer:8);
  Alcotest.(check bool) "other range forwards" true
    (Leotp.Pit.register pit ~now:0.1 ~flow:1 ~lo:100 ~hi:200 ~consumer:8);
  Alcotest.(check int) "two pending" 2 (Leotp.Pit.pending pit)

let test_pit_satisfy () =
  let pit = Leotp.Pit.create ~expiry:1.0 () in
  ignore (Leotp.Pit.register pit ~now:0.0 ~flow:1 ~lo:0 ~hi:100 ~consumer:7);
  ignore (Leotp.Pit.register pit ~now:0.1 ~flow:1 ~lo:0 ~hi:100 ~consumer:8);
  let waiting = Leotp.Pit.satisfy pit ~now:0.2 ~flow:1 ~lo:0 ~hi:100 in
  Alcotest.(check (list int)) "both consumers" [ 8; 7 ] waiting;
  Alcotest.(check (list int)) "entry dropped" []
    (Leotp.Pit.satisfy pit ~now:0.2 ~flow:1 ~lo:0 ~hi:100);
  Alcotest.(check int) "empty" 0 (Leotp.Pit.pending pit)

let test_pit_expiry () =
  let pit = Leotp.Pit.create ~expiry:1.0 () in
  ignore (Leotp.Pit.register pit ~now:0.0 ~flow:1 ~lo:0 ~hi:100 ~consumer:7);
  (* After expiry a new registration forwards again... *)
  Alcotest.(check bool) "re-forward after expiry" true
    (Leotp.Pit.register pit ~now:2.0 ~flow:1 ~lo:0 ~hi:100 ~consumer:9);
  (* ...and a stale satisfy returns nobody. *)
  ignore (Leotp.Pit.register pit ~now:2.0 ~flow:2 ~lo:0 ~hi:100 ~consumer:9);
  Alcotest.(check (list int)) "stale ignored" []
    (Leotp.Pit.satisfy pit ~now:5.0 ~flow:2 ~lo:0 ~hi:100);
  Leotp.Pit.expire_before pit ~now:10.0;
  Alcotest.(check int) "gc" 0 (Leotp.Pit.pending pit)

(* ------------------------------------------------------------------ *)
(* Multicast over a Y topology *)

let build_y engine rng =
  let producer_node = Node.create ~name:"P" in
  let mid_node = Node.create ~name:"M" in
  let a_node = Node.create ~name:"A" in
  let b_node = Node.create ~name:"B" in
  let spec = Topology.hop ~bandwidth:(Bandwidth.Constant (mbps 20.0)) ~delay:0.02 () in
  let up = Topology.connect engine ~rng producer_node mid_node spec in
  let la = Topology.connect engine ~rng mid_node a_node spec in
  let lb = Topology.connect engine ~rng mid_node b_node spec in
  Node.add_route producer_node ~dst:(Node.id mid_node) up.Topology.fwd;
  Node.add_route producer_node ~dst:(Node.id a_node) up.Topology.fwd;
  Node.add_route producer_node ~dst:(Node.id b_node) up.Topology.fwd;
  Node.add_route mid_node ~dst:(Node.id producer_node) up.Topology.rev;
  Node.add_route mid_node ~dst:(Node.id a_node) la.Topology.fwd;
  Node.add_route mid_node ~dst:(Node.id b_node) lb.Topology.fwd;
  Node.add_route a_node ~dst:(Node.id producer_node) la.Topology.rev;
  Node.add_route b_node ~dst:(Node.id producer_node) lb.Topology.rev;
  (producer_node, mid_node, a_node, b_node, up)

let test_multicast_shares_uplink () =
  let engine, rng = setup () in
  let producer_node, mid_node, a_node, b_node, up = build_y engine rng in
  let mid = Leotp.Midnode.create engine ~config ~node:mid_node () in
  let bytes = 1_000_000 in
  let flow = 9 in
  let producer =
    Leotp.Producer.create engine ~config ~node:producer_node ~flow
      ~total_bytes:bytes ()
  in
  Node.set_handler producer_node (fun ~from:_ pkt ->
      if Leotp.Wire.is_interest pkt then
        Leotp.Producer.handle_interest producer pkt
      else Node.forward producer_node ~from:0 pkt);
  let consumer_at node =
    let c =
      Leotp.Consumer.create engine ~config ~node
        ~producer:(Node.id producer_node) ~flow ~total_bytes:bytes ()
    in
    Node.set_handler node (fun ~from:_ pkt ->
        if Leotp.Wire.is_data pkt then Leotp.Consumer.handle_packet c pkt
        else Node.forward node ~from:0 pkt);
    c
  in
  let ca = consumer_at a_node and cb = consumer_at b_node in
  Leotp.Consumer.start ca;
  ignore (Engine.schedule engine ~after:0.2 (fun () -> Leotp.Consumer.start cb));
  Engine.run ~until:120.0 engine;
  Alcotest.(check bool) "A complete" true (Leotp.Consumer.complete ca);
  Alcotest.(check bool) "B complete" true (Leotp.Consumer.complete cb);
  Alcotest.(check int) "A exact" bytes (Leotp.Consumer.received_bytes ca);
  Alcotest.(check int) "B exact" bytes (Leotp.Consumer.received_bytes cb);
  (* The uplink must carry far less than two copies. *)
  let carried = (Leotp_net.Link.stats up.Topology.fwd).Leotp_net.Link.bytes_delivered in
  Alcotest.(check bool)
    (Printf.sprintf "uplink %.2f MB < 1.5 copies" (float_of_int carried /. 1e6))
    true
    (carried < 3 * bytes / 2);
  Alcotest.(check bool) "cache served B" true
    (match Leotp.Midnode.flow_stats mid ~flow with
    | Some fs -> fs.Leotp.Midnode.cache_hits > 0 || Leotp.Midnode.pit_blocked mid > 0
    | None -> false)

(* ------------------------------------------------------------------ *)
(* Gateway bridge *)

let build_bridge_path engine rng ~sat_plr =
  (* sender -- t1 -- ingress == sat1 == sat2 == egress -- t2 -- receiver *)
  let terrestrial = Topology.hop ~bandwidth:(Bandwidth.Constant (mbps 50.0)) ~delay:0.002 () in
  let satellite =
    Topology.hop ~plr:sat_plr ~bandwidth:(Bandwidth.Constant (mbps 20.0)) ~delay:0.015 ()
  in
  let chain =
    Topology.chain engine ~rng
      [| terrestrial; satellite; satellite; satellite; terrestrial |]
  in
  chain

let test_bridge_end_to_end () =
  let engine, rng = setup () in
  let chain = build_bridge_path engine rng ~sat_plr:0.01 in
  let n = chain.Topology.nodes in
  (* Midnodes on the two interior satellite relays. *)
  let _m1 = Leotp.Midnode.create engine ~config ~node:n.(2) () in
  let _m2 = Leotp.Midnode.create engine ~config ~node:n.(3) () in
  let bytes = 2_000_000 in
  let bridge =
    Leotp_gateway.Bridge.create engine ~config ~tcp_cc:Leotp_tcp.Cc.Cubic
      ~sender_node:n.(0) ~ingress_node:n.(1) ~egress_node:n.(4)
      ~receiver_node:n.(5) ~flow:5 ~bytes ()
  in
  Leotp_gateway.Bridge.start bridge;
  Engine.run ~until:300.0 engine;
  Alcotest.(check bool) "end-to-end complete" true
    (Leotp_gateway.Bridge.complete bridge);
  Alcotest.(check int) "receiver got every byte" bytes
    (Flow_metrics.app_bytes (Leotp_gateway.Bridge.tcp_out_metrics bridge));
  Alcotest.(check int) "satellite leg carried the stream" bytes
    (Flow_metrics.app_bytes (Leotp_gateway.Bridge.leotp_metrics bridge));
  Alcotest.(check int) "no residual backlog" 0
    (Leotp_gateway.Bridge.ingress_backlog bridge
    + Leotp_gateway.Bridge.egress_backlog bridge)

let test_bridge_clean () =
  let engine, rng = setup () in
  let chain = build_bridge_path engine rng ~sat_plr:0.0 in
  let n = chain.Topology.nodes in
  let bytes = 1_000_000 in
  let bridge =
    Leotp_gateway.Bridge.create engine ~config ~tcp_cc:Leotp_tcp.Cc.Newreno
      ~sender_node:n.(0) ~ingress_node:n.(1) ~egress_node:n.(4)
      ~receiver_node:n.(5) ~flow:5 ~bytes ()
  in
  Leotp_gateway.Bridge.start bridge;
  Engine.run ~until:120.0 engine;
  Alcotest.(check bool) "complete" true (Leotp_gateway.Bridge.complete bridge);
  (* Sanity on timing: 1 MB over a 20 Mbps leg should take ~0.4 s+. *)
  match Flow_metrics.completion_time (Leotp_gateway.Bridge.tcp_out_metrics bridge) with
  | Some t -> Alcotest.(check bool) (Printf.sprintf "t=%.2f" t) true (t < 30.0)
  | None -> Alcotest.fail "no completion time"

let () =
  Alcotest.run "leotp_gateway"
    [
      ( "pit",
        [
          Alcotest.test_case "register/block" `Quick test_pit_register_block;
          Alcotest.test_case "satisfy" `Quick test_pit_satisfy;
          Alcotest.test_case "expiry" `Quick test_pit_expiry;
        ] );
      ( "multicast",
        [ Alcotest.test_case "shared uplink" `Quick test_multicast_shares_uplink ] );
      ( "bridge",
        [
          Alcotest.test_case "lossy end-to-end" `Quick test_bridge_end_to_end;
          Alcotest.test_case "clean path" `Quick test_bridge_clean;
        ] );
    ]
