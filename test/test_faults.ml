(* Fault-injection subsystem: schedule round-trips, crash / flap recovery
   of the LEOTP engines, invariant checking under randomized fault
   schedules, and bit-identical trace digests across runs and across
   runner parallelism. *)

module Fault = Leotp_sim.Fault
module Trace = Leotp_net.Trace
module Common = Leotp_scenario.Common
module Invariants = Leotp_scenario.Invariants
module Runner = Leotp_scenario.Runner

let hops4 () = Common.uniform_hops ~n:4 (Common.link ~bw:20.0 ~delay:0.01 ())
let leotp = Common.Leotp Leotp.Config.default

let assert_invariants label reports =
  if not (Invariants.all_ok reports) then
    Alcotest.failf "%s:\n%s" label (Invariants.to_string reports)

(* ------------------------------------------------------------------ *)
(* Schedule serialization *)

let test_spec_parse () =
  let spec = "1.5@down:hop2;2@up:hop2;3@plr:hop0=0.05;4@crash:mid1" in
  match Fault.of_string spec with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok sched ->
    Alcotest.(check int) "events" 4 (List.length sched);
    let ev = List.hd sched in
    Alcotest.(check (float 1e-12)) "time" 1.5 ev.Fault.time;
    (match ev.Fault.action with
    | Fault.Link_down (Fault.Hop 2) -> ()
    | _ -> Alcotest.fail "expected down:hop2");
    (match (List.nth sched 3).Fault.action with
    | Fault.Crash (Fault.Mid 1) -> ()
    | _ -> Alcotest.fail "expected crash:mid1")

let test_spec_errors () =
  List.iter
    (fun bad ->
      match Fault.of_string bad with
      | Ok _ -> Alcotest.failf "expected parse error for %S" bad
      | Error _ -> ())
    [
      "nonsense";
      "1.0@frobnicate:hop1";
      "1.0@down:gateway3";
      "x@down:hop1";
      "1.0@plr:hop1";  (* missing argument *)
      "1.0@down:hop1=3";  (* unexpected argument *)
    ]

let spec_roundtrip_prop =
  let open QCheck2 in
  Test.make ~name:"fault spec round-trips through to_string/of_string"
    ~count:100
    Gen.(pair (int_range 0 10_000) (int_range 1 40))
    (fun (seed, n) ->
      let rng = Leotp_util.Rng.create ~seed in
      let sched = Fault.random ~rng ~duration:60.0 ~n () in
      List.length sched >= n
      && Fault.of_string (Fault.to_string sched) = Ok sched)

let random_schedule_sorted_prop =
  let open QCheck2 in
  Test.make ~name:"random schedules are sorted and within the run" ~count:100
    Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Leotp_util.Rng.create ~seed in
      let duration = 30.0 in
      let sched = Fault.random ~rng ~duration ~n:12 () in
      let times = List.map (fun e -> e.Fault.time) sched in
      List.for_all (fun t -> t >= 0.0 && t <= duration) times
      && List.sort compare times = times)

(* ------------------------------------------------------------------ *)
(* Recovery scenarios *)

(* A midnode crash mid-transfer loses the cache, PIT and per-flow soft
   state; the consumer's end-to-end TR path must still complete the
   fixed transfer, and every invariant must hold across the crash. *)
let test_crash_mid_transfer () =
  let faults =
    match Fault.of_string "2.0@crash:mid1;6.0@restart:mid1" with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  let summary, reports =
    Common.run_faulted ~bytes:(4 * 1024 * 1024) ~duration:40.0 ~warmup:0.0
      ~faults ~hops:(hops4 ()) leotp
  in
  assert_invariants "crash mid-transfer" reports;
  (match summary.Common.completion_time with
  | Some t ->
    if t <= 0.0 then Alcotest.failf "nonsense completion time %g" t
  | None -> Alcotest.fail "transfer did not complete after midnode crash");
  Alcotest.(check bool)
    "crash forced retransmissions" true
    (summary.Common.retransmissions >= 0)

(* Reference run without the crash: the faulted transfer completes too,
   just later (never earlier than the fault-free one). *)
let test_crash_costs_time () =
  let bytes = 4 * 1024 * 1024 in
  let clean, clean_reports =
    Common.run_faulted ~bytes ~duration:40.0 ~warmup:0.0 ~hops:(hops4 ())
      leotp
  in
  assert_invariants "clean reference" clean_reports;
  let faults =
    match Fault.of_string "1.0@crash:mid1;8.0@restart:mid1" with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  let faulted, reports =
    Common.run_faulted ~bytes ~duration:40.0 ~warmup:0.0 ~faults
      ~hops:(hops4 ()) leotp
  in
  assert_invariants "crash cost" reports;
  match (clean.Common.completion_time, faulted.Common.completion_time) with
  | Some c, Some f ->
    if f +. 1e-9 < c then
      Alcotest.failf "crashed run finished earlier (%g) than clean run (%g)" f c
  | _ -> Alcotest.fail "both runs should complete"

(* Link flap during the transfer (the Fig 13 handover shape): traffic
   stops while the hop is down and resumes after it comes back up. *)
let test_link_flap_recovery () =
  let faults =
    match Fault.of_string "5.0@down:hop2;6.5@up:hop2" with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  let summary, reports =
    Common.run_faulted ~duration:20.0 ~warmup:0.0 ~faults ~hops:(hops4 ())
      leotp
  in
  assert_invariants "link flap" reports;
  let delivered ~lo ~hi =
    Leotp_util.Timeseries.window_sum summary.Common.delivery ~lo ~hi
  in
  Alcotest.(check bool)
    "delivery before the flap" true
    (delivered ~lo:0.0 ~hi:5.0 > 0.0);
  (* Recovery: the post-repair window moves at least as many bytes as a
     starved link would; concretely, something must arrive. *)
  Alcotest.(check bool)
    "delivery resumes after repair" true
    (delivered ~lo:7.0 ~hi:20.0 > 0.0);
  Alcotest.(check bool)
    "downtime throttles delivery" true
    (delivered ~lo:5.0 ~hi:6.5 < delivered ~lo:7.0 ~hi:8.5 +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Invariants under randomized schedules *)

let test_invariants_random_schedule () =
  let rng = Leotp_util.Rng.create ~seed:1234 in
  let duration = 25.0 in
  let faults = Fault.random ~rng ~duration ~n:100 () in
  Alcotest.(check bool) "at least 100 events" true (List.length faults >= 100);
  let _summary, reports =
    Common.run_faulted ~duration ~warmup:0.0 ~faults ~hops:(hops4 ()) leotp
  in
  assert_invariants "random 100-event schedule" reports

(* The invariant checker itself must reject corrupt traces (guards
   against the checker silently passing everything). *)
let test_checker_rejects_bad_trace () =
  let t = Invariants.create () in
  let feed seq event = Invariants.sink t { Trace.seq; time = 0.1; event } in
  feed 0 (Trace.Deliver { node = 1; flow = 1; pos = 0; len = 100 });
  feed 1 (Trace.Deliver { node = 1; flow = 1; pos = 250; len = 100 });
  (* gap! *)
  let reports = Invariants.finalize ~now:0.2 t in
  if Invariants.all_ok reports then
    Alcotest.fail "checker accepted an out-of-order delivery";
  let bad =
    List.filter (fun r -> not r.Invariants.ok) reports
    |> List.map (fun r -> r.Invariants.invariant)
  in
  Alcotest.(check (list string)) "only delivery-order fails"
    [ "delivery-order" ] bad

let test_checker_rejects_unbalanced_link () =
  let t = Invariants.create () in
  let feed seq event = Invariants.sink t { Trace.seq; time = 0.1; event } in
  feed 0 (Trace.Link_enq { link = "l"; pkt = 1; size = 100 });
  feed 1 (Trace.Link_enq { link = "l"; pkt = 2; size = 100 });
  feed 2 (Trace.Link_deliver { link = "l"; pkt = 1; size = 100 });
  (* pkt 2 vanished: final claims everything was delivered *)
  feed 3
    (Trace.Link_final
       {
         link = "l";
         offered = 2;
         delivered = 1;
         dropped = 0;
         dups = 0;
         queued = 0;
         in_flight = 0;
       });
  let reports = Invariants.finalize ~now:0.2 t in
  let bad =
    List.filter (fun r -> not r.Invariants.ok) reports
    |> List.map (fun r -> r.Invariants.invariant)
  in
  Alcotest.(check (list string)) "conservation fails"
    [ "link-conservation" ] bad

(* ------------------------------------------------------------------ *)
(* Determinism: digests across repeated runs and across --jobs *)

let digest_of_run seed =
  let rng = Leotp_util.Rng.create ~seed in
  let faults = Fault.random ~rng ~duration:12.0 ~n:10 () in
  let trace = Trace.create ~capacity:1 () in
  let _summary, reports =
    Common.run_faulted ~duration:12.0 ~warmup:0.0 ~faults ~trace
      ~hops:(hops4 ()) leotp
  in
  assert_invariants (Printf.sprintf "digest run seed %d" seed) reports;
  Trace.digest trace

let test_digest_replay_identical () =
  let d1 = digest_of_run 77 and d2 = digest_of_run 77 in
  Alcotest.(check string) "same seed, same digest" d1 d2;
  let d3 = digest_of_run 78 in
  Alcotest.(check bool) "different seed, different digest" true (d1 <> d3)

let test_digest_across_jobs () =
  let njobs =
    match
      Option.bind (Sys.getenv_opt "LEOTP_TEST_JOBS") int_of_string_opt
    with
    | Some n when n >= 2 -> n
    | _ -> 4
  in
  let seeds = [ 11; 22; 33; 44 ] in
  let run () = Runner.map (List.map (fun s () -> digest_of_run s) seeds) in
  Runner.set_jobs 1;
  let sequential = run () in
  Runner.set_jobs njobs;
  let parallel = run () in
  Runner.set_jobs 1;
  Alcotest.(check (list string))
    (Printf.sprintf "jobs 1 = jobs %d" njobs)
    sequential parallel

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "leotp_faults"
    [
      ( "spec",
        [
          Alcotest.test_case "parse" `Quick test_spec_parse;
          Alcotest.test_case "parse errors" `Quick test_spec_errors;
          qc spec_roundtrip_prop;
          qc random_schedule_sorted_prop;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "crash mid-transfer" `Quick
            test_crash_mid_transfer;
          Alcotest.test_case "crash costs time" `Quick test_crash_costs_time;
          Alcotest.test_case "link flap" `Quick test_link_flap_recovery;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "random 100-event schedule" `Quick
            test_invariants_random_schedule;
          Alcotest.test_case "rejects bad delivery" `Quick
            test_checker_rejects_bad_trace;
          Alcotest.test_case "rejects unbalanced link" `Quick
            test_checker_rejects_unbalanced_link;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "replay digest" `Quick test_digest_replay_identical;
          Alcotest.test_case "jobs 1 vs 4" `Quick test_digest_across_jobs;
        ] );
    ]
