(* Tests for the discrete-event engine: ordering, determinism, timers. *)

open Leotp_sim

let test_event_order () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag () = log := (tag, Engine.now e) :: !log in
  ignore (Engine.schedule e ~after:2.0 (note "b"));
  ignore (Engine.schedule e ~after:1.0 (note "a"));
  ignore (Engine.schedule e ~after:3.0 (note "c"));
  Engine.run e;
  Alcotest.(check (list (pair string (float 1e-9))))
    "order and times"
    [ ("a", 1.0); ("b", 2.0); ("c", 3.0) ]
    (List.rev !log)

let test_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Engine.schedule e ~after:1.0 (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int))
    "FIFO among equal times"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_schedule_from_handler () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~after:1.0 (fun () ->
         log := ("outer", Engine.now e) :: !log;
         ignore
           (Engine.schedule e ~after:0.5 (fun () ->
                log := ("inner", Engine.now e) :: !log))));
  Engine.run e;
  Alcotest.(check (list (pair string (float 1e-9))))
    "nested schedule"
    [ ("outer", 1.0); ("inner", 1.5) ]
    (List.rev !log)

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let t = Engine.schedule e ~after:1.0 (fun () -> fired := true) in
  Alcotest.(check bool) "pending" true (Engine.is_pending t);
  Engine.cancel t;
  Alcotest.(check bool) "not pending" false (Engine.is_pending t);
  Engine.run e;
  Alcotest.(check bool) "not fired" false !fired;
  Engine.cancel t (* idempotent *)

let test_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule e ~after:(float_of_int i) (fun () -> incr count))
  done;
  Engine.run ~until:5.5 e;
  Alcotest.(check int) "only first five" 5 !count;
  Alcotest.(check (float 1e-9)) "clock at limit" 5.5 (Engine.now e);
  Engine.run e;
  Alcotest.(check int) "rest" 10 !count

let test_run_slice () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule e ~after:(float_of_int i) (fun () -> incr count))
  done;
  (* Budget smaller than the pending work: stop on the event budget with
     the clock still inside the slice. *)
  let r = Engine.run_slice ~max_events:3 e ~until:20.0 in
  Alcotest.(check bool) "stopped on budget" true (r = `Events);
  Alcotest.(check int) "three fired" 3 !count;
  (* Time horizon before the next event: advance the clock, fire none. *)
  let r = Engine.run_slice ~max_events:100 e ~until:3.5 in
  Alcotest.(check bool) "stopped on horizon" true (r = `Until);
  Alcotest.(check int) "no extra events" 3 !count;
  Alcotest.(check (float 1e-9)) "clock at horizon" 3.5 (Engine.now e);
  (* Run dry: the queue empties inside the horizon. *)
  let r = Engine.run_slice e ~until:100.0 in
  Alcotest.(check bool) "quiescent" true (r = `Quiescent);
  Alcotest.(check int) "all fired" 10 !count;
  Alcotest.(check (float 1e-9)) "clock at final horizon" 100.0 (Engine.now e)

let test_run_slice_counts_events () =
  let e = Engine.create () in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~after:(float_of_int i) ignore)
  done;
  let before = Engine.events_processed e in
  ignore (Engine.run_slice e ~until:10.0);
  Alcotest.(check int) "processed counter advanced" 5
    (Engine.events_processed e - before);
  (* Slicing is equivalent to one long run: interleaved slices fire
     handlers in the same order as Engine.run. *)
  let run_sliced () =
    let e = Engine.create () in
    let log = ref [] in
    let rng = Leotp_util.Rng.create ~seed:9 in
    for i = 0 to 30 do
      let t = Leotp_util.Rng.float rng 10.0 in
      ignore (Engine.schedule e ~after:t (fun () -> log := i :: !log))
    done;
    let until = ref 0.0 in
    let quiet = ref false in
    while not !quiet do
      match Engine.run_slice ~max_events:2 e ~until:!until with
      | `Events -> ()
      | `Until -> until := !until +. 1.0
      | `Quiescent -> quiet := true
    done;
    List.rev !log
  in
  let run_direct () =
    let e = Engine.create () in
    let log = ref [] in
    let rng = Leotp_util.Rng.create ~seed:9 in
    for i = 0 to 30 do
      let t = Leotp_util.Rng.float rng 10.0 in
      ignore (Engine.schedule e ~after:t (fun () -> log := i :: !log))
    done;
    Engine.run e;
    List.rev !log
  in
  Alcotest.(check (list int)) "sliced = direct" (run_direct ()) (run_sliced ())

let test_clock_monotone_negative_after () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~after:5.0 ignore);
  Engine.run e;
  (* Negative [after] clamps to "now". *)
  let fired_at = ref Float.nan in
  ignore (Engine.schedule e ~after:(-3.0) (fun () -> fired_at := Engine.now e));
  Engine.run e;
  Alcotest.(check (float 1e-9)) "clamped" 5.0 !fired_at

let test_step () =
  let e = Engine.create () in
  Alcotest.(check bool) "empty step" false (Engine.step e);
  ignore (Engine.schedule e ~after:1.0 ignore);
  Alcotest.(check bool) "one step" true (Engine.step e);
  Alcotest.(check bool) "drained" false (Engine.step e)

let test_every () =
  let e = Engine.create () in
  let times = ref [] in
  let h = Engine.every e ~period:1.0 (fun () -> times := Engine.now e :: !times) in
  Engine.run ~until:3.5 e;
  Alcotest.(check (list (float 1e-9))) "periodic" [ 1.0; 2.0; 3.0 ] (List.rev !times);
  Engine.cancel h;
  Engine.run ~until:10.0 e;
  Alcotest.(check int) "cancelled" 3 (List.length !times)

let test_every_start () =
  let e = Engine.create () in
  let times = ref [] in
  ignore
    (Engine.every e ~period:2.0 ~start:0.5 (fun () ->
         times := Engine.now e :: !times));
  Engine.run ~until:5.0 e;
  Alcotest.(check (list (float 1e-9)))
    "start offset" [ 0.5; 2.5; 4.5 ] (List.rev !times)

let test_cancel_compaction () =
  (* A long-lived engine that schedules and cancels many timers (the RTO
     pattern) must not retain the cancelled ones until their pop time:
     once cancelled timers dominate, the queue compacts. *)
  let e = Engine.create () in
  let fired = ref 0 in
  let keep = ref [] in
  for i = 1 to 1000 do
    let t =
      Engine.schedule e ~after:(1000.0 +. float_of_int i) (fun () -> incr fired)
    in
    if i mod 100 = 0 then keep := t :: !keep else Engine.cancel t
  done;
  Alcotest.(check bool)
    (Printf.sprintf "queue compacted (pending=%d)" (Engine.pending_events e))
    true
    (Engine.pending_events e < 200);
  Alcotest.(check bool)
    (Printf.sprintf "few cancelled retained (%d)" (Engine.cancelled_pending e))
    true
    (Engine.cancelled_pending e <= Engine.pending_events e);
  Engine.run e;
  Alcotest.(check int) "survivors fire" 10 !fired

let test_cancel_compaction_order () =
  (* Compaction must not disturb firing order of survivors. *)
  let e = Engine.create () in
  let log = ref [] in
  let timers =
    List.init 500 (fun i ->
        (i, Engine.schedule e ~after:(float_of_int (i + 1)) (fun () -> log := i :: !log)))
  in
  List.iter (fun (i, t) -> if i mod 7 <> 0 then Engine.cancel t) timers;
  Engine.run e;
  let expect = List.filter (fun i -> i mod 7 = 0) (List.init 500 Fun.id) in
  Alcotest.(check (list int)) "order preserved" expect (List.rev !log)

let test_determinism () =
  let run () =
    let e = Engine.create () in
    let log = ref [] in
    let rng = Leotp_util.Rng.create ~seed:11 in
    for i = 0 to 50 do
      let t = Leotp_util.Rng.float rng 10.0 in
      ignore (Engine.schedule e ~after:t (fun () -> log := i :: !log))
    done;
    Engine.run e;
    List.rev !log
  in
  Alcotest.(check (list int)) "identical runs" (run ()) (run ())

let () =
  Alcotest.run "leotp_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "event order" `Quick test_event_order;
          Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
          Alcotest.test_case "nested scheduling" `Quick test_schedule_from_handler;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "run slice" `Quick test_run_slice;
          Alcotest.test_case "run slice counters" `Quick
            test_run_slice_counts_events;
          Alcotest.test_case "negative delay clamp" `Quick
            test_clock_monotone_negative_after;
          Alcotest.test_case "step" `Quick test_step;
          Alcotest.test_case "every" `Quick test_every;
          Alcotest.test_case "every with start" `Quick test_every_start;
          Alcotest.test_case "cancel compaction" `Quick test_cancel_compaction;
          Alcotest.test_case "compaction keeps order" `Quick
            test_cancel_compaction_order;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
    ]
