(* Fixture tests for the leotp-lint static analyzer: for every rule one
   known-bad snippet must be flagged at the right location, one clean
   snippet must pass, and [@leotp.allow] must silence exactly the named
   rule. *)

module Finding = Leotp_lint.Finding
module Engine = Leotp_lint.Engine
module Rules = Leotp_lint.Rules

let lint ?(path = "lib/core/fixture.ml") ?mli_exists src =
  Engine.lint_source ~path ?mli_exists src

let rules_of fs = List.map (fun f -> f.Finding.rule) fs

let find rule fs = List.filter (fun f -> f.Finding.rule = rule) fs

let check_flags ~rule ~line src =
  let fs = lint src in
  match find rule fs with
  | [ f ] ->
    Alcotest.(check int) (rule ^ " line") line f.Finding.line;
    Alcotest.(check string) (rule ^ " file") "lib/core/fixture.ml" f.Finding.file
  | [] -> Alcotest.failf "%s: not flagged in %S" rule src
  | fs ->
    Alcotest.failf "%s: flagged %d times in %S" rule (List.length fs) src

let check_clean ~rule src =
  let fs = find rule (lint src) in
  if fs <> [] then
    Alcotest.failf "%s: flagged clean snippet %S at line %d" rule src
      (List.hd fs).Finding.line

(* ------------------------------------------------------------------ *)
(* Rule 1: no-wall-clock *)

let test_wall_clock () =
  check_flags ~rule:"no-wall-clock" ~line:2
    "let a = 1\nlet t () = Unix.gettimeofday ()";
  check_flags ~rule:"no-wall-clock" ~line:1 "let cpu () = Sys.time ()";
  check_flags ~rule:"no-wall-clock" ~line:1 "let t () = Unix.time ()";
  check_clean ~rule:"no-wall-clock" "let t engine = Engine.now engine";
  (* localtime etc. are not wall-clock *reads*; only the three are banned *)
  check_clean ~rule:"no-wall-clock" "let s t = Unix.localtime t"

let test_wall_clock_scope () =
  (* The bench/bin harness may read wall clocks (perf timing). *)
  let src = "let t () = Unix.gettimeofday ()" in
  Alcotest.(check (list string))
    "bench exempt" []
    (rules_of (lint ~path:"bench/main.ml" src));
  Alcotest.(check (list string))
    "bin exempt" []
    (rules_of (lint ~path:"bin/leotp_sim.ml" src))

(* ------------------------------------------------------------------ *)
(* Rule 2: no-unseeded-random *)

let test_unseeded_random () =
  check_flags ~rule:"no-unseeded-random" ~line:1
    "let () = Random.self_init ()";
  check_flags ~rule:"no-unseeded-random" ~line:2
    "let a = 2\nlet roll () = Random.int 6";
  check_clean ~rule:"no-unseeded-random"
    "let roll st = Random.State.int st 6";
  (* applies outside lib/ too: the harness must also stay seeded *)
  let fs = lint ~path:"bench/main.ml" "let x () = Random.float 1.0" in
  Alcotest.(check bool)
    "flagged in bench" true
    (List.mem "no-unseeded-random" (rules_of fs))

(* ------------------------------------------------------------------ *)
(* Rule 3: ordered-iteration *)

let test_ordered_iteration () =
  check_flags ~rule:"ordered-iteration" ~line:1
    "let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t []";
  check_flags ~rule:"ordered-iteration" ~line:2
    "let f g t =\n  Hashtbl.iter (fun k v -> g k v) t";
  (* sorting the folded result immediately is recognised as safe *)
  check_clean ~rule:"ordered-iteration"
    "let keys t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])";
  check_clean ~rule:"ordered-iteration" "let n t = Hashtbl.length t";
  (* sorting *something else* does not sanction the fold *)
  check_flags ~rule:"ordered-iteration" ~line:1
    "let f t l = List.sort compare l |> List.map (fun k -> Hashtbl.fold (fun _ _ a -> a) t k)"

(* ------------------------------------------------------------------ *)
(* Rule 4: no-global-mutable-state *)

let test_global_mutable () =
  check_flags ~rule:"no-global-mutable-state" ~line:1 "let count = ref 0";
  check_flags ~rule:"no-global-mutable-state" ~line:2
    "let a = 1\nlet tbl : (int, int) Hashtbl.t = Hashtbl.create 7";
  check_flags ~rule:"no-global-mutable-state" ~line:2
    "module Inner = struct\n  let buf = Buffer.create 16\nend";
  (* refs local to a function are per-call state, not global *)
  check_clean ~rule:"no-global-mutable-state"
    "let fresh () = ref 0\nlet use () = let r = ref 1 in !r";
  check_clean ~rule:"no-global-mutable-state" "let default_size = 64"

(* ------------------------------------------------------------------ *)
(* Rule 5: no-direct-print *)

let test_direct_print () =
  check_flags ~rule:"no-direct-print" ~line:1
    {|let f () = Printf.printf "x=%d" 3|};
  check_flags ~rule:"no-direct-print" ~line:2
    {|let a = 0
let g () = print_endline "hi"|};
  check_clean ~rule:"no-direct-print" {|let f () = Report.row "x=%d" 3|};
  check_clean ~rule:"no-direct-print" {|let s = Printf.sprintf "x=%d" 3|};
  (* bench/bin print directly by design *)
  Alcotest.(check (list string))
    "bench exempt" []
    (rules_of (lint ~path:"bench/main.ml" {|let f () = print_endline "ok"|}))

(* ------------------------------------------------------------------ *)
(* Rule 6: no-polymorphic-compare-on-float *)

let test_poly_float_compare () =
  let rule = "no-polymorphic-compare-on-float" in
  check_flags ~rule ~line:1 "let f x = x = 1.0";
  check_flags ~rule ~line:1 "let f a b = compare (a *. 2.0) b";
  check_flags ~rule ~line:1 "let f x = x <> Float.infinity";
  check_clean ~rule "let f x = Float.equal x 1.0";
  check_clean ~rule "let f x = Float.compare x 1.0 < 0";
  check_clean ~rule "let f x = x = 1";
  (* < and <= on floats are left alone (no nan-equality trap) *)
  check_clean ~rule "let f x = x < 1.0";
  (* float-containing structures: the boxed compare is just as
     nan-unsound one level down.  This is the Starlink handover-detector
     bug shape: a [float list option] compared with polymorphic <>. *)
  check_flags ~rule ~line:3
    "let f prev h =\n\
    \  let s = List.map (fun x -> Float.round (x *. 2.0)) h in\n\
    \  prev <> Some s";
  check_flags ~rule ~line:1 "let f (a : float list) b = a = b";
  check_flags ~rule ~line:1 "let f x y = (x, 1.0) = y";
  check_flags ~rule ~line:3
    "let f y =\n  let pair = (1, 2.5) in\n  pair = y";
  check_clean ~rule
    "let f prev h =\n\
    \  let s = List.map (fun x -> Float.round (x *. 2.0)) h in\n\
    \  Option.equal (List.equal Float.equal) prev (Some s)";
  (* int-shaped structures stay exempt *)
  check_clean ~rule "let f prev h = prev <> Some (List.map succ h)"

(* ------------------------------------------------------------------ *)
(* Rule 7: missing-interface *)

let test_missing_interface () =
  let src = "let x = 1" in
  let fs = lint ~mli_exists:false src in
  Alcotest.(check (list string)) "warns" [ "missing-interface" ] (rules_of fs);
  (match fs with
  | [ f ] ->
    Alcotest.(check string)
      "severity" "warning"
      (Finding.severity_to_string f.Finding.severity)
  | _ -> Alcotest.fail "expected exactly one finding");
  Alcotest.(check (list string))
    "mli present" []
    (rules_of (lint ~mli_exists:true src));
  Alcotest.(check (list string))
    "unknown fs state" []
    (rules_of (lint src));
  Alcotest.(check (list string))
    "bench exempt" []
    (rules_of (lint ~path:"bench/main.ml" ~mli_exists:false src));
  Alcotest.(check (list string))
    "file-level allow" []
    (rules_of
       (lint ~mli_exists:false
          "[@@@leotp.allow \"missing-interface\"]\nlet x = 1"))

(* ------------------------------------------------------------------ *)
(* Rule 9: hot-path-alloc *)

let test_hot_path_alloc () =
  let rule = "hot-path-alloc" in
  check_flags ~rule ~line:1 "let p () = Packet.blank ()";
  check_flags ~rule ~line:2
    "let a = 1\nlet f p = Leotp_net.Packet.assign_fresh_id p";
  (* the pool / codec layer itself is sanctioned *)
  Alcotest.(check (list string))
    "pool exempt" []
    (rules_of (lint ~path:"lib/net/packet_pool.ml" "let p () = Packet.blank ()"));
  Alcotest.(check (list string))
    "wire exempt" []
    (rules_of
       (lint ~path:"lib/tcp/wire.ml" "let f p = Packet.assign_fresh_id p"));
  (* applies everywhere, including bench/ and test fixtures in lib/ *)
  let fs = lint ~path:"bench/main.ml" "let p () = Leotp_net.Packet.blank ()" in
  Alcotest.(check bool)
    "flagged in bench" true
    (List.mem rule (rules_of fs));
  (* acquiring through the pool is the sanctioned idiom *)
  check_clean ~rule
    "let p () = Packet_pool.acquire ~src:0 ~dst:0 ~flow:0 ~size:1 ~kind:0";
  (* a justified allow is honoured *)
  check_clean ~rule
    {|let p () = (Packet.blank () [@leotp.allow "hot-path-alloc"])|}

(* ------------------------------------------------------------------ *)
(* Suppression *)

let test_allow_expression () =
  (* expression-scoped allow silences exactly that occurrence *)
  Alcotest.(check (list string))
    "silenced" []
    (rules_of
       (lint
          {|let t () = (Unix.gettimeofday () [@leotp.allow "no-wall-clock"])|}));
  (* ... but not a second, unannotated occurrence *)
  let fs =
    lint
      {|let t () = (Unix.gettimeofday () [@leotp.allow "no-wall-clock"])
let u () = Unix.gettimeofday ()|}
  in
  (match find "no-wall-clock" fs with
  | [ f ] -> Alcotest.(check int) "line" 2 f.Finding.line
  | fs -> Alcotest.failf "expected 1 surviving finding, got %d" (List.length fs))

let test_allow_binding () =
  Alcotest.(check (list string))
    "binding allow" []
    (rules_of
       (lint {|let count = ref 0 [@@leotp.allow "no-global-mutable-state"]|}))

let test_allow_names_one_rule () =
  (* an allow for rule A must not silence rule B in the same scope *)
  let fs =
    lint
      {|let t () = (Printf.printf "%f" (Unix.gettimeofday ())) [@leotp.allow "no-wall-clock"]|}
  in
  Alcotest.(check bool)
    "wall-clock silenced" true
    (find "no-wall-clock" fs = []);
  Alcotest.(check bool)
    "direct-print survives" true
    (find "no-direct-print" fs <> [])

let test_allow_file_level () =
  Alcotest.(check (list string))
    "file-level" []
    (rules_of
       (lint
          {|[@@@leotp.allow "no-wall-clock"]
let t () = Unix.gettimeofday ()
let u () = Unix.gettimeofday ()|}))

let test_allow_malformed_and_unknown () =
  let fs = lint {|let t () = (Unix.gettimeofday () [@leotp.allow])|} in
  Alcotest.(check bool)
    "malformed reported" true
    (find "malformed-allow" fs <> []);
  Alcotest.(check bool)
    "rule still fires" true
    (find "no-wall-clock" fs <> []);
  let fs = lint {|let x = (1 [@leotp.allow "no-such-rule"])|} in
  match find "unknown-rule" fs with
  | [ f ] -> Alcotest.(check bool) "warning" true (f.Finding.severity = Warning)
  | _ -> Alcotest.fail "unknown rule id not reported"

(* ------------------------------------------------------------------ *)
(* Engine plumbing *)

let test_parse_error () =
  match lint "let let let" with
  | [ f ] ->
    Alcotest.(check string) "rule" "parse-error" f.Finding.rule;
    Alcotest.(check bool) "error" true (f.Finding.severity = Error)
  | fs -> Alcotest.failf "expected 1 parse-error, got %d findings" (List.length fs)

let test_json_report () =
  let fs = lint "let t () = Unix.gettimeofday ()" in
  let json = Finding.report_json ~files:1 fs in
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "rule id" true (contains {|"rule":"no-wall-clock"|});
  Alcotest.(check bool) "file" true (contains {|"file":"lib/core/fixture.ml"|});
  Alcotest.(check bool) "errors count" true (contains {|"errors":1|})

let test_registry_docs () =
  (* every advertised rule id is non-empty and unique; doc strings exist *)
  let ids = Rules.known_ids in
  Alcotest.(check int) "21 rules" 21 (List.length ids);
  Alcotest.(check int) "unique"
    (List.length ids)
    (List.length (List.sort_uniq String.compare ids));
  List.iter
    (fun (r : Rules.t) ->
      Alcotest.(check bool) (r.id ^ " documented") true (String.length r.doc > 0))
    Rules.all

let () =
  Alcotest.run "leotp_lint"
    [
      ( "rules",
        [
          Alcotest.test_case "no-wall-clock" `Quick test_wall_clock;
          Alcotest.test_case "no-wall-clock scope" `Quick test_wall_clock_scope;
          Alcotest.test_case "no-unseeded-random" `Quick test_unseeded_random;
          Alcotest.test_case "ordered-iteration" `Quick test_ordered_iteration;
          Alcotest.test_case "no-global-mutable-state" `Quick
            test_global_mutable;
          Alcotest.test_case "no-direct-print" `Quick test_direct_print;
          Alcotest.test_case "no-polymorphic-compare-on-float" `Quick
            test_poly_float_compare;
          Alcotest.test_case "missing-interface" `Quick test_missing_interface;
          Alcotest.test_case "hot-path-alloc" `Quick test_hot_path_alloc;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "expression allow" `Quick test_allow_expression;
          Alcotest.test_case "binding allow" `Quick test_allow_binding;
          Alcotest.test_case "allow names one rule" `Quick
            test_allow_names_one_rule;
          Alcotest.test_case "file-level allow" `Quick test_allow_file_level;
          Alcotest.test_case "malformed / unknown" `Quick
            test_allow_malformed_and_unknown;
        ] );
      ( "engine",
        [
          Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "json report" `Quick test_json_report;
          Alcotest.test_case "registry" `Quick test_registry_docs;
        ] );
    ]
