(* leotp-own: fixture tests for the interprocedural packet-ownership,
   allocation-effect and time-taint pass.  Each planted defect (leaked
   acquire, double release, use-after-release, container escape,
   hot-path allocation, wall-clock taint) must be flagged with the right
   rule and a witness naming the path, while the clean and
   allow-suppressed variants pass.  A final check pins byte-stability:
   the same sources in any input order yield identical findings. *)

module Finding = Leotp_lint.Finding
module Own = Leotp_lint.Own

let analyze ?(path = "lib/core/fixture.ml") src =
  Own.analyze_sources [ (path, src) ]

let errors findings =
  List.filter (fun f -> f.Finding.severity = Finding.Error) findings

let with_rule rule findings =
  List.filter (fun f -> f.Finding.rule = rule) findings

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_one ~rule ?witness findings =
  match with_rule rule (errors findings) with
  | [ f ] ->
    (match witness with
    | Some needle ->
      Alcotest.(check bool)
        (rule ^ " witness mentions " ^ needle)
        true
        (contains f.Finding.message needle)
    | None -> ());
    f
  | [] -> Alcotest.failf "%s: not flagged" rule
  | fs -> Alcotest.failf "%s: flagged %d times" rule (List.length fs)

let check_clean ~rule findings =
  match with_rule rule findings with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "%s: flagged clean fixture at line %d: %s" rule
      f.Finding.line f.Finding.message

(* ------------------------------------------------------------------ *)
(* Ownership: own-leak *)

(* The canonical leak: a packet acquired and used but never released or
   handed off. *)
let test_leak () =
  let src =
    "let f pool node =\n\
     \  let p = Packet_pool.acquire pool in\n\
     \  Node.send node p\n"
  in
  let f = check_one ~rule:Own.leak_id (analyze src) in
  Alcotest.(check int) "acquire line" 2 f.Finding.line;
  Alcotest.(check bool) "names the variable" true
    (contains f.Finding.message "packet p");
  Alcotest.(check bool) "witness present" true
    (contains f.Finding.message "witness:")

(* Releasing on only one branch leaks on the other. *)
let test_leak_one_path () =
  let src =
    "let f pool cond =\n\
     \  let p = Packet_pool.acquire pool in\n\
     \  if cond then Packet_pool.release pool p\n"
  in
  ignore (check_one ~rule:Own.leak_id ~witness:"some path" (analyze src))

(* Interprocedural: the callee only borrows, so the caller still owns
   the packet at the end. *)
let test_leak_interprocedural () =
  let src =
    "let inspect p = ignore p\n\
     let f pool =\n\
     \  let p = Packet_pool.acquire pool in\n\
     \  inspect p\n"
  in
  ignore (check_one ~rule:Own.leak_id (analyze src))

(* Clean: released locally. *)
let test_release_clean () =
  let src =
    "let f pool =\n\
     \  let p = Packet_pool.acquire pool in\n\
     \  Packet_pool.release pool p\n"
  in
  check_clean ~rule:Own.leak_id (analyze src)

(* Clean interprocedurally: the callee releases, so its consuming role
   is inferred and discharges the caller's obligation. *)
let test_consume_inferred_clean () =
  let src =
    "let finish pool p = Packet_pool.release pool p\n\
     let f pool =\n\
     \  let p = Packet_pool.acquire pool in\n\
     \  finish pool p\n"
  in
  check_clean ~rule:Own.leak_id (analyze src)

(* Clean via annotation: [@leotp.owns "consumes p"] pins the role when
   inference cannot see the release (e.g. an external callee). *)
let test_owns_annotation_clean () =
  let src =
    "let hand_off p = External.sink p [@@leotp.owns \"consumes p\"]\n\
     let f pool =\n\
     \  let p = Packet_pool.acquire pool in\n\
     \  hand_off p\n"
  in
  check_clean ~rule:Own.leak_id (analyze src)

(* Transfer to the registered queue sink discharges ownership. *)
let test_transfer_sink_clean () =
  let src =
    "let f pool q =\n\
     \  let p = Packet_pool.acquire pool in\n\
     \  Pkt_queue.push q p\n"
  in
  let fs = analyze src in
  check_clean ~rule:Own.leak_id fs;
  check_clean ~rule:Own.escape_id fs

(* ------------------------------------------------------------------ *)
(* Ownership: own-double-release *)

let test_double_release () =
  let src =
    "let f pool =\n\
     \  let p = Packet_pool.acquire pool in\n\
     \  Packet_pool.release pool p;\n\
     \  Packet_pool.release pool p\n"
  in
  let f = check_one ~rule:Own.double_id ~witness:"witness:" (analyze src) in
  Alcotest.(check int) "second release line" 4 f.Finding.line

(* Interprocedural: the callee is inferred to consume, so a local
   release afterwards is a second release. *)
let test_release_after_consume () =
  let src =
    "let finish pool p = Packet_pool.release pool p\n\
     let f pool =\n\
     \  let p = Packet_pool.acquire pool in\n\
     \  finish pool p;\n\
     \  Packet_pool.release pool p\n"
  in
  Alcotest.(check bool) "flagged" true
    (errors (analyze src)
    |> List.exists (fun f -> f.Finding.rule = Own.double_id))

(* ------------------------------------------------------------------ *)
(* Ownership: own-use-after-release *)

let test_use_after_release () =
  let src =
    "let f pool node =\n\
     \  let p = Packet_pool.acquire pool in\n\
     \  Packet_pool.release pool p;\n\
     \  Node.send node p\n"
  in
  let f = check_one ~rule:Own.uar_id ~witness:"witness:" (analyze src) in
  Alcotest.(check int) "use line" 4 f.Finding.line

let test_use_before_release_clean () =
  let src =
    "let f pool node =\n\
     \  let p = Packet_pool.acquire pool in\n\
     \  Node.send node p;\n\
     \  Packet_pool.release pool p\n"
  in
  check_clean ~rule:Own.uar_id (analyze src)

(* ------------------------------------------------------------------ *)
(* Ownership: own-escape *)

let test_container_escape () =
  let src =
    "let stash tbl pool k =\n\
     \  let p = Packet_pool.acquire pool in\n\
     \  Hashtbl.replace tbl k p\n"
  in
  ignore
    (check_one ~rule:Own.escape_id ~witness:"long-lived container"
       (analyze src))

(* [@leotp.owns "transfers"] registers the def as a legitimate
   container store. *)
let test_escape_transfers_annotation_clean () =
  let src =
    "let stash tbl pool k =\n\
     \  (let p = Packet_pool.acquire pool in\n\
     \   Hashtbl.replace tbl k p)\n\
     [@@leotp.owns \"transfers\"]\n"
  in
  check_clean ~rule:Own.escape_id (analyze src)

(* Clones are tracked like acquires: stashing a clone escapes too. *)
let test_clone_escape () =
  let src =
    "let stash tbl pool k p =\n\
     \  let c = Packet_pool.clone pool p in\n\
     \  Hashtbl.replace tbl k c\n"
  in
  ignore (check_one ~rule:Own.escape_id (analyze src))

(* ------------------------------------------------------------------ *)
(* Allocation effects: hot-path-may-alloc *)

(* A hot root (suffix-matched def name) that allocates directly. *)
let test_hot_root_allocates () =
  let src =
    "let on_packet t pkt =\n\
     \  let entry = (t, pkt) in\n\
     \  ignore entry\n"
  in
  let fs = analyze ~path:"lib/core/shr.ml" src in
  ignore (check_one ~rule:Own.alloc_id ~witness:"witness:" fs)

(* Transitive: the hot root calls a helper whose callee allocates; the
   witness names the whole chain. *)
let test_hot_root_transitive_alloc () =
  let src =
    "let deep x = [ x ]\n\
     let helper x = deep x\n\
     let on_packet _t pkt = ignore (helper pkt)\n"
  in
  let fs = analyze ~path:"lib/core/shr.ml" src in
  let f = check_one ~rule:Own.alloc_id fs in
  Alcotest.(check bool) "chain walks through helper" true
    (contains f.Finding.message "Shr.helper");
  Alcotest.(check bool) "chain reaches deep" true
    (contains f.Finding.message "Shr.deep")

(* A literal closure handed to Engine.schedule in a datapath file is a
   hot root of its own. *)
let test_hot_closure_sink () =
  let src =
    "let arm t engine =\n\
     \  ignore (Engine.schedule engine ~after:1.0 (fun () -> t := [ 1 ]))\n"
  in
  let fs = analyze ~path:"lib/core/fixture.ml" src in
  Alcotest.(check bool) "closure body flagged" true
    (List.exists (fun f -> f.Finding.rule = Own.alloc_id) (errors fs))

(* The same closure outside the datapath directories is setup code. *)
let test_non_datapath_clean () =
  let src =
    "let arm t engine =\n\
     \  ignore (Engine.schedule engine ~after:1.0 (fun () -> t := [ 1 ]))\n"
  in
  check_clean ~rule:Own.alloc_id (analyze ~path:"lib/scenario/fixture.ml" src)

(* An allocation-free hot root stays clean. *)
let test_hot_root_clean () =
  let src = "let on_packet t pkt = t := pkt\n" in
  check_clean ~rule:Own.alloc_id (analyze ~path:"lib/core/shr.ml" src)

(* [@leotp.allow] at the allocation site clears every chain that
   bottoms out there. *)
let test_alloc_allow_suppresses () =
  let src =
    "let deep x = ([ x ] [@leotp.allow \"hot-path-may-alloc\"])\n\
     let on_packet _t pkt = ignore (deep pkt)\n"
  in
  check_clean ~rule:Own.alloc_id (analyze ~path:"lib/core/shr.ml" src)

(* ------------------------------------------------------------------ *)
(* Time taint *)

(* A direct wall-clock read in the sim-time stratum. *)
let test_time_taint_direct () =
  let src = "let now () = Unix.gettimeofday ()\n" in
  ignore (check_one ~rule:Own.taint_id (analyze src))

(* Transitive through a harness-stratum helper: the read still becomes
   reachable from sim-time code. *)
let test_time_taint_transitive () =
  let sim = "let stamp () = Clock.read ()\n" in
  let harness = "let read () = Unix.gettimeofday ()\n" in
  let fs =
    Own.analyze_sources
      [ ("lib/core/fixture.ml", sim); ("bench/clock.ml", harness) ]
  in
  ignore (check_one ~rule:Own.taint_id ~witness:"Clock.read" fs)

(* Harness code may read wall clocks. *)
let test_time_taint_harness_clean () =
  let src = "let now () = Unix.gettimeofday ()\n" in
  check_clean ~rule:Own.taint_id (analyze ~path:"bench/main.ml" src)

(* ------------------------------------------------------------------ *)
(* Byte stability *)

(* The same sources in any input order produce identical findings (and
   an identical report modulo the [files] count the caller passes). *)
let test_byte_stable () =
  let a =
    ( "lib/core/a.ml",
      "let f pool node =\n\
       \  let p = Packet_pool.acquire pool in\n\
       \  Node.send node p\n" )
  in
  let b = ("lib/core/b.ml", "let now () = Unix.gettimeofday ()\n") in
  let render fs =
    String.concat "\n"
      (List.map
         (fun f ->
           Printf.sprintf "%s:%d:%d %s %s" f.Finding.file f.Finding.line
             f.Finding.col f.Finding.rule f.Finding.message)
         fs)
  in
  let fwd = render (Own.analyze_sources [ a; b ]) in
  let rev = render (Own.analyze_sources [ b; a ]) in
  Alcotest.(check string) "order-independent" fwd rev;
  Alcotest.(check bool) "non-empty" true (String.length fwd > 0)

let () =
  Alcotest.run "leotp_own"
    [
      ( "ownership",
        [
          Alcotest.test_case "leak" `Quick test_leak;
          Alcotest.test_case "leak one path" `Quick test_leak_one_path;
          Alcotest.test_case "leak interprocedural" `Quick
            test_leak_interprocedural;
          Alcotest.test_case "release clean" `Quick test_release_clean;
          Alcotest.test_case "consume inferred clean" `Quick
            test_consume_inferred_clean;
          Alcotest.test_case "owns annotation clean" `Quick
            test_owns_annotation_clean;
          Alcotest.test_case "transfer sink clean" `Quick
            test_transfer_sink_clean;
          Alcotest.test_case "double release" `Quick test_double_release;
          Alcotest.test_case "release after consume" `Quick
            test_release_after_consume;
          Alcotest.test_case "use after release" `Quick test_use_after_release;
          Alcotest.test_case "use before release clean" `Quick
            test_use_before_release_clean;
          Alcotest.test_case "container escape" `Quick test_container_escape;
          Alcotest.test_case "escape transfers annotation" `Quick
            test_escape_transfers_annotation_clean;
          Alcotest.test_case "clone escape" `Quick test_clone_escape;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "hot root allocates" `Quick
            test_hot_root_allocates;
          Alcotest.test_case "transitive chain" `Quick
            test_hot_root_transitive_alloc;
          Alcotest.test_case "hot closure sink" `Quick test_hot_closure_sink;
          Alcotest.test_case "non-datapath clean" `Quick
            test_non_datapath_clean;
          Alcotest.test_case "hot root clean" `Quick test_hot_root_clean;
          Alcotest.test_case "allow suppresses" `Quick
            test_alloc_allow_suppresses;
        ] );
      ( "taint",
        [
          Alcotest.test_case "direct" `Quick test_time_taint_direct;
          Alcotest.test_case "transitive" `Quick test_time_taint_transitive;
          Alcotest.test_case "harness clean" `Quick
            test_time_taint_harness_clean;
        ] );
      ( "stability",
        [ Alcotest.test_case "byte stable" `Quick test_byte_stable ] );
    ]
