(* Tests for the TCP substrate: congestion controllers in isolation, the
   sender/receiver engine end to end (timing, loss recovery, reliability
   under random loss), and Split TCP proxies. *)

open Leotp_tcp
module Engine = Leotp_sim.Engine
module Node = Leotp_net.Node
module Bandwidth = Leotp_net.Bandwidth
module Topology = Leotp_net.Topology
module Flow_metrics = Leotp_net.Flow_metrics

let mbps = Leotp_util.Units.mbps_to_bytes_per_sec

let setup () =
  Leotp_net.Packet.reset_ids ();
  Node.reset_ids ();
  (Engine.create (), Leotp_util.Rng.create ~seed:7)

let build_chain engine rng ~hops ~bw_mbps ~delay ~plr =
  let spec =
    Topology.hop ~plr ~bandwidth:(Bandwidth.Constant (mbps bw_mbps)) ~delay ()
  in
  Topology.chain engine ~rng (Array.make hops spec)

(* ------------------------------------------------------------------ *)
(* Congestion controllers in isolation *)

let ack cc ?(rtt = Some 0.05) ?(bw = None) ?(inflight = 0) ~now ~acked () =
  cc.Cc.on_ack
    { Cc.now; acked_bytes = acked; rtt_sample = rtt; bw_sample = bw; inflight }

let test_cc_registry () =
  List.iter
    (fun algo ->
      let name = Cc.algo_name algo in
      Alcotest.(check bool)
        (name ^ " round-trips")
        true
        (Cc.algo_of_name name = Some algo))
    Cc.all;
  Alcotest.(check bool) "unknown" true (Cc.algo_of_name "reno2000" = None)

let test_newreno_slow_start_and_ca () =
  let cc = Cc.create Cc.Newreno ~mss:1000 ~now:0.0 in
  let w0 = cc.Cc.cwnd () in
  ack cc ~now:0.1 ~acked:1000 ();
  Alcotest.(check (float 1e-6)) "ss doubles per ack" (w0 +. 1000.0) (cc.Cc.cwnd ());
  cc.Cc.on_loss ~now:0.2 ~inflight:5000;
  let after_loss = cc.Cc.cwnd () in
  Alcotest.(check (float 1e-6)) "halved" ((w0 +. 1000.0) /. 2.0) after_loss;
  ack cc ~now:0.3 ~acked:1000 ();
  let growth = cc.Cc.cwnd () -. after_loss in
  Alcotest.(check bool)
    "CA additive (~mss^2/cwnd)" true
    (growth > 0.0 && growth < 1000.0)

let test_newreno_rto () =
  let cc = Cc.create Cc.Newreno ~mss:1000 ~now:0.0 in
  cc.Cc.on_rto ~now:0.1;
  Alcotest.(check (float 1e-6)) "cwnd back to 1 mss" 1000.0 (cc.Cc.cwnd ())

let test_hybla_rho_scaling () =
  (* Same loss pattern, different RTT: hybla's CA growth is ~rho^2 faster. *)
  let grow rtt =
    let cc = Cc.create Cc.Hybla ~mss:1000 ~now:0.0 in
    (* Prime srtt, then force both into congestion avoidance at a
       comparable window via repeated loss halvings. *)
    for i = 1 to 20 do
      ack cc ~rtt:(Some rtt) ~now:(0.01 *. float_of_int i) ~acked:1000 ()
    done;
    while cc.Cc.cwnd () > 20_000.0 do
      cc.Cc.on_loss ~now:0.5 ~inflight:0
    done;
    let w = cc.Cc.cwnd () in
    ack cc ~rtt:(Some rtt) ~now:0.6 ~acked:1000 ();
    (cc.Cc.cwnd () -. w) *. w (* growth*cwnd ~ rho^2*mss^2, cwnd-independent *)
  in
  let slow = grow 0.025 and fast = grow 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "long-RTT grows faster (%.1f vs %.1f)" fast slow)
    true (fast > 10.0 *. slow)

let test_vegas_backs_off_on_rtt_rise () =
  let cc = Cc.create Cc.Vegas ~mss:1000 ~now:0.0 in
  (* Prime base_rtt at 50 ms, then inflate RTT: cwnd must shrink. *)
  ack cc ~rtt:(Some 0.05) ~now:0.0 ~acked:1000 ();
  (* Exit slow start via large diff: srtt grows. *)
  for i = 1 to 30 do
    ack cc ~rtt:(Some 0.25) ~now:(0.3 *. float_of_int i) ~acked:1000 ()
  done;
  let w = cc.Cc.cwnd () in
  for i = 31 to 40 do
    ack cc ~rtt:(Some 0.25) ~now:(0.3 *. float_of_int i) ~acked:1000 ()
  done;
  Alcotest.(check bool) "not growing under queuing" true (cc.Cc.cwnd () <= w)

let test_westwood_loss_uses_bwe () =
  let cc = Cc.create Cc.Westwood ~mss:1000 ~now:0.0 in
  (* Feed bw samples of 1 MB/s with 100 ms min rtt -> BDP 100 KB. *)
  for i = 1 to 50 do
    ack cc ~rtt:(Some 0.1) ~bw:(Some 1_000_000.0)
      ~now:(0.1 *. float_of_int i)
      ~acked:1000 ()
  done;
  cc.Cc.on_loss ~now:6.0 ~inflight:0;
  let w = cc.Cc.cwnd () in
  Alcotest.(check bool)
    (Printf.sprintf "cwnd ~ BDP after loss (%.0f)" w)
    true
    (w > 50_000.0 && w <= 110_000.0)

let test_bbr_pacing_converges () =
  let cc = Cc.create Cc.Bbr ~mss:1000 ~now:0.0 in
  Alcotest.(check bool)
    "no pacing before samples" true
    (cc.Cc.pacing_rate () = None);
  (* Steady samples: 2 MB/s, 40 ms. *)
  for i = 1 to 200 do
    ack cc ~rtt:(Some 0.04) ~bw:(Some 2_000_000.0)
      ~now:(0.04 *. float_of_int i)
      ~acked:1000 ~inflight:10_000 ()
  done;
  (match cc.Cc.pacing_rate () with
  | Some r ->
    Alcotest.(check bool)
      (Printf.sprintf "pacing near bottleneck bw (%.0f)" r)
      true
      (r > 1_000_000.0 && r < 6_000_000.0)
  | None -> Alcotest.fail "expected pacing");
  Alcotest.(check bool)
    "cwnd capped near 2 BDP" true
    (cc.Cc.cwnd () < 4.0 *. 2_000_000.0 *. 0.04)

let test_bbr_ignores_loss () =
  let cc = Cc.create Cc.Bbr ~mss:1000 ~now:0.0 in
  for i = 1 to 50 do
    ack cc ~rtt:(Some 0.04) ~bw:(Some 2_000_000.0)
      ~now:(0.04 *. float_of_int i)
      ~acked:1000 ()
  done;
  let w = cc.Cc.cwnd () in
  cc.Cc.on_loss ~now:2.1 ~inflight:10_000;
  Alcotest.(check (float 1.0)) "loss-insensitive" w (cc.Cc.cwnd ())

let test_pcc_rate_positive () =
  let cc = Cc.create Cc.Pcc ~mss:1000 ~now:0.0 in
  for i = 1 to 100 do
    ack cc ~rtt:(Some 0.05) ~now:(0.05 *. float_of_int i) ~acked:5000 ()
  done;
  match cc.Cc.pacing_rate () with
  | Some r -> Alcotest.(check bool) "positive rate" true (r > 0.0)
  | None -> Alcotest.fail "pcc must pace"

(* ------------------------------------------------------------------ *)
(* End-to-end engine behaviour *)

let run_transfer ?(hops = 3) ?(bw_mbps = 20.0) ?(delay = 0.005) ?(plr = 0.0)
    ?(bytes = 500_000) ?(cc = Cc.Newreno) ?(until = 60.0) () =
  let engine, rng = setup () in
  let chain = build_chain engine rng ~hops ~bw_mbps ~delay ~plr in
  let n = Array.length chain.Topology.nodes - 1 in
  let session =
    Session.connect engine ~src_node:chain.Topology.nodes.(0)
      ~dst_node:chain.Topology.nodes.(n) ~flow:1 ~cc
      ~source:(Sender.Fixed bytes) ()
  in
  Session.start session;
  Engine.run ~until engine;
  (session, engine)

let test_transfer_completes () =
  let session, _ = run_transfer () in
  Alcotest.(check bool) "sender finished" true (Sender.finished session.Session.sender);
  Alcotest.(check bool) "receiver complete" true (Receiver.complete session.Session.receiver);
  Alcotest.(check int)
    "all bytes delivered" 500_000
    (Flow_metrics.app_bytes session.Session.metrics)

let test_transfer_timing_sane () =
  (* 500 KB over 20 Mbps should take ~0.2 s + slow start; certainly < 2 s. *)
  let session, _ = run_transfer () in
  match Flow_metrics.completion_time session.Session.metrics with
  | Some ct ->
    Alcotest.(check bool)
      (Printf.sprintf "completion %.3fs reasonable" ct)
      true
      (ct > 0.2 && ct < 2.0)
  | None -> Alcotest.fail "no completion time"

let test_owd_includes_propagation () =
  let session, _ = run_transfer ~plr:0.0 () in
  let owd = Flow_metrics.owd session.Session.metrics in
  (* 3 hops x 5 ms propagation = 15 ms minimum. *)
  Alcotest.(check bool)
    "min OWD >= propagation" true
    (Leotp_util.Stats.min owd >= 0.015)

let test_reliability_under_loss () =
  let session, _ =
    run_transfer ~plr:0.02 ~bytes:300_000 ~cc:Cc.Cubic ~until:120.0 ()
  in
  Alcotest.(check bool) "complete despite 2%/hop loss" true
    (Receiver.complete session.Session.receiver);
  Alcotest.(check bool)
    "retransmissions happened" true
    (Flow_metrics.retransmissions session.Session.metrics > 0)

(* Steady-state throughput of an unlimited flow, excluding slow-start
   warmup (this is what the paper's Figs 2 and 12 measure). *)
let steady_tput ?(hops = 5) ?(plr = 0.0) ~cc () =
  let engine, rng = setup () in
  let chain = build_chain engine rng ~hops ~bw_mbps:20.0 ~delay:0.005 ~plr in
  let n = Array.length chain.Topology.nodes - 1 in
  let session =
    Session.connect engine ~src_node:chain.Topology.nodes.(0)
      ~dst_node:chain.Topology.nodes.(n) ~flow:1 ~cc ~source:Sender.Unlimited
      ()
  in
  Session.start session;
  Engine.run ~until:60.0 engine;
  Flow_metrics.goodput session.Session.metrics ~lo:10.0 ~hi:60.0

let test_loss_hurts_loss_based_cc () =
  let clean = steady_tput ~cc:Cc.Cubic ()
  and lossy = steady_tput ~plr:0.005 ~cc:Cc.Cubic () in
  Alcotest.(check bool)
    (Printf.sprintf "cubic: %.0f clean vs %.0f lossy B/s" clean lossy)
    true
    (lossy < 0.7 *. clean)

let test_bbr_beats_cubic_under_loss () =
  let bbr = steady_tput ~plr:0.005 ~cc:Cc.Bbr ()
  and cubic = steady_tput ~plr:0.005 ~cc:Cc.Cubic () in
  Alcotest.(check bool)
    (Printf.sprintf "bbr %.0f > cubic %.0f under loss" bbr cubic)
    true (bbr > cubic)

let test_bulk_flow_throughput () =
  (* An unlimited NewReno flow on a clean link should keep the pipe busy:
     >= 70% utilization over 30 s. *)
  let engine, rng = setup () in
  let chain = build_chain engine rng ~hops:2 ~bw_mbps:10.0 ~delay:0.01 ~plr:0.0 in
  let session =
    Session.connect engine ~src_node:chain.Topology.nodes.(0)
      ~dst_node:chain.Topology.nodes.(2) ~flow:1 ~cc:Cc.Newreno
      ~source:Sender.Unlimited ()
  in
  Session.start session;
  Engine.run ~until:30.0 engine;
  let delivered = Flow_metrics.app_bytes session.Session.metrics in
  let util = float_of_int delivered /. (mbps 10.0 *. 30.0) in
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.2f" util)
    true (util > 0.7)

(* Reliability property: whatever the loss rate and bandwidth, a Fixed
   transfer that completes delivered every byte exactly once, in order. *)
let reliability_prop =
  let open QCheck2 in
  Test.make ~name:"TCP delivers the exact byte stream under random loss"
    ~count:15
    Gen.(
      triple (int_range 1 4) (float_range 0.0 0.03)
        (oneofl [ Cc.Newreno; Cc.Cubic; Cc.Bbr; Cc.Westwood ]))
    (fun (hops, plr, cc) ->
      let engine, rng = setup () in
      let chain = build_chain engine rng ~hops ~bw_mbps:20.0 ~delay:0.003 ~plr in
      let n = Array.length chain.Topology.nodes - 1 in
      let bytes = 150_000 in
      let session =
        Session.connect engine ~src_node:chain.Topology.nodes.(0)
          ~dst_node:chain.Topology.nodes.(n) ~flow:1 ~cc
          ~source:(Sender.Fixed bytes) ()
      in
      Session.start session;
      Engine.run ~until:300.0 engine;
      Receiver.complete session.Session.receiver
      && Receiver.delivered_bytes session.Session.receiver = bytes
      && Flow_metrics.app_bytes session.Session.metrics = bytes)

let test_dynamic_source_sender () =
  (* A sender whose data becomes available over time (the proxy/gateway
     source) keeps transmitting as the prefix grows. *)
  let engine, rng = setup () in
  let chain = build_chain engine rng ~hops:2 ~bw_mbps:20.0 ~delay:0.005 ~plr:0.0 in
  let available = ref 0 in
  let src = chain.Topology.nodes.(0) and dst = chain.Topology.nodes.(2) in
  let metrics = Flow_metrics.create ~flow:1 in
  let sender =
    Sender.create engine ~node:src ~dst:(Node.id dst) ~flow:1 ~cc:Cc.Newreno
      ~source:(Sender.Dynamic (fun () -> !available))
      ~metrics ()
  in
  let receiver =
    Receiver.create engine ~node:dst ~src:(Node.id src) ~flow:1 ~metrics ()
  in
  Node.set_handler src (fun ~from:_ pkt ->
      if Wire.is_ack_seg pkt then Sender.handle_ack sender pkt
      else Leotp_net.Packet_pool.release pkt);
  Node.set_handler dst (fun ~from:_ pkt ->
      if Wire.is_data_seg pkt then Receiver.handle_data receiver pkt
      else Leotp_net.Packet_pool.release pkt);
  Sender.start sender;
  (* Grow the prefix in three installments. *)
  List.iter
    (fun (t, n) ->
      ignore
        (Engine.schedule engine ~after:t (fun () ->
             available := n;
             Sender.notify_data_available sender)))
    [ (0.1, 100_000); (1.0, 250_000); (2.0, 400_000) ];
  Engine.run ~until:20.0 engine;
  Alcotest.(check int) "all delivered" 400_000 (Receiver.delivered_bytes receiver)

let test_receiver_sack_limit () =
  (* The receiver advertises at most 3 SACK ranges above the cumulative
     ack, mirroring real TCP option-space limits. *)
  let engine, rng = setup () in
  ignore rng;
  let node = Node.create ~name:"rx" in
  let sacks = ref [] in
  Node.set_handler node (fun ~from:_ pkt ->
      if Wire.is_ack_seg pkt then begin
        sacks := Wire.sack_list pkt;
        Leotp_net.Packet_pool.release pkt
      end);
  (* ACKs are sent to src=node id 0: loop them back into our handler via
     a direct route to self. *)
  let rx = Receiver.create engine ~node ~src:(Node.id node) ~flow:1 () in
  let self_spec =
    Leotp_net.Topology.hop ~bandwidth:(Bandwidth.Constant 1e9) ~delay:1e-6 ()
  in
  let d = Leotp_net.Topology.connect engine ~rng:(Leotp_util.Rng.create ~seed:1) node node self_spec in
  Node.set_handler node (fun ~from:_ pkt ->
      if Wire.is_ack_seg pkt then begin
        sacks := Wire.sack_list pkt;
        Leotp_net.Packet_pool.release pkt
      end
      else if Wire.is_data_seg pkt then Receiver.handle_data rx pkt
      else Leotp_net.Packet_pool.release pkt);
  Node.add_route node ~dst:(Node.id node) d.Leotp_net.Topology.fwd;
  (* Five disjoint out-of-order islands: 1400-gap pattern. *)
  List.iter
    (fun i ->
      Receiver.handle_data rx
        (Wire.data_packet ~src:(Node.id node) ~dst:(Node.id node) ~flow:1
           ~seq:(i * 2800) ~len:1400 ~sent_at:0.0 ~first_sent:0.0 ~retx:false
           ~fin:false))
    [ 1; 2; 3; 4; 5 ];
  Engine.run engine;
  Alcotest.(check bool)
    (Printf.sprintf "%d sack ranges <= 3" (List.length !sacks))
    true
    (List.length !sacks <= 3 && List.length !sacks > 0)

(* ------------------------------------------------------------------ *)
(* Split TCP *)

let run_split ?(hops = 4) ?(plr = 0.0) ?(bytes = 400_000) ?(cc = Cc.Cubic)
    ?(until = 120.0) () =
  let engine, rng = setup () in
  let chain = build_chain engine rng ~hops ~bw_mbps:20.0 ~delay:0.005 ~plr in
  let split =
    Split.connect engine ~nodes:chain.Topology.nodes ~flow:1 ~cc
      ~source:(Sender.Fixed bytes) ()
  in
  Split.start split;
  Engine.run ~until engine;
  (split, engine)

let test_split_completes () =
  let split, _ = run_split () in
  Alcotest.(check bool) "complete" true (Split.complete split);
  Alcotest.(check int) "bytes" 400_000 (Flow_metrics.app_bytes (Split.metrics split))

let test_split_reliable_under_loss () =
  let split, _ = run_split ~plr:0.01 ~until:300.0 () in
  Alcotest.(check bool) "complete with loss" true (Split.complete split)

let test_split_beats_e2e_cubic_under_loss () =
  (* The Fig 4 effect: splitting a lossy 10-hop path rescues Cubic. *)
  let bytes = 1_500_000 in
  let split, _ = run_split ~hops:8 ~plr:0.005 ~bytes ~until:400.0 () in
  let e2e, _ =
    run_transfer ~hops:8 ~plr:0.005 ~bytes ~cc:Cc.Cubic ~until:400.0 ()
  in
  let time m =
    match Flow_metrics.completion_time m with Some t -> t | None -> 400.0
  in
  let t_split = time (Split.metrics split) in
  let t_e2e = time e2e.Session.metrics in
  Alcotest.(check bool)
    (Printf.sprintf "split %.1fs faster than e2e %.1fs" t_split t_e2e)
    true (t_split < t_e2e)

let test_split_owd_tracks_origin () =
  (* OWD through proxies must be at least the full-path propagation. *)
  let split, _ = run_split ~hops:4 () in
  let owd = Flow_metrics.owd (Split.metrics split) in
  Alcotest.(check bool)
    "origin-stamped OWD >= 4 hops propagation" true
    (Leotp_util.Stats.min owd >= 0.02)

(* ------------------------------------------------------------------ *)
(* Sender bookkeeping regressions (each failed before the fix). *)

(* A bare sender with no route: data packets are dropped at the node and
   the test injects acks by hand, so every assertion is deterministic. *)
let drive_sender ?(cc = Cc.Newreno) ?(bytes = 3_000) () =
  let engine, _ = setup () in
  let node = Node.create ~name:"tx" in
  let sender =
    Sender.create engine ~node ~dst:99 ~flow:1 ~cc ~mss:1000
      ~source:(Sender.Fixed bytes) ()
  in
  Sender.start sender;
  (engine, node, sender)

let ack_pkt node ~cum ?(sacks = []) ?ts_echo () =
  let p = Wire.ack_packet ~src:99 ~dst:(Node.id node) ~flow:1 ~cum_ack:cum in
  List.iter (fun (lo, hi) -> Wire.add_sack p ~lo ~hi) sacks;
  (match ts_echo with Some t -> Wire.set_ts_echo p t | None -> ());
  p

let test_partial_ack_straddling_segment () =
  (* Three 1000-byte segments go out inside the initial window.  An ack
     at 1500 lands mid-segment: the straddled segment's tail must stay
     in flight.  Pre-fix, IntMap.split dropped the straddler entirely,
     under-counting inflight by 500 bytes. *)
  let engine, node, sender = drive_sender () in
  Engine.run ~until:0.05 engine;
  Alcotest.(check int) "three segments out" 3000 (Sender.inflight sender);
  Sender.handle_ack sender (ack_pkt node ~cum:1500 ());
  Alcotest.(check int) "snd_una advances" 1500 (Sender.snd_una sender);
  Alcotest.(check int) "tail still inflight" 1500 (Sender.inflight sender)

let test_rtt_sample_at_time_zero () =
  (* The first flight is sent at t = 0.0.  An ack echoing that timestamp
     must still yield an RTT sample; pre-fix the [ts_echo > 0.0] guard
     silently discarded it. *)
  let engine, node, sender = drive_sender () in
  Engine.run ~until:0.05 engine;
  Sender.handle_ack sender (ack_pkt node ~cum:1000 ~ts_echo:0.0 ());
  match Sender.srtt sender with
  | None -> Alcotest.fail "ack echoing t=0.0 produced no RTT sample"
  | Some srtt -> Alcotest.(check (float 1e-9)) "srtt = 50ms" 0.05 srtt

let test_stop_clears_timers () =
  (* PCC paces from the first packet, so the pump timer is armed as soon
     as the sender starts.  Pre-fix, [stop] cancelled the engine event
     but left the handle set, so [timers_idle] stayed false forever. *)
  let _engine, _node, sender = drive_sender ~cc:Cc.Pcc ~bytes:50_000 () in
  Alcotest.(check bool) "pacing armed a timer" true (Sender.timer_pending sender);
  Sender.stop sender;
  Alcotest.(check bool) "no engine event pending" false
    (Sender.timer_pending sender);
  Alcotest.(check bool) "timer slots cleared" true (Sender.timers_idle sender)

let test_finished_transfer_quiescent () =
  let session, _ = run_transfer ~cc:Cc.Bbr () in
  Alcotest.(check bool) "finished" true (Sender.finished session.Session.sender);
  Alcotest.(check bool) "timers idle after completion" true
    (Sender.timers_idle session.Session.sender)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "leotp_tcp"
    [
      ( "cc",
        [
          Alcotest.test_case "registry" `Quick test_cc_registry;
          Alcotest.test_case "newreno ss/ca" `Quick test_newreno_slow_start_and_ca;
          Alcotest.test_case "newreno rto" `Quick test_newreno_rto;
          Alcotest.test_case "hybla rho" `Quick test_hybla_rho_scaling;
          Alcotest.test_case "vegas rtt" `Quick test_vegas_backs_off_on_rtt_rise;
          Alcotest.test_case "westwood bwe" `Quick test_westwood_loss_uses_bwe;
          Alcotest.test_case "bbr pacing" `Quick test_bbr_pacing_converges;
          Alcotest.test_case "bbr loss-blind" `Quick test_bbr_ignores_loss;
          Alcotest.test_case "pcc rate" `Quick test_pcc_rate_positive;
        ] );
      ( "engine",
        [
          Alcotest.test_case "transfer completes" `Quick test_transfer_completes;
          Alcotest.test_case "timing sane" `Quick test_transfer_timing_sane;
          Alcotest.test_case "owd floor" `Quick test_owd_includes_propagation;
          Alcotest.test_case "reliable under loss" `Quick test_reliability_under_loss;
          Alcotest.test_case "loss hurts cubic" `Slow test_loss_hurts_loss_based_cc;
          Alcotest.test_case "bbr beats cubic lossy" `Slow
            test_bbr_beats_cubic_under_loss;
          Alcotest.test_case "bulk utilization" `Quick test_bulk_flow_throughput;
          qc reliability_prop;
        ] );
      ( "sender-fixes",
        [
          Alcotest.test_case "partial ack straddling segment" `Quick
            test_partial_ack_straddling_segment;
          Alcotest.test_case "rtt sample at t=0" `Quick
            test_rtt_sample_at_time_zero;
          Alcotest.test_case "stop clears timers" `Quick
            test_stop_clears_timers;
          Alcotest.test_case "finished transfer quiescent" `Quick
            test_finished_transfer_quiescent;
        ] );
      ( "sources",
        [
          Alcotest.test_case "dynamic source" `Quick test_dynamic_source_sender;
          Alcotest.test_case "sack limit" `Quick test_receiver_sack_limit;
        ] );
      ( "split",
        [
          Alcotest.test_case "completes" `Quick test_split_completes;
          Alcotest.test_case "reliable under loss" `Quick
            test_split_reliable_under_loss;
          Alcotest.test_case "beats e2e under loss" `Slow
            test_split_beats_e2e_cubic_under_loss;
          Alcotest.test_case "origin owd" `Quick test_split_owd_tracks_origin;
        ] );
    ]
