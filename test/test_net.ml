(* Tests for the packet-level network simulator: link timing, queuing,
   loss, flush/epoch semantics, topology routing, dynamic paths. *)

open Leotp_net

let mbps = Leotp_util.Units.mbps_to_bytes_per_sec

let setup () =
  Packet.reset_ids ();
  Node.reset_ids ();
  (Leotp_sim.Engine.create (), Leotp_util.Rng.create ~seed:5)

let mk_link ?(bw = 8.0) ?(delay = 0.01) ?(plr = 0.0) ?buffer_bytes engine rng =
  Link.create engine ~name:"l" ~src:1 ~dst:2
    ~bandwidth:(Bandwidth.Constant (mbps bw))
    ~delay ~plr ?buffer_bytes ~rng ()

(* Raw test packets come from the pool like everything else. *)
let mk ~src ~dst ~flow ~size str =
  let p = Packet_pool.acquire ~src ~dst ~flow ~size ~kind:Packet.kind_raw in
  p.Packet.str <- str;
  p

let raw_pkt ?(size = 1000) () = mk ~src:1 ~dst:2 ~flow:0 ~size "x"

(* ------------------------------------------------------------------ *)
(* Bandwidth *)

let test_bandwidth_constant () =
  Alcotest.(check (float 1e-9)) "constant" 5.0 (Bandwidth.at (Constant 5.0) 99.0)

let test_bandwidth_square () =
  let b = Bandwidth.Square { mean = 10.0; amplitude = 2.0; period = 2.0 } in
  Alcotest.(check (float 1e-9)) "high phase" 12.0 (Bandwidth.at b 0.5);
  Alcotest.(check (float 1e-9)) "low phase" 8.0 (Bandwidth.at b 1.5);
  Alcotest.(check (float 1e-9)) "next period" 12.0 (Bandwidth.at b 2.5);
  Alcotest.(check (float 1e-9)) "mean" 10.0 (Bandwidth.mean_over b ~t_end:10.0)

let test_bandwidth_steps () =
  let b = Bandwidth.Steps [| (0.0, 1.0); (10.0, 2.0); (20.0, 3.0) |] in
  Alcotest.(check (float 1e-9)) "before" 1.0 (Bandwidth.at b (-5.0));
  Alcotest.(check (float 1e-9)) "first" 1.0 (Bandwidth.at b 5.0);
  Alcotest.(check (float 1e-9)) "boundary" 2.0 (Bandwidth.at b 10.0);
  Alcotest.(check (float 1e-9)) "middle" 2.0 (Bandwidth.at b 15.0);
  Alcotest.(check (float 1e-9)) "last" 3.0 (Bandwidth.at b 100.0)

(* ------------------------------------------------------------------ *)
(* Link *)

let test_link_timing () =
  let engine, rng = setup () in
  (* 8 Mbps = 1e6 bytes/s; 1000 B packet -> 1 ms serialization + 10 ms prop. *)
  let link = mk_link engine rng in
  let arrived = ref Float.nan in
  Link.set_sink link (fun _ -> arrived := Leotp_sim.Engine.now engine);
  Link.send link (raw_pkt ());
  Leotp_sim.Engine.run engine;
  Alcotest.(check (float 1e-9)) "serialization + propagation" 0.011 !arrived

let test_link_queueing () =
  let engine, rng = setup () in
  let link = mk_link engine rng in
  let times = ref [] in
  Link.set_sink link (fun _ -> times := Leotp_sim.Engine.now engine :: !times);
  (* Three back-to-back packets serialize sequentially: 1ms each. *)
  for _ = 1 to 3 do
    Link.send link (raw_pkt ())
  done;
  Leotp_sim.Engine.run engine;
  Alcotest.(check (list (float 1e-6)))
    "pipelined arrivals" [ 0.011; 0.012; 0.013 ] (List.rev !times);
  let st = Link.stats link in
  Alcotest.(check int) "delivered" 3 st.packets_delivered;
  (* First packet waits 0, second 1ms, third 2ms. *)
  Alcotest.(check (float 1e-6))
    "mean queue delay" 0.001
    (Leotp_util.Stats.mean st.queue_delay)

let test_link_tail_drop () =
  let engine, rng = setup () in
  let link = mk_link ~buffer_bytes:2500 engine rng in
  let delivered = ref 0 in
  Link.set_sink link (fun _ -> incr delivered);
  (* 1000 B each: first starts serializing (leaves queue), then queue holds
     2 more (2000 <= 2500); the rest drop. *)
  for _ = 1 to 6 do
    Link.send link (raw_pkt ())
  done;
  Leotp_sim.Engine.run engine;
  Alcotest.(check int) "delivered" 3 !delivered;
  Alcotest.(check int) "tail drops" 3 (Link.stats link).drops_tail

let test_link_loss_all () =
  let engine, rng = setup () in
  let link = mk_link ~plr:1.0 engine rng in
  let delivered = ref 0 in
  Link.set_sink link (fun _ -> incr delivered);
  for _ = 1 to 10 do
    Link.send link (raw_pkt ())
  done;
  Leotp_sim.Engine.run engine;
  Alcotest.(check int) "all lost" 0 !delivered;
  Alcotest.(check int) "error drops" 10 (Link.stats link).drops_error

let test_link_loss_rate () =
  let engine, rng = setup () in
  let link = mk_link ~plr:0.1 ~buffer_bytes:max_int engine rng in
  let delivered = ref 0 in
  Link.set_sink link (fun _ -> incr delivered);
  let n = 5000 in
  for _ = 1 to n do
    Link.send link (raw_pkt ())
  done;
  Leotp_sim.Engine.run engine;
  let rate = 1.0 -. (float_of_int !delivered /. float_of_int n) in
  Alcotest.(check bool)
    (Printf.sprintf "empirical plr %.3f near 0.1" rate)
    true
    (Float.abs (rate -. 0.1) < 0.02)

let test_link_flush () =
  let engine, rng = setup () in
  let link = mk_link engine rng in
  let delivered = ref 0 in
  Link.set_sink link (fun _ -> incr delivered);
  for _ = 1 to 5 do
    Link.send link (raw_pkt ())
  done;
  (* Flush at 0.5 ms: packet 1 is mid-serialization, others queued. *)
  ignore (Leotp_sim.Engine.schedule engine ~after:0.0005 (fun () -> Link.flush link));
  Leotp_sim.Engine.run engine;
  Alcotest.(check int) "all dropped" 0 !delivered;
  Alcotest.(check int) "flush drops" 5 (Link.stats link).drops_flush

let test_link_flush_in_flight () =
  let engine, rng = setup () in
  let link = mk_link engine rng in
  let delivered = ref 0 in
  Link.set_sink link (fun _ -> incr delivered);
  Link.send link (raw_pkt ());
  (* Flush at 5 ms: the packet finished serializing at 1 ms and is in
     propagation; it must still be dropped. *)
  ignore (Leotp_sim.Engine.schedule engine ~after:0.005 (fun () -> Link.flush link));
  Leotp_sim.Engine.run engine;
  Alcotest.(check int) "in-flight dropped" 0 !delivered

let test_link_time_varying_bw () =
  let engine, rng = setup () in
  let link = mk_link engine rng in
  (* Step down to 0.8 Mbps at t=0.1: a 1000 B packet then takes 10 ms. *)
  Link.set_bandwidth link
    (Bandwidth.Steps [| (0.0, mbps 8.0); (0.1, mbps 0.8) |]);
  let times = ref [] in
  Link.set_sink link (fun _ -> times := Leotp_sim.Engine.now engine :: !times);
  Link.send link (raw_pkt ());
  ignore
    (Leotp_sim.Engine.schedule engine ~after:0.2 (fun () ->
         Link.send link (raw_pkt ())));
  Leotp_sim.Engine.run engine;
  match List.rev !times with
  | [ t1; t2 ] ->
    Alcotest.(check (float 1e-6)) "fast epoch" 0.011 t1;
    Alcotest.(check (float 1e-6)) "slow epoch" 0.22 t2
  | _ -> Alcotest.fail "expected two arrivals"

(* ------------------------------------------------------------------ *)
(* Topology: chain *)

let test_chain_end_to_end () =
  let engine, rng = setup () in
  let spec =
    Topology.hop ~bandwidth:(Bandwidth.Constant (mbps 8.0)) ~delay:0.01 ()
  in
  let chain = Topology.chain engine ~rng [| spec; spec; spec |] in
  let src = chain.Topology.nodes.(0) in
  let dst = chain.Topology.nodes.(3) in
  let got = ref None in
  Node.set_handler dst (fun ~from pkt -> got := Some (from, pkt));
  let pkt =
    mk ~src:(Node.id src) ~dst:(Node.id dst) ~flow:1 ~size:1000
      "payload"
  in
  Node.send src pkt;
  Leotp_sim.Engine.run engine;
  (match !got with
  | Some (from, p) ->
    Alcotest.(check int) "last hop sender" (Node.id chain.Topology.nodes.(2)) from;
    Alcotest.(check int) "flow" 1 p.Packet.flow;
    (* 3 hops x (1 ms serialization + 10 ms prop) *)
    Alcotest.(check (float 1e-6)) "arrival" 0.033 (Leotp_sim.Engine.now engine)
  | None -> Alcotest.fail "packet not delivered");
  (* Reverse direction also routes. *)
  let back = ref false in
  Node.set_handler src (fun ~from:_ _ -> back := true);
  Node.send dst
    (mk ~src:(Node.id dst) ~dst:(Node.id src) ~flow:1 ~size:100
       "ack");
  Leotp_sim.Engine.run engine;
  Alcotest.(check bool) "reverse delivery" true !back

let test_chain_middle_routing () =
  let engine, rng = setup () in
  let spec =
    Topology.hop ~bandwidth:(Bandwidth.Constant (mbps 8.0)) ~delay:0.001 ()
  in
  let chain = Topology.chain engine ~rng [| spec; spec; spec; spec |] in
  (* Node 1 can reach node 3 (forward) and node 0 (backward). *)
  let n1 = chain.Topology.nodes.(1) in
  let hits = ref [] in
  let watch i =
    Node.set_handler chain.Topology.nodes.(i) (fun ~from:_ _ ->
        hits := i :: !hits)
  in
  watch 3;
  watch 0;
  Node.send n1
    (mk ~src:(Node.id n1) ~dst:(Node.id chain.Topology.nodes.(3))
       ~flow:0 ~size:100 "f");
  Node.send n1
    (mk ~src:(Node.id n1) ~dst:(Node.id chain.Topology.nodes.(0))
       ~flow:0 ~size:100 "b");
  Leotp_sim.Engine.run engine;
  Alcotest.(check (list int)) "both delivered" [ 0; 3 ] (List.sort compare !hits)

(* ------------------------------------------------------------------ *)
(* Topology: dumbbell *)

let test_dumbbell_routing () =
  let engine, rng = setup () in
  let access =
    Array.init 3 (fun i ->
        Topology.hop
          ~bandwidth:(Bandwidth.Constant (mbps 100.0))
          ~delay:(0.005 *. float_of_int (i + 1))
          ())
  in
  let bottleneck =
    Topology.hop ~bandwidth:(Bandwidth.Constant (mbps 5.0)) ~delay:0.01 ()
  in
  let db = Topology.dumbbell engine ~rng ~access ~bottleneck in
  let delivered = Array.make 3 false in
  Array.iteri
    (fun i r -> Node.set_handler r (fun ~from:_ _ -> delivered.(i) <- true))
    db.Topology.receivers;
  Array.iteri
    (fun i s ->
      Node.send s
        (mk ~src:(Node.id s)
           ~dst:(Node.id db.Topology.receivers.(i))
           ~flow:i ~size:500 "d"))
    db.Topology.senders;
  Leotp_sim.Engine.run engine;
  Alcotest.(check (array bool))
    "all flows cross" [| true; true; true |] delivered

let test_dumbbell_shared_bottleneck () =
  let engine, rng = setup () in
  let access =
    Array.init 2 (fun _ ->
        Topology.hop ~bandwidth:(Bandwidth.Constant (mbps 100.0)) ~delay:0.001 ())
  in
  let bottleneck =
    Topology.hop ~bandwidth:(Bandwidth.Constant (mbps 8.0)) ~delay:0.001 ()
  in
  let db = Topology.dumbbell engine ~rng ~access ~bottleneck in
  (* Both senders flood 10 packets each; bottleneck serializes all 20. *)
  Array.iteri
    (fun i s ->
      for _ = 1 to 10 do
        Node.send s
          (mk ~src:(Node.id s)
             ~dst:(Node.id db.Topology.receivers.(i))
             ~flow:i ~size:1000 "d")
      done)
    db.Topology.senders;
  Leotp_sim.Engine.run engine;
  let st = Link.stats db.Topology.bottleneck.Topology.fwd in
  Alcotest.(check int) "bottleneck carried all" 20 st.packets_delivered

(* ------------------------------------------------------------------ *)
(* Dynamic path *)

let hopstate delay =
  {
    Dynamic_path.delay;
    bandwidth = Bandwidth.Constant (mbps 8.0);
    plr = 0.0;
  }

let test_dynamic_path_reconfig () =
  let engine, rng = setup () in
  let dp =
    Dynamic_path.create engine ~rng ~max_hops:4
      ~initial:[| hopstate 0.01; hopstate 0.01 |]
      ()
  in
  Alcotest.(check int) "active" 2 (Dynamic_path.active_hops dp);
  let chain = Dynamic_path.chain dp in
  let src = chain.Topology.nodes.(0)
  and dst = chain.Topology.nodes.(4) in
  let arrivals = ref [] in
  Node.set_handler dst (fun ~from:_ _ ->
      arrivals := Leotp_sim.Engine.now engine :: !arrivals);
  let send () =
    Node.send src
      (mk ~src:(Node.id src) ~dst:(Node.id dst) ~flow:0 ~size:1000
         "x")
  in
  send ();
  Leotp_sim.Engine.run engine;
  (* 2 active hops (10ms+1ms each) + 2 pass-through hops (~0). *)
  (match !arrivals with
  | [ t ] -> Alcotest.(check bool) "fast path" true (t < 0.025)
  | _ -> Alcotest.fail "expected one arrival");
  (* Grow to 4 real hops. *)
  Dynamic_path.apply dp
    [| hopstate 0.01; hopstate 0.01; hopstate 0.01; hopstate 0.01 |];
  arrivals := [];
  let t0 = Leotp_sim.Engine.now engine in
  send ();
  Leotp_sim.Engine.run engine;
  (match !arrivals with
  | [ t ] ->
    Alcotest.(check bool) "slower path" true (t -. t0 > 0.04 && t -. t0 < 0.05)
  | _ -> Alcotest.fail "expected one arrival");
  Alcotest.(check int) "switches counted" 1 (Dynamic_path.switch_count dp)

let test_dynamic_path_switch_drops () =
  let engine, rng = setup () in
  let dp =
    Dynamic_path.create engine ~rng ~max_hops:2
      ~initial:[| hopstate 0.05; hopstate 0.05 |]
      ()
  in
  let chain = Dynamic_path.chain dp in
  let src = chain.Topology.nodes.(0)
  and dst = chain.Topology.nodes.(2) in
  let count = ref 0 in
  Node.set_handler dst (fun ~from:_ _ -> incr count);
  Node.send src
    (mk ~src:(Node.id src) ~dst:(Node.id dst) ~flow:0 ~size:1000
       "x");
  (* Switch while the packet is in flight on hop 0. *)
  Dynamic_path.schedule dp [ (0.02, [| hopstate 0.04; hopstate 0.05 |]) ];
  Leotp_sim.Engine.run engine;
  Alcotest.(check int) "in-flight dropped on switch" 0 !count;
  (* A later packet crosses the new path fine. *)
  Node.send src
    (mk ~src:(Node.id src) ~dst:(Node.id dst) ~flow:0 ~size:1000
       "y");
  Leotp_sim.Engine.run engine;
  Alcotest.(check int) "post-switch delivery" 1 !count

let test_dynamic_path_same_snapshot_no_switch () =
  let engine, rng = setup () in
  let dp =
    Dynamic_path.create engine ~rng ~max_hops:2
      ~initial:[| hopstate 0.05; hopstate 0.05 |]
      ()
  in
  Dynamic_path.apply dp [| hopstate 0.05; hopstate 0.05 |];
  Alcotest.(check int) "no flush for identical delays" 0
    (Dynamic_path.switch_count dp);
  ignore engine

(* Regression: the switch detector must flag any above-epsilon change,
   not just delay.  The pre-fix [update_link] compared delay only, so a
   pure bandwidth or loss reconfiguration neither counted as a switch
   nor flushed in-flight packets. *)
let test_dynamic_path_bandwidth_only_switch () =
  let engine, rng = setup () in
  let dp =
    Dynamic_path.create engine ~rng ~max_hops:2
      ~initial:[| hopstate 0.05; hopstate 0.05 |]
      ()
  in
  let chain = Dynamic_path.chain dp in
  let src = chain.Topology.nodes.(0)
  and dst = chain.Topology.nodes.(2) in
  let count = ref 0 in
  Node.set_handler dst (fun ~from:_ _ -> incr count);
  Node.send src
    (mk ~src:(Node.id src) ~dst:(Node.id dst) ~flow:0 ~size:1000
       "x");
  (* Same delays, bottleneck cut 8 -> 2 Mbps (well past the 4 Mbps
     epsilon): still a path switch, so the in-flight packet must be
     flushed and the switch counted. *)
  Dynamic_path.schedule dp
    [
      ( 0.02,
        [|
          {
            (hopstate 0.05) with
            Dynamic_path.bandwidth = Bandwidth.Constant (mbps 2.0);
          };
          hopstate 0.05;
        |] );
    ];
  Leotp_sim.Engine.run engine;
  Alcotest.(check int) "bandwidth-only change flushes in-flight" 0 !count;
  Alcotest.(check int) "bandwidth-only change counts" 1
    (Dynamic_path.switch_count dp)

let test_dynamic_path_plr_only_switch () =
  let engine, rng = setup () in
  let dp =
    Dynamic_path.create engine ~rng ~max_hops:2
      ~initial:[| hopstate 0.05; hopstate 0.05 |]
      ()
  in
  Dynamic_path.apply dp
    [| { (hopstate 0.05) with Dynamic_path.plr = 0.02 }; hopstate 0.05 |];
  Alcotest.(check int) "plr-only change counts" 1
    (Dynamic_path.switch_count dp);
  ignore engine

let test_dynamic_path_below_epsilon_no_switch () =
  let engine, rng = setup () in
  let dp =
    Dynamic_path.create engine ~rng ~max_hops:2
      ~initial:[| hopstate 0.05; hopstate 0.05 |]
      ()
  in
  (* Wiggles below every per-dimension epsilon (50us / 4 Mbps / 5e-3)
     are parameter drift, not a handover: no flush, no switch. *)
  Dynamic_path.apply dp
    [|
      {
        Dynamic_path.delay = 0.05 +. 20e-6;
        bandwidth = Bandwidth.Constant (mbps 8.4);
        plr = 2e-3;
      };
      hopstate 0.05;
    |];
  Alcotest.(check int) "sub-epsilon drift is not a switch" 0
    (Dynamic_path.switch_count dp);
  ignore engine

(* ------------------------------------------------------------------ *)
(* Node routing edge cases *)

let test_no_route_drops () =
  let engine, rng = setup () in
  ignore rng;
  ignore engine;
  let n = Node.create ~name:"lonely" in
  Node.send n (mk ~src:1 ~dst:999 ~flow:0 ~size:100 "x");
  Alcotest.(check int) "counted" 1 (Node.no_route_drops n);
  Node.add_route n ~dst:999
    (Link.create (Leotp_sim.Engine.create ()) ~name:"l" ~src:1 ~dst:999
       ~bandwidth:(Bandwidth.Constant 1e6) ~delay:0.01
       ~rng:(Leotp_util.Rng.create ~seed:1) ());
  Node.send n (mk ~src:1 ~dst:999 ~flow:0 ~size:100 "y");
  Alcotest.(check int) "routed now" 1 (Node.no_route_drops n);
  Node.clear_routes n;
  Node.send n (mk ~src:1 ~dst:999 ~flow:0 ~size:100 "z");
  Alcotest.(check int) "cleared" 2 (Node.no_route_drops n)

let test_asymmetric_duplex () =
  let engine, rng = setup () in
  let a = Node.create ~name:"a" and b = Node.create ~name:"b" in
  let spec =
    Topology.hop
      ~rev_bandwidth:(Bandwidth.Constant (mbps 1.0))
      ~bandwidth:(Bandwidth.Constant (mbps 100.0))
      ~delay:0.001 ()
  in
  let d = Topology.connect engine ~rng a b spec in
  (* Forward: 1000 B at 100 Mbps = 80 us; reverse at 1 Mbps = 8 ms. *)
  let t_fwd = ref 0.0 and t_rev = ref 0.0 in
  Node.set_handler b (fun ~from:_ _ -> t_fwd := Leotp_sim.Engine.now engine);
  Node.set_handler a (fun ~from:_ _ -> t_rev := Leotp_sim.Engine.now engine);
  Link.send d.Topology.fwd (mk ~src:1 ~dst:2 ~flow:0 ~size:1000 "f");
  Link.send d.Topology.rev (mk ~src:2 ~dst:1 ~flow:0 ~size:1000 "r");
  Leotp_sim.Engine.run engine;
  Alcotest.(check bool) "forward fast" true (!t_fwd < 0.002);
  Alcotest.(check bool) "reverse slow" true (!t_rev > 0.008)

(* ------------------------------------------------------------------ *)
(* Flow metrics *)

let test_flow_metrics () =
  let m = Flow_metrics.create ~flow:7 in
  Flow_metrics.set_started m 1.0;
  Flow_metrics.on_send m ~bytes:1000;
  Flow_metrics.on_send m ~bytes:1000;
  Flow_metrics.on_retransmit m;
  Flow_metrics.on_deliver m ~now:2.0 ~bytes:1000 ~owd:0.05 ~retx:false;
  Flow_metrics.on_deliver m ~now:3.0 ~bytes:1000 ~owd:0.25 ~retx:true;
  Flow_metrics.set_finished m 3.0;
  Alcotest.(check int) "app bytes" 2000 (Flow_metrics.app_bytes m);
  Alcotest.(check int) "wire bytes" 2000 (Flow_metrics.wire_bytes_sent m);
  Alcotest.(check int) "retx" 1 (Flow_metrics.retransmissions m);
  Alcotest.(check (option (float 1e-9)))
    "completion" (Some 2.0)
    (Flow_metrics.completion_time m);
  Alcotest.(check (float 1e-9))
    "goodput" 800.0
    (Flow_metrics.goodput m ~lo:1.0 ~hi:3.5);
  Alcotest.(check int) "retx owd samples" 1
    (Leotp_util.Stats.count (Flow_metrics.retx_owd m))

let () =
  Alcotest.run "leotp_net"
    [
      ( "bandwidth",
        [
          Alcotest.test_case "constant" `Quick test_bandwidth_constant;
          Alcotest.test_case "square" `Quick test_bandwidth_square;
          Alcotest.test_case "steps" `Quick test_bandwidth_steps;
        ] );
      ( "link",
        [
          Alcotest.test_case "timing" `Quick test_link_timing;
          Alcotest.test_case "queueing" `Quick test_link_queueing;
          Alcotest.test_case "tail drop" `Quick test_link_tail_drop;
          Alcotest.test_case "loss all" `Quick test_link_loss_all;
          Alcotest.test_case "loss rate" `Quick test_link_loss_rate;
          Alcotest.test_case "flush queued" `Quick test_link_flush;
          Alcotest.test_case "flush in-flight" `Quick test_link_flush_in_flight;
          Alcotest.test_case "time-varying bandwidth" `Quick
            test_link_time_varying_bw;
        ] );
      ( "topology",
        [
          Alcotest.test_case "chain end-to-end" `Quick test_chain_end_to_end;
          Alcotest.test_case "chain middle routing" `Quick
            test_chain_middle_routing;
          Alcotest.test_case "dumbbell routing" `Quick test_dumbbell_routing;
          Alcotest.test_case "dumbbell bottleneck" `Quick
            test_dumbbell_shared_bottleneck;
        ] );
      ( "dynamic_path",
        [
          Alcotest.test_case "reconfig" `Quick test_dynamic_path_reconfig;
          Alcotest.test_case "switch drops in-flight" `Quick
            test_dynamic_path_switch_drops;
          Alcotest.test_case "identical snapshot no switch" `Quick
            test_dynamic_path_same_snapshot_no_switch;
          Alcotest.test_case "bandwidth-only switch" `Quick
            test_dynamic_path_bandwidth_only_switch;
          Alcotest.test_case "plr-only switch" `Quick
            test_dynamic_path_plr_only_switch;
          Alcotest.test_case "below-epsilon no switch" `Quick
            test_dynamic_path_below_epsilon_no_switch;
        ] );
      ( "node",
        [
          Alcotest.test_case "no-route drops" `Quick test_no_route_drops;
          Alcotest.test_case "asymmetric duplex" `Quick test_asymmetric_duplex;
        ] );
      ( "flow_metrics",
        [ Alcotest.test_case "accounting" `Quick test_flow_metrics ] );
    ]
