(* Tests for the Leotp_check oracle subsystem: the differential
   sender-vs-reference-model property, oracle sensitivity to planted
   divergences, engine-level timer quiescence, and the fuzz harness's
   replay spec round-trip. *)

open Leotp_tcp
module Engine = Leotp_sim.Engine
module Node = Leotp_net.Node
module Trace = Leotp_net.Trace
module Oracle = Leotp_check.Oracle
module Model = Leotp_check.Model
module Fuzz = Leotp_scenario.Fuzz

(* ------------------------------------------------------------------ *)
(* Differential property: drive a real Sender with a random script of
   ACKs (cumulative points both MSS-aligned and mid-segment, plus random
   SACK blocks), with the oracle attached; the sender's claimed state
   must match the reference model at every step. *)

type step = {
  dt : float;
  cum_frac : float;  (** position of cum_ack in [snd_una, snd_nxt] *)
  align : bool;  (** round cum_ack down to an MSS boundary *)
  dup : bool;  (** send a pure duplicate ack instead *)
  sacks : (float * float) list;  (** fractional (lo, len) above cum_ack *)
}

let mss = 1000

let build_ack s ~now:_ (st : step) =
  let una = Sender.snd_una s and nxt = Sender.snd_nxt s in
  let span = nxt - una in
  let cum =
    if st.dup || span = 0 then una
    else begin
      let c = una + int_of_float (st.cum_frac *. float_of_int span) in
      let c = if st.align then max una (c / mss * mss) else c in
      min nxt (max una c)
    end
  in
  let sacks =
    List.filter_map
      (fun (flo, flen) ->
        let span = nxt - cum in
        if span <= 0 then None
        else begin
          let lo = cum + int_of_float (flo *. float_of_int span) in
          let hi = min nxt (lo + max 1 (int_of_float (flen *. float_of_int (nxt - lo)))) in
          if hi > lo && lo >= cum then Some (lo, hi) else None
        end)
      st.sacks
  in
  (cum, sacks)

let drive ~cc ~bytes steps =
  Leotp_net.Packet.reset_ids ();
  Node.reset_ids ();
  let engine = Engine.create () in
  let node = Node.create ~name:"tx" in
  let trace = Trace.create ~capacity:1 ~digesting:false () in
  let oracle = Oracle.create ~mss () in
  Oracle.attach oracle trace;
  let quiescent = ref None in
  Trace.with_recorder trace
    ~clock:(fun () -> Engine.now engine)
    (fun () ->
      (* No route from [node]: data packets are dropped at the node,
         which is fine — the script supplies the acks directly. *)
      let s =
        Sender.create engine ~node ~dst:99 ~flow:1 ~cc ~mss
          ~source:(Sender.Fixed bytes) ()
      in
      Sender.start s;
      List.iter
        (fun st ->
          Engine.run ~until:(Engine.now engine +. st.dt) engine;
          if not (Sender.finished s) then begin
            let now = Engine.now engine in
            let cum, sacks = build_ack s ~now st in
            let ack =
              Wire.ack_packet ~src:99 ~dst:(Node.id node) ~flow:1 ~cum_ack:cum
            in
            List.iter (fun (lo, hi) -> Wire.add_sack ack ~lo ~hi) sacks;
            Wire.set_ts_echo ack (Float.max 0.0 (now -. (st.dt /. 2.0)));
            Sender.handle_ack s ack
          end)
        steps;
      Sender.stop s;
      quiescent := Some (Oracle.sender_quiescent s));
  (oracle, !quiescent)

let differential_prop =
  let open QCheck2 in
  let step_gen =
    Gen.(
      let* dt = float_range 0.001 0.15 in
      let* cum_frac = float_range 0.0 1.0 in
      let* align = bool in
      let* dup = frequency [ (1, pure true); (5, pure false) ] in
      let* sacks =
        list_size (int_bound 3)
          (pair (float_range 0.0 1.0) (float_range 0.0 1.0))
      in
      pure { dt; cum_frac; align; dup; sacks })
  in
  Test.make ~name:"sender agrees with reference model on random ack scripts"
    ~count:40
    Gen.(pair (oneofl Cc.all) (list_size (int_range 5 40) step_gen))
    (fun (algo, steps) ->
      let oracle, quiescent = drive ~cc:algo ~bytes:120_000 steps in
      (match Oracle.divergences oracle with
      | [] -> ()
      | ds ->
        Test.fail_reportf "%s: %d divergences\n%s" (Cc.algo_name algo)
          (List.length ds)
          (String.concat "\n" (List.map Oracle.divergence_to_string ds)));
      (match quiescent with
      | Some (Some leak) -> Test.fail_reportf "after stop: %s" leak
      | _ -> ());
      Oracle.acks oracle > 0 || steps = [])

(* ------------------------------------------------------------------ *)
(* Sensitivity: the oracle must flag planted lies, otherwise a green
   fuzz sweep proves nothing. *)

let with_oracle f =
  let trace = Trace.create ~capacity:1 ~digesting:false () in
  let oracle = Oracle.create ~mss () in
  Oracle.attach oracle trace;
  let clock = ref 0.0 in
  Trace.with_recorder trace ~clock:(fun () -> !clock) (fun () -> f clock);
  Oracle.divergences oracle

let ack_event ?(cc = "newreno") ?(phase = "ss") ?(cum_ack = 0) ?(sacks = [])
    ?rtt ~snd_una ~inflight ?(lost_pending = 0) ?(cwnd = 10_000.0) ?(rto = 1.0)
    () =
  Trace.Ack_processed
    { who = "tcp:x"; flow = 1; cc; phase; cum_ack; sacks; rtt; snd_una;
      inflight; lost_pending; cwnd; rto }

let sent ~seq ~len =
  Trace.Seg_state
    { who = "tcp:x"; flow = 1; seq; len; state = Trace.Seg_sent }

let test_oracle_flags_wrong_inflight () =
  let ds =
    with_oracle (fun _ ->
        Trace.emit (sent ~seq:0 ~len:1000);
        (* Claim the acked segment is still in flight. *)
        Trace.emit
          (ack_event ~cum_ack:1000 ~rtt:0.05 ~snd_una:1000 ~inflight:1000 ()))
  in
  Alcotest.(check bool) "divergence reported" true (ds <> [])

let test_oracle_flags_rto_below_floor () =
  let ds =
    with_oracle (fun _ ->
        Trace.emit (sent ~seq:0 ~len:1000);
        (* SRTT 0.1 -> floor = max min_rto (0.1 + 4*0.05) = 0.3; claim 0.25. *)
        Trace.emit
          (ack_event ~cum_ack:1000 ~rtt:0.1 ~snd_una:1000 ~inflight:0
             ~rto:0.25 ()))
  in
  Alcotest.(check bool) "rto floor violation reported" true (ds <> [])

let test_oracle_flags_aimd_overgrowth () =
  let ds =
    with_oracle (fun clock ->
        Trace.emit (sent ~seq:0 ~len:1000);
        Trace.emit (sent ~seq:1000 ~len:1000);
        Trace.emit
          (ack_event ~cum_ack:1000 ~rtt:0.05 ~snd_una:1000 ~inflight:1000
             ~cwnd:10_000.0 ());
        clock := 0.05;
        (* 1000 bytes acked but the window jumps by 5000. *)
        Trace.emit
          (ack_event ~cum_ack:2000 ~rtt:0.05 ~snd_una:2000 ~inflight:0
             ~cwnd:15_000.0 ()))
  in
  Alcotest.(check bool) "AIMD overgrowth reported" true (ds <> [])

let test_oracle_flags_bbr_phase_skip () =
  let ds =
    with_oracle (fun clock ->
        Trace.emit (sent ~seq:0 ~len:1000);
        Trace.emit
          (ack_event ~cc:"bbr" ~phase:"probe_bw:2" ~cum_ack:500 ~rtt:0.05
             ~snd_una:500 ~inflight:500 ());
        clock := 0.05;
        (* Gain cycle must advance one step at a time: 2 -> 4 is illegal. *)
        Trace.emit
          (ack_event ~cc:"bbr" ~phase:"probe_bw:4" ~cum_ack:1000 ~rtt:0.05
             ~snd_una:1000 ~inflight:0 ()))
  in
  Alcotest.(check bool) "bbr phase skip reported" true (ds <> [])

let test_oracle_accepts_truthful_stream () =
  let ds =
    with_oracle (fun clock ->
        Trace.emit (sent ~seq:0 ~len:1000);
        Trace.emit (sent ~seq:1000 ~len:1000);
        Trace.emit
          (ack_event ~cum_ack:1000 ~rtt:0.05 ~snd_una:1000 ~inflight:1000
             ~cwnd:11_000.0 ());
        clock := 0.05;
        Trace.emit
          (ack_event ~cum_ack:1000 ~sacks:[ (1000, 2000) ] ~snd_una:1000
             ~inflight:0 ~cwnd:12_000.0 ()))
  in
  Alcotest.(check (list string)) "clean" []
    (List.map Oracle.divergence_to_string ds)

(* The reference model on its own: straddling cumulative acks split
   segments instead of swallowing them. *)
let test_model_straddle_split () =
  let m = Model.create () in
  Alcotest.(check (list string)) "send" [] (Model.on_sent m ~seq:0 ~len:1000);
  Alcotest.(check (list string)) "send" [] (Model.on_sent m ~seq:1000 ~len:1000);
  let acked = Model.on_ack m ~cum_ack:1500 ~sacks:[] in
  Alcotest.(check int) "acked bytes" 1500 acked;
  Alcotest.(check int) "inflight keeps the tail" 500 (Model.inflight m);
  Alcotest.(check int) "tail still outstanding" 1 (Model.outstanding m);
  Alcotest.(check (list string))
    "claim with the tail dropped is flagged"
    [ "inflight: sender claims 0, model has 500" ]
    (Model.check m { Model.snd_una = 1500; inflight = 0; lost_pending = 0 })

(* ------------------------------------------------------------------ *)
(* Engine-level quiescence: pacing arms the pump timer; stop must clear
   both timer slots and leave nothing pending in the engine. *)

let test_stop_is_quiescent () =
  Leotp_net.Packet.reset_ids ();
  Node.reset_ids ();
  let engine = Engine.create () in
  let node = Node.create ~name:"tx" in
  let s =
    Sender.create engine ~node ~dst:99 ~flow:1 ~cc:Cc.Pcc ~mss
      ~source:(Sender.Fixed 50_000) ()
  in
  Sender.start s;
  (* PCC paces from the first packet: the pump timer must be armed. *)
  Alcotest.(check bool) "pacing armed a timer" true (Sender.timer_pending s);
  Sender.stop s;
  Alcotest.(check (option string)) "quiescent after stop" None
    (Oracle.sender_quiescent s);
  Alcotest.(check bool) "timer slots cleared" true (Sender.timers_idle s)

(* ------------------------------------------------------------------ *)
(* Fuzz harness: replay specs round-trip exactly; a small sweep is
   clean and deterministic. *)

let test_fuzz_replay_roundtrip () =
  List.iteri
    (fun i spec ->
      let s = Fuzz.replay_to_string ~protocol:"bbr" spec in
      match Fuzz.replay_of_string s with
      | Error e -> Alcotest.fail e
      | Ok (protocol, spec') ->
        Alcotest.(check string)
          (Printf.sprintf "spec %d protocol" i)
          "bbr" protocol;
        Alcotest.(check string)
          (Printf.sprintf "spec %d round-trips" i)
          s
          (Fuzz.replay_to_string ~protocol spec'))
    (Fuzz.gen ~seed:11 6)

let test_fuzz_mini_sweep_clean () =
  let out = Fuzz.run ~seed:3 ~cases:2 () in
  Alcotest.(check int) "runs = cases x protocols" 16 out.Fuzz.runs;
  Alcotest.(check bool) "oracle saw acks" true (out.Fuzz.oracle_acks > 0);
  List.iter
    (fun (f : Fuzz.failure) ->
      Alcotest.failf "unexpected failure: %s %s" f.Fuzz.protocol
        (String.concat "; " f.Fuzz.problems))
    out.Fuzz.failures

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "leotp_check"
    [
      ("differential", [ qc differential_prop ]);
      ( "sensitivity",
        [
          Alcotest.test_case "wrong inflight" `Quick
            test_oracle_flags_wrong_inflight;
          Alcotest.test_case "rto below floor" `Quick
            test_oracle_flags_rto_below_floor;
          Alcotest.test_case "aimd overgrowth" `Quick
            test_oracle_flags_aimd_overgrowth;
          Alcotest.test_case "bbr phase skip" `Quick
            test_oracle_flags_bbr_phase_skip;
          Alcotest.test_case "truthful stream" `Quick
            test_oracle_accepts_truthful_stream;
          Alcotest.test_case "model straddle" `Quick test_model_straddle_split;
        ] );
      ("quiescence", [ Alcotest.test_case "stop" `Quick test_stop_is_quiescent ]);
      ( "fuzz",
        [
          Alcotest.test_case "replay round-trip" `Quick
            test_fuzz_replay_roundtrip;
          Alcotest.test_case "mini sweep" `Quick test_fuzz_mini_sweep_clean;
        ] );
    ]
